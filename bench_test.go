// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per table/figure), ablation benchmarks for
// the design choices DESIGN.md calls out, and microbenchmarks of the
// substrate hot paths. Long experiment benchmarks naturally run with
// b.N == 1 and print their tables; repeated iterations reuse the shared
// suite's cache.
package triplea

import (
	"runtime"
	"sync"
	"testing"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/experiments"
	"triplea/internal/ftl"
	"triplea/internal/metrics"
	"triplea/internal/nand"
	"triplea/internal/pcie"
	"triplea/internal/report"
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/trace"
	"triplea/internal/workload"
)

// benchRequests bounds per-run request counts so the full -bench=.
// sweep finishes in minutes; cmd/triplea-bench runs the full-length
// versions.
const benchRequests = 30_000

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func sharedSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		suite = experiments.NewSuite()
		suite.Requests = benchRequests
	})
	return suite
}

func logTable(b *testing.B, t *report.Table) {
	b.Helper()
	b.Log("\n" + t.String())
}

func BenchmarkFig01HotRegionCDF(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	var res *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, tbl, err = s.Fig1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.LinkFactor, "linkDegrX")
	b.ReportMetric(res.StoreFactor, "storDegrX")
	logTable(b, tbl)
}

func BenchmarkTable01Workloads(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkTable02Baseline(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkFig09Normalized(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Aggregate gains across the congested workloads (paper: ~5x
	// latency, ~2x IOPS on average).
	var latSum, iopsSum float64
	n := 0
	for _, name := range experiments.WorkloadNames() {
		r, err := s.Workload(name)
		if err != nil {
			b.Fatal(err)
		}
		if r.Profile.HotClusters == 0 {
			continue
		}
		latSum += 1 / r.NormLatency()
		iopsSum += r.NormIOPS()
		n++
	}
	b.ReportMetric(latSum/float64(n), "meanLatGainX")
	b.ReportMetric(iopsSum/float64(n), "meanIOPSGainX")
	logTable(b, tbl)
}

func BenchmarkFig10Contention(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s.Fig10()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkFig11CDF(b *testing.B) {
	s := sharedSuite()
	var tables []*report.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = s.Fig11()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, t := range tables {
		logTable(b, t)
	}
}

func BenchmarkFig12HotClusterSweep(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s.Fig12()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkFig13NetworkSweep(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s.Fig13()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkFig14ContentionSweep(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s.Fig14()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkFig15Breakdown(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s.Fig15()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkFig16MigrationModes(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	var res *experiments.Fig16Result
	for i := 0; i < b.N; i++ {
		var err error
		res, tbl, err = s.Fig16()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AvgUS[1]/res.AvgUS[2], "naiveOverShadowX")
	logTable(b, tbl)
}

func BenchmarkWearOverhead(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	var w experiments.WearResult
	for i := 0; i < b.N; i++ {
		var err error
		w, tbl, err = s.Wear()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(w.ExtraWriteFrac*100, "extraWrites%")
	b.ReportMetric(w.LifetimeLoss*100, "lifetimeLoss%")
	logTable(b, tbl)
}

func BenchmarkDRAMRelocation(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s.DRAMStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

// BenchmarkDegradedFIMMRecovery measures how much of the performance an
// 8x-degraded FIMM costs is recovered by laggard reshaping.
func BenchmarkDegradedFIMMRecovery(b *testing.B) {
	slow := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 0}, FIMM: 0}
	p := workload.MicroRead(1, 20_000, 40_000)
	p.HotIORatio = 0.8
	p.Footprint = 512
	cfg := array.DefaultConfig()
	cfg.DegradedFIMMs = map[topo.FIMMID]float64{slow: 8}
	reqs, _, err := workload.Generate(cfg.Geometry, p, 5)
	if err != nil {
		b.Fatal(err)
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		base, err := runArray(cfg, reqs, nil)
		if err != nil {
			b.Fatal(err)
		}
		opts := core.DefaultOptions()
		auto, err := runArray(cfg, reqs, &opts)
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(base) / float64(auto)
	}
	b.ReportMetric(gain, "latGainX")
}

// BenchmarkOpportunisticGC compares eager and idle-window GC scheduling
// on an overwrite-heavy small-block configuration (tail latency is the
// interesting output).
func BenchmarkOpportunisticGC(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"eager", false}, {"opportunistic", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := array.DefaultConfig()
			cfg.Geometry.Switches = 2
			cfg.Geometry.ClustersPerSwitch = 8
			cfg.Geometry.Nand.BlocksPerPlane = 8
			cfg.Geometry.Nand.PagesPerBlock = 16
			cfg.GCThreshold = 4
			cfg.OpportunisticGC = mode.on
			p := workload.MicroWrite(2, 16_000, 120_000)
			p.ReadRatio = 0.5
			p.Footprint = 256
			reqs, _, err := workload.Generate(cfg.Geometry, p, 9)
			if err != nil {
				b.Fatal(err)
			}
			var p99 simx.Time
			var deferrals uint64
			for i := 0; i < b.N; i++ {
				a, err := array.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rec, err := a.Run(reqs)
				if err != nil {
					b.Fatal(err)
				}
				p99 = rec.Percentile(99)
				deferrals = a.GCDeferrals()
			}
			b.ReportMetric(p99.Micros(), "p99us")
			b.ReportMetric(float64(deferrals), "deferrals")
		})
	}
}

func BenchmarkCostStudy(b *testing.B) {
	s := sharedSuite()
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s.CostStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

// --- Ablation benchmarks: turn off one design element at a time and
// measure the fin workload's normalized latency (lower = better).

func benchAblation(b *testing.B, mutate func(*core.Options)) {
	cfg := array.DefaultConfig()
	p, _ := workload.ProfileByName("fin")
	p.Requests = benchRequests
	reqs, _, err := workload.Generate(cfg.Geometry, p, 42)
	if err != nil {
		b.Fatal(err)
	}
	var norm float64
	for i := 0; i < b.N; i++ {
		base, err := runArray(cfg, reqs, nil)
		if err != nil {
			b.Fatal(err)
		}
		opts := core.DefaultOptions()
		mutate(&opts)
		auto, err := runArray(cfg, reqs, &opts)
		if err != nil {
			b.Fatal(err)
		}
		norm = float64(auto) / float64(base)
	}
	b.ReportMetric(norm, "normLat")
	b.ReportMetric(1/norm, "latGainX")
}

func runArray(cfg array.Config, reqs []trace.Request, opts *core.Options) (simx.Time, error) {
	a, err := array.New(cfg)
	if err != nil {
		return 0, err
	}
	if opts != nil {
		core.Attach(a, *opts)
	}
	rec, err := a.Run(reqs)
	if err != nil {
		return 0, err
	}
	return rec.AvgLatency(), nil
}

func BenchmarkAblationFullTripleA(b *testing.B) {
	benchAblation(b, func(o *core.Options) {})
}

func BenchmarkAblationNoShadowCloning(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.ShadowCloning = false })
}

func BenchmarkAblationNoLinkManagement(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.LinkManagement = false })
}

func BenchmarkAblationNoStorageManagement(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.StorageManagement = false })
}

func BenchmarkAblationQueueExamination(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Strategy = core.QueueExamination })
}

// BenchmarkAblationStripedLayout measures the static alternative to
// autonomic reshaping: page-striping the whole address space avoids hot
// clusters by construction (at the price of giving up locality
// control). Reported as the striped BASELINE's latency normalized to
// the clustered baseline.
func BenchmarkAblationStripedLayout(b *testing.B) {
	p, _ := workload.ProfileByName("fin")
	p.Requests = benchRequests
	clustered := array.DefaultConfig()
	striped := array.DefaultConfig()
	striped.Layout = ftl.LayoutStriped
	reqs, _, err := workload.Generate(clustered.Geometry, p, 42)
	if err != nil {
		b.Fatal(err)
	}
	var norm float64
	for i := 0; i < b.N; i++ {
		base, err := runArray(clustered, reqs, nil)
		if err != nil {
			b.Fatal(err)
		}
		alt, err := runArray(striped, reqs, nil)
		if err != nil {
			b.Fatal(err)
		}
		norm = float64(alt) / float64(base)
	}
	b.ReportMetric(norm, "normLat")
}

// BenchmarkHostPriorityScheduling compares endpoint FIFO vs
// host-priority read scheduling under Triple-A (whose migration reads
// compete with host reads).
func BenchmarkHostPriorityScheduling(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"fifo", false}, {"host-priority", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := array.DefaultConfig()
			cfg.HostPriority = mode.on
			p := workload.MicroRead(3, benchRequests/2, 170_000)
			reqs, _, err := workload.Generate(cfg.Geometry, p, 21)
			if err != nil {
				b.Fatal(err)
			}
			var avg simx.Time
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				// Naive migration mode: background reads actually
				// compete with host reads for FIMM slots.
				opts.ShadowCloning = false
				lat, err := runArray(cfg, reqs, &opts)
				if err != nil {
					b.Fatal(err)
				}
				avg = lat
			}
			b.ReportMetric(avg.Micros(), "avgus")
		})
	}
}

// --- Sweep-pool wall-clock benchmarks (BENCH_PR6.json, `make
// sweep-smoke`). Deliberately named outside the Benchmark(Table|Fig)
// pattern so the PR3 allocation gate ignores them: a fresh suite per
// iteration defeats the memo cache on purpose, measuring the 16-point
// Fig12 sweep end to end. Serial vs parallel differ only in Parallel,
// so their ratio is the pool speedup (~1x on 1 CPU, >=2x on the
// 4-core CI runner).

func benchSweepFig12(b *testing.B, parallel int) {
	var tbl *report.Table
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		s.Requests = 4000
		s.Fig12Points = 16
		s.Parallel = parallel
		var err error
		tbl, err = s.Fig12()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkSweepFig12x16Serial(b *testing.B) {
	benchSweepFig12(b, 1)
}

func BenchmarkSweepFig12x16Parallel(b *testing.B) {
	benchSweepFig12(b, runtime.GOMAXPROCS(0))
}

// --- Substrate microbenchmarks.

func BenchmarkEngineScheduleFire(b *testing.B) {
	eng := simx.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Schedule(1, func() {})
		eng.Step()
	}
}

func BenchmarkResourceAcquireRelease(b *testing.B) {
	eng := simx.NewEngine()
	r := simx.NewResource(eng, "bench", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Acquire(func(simx.Time) {})
		r.Release()
	}
}

func BenchmarkPPNPackUnpack(b *testing.B) {
	b.ReportAllocs()
	var acc int
	for i := 0; i < b.N; i++ {
		p := topo.PackPPN(i&3, i&15, i&3, i&7, i&1, i&1023, i&255)
		acc += p.Block() + p.Page()
	}
	_ = acc
}

func BenchmarkFTLWriteAllocate(b *testing.B) {
	g := topo.Geometry{
		Switches: 4, ClustersPerSwitch: 16, FIMMsPerCluster: 4,
		PackagesPerFIMM: 8, Nand: nand.DefaultParams(),
	}
	f := ftl.New(g)
	span := g.TotalPages().Int64() / 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.AllocateWrite(int64(i) % span); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNandReadOp(b *testing.B) {
	eng := simx.NewEngine()
	pk := nand.NewPackage(eng, nand.DefaultParams())
	a := nand.Addr{}
	pk.Program([]nand.Addr{a}, func(simx.Time, error) {})
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk.Read([]nand.Addr{a}, func(simx.Time, error) {})
		eng.Run()
	}
}

func BenchmarkLinkTransfer(b *testing.B) {
	eng := simx.NewEngine()
	sink := recvFunc(func(p *pcie.Packet, from *pcie.Link) { from.ReturnCredit() })
	l := pcie.NewLink(eng, "bench", 16_000_000_000, 100, 8, sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Send(&pcie.Packet{Payload: 4096}, nil)
		eng.Run()
	}
}

type recvFunc func(*pcie.Packet, *pcie.Link)

func (f recvFunc) Receive(p *pcie.Packet, l *pcie.Link) { f(p, l) }

func BenchmarkArraySingleRead(b *testing.B) {
	cfg := array.DefaultConfig()
	a, err := array.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Submit(trace.Request{Op: trace.Read, LPN: int64(i % 100000), Pages: 1})
		a.Engine().Run()
	}
}

// synthRecords feeds a recorder `requests` synthetic completions from a
// seeded stream: a bursty submit clock and latencies spanning several
// histogram octaves (~1µs .. ~16ms), so the streaming backend's
// log-spaced buckets, windowed tracker and reservoir all see realistic
// churn.
func synthRecords(rec *metrics.Recorder, requests int) {
	rng := simx.NewRNG(42)
	var clock simx.Time
	for i := 0; i < requests; i++ {
		clock += simx.Time(rng.Intn(2000)) * simx.Nanosecond
		lat := simx.Time(2000+rng.Intn(1<<uint(10+rng.Intn(14)))) * simx.Nanosecond
		kind := metrics.Read
		if rng.Bool(0.3) {
			kind = metrics.Write
		}
		rec.Record(metrics.Record{
			ID:       uint64(i),
			Kind:     kind,
			Pages:    1,
			Submit:   clock,
			Complete: clock + lat,
			Breakdown: metrics.Breakdown{
				Texe:     lat / 2,
				LinkWait: lat / 4,
			},
		})
	}
}

// benchmarkRecorderBytes measures one backend's steady-state metric
// footprint at a given run length, reported as recorder-bytes/op for
// the metrics-smoke flatness gate (docs/metrics.md).
func benchmarkRecorderBytes(b *testing.B, backend metrics.Backend, requests int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := metrics.NewRecorderWith(backend, 0)
		synthRecords(rec, requests)
		if rec.Count() != requests {
			b.Fatalf("recorded %d of %d", rec.Count(), requests)
		}
		b.ReportMetric(float64(rec.FootprintBytes()), "recorder-bytes/op")
	}
}

// The streaming pair is the O(1) evidence: 10x the requests, flat
// bytes. The exact run rides along for contrast in BENCH_PR8.json.
func BenchmarkRecorderStreaming100k(b *testing.B) {
	benchmarkRecorderBytes(b, metrics.Streaming, 100_000)
}

func BenchmarkRecorderStreaming1M(b *testing.B) {
	benchmarkRecorderBytes(b, metrics.Streaming, 1_000_000)
}

func BenchmarkRecorderExact100k(b *testing.B) {
	benchmarkRecorderBytes(b, metrics.Exact, 100_000)
}
