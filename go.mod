// Zero-dependency by design: the simulator, the experiment drivers,
// and even the simlint static-analysis suite (an in-tree mirror of the
// golang.org/x/tools go/analysis API — see docs/static-analysis.md)
// build with the standard library alone.
module triplea

go 1.24
