module triplea

go 1.22
