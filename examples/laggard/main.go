// Laggard scenario: storage contention in its purest form. A skewed
// workload hammers a tiny working set that lives entirely on ONE FIMM
// of one cluster — the other three FIMMs sit idle. The non-autonomic
// array queues behind that laggard; Triple-A's data-layout reshaping
// (Section 4.2) drains the hot pages to sibling FIMMs and redirects
// incoming writes, spreading the load across the cluster.
//
// The example builds the trace by hand against the public array API,
// showing how to drive the simulator without the workload generator.
package main

import (
	"fmt"
	"log"
	"sort"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/trace"
	"triplea/internal/units"
)

func main() {
	cfg := array.DefaultConfig()
	_ = cfg.Geometry.PagesPerFIMM() // LPNs below stay within FIMM 0

	// Under the clustered layout, LPNs [0, PagesPerFIMM) live on FIMM 0
	// of cluster sw0/cl0. A 64-page working set there is a guaranteed
	// single-FIMM hotspot.
	const workingSet = 64
	const requests = 20_000
	rng := simx.NewRNG(3)
	var reqs []trace.Request
	var now simx.Time
	for i := 0; i < requests; i++ {
		now += simx.Time(20+rng.Intn(20)) * simx.Microsecond // ~30-50K IOPS
		op := trace.Read
		if rng.Bool(0.3) {
			op = trace.Write
		}
		reqs = append(reqs, trace.Request{
			Arrival: now,
			Op:      op,
			LPN:     rng.Int63n(workingSet),
			Pages:   units.Page,
		})
	}

	run := func(autonomic bool) {
		a, err := array.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var mgr *core.Manager
		mode := "baseline"
		if autonomic {
			mgr = core.Attach(a, core.DefaultOptions())
			mode = "triple-a"
		}
		rec, err := a.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}

		// Where does the working set live now?
		perFIMM := map[topo.FIMMID]int{}
		for lpn := int64(0); lpn < workingSet; lpn++ {
			perFIMM[a.FTL().ResidentFIMM(lpn)]++
		}
		fmt.Printf("%s:\n  avg %-10v P99 %-10v\n", mode, rec.AvgLatency(), rec.Percentile(99))
		fmt.Printf("  working-set placement:")
		fimms := make([]topo.FIMMID, 0, len(perFIMM))
		for f := range perFIMM {
			fimms = append(fimms, f)
		}
		sort.Slice(fimms, func(i, j int) bool {
			return fimms[i].Flat(cfg.Geometry) < fimms[j].Flat(cfg.Geometry)
		})
		for _, f := range fimms {
			fmt.Printf(" %v=%d", f, perFIMM[f])
		}
		fmt.Println()
		if mgr != nil {
			s := mgr.Stats()
			fmt.Printf("  reshapes=%d writeRedirects=%d laggardsDetected=%d\n",
				s.Reshapes, s.WriteRedirects, s.LaggardsDetected)
		}
		fmt.Println()
	}
	run(false)
	run(true)
}
