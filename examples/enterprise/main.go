// Enterprise scenario: a storage consolidation study. Several of the
// paper's enterprise workloads (OLTP, mail, project serving, proxy)
// share the all-flash array as one large pool; the example tracks
// SLA-violation rates and the contention profile with and without the
// autonomic management — the decision a storage architect would
// actually make with this library.
package main

import (
	"fmt"
	"log"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/metrics"
	"triplea/internal/report"
	"triplea/internal/simx"
	"triplea/internal/workload"
)

// slaTarget is the per-request latency objective for this consolidation
// exercise (a typical all-flash array SLA, far above the device time).
const slaTarget = 1 * simx.Millisecond

func main() {
	cfg := array.DefaultConfig()
	names := []string{"fin", "hm", "prxy", "websql"}

	t := report.NewTable("enterprise consolidation on one 16 TB pool",
		"workload", "mode", "avgLat", "P99", ">SLA(1ms)", "linkCont", "storCont")
	for _, name := range names {
		p, ok := workload.ProfileByName(name)
		if !ok {
			log.Fatalf("unknown workload %s", name)
		}
		p.Requests = 20_000
		reqs, _, err := workload.Generate(cfg.Geometry, p, 99)
		if err != nil {
			log.Fatal(err)
		}
		for _, autonomic := range []bool{false, true} {
			a, err := array.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			mode := "baseline"
			if autonomic {
				core.Attach(a, core.DefaultOptions())
				mode = "triple-a"
			}
			rec, err := a.Run(reqs)
			if err != nil {
				log.Fatal(err)
			}
			mb := rec.MeanBreakdown()
			t.AddRow(name, mode,
				rec.AvgLatency().String(),
				rec.Percentile(99).String(),
				fmt.Sprintf("%.1f%%", slaViolations(rec)*100),
				mb.LinkContention().String(),
				mb.StorageContention().String(),
			)
		}
	}
	fmt.Println(t.String())
	fmt.Println("SLA violations are requests exceeding", slaTarget)
}

// slaViolations reports the fraction of requests over the SLA target.
func slaViolations(rec *metrics.Recorder) float64 {
	if rec.Count() == 0 {
		return 0
	}
	n := 0
	for _, r := range rec.Records() {
		if r.Latency() > slaTarget {
			n++
		}
	}
	return float64(n) / float64(rec.Count())
}
