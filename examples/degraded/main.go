// Degraded-hardware scenario: one FIMM in the array has worn out and
// runs its cell operations 8x slower — an intrinsic laggard, not just a
// hot one. The non-autonomic array queues behind it; Triple-A's laggard
// detection (Equation 3) notices the stalled commands piling up on that
// slot and reshapes the data away, so the slow module stops mattering.
package main

import (
	"fmt"
	"log"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/units"
	"triplea/internal/workload"
)

func main() {
	slow := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 0}, FIMM: 0}

	// Moderate uniform traffic over the first cluster's address range:
	// healthy FIMMs absorb it easily; the degraded one cannot.
	p := workload.MicroRead(1, 20_000, 40_000)
	p.HotIORatio = 0.8 // most traffic on cluster sw0/cl0
	p.Footprint = 512 * units.Page

	run := func(degrade, autonomic bool) {
		cfg := array.DefaultConfig()
		if degrade {
			cfg.DegradedFIMMs = map[topo.FIMMID]float64{slow: 8}
		}
		reqs, _, err := workload.Generate(cfg.Geometry, p, 5)
		if err != nil {
			log.Fatal(err)
		}
		a, err := array.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var mgr *core.Manager
		label := "baseline"
		if autonomic {
			mgr = core.Attach(a, core.DefaultOptions())
			label = "triple-a"
		}
		hw := "healthy"
		if degrade {
			hw = fmt.Sprintf("FIMM %v 8x slow", slow)
		}
		rec, err := a.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %-22s avg %-10v P99 %-10v sustained %4.0fK IOPS",
			label, hw, rec.AvgLatency(), rec.Percentile(99),
			rec.SustainedIOPS(5*simx.Millisecond)/1000)
		if mgr != nil {
			s := mgr.Stats()
			fmt.Printf("  (laggards=%d reshapes=%d redirects=%d)",
				s.LaggardsDetected, s.Reshapes, s.WriteRedirects)
		}
		fmt.Println()
	}

	run(false, false)
	run(true, false)
	run(true, true)
}
