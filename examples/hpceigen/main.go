// HPC scenario: the Eigensolver I/O pattern from the paper's Section 5
// — read-intensive, mostly sequential traffic from a thousand-node
// nuclear-physics application, hitting the flash array either through
// one global address space (g-eigen, hot clusters spread across the
// fabric) or through per-router local spaces (l-eigen, more but milder
// hot clusters). Both variants run on the baseline and on Triple-A.
package main

import (
	"fmt"
	"log"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/simx"
	"triplea/internal/workload"
)

func main() {
	cfg := array.DefaultConfig()
	fmt.Println("Eigensolver on the 16 TB all-flash array (paper Sections 5.2, 6.3)")
	fmt.Println()

	for _, name := range []string{"g-eigen", "l-eigen"} {
		p, ok := workload.ProfileByName(name)
		if !ok {
			log.Fatalf("missing profile %s", name)
		}
		p.Requests = 30_000
		reqs, gen, err := workload.Generate(cfg.Geometry, p, 7)
		if err != nil {
			log.Fatal(err)
		}

		type outcome struct {
			avg, p99 simx.Time
			sust     float64
			moved    uint64
		}
		run := func(autonomic bool) outcome {
			a, err := array.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if autonomic {
				core.Attach(a, core.DefaultOptions())
			}
			rec, err := a.Run(reqs)
			if err != nil {
				log.Fatal(err)
			}
			return outcome{
				avg:   rec.AvgLatency(),
				p99:   rec.Percentile(99),
				sust:  rec.SustainedIOPS(5 * simx.Millisecond),
				moved: a.Migrations(),
			}
		}
		base, auto := run(false), run(true)

		fmt.Printf("%s: %d hot clusters, %.0f%% of I/O on them, %.1f%% sequential reads\n",
			name, len(gen.HotClusters), gen.HotIORatio()*100, (1-gen.ReadRandomness())*100)
		fmt.Printf("  baseline:  avg %-10v P99 %-10v sustained %.0fK IOPS\n",
			base.avg, base.p99, base.sust/1000)
		fmt.Printf("  triple-a:  avg %-10v P99 %-10v sustained %.0fK IOPS (%d pages migrated)\n",
			auto.avg, auto.p99, auto.sust/1000, auto.moved)
		fmt.Printf("  gain:      %.1fx latency, %.2fx throughput\n\n",
			float64(base.avg)/float64(auto.avg), auto.sust/base.sust)
	}
}
