// Quickstart: build the paper's 16 TB Triple-A array, run the `read`
// micro-benchmark with two hot clusters against both the non-autonomic
// baseline and the autonomic array, and print the comparison.
package main

import (
	"fmt"
	"log"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/metrics"
	"triplea/internal/simx"
	"triplea/internal/workload"
)

func main() {
	cfg := array.DefaultConfig() // 4 switches x 16 clusters x 4 FIMMs = 16 TB

	// The paper's `read` micro-benchmark: 4 KB random reads, two hot
	// clusters receiving most of the traffic.
	profile := workload.MicroRead(2 /* hot clusters */, 20_000 /* requests */, 240_000 /* IOPS */)
	reqs, gen, err := workload.Generate(cfg.Geometry, profile, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d requests, %.0f%% to %d hot clusters\n\n",
		len(reqs), gen.HotIORatio()*100, len(gen.HotClusters))

	run := func(autonomic bool) *metrics.Recorder {
		a, err := array.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if autonomic {
			core.Attach(a, core.DefaultOptions())
		}
		rec, err := a.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}
		return rec
	}

	base := run(false)
	auto := run(true)

	fmt.Printf("%-22s %14s %14s\n", "", "non-autonomic", "triple-a")
	fmt.Printf("%-22s %14v %14v\n", "average latency", base.AvgLatency(), auto.AvgLatency())
	fmt.Printf("%-22s %14v %14v\n", "P99 latency", base.Percentile(99), auto.Percentile(99))
	win := 5 * simx.Millisecond
	fmt.Printf("%-22s %13.0fK %13.0fK\n", "sustained IOPS",
		base.SustainedIOPS(win)/1000, auto.SustainedIOPS(win)/1000)
	fmt.Printf("\nTriple-A: %.1fx lower latency, %.2fx sustained throughput\n",
		float64(base.AvgLatency())/float64(auto.AvgLatency()),
		auto.SustainedIOPS(win)/base.SustainedIOPS(win))
}
