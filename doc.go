// Package triplea is a faithful reimplementation of Triple-A, the
// non-SSD based autonomic all-flash array of Jung, Choi, Shalf and
// Kandemir (ASPLOS 2014), as a discrete-event-simulated storage system
// in pure Go.
//
// The library models the entire stack the paper describes: bare NAND
// flash packages (internal/nand), Flash Inline Memory Modules
// (internal/fimm), PCI Express fabric with credit flow control
// (internal/pcie), cluster endpoints with HAL and shared local buses
// (internal/cluster), an array-global flash translation layer
// (internal/ftl), the assembled non-autonomic baseline array
// (internal/array), and — the paper's contribution — the autonomic
// contention manager (internal/core) that detects hot clusters
// (Equation 1), selects cold neighbours (Equation 2), detects laggard
// FIMMs (Equation 3 and queue examination) and reshapes the physical
// data layout with shadow-cloned migrations.
//
// internal/experiments regenerates every table and figure of the
// paper's evaluation; cmd/triplea-bench prints them. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package triplea
