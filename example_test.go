package triplea

import (
	"fmt"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/simx"
	"triplea/internal/trace"
)

// Example builds a small Triple-A array, performs a write and a read of
// the same logical page, and reports what the autonomic array observed.
// The simulation is deterministic, so the output is exact.
func Example() {
	cfg := array.DefaultConfig()
	cfg.Geometry.Switches = 2
	cfg.Geometry.ClustersPerSwitch = 2

	a, err := array.New(cfg)
	if err != nil {
		panic(err)
	}
	core.Attach(a, core.DefaultOptions()) // make it autonomic

	rec, err := a.Run([]trace.Request{
		{Arrival: 0, Op: trace.Write, LPN: 42, Pages: 1},
		{Arrival: simx.Millisecond, Op: trace.Read, LPN: 42, Pages: 1},
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("completed: %d requests (%d read, %d write)\n",
		rec.Count(), rec.Reads(), rec.Writes())
	fmt.Printf("write latency: %v (buffered early-ack)\n", rec.Records()[0].Latency())
	fmt.Printf("mapped pages: %d\n", a.FTL().MappedPages())
	// Output:
	// completed: 2 requests (1 read, 1 write)
	// write latency: 2.40us (buffered early-ack)
	// mapped pages: 1
}
