// Command benchjson converts `go test -bench` output into a stable
// JSON document (ns/op, B/op, allocs/op plus any custom b.ReportMetric
// units per benchmark) and runs two gates over such documents.
//
// Usage:
//
//	go test . -bench . -benchtime 1x -benchmem | benchjson -o BENCH.json
//	benchjson -compare BASELINE.json -against NEW.json [-metric UNIT] [-tolerance 0.10] [-names A,B]
//	benchjson -flat METRIC -names A,B[,C...] -against NEW.json [-tolerance 0.10]
//
// The first form parses benchmark result lines from stdin. The second
// form exits non-zero if any benchmark present in both files grew its
// -metric (default allocs/op) by more than the tolerance fraction —
// the CI gate that keeps the pooled hot path allocation-free
// (allocs/op) and, with -metric ns/op, the latency gate the decision
// flight recorder's zero-overhead-off contract is held to; -names
// restricts the comparison to the listed benchmarks. The third form
// exits non-zero unless the named benchmarks agree on METRIC (e.g.
// recorder-bytes/op) within the tolerance — the CI gate that keeps the
// streaming metrics backend's memory flat across run lengths.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements. Zero-valued metrics
// were absent from the input line (e.g. no -benchmem). Extra holds
// custom units emitted via testing.B.ReportMetric (key = the unit
// string, e.g. "recorder-bytes/op"); it is omitted when empty.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Metric reads a named metric off the result: one of the three builtin
// units or any custom ReportMetric unit.
func (r Result) Metric(unit string) (float64, bool) {
	switch unit {
	case "ns/op":
		return r.NsPerOp, r.NsPerOp > 0
	case "B/op":
		return r.BytesPerOp, r.BytesPerOp > 0
	case "allocs/op":
		return r.AllocsPerOp, r.AllocsPerOp > 0
	}
	v, ok := r.Extra[unit]
	return v, ok
}

// Document is the top-level JSON shape.
type Document struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("o", "", "output file (default stdout)")
		compare   = flag.String("compare", "", "baseline JSON file: compare instead of parsing stdin")
		against   = flag.String("against", "", "candidate JSON file for -compare / -flat")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional growth (-compare) or spread (-flat)")
		flat      = flag.String("flat", "", "metric unit (e.g. recorder-bytes/op): assert -names agree within -tolerance")
		names     = flag.String("names", "", "comma-separated benchmark names for -flat, or to restrict -compare")
		metric    = flag.String("metric", "allocs/op", "metric unit compared by -compare")
	)
	flag.Parse()

	if *compare != "" {
		if err := runCompare(*compare, *against, *metric, *names, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *flat != "" {
		if err := runFlat(*against, *flat, *names, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines:
//
//	BenchmarkName-8   	       1	6151224890 ns/op	764668776 B/op	 3795622 allocs/op
func parse(sc *bufio.Scanner) (*Document, error) {
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	doc := &Document{}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "--- BENCH:" detail lines
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			// Strip the GOMAXPROCS suffix so documents compare across machines.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				// Custom testing.B.ReportMetric units.
				if strings.HasSuffix(unit, "/op") {
					if r.Extra == nil {
						r.Extra = make(map[string]float64)
					}
					r.Extra[unit] = v
				}
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	return doc, sc.Err()
}

func load(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Result, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		m[b.Name] = b
	}
	return m, nil
}

// runCompare fails when a benchmark present in both documents grew its
// metric beyond the tolerance. Benchmarks only in one document are
// reported but do not fail the gate (experiments come and go). A
// non-empty nameList restricts the gate to those benchmarks, and then
// a name absent from either document is an error, not a skip.
func runCompare(basePath, newPath, metric, nameList string, tolerance float64) error {
	if newPath == "" {
		return fmt.Errorf("-compare requires -against")
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cand, err := load(newPath)
	if err != nil {
		return err
	}
	var names []string
	only := nameList != ""
	if only {
		names = strings.Split(nameList, ",")
	} else {
		for name := range base {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	var failed []string
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			if only {
				return fmt.Errorf("%s: benchmark %q not present", basePath, name)
			}
			continue
		}
		c, ok := cand[name]
		if !ok {
			if only {
				return fmt.Errorf("%s: benchmark %q not present", newPath, name)
			}
			fmt.Printf("benchjson: %s: absent from %s (skipped)\n", name, newPath)
			continue
		}
		bv, ok := b.Metric(metric)
		if !ok || bv <= 0 {
			if only {
				return fmt.Errorf("%s: benchmark %q has no %q metric", basePath, name, metric)
			}
			continue // baseline has no data for this benchmark/metric
		}
		cv, _ := c.Metric(metric)
		growth := (cv - bv) / bv
		status := "ok"
		if growth > tolerance {
			status = "FAIL"
			failed = append(failed, name)
		}
		fmt.Printf("benchjson: %-32s %s %12.0f -> %12.0f (%+.1f%%) %s\n",
			name, metric, bv, cv, growth*100, status)
	}
	if len(failed) > 0 {
		return fmt.Errorf("%s regression (> %.0f%%) in: %s",
			metric, tolerance*100, strings.Join(failed, ", "))
	}
	return nil
}

// runFlat fails unless every named benchmark reports the metric and the
// relative spread (max/min - 1) stays within the tolerance — the
// steady-state flatness gate for O(1) metric state.
func runFlat(path, metric, nameList string, tolerance float64) error {
	if path == "" {
		return fmt.Errorf("-flat requires -against")
	}
	names := strings.Split(nameList, ",")
	if nameList == "" || len(names) < 2 {
		return fmt.Errorf("-flat requires -names with at least two benchmarks")
	}
	doc, err := load(path)
	if err != nil {
		return err
	}
	var lo, hi float64
	for i, name := range names {
		r, ok := doc[name]
		if !ok {
			return fmt.Errorf("%s: benchmark %q not present", path, name)
		}
		v, ok := r.Metric(metric)
		if !ok {
			return fmt.Errorf("%s: benchmark %q has no %q metric", path, name, metric)
		}
		if v <= 0 {
			return fmt.Errorf("%s: benchmark %q reports non-positive %q (%v)", path, name, metric, v)
		}
		fmt.Printf("benchjson: %-32s %s = %.0f\n", name, metric, v)
		if i == 0 || v < lo {
			lo = v
		}
		if i == 0 || v > hi {
			hi = v
		}
	}
	spread := hi/lo - 1
	if spread > tolerance {
		return fmt.Errorf("%s spread %.1f%% exceeds %.0f%% across %s",
			metric, spread*100, tolerance*100, nameList)
	}
	fmt.Printf("benchjson: %s flat within %.1f%% (tolerance %.0f%%)\n", metric, spread*100, tolerance*100)
	return nil
}
