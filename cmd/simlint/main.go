// Command simlint is the repository's determinism-and-correctness lint
// suite, packaged as a `go vet` backend:
//
//	go build -o bin/simlint ./cmd/simlint
//	go vet -vettool=bin/simlint ./...
//
// See docs/static-analysis.md for the rules and the audited-suppression
// convention (//simlint:<rule>).
package main

import (
	"triplea/internal/lint/analyzers"
	"triplea/internal/lint/unitchecker"
)

func main() {
	unitchecker.Main(analyzers.All()...)
}
