// Command triplea-trace generates synthetic workload traces in the
// text interchange format, or summarises existing trace files.
//
// Usage:
//
//	triplea-trace -workload fin -out fin.trace          # generate
//	triplea-trace -inspect fin.trace                    # summarise
package main

import (
	"flag"
	"fmt"
	"os"

	"triplea/internal/array"
	"triplea/internal/trace"
	"triplea/internal/units"
	"triplea/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "", "Table 1 workload name, or read/write")
		out      = flag.String("out", "", "output file (default stdout)")
		inspect  = flag.String("inspect", "", "summarise an existing trace file")
		requests = flag.Int("requests", 60_000, "requests to generate")
		seed     = flag.Uint64("seed", 42, "generation seed")
		hot      = flag.Int("hot", 2, "hot clusters for micro-benchmarks")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		reqs, err := trace.Decode(f)
		if err != nil {
			fatal(err)
		}
		s := trace.Summarize(reqs)
		fmt.Printf("requests: %d (%d reads, %d writes)\n", s.Requests, s.Reads, s.Writes)
		fmt.Printf("pages: %d (%.1f MiB)\n", s.Pages, float64(units.PagesToBytes(s.Pages, 4*units.KiB).Int64())/(1<<20))
		fmt.Printf("read ratio: %.1f%%\n", s.ReadRatio()*100)
		fmt.Printf("duration: %v, offered: %s IOPS\n", s.DurationNS, fmt.Sprintf("%.0f", s.OfferedIOPS()))
	case *wl != "":
		var p workload.Profile
		switch *wl {
		case "read":
			p = workload.MicroRead(*hot, *requests, 150_000)
		case "write":
			p = workload.MicroWrite(*hot, *requests, 150_000)
		default:
			var ok bool
			p, ok = workload.ProfileByName(*wl)
			if !ok {
				fatal(fmt.Errorf("unknown workload %q", *wl))
			}
			p.Requests = *requests
		}
		g := array.DefaultConfig().Geometry
		reqs, gen, err := workload.Generate(g, p, *seed)
		if err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		fmt.Fprintf(w, "# workload=%s requests=%d seed=%d readRatio=%.3f hotIO=%.3f hot=%d\n",
			p.Name, len(reqs), *seed, gen.ReadRatio(), gen.HotIORatio(), len(gen.HotClusters))
		if err := trace.Encode(w, reqs); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "triplea-trace:", err)
	os.Exit(1)
}
