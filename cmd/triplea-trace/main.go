// Command triplea-trace generates synthetic workload traces in the
// text interchange format, summarises existing trace files, or
// pretty-prints recorded decision traces.
//
// Usage:
//
//	triplea-trace -workload fin -out fin.trace          # generate
//	triplea-trace -inspect fin.trace                    # summarise
//	triplea-trace -decisions decisions.json             # pretty-print
package main

import (
	"flag"
	"fmt"
	"os"

	"triplea/internal/array"
	"triplea/internal/decision"
	"triplea/internal/trace"
	"triplea/internal/units"
	"triplea/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "", "Table 1 workload name, or read/write")
		out       = flag.String("out", "", "output file (default stdout)")
		inspect   = flag.String("inspect", "", "summarise an existing trace file")
		decisions = flag.String("decisions", "", "pretty-print a decision TraceSet JSON file (triplea-bench -decisions)")
		requests  = flag.Int("requests", 60_000, "requests to generate")
		seed      = flag.Uint64("seed", 42, "generation seed")
		hot       = flag.Int("hot", 2, "hot clusters for micro-benchmarks")
	)
	flag.Parse()

	switch {
	case *decisions != "":
		b, err := os.ReadFile(*decisions)
		if err != nil {
			fatal(err)
		}
		ts, err := decision.DecodeTraceSet(b)
		if err != nil {
			fatal(err)
		}
		printDecisions(ts)
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		reqs, err := trace.Decode(f)
		if err != nil {
			fatal(err)
		}
		s := trace.Summarize(reqs)
		fmt.Printf("requests: %d (%d reads, %d writes)\n", s.Requests, s.Reads, s.Writes)
		fmt.Printf("pages: %d (%.1f MiB)\n", s.Pages, float64(units.PagesToBytes(s.Pages, 4*units.KiB).Int64())/(1<<20))
		fmt.Printf("read ratio: %.1f%%\n", s.ReadRatio()*100)
		fmt.Printf("duration: %v, offered: %s IOPS\n", s.DurationNS, fmt.Sprintf("%.0f", s.OfferedIOPS()))
	case *wl != "":
		var p workload.Profile
		switch *wl {
		case "read":
			p = workload.MicroRead(*hot, *requests, 150_000)
		case "write":
			p = workload.MicroWrite(*hot, *requests, 150_000)
		default:
			var ok bool
			p, ok = workload.ProfileByName(*wl)
			if !ok {
				fatal(fmt.Errorf("unknown workload %q", *wl))
			}
			p.Requests = *requests
		}
		g := array.DefaultConfig().Geometry
		reqs, gen, err := workload.Generate(g, p, *seed)
		if err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		fmt.Fprintf(w, "# workload=%s requests=%d seed=%d readRatio=%.3f hotIO=%.3f hot=%d\n",
			p.Name, len(reqs), *seed, gen.ReadRatio(), gen.HotIORatio(), len(gen.HotClusters))
		if err := trace.Encode(w, reqs); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// printDecisions renders a recorded decision TraceSet for human eyes:
// per scenario, the family totals, then every retained record with its
// chosen candidate, regret and top-K scored alternatives.
func printDecisions(ts decision.TraceSet) {
	fmt.Printf("decision traces: seed=%d scenarios=%d\n", ts.Seed, len(ts.Scenarios))
	for _, sc := range ts.Scenarios {
		fmt.Printf("\n== %s: %d decisions ==\n", sc.Name, sc.Trace.Summary.Decisions)
		for _, f := range sc.Trace.Summary.Families {
			fmt.Printf("  %-14s count=%-6d meanRegret=%.4f maxRegret=%.4f p95=%.4f\n",
				f.Family, f.Count, f.RegretMean, f.RegretMax, f.RegretP95)
		}
		for _, r := range sc.Trace.Records {
			fmt.Printf("  #%d t=%d %s cluster=%d chosen=%d score=%.4f regret=%.4f dest=%d cands=%d\n",
				r.Seq, int64(r.At), r.Family, r.Cluster, r.Chosen, r.Score, r.Regret, r.Dest, r.Candidates)
			for _, alt := range r.Alternatives {
				fmt.Printf("      alt id=%d score=%.4f %s\n", alt.ID, alt.Score, alt.Reason)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "triplea-trace:", err)
	os.Exit(1)
}
