package main

// The artifacts are committed and CI diffs a regeneration against
// them, so byte-determinism is a contract, not a nicety: these tests
// pin it at both levels — the renderers on a synthetic model, and the
// whole pipeline (source loading, extraction, aggregation) end to end
// against the real repository.

import (
	"bytes"
	"strings"
	"testing"
)

// synthetic builds a small graph in two different insertion orders;
// the rendered bytes must not depend on which one we got.
func synthetic(reversed bool) *graph {
	nodes := []node{
		{Pkg: "internal/array", Name: "array", Zone: "global"},
		{Pkg: "internal/pcie", Name: "pcie", Zone: "fabric"},
		{Pkg: "internal/cluster", Name: "cluster", Zone: "subtree"},
		{Pkg: "internal/simx", Name: "simx", Zone: "service"},
	}
	edges := []edge{
		{From: "internal/array", To: "internal/pcie", Type: "Link", Via: "fabric",
			Kinds: []string{"field"}, Registered: true, Cut: true,
			Sites: []string{"internal/array/array.go:10 (field Array.up)"}},
		{From: "internal/array", To: "internal/pcie", Type: "Packet", Via: "fabric",
			Kinds: []string{"store"}, Registered: true, Cut: true,
			Sites: []string{"internal/array/array.go:20 (store to Packet.Addr)"}},
		{From: "internal/cluster", To: "internal/simx", Type: "Engine", Via: "engine",
			Kinds: []string{"field"}, Registered: true, Sync: true,
			Sites: []string{"internal/cluster/cluster.go:5 (field Endpoint.eng)"}},
	}
	if reversed {
		for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
			edges[i], edges[j] = edges[j], edges[i]
		}
	}
	return &graph{Schema: "triplea-component-graph/v1", Nodes: nodes, Edges: edges}
}

func TestRenderDOTShape(t *testing.T) {
	out := string(renderDOT(synthetic(false)))
	for _, want := range []string{
		`subgraph cluster_global`,
		`subgraph cluster_fabric`,
		`subgraph cluster_subtree`,
		`subgraph cluster_service`,
		// Two edges to the same target collapse into one DOT edge with
		// a real \n separator between type names — not an escaped one.
		`"array" -> "pcie" [label="Link\nPacket", color="#b22222", style=bold];`,
		`"cluster" -> "simx" [label="Engine", color=gray, style=dashed];`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `\\n`) {
		t.Errorf("DOT labels double-escape the newline separator:\n%s", out)
	}
}

func TestRenderJSONShape(t *testing.T) {
	out := string(renderJSON(synthetic(false)))
	for _, want := range []string{
		`"schema": "triplea-component-graph/v1"`,
		`"cut": true`,
		`"sync": true`,
		`"sites"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %q:\n%s", want, out)
		}
	}
}

func TestBuildGraphDeterministic(t *testing.T) {
	// The real pipeline, twice, from a fresh loader each time: any map
	// iteration leaking into node/edge/kind/site order shows up as a
	// byte diff here long before CI diffs the committed artifacts.
	t.Chdir("../..")
	var dots, jsons [][]byte
	for i := 0; i < 2; i++ {
		g, problems, err := buildGraph()
		if err != nil {
			t.Fatalf("buildGraph: %v", err)
		}
		if len(problems) > 0 {
			t.Fatalf("component graph not certified: %v", problems)
		}
		dots = append(dots, renderDOT(g))
		jsons = append(jsons, renderJSON(g))
	}
	if !bytes.Equal(dots[0], dots[1]) {
		t.Errorf("DOT output differs between two identical builds")
	}
	if !bytes.Equal(jsons[0], jsons[1]) {
		t.Errorf("JSON output differs between two identical builds")
	}
}
