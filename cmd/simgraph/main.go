// Command simgraph renders the statically-certified
// component-communication graph of the simulation core as
// deterministic DOT and JSON artifacts — the machine-checked
// counterpart of the architecture diagram, and the certified cut set
// the partitioned-simulation work starts from.
//
//	go run ./cmd/simgraph          # rewrite docs/graph/components.{dot,json}
//	go run ./cmd/simgraph -check   # fail if the committed artifacts are stale
//
// The tool loads the component packages from source
// (internal/lint/srcload), extracts every cross-package component
// reference with the same pass the partsafe analyzer enforces
// (callgraph.CollectRefs), and joins them against the declared
// architecture manifest (analyzers.ComponentEdges). It exits non-zero
// if any reference is neither registered nor audited with the simlint:edge marker
// (lint would fail too — defense in depth), or if a manifest row has
// no witnessing reference left (a rotten entry), so the committed
// graph can only ever be the true one. Output is byte-deterministic:
// nodes and edges are fully sorted and no map iteration order leaks
// into either artifact.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"triplea/internal/lint/analyzers"
	"triplea/internal/lint/callgraph"
	"triplea/internal/lint/srcload"
)

// zoneOrder fixes the rendering order of the partition zones.
var zoneOrder = []string{"global", "fabric", "subtree", "service"}

// zoneLabels names the zones in the DOT rendering.
var zoneLabels = map[string]string{
	"global":  "global coordination (one instance per array)",
	"fabric":  "pcie fabric (the partition cut)",
	"subtree": "switch subtree (replicated per partition)",
	"service": "services (partition-aware by declaration)",
}

type node struct {
	Pkg  string `json:"pkg"`  // package-path suffix
	Name string `json:"name"` // short name
	Zone string `json:"zone"`
}

type edge struct {
	From       string   `json:"from"`
	To         string   `json:"to"`
	Type       string   `json:"type"`
	Via        string   `json:"via,omitempty"`
	Note       string   `json:"note,omitempty"`
	Kinds      []string `json:"kinds"`
	Registered bool     `json:"registered"`
	Audited    bool     `json:"audited,omitempty"`
	Cut        bool     `json:"cut"`
	Sync       bool     `json:"sync"`
	Sites      []string `json:"sites"`
}

type graph struct {
	Schema string `json:"schema"`
	Nodes  []node `json:"nodes"`
	Edges  []edge `json:"edges"`
}

func main() {
	dir := flag.String("dir", "docs/graph", "artifact directory")
	check := flag.Bool("check", false, "verify committed artifacts instead of writing")
	flag.Parse()

	g, problems, err := buildGraph()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simgraph:", err)
		os.Exit(1)
	}
	if len(problems) > 0 {
		fmt.Fprintln(os.Stderr, "simgraph: the component graph is not certified:")
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "  "+p)
		}
		os.Exit(2)
	}

	artifacts := []struct {
		name string
		data []byte
	}{
		{"components.dot", renderDOT(g)},
		{"components.json", renderJSON(g)},
	}

	if *check {
		stale := false
		for _, a := range artifacts {
			full := filepath.Join(*dir, a.name)
			committed, err := os.ReadFile(full)
			if err != nil || !bytes.Equal(committed, a.data) {
				fmt.Fprintf(os.Stderr, "simgraph: %s is stale (run `make graph` and commit the result)\n", full)
				stale = true
			}
		}
		if stale {
			os.Exit(1)
		}
		fmt.Printf("simgraph: %d nodes, %d edges; committed artifacts match the source\n",
			len(g.Nodes), len(g.Edges))
		return
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "simgraph:", err)
		os.Exit(1)
	}
	for _, a := range artifacts {
		if err := os.WriteFile(filepath.Join(*dir, a.name), a.data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "simgraph:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("simgraph: wrote %s/{components.dot,components.json}: %d nodes, %d edges\n",
		*dir, len(g.Nodes), len(g.Edges))
}

// buildGraph loads the component scope and joins extracted references
// against the manifest. problems lists certification failures
// (unregistered+unaudited references, rotten manifest rows).
func buildGraph() (*graph, []string, error) {
	root, err := os.Getwd()
	if err != nil {
		return nil, nil, err
	}
	modPath, err := srcload.ModulePath(root)
	if err != nil {
		return nil, nil, fmt.Errorf("run from the module root: %w", err)
	}
	loader := srcload.New(root, modPath)
	scope := analyzers.ComponentScope()
	zones := analyzers.ComponentZones()

	type key struct{ from, to, typ string }
	merged := make(map[key]*edge)
	witnessed := make(map[key]bool)
	var problems []string

	for _, suffix := range scope {
		pkg, err := loader.Load(modPath + "/" + suffix)
		if err != nil {
			return nil, nil, err
		}
		refs := callgraph.CollectRefs(pkg.Pkg, pkg.Info, pkg.Files, nil, analyzers.IsComponentType)
		for _, r := range refs {
			toSuffix := scopeSuffix(r.To.Pkg().Path(), scope)
			if toSuffix == "" {
				continue // unreachable: the component filter is scope-bounded
			}
			k := key{suffix, toSuffix, r.To.Name()}
			witnessed[k] = true
			pos := loader.Fset().Position(r.Pos)
			site := fmt.Sprintf("%s:%d (%s)", relPath(root, pos.Filename), pos.Line, r.Site)
			audited := analyzers.MarkerNear(loader.Fset(), fileAt(pkg, r.Pos), r.Pos, "edge")
			registered := analyzers.EdgeRegistered(pkg.Path, r.To.Pkg().Path(), r.To.Name())
			if !registered && !audited {
				problems = append(problems,
					fmt.Sprintf("undeclared edge %s -> %s.%s at %s", suffix, toSuffix, r.To.Name(), site))
			}
			e := merged[k]
			if e == nil {
				e = &edge{
					From: suffix, To: toSuffix, Type: r.To.Name(),
					Registered: registered,
					Audited:    true,
					Cut:        cutEdge(zones[suffix], zones[toSuffix]),
					Sync:       zones[toSuffix] == "service" && zones[suffix] != "service",
				}
				merged[k] = e
			}
			e.Kinds = appendUnique(e.Kinds, r.Kind.String())
			e.Sites = appendUnique(e.Sites, site)
			// Audited means "unregistered, and every witnessing site
			// carries the simlint:edge marker".
			if registered || !audited {
				e.Audited = false
			}
		}
	}

	manifest := analyzers.ComponentEdges()
	for _, m := range manifest {
		k := key{m.From, m.To, m.Type}
		if !witnessed[k] {
			problems = append(problems,
				fmt.Sprintf("manifest row %s -> %s.%s (%s) has no witnessing reference: drop it",
					m.From, m.To, m.Type, m.Via))
			continue
		}
		if e := merged[k]; e != nil {
			e.Via, e.Note = m.Via, m.Note
		}
	}
	sort.Strings(problems)

	g := &graph{Schema: "triplea-component-graph/v1"}
	for _, suffix := range scope {
		g.Nodes = append(g.Nodes, node{Pkg: suffix, Name: path.Base(suffix), Zone: zones[suffix]})
	}
	sort.Slice(g.Nodes, func(i, j int) bool {
		if zi, zj := zoneRank(g.Nodes[i].Zone), zoneRank(g.Nodes[j].Zone); zi != zj {
			return zi < zj
		}
		return g.Nodes[i].Name < g.Nodes[j].Name
	})
	for _, e := range merged { //simlint:ordered collected into a slice and sorted below
		sort.Strings(e.Kinds)
		sort.Strings(e.Sites)
		g.Edges = append(g.Edges, *e)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Type < b.Type
	})
	return g, problems, nil
}

// cutEdge reports whether a reference between the two zones crosses
// the partition boundary: state a partitioned engine must own or
// mediate. Same-zone containment and service use are not cuts.
func cutEdge(fz, tz string) bool {
	return fz != tz && tz != "service" && fz != "" && tz != ""
}

func zoneRank(z string) int {
	for i, zz := range zoneOrder {
		if z == zz {
			return i
		}
	}
	return len(zoneOrder)
}

func scopeSuffix(pkgPath string, scope []string) string {
	for _, s := range scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return s
		}
	}
	return ""
}

func relPath(root, file string) string {
	if r, err := filepath.Rel(root, file); err == nil {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(file)
}

func fileAt(pkg *srcload.Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}

// ---- rendering ----

func renderJSON(g *graph) []byte {
	out, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		panic(err) // marshaling plain structs cannot fail
	}
	return append(out, '\n')
}

func renderDOT(g *graph) []byte {
	var b strings.Builder
	b.WriteString("// Generated by `make graph` (cmd/simgraph). Do not edit:\n")
	b.WriteString("// regenerate after changing component wiring or the manifest.\n")
	b.WriteString("digraph components {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, style=rounded, fontname=\"Helvetica\"];\n")
	b.WriteString("  edge [fontname=\"Helvetica\", fontsize=10];\n")
	for _, zone := range zoneOrder {
		var names []string
		for _, n := range g.Nodes {
			if n.Zone == zone {
				names = append(names, n.Name)
			}
		}
		if len(names) == 0 {
			continue
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "  subgraph cluster_%s {\n", zone)
		fmt.Fprintf(&b, "    label=%q;\n    color=gray;\n", zoneLabels[zone])
		for _, name := range names {
			fmt.Fprintf(&b, "    %q;\n", name)
		}
		b.WriteString("  }\n")
	}
	// One DOT edge per (from, to), labeled with the referenced types;
	// cut edges render bold red, service (sync) edges dashed gray.
	type pair struct{ from, to string }
	byPair := make(map[pair][]edge)
	var pairs []pair
	for _, e := range g.Edges {
		p := pair{e.From, e.To}
		if _, ok := byPair[p]; !ok {
			pairs = append(pairs, p)
		}
		byPair[p] = append(byPair[p], e)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].from != pairs[j].from {
			return pairs[i].from < pairs[j].from
		}
		return pairs[i].to < pairs[j].to
	})
	for _, p := range pairs {
		es := byPair[p]
		var typeNames []string
		cut, sync, audited := false, false, false
		for _, e := range es {
			name := e.Type
			if e.Audited {
				name += "*"
				audited = true
			}
			typeNames = append(typeNames, name)
			cut = cut || e.Cut
			sync = sync || e.Sync
		}
		sort.Strings(typeNames)
		// Type names are identifiers: safe to interpolate into a DOT
		// double-quoted string raw, with \n line separators.
		attrs := fmt.Sprintf("label=\"%s\"", strings.Join(typeNames, "\\n"))
		switch {
		case cut:
			attrs += ", color=\"#b22222\", style=bold"
		case sync:
			attrs += ", color=gray, style=dashed"
		}
		if audited {
			attrs += ", fontcolor=\"#b8860b\""
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", path.Base(p.from), path.Base(p.to), attrs)
	}
	b.WriteString("}\n")
	return []byte(b.String())
}
