// Command triplea-sim runs one workload on a configured all-flash array
// and prints its performance metrics: latency distribution, sustained
// throughput, contention breakdown, FTL and wear statistics.
//
// Usage:
//
//	triplea-sim [-workload fin|mds|...|read|write] [-trace file]
//	            [-baseline] [-requests N] [-seed S]
//	            [-switches N] [-clusters N] [-hot N] [-rate IOPS]
//
// By default it runs the Triple-A (autonomic) array; -baseline selects
// the non-autonomic array.
package main

import (
	"flag"
	"fmt"
	"os"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/experiments"
	"triplea/internal/ftl"
	"triplea/internal/metrics"
	"triplea/internal/report"
	"triplea/internal/trace"
	"triplea/internal/units"
	"triplea/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "read", "Table 1 workload name, or read/write micro-benchmark")
		traceFile = flag.String("trace", "", "replay a trace file instead of a synthetic workload")
		msrFormat = flag.Bool("msr", false, "parse -trace in MSR Cambridge format instead of the native format")
		baseline  = flag.Bool("baseline", false, "run the non-autonomic baseline instead of Triple-A")
		requests  = flag.Int("requests", 40_000, "requests to generate (micro-benchmarks)")
		seed      = flag.Uint64("seed", 42, "workload generation seed")
		switches  = flag.Int("switches", 4, "PCI-E switch count")
		clusters  = flag.Int("clusters", 16, "clusters per switch")
		hot       = flag.Int("hot", 2, "hot clusters (micro-benchmarks)")
		rate      = flag.Float64("rate", 0, "offered IOPS (0 = calibrated default)")
		layout    = flag.String("layout", "clustered", "static data layout: clustered or striped")
		dram      = flag.Int64("dram", 0, "host DRAM cache in MiB (0 = off; Section 6.6)")
	)
	flag.Parse()

	cfg := array.DefaultConfig()
	cfg.Geometry.Switches = *switches
	cfg.Geometry.ClustersPerSwitch = *clusters
	switch *layout {
	case "clustered":
		cfg.Layout = ftl.LayoutClustered
	case "striped":
		cfg.Layout = ftl.LayoutStriped
	default:
		fatal(fmt.Errorf("unknown layout %q", *layout))
	}
	cfg.HostDRAMBytes = units.Bytes(*dram) * units.MiB

	var reqs []trace.Request
	var err error
	switch {
	case *traceFile != "":
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fatal(ferr)
		}
		if *msrFormat {
			reqs, err = trace.DecodeMSR(f, cfg.Geometry.Nand.PageSizeBytes)
		} else {
			reqs, err = trace.Decode(f)
		}
		f.Close()
	default:
		var p workload.Profile
		switch *wl {
		case "read":
			p = workload.MicroRead(*hot, *requests, 150_000)
		case "write":
			p = workload.MicroWrite(*hot, *requests, 150_000)
		default:
			var ok bool
			p, ok = workload.ProfileByName(*wl)
			if !ok {
				fatal(fmt.Errorf("unknown workload %q", *wl))
			}
			p.Requests = *requests
		}
		if *rate > 0 {
			p.RateIOPS = *rate
		} else if *wl == "read" || *wl == "write" {
			if *hot > 0 {
				p.RateIOPS = 1.5 * 40_000 * float64(*hot) / p.HotIORatio
			}
		}
		reqs, _, err = workload.Generate(cfg.Geometry, p, *seed)
	}
	if err != nil {
		fatal(err)
	}

	a, err := array.New(cfg)
	if err != nil {
		fatal(err)
	}
	var mgr *core.Manager
	if !*baseline {
		mgr = core.Attach(a, core.DefaultOptions())
	}
	rec, err := a.Run(reqs)
	if err != nil {
		fatal(err)
	}
	printResults(a, rec, mgr)
}

func printResults(a *array.Array, rec *metrics.Recorder, mgr *core.Manager) {
	mode := "triple-a (autonomic)"
	if mgr == nil {
		mode = "non-autonomic baseline"
	}
	g := a.Config().Geometry
	fmt.Printf("array: %dx%d clusters, %d FIMMs, %.1f TB, mode: %s\n",
		g.Switches, g.ClustersPerSwitch, g.TotalFIMMs(),
		float64(g.TotalBytes().Int64())/(1<<40), mode)
	fmt.Printf("simulated: %v; %d requests (%d reads, %d writes)\n\n",
		a.Engine().Now(), rec.Count(), rec.Reads(), rec.Writes())

	t := report.NewTable("performance", "metric", "value")
	t.AddRow("avg latency", rec.AvgLatency().String())
	t.AddRow("P50 latency", rec.Percentile(50).String())
	t.AddRow("P99 latency", rec.Percentile(99).String())
	t.AddRow("max latency", rec.MaxLatency().String())
	t.AddRow("IOPS (makespan)", report.FormatCount(rec.IOPS()))
	t.AddRow("IOPS (sustained)", report.FormatCount(rec.SustainedIOPS(experiments.SustainedWindow)))
	_ = t.Render(os.Stdout)
	fmt.Println()

	mb := rec.MeanBreakdown()
	bt := report.NewTable("mean per-request breakdown (us)",
		"RCstall", "swStall", "EPwait", "linkWait", "storWait", "texe", "xfer", "fabric")
	bt.AddRow(
		report.FormatUS(int64(mb.RCStall)), report.FormatUS(int64(mb.SwitchStall)),
		report.FormatUS(int64(mb.EPWait)), report.FormatUS(int64(mb.LinkWait)),
		report.FormatUS(int64(mb.StorageWait)), report.FormatUS(int64(mb.Texe)),
		report.FormatUS(int64(mb.LinkXfer)), report.FormatUS(int64(mb.FabricXfer)))
	_ = bt.Render(os.Stdout)
	fmt.Println()

	ft := a.FTL().Stats()
	st := report.NewTable("flash management", "metric", "value")
	st.AddRow("host writes", fmt.Sprint(ft.HostWrites))
	st.AddRow("gc writes", fmt.Sprint(ft.GCWrites))
	st.AddRow("migration writes", fmt.Sprint(ft.MigrationWrites))
	st.AddRow("write amplification", fmt.Sprintf("%.3f", ft.WriteAmplification()))
	st.AddRow("gc rounds", fmt.Sprint(a.GCRounds()))
	st.AddRow("total erases", fmt.Sprint(a.FTL().TotalErases()))
	st.AddRow("page migrations", fmt.Sprint(a.Migrations()))
	_ = st.Render(os.Stdout)

	if mgr != nil {
		fmt.Println()
		ms := mgr.Stats()
		mt := report.NewTable("autonomic manager", "metric", "value")
		mt.AddRow("hot-cluster detections", fmt.Sprint(ms.HotDetections))
		mt.AddRow("migrations started", fmt.Sprint(ms.Migrations))
		mt.AddRow("shadow clones", fmt.Sprint(ms.ShadowClones))
		mt.AddRow("laggards detected", fmt.Sprint(ms.LaggardsDetected))
		mt.AddRow("reshapes", fmt.Sprint(ms.Reshapes))
		mt.AddRow("write redirects", fmt.Sprint(ms.WriteRedirects))
		_ = mt.Render(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "triplea-sim:", err)
	os.Exit(1)
}
