// Command triplea-bench regenerates the paper's evaluation: every table
// and figure of Section 6, printed as text tables.
//
// Usage:
//
//	triplea-bench [-experiment all|table1|table2|fig1|fig9|...|wear|regret]
//	              [-requests N] [-seed S] [-switches N] [-clusters N]
//	              [-parallel N] [-sweep-points N] [-metrics exact|streaming]
//	              [-decisions FILE]
//
// The default reproduces the full 4x16 (16 TB) configuration. Reducing
// -requests shortens runs proportionally. -parallel widens the sweep
// pool for the multi-point experiments (Fig12, Fig13-15, fault); any
// width prints byte-identical tables (see docs/performance.md).
// -metrics streaming switches every recorder to the bounded-memory
// backend (see docs/metrics.md) for large -requests scaling runs.
// -decisions FILE captures the reference decision-trace scenarios with
// the flight recorder on (see docs/decision-traces.md), writes the
// TraceSet JSON to FILE and prints the per-family regret summaries
// instead of running experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"triplea/internal/decision"
	"triplea/internal/experiments"
	"triplea/internal/metrics"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment to run: all, "+strings.Join(experiments.Names, ", "))
		requests = flag.Int("requests", 0, "override request count per run (0 = experiment defaults)")
		seed     = flag.Uint64("seed", 42, "workload generation seed")
		switches = flag.Int("switches", 0, "override switch count (0 = paper default 4)")
		clusters = flag.Int("clusters", 0, "override clusters per switch (0 = paper default 16)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"sweep-pool width for multi-point experiments (1 = serial; output is identical either way)")
		points    = flag.Int("sweep-points", 0, "override the Fig12 hot-cluster point count (0 = paper default 6)")
		backend   = flag.String("metrics", "exact", "recorder backend: exact (paper-exact samples) or streaming (bounded memory)")
		decisions = flag.String("decisions", "", "capture the reference decision-trace scenarios and write TraceSet JSON to this file")
	)
	flag.Parse()

	mb, err := metrics.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "triplea-bench:", err)
		os.Exit(2)
	}

	if *decisions != "" {
		if err := captureDecisions(*decisions, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "triplea-bench:", err)
			os.Exit(1)
		}
		return
	}

	s := experiments.NewSuite()
	s.Seed = *seed
	s.Requests = *requests
	s.Parallel = *parallel
	s.Fig12Points = *points
	s.Config.Metrics = mb
	if *switches > 0 {
		s.Config.Geometry.Switches = *switches
	}
	if *clusters > 0 {
		s.Config.Geometry.ClustersPerSwitch = *clusters
	}

	start := time.Now()
	if *exp == "all" {
		err = s.RunAll(os.Stdout)
	} else {
		err = s.Run(*exp, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "triplea-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("(completed in %v)\n", time.Since(start).Round(time.Millisecond))
}

// captureDecisions runs the reference decision-trace scenarios with
// the flight recorder on, writes the TraceSet JSON to path and prints
// the per-family regret summary tables.
func captureDecisions(path string, seed uint64) error {
	ts, err := experiments.DecisionTraces(seed)
	if err != nil {
		return err
	}
	b, err := decision.EncodeJSON(*ts)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	if err := experiments.RenderDecisionTables(os.Stdout, ts); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, %d scenarios)\n", path, len(b), len(ts.Scenarios))
	return nil
}
