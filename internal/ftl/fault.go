package ftl

import (
	"triplea/internal/topo"
)

// Fault-injection hooks (see internal/fault and docs/fault-injection.md).
//
// The FTL's role in a fault is pure bookkeeping: sever translations for
// destroyed pages, retire destroyed blocks and dies from allocation and
// GC, and steer future placements away from faulted-out hardware. The
// device-state side (what the simulated flash would report) is handled
// by the nand/fimm/cluster hooks; the recovery side (re-reading shadow
// clones, evacuating live data) by internal/fault via the array.

// SetHealth attaches the array's health registry. A nil registry (the
// default) means every placement check passes — the unfaulted fast
// path.
func (f *FTL) SetHealth(h *topo.Health) { f.health = h }

// placeableFlat reports whether new data may be placed on the FIMM.
func (f *FTL) placeableFlat(flat int) bool {
	if f.health == nil {
		return true
	}
	return f.health.Placeable(topo.FIMMFromFlat(f.geom, flat))
}

// FallbackFIMM picks a deterministic placeable FIMM for lpn: its home
// if healthy, else a placeable FIMM chosen by an LPN-keyed rotation so
// a dead module's load spreads across the survivors instead of piling
// onto one neighbour. It reports false when no FIMM is placeable.
func (f *FTL) FallbackFIMM(lpn int64) (topo.FIMMID, bool) {
	if err := f.checkLPN(lpn); err != nil {
		return topo.FIMMID{}, false
	}
	homeFlat, _ := f.home(lpn)
	if f.placeableFlat(homeFlat) {
		return topo.FIMMFromFlat(f.geom, homeFlat), true
	}
	n := f.geom.TotalFIMMs()
	start := homeFlat + 1 + int(lpn%int64(n-1))
	for i := 0; i < n; i++ {
		flat := (start + i) % n
		if f.placeableFlat(flat) {
			return topo.FIMMFromFlat(f.geom, flat), true
		}
	}
	return topo.FIMMID{}, false
}

// DropMapping severs an LPN's translation after its physical page was
// destroyed by a fault. The LPN joins the lost set, so a later read
// re-prepopulates it out-of-place (the workload's pre-existing data is
// recoverable from the host's shadow clone, paper Section 5) and a
// later write simply maps fresh. It reports the PPN that was lost.
func (f *FTL) DropMapping(lpn int64) (topo.PPN, bool) {
	ppn, ok := f.pageMap[lpn]
	if !ok {
		return 0, false
	}
	f.unlink(lpn, ppn)
	delete(f.pageMap, lpn)
	if f.lost == nil {
		f.lost = make(map[int64]bool) //simlint:coldalloc fault path: lost-page ledger
	}
	f.lost[lpn] = true
	return ppn, true
}

// LostPages reports how many LPNs currently have no translation because
// a fault destroyed their physical page.
func (f *FTL) LostPages() int { return len(f.lost) }

// MappedMatching lists, in ascending LPN order, every mapped LPN whose
// current physical page satisfies pred. Cold path: fault handling only.
func (f *FTL) MappedMatching(pred func(topo.PPN) bool) []int64 {
	var out []int64
	f.ForEachMapping(func(lpn int64, ppn topo.PPN) bool {
		if pred(ppn) {
			out = append(out, lpn)
		}
		return true
	})
	return out
}

// MappedOnFIMM lists the LPNs currently stored on the FIMM.
func (f *FTL) MappedOnFIMM(id topo.FIMMID) []int64 {
	return f.MappedMatching(func(ppn topo.PPN) bool { return ppn.FIMMID() == id })
}

// MappedOnCluster lists the LPNs currently stored on the cluster.
func (f *FTL) MappedOnCluster(id topo.ClusterID) []int64 {
	return f.MappedMatching(func(ppn topo.PPN) bool { return ppn.FIMMID().ClusterID == id })
}

// SetFIMMDead retires every parallel unit of the FIMM: no future
// allocation, dense claim or GC will touch it. The caller (the fault
// injector) drops the mappings separately.
func (f *FTL) SetFIMMDead(id topo.FIMMID) {
	fa := f.fimmAllocFor(id.Flat(f.geom))
	for _, u := range fa.units {
		u.retired = true
	}
}

// RetireDie retires the parallel units of one die on a FIMM (a die-level
// read failure).
func (f *FTL) RetireDie(id topo.FIMMID, pkg, die int) {
	fa := f.fimmAllocFor(id.Flat(f.geom))
	for plane := 0; plane < f.geom.Nand.PlanesPerDie; plane++ {
		fa.units[unitIndex(f.geom, pkg, die, plane)].retired = true
	}
}

// RetireBlock removes ppn's erase block from allocation and GC forever
// (a grown bad block). Valid-page bookkeeping is left intact; the
// injector drops the affected mappings, which clears the bits.
func (f *FTL) RetireBlock(ppn topo.PPN) {
	fa := f.fimmAllocFor(ppn.FIMMID().Flat(f.geom))
	g := f.geom
	u := fa.unitOf(g, ppn)
	b := planeLocalBlock(g, ppn)
	bi := u.touched[b]
	if bi == nil {
		// Virgin block: give it a touched entry so takeFreeBlock skips it.
		bi = &blockInfo{}
		u.touched[b] = bi
		if b >= u.nextFresh {
			u.aheadTouched++
		}
	}
	if bi.retired {
		return
	}
	bi.retired = true
	switch bi.state {
	case blockFree:
		for i, fb := range u.freeList {
			if fb == b {
				u.freeList = append(u.freeList[:i], u.freeList[i+1:]...)
				break
			}
		}
	case blockActive:
		// Close it out; allocPage must never append to a bad block.
		bi.state = blockFull
		u.active = -1
	case blockFull, blockDense:
		// PlanGC and claimDense check the retired flag.
	}
}

// AbortBlock closes the erase block of a write whose device program
// failed: the flash never advanced its in-block program cursor, so
// appending later FTL-allocated pages would program out of order. The
// block keeps its valid/stale bookkeeping and stays an ordinary GC
// victim — the eventual erase resynchronises both cursors.
func (f *FTL) AbortBlock(ppn topo.PPN) {
	fa := f.fimmAllocFor(ppn.FIMMID().Flat(f.geom))
	u := fa.unitOf(f.geom, ppn)
	bi := u.touched[planeLocalBlock(f.geom, ppn)]
	if bi == nil || bi.state != blockActive {
		return
	}
	bi.state = blockFull
	u.active = -1
}

// BlockLPNs lists, in ascending page order, the logical pages currently
// stored in ppn's erase block — the blast radius of a block fault.
func (f *FTL) BlockLPNs(ppn topo.PPN) []int64 {
	fa := f.fimms[ppn.FIMMID().Flat(f.geom)]
	if fa == nil {
		return nil
	}
	g := f.geom
	u := fa.unitOf(g, ppn)
	bi := u.touched[planeLocalBlock(g, ppn)]
	if bi == nil {
		return nil
	}
	base := ppn.BlockKey()
	var out []int64
	for page := 0; page < g.Nand.PagesPerBlock.Int(); page++ {
		if !bi.isValid(page) {
			continue
		}
		src := topo.PPN(uint64(base) | uint64(page))
		if lpn, ok := f.LPNOf(src); ok {
			out = append(out, lpn)
		}
	}
	return out
}
