package ftl

import (
	"testing"
	"testing/quick"

	"triplea/internal/nand"
	"triplea/internal/topo"
)

// tinyGeometry keeps block counts small so GC paths are reachable in
// tests: 2 switches x 2 clusters x 2 FIMMs, 2 packages of 1 die x 2
// planes, 4 blocks/plane, 4 pages/block = 128 pages per FIMM.
func tinyGeometry() topo.Geometry {
	n := nand.DefaultParams()
	n.DiesPerPackage = 1
	n.PlanesPerDie = 2
	n.BlocksPerPlane = 4
	n.PagesPerBlock = 4
	return topo.Geometry{
		Switches:          2,
		ClustersPerSwitch: 2,
		FIMMsPerCluster:   2,
		PackagesPerFIMM:   2,
		Nand:              n,
	}
}

func TestLayoutStrings(t *testing.T) {
	if LayoutClustered.String() != "clustered" || LayoutStriped.String() != "striped" ||
		Layout(9).String() != "unknown" {
		t.Error("Layout.String mismatch")
	}
	if WriteHost.String() != "host" || WriteGC.String() != "gc" ||
		WriteMigration.String() != "migration" || WriteKind(9).String() != "unknown" {
		t.Error("WriteKind.String mismatch")
	}
}

func TestHomeClustered(t *testing.T) {
	g := tinyGeometry()
	f := New(g)
	per := g.PagesPerFIMM().Int64()
	if got := f.HomeFIMM(0); got.Flat(g) != 0 {
		t.Errorf("LPN 0 home = %v", got)
	}
	if got := f.HomeFIMM(per); got.Flat(g) != 1 {
		t.Errorf("LPN %d home = %v, want FIMM 1", per, got)
	}
	last := g.TotalPages().Int64() - 1
	if got := f.HomeFIMM(last); got.Flat(g) != g.TotalFIMMs()-1 {
		t.Errorf("last LPN home = %v", got)
	}
}

func TestHomeStriped(t *testing.T) {
	g := tinyGeometry()
	f := New(g, WithLayout(LayoutStriped))
	n := int64(g.TotalFIMMs())
	for lpn := int64(0); lpn < 2*n; lpn++ {
		if got := f.HomeFIMM(lpn); got.Flat(g) != int(lpn%n) {
			t.Fatalf("striped LPN %d home = %v", lpn, got)
		}
	}
}

func TestLPNRangeChecked(t *testing.T) {
	f := New(tinyGeometry())
	if _, err := f.AllocateWrite(-1); err == nil {
		t.Error("negative LPN accepted")
	}
	if _, err := f.AllocateWrite(f.Geometry().TotalPages().Int64()); err == nil {
		t.Error("LPN beyond capacity accepted")
	}
	if _, _, err := f.Prepopulate(-5); err == nil {
		t.Error("Prepopulate of negative LPN accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("HomeFIMM out of range did not panic")
		}
	}()
	f.HomeFIMM(-1)
}

func TestPrepopulateDense(t *testing.T) {
	g := tinyGeometry()
	f := New(g)
	ppn, need, err := f.Prepopulate(5)
	if err != nil || !need {
		t.Fatalf("Prepopulate: ppn=%v need=%v err=%v", ppn, need, err)
	}
	// Same LPN again: already mapped, no device work.
	ppn2, need2, err := f.Prepopulate(5)
	if err != nil || need2 || ppn2 != ppn {
		t.Fatalf("re-Prepopulate: ppn=%v need=%v err=%v", ppn2, need2, err)
	}
	got, ok := f.Lookup(5)
	if !ok || got != ppn {
		t.Fatalf("Lookup(5) = %v,%v", got, ok)
	}
	// Dense pages invert back to their LPN.
	lpn, ok := f.LPNOf(ppn)
	if !ok || lpn != 5 {
		t.Errorf("LPNOf(%v) = %d,%v, want 5", ppn, lpn, ok)
	}
	if f.Stats().Prepopulated != 1 {
		t.Errorf("Prepopulated = %d, want 1 (re-prepopulate is a no-op)", f.Stats().Prepopulated)
	}
}

func TestPrepopulateSpreadsAcrossUnits(t *testing.T) {
	g := tinyGeometry()
	f := New(g)
	seen := map[int]bool{}
	for lpn := int64(0); lpn < int64(g.ParallelUnitsPerFIMM()); lpn++ {
		ppn, _, err := f.Prepopulate(lpn)
		if err != nil {
			t.Fatal(err)
		}
		plane := ppn.Block() % g.Nand.PlanesPerDie
		seen[unitIndex(g, ppn.Pkg(), ppn.Die(), plane)] = true
	}
	if len(seen) != g.ParallelUnitsPerFIMM() {
		t.Errorf("consecutive LPNs used %d units, want %d", len(seen), g.ParallelUnitsPerFIMM())
	}
}

func TestAllocateWriteOverwrite(t *testing.T) {
	g := tinyGeometry()
	f := New(g)
	wa1, err := f.AllocateWrite(7)
	if err != nil {
		t.Fatal(err)
	}
	if wa1.HasOld {
		t.Error("first write has an old page")
	}
	if wa1.New.FIMMID() != f.HomeFIMM(7) {
		t.Errorf("write landed on %v, home %v", wa1.New.FIMMID(), f.HomeFIMM(7))
	}
	wa2, err := f.AllocateWrite(7)
	if err != nil {
		t.Fatal(err)
	}
	if !wa2.HasOld || wa2.Old != wa1.New {
		t.Errorf("overwrite old = %+v, want %v", wa2, wa1.New)
	}
	if got, _ := f.Lookup(7); got != wa2.New {
		t.Errorf("Lookup after overwrite = %v", got)
	}
	// Reverse map follows.
	if lpn, ok := f.LPNOf(wa2.New); !ok || lpn != 7 {
		t.Errorf("LPNOf(new) = %d,%v", lpn, ok)
	}
	if _, ok := f.LPNOf(wa1.New); ok {
		t.Error("stale page still reverse-mapped")
	}
	if f.Stats().HostWrites != 2 {
		t.Errorf("HostWrites = %d", f.Stats().HostWrites)
	}
}

func TestAllocateWriteAtRedirects(t *testing.T) {
	g := tinyGeometry()
	f := New(g)
	target := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 1, Cluster: 1}, FIMM: 1}
	wa, err := f.AllocateWriteAt(0, target) // LPN 0's home is FIMM 0
	if err != nil {
		t.Fatal(err)
	}
	if wa.New.FIMMID() != target {
		t.Errorf("redirected write on %v, want %v", wa.New.FIMMID(), target)
	}
	// Subsequent plain writes stay at the new residence.
	wa2, err := f.AllocateWrite(0)
	if err != nil {
		t.Fatal(err)
	}
	if wa2.New.FIMMID() != target {
		t.Errorf("follow-up write on %v, want %v", wa2.New.FIMMID(), target)
	}
}

func TestRelocate(t *testing.T) {
	g := tinyGeometry()
	f := New(g)
	if _, err := f.Relocate(3, f.HomeFIMM(3)); err == nil {
		t.Error("relocate of unmapped LPN accepted")
	}
	if _, _, err := f.Prepopulate(3); err != nil {
		t.Fatal(err)
	}
	target := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 1}, FIMM: 0}
	wa, err := f.Relocate(3, target)
	if err != nil {
		t.Fatal(err)
	}
	if !wa.HasOld {
		t.Error("relocation lost the source page")
	}
	if wa.New.FIMMID() != target {
		t.Errorf("relocated to %v, want %v", wa.New.FIMMID(), target)
	}
	if f.ResidentFIMM(3) != target {
		t.Errorf("ResidentFIMM = %v", f.ResidentFIMM(3))
	}
	if f.Stats().MigrationWrites != 1 {
		t.Errorf("MigrationWrites = %d", f.Stats().MigrationWrites)
	}
}

func TestDenseFallbackWhenBlockTaken(t *testing.T) {
	g := tinyGeometry()
	f := New(g)
	// Consume LPN 0's dense home block (unit 0, plane-local block 0) via
	// dynamic allocation: the first write to FIMM 0 takes that virgin
	// block. LPNs 60..63 live on FIMM 0 in this geometry.
	for i := 0; i < 4; i++ {
		if _, err := f.AllocateWrite(int64(60 + i)); err != nil {
			t.Fatal(err)
		}
	}
	// LPN 0's dense slot is unit 0, block 0 — now consumed.
	ppn, need, err := f.Prepopulate(0)
	if err != nil {
		t.Fatal(err)
	}
	if !need {
		t.Error("fallback prepopulate should still need device populate")
	}
	if got, _ := f.Lookup(0); got != ppn {
		t.Error("fallback mapping missing")
	}
	if f.Stats().HostWrites != 4 {
		t.Errorf("HostWrites = %d, want 4 (fallback not counted)", f.Stats().HostWrites)
	}
}

func TestNoSpace(t *testing.T) {
	g := tinyGeometry()
	f := New(g, WithGCThreshold(0))
	id := f.HomeFIMM(0)
	total := g.PagesPerFIMM().Int()
	n := 0
	for ; n <= total; n++ {
		if _, err := f.AllocateWriteAt(int64(n)%4, id); err != nil {
			break
		}
	}
	if n != total {
		t.Fatalf("allocated %d pages before ErrNoSpace, want %d", n, total)
	}
}

func TestGCCycle(t *testing.T) {
	g := tinyGeometry()
	f := New(g, WithGCThreshold(4)) // pressure early
	id := f.HomeFIMM(0)

	// Overwrite 4 LPNs repeatedly: lots of stale pages accumulate.
	for round := 0; round < 6; round++ {
		for lpn := int64(0); lpn < 4; lpn++ {
			if _, err := f.AllocateWriteAt(lpn, id); err != nil {
				t.Fatalf("round %d lpn %d: %v", round, lpn, err)
			}
		}
	}
	if !f.GCPressure(id) {
		t.Fatal("no GC pressure after heavy overwrites")
	}
	plan, ok := f.PlanGC(id, nil)
	if !ok {
		t.Fatal("PlanGC found no victim")
	}
	// Execute the plan: relocate moves, then erase.
	for _, m := range plan.Moves {
		wa, err := f.AllocateGCMove(m)
		if err != nil {
			t.Fatalf("AllocateGCMove: %v", err)
		}
		if wa.New.FIMMID() != id {
			t.Errorf("GC move left the FIMM: %v", wa.New)
		}
	}
	if err := f.CompleteGCErase(plan); err != nil {
		t.Fatalf("CompleteGCErase: %v", err)
	}
	if f.Stats().GCErases != 1 {
		t.Errorf("GCErases = %d", f.Stats().GCErases)
	}
	if f.Wear(id).Erases != 1 {
		t.Errorf("Wear.Erases = %d", f.Wear(id).Erases)
	}
	if f.TotalErases() != 1 {
		t.Errorf("TotalErases = %d", f.TotalErases())
	}
}

func TestGCVictimIsEmptiest(t *testing.T) {
	g := tinyGeometry()
	f := New(g, WithGCThreshold(4))
	id := f.HomeFIMM(0)
	// Two full rounds over 16 LPNs: round one fills each unit's first
	// block; round two overwrites everything, leaving those first blocks
	// fully stale — ideal victims with zero moves.
	for round := 0; round < 2; round++ {
		for lpn := int64(0); lpn < 16; lpn++ {
			if _, err := f.AllocateWriteAt(lpn, id); err != nil {
				t.Fatal(err)
			}
		}
	}
	plan, ok := f.PlanGC(id, nil)
	if !ok {
		t.Fatal("no GC plan")
	}
	// The victim's move count must be the minimum across reclaimable
	// blocks; with this pattern fully-stale blocks exist.
	if len(plan.Moves) != 0 {
		t.Errorf("victim has %d valid pages, expected an empty victim", len(plan.Moves))
	}
}

func TestCompleteGCEraseValidation(t *testing.T) {
	g := tinyGeometry()
	f := New(g, WithGCThreshold(4))
	id := f.HomeFIMM(0)
	for lpn := int64(0); lpn < 16; lpn++ {
		if _, err := f.AllocateWriteAt(lpn, id); err != nil {
			t.Fatal(err)
		}
	}
	plan, ok := f.PlanGC(id, nil)
	if !ok {
		t.Fatal("no plan")
	}
	if len(plan.Moves) == 0 {
		t.Skip("victim empty; validation path needs valid pages")
	}
	if err := f.CompleteGCErase(plan); err == nil {
		t.Error("erase with valid pages accepted")
	}
}

func TestWriteAmplification(t *testing.T) {
	var s Stats
	if s.WriteAmplification() != 0 {
		t.Error("WA of zero stats not 0")
	}
	s = Stats{HostWrites: 100, GCWrites: 20, MigrationWrites: 14}
	if got := s.WriteAmplification(); got != 1.34 {
		t.Errorf("WA = %v, want 1.34", got)
	}
	if s.TotalWrites() != 134 {
		t.Errorf("TotalWrites = %d", s.TotalWrites())
	}
}

func TestMappedPages(t *testing.T) {
	f := New(tinyGeometry())
	for lpn := int64(0); lpn < 10; lpn++ {
		if _, err := f.AllocateWrite(lpn); err != nil {
			t.Fatal(err)
		}
	}
	if f.MappedPages() != 10 {
		t.Errorf("MappedPages = %d, want 10", f.MappedPages())
	}
}

// Property: under random interleavings of prepopulate / write /
// relocate on a small LPN set, Lookup and LPNOf stay mutually
// consistent and every mapped LPN resolves.
func TestPropertyMappingConsistency(t *testing.T) {
	g := tinyGeometry()
	f := func(ops []uint16) bool {
		fl := New(g, WithGCThreshold(0))
		const lpns = 8
		for _, op := range ops {
			lpn := int64(op % lpns)
			switch (op / lpns) % 3 {
			case 0:
				if _, _, err := fl.Prepopulate(lpn); err != nil {
					return false
				}
			case 1:
				if _, err := fl.AllocateWrite(lpn); err != nil {
					return false
				}
			case 2:
				if _, ok := fl.Lookup(lpn); ok {
					target := topo.FIMMFromFlat(g, int(op)%g.TotalFIMMs())
					if _, err := fl.Relocate(lpn, target); err != nil {
						return false
					}
				}
			}
		}
		for lpn := int64(0); lpn < lpns; lpn++ {
			ppn, ok := fl.Lookup(lpn)
			if !ok {
				continue
			}
			back, ok := fl.LPNOf(ppn)
			if !ok || back != lpn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAccessorsAndIteration(t *testing.T) {
	g := tinyGeometry()
	f := New(g, WithLayout(LayoutStriped))
	if f.Layout() != LayoutStriped {
		t.Errorf("Layout = %v", f.Layout())
	}
	if f.HomeCluster(0) != f.HomeFIMM(0).ClusterID {
		t.Error("HomeCluster disagrees with HomeFIMM")
	}
	for lpn := int64(0); lpn < 5; lpn++ {
		if _, err := f.AllocateWrite(lpn); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int64]bool{}
	f.ForEachMapping(func(lpn int64, ppn topo.PPN) bool {
		seen[lpn] = true
		return true
	})
	if len(seen) != 5 {
		t.Errorf("ForEachMapping visited %d, want 5", len(seen))
	}
	// Early stop.
	n := 0
	f.ForEachMapping(func(int64, topo.PPN) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestMinFreeBlocks(t *testing.T) {
	g := tinyGeometry()
	f := New(g)
	id := f.HomeFIMM(0)
	if got := f.MinFreeBlocks(id); got != g.Nand.BlocksPerPlane {
		t.Errorf("untouched MinFreeBlocks = %d, want %d", got, g.Nand.BlocksPerPlane)
	}
	// One write allocates one block on one unit.
	if _, err := f.AllocateWriteAt(0, id); err != nil {
		t.Fatal(err)
	}
	if got := f.MinFreeBlocks(id); got != g.Nand.BlocksPerPlane-1 {
		t.Errorf("MinFreeBlocks after one alloc = %d", got)
	}
}

func TestAllocateGCMoveStale(t *testing.T) {
	g := tinyGeometry()
	f := New(g, WithGCThreshold(4))
	id := f.HomeFIMM(0)
	for round := 0; round < 2; round++ {
		for lpn := int64(0); lpn < 8; lpn++ {
			if _, err := f.AllocateWriteAt(lpn, id); err != nil {
				t.Fatal(err)
			}
		}
	}
	plan, ok := f.PlanGC(id, nil)
	if !ok {
		t.Skip("no pressure in this shape")
	}
	if len(plan.Moves) == 0 {
		t.Skip("empty victim")
	}
	// Supersede the first move with a host write: the GC move is stale.
	m := plan.Moves[0]
	if _, err := f.AllocateWrite(m.LPN); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AllocateGCMove(m); err == nil {
		t.Error("stale GC move accepted")
	}
}
