//go:build simcheck

package ftl

import (
	"fmt"

	"triplea/internal/topo"
)

// simcheckEnabled gates the runtime invariant checks; see the simx
// package for the convention.
const simcheckEnabled = true

// ckVerifyEvery amortizes the O(mapped pages) bijectivity sweep.
const ckVerifyEvery = 4096

type ckState struct {
	ops uint64
}

// ckMapped validates the pair allocate just linked, and periodically
// re-proves bijectivity of the whole translation state.
func (f *FTL) ckMapped(lpn int64, ppn topo.PPN) {
	if got, ok := f.pageMap[lpn]; !ok || got != ppn {
		panic(fmt.Sprintf("simcheck: mapping %d -> %v not installed (found %v, %t)", lpn, ppn, got, ok))
	}
	if back, ok := f.reverse[ppn]; !ok || back != lpn {
		panic(fmt.Sprintf("simcheck: reverse of %v is %d (%t), want %d", ppn, back, ok, lpn))
	}
	f.ck.ops++
	if f.ck.ops%ckVerifyEvery == 0 {
		if err := f.VerifyBijective(); err != nil {
			panic("simcheck: " + err.Error())
		}
	}
}

// ckUnlinked validates that unlink removed the stale reverse edge.
func (f *FTL) ckUnlinked(lpn int64, old topo.PPN) {
	if back, ok := f.reverse[old]; ok {
		panic(fmt.Sprintf("simcheck: unlinked page %v still reverse-maps to %d", old, back))
	}
}
