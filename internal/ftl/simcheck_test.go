//go:build simcheck

package ftl

import (
	"testing"

	"triplea/internal/topo"
)

// TestSimcheckBijectiveUnderChurn hammers four hot LPNs on one FIMM so
// overwrites force constant unlink/relink churn and GC cycles, running
// long enough to trigger the periodic full bijectivity sweep several
// times, then proves the final state directly.
func TestSimcheckBijectiveUnderChurn(t *testing.T) {
	f := New(tinyGeometry(), WithGCThreshold(4)) // pressure early
	id := f.HomeFIMM(0)
	for i := 0; i < 2*ckVerifyEvery; i++ {
		if f.GCPressure(id) {
			runTestGC(t, f, id)
		}
		if _, err := f.AllocateWriteAt(int64(i%4), id); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := f.VerifyBijective(); err != nil {
		t.Fatal(err)
	}
}

// runTestGC executes one GC round if a victim exists; under pressure
// with no reclaimable block yet, allocation can still proceed from the
// remaining free blocks until one fills.
func runTestGC(t *testing.T, f *FTL, id topo.FIMMID) {
	t.Helper()
	plan, ok := f.PlanGC(id, nil)
	if !ok {
		return
	}
	for _, m := range plan.Moves {
		if _, err := f.AllocateGCMove(m); err != nil {
			t.Fatalf("AllocateGCMove: %v", err)
		}
	}
	if err := f.CompleteGCErase(plan); err != nil {
		t.Fatalf("CompleteGCErase: %v", err)
	}
}

// TestSimcheckDetectsBrokenReverse corrupts the reverse index and
// expects both the full sweep and the incremental hook to object.
func TestSimcheckDetectsBrokenReverse(t *testing.T) {
	f := New(tinyGeometry())
	wa, err := f.AllocateWrite(3)
	if err != nil {
		t.Fatal(err)
	}
	f.reverse[wa.New] = 99 // break ppn -> lpn
	if err := f.VerifyBijective(); err == nil {
		t.Fatal("VerifyBijective accepted a corrupted reverse index")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ckMapped accepted a corrupted reverse index")
		}
	}()
	f.ckMapped(3, wa.New)
}

// TestSimcheckDetectsDoubleMapping maps two LPNs onto one physical page.
func TestSimcheckDetectsDoubleMapping(t *testing.T) {
	f := New(tinyGeometry())
	wa, err := f.AllocateWrite(3)
	if err != nil {
		t.Fatal(err)
	}
	f.pageMap[4] = wa.New // second LPN claims the same page
	if err := f.VerifyBijective(); err == nil {
		t.Fatal("VerifyBijective accepted two LPNs on one page")
	}
}
