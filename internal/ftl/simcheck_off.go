//go:build !simcheck

package ftl

import "triplea/internal/topo"

const simcheckEnabled = false

type ckState struct{}

func (f *FTL) ckMapped(lpn int64, ppn topo.PPN)   {}
func (f *FTL) ckUnlinked(lpn int64, old topo.PPN) {}
