package ftl

import (
	"fmt"

	"triplea/internal/topo"
)

// VerifyBijective proves that the translation state describes a
// bijection: every reverse entry inverts a live pageMap entry, no two
// LPNs share a physical page, and every mapping without a reverse entry
// is a dense prepopulated page sitting at its LPN's analytic home
// (those are deliberately kept out of the reverse index — LPNOf inverts
// them arithmetically).
//
// Tests call it directly; builds with -tags simcheck also run it
// periodically from the allocation path.
func (f *FTL) VerifyBijective() error { //simlint:cold simcheck-only bijectivity diagnostic, not a measured build
	for ppn, lpn := range f.reverse {
		if got, ok := f.pageMap[lpn]; !ok {
			return fmt.Errorf("ftl: reverse entry %v -> %d has no forward mapping", ppn, lpn)
		} else if got != ppn {
			return fmt.Errorf("ftl: reverse entry %v -> %d disagrees with forward mapping %d -> %v", ppn, lpn, lpn, got)
		}
	}
	seen := make(map[topo.PPN]int64, len(f.pageMap))
	//simlint:ordered order-independent validation scan
	for lpn, ppn := range f.pageMap {
		if prev, dup := seen[ppn]; dup {
			return fmt.Errorf("ftl: LPNs %d and %d both map to %v", prev, lpn, ppn)
		}
		seen[ppn] = lpn
		if back, ok := f.reverse[ppn]; ok {
			if back != lpn {
				return fmt.Errorf("ftl: mapping %d -> %v reversed to %d", lpn, ppn, back)
			}
			continue
		}
		fimmFlat, fp := f.home(lpn)
		if f.densePPN(fimmFlat, fp) != ppn {
			return fmt.Errorf("ftl: mapping %d -> %v has no reverse entry and is not the LPN's dense home", lpn, ppn)
		}
	}
	return nil
}
