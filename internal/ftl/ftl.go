// Package ftl implements the array-global flash translation layer that
// Triple-A hoists out of individual SSDs into the autonomic management
// module (paper Section 2.3 and Figure 5): logical→physical address
// translation, out-of-place page allocation, greedy garbage collection
// and wear-aware free-block selection, all at array scope so the
// manager can reshape the physical data layout across clusters and
// FIMMs.
//
// The FTL is pure policy and bookkeeping: it decides *where* pages live
// and which device operations are required, while the array layer
// executes those operations against the simulated hardware and charges
// their time.
package ftl

import (
	"errors"
	"fmt"
	"slices"

	"triplea/internal/decision"
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/units"
)

// Layout selects the static logical→physical placement of
// never-yet-written data.
type Layout int

const (
	// LayoutClustered maps contiguous LPN ranges onto successive FIMMs
	// and clusters (a concatenation), so logically hot regions become
	// physically hot clusters — the regime the paper studies.
	LayoutClustered Layout = iota
	// LayoutStriped round-robins consecutive LPNs across all FIMMs,
	// spreading load at page granularity.
	LayoutStriped
)

func (l Layout) String() string {
	switch l {
	case LayoutClustered:
		return "clustered"
	case LayoutStriped:
		return "striped"
	default:
		return "unknown"
	}
}

// ErrNoSpace reports that a FIMM has no free block to allocate from;
// the caller must garbage-collect first.
var ErrNoSpace = errors.New("ftl: no free blocks on target FIMM")

// WriteKind classifies why a physical write happens, for wear
// accounting (Section 6.5 charges migration-induced writes separately).
type WriteKind int

const (
	WriteHost      WriteKind = iota // a host write
	WriteGC                         // garbage-collection relocation
	WriteMigration                  // autonomic migration / reshaping
)

func (k WriteKind) String() string {
	switch k {
	case WriteHost:
		return "host"
	case WriteGC:
		return "gc"
	case WriteMigration:
		return "migration"
	default:
		return "unknown"
	}
}

// WriteAlloc describes the device work for one page write: program New,
// and mark Old stale if the LPN was previously mapped.
type WriteAlloc struct {
	LPN    int64
	New    topo.PPN
	Old    topo.PPN
	HasOld bool
}

// Stats aggregates FTL activity.
type Stats struct {
	HostWrites      uint64
	GCWrites        uint64
	MigrationWrites uint64
	Prepopulated    uint64
	GCErases        uint64
	GCPlans         uint64
}

// TotalWrites reports all physical page programs the FTL has allocated.
func (s Stats) TotalWrites() uint64 { return s.HostWrites + s.GCWrites + s.MigrationWrites }

// WriteAmplification reports total physical writes per host write.
func (s Stats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 0
	}
	return float64(s.TotalWrites()) / float64(s.HostWrites)
}

// FTL is the array-global translation layer. It is not safe for
// concurrent use; the discrete-event simulation is single-threaded.
type FTL struct {
	geom        topo.Geometry
	layout      Layout
	gcThreshold units.Blocks // free blocks per unit below which GC is wanted

	pageMap map[int64]topo.PPN // lpn -> current ppn
	reverse map[topo.PPN]int64 // ppn -> lpn, dynamic pages only

	fimms map[int]*fimmAlloc // flat FIMM id -> allocator state

	// Fault state (fault.go). health is nil in unfaulted arrays; lost
	// holds LPNs whose physical page was destroyed by a fault, so
	// Prepopulate must not hand back their (unreadable) dense home.
	health *topo.Health
	lost   map[int64]bool

	// Decision flight recorder (nil when recording is off) and its
	// clock source, injected by the array at build time so PlanGC can
	// timestamp victim selections without the FTL knowing the engine.
	dec    *decision.Recorder
	decNow func() simx.Time

	stats Stats
	ck    ckState // empty unless built with -tags simcheck
}

// Option configures the FTL.
type Option func(*FTL)

// WithLayout selects the static data layout (default LayoutClustered).
func WithLayout(l Layout) Option { return func(f *FTL) { f.layout = l } }

// WithGCThreshold sets the per-unit free-block low-water mark (default 2).
func WithGCThreshold(n units.Blocks) Option { return func(f *FTL) { f.gcThreshold = n } }

// New builds an FTL for the geometry; an invalid geometry panics.
func New(geom topo.Geometry, opts ...Option) *FTL {
	if err := geom.Validate(); err != nil {
		panic(err)
	}
	f := &FTL{
		geom:        geom,
		layout:      LayoutClustered,
		gcThreshold: 2 * units.Block,
		pageMap:     make(map[int64]topo.PPN),
		reverse:     make(map[topo.PPN]int64),
		fimms:       make(map[int]*fimmAlloc),
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// SetDecisions attaches the decision flight recorder plus a clock
// source for timestamping GC victim selections. A nil recorder (the
// off backend) keeps PlanGC's recording hooks at a single nil check.
func (f *FTL) SetDecisions(d *decision.Recorder, now func() simx.Time) {
	f.dec = d
	f.decNow = now
}

// Geometry returns the array geometry.
func (f *FTL) Geometry() topo.Geometry { return f.geom }

// Layout returns the configured static layout.
func (f *FTL) Layout() Layout { return f.layout }

// Stats returns a snapshot of FTL activity.
func (f *FTL) Stats() Stats { return f.stats }

// MappedPages reports how many LPNs currently have a translation.
func (f *FTL) MappedPages() int { return len(f.pageMap) }

// ForEachMapping visits every (LPN, PPN) translation in ascending LPN
// order; returning false stops the walk.
func (f *FTL) ForEachMapping(visit func(lpn int64, ppn topo.PPN) bool) {
	lpns := make([]int64, 0, len(f.pageMap))
	for lpn := range f.pageMap {
		lpns = append(lpns, lpn)
	}
	slices.Sort(lpns)
	for _, lpn := range lpns {
		if !visit(lpn, f.pageMap[lpn]) {
			return
		}
	}
}

func (f *FTL) checkLPN(lpn int64) error {
	if lpn < 0 || lpn >= f.geom.TotalPages().Int64() {
		return fmt.Errorf("ftl: LPN %d out of range [0,%d)", lpn, f.geom.TotalPages()) //simlint:coldalloc error path: out-of-range LPN
	}
	return nil
}

// home computes the static placement of an LPN: its home FIMM and the
// FIMM-local page index used for dense prepopulation.
func (f *FTL) home(lpn int64) (fimmFlat int, fp int64) {
	switch f.layout {
	case LayoutStriped:
		n := int64(f.geom.TotalFIMMs())
		return int(lpn % n), lpn / n
	case LayoutClustered:
		per := f.geom.PagesPerFIMM().Int64()
		return int(lpn / per), lpn % per
	}
	panic("ftl: unknown layout")
}

// HomeFIMM reports the LPN's static home FIMM.
func (f *FTL) HomeFIMM(lpn int64) topo.FIMMID {
	if err := f.checkLPN(lpn); err != nil {
		panic(err)
	}
	flat, _ := f.home(lpn)
	return topo.FIMMFromFlat(f.geom, flat)
}

// HomeCluster reports the LPN's static home cluster.
func (f *FTL) HomeCluster(lpn int64) topo.ClusterID { return f.HomeFIMM(lpn).ClusterID }

// Lookup reports the LPN's current physical page, if mapped.
func (f *FTL) Lookup(lpn int64) (topo.PPN, bool) {
	ppn, ok := f.pageMap[lpn]
	return ppn, ok
}

// ResidentFIMM reports where the LPN currently lives: its mapped
// location, or its home if never written.
func (f *FTL) ResidentFIMM(lpn int64) topo.FIMMID {
	if ppn, ok := f.pageMap[lpn]; ok {
		return ppn.FIMMID()
	}
	return f.HomeFIMM(lpn)
}

// LPNOf reports the logical page currently stored at ppn, if any.
func (f *FTL) LPNOf(ppn topo.PPN) (int64, bool) {
	if lpn, ok := f.reverse[ppn]; ok {
		return lpn, ok
	}
	// Dense pages are analytically invertible.
	fa := f.fimms[ppn.FIMMID().Flat(f.geom)]
	if fa == nil {
		return 0, false
	}
	return fa.denseLPN(f, ppn)
}

// densePPN computes the dense (prepopulated) physical location for a
// FIMM-local page index: consecutive indices stripe across parallel
// units for maximum die-level parallelism.
func (f *FTL) densePPN(fimmFlat int, fp int64) topo.PPN {
	g := f.geom
	u := g.ParallelUnitsPerFIMM()
	planes := g.Nand.PlanesPerDie
	dies := g.Nand.DiesPerPackage
	unit := int(fp % int64(u))
	rest := fp / int64(u)
	pageInBlock := int(rest % g.Nand.PagesPerBlock.Int64())
	planeLocalBlock := int(rest / g.Nand.PagesPerBlock.Int64())

	pkg := unit / (dies * planes)
	die := (unit / planes) % dies
	plane := unit % planes
	block := planeLocalBlock*planes + plane

	id := topo.FIMMFromFlat(g, fimmFlat)
	return topo.PackPPN(id.Switch, id.Cluster, id.FIMM, pkg, die, block, pageInBlock)
}

// denseFP inverts densePPN: the FIMM-local page index of a dense PPN.
func (f *FTL) denseFP(ppn topo.PPN) int64 {
	g := f.geom
	planes := g.Nand.PlanesPerDie
	dies := g.Nand.DiesPerPackage
	plane := ppn.Block() % planes
	planeLocalBlock := ppn.Block() / planes
	unit := (ppn.Pkg()*dies+ppn.Die())*planes + plane
	rest := int64(planeLocalBlock)*g.Nand.PagesPerBlock.Int64() + int64(ppn.Page())
	return rest*int64(g.ParallelUnitsPerFIMM()) + int64(unit)
}

// lpnFromHome inverts home(): the LPN whose static placement is
// (fimmFlat, fp).
func (f *FTL) lpnFromHome(fimmFlat int, fp int64) int64 {
	switch f.layout {
	case LayoutStriped:
		return fp*int64(f.geom.TotalFIMMs()) + int64(fimmFlat)
	case LayoutClustered:
		return int64(fimmFlat)*f.geom.PagesPerFIMM().Int64() + fp
	}
	panic("ftl: unknown layout")
}

// Prepopulate installs the static mapping for an LPN that the workload
// reads without ever having written (pre-existing data). It reports the
// assigned PPN and whether the caller must force-populate the device
// page (false when the LPN was already mapped).
//
// If the dense home location was consumed by dynamic allocation, the
// page is allocated out-of-place instead, like a write.
func (f *FTL) Prepopulate(lpn int64) (topo.PPN, bool, error) {
	if err := f.checkLPN(lpn); err != nil {
		return 0, false, err
	}
	if ppn, ok := f.pageMap[lpn]; ok {
		return ppn, false, nil
	}
	fimmFlat, fp := f.home(lpn)
	if !f.lost[lpn] && f.placeableFlat(fimmFlat) {
		ppn := f.densePPN(fimmFlat, fp)
		fa := f.fimmAllocFor(fimmFlat)
		if fa.claimDense(f, ppn) {
			f.pageMap[lpn] = ppn
			f.stats.Prepopulated++
			return ppn, true, nil
		}
	}
	// Dense slot unavailable (its block was dynamically allocated, the
	// page was lost to a fault, or the home FIMM is faulted out): fall
	// back to out-of-place allocation, home FIMM first.
	wa, err := f.allocateFallback(lpn, fimmFlat)
	if err != nil {
		return 0, false, err
	}
	f.stats.HostWrites-- // not a real host write
	f.stats.Prepopulated++
	return wa.New, true, nil
}

// allocateFallback allocates an out-of-place page for lpn, trying the
// home FIMM first and rotating through the remaining placeable FIMMs in
// flat order — a deterministic spill used when the home location is
// consumed or faulted out.
func (f *FTL) allocateFallback(lpn int64, homeFlat int) (WriteAlloc, error) {
	n := f.geom.TotalFIMMs()
	var lastErr error
	// Home first, then an LPN-keyed rotation over the rest so a faulted
	// module's pages spread across the survivors.
	start := homeFlat + 1 + int(lpn%int64(max(n-1, 1)))
	for i := -1; i < n; i++ {
		flat := homeFlat
		if i >= 0 {
			flat = (start + i) % n
		}
		if !f.placeableFlat(flat) {
			continue
		}
		wa, err := f.allocate(lpn, topo.FIMMFromFlat(f.geom, flat), WriteHost)
		if err == nil {
			return wa, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ErrNoSpace
	}
	return WriteAlloc{}, lastErr
}

// AllocateWrite allocates the physical page for a host write. The data
// lands on the LPN's resident FIMM, preserving the current layout
// (which the autonomic manager may have reshaped).
func (f *FTL) AllocateWrite(lpn int64) (WriteAlloc, error) {
	if err := f.checkLPN(lpn); err != nil {
		return WriteAlloc{}, err
	}
	return f.allocate(lpn, f.ResidentFIMM(lpn), WriteHost)
}

// AllocateWriteAt allocates a host write on an explicit FIMM — the
// redirect primitive data-layout reshaping uses for stalled writes.
func (f *FTL) AllocateWriteAt(lpn int64, target topo.FIMMID) (WriteAlloc, error) {
	if err := f.checkLPN(lpn); err != nil {
		return WriteAlloc{}, err
	}
	return f.allocate(lpn, target, WriteHost)
}

// Relocate allocates a migration write moving the LPN's current data to
// target (autonomic data migration and data-layout reshaping). The
// caller copies the data and programs WriteAlloc.New; the old page is
// unlinked.
func (f *FTL) Relocate(lpn int64, target topo.FIMMID) (WriteAlloc, error) {
	if err := f.checkLPN(lpn); err != nil {
		return WriteAlloc{}, err
	}
	if _, ok := f.pageMap[lpn]; !ok {
		return WriteAlloc{}, fmt.Errorf("ftl: relocate of unmapped LPN %d", lpn)
	}
	return f.allocate(lpn, target, WriteMigration)
}

func (f *FTL) allocate(lpn int64, target topo.FIMMID, kind WriteKind) (WriteAlloc, error) {
	fa := f.fimmAllocFor(target.Flat(f.geom))
	ppn, err := fa.allocPage(f, target)
	if err != nil {
		return WriteAlloc{}, err
	}
	wa := WriteAlloc{LPN: lpn, New: ppn}
	if old, ok := f.pageMap[lpn]; ok {
		wa.Old, wa.HasOld = old, true
		f.unlink(lpn, old)
	}
	f.pageMap[lpn] = ppn
	f.reverse[ppn] = lpn
	delete(f.lost, lpn) // a fresh mapping resurrects a fault-lost LPN
	if simcheckEnabled {
		f.ckMapped(lpn, ppn)
	}
	switch kind {
	case WriteHost:
		f.stats.HostWrites++
	case WriteGC:
		f.stats.GCWrites++
	case WriteMigration:
		f.stats.MigrationWrites++
	}
	return wa, nil
}

// unlink removes the lpn->old edge bookkeeping: reverse entry and the
// block's valid count.
func (f *FTL) unlink(lpn int64, old topo.PPN) {
	delete(f.reverse, old)
	if fa := f.fimms[old.FIMMID().Flat(f.geom)]; fa != nil {
		fa.markStale(f, old)
	}
	if simcheckEnabled {
		f.ckUnlinked(lpn, old)
	}
}

// fimmAllocFor returns (creating lazily) the allocator for a FIMM.
func (f *FTL) fimmAllocFor(flat int) *fimmAlloc {
	fa := f.fimms[flat]
	if fa == nil {
		fa = newFIMMAlloc(f.geom)
		f.fimms[flat] = fa
	}
	return fa
}

// FIMMWear summarises wear on one FIMM.
type FIMMWear struct {
	Erases   uint64
	MaxBlock int // highest per-block erase count
}

// Wear reports wear for one FIMM.
func (f *FTL) Wear(id topo.FIMMID) FIMMWear {
	fa := f.fimms[id.Flat(f.geom)]
	if fa == nil {
		return FIMMWear{}
	}
	return fa.wear()
}

// TotalErases reports erases across the whole array.
func (f *FTL) TotalErases() uint64 {
	var n uint64
	//simlint:ordered commutative sum over FIMMs
	for _, fa := range f.fimms {
		n += fa.wear().Erases
	}
	return n
}
