package ftl

import (
	"fmt"
	"sort"

	"triplea/internal/decision"
	"triplea/internal/topo"
	"triplea/internal/units"
)

// GCMove is one valid page to relocate out of a victim block.
type GCMove struct {
	LPN int64
	Src topo.PPN
}

// GCPlan describes one garbage-collection round on a FIMM: relocate
// every Move, then erase Victim's block. The array layer executes the
// device operations and charges their time; the plan is pure policy.
type GCPlan struct {
	FIMM   topo.FIMMID
	Victim topo.PPN // page 0 of the victim block
	Moves  []GCMove
}

// GCPressure reports whether any parallel unit of the FIMM has fewer
// free blocks than the configured threshold.
func (f *FTL) GCPressure(id topo.FIMMID) bool {
	fa := f.fimms[id.Flat(f.geom)]
	if fa == nil {
		return false
	}
	for _, u := range fa.units {
		if u.retired {
			continue
		}
		if units.Blocks(u.freeBlocks(f.geom.Nand.BlocksPerPlane.Int())) < f.gcThreshold {
			return true
		}
	}
	return false
}

// MinFreeBlocks reports the free-block count of the FIMM's most
// pressured parallel unit (the urgency signal for GC scheduling).
func (f *FTL) MinFreeBlocks(id topo.FIMMID) units.Blocks {
	fa := f.fimms[id.Flat(f.geom)]
	if fa == nil {
		return f.geom.Nand.BlocksPerPlane
	}
	min := f.geom.Nand.BlocksPerPlane
	for _, u := range fa.units {
		if u.retired {
			continue
		}
		if free := units.Blocks(u.freeBlocks(f.geom.Nand.BlocksPerPlane.Int())); free < min {
			min = free
		}
	}
	return min
}

// PlanGC picks a victim block on the FIMM (greedy: fewest valid pages
// in the most pressured unit) and lists the moves needed. It reports
// false when no unit is under pressure or no reclaimable block exists.
// A non-nil veto excludes candidate victim blocks (identified by their
// page-0 PPN) — the array vetoes blocks with in-flight buffered writes.
func (f *FTL) PlanGC(id topo.FIMMID, veto func(topo.PPN) bool) (*GCPlan, bool) {
	fa := f.fimms[id.Flat(f.geom)]
	if fa == nil {
		return nil, false
	}
	g := f.geom

	// Most pressured unit first.
	unitIdx, minFree := -1, int(^uint(0)>>1)
	for i, u := range fa.units {
		if u.retired {
			continue
		}
		free := u.freeBlocks(g.Nand.BlocksPerPlane.Int())
		if units.Blocks(free) < f.gcThreshold && free < minFree {
			unitIdx, minFree = i, free
		}
	}
	if unitIdx < 0 {
		return nil, false
	}
	u := fa.units[unitIdx]

	// Greedy victim: reclaimable (full or dense) block with fewest
	// valid pages, skipping vetoed blocks. Candidates are scanned in
	// ascending block order so equal-valid ties break the same way on
	// every run; ranging over the map directly would let Go's random
	// iteration order pick the victim among ties.
	//
	// Candidates are also scored into the decision flight recorder at
	// -valid (fewer valid pages is better). The greedy "cannot beat the
	// running minimum" skip keeps its position BEFORE the veto probe so
	// recording never changes how often the veto hook runs; those
	// skipped blocks are recorded as plain eligible candidates — they
	// cannot outscore the chosen victim, so they add no regret.
	pkg, die, plane := unitCoords(g, unitIdx)
	rec := f.dec
	if rec != nil && f.decNow != nil {
		rec.Begin(decision.GCVictim, id.ClusterID.Flat(g), f.decNow())
	} else {
		rec = nil
	}
	blocks := make([]int, 0, len(u.touched))
	for b := range u.touched {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	victimBlock, victimValid := -1, int(^uint(0)>>1)
	for _, b := range blocks {
		bi := u.touched[b]
		if bi.state != blockFull && bi.state != blockDense {
			continue
		}
		if bi.retired {
			// Faulted-out block: its pages are unreadable, GC cannot
			// relocate them and the block must never be reused.
			if rec != nil {
				dieBlock := b*g.Nand.PlanesPerDie + plane
				ppn0 := topo.PackPPN(id.Switch, id.Cluster, id.FIMM, pkg, die, dieBlock, 0)
				rec.Candidate(int64(ppn0), -float64(bi.valid), decision.ExcludedRetired)
			}
			continue
		}
		if bi.valid >= victimValid {
			if rec != nil {
				dieBlock := b*g.Nand.PlanesPerDie + plane
				ppn0 := topo.PackPPN(id.Switch, id.Cluster, id.FIMM, pkg, die, dieBlock, 0)
				rec.Candidate(int64(ppn0), -float64(bi.valid), decision.Eligible)
			}
			continue
		}
		if veto != nil {
			dieBlock := b*g.Nand.PlanesPerDie + plane
			if veto(topo.PackPPN(id.Switch, id.Cluster, id.FIMM, pkg, die, dieBlock, 0)) {
				if rec != nil {
					ppn0 := topo.PackPPN(id.Switch, id.Cluster, id.FIMM, pkg, die, dieBlock, 0)
					rec.Candidate(int64(ppn0), -float64(bi.valid), decision.ExcludedVetoed)
				}
				continue
			}
		}
		if rec != nil {
			dieBlock := b*g.Nand.PlanesPerDie + plane
			ppn0 := topo.PackPPN(id.Switch, id.Cluster, id.FIMM, pkg, die, dieBlock, 0)
			rec.Candidate(int64(ppn0), -float64(bi.valid), decision.Eligible)
		}
		victimBlock, victimValid = b, bi.valid
	}
	if victimBlock < 0 {
		rec.Cancel()
		return nil, false
	}
	if rec != nil {
		dieBlock := victimBlock*g.Nand.PlanesPerDie + plane
		ppn0 := topo.PackPPN(id.Switch, id.Cluster, id.FIMM, pkg, die, dieBlock, 0)
		rec.Commit(int64(ppn0), -float64(victimValid), id.ClusterID.Flat(g))
	}

	dieBlock := victimBlock*g.Nand.PlanesPerDie + plane
	plan := &GCPlan{
		FIMM:   id,
		Victim: topo.PackPPN(id.Switch, id.Cluster, id.FIMM, pkg, die, dieBlock, 0),
	}
	bi := u.touched[victimBlock]
	for page := 0; page < g.Nand.PagesPerBlock.Int(); page++ {
		if !bi.isValid(page) {
			continue
		}
		src := topo.PackPPN(id.Switch, id.Cluster, id.FIMM, pkg, die, dieBlock, page)
		lpn, ok := f.LPNOf(src)
		if !ok {
			panic(fmt.Sprintf("ftl: valid page %v has no LPN", src))
		}
		plan.Moves = append(plan.Moves, GCMove{LPN: lpn, Src: src})
	}
	f.stats.GCPlans++
	return plan, true
}

// AllocateGCMove allocates the destination for one GC move, on the same
// FIMM the victim lives on.
func (f *FTL) AllocateGCMove(m GCMove) (WriteAlloc, error) {
	cur, ok := f.pageMap[m.LPN]
	if !ok || cur != m.Src {
		// The page moved (e.g. a host write landed) since planning; the
		// move is obsolete.
		return WriteAlloc{}, fmt.Errorf("ftl: GC move of %d is stale", m.LPN)
	}
	return f.allocate(m.LPN, m.Src.FIMMID(), WriteGC)
}

// CompleteGCErase finalises a plan after the device erased the victim:
// the block returns to the free pool with its wear incremented.
func (f *FTL) CompleteGCErase(plan *GCPlan) error {
	fa := f.fimms[plan.FIMM.Flat(f.geom)]
	if fa == nil {
		return fmt.Errorf("ftl: CompleteGCErase on untouched FIMM %v", plan.FIMM)
	}
	g := f.geom
	u := fa.unitOf(g, plan.Victim)
	b := planeLocalBlock(g, plan.Victim)
	bi := u.touched[b]
	if bi == nil {
		return fmt.Errorf("ftl: victim block %v unknown", plan.Victim)
	}
	if bi.valid != 0 {
		return fmt.Errorf("ftl: victim block %v still has %d valid pages", plan.Victim, bi.valid)
	}
	if bi.state != blockFull && bi.state != blockDense {
		return fmt.Errorf("ftl: victim block %v in state %d not reclaimable", plan.Victim, bi.state)
	}
	bi.state = blockFree
	bi.erase++
	bi.next = 0
	for i := range bi.mask {
		bi.mask[i] = 0
	}
	u.allocated--
	u.freeList = append(u.freeList, b)
	fa.erases++
	f.stats.GCErases++
	return nil
}
