package ftl

import (
	"fmt"

	"triplea/internal/topo"
)

type blockStateKind uint8

const (
	blockFree   blockStateKind = iota // recycled, available for allocation
	blockActive                       // current append target of its unit
	blockFull                         // fully programmed
	blockDense                        // holds prepopulated (static-layout) pages
)

// blockInfo tracks one touched erase block. Untouched blocks are
// implicitly virgin-free and carried only by the unit's fresh pointer,
// keeping memory proportional to the workload footprint rather than the
// 16 TB array.
type blockInfo struct {
	state   blockStateKind
	erase   int
	valid   int
	next    int      // sequential-program pointer
	mask    []uint64 // valid-page bitmap
	retired bool     // faulted out: never allocated, claimed or GC'd again
}

func (bi *blockInfo) ensureMask(pagesPerBlock int) {
	if bi.mask == nil {
		bi.mask = make([]uint64, (pagesPerBlock+63)/64) //simlint:coldalloc first touch: lazy page-state mask
	}
}

func (bi *blockInfo) setValid(page int) {
	bi.mask[page/64] |= 1 << (page % 64)
	bi.valid++
}

func (bi *blockInfo) clearValid(page int) {
	bi.mask[page/64] &^= 1 << (page % 64)
	bi.valid--
}

func (bi *blockInfo) isValid(page int) bool {
	if bi.mask == nil {
		return false
	}
	return bi.mask[page/64]&(1<<(page%64)) != 0
}

// unitAlloc manages the blocks of one parallel unit (package, die,
// plane). Block indices here are plane-local.
type unitAlloc struct {
	touched      map[int]*blockInfo
	freeList     []int // recycled free blocks
	nextFresh    int   // lowest never-touched plane-local block
	aheadTouched int   // touched blocks at indices >= nextFresh
	allocated    int   // blocks in active/full/dense state
	active       int   // plane-local index of the active block, or -1
	retired      bool  // whole unit faulted out (dead die or dead FIMM)
}

func newUnitAlloc() *unitAlloc {
	return &unitAlloc{touched: make(map[int]*blockInfo), active: -1} //simlint:coldalloc first touch: per-unit allocator state
}

// freeBlocks reports how many blocks could still become allocation
// targets: recycled free blocks plus untouched virgin blocks.
func (u *unitAlloc) freeBlocks(blocksPerPlane int) int {
	return len(u.freeList) + (blocksPerPlane - u.nextFresh) - u.aheadTouched
}

// takeFreeBlock claims a block for allocation, preferring a virgin
// block (erase count zero — wear-levelling by construction) and falling
// back to the lowest-erase recycled block.
func (u *unitAlloc) takeFreeBlock(blocksPerPlane int) (int, *blockInfo, bool) {
	for u.nextFresh < blocksPerPlane {
		b := u.nextFresh
		u.nextFresh++
		if _, ok := u.touched[b]; ok {
			// Includes blocks retired by fault injection: retirement gives
			// an untouched block a touched entry exactly so this skips it.
			u.aheadTouched--
			continue
		}
		bi := &blockInfo{} //simlint:coldalloc first touch: per-block metadata
		u.touched[b] = bi
		return b, bi, true
	}
	if len(u.freeList) == 0 {
		return 0, nil, false
	}
	best := 0
	for i, b := range u.freeList {
		if u.touched[b].erase < u.touched[u.freeList[best]].erase {
			best = i
		}
	}
	b := u.freeList[best]
	u.freeList = append(u.freeList[:best], u.freeList[best+1:]...) //simlint:coldalloc in-place removal: append reuses the existing backing array
	return b, u.touched[b], true
}

// fimmAlloc is the allocation state of one FIMM.
type fimmAlloc struct {
	units  []*unitAlloc
	rr     int // round-robin pointer across units
	erases uint64
}

func newFIMMAlloc(g topo.Geometry) *fimmAlloc {
	fa := &fimmAlloc{units: make([]*unitAlloc, g.ParallelUnitsPerFIMM())} //simlint:coldalloc first touch: per-FIMM allocator state
	for i := range fa.units {
		fa.units[i] = newUnitAlloc()
	}
	return fa
}

// unitIndex maps a PPN's (pkg, die, plane) to its unit slot.
func unitIndex(g topo.Geometry, pkg, die, plane int) int {
	return (pkg*g.Nand.DiesPerPackage+die)*g.Nand.PlanesPerDie + plane
}

// unitCoords inverts unitIndex.
func unitCoords(g topo.Geometry, unit int) (pkg, die, plane int) {
	planes := g.Nand.PlanesPerDie
	dies := g.Nand.DiesPerPackage
	return unit / (dies * planes), (unit / planes) % dies, unit % planes
}

func (fa *fimmAlloc) unitOf(g topo.Geometry, ppn topo.PPN) *unitAlloc {
	plane := ppn.Block() % g.Nand.PlanesPerDie
	return fa.units[unitIndex(g, ppn.Pkg(), ppn.Die(), plane)]
}

func planeLocalBlock(g topo.Geometry, ppn topo.PPN) int {
	return ppn.Block() / g.Nand.PlanesPerDie
}

// claimDense reserves ppn's page inside a dense (prepopulated) block.
// It reports false if the block has been consumed by dynamic
// allocation, in which case the caller allocates out-of-place.
func (fa *fimmAlloc) claimDense(f *FTL, ppn topo.PPN) bool {
	g := f.geom
	u := fa.unitOf(g, ppn)
	b := planeLocalBlock(g, ppn)
	bi := u.touched[b]
	if bi == nil {
		bi = &blockInfo{state: blockDense}
		u.touched[b] = bi
		u.allocated++
		if b >= u.nextFresh {
			u.aheadTouched++
		}
	} else if bi.state != blockDense || bi.retired {
		return false
	}
	bi.ensureMask(g.Nand.PagesPerBlock.Int())
	if bi.isValid(ppn.Page()) {
		panic(fmt.Sprintf("ftl: dense page %v claimed twice", ppn))
	}
	bi.setValid(ppn.Page())
	if ppn.Page() >= bi.next {
		bi.next = ppn.Page() + 1
	}
	return true
}

// allocPage hands out the next physical page on this FIMM, rotating
// across parallel units so consecutive writes land on different dies.
func (fa *fimmAlloc) allocPage(f *FTL, id topo.FIMMID) (topo.PPN, error) {
	g := f.geom
	for attempt := 0; attempt < len(fa.units); attempt++ {
		unit := (fa.rr + attempt) % len(fa.units)
		u := fa.units[unit]
		if u.retired {
			continue
		}
		if u.active < 0 {
			b, bi, ok := u.takeFreeBlock(g.Nand.BlocksPerPlane.Int())
			if !ok {
				continue
			}
			bi.state = blockActive
			bi.next = 0
			bi.ensureMask(g.Nand.PagesPerBlock.Int())
			u.active = b
			u.allocated++
		}
		bi := u.touched[u.active]
		page := bi.next
		bi.next++
		bi.setValid(page)
		pkg, die, plane := unitCoords(g, unit)
		block := u.active*g.Nand.PlanesPerDie + plane
		ppn := topo.PackPPN(id.Switch, id.Cluster, id.FIMM, pkg, die, block, page)
		if bi.next >= g.Nand.PagesPerBlock.Int() {
			bi.state = blockFull
			u.active = -1
		}
		fa.rr = (unit + 1) % len(fa.units)
		return ppn, nil
	}
	return 0, ErrNoSpace
}

// markStale clears a page's valid bit after its LPN moved elsewhere.
func (fa *fimmAlloc) markStale(f *FTL, ppn topo.PPN) {
	g := f.geom
	u := fa.unitOf(g, ppn)
	bi := u.touched[planeLocalBlock(g, ppn)]
	if bi == nil || !bi.isValid(ppn.Page()) {
		panic(fmt.Sprintf("ftl: markStale of non-valid page %v", ppn))
	}
	bi.clearValid(ppn.Page())
}

// denseLPN inverts a dense page back to its LPN, if the page is a live
// prepopulated page.
func (fa *fimmAlloc) denseLPN(f *FTL, ppn topo.PPN) (int64, bool) {
	g := f.geom
	u := fa.unitOf(g, ppn)
	bi := u.touched[planeLocalBlock(g, ppn)]
	if bi == nil || bi.state != blockDense || !bi.isValid(ppn.Page()) {
		return 0, false
	}
	fp := f.denseFP(ppn)
	return f.lpnFromHome(ppn.FIMMID().Flat(g), fp), true
}

// wear summarises erases on this FIMM.
func (fa *fimmAlloc) wear() FIMMWear {
	w := FIMMWear{Erases: fa.erases}
	for _, u := range fa.units {
		//simlint:ordered commutative max over blocks
		for _, bi := range u.touched {
			if bi.erase > w.MaxBlock {
				w.MaxBlock = bi.erase
			}
		}
	}
	return w
}
