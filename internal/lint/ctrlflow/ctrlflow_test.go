package ctrlflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src (a file containing one function f) and returns
// the CFG of f's body.
func buildFunc(t *testing.T, src string, mayReturn func(*ast.CallExpr) bool) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return New(fd.Body, mayReturn)
		}
	}
	t.Fatal("no function f in source")
	return nil
}

// liveReturns counts reachable blocks that exit the function normally.
func liveReturns(g *CFG) int {
	n := 0
	for _, b := range g.Blocks {
		if b.Live && b.Returns {
			n++
		}
	}
	return n
}

// hasCycle reports whether the graph has a reachable back edge.
func hasCycle(g *CFG) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*Block]int)
	var visit func(*Block) bool
	visit = func(b *Block) bool {
		color[b] = grey
		for _, s := range b.Succs {
			switch color[s] {
			case grey:
				return true
			case white:
				if visit(s) {
					return true
				}
			}
		}
		color[b] = black
		return false
	}
	if len(g.Blocks) == 0 {
		return false
	}
	return visit(g.Blocks[0])
}

func TestStraightLine(t *testing.T) {
	g := buildFunc(t, `package p
func f() { x := 1; _ = x }`, nil)
	if got := liveReturns(g); got != 1 {
		t.Fatalf("straight-line function: %d live returning blocks, want 1", got)
	}
	if hasCycle(g) {
		t.Fatal("straight-line function has a cycle")
	}
}

func TestIfElseJoins(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`, nil)
	// Two return statements, each terminating its own block.
	if got := liveReturns(g); got != 2 {
		t.Fatalf("if/return function: %d live returning blocks, want 2", got)
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	x := 0
	if c {
		x = 1
	}
	_ = x
}`, nil)
	if got := liveReturns(g); got != 1 {
		t.Fatalf("if-no-else: %d live returning blocks, want 1", got)
	}
	// The condition block must have two successors (then, join).
	var cond *Block
	for _, b := range g.Blocks {
		if len(b.Succs) == 2 {
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no two-way branch block found for if without else")
	}
}

func TestForLoopHasBackEdge(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	for i := 0; i < 10; i++ {
		_ = i
	}
}`, nil)
	if !hasCycle(g) {
		t.Fatal("for loop produced no cycle")
	}
	if got := liveReturns(g); got != 1 {
		t.Fatalf("for loop: %d live returning blocks, want 1", got)
	}
}

func TestRangeLoopZeroIterationPath(t *testing.T) {
	g := buildFunc(t, `package p
func f(xs []int) {
	for _, x := range xs {
		_ = x
	}
}`, nil)
	if !hasCycle(g) {
		t.Fatal("range loop produced no cycle")
	}
	// The exit must be reachable without entering the body: the head
	// block has both the body and the done block as successors.
	if got := liveReturns(g); got != 1 {
		t.Fatalf("range loop: %d live returning blocks, want 1", got)
	}
}

func TestBreakAndContinue(t *testing.T) {
	g := buildFunc(t, `package p
func f(xs []int) {
	for _, x := range xs {
		if x == 0 {
			continue
		}
		if x < 0 {
			break
		}
	}
}`, nil)
	if !hasCycle(g) {
		t.Fatal("loop with continue lost its back edge")
	}
	if got := liveReturns(g); got != 1 {
		t.Fatalf("break/continue: %d live returning blocks, want 1", got)
	}
}

func TestSwitchBranchesRejoin(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) int {
	switch x {
	case 1:
		return 1
	case 2:
		x++
	default:
		x--
	}
	return x
}`, nil)
	if got := liveReturns(g); got != 2 {
		t.Fatalf("switch: %d live returning blocks, want 2", got)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) int {
	y := 0
	switch x {
	case 1:
		y = 1
		fallthrough
	case 2:
		y = 2
	}
	return y
}`, nil)
	if got := liveReturns(g); got != 1 {
		t.Fatalf("fallthrough switch: %d live returning blocks, want 1", got)
	}
	// Case-1's body must have case-2's body as a successor: find a
	// block whose nodes include the fallthrough statement.
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if len(b.Succs) == 1 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("fallthrough block does not jump to the next case body")
	}
}

func TestTypeSwitch(t *testing.T) {
	g := buildFunc(t, `package p
func f(x any) int {
	switch x.(type) {
	case int:
		return 1
	case string:
		return 2
	}
	return 0
}`, nil)
	if got := liveReturns(g); got != 3 {
		t.Fatalf("type switch: %d live returning blocks, want 3", got)
	}
}

func TestPanicTerminatesBlock(t *testing.T) {
	noReturn := func(c *ast.CallExpr) bool {
		id, ok := c.Fun.(*ast.Ident)
		return !(ok && id.Name == "panic")
	}
	g := buildFunc(t, `package p
func f(c bool) int {
	if !c {
		panic("no")
	}
	return 1
}`, noReturn)
	// The panic block terminates abnormally: exactly one normal return.
	if got := liveReturns(g); got != 1 {
		t.Fatalf("panic path: %d live returning blocks, want 1", got)
	}
	// And some live block must be terminal without Returns (the panic).
	abnormal := 0
	for _, b := range g.Blocks {
		if b.Live && len(b.Succs) == 0 && !b.Returns {
			abnormal++
		}
	}
	if abnormal != 1 {
		t.Fatalf("panic path: %d abnormal terminal blocks, want 1", abnormal)
	}
}

func TestGotoForwardAndBack(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	i := 0
loop:
	i++
	if c {
		goto out
	}
	goto loop
out:
	_ = i
}`, nil)
	if !hasCycle(g) {
		t.Fatal("backward goto produced no cycle")
	}
	if got := liveReturns(g); got != 1 {
		t.Fatalf("goto: %d live returning blocks, want 1", got)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildFunc(t, `package p
func f(xs []int) {
outer:
	for _, x := range xs {
		for _, y := range xs {
			if x == y {
				break outer
			}
		}
	}
}`, nil)
	if !hasCycle(g) {
		t.Fatal("nested loops produced no cycle")
	}
	if got := liveReturns(g); got != 1 {
		t.Fatalf("labeled break: %d live returning blocks, want 1", got)
	}
}

func TestLabeledContinue(t *testing.T) {
	g := buildFunc(t, `package p
func f(xs []int) {
outer:
	for _, x := range xs {
		for _, y := range xs {
			if x == y {
				continue outer
			}
		}
	}
}`, nil)
	if got := liveReturns(g); got != 1 {
		t.Fatalf("labeled continue: %d live returning blocks, want 1", got)
	}
}

func TestUnreachableAfterReturnIsDead(t *testing.T) {
	g := buildFunc(t, `package p
func f() int {
	return 1
	x := 2 // unreachable
	_ = x
	return x
}`, nil)
	if got := liveReturns(g); got != 1 {
		t.Fatalf("dead code: %d live returning blocks, want 1", got)
	}
}

func TestFuncLitBodyNotExpanded(t *testing.T) {
	g := buildFunc(t, `package p
func f() func() int {
	g := func() int { return 7 }
	return g
}`, nil)
	// The closure's return must not appear as a returning block of f.
	if got := liveReturns(g); got != 1 {
		t.Fatalf("func lit: %d live returning blocks, want 1", got)
	}
}

func TestInfiniteLoopHasNoReturn(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	for {
	}
}`, nil)
	if got := liveReturns(g); got != 0 {
		t.Fatalf("infinite loop: %d live returning blocks, want 0", got)
	}
}
