// Package ctrlflow builds intra-procedural control-flow graphs over Go
// syntax, mirroring the API shape of golang.org/x/tools/go/cfg with
// only the standard library (the repository deliberately has no
// third-party module requirements; see internal/lint/analysis). It
// exists for the poolsafe analyzer, whose ownership rules are "on
// every path out of the function" properties and therefore need paths,
// not just syntax.
//
// The graph is statement-granular: each basic block carries the
// statements (and branch condition expressions) that execute in order
// when control enters it, and the successor blocks control may reach
// afterwards. Function literals nested inside the body are NOT
// expanded into the enclosing graph — a closure body runs at some
// other time; callers build a separate CFG per FuncLit.
//
// Termination: a block with no successors ends the function. That
// happens at a return statement, at a call the mayReturn callback
// rejects (panic, os.Exit, ...), and at the fall-off-the-end exit. Use
// Block.Returns to distinguish a normal exit from a no-return one when
// checking "on every path to a return" properties.
package ctrlflow

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block. Blocks unreachable from the entry keep Live == false.
type CFG struct {
	Blocks []*Block
}

// Block is one basic block: Nodes execute in order, then control moves
// to one of Succs. A block with no successors terminates the function
// — normally (Returns == true: a return statement or falling off the
// end of the body) or abnormally (Returns == false: the block ends in
// a call that never returns, like panic).
type Block struct {
	Nodes []ast.Node
	Succs []*Block

	Index   int32 // index within CFG.Blocks
	Live    bool  // reachable from the entry block
	Returns bool  // terminal block that exits the function normally
}

// New builds the CFG of body. mayReturn reports whether a call
// expression can return to its caller; passing nil treats every call
// as returning. A call that cannot return terminates its block.
func New(body *ast.BlockStmt, mayReturn func(*ast.CallExpr) bool) *CFG {
	if mayReturn == nil {
		mayReturn = func(*ast.CallExpr) bool { return true }
	}
	b := &builder{mayReturn: mayReturn, labels: make(map[string]*labelInfo)}
	entry := b.newBlock()
	b.current = entry
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	if b.current != nil {
		b.current.Returns = true
		b.current = nil
	}
	b.markLive(entry)
	return b.cfg()
}

// labelInfo tracks one label's target blocks: the labeled statement's
// own entry (for goto) and, when the labeled statement is a loop or
// switch, its break/continue targets.
type labelInfo struct {
	entry      *Block // the labeled statement itself (goto target)
	breakTo    *Block
	continueTo *Block
	used       bool
}

// targets is the innermost break/continue destination pair, stacked.
type targets struct {
	outer      *targets
	breakTo    *Block
	continueTo *Block // nil inside switch/select (continue skips them)
	label      string // non-empty when the construct is labeled
}

type builder struct {
	blocks        []*Block
	current       *Block // nil while control is unreachable
	targets       *targets
	labels        map[string]*labelInfo
	fallthroughTo *Block // next case-clause body while building a switch
	mayReturn     func(*ast.CallExpr) bool
}

func (b *builder) cfg() *CFG { return &CFG{Blocks: b.blocks} }

func (b *builder) newBlock() *Block {
	blk := &Block{Index: int32(len(b.blocks))}
	b.blocks = append(b.blocks, blk)
	return blk
}

// jump links the current block to dst and leaves control unreachable.
func (b *builder) jump(dst *Block) {
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, dst)
	}
	b.current = nil
}

// startBlock makes dst current, linking it from the previous current
// block if control can fall through into it.
func (b *builder) startBlock(dst *Block) {
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, dst)
	}
	b.current = dst
}

// add appends a node to the current block (dropped when unreachable).
func (b *builder) add(n ast.Node) {
	if b.current != nil && n != nil {
		b.current.Nodes = append(b.current.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		if b.current == nil {
			return
		}
		cond := b.current
		then := b.newBlock()
		done := b.newBlock()
		cond.Succs = append(cond.Succs, then)
		b.current = then
		b.stmt(s.Body)
		b.jump(done)
		if s.Else != nil {
			els := b.newBlock()
			cond.Succs = append(cond.Succs, els)
			b.current = els
			b.stmt(s.Else)
			b.jump(done)
		} else {
			cond.Succs = append(cond.Succs, done)
		}
		b.current = done

	case *ast.ForStmt:
		b.forStmt(s, "")

	case *ast.RangeStmt:
		b.rangeStmt(s, "")

	case *ast.SwitchStmt:
		b.switchStmt(s, "")

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")

	case *ast.SelectStmt:
		b.selectStmt(s, "")

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ReturnStmt:
		b.add(s)
		if b.current != nil {
			b.current.Returns = true
			b.current = nil
		}

	case *ast.ExprStmt:
		b.add(s)
		b.checkNoReturn(s.X)

	case *ast.GoStmt, *ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.AssignStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		b.add(s)
	}
}

// checkNoReturn terminates the block when the statement's outermost
// expression is a call that cannot return.
func (b *builder) checkNoReturn(e ast.Expr) {
	call, ok := e.(*ast.CallExpr)
	if !ok || b.current == nil {
		return
	}
	if !b.mayReturn(call) {
		b.current = nil // terminal, and not a normal return
	}
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	if li.entry == nil {
		li.entry = b.newBlock()
	}
	b.startBlock(li.entry)
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, name)
	case *ast.SelectStmt:
		b.selectStmt(inner, name)
	default:
		b.stmt(s.Stmt)
	}
	// break <label> on a non-loop labeled statement jumps past it.
	if li.breakTo != nil && li.continueTo == nil && li.used {
		done := li.breakTo
		b.startBlock(done)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.breakTo != nil {
				b.jump(li.breakTo)
				return
			}
			// break to a label of a plain (non-loop) labeled statement:
			// allocate its break target lazily.
			li := b.labels[s.Label.Name]
			if li == nil {
				li = &labelInfo{}
				b.labels[s.Label.Name] = li
			}
			if li.breakTo == nil {
				li.breakTo = b.newBlock()
			}
			li.used = true
			b.jump(li.breakTo)
			return
		}
		for t := b.targets; t != nil; t = t.outer {
			if t.breakTo != nil {
				b.jump(t.breakTo)
				return
			}
		}
		b.current = nil
	case token.CONTINUE:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.continueTo != nil {
				b.jump(li.continueTo)
				return
			}
			b.current = nil
			return
		}
		for t := b.targets; t != nil; t = t.outer {
			if t.continueTo != nil {
				b.jump(t.continueTo)
				return
			}
		}
		b.current = nil
	case token.GOTO:
		if s.Label != nil {
			li := b.labels[s.Label.Name]
			if li == nil {
				li = &labelInfo{}
				b.labels[s.Label.Name] = li
			}
			if li.entry == nil {
				li.entry = b.newBlock()
			}
			b.jump(li.entry)
			return
		}
		b.current = nil
	case token.FALLTHROUGH:
		// Handled by switchStmt via fallthroughTo; a stray fallthrough
		// (invalid Go) just ends the block.
		if b.fallthroughTo != nil {
			b.jump(b.fallthroughTo)
			return
		}
		b.current = nil
	}
}

func (b *builder) pushTargets(breakTo, continueTo *Block, label string) {
	b.targets = &targets{outer: b.targets, breakTo: breakTo, continueTo: continueTo, label: label}
}

func (b *builder) popTargets() { b.targets = b.targets.outer }

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	done := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
	}
	b.registerLoopLabel(label, head, done, post)
	b.startBlock(head)
	if s.Cond != nil {
		b.add(s.Cond)
		if b.current != nil {
			b.current.Succs = append(b.current.Succs, done)
		}
	}
	bodyBlk := b.newBlock()
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, bodyBlk)
	}
	b.current = bodyBlk
	b.pushTargets(done, post, label)
	b.stmt(s.Body)
	b.popTargets()
	b.jump(post)
	if s.Post != nil {
		b.current = post
		b.stmt(s.Post)
		b.jump(head)
	}
	b.current = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X)
	head := b.newBlock()
	done := b.newBlock()
	b.registerLoopLabel(label, head, done, head)
	b.startBlock(head)
	// The loop may execute zero times: head branches to done and body.
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, done)
	}
	bodyBlk := b.newBlock()
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, bodyBlk)
	}
	b.current = bodyBlk
	// Key/Value assignment happens on each iteration.
	if s.Key != nil {
		b.add(s.Key)
	}
	if s.Value != nil {
		b.add(s.Value)
	}
	b.pushTargets(done, head, label)
	b.stmt(s.Body)
	b.popTargets()
	b.jump(head)
	b.current = done
}

// registerLoopLabel wires an enclosing label's break/continue targets.
func (b *builder) registerLoopLabel(label string, head, done, post *Block) {
	if label == "" {
		return
	}
	li := b.labels[label]
	if li == nil {
		li = &labelInfo{}
		b.labels[label] = li
	}
	li.breakTo, li.continueTo = done, post
	_ = head
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s.Body, label, func(cc *ast.CaseClause) []ast.Node {
		nodes := make([]ast.Node, 0, len(cc.List))
		for _, e := range cc.List {
			nodes = append(nodes, e)
		}
		return nodes
	})
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(s.Body, label, func(cc *ast.CaseClause) []ast.Node { return nil })
}

// caseClauses builds the shared switch shape: the tag block branches to
// every clause body (and past the switch when there is no default).
func (b *builder) caseClauses(body *ast.BlockStmt, label string, guards func(*ast.CaseClause) []ast.Node) {
	if b.current == nil {
		return
	}
	tag := b.current
	done := b.newBlock()
	if label != "" {
		li := b.labels[label]
		if li == nil {
			li = &labelInfo{}
			b.labels[label] = li
		}
		li.breakTo = done
	}
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, st := range body.List {
		cc, ok := st.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
	}
	// Pre-allocate each clause's body block so fallthrough can target
	// the next one.
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, cc := range clauses {
		tag.Succs = append(tag.Succs, bodies[i])
		b.current = bodies[i]
		for _, g := range guards(cc) {
			b.add(g)
		}
		var ft *Block
		if i+1 < len(bodies) {
			ft = bodies[i+1]
		}
		saved := b.fallthroughTo
		b.fallthroughTo = ft
		b.pushTargets(done, nil, label)
		b.stmtList(cc.Body)
		b.popTargets()
		b.fallthroughTo = saved
		b.jump(done)
	}
	if !hasDefault {
		tag.Succs = append(tag.Succs, done)
	}
	b.current = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	if b.current == nil {
		return
	}
	tag := b.current
	done := b.newBlock()
	if label != "" {
		li := b.labels[label]
		if li == nil {
			li = &labelInfo{}
			b.labels[label] = li
		}
		li.breakTo = done
	}
	hasDefault := false
	for _, st := range s.Body.List {
		cc, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		tag.Succs = append(tag.Succs, blk)
		b.current = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.pushTargets(done, nil, label)
		b.stmtList(cc.Body)
		b.popTargets()
		b.jump(done)
	}
	// A select with no default blocks until a case fires; control never
	// skips the body, but for analysis purposes the distinction does
	// not matter: done is only reachable through a clause.
	_ = hasDefault
	b.current = done
}

// markLive flags every block reachable from entry.
func (b *builder) markLive(entry *Block) {
	var visit func(*Block)
	visit = func(blk *Block) {
		if blk.Live {
			return
		}
		blk.Live = true
		for _, s := range blk.Succs {
			visit(s)
		}
	}
	visit(entry)
}
