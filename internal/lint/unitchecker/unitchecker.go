// Package unitchecker lets a simlint binary act as a `go vet -vettool`
// backend, mirroring golang.org/x/tools/go/analysis/unitchecker with
// only the standard library.
//
// The cmd/go vet driver speaks a small protocol to the tool:
//
//   - `tool -V=full` must print "<name> version devel comments-go-here
//     buildID=<hash>" so cmd/go can include the tool in its build cache
//     keys;
//   - `tool -flags` must print a JSON array describing the tool's flags
//     so cmd/go can validate command-line flags before dispatching them;
//   - `tool <pkg>.cfg` analyzes one already-compiled package. The .cfg
//     file is JSON (see Config) naming the package's Go files, its
//     import map, and the export-data files of its dependencies. The
//     tool must write cfg.VetxOutput (facts for dependents; simlint has
//     none, so the file is empty), print diagnostics, and exit nonzero
//     iff any were reported.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"triplea/internal/lint/analysis"
)

// Config is the JSON payload cmd/go writes to the .cfg file for each
// package unit. Field names and meanings follow cmd/go/internal/work;
// fields simlint does not consume are kept so decoding stays strict
// about nothing and tolerant of everything.
type Config struct {
	ID                        string // e.g. "fmt [fmt.test]"
	Compiler                  string // gc or gccgo
	Dir                       string // package directory
	ImportPath                string // canonical import path, possibly with " [variant]" suffix
	GoVersion                 string // minimum required Go version, e.g. "go1.24"
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string // import path in source -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // canonical path -> dependency facts file
	VetxOnly                  bool              // run only to produce facts for dependents
	VetxOutput                string            // where to write this package's facts
	SucceedOnTypecheckFailure bool
}

// A jsonFlag row is what `go vet` expects from `tool -flags`.
type jsonFlag struct {
	Name  string
	Bool  bool
	Usage string
}

// Main is the entry point for a vettool built from simlint analyzers.
// It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	versionFlag := flag.String("V", "", "print version and exit (cmd/go protocol)")
	flagsFlag := flag.Bool("flags", false, "print flags in JSON and exit (cmd/go protocol)")
	jsonOut := flag.Bool("json", false, "emit JSON diagnostics instead of text")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, false, "enable only "+a.Name+" (and other explicitly enabled analyzers): "+a.Doc)
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion(progname)
		os.Exit(0)
	case *flagsFlag:
		printFlags(analyzers)
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`invoke via "go vet -vettool=$(command -v %s) ./..."`, progname)
	}

	// Flag semantics match x/tools: naming any analyzer restricts the
	// run to the named set; naming none runs everything.
	var selected []*analysis.Analyzer
	anyNamed := false
	for _, a := range analyzers {
		if *enabled[a.Name] {
			anyNamed = true
		}
	}
	for _, a := range analyzers {
		if !anyNamed || *enabled[a.Name] {
			selected = append(selected, a)
		}
	}

	ndiags, err := run(args[0], selected, *jsonOut)
	if err != nil {
		log.Fatal(err)
	}
	if ndiags > 0 && !*jsonOut {
		os.Exit(2)
	}
	os.Exit(0)
}

// printVersion implements `tool -V=full`. cmd/go hashes this line into
// its action IDs, so it must uniquely identify the binary's content.
func printVersion(progname string) {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	h := sha256.New()
	if f, err := os.Open(exe); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

func printFlags(analyzers []*analysis.Analyzer) {
	rows := []jsonFlag{{Name: "json", Bool: true, Usage: "emit JSON diagnostics"}}
	for _, a := range analyzers {
		rows = append(rows, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(rows)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

func run(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// simlint analyzers produce no facts, but cmd/go requires the facts
	// file to exist before it will cache the unit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, fmt.Errorf("writing vetx output: %v", err)
		}
	}
	if cfg.VetxOnly {
		return 0, nil // dependents only need our (empty) facts
	}

	fset := token.NewFileSet()
	pkg, files, info, err := typecheck(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}

	type outDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	jsonTree := make(map[string]map[string][]outDiag)
	ndiags := 0
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return 0, fmt.Errorf("%s: %v", a.Name, err)
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		ndiags += len(diags)
		for _, d := range diags {
			posn := fset.Position(d.Pos)
			if jsonOut {
				byA := jsonTree[cfg.ImportPath]
				if byA == nil {
					byA = make(map[string][]outDiag)
					jsonTree[cfg.ImportPath] = byA
				}
				byA[a.Name] = append(byA[a.Name], outDiag{Posn: posn.String(), Message: d.Message})
			} else {
				fmt.Fprintf(os.Stderr, "%s: %s\n", posn, d.Message)
			}
		}
	}
	if jsonOut {
		out, err := json.MarshalIndent(jsonTree, "", "\t")
		if err != nil {
			return 0, err
		}
		os.Stdout.Write(out)
		fmt.Println()
	}
	return ndiags, nil
}

// typecheck parses and type-checks the unit described by cfg, resolving
// imports through the export data the compiler already produced.
func typecheck(fset *token.FileSet, cfg *Config) (*types.Package, []*ast.File, *types.Info, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = version.Lang(cfg.GoVersion)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	// Test variants carry an " [import/path.test]" suffix; the analyzers
	// match packages by path suffix, so present the base path to them.
	path := cfg.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	pkg, err := tc.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, files, info, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
