// Package analysis is a self-contained, dependency-free core of a
// static-analysis framework, mirroring the API shape of
// golang.org/x/tools/go/analysis. The repository deliberately has no
// third-party module requirements (the simulator's reproducibility
// story extends to its build: nothing outside the standard library),
// so the subset of the x/tools API that simlint needs is defined here.
// If the x/tools dependency is ever vendored, each analyzer ports by
// changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass: a name, a diagnostic
// Doc string, and a Run function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and command-line
	// flags. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary,
	// optionally followed by paragraphs of detail.
	Doc string

	// Run applies the analyzer to a package. It reports findings via
	// pass.Report and may return an arbitrary result value (unused by
	// the simlint driver, kept for x/tools API parity).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer with the type-checked syntax of one
// package and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: end of the offending range
	Category string    // optional: a sub-rule identifier
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FileAt returns the syntax file containing pos, if any.
func (p *Pass) FileAt(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Filename reports the name of the source file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}
