package callgraph

// refs.go extracts the cross-package component-reference graph that
// the partsafe analyzer certifies and cmd/simgraph renders: every way
// one package can RETAIN a path to another package's mutable state.
//
// The extraction is hold-based, not flow-based. To interact with a
// foreign component at all, code must hold a reference to it somewhere
// durable — a struct field, a package-level var, or a closure capture
// (parameters and locals are transient views of a reference someone
// else already holds, so recording them would only duplicate the edge
// at lower signal). Two further kinds attribute *wiring*: a composite
// literal of a foreign component type and a store through a foreign
// component's field are the construction sites that create or rewire
// an edge, and a call through a foreign interface method is the
// dispatch surface an edge is exercised through.
//
// Only STATEFUL foreign types produce references: a type whose value
// representation can reach mutable memory (pointer, slice, map, chan,
// func, interface, unsafe.Pointer — anywhere, recursively). Pure value
// types (units quantities, topo addresses, timing structs, enums) are
// free to share: copying them cannot couple two components.
//
// Named types split three ways during the structural walk:
//
//   - a foreign component type (per the caller's filter): the edge
//     endpoint — record it, do not look inside (its internals are its
//     own package's business);
//   - a named type of the package under analysis: skip — the type's
//     own declaration is scanned once, so every use site would repeat
//     the same edges;
//   - any other foreign type (stdlib containers, out-of-scope
//     wrappers): transparent — descend into its underlying type, since
//     a workload wrapper or container may carry component references
//     inside.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RefKind classifies how a package holds or wires a foreign component
// reference.
type RefKind uint8

const (
	// RefField: a struct field (or the underlying of a named type
	// declaration) carries the reference. The durable wiring of the
	// simulator lives here.
	RefField RefKind = iota
	// RefGlobal: a package-level variable carries the reference.
	RefGlobal
	// RefCapture: a function literal captures a local variable that
	// carries the reference.
	RefCapture
	// RefStore: a wiring site — a composite literal of a foreign
	// component type, or an assignment through a foreign component's
	// field.
	RefStore
	// RefDispatch: a call through a method of a foreign interface
	// type — the dispatch surface of an edge.
	RefDispatch
)

func (k RefKind) String() string {
	switch k {
	case RefField:
		return "field"
	case RefGlobal:
		return "global"
	case RefCapture:
		return "capture"
	case RefStore:
		return "store"
	case RefDispatch:
		return "dispatch"
	}
	return "unknown"
}

// ComponentRef records one way the analyzed package can reach a
// component type of another package.
type ComponentRef struct {
	Kind RefKind
	// Pos is the site to attribute the edge to: the field declaration,
	// var declaration, capturing identifier, composite literal, store,
	// or call.
	Pos token.Pos
	// To is the foreign component type reached.
	To *types.TypeName
	// Site is a human-readable attribution ("field Array.rc",
	// "closure captures ep", ...) for diagnostics and artifacts.
	Site string
}

// CollectRefs scans one type-checked package and returns every
// component reference it holds or wires, in deterministic order
// (position, then type). Files for which skip returns true (test
// files, typically) contribute nothing; skip may be nil. component
// decides which foreign named types are edge endpoints.
func CollectRefs(pkg *types.Package, info *types.Info, files []*ast.File,
	skip func(*ast.File) bool, component func(*types.TypeName) bool) []ComponentRef {
	c := &refCollector{
		pkg:       pkg,
		info:      info,
		component: component,
		seen:      make(map[refKey]bool),
	}
	for _, f := range files {
		if skip != nil && skip(f) {
			continue
		}
		c.scanDecls(f)
		c.scanBodies(f)
	}
	sort.Slice(c.refs, func(i, j int) bool {
		a, b := c.refs[i], c.refs[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		if a.To.Name() != b.To.Name() {
			return a.To.Name() < b.To.Name()
		}
		return a.Kind < b.Kind
	})
	return c.refs
}

type refKey struct {
	kind RefKind
	pos  token.Pos
	to   *types.TypeName
}

type refCollector struct {
	pkg       *types.Package
	info      *types.Info
	component func(*types.TypeName) bool
	refs      []ComponentRef
	seen      map[refKey]bool
}

func (c *refCollector) add(kind RefKind, pos token.Pos, to *types.TypeName, site string) {
	k := refKey{kind, pos, to}
	if c.seen[k] {
		return
	}
	c.seen[k] = true
	c.refs = append(c.refs, ComponentRef{Kind: kind, Pos: pos, To: to, Site: site})
}

// ---- declarations: struct fields, named-type underlyings, globals ----

func (c *refCollector) scanDecls(f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				c.scanTypeSpec(s)
			case *ast.ValueSpec:
				if gd.Tok != token.VAR {
					continue
				}
				for _, name := range s.Names {
					v, ok := c.info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					c.walkType(v.Type(), func(tn *types.TypeName) {
						c.add(RefGlobal, name.Pos(), tn,
							"package-level var "+name.Name)
					})
				}
			}
		}
	}
}

// scanTypeSpec walks one named type declaration. Struct types are
// scanned field by field so the diagnostic lands on the offending
// field (embedded fields included — an embedded component is still a
// held reference); any other underlying (slice-of-components, map,
// func type) is walked whole.
func (c *refCollector) scanTypeSpec(s *ast.TypeSpec) {
	if st, ok := s.Type.(*ast.StructType); ok {
		for _, field := range st.Fields.List {
			t := c.info.TypeOf(field.Type)
			names := field.Names
			if len(names) == 0 {
				// Embedded field: attribute to the type expression.
				c.walkType(t, func(tn *types.TypeName) {
					c.add(RefField, field.Type.Pos(), tn,
						fmt.Sprintf("embedded field %s.%s", s.Name.Name, tn.Name()))
				})
				continue
			}
			for _, name := range names {
				c.walkType(t, func(tn *types.TypeName) {
					c.add(RefField, name.Pos(), tn,
						fmt.Sprintf("field %s.%s", s.Name.Name, name.Name))
				})
			}
		}
		return
	}
	t := c.info.TypeOf(s.Type)
	c.walkType(t, func(tn *types.TypeName) {
		c.add(RefField, s.Name.Pos(), tn, "type "+s.Name.Name)
	})
}

// ---- bodies: captures, stores, dispatch ----

func (c *refCollector) scanBodies(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.scanCaptures(n)
		case *ast.CompositeLit:
			c.scanCompositeLit(n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.scanStore(lhs)
			}
		case *ast.CallExpr:
			c.scanDispatch(n)
		}
		return true
	})
}

// scanCaptures records foreign component references smuggled into a
// closure: any enclosing-function local (parameters and receivers
// included) whose type carries one. Package-level vars are not
// captures — the RefGlobal scan owns them at their declaration.
func (c *refCollector) scanCaptures(lit *ast.FuncLit) {
	seenVar := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seenVar[v] {
			return true
		}
		if v.Pkg() != c.pkg || v.Parent() == nil || v.Parent() == c.pkg.Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		seenVar[v] = true
		c.walkType(v.Type(), func(tn *types.TypeName) {
			c.add(RefCapture, id.Pos(), tn, "closure captures "+v.Name())
		})
		return true
	})
}

// scanCompositeLit records the construction of a foreign component:
// building Q.S{...} from outside Q wires a new instance of Q's state.
func (c *refCollector) scanCompositeLit(cl *ast.CompositeLit) {
	tn, ok := c.foreignComponent(c.info.TypeOf(cl))
	if !ok {
		return
	}
	c.add(RefStore, cl.Pos(), tn, "composite literal of "+tn.Name())
}

// scanStore records a write through a foreign component's field: the
// assignment rewires state the component owns.
func (c *refCollector) scanStore(lhs ast.Expr) {
	sel, ok := unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := c.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	tn, ok := c.foreignComponent(s.Recv())
	if !ok {
		return
	}
	c.add(RefStore, lhs.Pos(), tn,
		fmt.Sprintf("store to %s.%s", tn.Name(), s.Obj().Name()))
}

// scanDispatch records a call through a foreign interface's method:
// the interface is the declared dispatch surface of an edge.
func (c *refCollector) scanDispatch(call *ast.CallExpr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := c.info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || !isInterfaceRecv(fn) {
		return
	}
	tn, ok := c.foreignComponent(s.Recv())
	if !ok {
		return
	}
	c.add(RefDispatch, call.Pos(), tn,
		fmt.Sprintf("dispatch %s.%s", tn.Name(), fn.Name()))
}

// foreignComponent resolves t (through pointers and aliases) to a
// stateful foreign component type, if that is what it is.
func (c *refCollector) foreignComponent(t types.Type) (*types.TypeName, bool) {
	if t == nil {
		return nil, false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	tn := n.Obj()
	if tn == nil || tn.Pkg() == nil || tn.Pkg() == c.pkg {
		return nil, false
	}
	if c.component == nil || !c.component(tn) || !Stateful(n) {
		return nil, false
	}
	return tn, true
}

// ---- the structural type walk ----

// walkType calls add for every stateful foreign component type
// reachable from t in reference-carrying form: directly, under
// pointers, as slice/array/map/chan elements, through function
// signatures, inside anonymous structs and interfaces, and through the
// underlyings of transparent (non-component) foreign named types.
func (c *refCollector) walkType(t types.Type, add func(*types.TypeName)) {
	c.walk(t, add, make(map[types.Type]bool))
}

func (c *refCollector) walk(t types.Type, add func(*types.TypeName), seen map[types.Type]bool) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	t = types.Unalias(t)
	switch u := t.(type) {
	case *types.Named:
		tn := u.Obj()
		if tn == nil || tn.Pkg() == nil {
			return // error type and friends
		}
		if tn.Pkg() == c.pkg {
			return // the local declaration scan owns in-package types
		}
		if c.component != nil && c.component(tn) {
			if Stateful(u) {
				add(tn)
			}
			return
		}
		if Stateful(u) {
			c.walk(u.Underlying(), add, seen)
		}
	case *types.Pointer:
		c.walk(u.Elem(), add, seen)
	case *types.Slice:
		c.walk(u.Elem(), add, seen)
	case *types.Array:
		c.walk(u.Elem(), add, seen)
	case *types.Map:
		c.walk(u.Key(), add, seen)
		c.walk(u.Elem(), add, seen)
	case *types.Chan:
		c.walk(u.Elem(), add, seen)
	case *types.Signature:
		c.walk(u.Params(), add, seen)
		c.walk(u.Results(), add, seen)
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			c.walk(u.At(i).Type(), add, seen)
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			c.walk(u.Field(i).Type(), add, seen)
		}
	case *types.Interface:
		for i := 0; i < u.NumMethods(); i++ {
			c.walk(u.Method(i).Type(), add, seen)
		}
	}
}

// Stateful reports whether a value of type t can reach mutable state:
// its representation contains a pointer, slice, map, channel, function,
// interface, or unsafe.Pointer anywhere. Copying a non-stateful value
// cannot couple two components, so only stateful types form edges.
func Stateful(t types.Type) bool {
	return stateful(t, make(map[types.Type]bool))
}

func stateful(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := types.Unalias(t).(type) {
	case *types.Named:
		return stateful(u.Underlying(), seen)
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if stateful(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return stateful(u.Elem(), seen)
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	}
	return false
}
