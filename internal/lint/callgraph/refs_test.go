package callgraph

// Contracts of the component-reference extraction (refs.go), pinned:
// partsafe's soundness rests on "every durable hold of a foreign
// component is reported, and only stateful types form edges", so each
// hold kind, each exemption, and the deterministic ordering get tests.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"testing"
)

// buildRefs type-checks a miniature module in memory — a fake
// component package "example.com/internal/pcie", a transparent
// out-of-scope wrapper package "example.com/wrap", and the package
// under analysis "example.com/internal/array" — and returns array's
// collected refs. The component filter matches anything declared under
// an /internal/ path, mirroring partsafe's suffix scope.
func buildRefs(t *testing.T, arraySrc string) []ComponentRef {
	t.Helper()
	fset := token.NewFileSet()
	pkgs := map[string]*types.Package{}
	load := func(path, src string) (*types.Package, *types.Info, []*ast.File) {
		f, err := parser.ParseFile(fset, strings.ReplaceAll(path, "/", "_")+".go", src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: refImporter{pkgs}}
		pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", path, err)
		}
		pkgs[path] = pkg
		return pkg, info, []*ast.File{f}
	}

	load("example.com/internal/pcie", `package pcie

// Link is a stateful component: it reaches mutable memory.
type Link struct{ buf []byte }

func (l *Link) Send(b []byte) {}

// Addr is a pure value type: copying it couples nothing.
type Addr struct{ Bus, Dev int }

// Receiver is the dispatch surface components implement.
type Receiver interface{ Deliver(p *Link) }
`)
	load("example.com/wrap", `package wrap

import "example.com/internal/pcie"

// Carrier is out of component scope but carries a component inside:
// the walk must see through it.
type Carrier struct{ L *pcie.Link }

// Plain carries nothing stateful.
type Plain struct{ N int }
`)
	pkg, info, files := load("example.com/internal/array", arraySrc)
	component := func(tn *types.TypeName) bool {
		return tn.Pkg() != nil && strings.Contains(tn.Pkg().Path(), "/internal/")
	}
	return CollectRefs(pkg, info, files, nil, component)
}

type refImporter struct{ pkgs map[string]*types.Package }

func (m refImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return importer.Default().Import(path)
}

// sites renders refs as "site -> Type" strings; the Site text already
// names the kind ("field ...", "closure captures ...", ...), and the
// rendering cross-checks that Kind and Site stay in sync.
func sites(refs []ComponentRef) []string {
	kindWords := map[RefKind]string{
		RefField:    " field embedded type ",
		RefGlobal:   " package-level ",
		RefCapture:  " closure ",
		RefStore:    " composite store ",
		RefDispatch: " dispatch ",
	}
	out := make([]string, len(refs))
	for i, r := range refs {
		first := strings.Fields(r.Site)[0]
		if !strings.Contains(kindWords[r.Kind], " "+first+" ") {
			out[i] = fmt.Sprintf("MISMATCH %s/%s -> %s", r.Kind, r.Site, r.To.Name())
			continue
		}
		out[i] = fmt.Sprintf("%s -> %s", r.Site, r.To.Name())
	}
	return out
}

func wantRefs(t *testing.T, refs []ComponentRef, want ...string) {
	t.Helper()
	got := sites(refs)
	if len(want) == 0 {
		want = []string{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("refs:\n got %q\nwant %q", got, want)
	}
}

func TestRefsStructFields(t *testing.T) {
	refs := buildRefs(t, `package array

import "example.com/internal/pcie"

type Array struct {
	up   *pcie.Link
	eps  []*pcie.Link
	byID map[int]*pcie.Link
	ch   chan *pcie.Link
	home pcie.Addr // stateless: exempt
	n    int
}
`)
	wantRefs(t, refs,
		"field Array.up -> Link",
		"field Array.eps -> Link",
		"field Array.byID -> Link",
		"field Array.ch -> Link",
	)
}

func TestRefsEmbeddedField(t *testing.T) {
	refs := buildRefs(t, `package array

import "example.com/internal/pcie"

type Array struct {
	*pcie.Link
}
`)
	wantRefs(t, refs, "embedded field Array.Link -> Link")
}

func TestRefsTransparentWrapper(t *testing.T) {
	// A component smuggled inside an out-of-scope wrapper type must
	// still be reported; a wrapper with nothing stateful must not.
	refs := buildRefs(t, `package array

import "example.com/wrap"

type Array struct {
	c wrap.Carrier
	p wrap.Plain
}
`)
	wantRefs(t, refs, "field Array.c -> Link")
}

func TestRefsNonStructNamedAndGlobal(t *testing.T) {
	refs := buildRefs(t, `package array

import "example.com/internal/pcie"

type Ring []*pcie.Link

var spare *pcie.Link
`)
	wantRefs(t, refs,
		"type Ring -> Link",
		"package-level var spare -> Link",
	)
}

func TestRefsClosureCapture(t *testing.T) {
	refs := buildRefs(t, `package array

import "example.com/internal/pcie"

var global *pcie.Link

func sched(fn func()) {}

func Go(l *pcie.Link, n int) {
	sched(func() {
		l.Send(nil)       // capture of an enclosing local: reported
		_ = n             // stateless capture: exempt
		global.Send(nil)  // package-level var: owned by the global scan
		inner := &pcie.Link{}
		inner.Send(nil)   // declared inside the literal: not a capture
	})
}
`)
	wantRefs(t, refs,
		"package-level var global -> Link",
		"closure captures l -> Link",
		"composite literal of Link -> Link",
	)
}

func TestRefsStoreAndCompositeLit(t *testing.T) {
	refs := buildRefs(t, `package array

import "example.com/internal/pcie"

func Wire(l *pcie.Link) {
	_ = pcie.Link{}
}

type local struct{ n int }

func Local() {
	v := local{n: 1} // same-package literal: no edge
	_ = v
}
`)
	wantRefs(t, refs, "composite literal of Link -> Link")
}

func TestRefsDispatch(t *testing.T) {
	refs := buildRefs(t, `package array

import "example.com/internal/pcie"

func Deliver(r pcie.Receiver, l *pcie.Link) {
	r.Deliver(l)  // interface dispatch: reported
	l.Send(nil)   // concrete method call on a transient param: not a hold
}
`)
	wantRefs(t, refs, "dispatch Receiver.Deliver -> Receiver")
}

func TestRefsDeterministicOrder(t *testing.T) {
	src := `package array

import "example.com/internal/pcie"

type B struct{ l *pcie.Link }
type A struct{ l *pcie.Link }

var g *pcie.Link
`
	first := sites(buildRefs(t, src))
	for i := 0; i < 3; i++ {
		if got := sites(buildRefs(t, src)); !reflect.DeepEqual(got, first) {
			t.Fatalf("order varied between runs:\n got %q\nwant %q", got, first)
		}
	}
}

func TestStateful(t *testing.T) {
	refs := buildRefs(t, `package array

import "example.com/internal/pcie"

type timing struct {
	name  string
	ns    [4]int64
	where pcie.Addr
}

type holder struct {
	t timing      // stateless all the way down (strings included)
	p *timing     // pointer: stateful, but reaches no component
	l [2]*pcie.Link // array of pointers: stateful, reaches Link
}
`)
	wantRefs(t, refs, "field holder.l -> Link")
}
