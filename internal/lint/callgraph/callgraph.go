// Package callgraph builds a static, intra-package call graph over Go
// syntax with only the standard library (the repository deliberately
// has no third-party module requirements; see internal/lint/analysis).
// It exists for the hotzero analyzer, whose allocation-freedom rules
// are "everything reachable from a hot root" properties and therefore
// need edges, not just syntax.
//
// One Graph covers one type-checked package: a Node per function
// declaration and per function literal, and per-node out-edges for
// every call site and function reference in its body. Resolution is
// deliberately conservative — the graph never guesses an edge away:
//
//   - Direct calls (package-level functions, methods on concrete
//     receivers) resolve to a single Static edge.
//   - A method value or declared function used as a value produces a
//     Ref edge: the target runs at some later time, so a reachability
//     walk must treat it as called. A function literal used as a
//     value likewise Ref-edges to the literal's own node.
//   - A call through a local variable that is provably bound to
//     exactly one function literal (`v := func(){...}; v()`) resolves
//     statically to that literal; a variable that is reassigned,
//     aliased with &, or bound twice stays unresolved.
//   - A call through an interface method is a Dispatch edge carrying
//     the interface method object; Implementers enumerates every
//     in-package method that could answer it, and the caller decides
//     whether out-of-package implementers are possible.
//   - Anything else (a func-typed field, parameter, or reassigned
//     variable) is a Dynamic edge: the callee is statically unknown.
//
// Calls to functions outside the package resolve to edges whose Callee
// is known but whose Node is nil; the analyzer applies its own policy
// (certified table, allowlist, report) to those.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EdgeKind classifies how a call site's callee was resolved.
type EdgeKind uint8

const (
	// Static: the callee is a single statically known function — a
	// declared function/method or a resolved function literal.
	Static EdgeKind = iota
	// Dispatch: a call through an interface method; the concrete
	// callee depends on the dynamic type. Callee is the interface
	// method object.
	Dispatch
	// Dynamic: a call through a function value the builder could not
	// resolve (field, parameter, reassigned variable). Callee is nil.
	Dynamic
	// Ref: not a call — a method value, declared function, or function
	// literal used as a value. The target becomes reachable when the
	// value is invoked later, so walks follow Ref edges like calls.
	Ref
)

func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Dispatch:
		return "dispatch"
	case Dynamic:
		return "dynamic"
	case Ref:
		return "ref"
	}
	return "unknown"
}

// Edge is one out-edge of a node: a call site or function reference.
type Edge struct {
	Kind EdgeKind
	// Site is the syntax that produced the edge: the *ast.CallExpr
	// for calls; the *ast.SelectorExpr, *ast.Ident, or *ast.FuncLit
	// for references.
	Site ast.Node
	// Callee is the resolved function object: the declared function
	// for Static/Ref edges to declarations, the interface method for
	// Dispatch edges, nil for Dynamic edges and edges to literals.
	Callee *types.Func
	// Node is the in-package target, when the target's body is in
	// this package (a declared function with a body, or a literal).
	// nil for external callees and Dynamic/Dispatch edges.
	Node *Node
}

// Node is one function body: a declaration or a literal.
type Node struct {
	// Fn is the declared function object; nil for literals.
	Fn *types.Func
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declarations.
	Lit *ast.FuncLit
	// Out lists the node's call sites and references in source order.
	Out []Edge
}

// Body returns the node's function body.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Name returns a diagnostic name: "Recv.Method", "Func", or
// "func literal".
func (n *Node) Name() string {
	if n.Fn == nil {
		return "func literal"
	}
	name := n.Fn.Name()
	if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + name
		}
	}
	return name
}

// Graph is the call graph of one package.
type Graph struct {
	pkg  *types.Package
	info *types.Info

	// Funcs maps every declared function/method with a body to its node.
	Funcs map[*types.Func]*Node
	// Lits maps every function literal to its node.
	Lits map[*ast.FuncLit]*Node
	// Ordered lists all nodes in source order (declarations before the
	// literals nested in them), for deterministic iteration.
	Ordered []*Node
}

// Build constructs the call graph of the package whose syntax is files,
// type-checked into pkg/info. Files for which skip returns true (test
// files, typically) contribute no nodes; skip may be nil.
func Build(pkg *types.Package, info *types.Info, files []*ast.File, skip func(*ast.File) bool) *Graph {
	g := &Graph{
		pkg:   pkg,
		info:  info,
		Funcs: make(map[*types.Func]*Node),
		Lits:  make(map[*ast.FuncLit]*Node),
	}
	// Nodes first, edges second, so forward references between
	// declarations resolve to nodes.
	var decls []*ast.FuncDecl
	for _, f := range files {
		if skip != nil && skip(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Funcs[fn] = &Node{Fn: fn, Decl: fd}
			g.Ordered = append(g.Ordered, g.Funcs[fn])
			decls = append(decls, fd)
		}
	}
	for _, fd := range decls {
		fn, _ := info.Defs[fd.Name].(*types.Func)
		if node := g.Funcs[fn]; node != nil {
			// One binding scan per declaration: ast.Inspect descends
			// into nested literals, so the map is complete (and its
			// poisoning final) for every body in this declaration.
			g.buildBody(node, fd.Body, g.literalBindings(fd.Body))
		}
	}
	return g
}

// litNode returns (creating on first sight) the node for a literal,
// building its body with the enclosing declaration's bindings.
func (g *Graph) litNode(lit *ast.FuncLit, litBind map[*types.Var]*ast.FuncLit) *Node {
	if child, ok := g.Lits[lit]; ok {
		return child
	}
	child := &Node{Lit: lit}
	g.Lits[lit] = child
	g.Ordered = append(g.Ordered, child)
	g.buildBody(child, lit.Body, litBind)
	return child
}

// buildBody scans one function body, emitting edges onto node and
// creating child nodes for nested literals.
func (g *Graph) buildBody(node *Node, body *ast.BlockStmt, litBind map[*types.Var]*ast.FuncLit) {
	var walk func(n ast.Node, callFun ast.Expr)
	// callFun is the expression in call position (the Fun of the
	// enclosing CallExpr), so a literal there produces no Ref edge —
	// callEdges already emitted the Static edge.
	walk = func(n ast.Node, callFun ast.Expr) {
		switch n := n.(type) {
		case *ast.FuncLit:
			child := g.litNode(n, litBind)
			if n != callFun {
				node.Out = append(node.Out, Edge{Kind: Ref, Site: n, Node: child})
			}
			return

		case *ast.CallExpr:
			g.callEdges(node, n, litBind)
			switch fun := unparen(n.Fun).(type) {
			case *ast.Ident:
				// the callee head itself is not a value reference
			case *ast.SelectorExpr:
				walk(fun.X, nil)
			case *ast.FuncLit:
				walk(fun, fun)
			default:
				walk(n.Fun, nil)
			}
			for _, a := range n.Args {
				walk(a, nil)
			}
			return

		case *ast.SelectorExpr:
			g.refEdge(node, n)
			walk(n.X, nil)
			return

		case *ast.Ident:
			g.identRefEdge(node, n)
			return
		}
		if n != nil {
			walkChildren(n, func(c ast.Node) { walk(c, nil) })
		}
	}
	for _, stmt := range body.List {
		walk(stmt, nil)
	}
}

// walkChildren invokes f on each immediate child node of n.
func walkChildren(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}

// literalBindings maps local vars bound exactly once to a function
// literal (and never reassigned or aliased) to that literal's syntax.
// The scan descends into nested literals, so the resulting map is
// valid for the declaration's whole body tree.
func (g *Graph) literalBindings(body *ast.BlockStmt) map[*types.Var]*ast.FuncLit {
	bind := make(map[*types.Var]*ast.FuncLit)
	dead := make(map[*types.Var]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := g.info.ObjectOf(id).(*types.Var)
		if !ok {
			return
		}
		if lit, isLit := unparen(rhs).(*ast.FuncLit); isLit && rhs != nil {
			if _, bound := bind[v]; bound || dead[v] {
				dead[v] = true
				delete(bind, v)
				return
			}
			bind[v] = lit
			return
		}
		// Any other assignment poisons the variable.
		dead[v] = true
		delete(bind, v)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			} else {
				for _, lhs := range n.Lhs {
					record(lhs, nil)
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					record(name, n.Values[i])
				} else if len(n.Values) > 0 {
					record(name, nil)
				}
			}
		case *ast.UnaryExpr:
			// &v lets the variable be rewritten through the pointer.
			if n.Op == token.AND {
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					if v, ok := g.info.ObjectOf(id).(*types.Var); ok {
						dead[v] = true
						delete(bind, v)
					}
				}
			}
		}
		return true
	})
	return bind
}

// callEdges emits the edge(s) for one call expression.
func (g *Graph) callEdges(node *Node, call *ast.CallExpr, litBind map[*types.Var]*ast.FuncLit) {
	fun := unparen(call.Fun)

	// Conversions are CallExprs syntactically; they call nothing.
	if tv, ok := g.info.Types[fun]; ok && tv.IsType() {
		return
	}

	switch fun := fun.(type) {
	case *ast.FuncLit:
		node.Out = append(node.Out, Edge{Kind: Static, Site: call, Node: g.litNode(fun, litBind)})
		return

	case *ast.Ident:
		switch obj := g.info.Uses[fun].(type) {
		case *types.Func:
			node.Out = append(node.Out, Edge{Kind: Static, Site: call, Callee: obj, Node: g.Funcs[obj]})
			return
		case *types.Builtin:
			return // builtins are the analyzer's business, not edges
		case *types.Var:
			if lit, ok := litBind[obj]; ok {
				node.Out = append(node.Out, Edge{Kind: Static, Site: call, Node: g.litNode(lit, litBind)})
				return
			}
		}
		node.Out = append(node.Out, Edge{Kind: Dynamic, Site: call})
		return

	case *ast.SelectorExpr:
		if sel, ok := g.info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				// A func-typed field: dynamic.
				node.Out = append(node.Out, Edge{Kind: Dynamic, Site: call})
				return
			}
			if isInterfaceRecv(fn) {
				node.Out = append(node.Out, Edge{Kind: Dispatch, Site: call, Callee: fn})
				return
			}
			node.Out = append(node.Out, Edge{Kind: Static, Site: call, Callee: fn, Node: g.Funcs[fn]})
			return
		}
		// Package-qualified function (pkg.Fn), builtin, or var.
		switch obj := g.info.Uses[fun.Sel].(type) {
		case *types.Func:
			node.Out = append(node.Out, Edge{Kind: Static, Site: call, Callee: obj, Node: g.Funcs[obj]})
		case *types.Builtin:
			// qualified builtins (unsafe.Sizeof): no edge
		default:
			node.Out = append(node.Out, Edge{Kind: Dynamic, Site: call})
		}
		return
	}
	// Calling the result of an expression (f()() and friends).
	node.Out = append(node.Out, Edge{Kind: Dynamic, Site: call})
}

// refEdge emits a Ref edge for a selector used as a value: a method
// value (x.M with a method M — the receiver is bound now and the
// method runs later) or a package-qualified function (pkg.Fn handed to
// a sink; not a selection in go/types, so it needs its own resolution
// — without it, a cross-package function smuggled out as a value
// would silently vanish from every reachability walk).
func (g *Graph) refEdge(node *Node, sel *ast.SelectorExpr) {
	s, ok := g.info.Selections[sel]
	if !ok {
		if fn, isFn := g.info.Uses[sel.Sel].(*types.Func); isFn {
			node.Out = append(node.Out, Edge{Kind: Ref, Site: sel, Callee: fn, Node: g.Funcs[fn]})
		}
		return
	}
	if s.Kind() != types.MethodVal {
		return
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return
	}
	if isInterfaceRecv(fn) {
		// A method value off an interface: dispatch deferred to run time.
		node.Out = append(node.Out, Edge{Kind: Dispatch, Site: sel, Callee: fn})
		return
	}
	node.Out = append(node.Out, Edge{Kind: Ref, Site: sel, Callee: fn, Node: g.Funcs[fn]})
}

// identRefEdge emits a Ref edge for a bare identifier naming a declared
// function used as a value (handed to a sink, stored, returned).
func (g *Graph) identRefEdge(node *Node, id *ast.Ident) {
	fn, ok := g.info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	node.Out = append(node.Out, Edge{Kind: Ref, Site: id, Callee: fn, Node: g.Funcs[fn]})
}

// isInterfaceRecv reports whether fn is declared on an interface.
func isInterfaceRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := types.Unalias(sig.Recv().Type())
	if _, ok := t.(*types.Interface); ok {
		return true
	}
	if n, ok := t.(*types.Named); ok {
		_, isIface := n.Underlying().(*types.Interface)
		return isIface
	}
	return false
}

// recvInterface unwraps an interface method's receiver to its
// *types.Interface, if fn is declared on one.
func recvInterface(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := types.Unalias(sig.Recv().Type())
	if it, ok := t.(*types.Interface); ok {
		return it
	}
	if n, ok := t.(*types.Named); ok {
		if it, ok := n.Underlying().(*types.Interface); ok {
			return it
		}
	}
	return nil
}

// Implementers returns the in-package declared methods that could
// answer a Dispatch edge's interface method: every method with the
// same name on a type that implements the method's interface, in
// source order. Out-of-package implementers are the caller's problem —
// this graph only sees one package.
func (g *Graph) Implementers(iface *types.Func) []*Node {
	it := recvInterface(iface)
	if it == nil {
		return nil
	}
	var out []*Node
	for _, node := range g.Ordered {
		if node.Fn == nil || node.Fn.Name() != iface.Name() {
			continue
		}
		msig, ok := node.Fn.Type().(*types.Signature)
		if !ok || msig.Recv() == nil {
			continue
		}
		rt := msig.Recv().Type()
		if types.Implements(rt, it) {
			out = append(out, node)
			continue
		}
		// A value receiver still answers calls through a pointer.
		if _, isPtr := types.Unalias(rt).(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(rt), it) {
				out = append(out, node)
			}
		}
	}
	return out
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
