package callgraph

// The graph's resolution contracts, pinned directly: hotzero's
// soundness rests on "the builder never guesses an edge away", so each
// resolution rule — and each deliberate conservatism — gets a test.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// build parses and type-checks one in-memory file as package
// "example.com/internal/demo" and returns its call graph.
func build(t *testing.T, src string) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "demo.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("example.com/internal/demo", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Build(pkg, info, []*ast.File{f}, nil), fset
}

// node finds a declared node by its diagnostic Name ("Recv.Method" or
// "Func").
func node(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Ordered {
		if n.Fn != nil && n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q; have %v", name, names(g.Ordered))
	return nil
}

func names(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name()
	}
	return out
}

// edges summarizes a node's out-edges as "kind:callee" strings, with
// literal targets shown as "kind:lit".
func edges(n *Node) []string {
	out := make([]string, 0, len(n.Out))
	for _, e := range n.Out {
		target := "?"
		switch {
		case e.Callee != nil:
			target = e.Callee.Name()
		case e.Node != nil && e.Node.Lit != nil:
			target = "lit"
		}
		out = append(out, e.Kind.String()+":"+target)
	}
	return out
}

func wantEdges(t *testing.T, n *Node, want ...string) {
	t.Helper()
	got := edges(n)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("%s edges = %v, want %v", n.Name(), got, want)
	}
}

func TestStaticCallsAndMethods(t *testing.T) {
	g, _ := build(t, `package demo

type Dev struct{ n int }

func (d *Dev) Step() { d.tick() }
func (d *Dev) tick() { d.n++ }

func Run(d *Dev) {
	d.Step()
	helper()
}
func helper() {}
`)
	step := node(t, g, "Dev.Step")
	wantEdges(t, step, "static:tick")
	if step.Out[0].Node != node(t, g, "Dev.tick") {
		t.Errorf("Step->tick edge should carry the in-package node")
	}
	wantEdges(t, node(t, g, "Run"), "static:Step", "static:helper")
}

func TestMutualRecursion(t *testing.T) {
	// Forward references must resolve: even() calls odd() declared
	// later, and the cycle must not trap Build or a reachability walk.
	g, _ := build(t, `package demo

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}
`)
	even, odd := node(t, g, "even"), node(t, g, "odd")
	wantEdges(t, even, "static:odd")
	wantEdges(t, odd, "static:even")
	if even.Out[0].Node != odd || odd.Out[0].Node != even {
		t.Errorf("mutual recursion edges must link both nodes")
	}
	// A walk over the cycle terminates with a visited set.
	seen := map[*Node]bool{}
	var visit func(*Node)
	var steps int
	visit = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		steps++
		if steps > 10 {
			t.Fatalf("walk did not terminate")
		}
		for _, e := range n.Out {
			if e.Node != nil {
				visit(e.Node)
			}
		}
	}
	visit(even)
	if !seen[even] || !seen[odd] {
		t.Errorf("walk should reach both functions")
	}
}

func TestMethodValueAsHandler(t *testing.T) {
	// A method value passed to a sink is a Ref edge: the receiver is
	// bound now, the body runs later, so reachability must include it.
	g, _ := build(t, `package demo

type op struct{ n int }

func (o *op) OnEvent(arg uint64) { o.n++ }

func register(fn func(uint64)) {}

func Setup(o *op) {
	register(o.OnEvent)
}
`)
	setup := node(t, g, "Setup")
	wantEdges(t, setup, "static:register", "ref:OnEvent")
	var ref *Edge
	for i := range setup.Out {
		if setup.Out[i].Kind == Ref {
			ref = &setup.Out[i]
		}
	}
	if ref == nil || ref.Node != node(t, g, "op.OnEvent") {
		t.Fatalf("method value must Ref-edge to op.OnEvent's node")
	}
}

func TestBareFuncIdentAsValue(t *testing.T) {
	g, _ := build(t, `package demo

func worker() {}

func sink(fn func()) {}

func Setup() {
	sink(worker)
}
`)
	wantEdges(t, node(t, g, "Setup"), "static:sink", "ref:worker")
}

func TestFuncLitAssignedThenInvoked(t *testing.T) {
	// v := func(){...}; v() resolves statically to the literal.
	g, _ := build(t, `package demo

func target() {}

func Run() {
	v := func() { target() }
	v()
}
`)
	run := node(t, g, "Run")
	wantEdges(t, run, "ref:lit", "static:lit")
	if run.Out[0].Node != run.Out[1].Node {
		t.Errorf("binding and call must resolve to the same literal node")
	}
	lit := run.Out[1].Node
	wantEdges(t, lit, "static:target")
}

func TestReassignedFuncVarIsDynamic(t *testing.T) {
	// Two bindings poison the variable: calls through it stay Dynamic.
	g, _ := build(t, `package demo

func Run(cold bool) {
	v := func() {}
	if cold {
		v = func() {}
	}
	v()
}
`)
	run := node(t, g, "Run")
	wantEdges(t, run, "ref:lit", "ref:lit", "dynamic:?")
}

func TestAddressTakenFuncVarIsDynamic(t *testing.T) {
	// &v lets the binding be rewritten through the pointer, so the
	// direct call must not resolve.
	g, _ := build(t, `package demo

func mutate(p *func()) {}

func Run() {
	v := func() {}
	mutate(&v)
	v()
}
`)
	run := node(t, g, "Run")
	wantEdges(t, run, "ref:lit", "static:mutate", "dynamic:?")
}

func TestImmediatelyInvokedLiteral(t *testing.T) {
	// func(){...}() is one Static edge, not a Ref plus a call, and the
	// literal gets exactly one node.
	g, _ := build(t, `package demo

func target() {}

func Run() {
	func() { target() }()
}
`)
	run := node(t, g, "Run")
	wantEdges(t, run, "static:lit")
	if len(g.Lits) != 1 {
		t.Errorf("want 1 literal node, got %d", len(g.Lits))
	}
}

func TestNestedLiteralSeesEnclosingBinding(t *testing.T) {
	// A var bound in the enclosing body and called inside a nested
	// literal still resolves: the binding scan is per declaration.
	g, _ := build(t, `package demo

func target() {}

func sink(fn func()) {}

func Run() {
	v := func() { target() }
	sink(func() { v() })
}
`)
	run := node(t, g, "Run")
	wantEdges(t, run, "ref:lit", "static:sink", "ref:lit")
	outer := run.Out[2].Node
	wantEdges(t, outer, "static:lit")
	if outer.Out[0].Node != run.Out[0].Node {
		t.Errorf("nested call must resolve to the enclosing binding's literal")
	}
}

func TestInterfaceDispatchAndImplementers(t *testing.T) {
	// An interface call is a Dispatch edge; Implementers enumerates
	// every in-package type that could answer it — the conservative
	// fallback when the concrete receiver is unknown.
	g, _ := build(t, `package demo

type Handler interface{ OnEvent(arg uint64) }

type fast struct{}
type slow struct{ n int }
type unrelated struct{}

func (fast) OnEvent(arg uint64)     {}
func (s *slow) OnEvent(arg uint64)  { s.n++ }
func (unrelated) OnEvent(arg int)   {} // wrong signature: not a Handler

func Step(h Handler) {
	h.OnEvent(1)
}
`)
	step := node(t, g, "Step")
	wantEdges(t, step, "dispatch:OnEvent")
	impls := g.Implementers(step.Out[0].Callee)
	got := names(impls)
	want := "fast.OnEvent slow.OnEvent"
	if strings.Join(got, " ") != want {
		t.Errorf("Implementers = %v, want %q", got, want)
	}
}

func TestImplementersValueReceiverThroughPointer(t *testing.T) {
	// A pointer-receiver method set includes value-receiver methods;
	// both shapes must be enumerated.
	g, _ := build(t, `package demo

type Done interface{ OnDone(err error) }

type byValue struct{}
type byPointer struct{ n int }

func (byValue) OnDone(err error)      {}
func (b *byPointer) OnDone(err error) { b.n++ }

func fire(d Done) { d.OnDone(nil) }
`)
	fire := node(t, g, "fire")
	impls := g.Implementers(fire.Out[0].Callee)
	if got := strings.Join(names(impls), " "); got != "byValue.OnDone byPointer.OnDone" {
		t.Errorf("Implementers = %q", got)
	}
}

func TestMethodValueOffInterfaceIsDispatch(t *testing.T) {
	g, _ := build(t, `package demo

type Handler interface{ OnEvent(arg uint64) }

type impl struct{}

func (impl) OnEvent(arg uint64) {}

func bind(h Handler, sink func(uint64)) {
	sink = h.OnEvent
	_ = sink
}
`)
	wantEdges(t, node(t, g, "bind"), "dispatch:OnEvent")
}

func TestFuncFieldCallIsDynamic(t *testing.T) {
	g, _ := build(t, `package demo

type hooks struct{ fire func() }

func Run(h *hooks) {
	h.fire()
}
`)
	wantEdges(t, node(t, g, "Run"), "dynamic:?")
}

func TestFuncParamCallIsDynamic(t *testing.T) {
	g, _ := build(t, `package demo

func Run(fn func()) {
	fn()
}
`)
	wantEdges(t, node(t, g, "Run"), "dynamic:?")
}

func TestConversionIsNotACall(t *testing.T) {
	g, _ := build(t, `package demo

type Time uint64

func Run(n int) Time {
	return Time(uint64(n))
}
`)
	wantEdges(t, node(t, g, "Run"))
}

func TestBuiltinsProduceNoEdges(t *testing.T) {
	g, _ := build(t, `package demo

func Run(xs []int) int {
	xs = append(xs, 1)
	m := make(map[int]int, len(xs))
	return cap(xs) + len(m)
}
`)
	wantEdges(t, node(t, g, "Run"))
}

func TestExternalCalleeHasNoNode(t *testing.T) {
	g, _ := build(t, `package demo

import "strconv"

func Run(n int) string {
	return strconv.Itoa(n)
}
`)
	run := node(t, g, "Run")
	wantEdges(t, run, "static:Itoa")
	if run.Out[0].Node != nil {
		t.Errorf("external callee must have a nil Node")
	}
	if run.Out[0].Callee.Pkg().Path() != "strconv" {
		t.Errorf("callee package = %q", run.Out[0].Callee.Pkg().Path())
	}
}

func TestSkipFilter(t *testing.T) {
	fset := token.NewFileSet()
	parse := func(name, src string) *ast.File {
		f, err := parser.ParseFile(fset, name, src, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		return f
	}
	a := parse("a.go", "package demo\n\nfunc Keep() {}\n")
	b := parse("a_test.go", "package demo\n\nfunc Drop() {}\n")
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{Importer: importer.Default()}).Check("example.com/internal/demo", fset, []*ast.File{a, b}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	g := Build(pkg, info, []*ast.File{a, b}, func(f *ast.File) bool {
		return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
	})
	if len(g.Ordered) != 1 || g.Ordered[0].Name() != "Keep" {
		t.Errorf("skip filter failed: nodes = %v", names(g.Ordered))
	}
}

func TestNodeNameAndBody(t *testing.T) {
	g, _ := build(t, `package demo

type T struct{}

func (t *T) M() {}
func F()       { _ = func() {} }
`)
	if got := node(t, g, "T.M").Name(); got != "T.M" {
		t.Errorf("Name = %q", got)
	}
	f := node(t, g, "F")
	if f.Body() == nil {
		t.Errorf("Body must return the declaration body")
	}
	if len(f.Out) != 1 || f.Out[0].Kind != Ref || f.Out[0].Node == nil {
		t.Fatalf("F edges = %v", edges(f))
	}
	lit := f.Out[0].Node
	if lit.Name() != "func literal" || lit.Body() == nil {
		t.Errorf("literal node name/body wrong: %q", lit.Name())
	}
}

func TestQualifiedFunctionRef(t *testing.T) {
	// A package-qualified function used as a value (strings.TrimSpace
	// handed out as a func) is not a Selection in go/types, so it needs
	// its own resolution in refEdge: without it the function would
	// vanish from every reachability walk even though it runs later.
	g, _ := build(t, `package demo

import "strings"

func Use() func(string) string { return strings.TrimSpace }
`)
	wantEdges(t, node(t, g, "Use"), "ref:TrimSpace")
}

func TestQualifiedFunctionRefAsArgument(t *testing.T) {
	g, _ := build(t, `package demo

import "strings"

func sink(f func(string) string) {}

func Setup() { sink(strings.ToUpper) }
`)
	wantEdges(t, node(t, g, "Setup"), "static:sink", "ref:ToUpper")
}
