package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

func TestSimtime(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Simtime, "st")
}
