package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Poolsafe, "ps")
}

func TestPoolsafeExemptMachinery(t *testing.T) {
	// The fake pool package implements the registered acquire/release
	// pair; the free-list internals must produce no findings.
	analysistest.Run(t, "testdata", analyzers.Poolsafe, "triplea/internal/pcie")
}
