package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Maporder, "mo")
}
