package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

func TestIsosafe(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Isosafe,
		// Rule 1: effectively-const globals in simulation-state packages.
		"triplea/internal/workload",
		// Rules 2-4 inside the orchestration scope.
		"triplea/internal/sweep",
		// Rule 2 at worker sinks called from an ordinary package.
		"swuser",
	)
}

func TestIsosafeCleanPool(t *testing.T) {
	// The canonical pool shape produces no findings: checked captures,
	// registered handoff types, no sync, no select.
	analysistest.Run(t, "testdata", analyzers.Isosafe, "sweepok/internal/sweep")
}
