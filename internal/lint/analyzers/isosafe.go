package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"triplea/internal/lint/analysis"
)

// Isosafe certifies the worker-isolation contract that makes the
// parallel sweep runner (internal/sweep) safe to trust with the
// simulator's determinism budget. The engine's reproducibility story
// rests on two facts: each simulation run is single-threaded, and runs
// share nothing mutable. nospawn proves the first by banning
// concurrency outside the orchestration scope; isosafe proves the
// second with four rule classes:
//
//  1. No mutable package-level state in simulation packages. Every
//     package-level var in the sim core (and its pure data/support
//     packages: topo, workload, metrics, trace) must be
//     effectively-const — never written or aliased outside init. The
//     audited escape is //simlint:shared on the write or on the var's
//     declaration.
//
//  2. Closure-capture isolation. A function literal launched by `go`
//     in the orchestration scope, or handed to a worker sink
//     (sweep.Map), may capture only registered deep-copy-safe values:
//     basic types, value-semantics config structs (array.Config,
//     core.Options, workload.Profile, topo.Geometry), sweep.Spec,
//     channels of registered handoff types, and sweep.RunFunc (whose
//     values are themselves checked at their sink sites). Anything
//     whose captures cannot be seen — a method value, a func variable
//     — is rejected as unverifiable.
//
//  3. Handoff-by-value. Only registered immutable handoff types
//     (sweep.Spec, sweep.result) may cross a worker channel boundary.
//
//  4. Orchestration containment. Even inside internal/sweep, sync and
//     sync/atomic imports and select statements stay banned: the pool
//     is channel-only and drains deterministically by counting.
//
// The audited escape for rules 2-4 is //simlint:isosafe.
var Isosafe = &analysis.Analyzer{
	Name: "isosafe",
	Doc:  "certify worker isolation: effectively-const sim globals, deep-copy-safe closure captures, handoff-by-value channels, contained orchestration",
	Run:  runIsosafe,
}

// deepCopySafeTypes registers the named types a worker closure may
// capture. Registration is an audit, not a structural proof:
// array.Config carries a DegradedFIMMs map that is only ever read
// after construction, and the entry records that review (see
// docs/static-analysis.md for the registry policy).
var deepCopySafeTypes = [][2]string{
	{"internal/sweep", "Spec"},
	{"internal/array", "Config"},
	{"internal/core", "Options"},
	{"internal/workload", "Profile"},
	{"internal/topo", "Geometry"},
}

// handoffTypes registers the named types allowed to cross a worker
// channel boundary (rule 3). Ownership of any interior slice
// transfers with the send; the audit covers that convention.
var handoffTypes = [][2]string{
	{"internal/sweep", "Spec"},
	{"internal/sweep", "result"},
}

// workerFuncTypes registers named function types that may be captured
// by a worker closure: their values are checked at every sink site
// that produces them, so holding one does not smuggle state.
var workerFuncTypes = [][2]string{
	{"internal/sweep", "RunFunc"},
}

func runIsosafe(pass *analysis.Pass) (any, error) {
	path := ""
	if pass.Pkg != nil {
		path = pass.Pkg.Path()
	}
	if inPackageSet(path, isoStatePackageSuffixes) {
		isoCheckSimGlobals(pass)
	}
	if inPackageSet(path, orchestrationPackageSuffixes) {
		isoCheckOrchestration(pass)
	}
	isoCheckWorkerSinks(pass)
	return nil, nil
}

// ---- rule 1: effectively-const simulation globals ----

func isoCheckSimGlobals(pass *analysis.Pass) {
	for _, w := range isoGlobalWrites(pass) {
		if suppressed(pass, w.pos, "shared") || suppressed(pass, w.v.Pos(), "shared") {
			continue
		}
		pass.Reportf(w.pos,
			"%s package-level var %s in simulation package %s: sim-core state must be effectively-const (annotate the declaration //simlint:shared after an audit)",
			w.what, w.v.Name(), pass.Pkg.Name())
	}
}

type isoWrite struct {
	v    *types.Var
	pos  token.Pos
	what string
}

// isoGlobalWrites collects every write to or alias of a package-level
// var outside init functions and test files.
func isoGlobalWrites(pass *analysis.Pass) []isoWrite {
	info := pass.TypesInfo
	var writes []isoWrite
	record := func(e ast.Expr, pos token.Pos, what string) {
		if e == nil {
			return
		}
		if v := pkgLevelVar(info, e); v != nil {
			writes = append(writes, isoWrite{v: v, pos: pos, what: what})
		}
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				// Writes during package initialization are the one
				// sanctioned mutation window.
				if n.Recv == nil && n.Name.Name == "init" {
					return false
				}
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					record(lhs, n.Pos(), "write to")
				}
			case *ast.IncDecStmt:
				record(n.X, n.Pos(), "write to")
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					record(n.X, n.Pos(), "alias (&) of")
				}
			case *ast.RangeStmt:
				if n.Tok == token.ASSIGN {
					record(n.Key, n.Pos(), "write to")
					record(n.Value, n.Pos(), "write to")
				}
			}
			return true
		})
	}
	return writes
}

// ---- rules 2-4 inside the orchestration scope ----

func isoCheckOrchestration(pass *analysis.Pass) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				isoReport(pass, imp.Pos(),
					"import of %s in the orchestration scope: the sweep pool is channel-only; shared-memory synchronization defeats deterministic reassembly", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				isoReport(pass, n.Pos(),
					"select statement in the orchestration scope: nondeterministic case choice has no place in a pool that drains by counting")
			case *ast.GoStmt:
				isoCheckSpawn(pass, n)
			case *ast.SendStmt:
				if t := isoChanElem(info, n.Chan); t != nil && !isHandoffType(t) {
					isoReport(pass, n.Pos(),
						"value of type %s crosses the worker channel boundary; only registered immutable handoff types may be sent",
						types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			case *ast.CallExpr:
				isoCheckMakeChan(pass, info, n)
			}
			return true
		})
	}
}

func isoChanElem(info *types.Info, e ast.Expr) types.Type {
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return nil
	}
	return ch.Elem()
}

func isoCheckMakeChan(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) < 1 {
		return
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	t := info.TypeOf(call.Args[0])
	if t == nil {
		return
	}
	if ch, isChan := t.Underlying().(*types.Chan); isChan && !isHandoffType(ch.Elem()) {
		isoReport(pass, call.Pos(),
			"channel of %s in the orchestration scope; the element type is not a registered handoff type",
			types.TypeString(ch.Elem(), types.RelativeTo(pass.Pkg)))
	}
}

func isoCheckSpawn(pass *analysis.Pass, g *ast.GoStmt) {
	lit, ok := unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		isoReport(pass, g.Pos(),
			"go statement must launch a function literal so isosafe can verify its captures; a function value may close over anything")
		return
	}
	for _, arg := range g.Call.Args {
		if t := pass.TypesInfo.TypeOf(arg); t != nil && !isDeepCopySafe(t) {
			isoReport(pass, arg.Pos(),
				"argument of type %s handed to a worker goroutine is not a registered deep-copy-safe type",
				types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
	isoCheckCaptures(pass, lit, "worker goroutine")
}

// isoCheckCaptures walks a worker function literal's body and reports
// every free variable that is not provably safe to share: locals must
// be registered deep-copy-safe types, same-package globals must be
// effectively-const, and foreign globals are rejected outright.
func isoCheckCaptures(pass *analysis.Pass, lit *ast.FuncLit, what string) {
	info := pass.TypesInfo
	seen := make(map[*types.Var]bool)
	var mutated map[*types.Var]bool
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (params included)
		}
		seen[v] = true
		if suppressed(pass, id.Pos(), "isosafe") {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			if v.Pkg().Path() != pass.Pkg.Path() {
				pass.Reportf(id.Pos(),
					"%s captures package-level var %s from package %s; isosafe cannot prove foreign globals immutable — pass the value through the spec instead",
					what, v.Name(), v.Pkg().Name())
				return true
			}
			if mutated == nil {
				mutated = make(map[*types.Var]bool)
				for _, w := range isoGlobalWrites(pass) {
					mutated[w.v] = true
				}
			}
			if mutated[v] {
				pass.Reportf(id.Pos(),
					"%s captures package-level var %s, which is written outside init; captured globals must be effectively-const",
					what, v.Name())
			}
			return true
		}
		if !isDeepCopySafe(v.Type()) {
			pass.Reportf(id.Pos(),
				"%s captures %s (type %s), which is not a registered deep-copy-safe type; workers may share only seeds, value-semantics configs, and result channels",
				what, v.Name(), types.TypeString(v.Type(), types.RelativeTo(pass.Pkg)))
		}
		return true
	})
}

// ---- rule 2 at worker sinks, any package ----

// isoCheckWorkerSinks finds calls into the orchestration scope that
// accept function values (sweep.Map) and checks each one: a function
// literal has its captures verified, a package-level function captures
// nothing, and anything else is unverifiable.
func isoCheckWorkerSinks(pass *analysis.Pass) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || isoWorkerSinkCallee(info, call) == nil {
				return true
			}
			for _, arg := range call.Args {
				t := info.TypeOf(arg)
				if t == nil {
					continue
				}
				if _, isFunc := t.Underlying().(*types.Signature); !isFunc {
					continue
				}
				if lit, isLit := unparen(arg).(*ast.FuncLit); isLit {
					isoCheckCaptures(pass, lit, "worker closure")
					continue
				}
				if isoTopLevelFuncRef(info, arg) {
					continue
				}
				isoReport(pass, arg.Pos(),
					"cannot verify the captures of this function value at a worker sink; pass a function literal or a package-level function")
			}
			return true
		})
	}
}

// isoWorkerSinkCallee resolves a call's callee to a function exported
// by an orchestration package, if it is one.
func isoWorkerSinkCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if !inPackageSet(fn.Pkg().Path(), orchestrationPackageSuffixes) {
		return nil
	}
	return fn
}

// isoTopLevelFuncRef reports whether e names a package-level function
// (which closes over nothing). A method value fails: it captures its
// receiver invisibly.
func isoTopLevelFuncRef(info *types.Info, e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		fn, ok := info.Uses[x].(*types.Func)
		return ok && fn.Type().(*types.Signature).Recv() == nil
	case *ast.SelectorExpr:
		if _, isSel := info.Selections[x]; isSel {
			return false
		}
		fn, ok := info.Uses[x.Sel].(*types.Func)
		return ok && fn.Type().(*types.Signature).Recv() == nil
	}
	return false
}

// ---- the registries ----

// isHandoffType reports whether t may cross a worker channel boundary.
func isHandoffType(t types.Type) bool {
	if isRegisteredNamed(t, handoffTypes) {
		return true
	}
	if ch, ok := types.Unalias(t).Underlying().(*types.Chan); ok {
		return isHandoffType(ch.Elem())
	}
	return false
}

// isDeepCopySafe reports whether a value of type t may be captured by
// or handed to a worker: registered value types, basics (and named
// types over basics), arrays of safe elements, channels of handoff
// types, and registered worker func types.
func isDeepCopySafe(t types.Type) bool {
	t = types.Unalias(t)
	if isRegisteredNamed(t, deepCopySafeTypes) ||
		isRegisteredNamed(t, workerFuncTypes) ||
		isRegisteredNamed(t, handoffTypes) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.Invalid
	case *types.Chan:
		return isHandoffType(u.Elem())
	case *types.Array:
		return isDeepCopySafe(u.Elem())
	}
	return false
}

func isoReport(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if suppressed(pass, pos, "isosafe") {
		return
	}
	pass.Reportf(pos, format, args...)
}
