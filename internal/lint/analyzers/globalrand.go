package analyzers

import (
	"go/ast"
	"go/types"

	"triplea/internal/lint/analysis"
)

// randConstructors are the math/rand functions that build an explicit,
// caller-seeded generator rather than touching global state. They stay
// legal everywhere: rand.New(rand.NewSource(seed)) is reproducible by
// construction.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Globalrand bans math/rand's implicitly seeded global generator.
//
// Every stochastic choice in the repository must flow from an explicit
// per-run seed through the simx RNG (internal/simx/rng.go) so two runs
// with the same seed make identical choices. The global math/rand
// functions (rand.Intn, rand.Float64, ...) draw from hidden process
// state — in math/rand/v2 that state is randomly seeded at startup —
// which silently unpins experiments from their seeds. The rule applies
// repo-wide (tests included: an unseeded random test input is a flaky
// test); only internal/simx/rng.go, the audited seed boundary, is
// exempt.
var Globalrand = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "forbid math/rand global functions; randomness must flow through the seeded simx RNG",
	Run:  runGlobalrand,
}

func runGlobalrand(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if hasPathSuffix(pass.Pkg.Path(), "internal/simx") &&
			baseFilename(pass, file.Pos()) == "rng.go" {
			continue // the audited seed boundary
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := importedPackage(pass.TypesInfo, sel.X)
			if !ok {
				return true
			}
			if pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2" {
				return true
			}
			// Types (rand.Rand, rand.Source) and explicit constructors
			// are fine; global draws are not.
			if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			if randConstructors[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"global rand.%s draws from hidden process state; use the seeded simx RNG (internal/simx/rng.go)",
				sel.Sel.Name)
			return true
		})
	}
	return nil, nil
}
