package analyzers

// Unit tests for the shared registration-table plumbing. The golden
// analysistest packages exercise these helpers indirectly through every
// analyzer; the tests here pin their contracts directly so a refactor
// of one analyzer cannot silently shift the meaning of another's
// registration table.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"triplea/internal/lint/analysis"
)

// typecheck parses and type-checks one in-memory file as package path
// "example.com/demo" and returns everything a helper under test needs.
func typecheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "demo.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("example.com/internal/demo", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, pkg, info
}

func TestHasPathSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"internal/simx", "internal/simx", true},
		{"triplea/internal/simx", "internal/simx", true},
		{"triplea/internal/simxtra", "internal/simx", false},
		{"internal/simx", "simx", true},
		{"xinternal/simx", "internal/simx", false},
		{"", "internal/simx", false},
	}
	for _, c := range cases {
		if got := hasPathSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("hasPathSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func TestInPackageSet(t *testing.T) {
	set := []string{"internal/simx", "internal/nand"}
	if !inPackageSet("triplea/internal/nand", set) {
		t.Errorf("internal/nand should be in the set")
	}
	if inPackageSet("triplea/internal/metrics", set) {
		t.Errorf("internal/metrics should not be in the set")
	}
}

const matchSrc = `package demo

type Pool struct{}

func (p *Pool) Get() *Obj  { return nil }
func (p Pool) Peek() *Obj  { return nil }
func Free(o *Obj)          {}

type Obj struct{ next *Obj }

type Iface interface{ Get() *Obj }
`

// lookupFunc resolves a declared function or method by receiver and name.
func lookupFunc(t *testing.T, pkg *types.Package, info *types.Info, f *ast.File, recv, name string) *types.Func {
	t.Helper()
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != name {
			continue
		}
		fn, ok := info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if recv == "" && sig.Recv() == nil {
			return fn
		}
		if recv != "" && sig.Recv() != nil {
			if n, ok := namedType(sig.Recv().Type()); ok && n.Obj().Name() == recv {
				return fn
			}
		}
	}
	t.Fatalf("function %s.%s not found", recv, name)
	return nil
}

func TestMatchFunc(t *testing.T) {
	_, f, pkg, info := typecheck(t, matchSrc)
	get := lookupFunc(t, pkg, info, f, "Pool", "Get")
	free := lookupFunc(t, pkg, info, f, "", "Free")

	if !matchFunc(get, funcRef{"internal/demo", "Pool", "Get"}) {
		t.Errorf("pointer-receiver method should match its registration")
	}
	if matchFunc(get, funcRef{"internal/demo", "Pool", "Put"}) {
		t.Errorf("name mismatch should not match")
	}
	if matchFunc(get, funcRef{"internal/other", "Pool", "Get"}) {
		t.Errorf("package mismatch should not match")
	}
	if matchFunc(get, funcRef{"internal/demo", "", "Get"}) {
		t.Errorf("method should not match a package-level registration")
	}
	if !matchFunc(free, funcRef{"internal/demo", "", "Free"}) {
		t.Errorf("package-level function should match")
	}
	if matchFunc(free, funcRef{"internal/demo", "Pool", "Free"}) {
		t.Errorf("package-level function should not match a method registration")
	}
	if matchFunc(nil, funcRef{"internal/demo", "", "Free"}) {
		t.Errorf("nil *types.Func should never match")
	}
	if !matchAnyFunc(get, []funcRef{{"internal/demo", "", "Free"}, {"internal/demo", "Pool", "Get"}}) {
		t.Errorf("matchAnyFunc should find the second entry")
	}
	if matchAnyFunc(get, nil) {
		t.Errorf("matchAnyFunc over an empty table should be false")
	}
}

const calleeSrc = `package demo

type Pool struct{}

func (p *Pool) Get() int { return 0 }
func Top() int           { return 0 }

func use(p *Pool) (int, int, int) {
	a := p.Get()
	b := Top()
	f := func() int { return 1 }
	c := f()
	return a, b, c
}
`

func TestCalleeFunc(t *testing.T) {
	_, f, _, info := typecheck(t, calleeSrc)
	var got []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil {
			got = append(got, fn.Name())
		} else {
			got = append(got, "<dynamic>")
		}
		return true
	})
	want := []string{"Get", "Top", "<dynamic>"}
	if len(got) != len(want) {
		t.Fatalf("resolved callees = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("callee %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReceiverExpr(t *testing.T) {
	_, f, _, _ := typecheck(t, calleeSrc)
	var sawRecv, sawBare bool
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" {
			if id, ok := receiverExpr(call).(*ast.Ident); !ok || id.Name != "p" {
				t.Errorf("receiverExpr of p.Get() = %v, want ident p", receiverExpr(call))
			}
			sawRecv = true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "Top" {
			if receiverExpr(call) != nil {
				t.Errorf("receiverExpr of a bare call should be nil")
			}
			sawBare = true
		}
		return true
	})
	if !sawRecv || !sawBare {
		t.Fatalf("test did not visit both call shapes (recv=%v bare=%v)", sawRecv, sawBare)
	}
}

const appendSrc = `package demo

func use(xs []int) []int {
	xs = append(xs, 1)
	ys := append(xs)
	_ = ys
	return xs
}
`

func TestIsBuiltinAppend(t *testing.T) {
	_, f, _, info := typecheck(t, appendSrc)
	var got []bool
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			got = append(got, isBuiltinAppend(info, call))
		}
		return true
	})
	// append(xs, 1) qualifies; append(xs) has no appended element.
	want := []bool{true, false}
	if len(got) != len(want) {
		t.Fatalf("saw %d calls, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("call %d: isBuiltinAppend = %v, want %v", i, got[i], want[i])
		}
	}
}

const namedSrc = `package demo

type Spec struct{ N int }
type Alias = Spec

func vals() (Spec, *Spec, Alias, int) { return Spec{}, nil, Spec{}, 0 }
`

func TestNamedStrictAndRegistry(t *testing.T) {
	_, f, pkg, info := typecheck(t, namedSrc)
	sig := lookupFunc(t, pkg, info, f, "", "vals").Type().(*types.Signature)
	spec := sig.Results().At(0).Type()
	ptr := sig.Results().At(1).Type()
	alias := sig.Results().At(2).Type()
	basic := sig.Results().At(3).Type()

	if !namedStrict(spec, "internal/demo", "Spec") {
		t.Errorf("value type should match namedStrict")
	}
	if namedStrict(ptr, "internal/demo", "Spec") {
		t.Errorf("pointer type must NOT match namedStrict (shared reference)")
	}
	if !namedStrict(alias, "internal/demo", "Spec") {
		t.Errorf("alias should resolve to its named type")
	}
	if namedStrict(basic, "internal/demo", "Spec") {
		t.Errorf("basic type should not match")
	}

	table := [][2]string{{"internal/demo", "Spec"}}
	if !isRegisteredNamed(spec, table) {
		t.Errorf("registered value type should pass isRegisteredNamed")
	}
	if isRegisteredNamed(ptr, table) {
		t.Errorf("pointer to a registered type should fail isRegisteredNamed")
	}

	// The pointer-unwrapping variant used by poolsafe's type matching.
	if !isNamed(ptr, "internal/demo", "Spec") {
		t.Errorf("isNamed should unwrap the pointer")
	}
	if n, ok := namedType(ptr); !ok || n.Obj().Name() != "Spec" {
		t.Errorf("namedType should unwrap *Spec to Spec")
	}
}

const pkgVarSrc = `package demo

var Global = map[string]int{}
var Counter int

type box struct{ n int }

func use() {
	local := 0
	local++
	Counter++
	Global["k"] = 1
	b := box{}
	b.n = 2
	_ = local
}
`

func TestPkgLevelVar(t *testing.T) {
	_, f, _, info := typecheck(t, pkgVarSrc)
	var names []string
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := pkgLevelVar(info, lhs); v != nil {
					names = append(names, v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := pkgLevelVar(info, n.X); v != nil {
				names = append(names, v.Name())
			}
		}
		return true
	})
	want := []string{"Counter", "Global"}
	if len(names) != len(want) {
		t.Fatalf("package-level lvalue roots = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("root %d = %q, want %q", i, names[i], want[i])
		}
	}
}

const suppressSrc = `package demo

func a() int {
	return 1 //simlint:coldalloc audited example
}

func b() int {
	//simlint:coldalloc the line above form
	return 2
}

func c() int {
	return 3
}
`

func TestSuppressed(t *testing.T) {
	fset, f, pkg, info := typecheck(t, suppressSrc)
	pass := &analysis.Pass{
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
	}
	var rets []*ast.ReturnStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			rets = append(rets, r)
		}
		return true
	})
	if len(rets) != 3 {
		t.Fatalf("want 3 return statements, got %d", len(rets))
	}
	if !suppressed(pass, rets[0].Pos(), "coldalloc") {
		t.Errorf("same-line marker should suppress")
	}
	if !suppressed(pass, rets[1].Pos(), "coldalloc") {
		t.Errorf("line-above marker should suppress")
	}
	if suppressed(pass, rets[2].Pos(), "coldalloc") {
		t.Errorf("unmarked line must not be suppressed")
	}
	if suppressed(pass, rets[0].Pos(), "handoff") {
		t.Errorf("marker names a different rule; must not suppress")
	}
	if suppressed(pass, rets[0].Pos(), "cold") {
		t.Errorf("simlint:coldalloc must not satisfy the simlint:cold marker")
	}
}

func TestMarkerAt(t *testing.T) {
	cases := []struct {
		text, want string
		hit        bool
	}{
		{"simlint:cold", "simlint:cold", true},
		{"simlint:coldalloc", "simlint:cold", false},
		{"simlint:coldalloc", "simlint:coldalloc", true},
		{" simlint:cold (GC path)", "simlint:cold", true},
		{"simlint:coldalloc simlint:cold", "simlint:cold", true},
		{"nothing here", "simlint:cold", false},
	}
	for _, c := range cases {
		if got := markerAt(c.text, c.want); got != c.hit {
			t.Errorf("markerAt(%q, %q) = %v, want %v", c.text, c.want, got, c.hit)
		}
	}
}

func TestUnparen(t *testing.T) {
	inner := &ast.Ident{Name: "x"}
	wrapped := ast.Expr(&ast.ParenExpr{X: &ast.ParenExpr{X: inner}})
	if unparen(wrapped) != inner {
		t.Errorf("unparen should strip nested parens")
	}
	if unparen(inner) != inner {
		t.Errorf("unparen of a bare expr is the expr")
	}
}
