package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

func TestUnits(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Units, "un")
}

func TestUnitsExemptInDefiningPackage(t *testing.T) {
	// The fake units package converts freely — it implements the
	// audited helpers — and must produce no findings.
	analysistest.Run(t, "testdata", analyzers.Units, "triplea/internal/units")
}
