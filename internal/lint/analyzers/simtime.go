package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"

	"triplea/internal/lint/analysis"
)

// Simtime polices the boundary between simulated time (simx.Time) and
// the standard library's time.Duration, and bans unit-less numeric
// literals where simx.Time is expected.
//
// Both types count nanoseconds, which is exactly why confusing them is
// so easy: simx.Time(d) for a time.Duration d compiles and "works"
// until someone changes either side's unit. Conversions must go
// through the audited bridge (simx.FromDuration / Time.Duration).
// Likewise a bare literal — eng.Schedule(500, fn) — hides its unit;
// write 500*simx.Nanosecond. The literals 0 and -1 stay legal as the
// conventional zero/sentinel values. Test files are exempt: fixtures
// pin small literal timestamps on purpose, and the unit-drift hazard
// this rule guards against lives in the production latency models.
var Simtime = &analysis.Analyzer{
	Name: "simtime",
	Doc:  "flag time.Duration/simx.Time mixing and unit-less literals used as simx.Time",
	Run:  runSimtime,
}

func runSimtime(pass *analysis.Pass) (any, error) {
	if pass.Pkg != nil && hasPathSuffix(pass.Pkg.Path(), "internal/simx") {
		return nil, nil // simx itself defines the audited bridge
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkSimtimeCall(pass, n)
			case *ast.CompositeLit:
				checkSimtimeComposite(pass, n)
			case *ast.ValueSpec:
				if n.Type != nil && isSimxTime(info.TypeOf(n.Type)) {
					for _, v := range n.Values {
						reportBareLiteral(pass, v, "variable declaration")
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) && isSimxTime(info.TypeOf(n.Lhs[i])) {
						reportBareLiteral(pass, rhs, "assignment")
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkSimtimeCall handles both conversions (simx.Time(x),
// time.Duration(x)) and ordinary calls with simx.Time parameters.
func checkSimtimeCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// A conversion T(x).
		target := tv.Type
		if len(call.Args) != 1 {
			return
		}
		arg := unparen(call.Args[0])
		argT := info.TypeOf(arg)
		switch {
		case isSimxTime(target) && isDuration(argT):
			pass.Reportf(call.Pos(),
				"conversion of time.Duration to simx.Time bypasses the unit boundary; use simx.FromDuration")
		case isDuration(target) && isSimxTime(argT):
			pass.Reportf(call.Pos(),
				"conversion of simx.Time to time.Duration bypasses the unit boundary; use the Time.Duration method")
		case isSimxTime(target):
			reportBareLiteral(pass, arg, "conversion")
		}
		return
	}
	sig, ok := typeAsSignature(info.TypeOf(call.Fun))
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, isSlice := last.(*types.Slice); isSlice {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && isSimxTime(pt) {
			reportBareLiteral(pass, arg, "argument")
		}
	}
}

func checkSimtimeComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	info := pass.TypesInfo
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == key.Name && isSimxTime(f.Type()) {
				reportBareLiteral(pass, kv.Value, "field "+key.Name)
			}
		}
	}
}

// reportBareLiteral flags e when it is a unit-less numeric literal
// (optionally negated) other than the 0 and -1 sentinels.
func reportBareLiteral(pass *analysis.Pass, e ast.Expr, where string) {
	lit, neg := literalOf(e)
	if lit == nil {
		return
	}
	if tv, ok := pass.TypesInfo.Types[lit]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			if neg {
				v = -v
			}
			if v == 0 || v == -1 {
				return
			}
		}
	}
	pass.Reportf(e.Pos(),
		"bare numeric literal used as simx.Time in %s hides its unit; multiply by a simx unit constant (e.g. 500*simx.Nanosecond)",
		where)
}

// literalOf unwraps e to a basic literal, tracking one leading minus.
func literalOf(e ast.Expr) (*ast.BasicLit, bool) {
	e = unparen(e)
	neg := false
	if u, ok := e.(*ast.UnaryExpr); ok {
		if u.Op.String() != "-" {
			return nil, false
		}
		neg = true
		e = unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok {
		return nil, false
	}
	return lit, neg
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}
