package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"triplea/internal/lint/analysis"
)

// orderSinkCalls are method/function names whose invocation inside a
// map-range body makes iteration order observable: they schedule
// simulation events, enqueue work, or build ordered output.
var orderSinkCalls = map[string]bool{
	// event scheduling / work dispatch
	"Schedule": true, "At": true, "Submit": true, "Enqueue": true,
	"Push": true, "Dispatch": true, "Send": true, "Emit": true,
	// ordered output construction
	"AddRow": true, "Record": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

// Maporder flags range statements over maps whose bodies let the
// iteration order escape: scheduling events, appending to or mutating
// state declared outside the loop, emitting output, or invoking a
// caller-supplied function value. Go randomizes map iteration order
// per run, so any such loop silently corrupts event order or report
// content between reruns of the same seed.
//
// Loops whose escape is genuinely order-independent (a commutative
// max/sum over ints, say) are suppressed after audit with a
// "//simlint:ordered" comment on the range line or the line above.
// The right fix everywhere else is to sort the keys first and range
// over the sorted slice.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose nondeterministic order escapes into events, state, or output",
	Run:  runMaporder,
}

func runMaporder(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if suppressed(pass, rng.Pos(), "ordered") {
				return true
			}
			if reason, sinkPos := mapOrderEscape(pass, rng); reason != "" {
				pass.Reportf(rng.Pos(),
					"map iteration order is nondeterministic but %s (line %d); sort the keys first or audit with //simlint:ordered",
					reason, pass.Fset.Position(sinkPos).Line)
			}
			return true
		})
	}
	return nil, nil
}

// mapOrderEscape reports how (if at all) the loop body makes map
// iteration order observable outside one iteration.
func mapOrderEscape(pass *analysis.Pass, rng *ast.RangeStmt) (reason string, pos token.Pos) {
	info := pass.TypesInfo
	outer := func(e ast.Expr) bool { return rootOutsideRange(info, e, rng) }

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if isPureCollection(info, n, rng) {
				// s = append(s, k) / append(s, k, v): collecting keys
				// to sort them is the canonical fix, not a violation.
				return true
			}
			for _, lhs := range n.Lhs {
				if outer(lhs) {
					reason, pos = "the body assigns to state declared outside the loop", n.Pos()
					return false
				}
			}
		case *ast.IncDecStmt:
			if outer(n.X) {
				reason, pos = "the body mutates state declared outside the loop", n.Pos()
				return false
			}
		case *ast.SendStmt:
			reason, pos = "the body sends on a channel", n.Pos()
			return false
		case *ast.CallExpr:
			callee := unparen(n.Fun)
			switch c := callee.(type) {
			case *ast.SelectorExpr:
				if orderSinkCalls[c.Sel.Name] {
					reason, pos = "the body calls "+c.Sel.Name+", which schedules work or emits output", n.Pos()
					return false
				}
			case *ast.Ident:
				if obj := info.Uses[c]; obj != nil {
					if v, isVar := obj.(*types.Var); isVar {
						if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
							reason, pos = "the body invokes the function value "+c.Name+", whose effects depend on call order", n.Pos()
							return false
						}
					}
				}
			}
		}
		return true
	})
	return reason, pos
}

// isPureCollection reports whether stmt has the exact shape
// `s = append(s, args...)` with every arg rooted at the range's own
// key/value variables — the key-collection half of the sort-then-range
// idiom, which is order-independent once the caller sorts s.
func isPureCollection(info *types.Info, stmt *ast.AssignStmt, rng *ast.RangeStmt) bool {
	if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
		return false
	}
	call, ok := unparen(stmt.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin || fn.Name != "append" {
		return false
	}
	lhsObj := objectOfIdent(info, stmt.Lhs[0])
	if lhsObj == nil || lhsObj != objectOfIdent(info, call.Args[0]) {
		return false
	}
	kv := rangeVarObjects(info, rng)
	for _, arg := range call.Args[1:] {
		if !rootedIn(info, arg, kv) {
			return false
		}
	}
	return true
}

func objectOfIdent(info *types.Info, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

func rangeVarObjects(info *types.Info, rng *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if obj := objectOfIdent(info, e); obj != nil {
			out[obj] = true
		}
	}
	return out
}

// rootedIn reports whether e is an expression built only from the
// given objects (selectors, indexing, conversions of them).
func rootedIn(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return objs[info.ObjectOf(x)]
	case *ast.SelectorExpr:
		return rootedIn(info, x.X, objs)
	case *ast.IndexExpr:
		return rootedIn(info, x.X, objs)
	case *ast.StarExpr:
		return rootedIn(info, x.X, objs)
	case *ast.UnaryExpr:
		return rootedIn(info, x.X, objs)
	case *ast.CallExpr:
		// A conversion of the range var, e.g. append(s, int64(k)).
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return rootedIn(info, x.Args[0], objs)
		}
		return false
	default:
		return false
	}
}

// rootOutsideRange reports whether the root object of an assignable
// expression (x, x.f, x[i], *x, ...) is declared outside the range
// statement — i.e. the write survives the loop.
func rootOutsideRange(info *types.Info, e ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil {
				return false
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return false
			}
			return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}
