package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Floateq,
		"triplea/internal/metrics", // reporting package: exact equality flagged
		"other",                    // out of scope: silent
	)
}
