package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"

	"triplea/internal/lint/analysis"
)

// Units polices the dimensional-analysis boundary around the typed
// quantities in internal/units (Bytes, Pages, Blocks, Lanes,
// BytesPerSec) together with simx.Time and topo.PPN.
//
// Go already refuses to mix distinct named types in arithmetic, so the
// hazards that remain are the explicit escape hatches, and this
// analyzer closes them:
//
//   - a conversion between two unit types — units.Bytes(pages),
//     simx.Time(npages) — silently reinterprets one quantity as
//     another; cross-unit math must go through the named helpers
//     (units.PagesToBytes, units.TransferTime, units.ScaleByPages, ...)
//     which carry the conversion factor in their signature;
//   - a conversion from a units type to a basic numeric type —
//     int64(bytes) — erases the unit invisibly; use the Int/Int64
//     accessor methods, which are greppable and named;
//   - a bare numeric literal where a units type is expected hides its
//     unit; write 4*units.KiB, not units.Bytes(4096).
//
// The 0 and -1 literal sentinels stay legal, test files are exempt,
// and the packages defining the unit types (internal/units,
// internal/simx, internal/topo) are exempt: the helpers themselves
// must convert. An audited site is silenced with //simlint:units.
var Units = &analysis.Analyzer{
	Name: "units",
	Doc:  "flag cross-unit conversions, unit-erasing conversions, and bare literals around the internal/units quantity types",
	Run:  runUnits,
}

// unitTypeName reports the display name of a unit-quantity type:
// one of the internal/units scalars, simx.Time, or topo.PPN.
func unitTypeName(t types.Type) (string, bool) {
	for _, name := range []string{"Bytes", "Pages", "Blocks", "Lanes", "BytesPerSec"} {
		if isNamed(t, "internal/units", name) || isNamed(t, "units", name) {
			return "units." + name, true
		}
	}
	if isSimxTime(t) {
		return "simx.Time", true
	}
	if isNamed(t, "internal/topo", "PPN") || isNamed(t, "topo", "PPN") {
		return "topo.PPN", true
	}
	return "", false
}

// isUnitsScalar reports whether t is one of the internal/units types
// proper (excluding simx.Time and topo.PPN, whose erasures are legal:
// simtime audits the Time boundary, and PPN address math needs ints).
func isUnitsScalar(t types.Type) bool {
	name, ok := unitTypeName(t)
	return ok && name != "simx.Time" && name != "topo.PPN"
}

// unitDefiningPackages are exempt from the units rules: they implement
// the audited conversion helpers.
var unitDefiningPackages = []string{
	"internal/units",
	"internal/simx",
	"internal/topo",
}

func runUnits(pass *analysis.Pass) (any, error) {
	if pass.Pkg != nil && inPackageSet(pass.Pkg.Path(), unitDefiningPackages) {
		return nil, nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkUnitsCall(pass, n)
			case *ast.CompositeLit:
				checkUnitsComposite(pass, n)
			case *ast.ValueSpec:
				if n.Type != nil {
					if name, ok := unitTypeName(info.TypeOf(n.Type)); ok && name != "simx.Time" {
						for _, v := range n.Values {
							reportUnitsLiteral(pass, v, name, "variable declaration")
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					if name, ok := unitTypeName(info.TypeOf(n.Lhs[i])); ok && name != "simx.Time" {
						reportUnitsLiteral(pass, rhs, name, "assignment")
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkUnitsCall handles conversions T(x) — the cross-unit, erasing,
// and bare-literal rules — plus ordinary calls whose parameters carry
// units types (bare-literal rule).
func checkUnitsCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		target := tv.Type
		arg := unparen(call.Args[0])
		argT := info.TypeOf(arg)
		targetName, targetIsUnit := unitTypeName(target)
		argName, argIsUnit := unitTypeName(argT)
		switch {
		case targetIsUnit && argIsUnit && targetName != argName:
			if suppressed(pass, call.Pos(), "units") {
				return
			}
			pass.Reportf(call.Pos(),
				"conversion of %s to %s crosses units; use a named units helper (units.PagesToBytes, units.TransferTime, units.ScaleByPages, ...)",
				argName, targetName)
		case !targetIsUnit && argIsUnit && isUnitsScalar(argT) && isBasicNumeric(target):
			if suppressed(pass, call.Pos(), "units") {
				return
			}
			pass.Reportf(call.Pos(),
				"conversion of %s to %s erases the unit; use the %s accessor method",
				argName, target.String(), accessorFor(target))
		case targetIsUnit && targetName != "simx.Time":
			// simtime owns the simx.Time literal rule.
			reportUnitsLiteral(pass, arg, targetName, "conversion")
		}
		return
	}
	sig, ok := typeAsSignature(info.TypeOf(call.Fun))
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, isSlice := last.(*types.Slice); isSlice {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if name, isUnit := unitTypeName(pt); isUnit && name != "simx.Time" {
			reportUnitsLiteral(pass, arg, name, "argument")
		}
	}
}

func checkUnitsComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	info := pass.TypesInfo
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() != key.Name {
				continue
			}
			if name, isUnit := unitTypeName(f.Type()); isUnit && name != "simx.Time" {
				reportUnitsLiteral(pass, kv.Value, name, "field "+key.Name)
			}
		}
	}
}

// reportUnitsLiteral flags e when it is a bare numeric literal
// (optionally negated) other than the 0 and -1 sentinels flowing into
// a position typed as unit type typeName.
func reportUnitsLiteral(pass *analysis.Pass, e ast.Expr, typeName, where string) {
	lit, _ := literalOf(e)
	if lit == nil {
		return
	}
	if isZeroOrMinusOne(pass, e) {
		return
	}
	if suppressed(pass, e.Pos(), "units") {
		return
	}
	pass.Reportf(e.Pos(),
		"bare numeric literal used as %s in %s hides its unit; multiply by a unit constant (e.g. 4*units.KiB, 8*units.Lane)",
		typeName, where)
}

// isBasicNumeric reports whether t is an unnamed basic integer or
// float type (int, int64, uint64, float64, ...).
func isBasicNumeric(t types.Type) bool {
	b, ok := types.Unalias(t).(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0
}

// accessorFor names the units accessor matching a basic target type.
func accessorFor(t types.Type) string {
	if b, ok := types.Unalias(t).(*types.Basic); ok {
		switch b.Kind() {
		case types.Int:
			return "Int"
		}
	}
	return "Int64"
}

// isZeroOrMinusOne reports whether e is the literal 0 or -1 sentinel.
func isZeroOrMinusOne(pass *analysis.Pass, e ast.Expr) bool {
	lit, neg := literalOf(e)
	if lit == nil {
		return false
	}
	v, ok := intValueOf(pass, lit)
	if !ok {
		return false
	}
	if neg {
		v = -v
	}
	return v == 0 || v == -1
}

func intValueOf(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}
