package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"triplea/internal/lint/analysis"
	"triplea/internal/lint/ctrlflow"
)

// Poolsafe enforces the ownership discipline of the repository's
// intrusive object pools (simx events and waiters, pcie packets,
// cluster commands, the array's request/pageRef nodes, and the
// per-engine operation states). The hot path threads these objects
// through hand-placed release points; the runtime simx.PoolCheck guard
// only catches misuse on paths a test happens to execute, so this
// analyzer proves the same properties statically, per function, over
// the control-flow graph:
//
//	(a) leak-on-path    — a value obtained from a registered pool
//	    acquire must reach a release call or a sanctioned handoff on
//	    every path out of the function;
//	(b) use-after-release — no use of the value on any path after a
//	    release;
//	(c) double-release  — no path releases the same value twice;
//	(d) illegal store   — pooled pointers may not be parked in fields,
//	    slices, or maps outside the continuation allowlist.
//
// A "handoff" transfers ownership out of the function: passing the
// value to a registered sink (the typed Handler/Grantee/Done
// registration points: ScheduleEvent, AcquireG, Link.Send, Submit,
// ...), storing it into an allowlisted continuation field (pkt.Meta,
// cmd.Meta, ref.down, ...), returning it, or capturing it in a
// function literal (the closure becomes the owner). Ownership
// transfers the analyzer cannot see are audited in the source with a
// //simlint:handoff comment on the reported line.
//
// Pools, sinks, and continuation fields are registered in the tables
// below; a future pool opts in with one poolSpec line. The bodies of
// the registered acquire/release implementations themselves are exempt
// (they ARE the free-list machinery the rules protect). Test files are
// exempt: tests leak and double-handle pooled objects on purpose.
var Poolsafe = &analysis.Analyzer{
	Name: "poolsafe",
	Doc:  "enforce pooled-object ownership: release or hand off on every path, no use-after-release, no double-release, no stores outside the continuation allowlist",
	Run:  runPoolsafe,
}

// poolSpec registers one pool: the pooled object's type, the calls
// that mint or check out an object, and the calls (first argument)
// that return one. Adding a pool is adding one of these entries.
type poolSpec struct {
	name     string // diagnostic name, e.g. "pcie.Packet"
	pkg, typ string // the pooled object's defining package suffix and type name
	acquires []funcRef
	releases []funcRef
}

// poolTable registers every pool in the repository.
var poolTable = []*poolSpec{
	{
		name: "pcie.Packet", pkg: "internal/pcie", typ: "Packet",
		acquires: []funcRef{
			{"internal/pcie", "Pool", "Get"},
			{"internal/cluster", "Endpoint", "newPacket"},
		},
		releases: []funcRef{{"internal/pcie", "Pool", "Put"}},
	},
	{
		name: "cluster.Command", pkg: "internal/cluster", typ: "Command",
		acquires: []funcRef{{"internal/cluster", "CommandPool", "Get"}},
		releases: []funcRef{{"internal/cluster", "CommandPool", "Put"}},
	},
	{
		name: "array.request", pkg: "internal/array", typ: "request",
		acquires: []funcRef{{"internal/array", "Array", "newReq"}},
		releases: []funcRef{{"internal/array", "Array", "recycleReq"}},
	},
	{
		name: "array.pageRef", pkg: "internal/array", typ: "pageRef",
		acquires: []funcRef{{"internal/array", "Array", "newRef"}},
		releases: []funcRef{{"internal/array", "Array", "recycleRef"}},
	},
	{
		name: "simx.Event", pkg: "internal/simx", typ: "Event",
		acquires: []funcRef{{"internal/simx", "Engine", "newEvent"}},
		releases: []funcRef{{"internal/simx", "Engine", "recycle"}},
	},
	{
		name: "simx.waiter", pkg: "internal/simx", typ: "waiter",
		acquires: []funcRef{{"internal/simx", "Resource", "newWaiter"}},
		releases: []funcRef{{"internal/simx", "Resource", "recycleWaiter"}},
	},
	{
		name: "pcie.pendingSend", pkg: "internal/pcie", typ: "pendingSend",
		acquires: []funcRef{{"internal/pcie", "Link", "newPS"}},
		releases: []funcRef{{"internal/pcie", "Link", "recyclePS"}},
	},
	{
		name: "pcie.fwd", pkg: "internal/pcie", typ: "fwd",
		acquires: []funcRef{{"internal/pcie", "Switch", "newFwd"}},
		releases: []funcRef{{"internal/pcie", "Switch", "recycleFwd"}},
	},
	{
		name: "pcie.rcOp", pkg: "internal/pcie", typ: "rcOp",
		acquires: []funcRef{{"internal/pcie", "RootComplex", "newOp"}},
		releases: []funcRef{{"internal/pcie", "RootComplex", "recycleOp"}},
	},
	{
		name: "nand.opState", pkg: "internal/nand", typ: "opState",
		acquires: []funcRef{{"internal/nand", "Package", "newOp"}},
		releases: []funcRef{{"internal/nand", "Package", "recycleOp"}},
	},
	{
		name: "fimm.fop", pkg: "internal/fimm", typ: "fop",
		acquires: []funcRef{{"internal/fimm", "FIMM", "newOp"}},
		releases: []funcRef{{"internal/fimm", "FIMM", "recycleOp"}},
	},
}

// handoffSinks are the calls that take ownership of pooled arguments:
// the typed event/grant/transport registration points. Passing a
// tracked value (or a fresh acquire result) to one is a sanctioned
// handoff.
var handoffSinks = []funcRef{
	{"internal/simx", "Engine", "ScheduleEvent"},
	{"internal/simx", "Engine", "AtEvent"},
	{"internal/simx", "Resource", "AcquireG"},
	{"internal/simx", "Resource", "enqueue"},
	{"container/heap", "", "Push"},
	{"internal/pcie", "Link", "Send"},
	{"internal/pcie", "Link", "transmit"},
	{"internal/pcie", "RootComplex", "Inject"},
	{"internal/pcie", "Receiver", "Receive"},
	{"internal/cluster", "Endpoint", "Submit"},
	{"internal/cluster", "Endpoint", "Forward"},
	{"internal/cluster", "Endpoint", "Receive"},
	{"internal/array", "Array", "launchProgram"},
	{"internal/array", "Array", "retryRead"},
	{"internal/nand", "Package", "ReadOp"},
	{"internal/nand", "Package", "ProgramOp"},
	{"internal/nand", "Package", "EraseOp"},
	{"internal/fimm", "FIMM", "ReadOp"},
	{"internal/fimm", "FIMM", "ProgramOp"},
}

// fieldKey names one struct field for the continuation allowlist.
type fieldKey struct {
	pkg, typ, field string
}

// handoffStores are the continuation fields a pooled pointer may be
// parked in: the stored object's ownership rides the container from
// that point (pkt.Meta carries the command across the fabric, ref.down
// parks the page's packet, a link's sendQ holds credit-stalled sends,
// the endpoint queue holds admitted commands, and the resource wait
// list holds queued waiter nodes).
var handoffStores = []fieldKey{
	{"internal/pcie", "Packet", "Meta"},
	{"internal/cluster", "Command", "Meta"},
	{"internal/array", "pageRef", "down"},
	{"internal/pcie", "Link", "sendQ"},
	{"internal/cluster", "Endpoint", "pending"},
	{"internal/simx", "Resource", "waitHead"},
	{"internal/simx", "Resource", "waitTail"},
	{"internal/simx", "waiter", "next"},
}

// handoffMarker is the audited escape hatch: a //simlint:handoff
// comment on (or just above) the reported line silences poolsafe for
// ownership transfers the analyzer cannot see.
const handoffMarker = "handoff"

func runPoolsafe(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isPoolMachinery(pass, fd) {
				continue
			}
			// Analyze the function body, then every function literal
			// nested in it as its own function (a closure body runs at
			// another time and owns what it captures).
			for _, body := range functionBodies(fd.Body) {
				ps := &psFunc{pass: pass, reported: make(map[token.Pos]bool)}
				ps.analyze(body)
			}
		}
	}
	return nil, nil
}

// functionBodies returns body plus the body of every FuncLit nested
// anywhere inside it, in source order.
func functionBodies(body *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, functionBodies(fl.Body)...)
			return false
		}
		return true
	})
	return out
}

// isPoolMachinery reports whether fd is a registered acquire or
// release implementation — the free-list internals the rules protect,
// exempt from their own discipline.
func isPoolMachinery(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	for _, p := range poolTable {
		for _, r := range p.acquires {
			if matchFunc(obj, r) {
				return true
			}
		}
		for _, r := range p.releases {
			if matchFunc(obj, r) {
				return true
			}
		}
	}
	return false
}

// acquireOf reports the pool a call mints an object from, if any.
func acquireOf(info *types.Info, call *ast.CallExpr) *poolSpec {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	for _, p := range poolTable {
		for _, r := range p.acquires {
			if matchFunc(fn, r) {
				return p
			}
		}
	}
	return nil
}

// releaseOf reports the pool a call returns its first argument to.
func releaseOf(info *types.Info, call *ast.CallExpr) *poolSpec {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	for _, p := range poolTable {
		for _, r := range p.releases {
			if matchFunc(fn, r) {
				return p
			}
		}
	}
	return nil
}

// isSinkCall reports whether a call is a registered handoff sink.
func isSinkCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	for _, r := range handoffSinks {
		if matchFunc(fn, r) {
			return true
		}
	}
	return false
}

// poolOfType reports the pool whose object type t is (through
// pointers), if any.
func poolOfType(t types.Type) *poolSpec {
	n, ok := namedType(t)
	if !ok {
		return nil
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	for _, p := range poolTable {
		if obj.Name() == p.typ && hasPathSuffix(obj.Pkg().Path(), p.pkg) {
			return p
		}
	}
	return nil
}

// allowedStore reports whether the continuation allowlist sanctions
// storing a pooled pointer into field f of named type n.
func allowedStore(n *types.Named, field string) bool {
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	for _, fk := range handoffStores {
		if fk.field == field && fk.typ == obj.Name() && hasPathSuffix(obj.Pkg().Path(), fk.pkg) {
			return true
		}
	}
	return false
}

// ---- per-function dataflow ----

type actKind uint8

const (
	actAcquire actKind = iota // v = pool acquire
	actRelease                // release(v)
	actHandoff                // v passed to a sink / stored in a continuation / captured / returned
	actUse                    // any other read of v
	actKill                   // v reassigned to a non-acquire value
)

type action struct {
	kind actKind
	v    *types.Var
	pool *poolSpec // for acquire
	pos  token.Pos
}

// ownership states for one tracked variable on one path.
const (
	vUnborn   uint8 = iota // declared, not yet holding a pooled value
	vOwned                 // holds an acquire result this function must discharge
	vUnowned               // holds a pooled value owned elsewhere (param, field read)
	vReleased              // released on this path
	vHanded                // handed off on this path
)

// vstate is one (state, witness) pair: pos is the acquire site while
// owned, the release site while released.
type vstate struct {
	kind uint8
	pos  token.Pos
}

type psFunc struct {
	pass     *analysis.Pass
	tracked  map[*types.Var]*poolSpec
	actions  [][]action // per CFG block, in execution order
	reported map[token.Pos]bool
}

func (fa *psFunc) reportf(pos token.Pos, format string, args ...any) {
	if fa.reported[pos] || suppressed(fa.pass, pos, handoffMarker) {
		return
	}
	fa.reported[pos] = true
	fa.pass.Reportf(pos, format, args...)
}

func (fa *psFunc) line(pos token.Pos) int { return fa.pass.Fset.Position(pos).Line }

func (fa *psFunc) analyze(body *ast.BlockStmt) {
	fa.tracked = make(map[*types.Var]*poolSpec)
	fa.collectTracked(body)

	g := ctrlflow.New(body, mayReturnCall)

	// Walk every reachable block once, producing the ordered action
	// stream (and the flow-insensitive rule (d) / unbound-acquire
	// diagnostics as a side effect).
	fa.actions = make([][]action, len(g.Blocks))
	for _, blk := range g.Blocks {
		if !blk.Live {
			continue
		}
		var acts []action
		for _, n := range blk.Nodes {
			fa.nodeActions(n, &acts)
		}
		fa.actions[blk.Index] = acts
	}

	if len(fa.tracked) == 0 {
		return
	}
	// Deterministic variable order: by declaration position.
	vars := make([]*types.Var, 0, len(fa.tracked))
	for v := range fa.tracked {
		vars = append(vars, v)
	}
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j].Pos() < vars[j-1].Pos(); j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	for _, v := range vars {
		fa.flow(g, v)
	}
}

// collectTracked finds the variables the dataflow follows: idents
// bound to an acquire result and idents passed to a release call.
// Function literals are skipped — each is analyzed as its own function.
func (fa *psFunc) collectTracked(body *ast.BlockStmt) {
	info := fa.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					call, ok := unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					pool := acquireOf(info, call)
					if pool == nil {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if v, ok := info.ObjectOf(id).(*types.Var); ok {
							fa.tracked[v] = pool
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, val := range n.Values {
				call, ok := unparen(val).(*ast.CallExpr)
				if !ok {
					continue
				}
				pool := acquireOf(info, call)
				if pool == nil || i >= len(n.Names) {
					continue
				}
				if v, ok := info.ObjectOf(n.Names[i]).(*types.Var); ok {
					fa.tracked[v] = pool
				}
			}
		case *ast.CallExpr:
			pool := releaseOf(info, n)
			if pool == nil || len(n.Args) == 0 {
				return true
			}
			if id, ok := unparen(n.Args[0]).(*ast.Ident); ok {
				if v, ok := info.ObjectOf(id).(*types.Var); ok {
					fa.tracked[v] = pool
				}
			}
		}
		return true
	})
}

// nodeActions emits the action stream for one CFG node (a statement or
// a branch-condition expression).
func (fa *psFunc) nodeActions(n ast.Node, out *[]action) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		fa.assignActions(n, out)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, val := range vs.Values {
				var lhs ast.Expr
				if i < len(vs.Names) {
					lhs = vs.Names[i]
				}
				fa.assignPair(lhs, val, vs.Pos(), out)
			}
		}
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			fa.walkExpr(res, true, out)
		}
	case *ast.ExprStmt:
		fa.walkExpr(n.X, false, out)
	case *ast.IncDecStmt:
		fa.walkExpr(n.X, false, out)
	case *ast.SendStmt:
		fa.walkExpr(n.Chan, false, out)
		fa.walkExpr(n.Value, false, out)
	case *ast.GoStmt:
		fa.walkExpr(n.Call, false, out)
	case *ast.DeferStmt:
		// Deferred calls are approximated as running at the defer
		// statement; no current pool user defers a release.
		fa.walkExpr(n.Call, false, out)
	case *ast.BranchStmt, *ast.EmptyStmt:
		// no expressions
	case ast.Expr:
		fa.walkExpr(n, false, out)
	case ast.Stmt:
		// Remaining simple statements: walk any expressions they hold.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if e, ok := c.(ast.Expr); ok {
				fa.walkExpr(e, false, out)
				return false
			}
			return true
		})
	}
}

// assignActions handles one assignment statement pairwise.
func (fa *psFunc) assignActions(n *ast.AssignStmt, out *[]action) {
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Rhs {
			fa.assignPair(n.Lhs[i], n.Rhs[i], n.Pos(), out)
		}
		return
	}
	// Multi-value form (x, y := f()): no registered acquire returns
	// multiple values; walk everything as plain expressions.
	for _, rhs := range n.Rhs {
		fa.walkExpr(rhs, false, out)
	}
	for _, lhs := range n.Lhs {
		fa.lhsActions(lhs, nil, n.Pos(), out)
	}
}

// assignPair handles `lhs = rhs` for one pair.
func (fa *psFunc) assignPair(lhs, rhs ast.Expr, pos token.Pos, out *[]action) {
	info := fa.pass.TypesInfo
	if call, ok := unparen(rhs).(*ast.CallExpr); ok {
		if pool := acquireOf(info, call); pool != nil {
			// Acquire arguments thread into the new object (newRef
			// stores the request it is built around), so they count as
			// handed off.
			fa.sinkArgs(call, out)
			switch l := unparen(lhs).(type) {
			case *ast.Ident:
				if v, ok := info.ObjectOf(l).(*types.Var); ok && fa.tracked[v] != nil {
					*out = append(*out, action{kind: actAcquire, v: v, pool: pool, pos: call.Pos()})
					return
				}
				fa.reportf(call.Pos(),
					"result of %s acquire is discarded: bind it, release it, or hand it off", pool.name)
			case nil:
			default:
				// Acquire straight into a field or element: legal only
				// when the destination is an allowlisted continuation.
				fa.lhsActions(lhs, rhs, pos, out)
			}
			return
		}
	}
	fa.walkExpr(rhs, false, out)
	fa.lhsActions(lhs, rhs, pos, out)
}

// lhsActions handles the destination of an assignment: kills for plain
// ident rebinds, rule (d) checks for field/element/map stores.
func (fa *psFunc) lhsActions(lhs, rhs ast.Expr, pos token.Pos, out *[]action) {
	info := fa.pass.TypesInfo
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := info.ObjectOf(l).(*types.Var); ok && fa.tracked[v] != nil {
			*out = append(*out, action{kind: actKill, v: v, pos: l.Pos()})
		}
	case *ast.SelectorExpr:
		fa.walkExpr(l.X, false, out)
		fa.storeCheck(l.X, l.Sel.Name, rhs, pos, out)
	case *ast.IndexExpr:
		fa.walkExpr(l.Index, false, out)
		switch x := unparen(l.X).(type) {
		case *ast.SelectorExpr:
			fa.walkExpr(x.X, false, out)
			fa.storeCheck(x.X, x.Sel.Name, rhs, pos, out)
		case *ast.Ident:
			// Element store into a local container. A local slice dies
			// with the frame; a map is a long-lived parking spot and
			// has no allowlist entry, so a pooled value stored there is
			// reported.
			fa.walkExpr(x, false, out)
			if rhs != nil {
				if t, ok := info.Types[l.X]; ok {
					if _, isMap := t.Type.Underlying().(*types.Map); isMap {
						if pool := fa.storedPool(rhs); pool != nil {
							fa.reportf(pos,
								"pooled %s stored into a map: maps outlive the release point and are outside the continuation allowlist", pool.name)
							fa.handoffStored(rhs, out)
						}
					}
				}
			}
		default:
			fa.walkExpr(l.X, false, out)
		}
	default:
		fa.walkExpr(lhs, false, out)
	}
}

// storedPool reports the pool of the value an assignment stores: the
// RHS itself, or any pooled argument of an append call.
func (fa *psFunc) storedPool(rhs ast.Expr) *poolSpec {
	info := fa.pass.TypesInfo
	if call, ok := unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
		for _, a := range call.Args[1:] {
			if t, ok := info.Types[a]; ok {
				if p := poolOfType(t.Type); p != nil {
					return p
				}
			}
		}
		return nil
	}
	if t, ok := info.Types[rhs]; ok {
		return poolOfType(t.Type)
	}
	return nil
}

// handoffStored emits handoff actions for tracked idents the store
// consumed (the RHS, or the appended elements).
func (fa *psFunc) handoffStored(rhs ast.Expr, out *[]action) {
	info := fa.pass.TypesInfo
	emit := func(e ast.Expr) {
		if id, ok := unparen(e).(*ast.Ident); ok {
			if v, ok := info.ObjectOf(id).(*types.Var); ok && fa.tracked[v] != nil {
				*out = append(*out, action{kind: actHandoff, v: v, pos: id.Pos()})
				return
			}
		}
		fa.walkExpr(e, false, out)
	}
	if call, ok := unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
		fa.walkExpr(call.Args[0], false, out)
		for _, a := range call.Args[1:] {
			emit(a)
		}
		return
	}
	emit(rhs)
}

// storeCheck applies rule (d) to `container.field = rhs` (or an
// element store through that field). An allowlisted store is a
// handoff; any other store of a pooled value is reported.
func (fa *psFunc) storeCheck(container ast.Expr, field string, rhs ast.Expr, pos token.Pos, out *[]action) {
	if rhs == nil {
		return
	}
	pool := fa.storedPool(rhs)
	if pool == nil {
		fa.walkExpr(rhs, false, out)
		return
	}
	info := fa.pass.TypesInfo
	if t, ok := info.Types[container]; ok {
		if n, ok := namedType(t.Type); ok && allowedStore(n, field) {
			fa.handoffStored(rhs, out)
			return
		}
		if n, ok := namedType(t.Type); ok {
			fa.reportf(pos,
				"pooled %s stored into %s.%s, outside the continuation allowlist: pooled pointers parked in unregistered state outlive their release point", pool.name, n.Obj().Name(), field)
			fa.handoffStored(rhs, out)
			return
		}
	}
	fa.reportf(pos, "pooled %s stored outside the continuation allowlist", pool.name)
	fa.handoffStored(rhs, out)
}

// sinkArgs treats every argument of a call as handed off: tracked
// idents transfer, nested acquires are consumed, everything else walks
// normally.
func (fa *psFunc) sinkArgs(call *ast.CallExpr, out *[]action) {
	for _, a := range call.Args {
		fa.walkExpr(a, true, out)
	}
}

// walkExpr emits actions for one expression in evaluation order. sunk
// means the expression's value is consumed by a sanctioned owner (a
// sink argument, a return value): a tracked ident there is a handoff
// and an acquire there needs no binding.
func (fa *psFunc) walkExpr(e ast.Expr, sunk bool, out *[]action) {
	if e == nil {
		return
	}
	info := fa.pass.TypesInfo
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := info.ObjectOf(e).(*types.Var)
		if !ok || fa.tracked[v] == nil {
			return
		}
		if info.Defs[e] != nil {
			// Declaration occurrence (range variable, type-switch
			// binding): the variable takes a new, unowned value.
			*out = append(*out, action{kind: actKill, v: v, pos: e.Pos()})
			return
		}
		kind := actUse
		if sunk {
			kind = actHandoff
		}
		*out = append(*out, action{kind: kind, v: v, pos: e.Pos()})

	case *ast.CallExpr:
		switch {
		case releaseOf(info, e) != nil && len(e.Args) > 0:
			fa.walkExpr(receiverExpr(e), false, out)
			if id, ok := unparen(e.Args[0]).(*ast.Ident); ok {
				if v, ok := info.ObjectOf(id).(*types.Var); ok && fa.tracked[v] != nil {
					*out = append(*out, action{kind: actRelease, v: v, pos: e.Pos()})
				}
			} else {
				fa.walkExpr(e.Args[0], false, out)
			}
			for _, a := range e.Args[1:] {
				fa.walkExpr(a, false, out)
			}
		case acquireOf(info, e) != nil:
			fa.walkExpr(receiverExpr(e), false, out)
			fa.sinkArgs(e, out)
			if !sunk {
				fa.reportf(e.Pos(),
					"result of %s acquire is discarded: bind it, release it, or hand it off", acquireOf(info, e).name)
			}
		case isSinkCall(info, e):
			fa.walkExpr(receiverExpr(e), false, out)
			fa.sinkArgs(e, out)
		default:
			fa.walkExpr(e.Fun, false, out)
			for _, a := range e.Args {
				fa.walkExpr(a, false, out)
			}
		}

	case *ast.FuncLit:
		// The closure owns what it captures: every tracked variable
		// referenced in the body is handed off at creation. The body
		// itself is analyzed as a separate function.
		seen := make(map[*types.Var]bool)
		ast.Inspect(e.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := info.Uses[id].(*types.Var); ok && fa.tracked[v] != nil && !seen[v] {
				seen[v] = true
				*out = append(*out, action{kind: actHandoff, v: v, pos: e.Pos()})
			}
			return true
		})

	case *ast.SelectorExpr:
		fa.walkExpr(e.X, false, out)
	case *ast.ParenExpr:
		fa.walkExpr(e.X, sunk, out)
	case *ast.UnaryExpr:
		fa.walkExpr(e.X, sunk, out)
	case *ast.StarExpr:
		fa.walkExpr(e.X, sunk, out)
	case *ast.BinaryExpr:
		fa.walkExpr(e.X, false, out)
		fa.walkExpr(e.Y, false, out)
	case *ast.IndexExpr:
		fa.walkExpr(e.X, false, out)
		fa.walkExpr(e.Index, false, out)
	case *ast.SliceExpr:
		fa.walkExpr(e.X, false, out)
		fa.walkExpr(e.Low, false, out)
		fa.walkExpr(e.High, false, out)
		fa.walkExpr(e.Max, false, out)
	case *ast.TypeAssertExpr:
		fa.walkExpr(e.X, false, out)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				fa.walkExpr(kv.Value, false, out)
				continue
			}
			fa.walkExpr(el, false, out)
		}
	case *ast.KeyValueExpr:
		fa.walkExpr(e.Value, false, out)
	}
}

// mayReturnCall reports whether a call can return: panic, os.Exit and
// log.Fatal* terminate their path instead.
func mayReturnCall(call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name != "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			switch {
			case pkg.Name == "os" && fun.Sel.Name == "Exit":
				return false
			case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
				return false
			}
		}
	}
	return true
}

// flow runs the per-variable dataflow to a fixpoint and reports.
func (fa *psFunc) flow(g *ctrlflow.CFG, v *types.Var) {
	pool := fa.tracked[v]
	nblocks := len(g.Blocks)
	in := make([]map[vstate]bool, nblocks)

	initial := vstate{kind: vUnowned}
	if fa.acquiredOnly(g, v) {
		initial = vstate{kind: vUnborn}
	}

	entry := g.Blocks[0]
	in[entry.Index] = map[vstate]bool{initial: true}
	work := []*ctrlflow.Block{entry}
	inWork := make([]bool, nblocks)
	inWork[entry.Index] = true

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false

		// Transfer runs (and the reports they emit) happen in sorted
		// state order so the analyzer's own output is deterministic —
		// in particular, which witness position a deduped report keeps.
		out := make(map[vstate]bool)
		for _, st := range sortedStates(in[blk.Index]) {
			end, alive := fa.transfer(blk, v, pool, st)
			if alive {
				out[end] = true
			}
		}
		outStates := sortedStates(out)
		if blk.Returns {
			for _, st := range outStates {
				if st.kind == vOwned {
					fa.reportf(st.pos,
						"pooled %s may leak: a path to return reaches neither a release nor a sanctioned handoff (audit intentional transfers with //simlint:handoff)", pool.name)
				}
			}
		}
		for _, succ := range blk.Succs {
			if in[succ.Index] == nil {
				in[succ.Index] = make(map[vstate]bool)
			}
			grew := false
			for _, st := range outStates {
				if !in[succ.Index][st] {
					in[succ.Index][st] = true
					grew = true
				}
			}
			if grew && !inWork[succ.Index] {
				inWork[succ.Index] = true
				work = append(work, succ)
			}
		}
	}
}

// sortedStates returns a state set's members ordered by (kind, pos).
func sortedStates(set map[vstate]bool) []vstate {
	states := make([]vstate, 0, len(set))
	for st := range set { //simlint:ordered collected into a slice and sorted below
		states = append(states, st)
	}
	sort.Slice(states, func(i, j int) bool {
		if states[i].kind != states[j].kind {
			return states[i].kind < states[j].kind
		}
		return states[i].pos < states[j].pos
	})
	return states
}

// acquiredOnly reports whether v is bound by an acquire somewhere in
// this function (so it starts unborn rather than holding a value owned
// elsewhere).
func (fa *psFunc) acquiredOnly(g *ctrlflow.CFG, v *types.Var) bool {
	for _, acts := range fa.actions {
		for _, a := range acts {
			if a.v == v && a.kind == actAcquire {
				return true
			}
		}
	}
	return false
}

// transfer runs one path state through a block's actions, reporting
// violations. alive=false means the path cannot actually carry this
// state onward (currently always true; kept for clarity).
func (fa *psFunc) transfer(blk *ctrlflow.Block, v *types.Var, pool *poolSpec, st vstate) (vstate, bool) {
	for _, a := range fa.actions[blk.Index] {
		if a.v != v {
			continue
		}
		switch a.kind {
		case actAcquire:
			if st.kind == vOwned {
				fa.reportf(a.pos,
					"pooled %s reacquired before the previous object was released or handed off; the previous object leaks", pool.name)
			}
			st = vstate{kind: vOwned, pos: a.pos}
		case actRelease:
			switch st.kind {
			case vReleased:
				fa.reportf(a.pos,
					"double release of pooled %s (already released at line %d)", pool.name, fa.line(st.pos))
			}
			st = vstate{kind: vReleased, pos: a.pos}
		case actHandoff:
			if st.kind == vReleased {
				fa.reportf(a.pos,
					"use of pooled %s after release at line %d", pool.name, fa.line(st.pos))
			}
			st = vstate{kind: vHanded}
		case actUse:
			if st.kind == vReleased {
				fa.reportf(a.pos,
					"use of pooled %s after release at line %d", pool.name, fa.line(st.pos))
			}
		case actKill:
			if st.kind == vOwned {
				fa.reportf(a.pos,
					"pooled %s overwritten before release or handoff; the previous object leaks", pool.name)
			}
			st = vstate{kind: vUnowned}
		}
	}
	return st, true
}
