package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

// TestHotzero runs the golden fixtures: hz/internal/core covers every
// allocation rule class positive and negative, hz/internal/simx covers
// certified roots and the audited cold-path markers, and
// hz/internal/report proves the package-scope gate (no findings in
// post-processing code).
func TestHotzero(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Hotzero,
		"hz/internal/core",
		"hz/internal/simx",
		"hz/internal/report",
	)
}
