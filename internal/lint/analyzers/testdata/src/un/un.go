// Package un exercises the units analyzer: cross-unit conversions must
// go through named helpers, unit erasure must go through accessors, and
// bare literals must not pose as typed quantities.
package un

import (
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/units"
)

type geometry struct {
	PageSize units.Bytes
	PerBlock units.Pages
	Planes   int
}

func crossUnit(pages units.Pages, size units.Bytes, t simx.Time, ppn topo.PPN) {
	_ = units.Bytes(pages)   // want `conversion of units\.Pages to units\.Bytes crosses units`
	_ = units.Pages(size)    // want `conversion of units\.Bytes to units\.Pages crosses units`
	_ = simx.Time(pages)     // want `conversion of units\.Pages to simx\.Time crosses units`
	_ = units.Bytes(ppn)     // want `conversion of topo\.PPN to units\.Bytes crosses units`
	_ = units.BytesPerSec(t) // want `conversion of simx\.Time to units\.BytesPerSec crosses units`
	_ = units.Blocks(pages)  // want `conversion of units\.Pages to units\.Blocks crosses units`
	//simlint:units audited: page count reinterpreted for the legacy stats row
	_ = units.Bytes(pages)
	_ = units.PagesToBytes(pages, size) // the named helper is the sanctioned path
	_ = units.ScaleByPages(t, pages)
}

func erasure(size units.Bytes, pages units.Pages, lanes units.Lanes, t simx.Time, ppn topo.PPN) {
	_ = int64(size)    // want `conversion of units\.Bytes to int64 erases the unit; use the Int64 accessor`
	_ = int(pages)     // want `conversion of units\.Pages to int erases the unit; use the Int accessor`
	_ = float64(lanes) // want `conversion of units\.Lanes to float64 erases the unit`
	_ = size.Int64()   // the accessor is the sanctioned path
	_ = pages.Int()
	_ = int64(t)    // simx.Time erasure is simtime's business, not flagged here
	_ = uint64(ppn) // PPN address math needs raw bits, not flagged
	//simlint:units audited: stdlib interface wants a plain int64
	_ = int64(size)
}

func literals(g geometry) {
	_ = units.Bytes(4096) // want `bare numeric literal used as units\.Bytes in conversion`
	_ = units.Pages(256)  // want `bare numeric literal used as units\.Pages in conversion`
	_ = units.Bytes(0)    // zero sentinel stays legal
	_ = units.Pages(-1)   // sentinel stays legal
	_ = 4 * units.KiB     // unit-constant arithmetic is the idiom
	_ = 256 * units.Page
	takeSize(512) // want `bare numeric literal used as units\.Bytes in argument`
	takeSize(4 * units.KiB)
	takeSize(0)

	var ps units.Bytes = 2048 // want `bare numeric literal used as units\.Bytes in variable declaration`
	ps = 8192                 // want `bare numeric literal used as units\.Bytes in assignment`
	ps = 0
	ps = 8 * units.KiB
	_ = ps

	_ = geometry{PageSize: 4096, Planes: 2} // want `bare numeric literal used as units\.Bytes in field PageSize`
	_ = geometry{PerBlock: 128}             // want `bare numeric literal used as units\.Pages in field PerBlock`
	_ = geometry{PageSize: 4 * units.KiB, PerBlock: 256 * units.Page, Planes: 2}
	//simlint:units audited constructor: canonical default geometry
	_ = geometry{PageSize: 4096}
}

func takeSize(n units.Bytes) units.Bytes { return n }
