// Package gr exercises the globalrand analyzer: global math/rand draws
// are banned repo-wide, explicit constructors and types are not.
package gr

import "math/rand"

func bad() {
	_ = rand.Intn(6)    // want `global rand\.Intn draws from hidden process state`
	_ = rand.Float64()  // want `global rand\.Float64 draws from hidden process state`
	_ = rand.Int63n(10) // want `global rand\.Int63n draws from hidden process state`
	rand.Seed(42)       // want `global rand\.Seed draws from hidden process state`
}

func good() {
	// Explicitly seeded generators are reproducible by construction.
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(6)
	_ = r.Float64()
}

// Type references alone never trigger the analyzer.
var _ rand.Source
var _ *rand.Rand
