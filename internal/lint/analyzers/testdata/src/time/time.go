// Package time is a hermetic stand-in for the standard library's time
// package, carrying just enough surface for the analyzer fixtures.
package time

type Duration int64

const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

func (d Duration) Nanoseconds() int64 { return int64(d) }

type Time struct{ ns int64 }

type Timer struct{}

type Ticker struct{}

func Now() Time                             { return Time{} }
func Since(t Time) Duration                 { return 0 }
func Until(t Time) Duration                 { return 0 }
func Sleep(d Duration)                      {}
func Tick(d Duration) <-chan Time           { return nil }
func After(d Duration) <-chan Time          { return nil }
func AfterFunc(d Duration, f func()) *Timer { return nil }
func NewTimer(d Duration) *Timer            { return nil }
func NewTicker(d Duration) *Ticker          { return nil }
