// Package st exercises the simtime analyzer: simx.Time/time.Duration
// conversions must use the audited bridge, and unit-less literals must
// not pose as simulated time.
package st

import (
	"time"

	"triplea/internal/simx"
)

type config struct {
	Timeout simx.Time
	Retries int
}

func conversions(d time.Duration, t simx.Time) {
	_ = simx.Time(d)     // want `conversion of time\.Duration to simx\.Time bypasses the unit boundary`
	_ = time.Duration(t) // want `conversion of simx\.Time to time\.Duration bypasses the unit boundary`
	_ = simx.Time(250)   // want `bare numeric literal used as simx\.Time in conversion`
	_ = simx.Time(0)     // zero sentinel stays legal
	_ = simx.Time(-1)    // sentinel stays legal
	_ = int64(t)         // plain integer escape is not the analyzer's business
}

func arguments(eng *simx.Engine, fn func()) {
	eng.Schedule(500, fn) // want `bare numeric literal used as simx\.Time in argument`
	eng.At(1000, fn)      // want `bare numeric literal used as simx\.Time in argument`
	eng.Schedule(500*simx.Nanosecond, fn)
	eng.At(0, fn)
	eng.Schedule(simx.Millisecond, fn)
}

func declarations() {
	var deadline simx.Time = 250 // want `bare numeric literal used as simx\.Time in variable declaration`
	deadline = 7                 // want `bare numeric literal used as simx\.Time in assignment`
	deadline = 0
	deadline = 3 * simx.Second
	_ = deadline

	_ = config{Timeout: 99, Retries: 3} // want `bare numeric literal used as simx\.Time in field Timeout`
	_ = config{Timeout: 99 * simx.Microsecond, Retries: 3}
	_ = config{Timeout: 0}
}
