package st

import "triplea/internal/simx"

// Test files are exempt: fixtures pin small literal timestamps on
// purpose.
func fixture(eng *simx.Engine, fn func()) {
	eng.Schedule(500, fn)
	var deadline simx.Time = 250
	_ = deadline
	_ = config{Timeout: 99}
}
