// Package topo is a miniature stand-in for the repository's real
// internal/topo: the units analyzer treats PPN as a unit type.
package topo

type PPN uint64

func (p PPN) Page() int { return int(p & 0xfff) }
