// Package topo is a miniature stand-in for the repository's real
// internal/topo: the units analyzer treats PPN as a unit type.
package topo

type PPN uint64

func (p PPN) Page() int { return int(p & 0xfff) }

// Geometry mirrors the real topo.Geometry: a pure value struct, and
// one of isosafe's registered deep-copy-safe capture types.
type Geometry struct {
	Switches          int
	ClustersPerSwitch int
}
