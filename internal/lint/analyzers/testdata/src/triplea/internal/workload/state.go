// Package workload (fixture) sits on a simulation-state import path,
// where isosafe's rule 1 requires every package-level var to be
// effectively-const. Profile doubles as the registered deep-copy-safe
// capture type the swuser fixture hands to worker closures.
package workload

// Profile mirrors the real workload.Profile: a pure value struct.
type Profile struct {
	Name string
	Hot  int
}

// DefaultProfile is read but never written: effectively-const, no
// finding.
var DefaultProfile = Profile{Name: "base", Hot: 2}

var tuning = map[string]int{}

//simlint:shared audited: debug histogram, reset only between runs by the test harness
var histogram = map[string]int{}

var registry []Profile

func init() {
	// Writes during package initialization are sanctioned.
	registry = append(registry, DefaultProfile)
}

func Tune(k string, v int) {
	tuning[k] = v // want `write to package-level var tuning in simulation package workload`
	histogram[k]++
}

func Reset() {
	registry = nil // want `write to package-level var registry in simulation package workload`
}

func Alias() *map[string]int {
	return &tuning // want `alias \(&\) of package-level var tuning in simulation package workload`
}

func Read() Profile { return DefaultProfile }
