// Package sweep (fixture) sits on the orchestration import path,
// where isosafe applies its strict worker-isolation rules: checked
// captures, handoff-by-value channels, and no shared-memory
// synchronization even here.
package sweep

import (
	"sync" // want `import of sync in the orchestration scope`
)

type Spec struct {
	Index int
	Seed  uint64
}

type result struct {
	index int
	bytes []byte
}

type RunFunc func(Spec) ([]byte, error)

var mu sync.Mutex

// defaultSeed is never written: a worker closure may capture it.
var defaultSeed = uint64(42)

// launches is written outside init (in badCaptures' worker), so
// capturing it is a finding.
var launches int

// pool is the clean shape: the worker captures only the feed and
// result channels and the registered RunFunc; only Spec and result
// cross the channel boundary.
func pool(fn RunFunc, specs []Spec) [][]byte {
	feed := make(chan Spec, len(specs))
	results := make(chan result, len(specs))
	go func() {
		for sp := range feed {
			b, _ := fn(sp)
			results <- result{index: sp.Index, bytes: b}
		}
	}()
	for _, sp := range specs {
		feed <- sp
	}
	close(feed)
	out := make([][]byte, len(specs))
	for range specs {
		r := <-results
		out[r.index] = r.bytes
	}
	mu.Lock()
	mu.Unlock()
	return out
}

func badCaptures(fn RunFunc, specs []Spec) {
	table := map[int][]byte{}
	buf := []byte("x")
	go func() {
		table[0] = buf // want `worker goroutine captures table \(type map\[int\]\[\]byte\)` `worker goroutine captures buf \(type \[\]byte\)`
		launches++     // want `worker goroutine captures package-level var launches, which is written outside init`
		_ = defaultSeed
		_ = specs // want `worker goroutine captures specs \(type \[\]Spec\)`
		_ = fn
	}()
}

func badSpawn(task func()) {
	go task() // want `go statement must launch a function literal`
}

func badArg(blob []byte) {
	go func(b []byte) {
		_ = b
	}(blob) // want `argument of type \[\]byte handed to a worker goroutine`
}

func badSelect(a, b chan Spec) {
	select { // want `select statement in the orchestration scope`
	case <-a:
	case <-b:
	}
}

func badHandoff(out chan *result, n int) {
	leaks := make(chan []byte, n) // want `channel of \[\]byte in the orchestration scope`
	out <- &result{}              // want `value of type \*result crosses the worker channel boundary`
	leaks <- nil                  // want `value of type \[\]byte crosses the worker channel boundary`
}

func audited(n int) chan error {
	//simlint:isosafe audited: error fan-in reviewed with the pool design
	return make(chan error, n)
}
