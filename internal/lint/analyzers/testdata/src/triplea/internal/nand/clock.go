// Package nand exercises the walltime analyzer inside a simulation
// package: every wall-clock call must be reported.
package nand

import "time"

func badClock() {
	start := time.Now()         // want `wall-clock time\.Now in simulation package`
	_ = time.Since(start)       // want `wall-clock time\.Since in simulation package`
	time.Sleep(time.Second)     // want `wall-clock time\.Sleep in simulation package`
	_ = time.After(time.Second) // want `wall-clock time\.After in simulation package`
	_ = time.NewTimer(1)        // want `wall-clock time\.NewTimer in simulation package`
}

// Durations as plain values are fine; only the clock/timer calls are banned.
func okDuration() time.Duration {
	return 5 * time.Millisecond
}
