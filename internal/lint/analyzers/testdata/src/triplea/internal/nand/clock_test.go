package nand

import "time"

// Test files may measure wall-clock time (e.g. benchmark scaffolding);
// the analyzer must stay silent here.
func timingHelper() time.Duration {
	start := time.Now()
	return time.Since(start)
}
