// Package fimm (fixture) sits on a simulation-core import path, where
// nospawn bans goroutines, channels, and sync primitives.
package fimm

import (
	"sync" // want `import of sync in simulation package fimm`

	"triplea/internal/simx"
)

var mu sync.Mutex

func spawn(eng *simx.Engine, fn func()) {
	go fn() // want `go statement in a simulation package breaks the single-threaded deterministic event loop`
	eng.Schedule(simx.Microsecond, fn)
}

func channels(done chan int) {
	ch := make(chan int, 4) // want `make of a channel in a simulation package`
	ch <- 1                 // want `channel send in a simulation package`
	<-ch                    // want `channel receive in a simulation package`
	select {                // want `select statement in a simulation package`
	case v := <-done: // want `channel receive in a simulation package`
		_ = v
	default:
	}
	for range done { // want `range over a channel in a simulation package`
		break
	}
	close(done) // want `close of a channel in a simulation package`
}

func audited(stop chan struct{}) {
	//simlint:nospawn audited: external cancellation probe, never in the event loop
	close(stop)
}
