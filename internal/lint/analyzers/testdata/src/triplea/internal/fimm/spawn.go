// Package fimm (fixture) sits on a simulation-core import path, well
// outside the orchestration scope where nospawn confines concurrency.
package fimm

import (
	"sync" // want `import of sync in package fimm`

	"triplea/internal/simx"
)

var mu sync.Mutex

func spawn(eng *simx.Engine, fn func()) {
	go fn() // want `go statement outside the orchestration scope`
	eng.Schedule(simx.Microsecond, fn)
}

func channels(done chan int) {
	ch := make(chan int, 4) // want `make of a channel outside the orchestration scope`
	ch <- 1                 // want `channel send outside the orchestration scope`
	<-ch                    // want `channel receive outside the orchestration scope`
	select {                // want `select statement outside the orchestration scope`
	case v := <-done: // want `channel receive outside the orchestration scope`
		_ = v
	default:
	}
	for range done { // want `range over a channel outside the orchestration scope`
		break
	}
	close(done) // want `close of a channel outside the orchestration scope`
}

func audited(stop chan struct{}) {
	//simlint:nospawn audited: external cancellation probe, never in the event loop
	close(stop)
}
