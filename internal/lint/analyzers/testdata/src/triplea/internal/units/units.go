// Package units is a miniature stand-in for the repository's real
// internal/units, giving fixtures the quantity types, unit constants,
// and named helpers the units analyzer keys on.
package units

import "triplea/internal/simx"

type Bytes int64

type Pages int64

type Blocks int

type Lanes int

type BytesPerSec int64

const (
	Byte Bytes = 1
	KiB        = 1024 * Byte
	MiB        = 1024 * KiB

	Page Pages = 1

	Block Blocks = 1

	Lane Lanes = 1

	BytePerSec BytesPerSec = 1
	MBps                   = 1_000_000 * BytePerSec
)

func (b Bytes) Int64() int64 { return int64(b) }
func (b Bytes) Int() int     { return int(b) }
func (n Pages) Int64() int64 { return int64(n) }
func (n Pages) Int() int     { return int(n) }
func (n Blocks) Int() int    { return int(n) }
func (n Lanes) Int() int     { return int(n) }

func (r BytesPerSec) Int64() int64 { return int64(r) }

func PagesToBytes(n Pages, pageSize Bytes) Bytes {
	return Bytes(int64(n) * int64(pageSize))
}

func BytesToPages(b Bytes, pageSize Bytes) Pages {
	return Pages(int64(b) / int64(pageSize))
}

func TransferTime(n Bytes, bw BytesPerSec) simx.Time {
	bps := int64(bw)
	return simx.Time((int64(n)*1_000_000_000 + bps - 1) / bps)
}

func ScaleByPages(per simx.Time, n Pages) simx.Time {
	return per * simx.Time(n)
}
