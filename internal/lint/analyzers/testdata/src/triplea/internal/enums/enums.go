// Package enums defines fixture enum types for the exhaustive
// analyzer: named integer types in an internal/ package with two or
// more declared constants.
package enums

// Op mirrors the shape of the simulator's op enums.
type Op uint8

const (
	OpRead Op = iota
	OpWrite
	OpErase
)

// OpDefault aliases an existing value; exhaustiveness counts values,
// not names, so covering OpRead covers it.
const OpDefault = OpRead

// State has a String method implemented as a switch, the idiom the
// analyzer is meant to police.
type State int

const (
	StateFree State = iota
	StateBusy
	StateDead
)

// String covers every constant, so it is exhaustive without a default.
func (s State) String() string {
	switch s {
	case StateFree:
		return "free"
	case StateBusy:
		return "busy"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// Lone has a single constant: not an enum, never policed.
type Lone int

const OnlyLone Lone = 0
