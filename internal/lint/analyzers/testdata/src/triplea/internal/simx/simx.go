// Package simx is a miniature stand-in for the repository's real
// internal/simx, giving fixtures the Time type, unit constants, and
// Engine scheduling surface the analyzers key on.
package simx

type Time int64

const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

type Event struct{}

type Engine struct{ now Time }

func NewEngine() *Engine { return &Engine{} }

func (e *Engine) Now() Time { return e.now }

func (e *Engine) Schedule(delay Time, fn func()) *Event { return &Event{} }

func (e *Engine) At(t Time, fn func()) *Event { return &Event{} }

type RNG struct{ state uint64 }

func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

func (r *RNG) Intn(n int) int { return 0 }
