package simx

import "math/rand"

// seedBoundary exercises the globalrand exemption: rng.go inside
// internal/simx is the audited seed boundary, so global draws here are
// not reported.
func seedBoundary() int64 {
	rand.Seed(1)
	return rand.Int63()
}
