// Package pcie is a miniature stand-in for the repository's real
// internal/pcie, giving poolsafe fixtures the pooled Packet type, the
// Pool acquire/release pair, and the Link.Send handoff sink the
// analyzer's tables key on (registration matches by path suffix, so
// this fake registers alongside the real package).
package pcie

// Packet is the pooled object. Meta is the continuation field the
// poolsafe allowlist sanctions.
type Packet struct {
	next *Packet
	Kind int
	Addr uint64
	Meta any
}

// Pool is an intrusive free-list. Get and Put are registered as the
// pcie.Packet acquire and release; their bodies are pool machinery and
// exempt from the ownership rules.
type Pool struct{ free *Packet }

func (p *Pool) Get() *Packet {
	pkt := p.free
	if pkt == nil {
		return &Packet{}
	}
	p.free = pkt.next
	*pkt = Packet{}
	return pkt
}

func (p *Pool) Put(pkt *Packet) {
	pkt.Meta = nil
	pkt.next = p.free
	p.free = pkt
}

// Receiver and Link.Send mirror the real transport surface; Send and
// Receive are registered handoff sinks.
type Receiver interface {
	Receive(pkt *Packet, from *Link)
}

type Link struct{ dst Receiver }

func (l *Link) Send(pkt *Packet, accepted func(bool)) {
	if l.dst != nil {
		l.dst.Receive(pkt, l)
	}
}
