package metrics

// Test files are exempt: exact expected-value assertions are a
// legitimate testing idiom.
func exactAssert(got float64) bool { return got != 0.5 }
