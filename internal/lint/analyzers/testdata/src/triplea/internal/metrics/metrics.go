// Package metrics exercises the floateq analyzer inside a reporting
// package: exact float equality is flagged, constant folds and
// integer comparisons are not.
package metrics

func compare(a, b float64, n int) bool {
	if a == b { // want `floating-point == comparison in a reporting package`
		return true
	}
	if a != 1.5 { // want `floating-point != comparison in a reporting package`
		return false
	}
	if n == 3 { // integers compare exactly
		return true
	}
	return a <= b // range tests are the sanctioned form
}

// Both operands constant: exact by definition, stays legal.
const eps = 1e-9

var sameConst = eps == 1e-9
