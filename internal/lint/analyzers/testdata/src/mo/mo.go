// Package mo exercises the maporder analyzer: map iteration whose
// order escapes (events, outer state, output, channels, callbacks) is
// flagged; the sort-then-range idiom and audited commutative loops are
// not.
package mo

import (
	"fmt"
	"sort"

	"triplea/internal/simx"
)

func scheduleFromMap(eng *simx.Engine, pending map[int]func()) {
	for id, fn := range pending { // want `map iteration order is nondeterministic but the body calls Schedule`
		_ = id
		eng.Schedule(simx.Microsecond, fn)
	}
}

func appendOtherState(m map[int]int, lookup map[int]string) []string {
	var out []string
	for k := range m { // want `map iteration order is nondeterministic but the body assigns to state declared outside the loop`
		out = append(out, lookup[k])
	}
	return out
}

func printKeys(m map[string]int) {
	for k := range m { // want `map iteration order is nondeterministic but the body calls Println`
		fmt.Println(k)
	}
}

func sendKeys(m map[int]bool, ch chan int) {
	for k := range m { // want `map iteration order is nondeterministic but the body sends on a channel`
		ch <- k
	}
}

func visitAll(m map[int]int, visit func(int)) {
	for k := range m { // want `map iteration order is nondeterministic but the body invokes the function value visit`
		visit(k)
	}
}

// sortThenRange is the canonical fix: collecting keys is pure, and the
// ordered work happens over the sorted slice.
func sortThenRange(eng *simx.Engine, pending map[int]func()) {
	keys := make([]int, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		eng.Schedule(simx.Microsecond, pending[k])
	}
}

// maxValue is a commutative reduction: order cannot affect the result,
// so the audited suppression keeps it quiet.
func maxValue(m map[int]int) int {
	best := 0
	//simlint:ordered commutative max over ints
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// localOnly never lets the iteration order out of a single step.
func localOnly(m map[int]int) {
	for k := range m {
		v := m[k]
		_ = v
	}
}
