// Package core exercises every hotzero rule class, positive and
// negative. Roots: the dispatch-method implementations (OnEvent,
// OnGrant). Everything they statically reach is certified; everything
// else is invisible to the analyzer.
package core

import "hz/internal/simx"

type dev struct {
	n     int
	name  string
	buf   []int
	eng   *simx.Engine
	h     simx.Handler
	s     stepper
	hooks func()
}

// stepper is NOT a registered dispatch interface.
type stepper interface{ Advance() }

type widget struct{ xs []int }

// Advance is only reachable through the conservative all-implementers
// fallback at the unregistered dispatch site below.
func (w *widget) Advance() {
	w.xs = []int{1} // want `hot path: slice literal allocates its backing array`
}

// ---- explicit heap constructs ----

func (d *dev) OnEvent(arg uint64) {
	d.step()
	x := &dev{} // want `hot path: &composite literal escapes to the heap`
	_ = x
	xs := []int{1, 2} // want `hot path: slice literal allocates its backing array`
	_ = xs
	m := map[int]int{} // want `hot path: map literal allocates`
	_ = m
	p := new(dev) // want `hot path: new allocates`
	_ = p
	q := make([]int, 4) // want `hot path: make allocates`
	_ = q
	d.buf = append(d.buf, 1) // want `hot path: append may grow its backing array`

	ev := &dev{} //simlint:coldalloc audited in the fixture
	_ = ev

	v := dev{} // a plain struct value stays on the stack
	_ = v
}

// step is reachable from OnEvent; its body is clean.
func (d *dev) step() { d.n++ }

// ---- interface boxing ----

func (d *dev) OnGrant(arg uint64, wait simx.Time) {
	var i interface{}
	i = d.n // want `hot path: assignment boxes int into an interface`
	i = d   // a pointer fits the interface word: no allocation
	i = 42  // constants are boxed into static storage
	_ = i
	_ = interface{}(d.n) // want `hot path: conversion boxes int into an interface`
	sink(d.n)            // want `hot path: argument boxes int into an interface`
	sink(d)
	var j interface{} = d.name // want `hot path: assignment boxes string into an interface`
	_ = j
	_ = d.boxed()
	_ = simx.Time(arg) // a plain numeric conversion is free
}

func sink(x interface{}) {}

func (d *dev) boxed() interface{} {
	return d.n // want `hot path: return boxes int into an interface`
}

// ---- closures, method values, function values ----

func (d *dev) OnNandDone(t simx.Time, err error) {
	v := func() { // want `hot path: closure captures d and allocates`
		d.buf = append(d.buf, 1) // want `hot path: append may grow its backing array`
	}
	v()
	g := func(x int) int { return x + 1 } // capture-free: a static value
	_ = g(1)
	h := d.step // want `hot path: method value step allocates its bound-receiver closure`
	_ = h
	sink2(helper)
}

func sink2(f func()) {
	f() // want `hot path: dynamic call through a function value cannot be certified`
}

func helper() {}

// ---- strings and variadics ----

func (d *dev) OnFIMMDone(code int) {
	d.name = d.name + "x" // want `hot path: string concatenation allocates`
	b := []byte(d.name)   // want `hot path: string/\[\]byte conversion copies and allocates`
	s := string(b)        // want `hot path: string/\[\]byte conversion copies and allocates`
	_ = s
	varsink(1, 2) // want `hot path: variadic call allocates its argument slice`
	varsink(d.buf...)
	varsink()
}

func varsink(xs ...int) {}

// ---- calls leaving the certified world ----

func (d *dev) OnCommandFlushed(arg uint64) {
	d.eng.ScheduleEvent(d.eng.Now(), d, arg) // certified sink, pointer handler: free
	d.h.OnEvent(arg)                         // registered dispatch: certified
	_ = d.eng.DumpStats()                    // want `hot path: call to uncertified function simx\.Engine\.DumpStats`
	d.s.Advance()                            // want `hot path: interface dispatch through unregistered method Advance`
	d.hooks()                                // want `hot path: dynamic call through a function value cannot be certified`
}

// ---- audited pruning and terminal paths ----

//simlint:cold rebuild runs at topology changes, never per event
func (d *dev) rebuild() {
	d.buf = make([]int, 128)
	d.name = d.name + "/rebuilt"
}

func (d *dev) OnLinkAccepted(arg uint64) {
	if d.n < 0 {
		panic("bad state: " + d.name) // terminal path: exempt
	}
	d.rebuild()
}

// ---- reachability ----

// even/odd: mutual recursion must terminate and both bodies are hot.
func (d *dev) OnPageComplete(arg uint64) {
	d.even(int(arg))
}

func (d *dev) even(n int) {
	if n == 0 {
		return
	}
	d.buf = append(d.buf, n) // want `hot path: append may grow its backing array`
	d.odd(n - 1)
}

func (d *dev) odd(n int) {
	if n == 0 {
		return
	}
	d.name = d.name + "." // want `hot path: string concatenation allocates`
	d.even(n - 1)
}

// String is NOT reachable from any root: its allocations are none of
// hotzero's business.
func (d *dev) String() string {
	return "dev:" + d.name
}
