// Package simx is a minimal stand-in for the real engine: just enough
// surface for the hotzero fixtures to exercise certified cross-package
// calls, registered dispatch, and the audited pool-miss cold path.
package simx

type Time uint64

// Handler is the registered event-dispatch interface.
type Handler interface{ OnEvent(arg uint64) }

// Grantee is the registered resource-grant interface.
type Grantee interface {
	OnGrant(arg uint64, wait Time)
}

type Event struct {
	at   Time
	h    Handler
	arg  uint64
	next *Event
}

type Engine struct {
	now  Time
	free *Event
	heap []*Event
}

// Now is a certified table entry: rooted here, trusted at call sites.
func (e *Engine) Now() Time { return e.now }

// ScheduleEvent is a certified handoff sink. Its pool-miss branch and
// amortized heap growth are the canonical audited cold allocations.
func (e *Engine) ScheduleEvent(at Time, h Handler, arg uint64) {
	ev := e.free
	if ev == nil {
		ev = &Event{} //simlint:coldalloc pool miss: warm-up only
	} else {
		e.free = ev.next
	}
	ev.at, ev.h, ev.arg = at, h, arg
	e.heap = append(e.heap, ev) //simlint:coldalloc amortized queue growth
}

// DumpStats is deliberately unregistered: it allocates freely, and hot
// callers are reported at their call site instead. Nothing here is
// flagged because no hot root reaches it.
func (e *Engine) DumpStats() string {
	out := ""
	for range e.heap {
		out = out + "."
	}
	return out
}
