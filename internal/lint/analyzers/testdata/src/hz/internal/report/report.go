// Package report sits outside hotzero's package scope: even a method
// named like a dispatch handler may allocate freely here, because
// reporting/post-processing code runs after the simulation clock
// stops. Nothing in this file is flagged.
package report

type Table struct {
	rows []string
}

func (t *Table) OnEvent(arg uint64) {
	t.rows = append(t.rows, "row")
	m := map[string]int{"a": 1}
	_ = m
	var i interface{} = arg
	_ = i
}
