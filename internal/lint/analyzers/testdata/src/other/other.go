// Package other sits outside floateq's reporting-package scope, so
// exact float comparisons are not reported here.
package other

func Equalish(a, b float64) bool { return a == b }
