// Package sweep (fixture) is a fully clean orchestration pool: the
// negative case for every isosafe rule class, and the scope nospawn
// delegates to isosafe instead of policing itself — run either
// analyzer over it and expect silence.
package sweep

type Spec struct {
	Index int
	Seed  uint64
}

type RunFunc func(Spec) ([]byte, error)

type result struct {
	index int
	bytes []byte
	err   error
}

func Indexed(n int, seed uint64) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{Index: i, Seed: seed}
	}
	return specs
}

func Map(workers int, specs []Spec, fn RunFunc) ([][]byte, error) {
	feed := make(chan Spec, len(specs))
	results := make(chan result, len(specs))
	for w := 0; w < workers; w++ {
		go func() {
			for sp := range feed {
				b, err := fn(sp)
				results <- result{index: sp.Index, bytes: b, err: err}
			}
		}()
	}
	for _, sp := range specs {
		feed <- sp
	}
	close(feed)
	out := make([][]byte, len(specs))
	for range specs {
		r := <-results
		if r.err != nil {
			return nil, r.err
		}
		out[r.index] = r.bytes
	}
	return out, nil
}
