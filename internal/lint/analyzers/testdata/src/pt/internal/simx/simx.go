// Package simx is a miniature stand-in for the real event engine:
// partsafe matches registration tables by path suffix, so
// pt/internal/simx registers alongside triplea/internal/simx.
package simx

// Engine is stateful (it reaches mutable memory), so holding it forms
// a component edge.
type Engine struct{ q []func() }

func (e *Engine) Schedule(f func()) { e.q = append(e.q, f) }

// Resource is stateful.
type Resource struct{ waiters []int }
