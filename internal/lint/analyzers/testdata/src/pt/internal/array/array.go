package array

import (
	"pt/internal/pcie"
	"pt/internal/simx"
)

// Array holds registered edges silently and unregistered ones loudly.
type Array struct {
	eng  *simx.Engine // registered: array -> simx.Engine, via engine
	up   []*pcie.Link // registered: slice-of-component still resolves to pcie.Link
	dbg  *pcie.Debug  // want `undeclared component edge array -> pcie\.Debug`
	home pcie.Addr    // stateless value type: exempt
	n    int
}

// Tap embeds an unregistered component: an embedded field is still a
// held reference.
type Tap struct {
	*pcie.Debug // want `undeclared component edge array -> pcie\.Debug`
}

// An audited escape: the marker on the line above silences the site.
//
//simlint:edge scratch probe for bring-up, not an architectural edge
var probe *pcie.Debug

func Wire(a *Array, d *pcie.Debug) {
	a.eng.Schedule(func() {
		d.Ping() // want `undeclared component edge array -> pcie\.Debug`
	})
	d.Log = nil           // want `undeclared component edge array -> pcie\.Debug`
	_ = pcie.Addr{Bus: 1} // stateless composite literal: exempt
}

func Probe() *pcie.Debug {
	return &pcie.Debug{} // want `undeclared component edge array -> pcie\.Debug`
}

func Deliver(r pcie.Receiver, l *pcie.Link) {
	r.Deliver(l) // want `undeclared component edge array -> pcie\.Receiver`
	l.Push(nil)  // concrete method on a transient param: not a hold
}
