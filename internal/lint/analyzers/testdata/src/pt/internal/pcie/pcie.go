package pcie

import "pt/internal/simx"

// Link is a registered component edge target (array -> pcie.Link,
// cluster -> pcie.Link are in the manifest).
type Link struct {
	eng *simx.Engine // registered: pcie -> simx.Engine, via engine
	Buf []byte
}

func (l *Link) Push(b []byte) { l.Buf = append(l.Buf, b...) }

// Debug is stateful but appears in no manifest row: holding it from
// another component package must be diagnosed.
type Debug struct{ Log []string }

func (d *Debug) Ping() {}

// Addr is a pure value type: copying it cannot couple two components,
// so it is exempt from edge accounting.
type Addr struct{ Bus, Dev int }

// Receiver is the fabric's dispatch surface. Only cluster ->
// pcie.Receiver is registered.
type Receiver interface{ Deliver(l *Link) }
