package cluster

import (
	"pt/internal/array"
	"pt/internal/simx"
)

// Endpoint reaching up into the global coordination layer is a zone
// violation: it cannot be registered, only restructured or audited.
type Endpoint struct {
	eng   *simx.Engine // registered: cluster -> simx.Engine, via engine
	owner *array.Array // want `reaches up to array\.Array`
}
