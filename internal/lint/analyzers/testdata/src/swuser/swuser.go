// Package swuser (fixture) drives a sweep sink from outside the
// orchestration scope: isosafe checks every function value handed to
// the pool, wherever the call happens.
package swuser

import (
	swp "sweepok/internal/sweep"
	"triplea/internal/topo"
	"triplea/internal/workload"
)

// sizes is never written, so worker closures may read it (the
// sanctioned way to give every spec index a distinct parameter).
var sizes = []int{8, 12, 16}

func render(g topo.Geometry, seed uint64) []byte {
	return []byte{byte(g.Switches), byte(seed)}
}

// Good captures only registered deep-copy-safe values: a Geometry, a
// Profile, basics, and the effectively-const package var sizes.
func Good(g topo.Geometry, p workload.Profile, seed uint64) ([][]byte, error) {
	specs := swp.Indexed(len(sizes), seed)
	return swp.Map(2, specs, func(sp swp.Spec) ([]byte, error) {
		cfg := g // per-run copy: captured values are read-only
		cfg.ClustersPerSwitch = sizes[sp.Index]
		_ = p
		return render(cfg, sp.Seed), nil
	})
}

func run(sp swp.Spec) ([]byte, error) { return nil, nil }

// GoodFuncRef hands the pool a package-level function, which closes
// over nothing.
func GoodFuncRef(specs []swp.Spec) {
	swp.Map(2, specs, run)
}

type runner struct{ buf []byte }

func (r *runner) run(sp swp.Spec) ([]byte, error) { return r.buf, nil }

func Bad(r *runner, specs []swp.Spec, table map[int][]byte) {
	swp.Map(2, specs, r.run) // want `cannot verify the captures of this function value at a worker sink`
	swp.Map(2, specs, func(sp swp.Spec) ([]byte, error) {
		return table[sp.Index], nil // want `worker closure captures table \(type map\[int\]\[\]byte\)`
	})
	swp.Map(2, specs, func(sp swp.Spec) ([]byte, error) {
		r.buf = nil // want `worker closure captures r \(type \*runner\)`
		return nil, nil
	})
}

// BadForeign reaches for another package's global inside a worker:
// isosafe cannot see that package's writes, so the capture is
// rejected outright.
func BadForeign(specs []swp.Spec) {
	swp.Map(2, specs, func(sp swp.Spec) ([]byte, error) {
		_ = workload.DefaultProfile // want `worker closure captures package-level var DefaultProfile from package workload`
		return nil, nil
	})
}
