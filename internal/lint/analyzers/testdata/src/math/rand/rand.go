// Package rand is a hermetic stand-in for math/rand.
package rand

type Source interface {
	Int63() int64
	Seed(seed int64)
}

type Rand struct{ src Source }

type Zipf struct{}

func New(src Source) *Rand                             { return &Rand{src: src} }
func NewSource(seed int64) Source                      { return nil }
func NewZipf(r *Rand, s, v float64, imax uint64) *Zipf { return nil }
func Int() int                                         { return 0 }
func Intn(n int) int                                   { return 0 }
func Int63() int64                                     { return 0 }
func Int63n(n int64) int64                             { return 0 }
func Float64() float64                                 { return 0 }
func Perm(n int) []int                                 { return nil }
func Shuffle(n int, swap func(i, j int))               {}
func Seed(seed int64)                                  {}

func (r *Rand) Intn(n int) int       { return 0 }
func (r *Rand) Float64() float64     { return 0 }
func (r *Rand) Int63n(n int64) int64 { return 0 }
