// Package ex exercises the exhaustive analyzer: switches over
// simulator enums must cover every declared constant or carry an
// audited //simlint:partial default.
package ex

import "triplea/internal/enums"

func covered(op enums.Op) string {
	switch op {
	case enums.OpRead:
		return "r"
	case enums.OpWrite:
		return "w"
	case enums.OpErase:
		return "e"
	}
	return "?"
}

func coveredWithDefault(op enums.Op) string {
	switch op { // a default alongside full coverage is fine
	case enums.OpRead, enums.OpWrite:
		return "io"
	case enums.OpErase:
		return "e"
	default:
		return "?"
	}
}

func missingNoDefault(op enums.Op) {
	switch op { // want `switch over enums\.Op does not cover OpErase and has no default`
	case enums.OpRead:
	case enums.OpWrite:
	}
}

func missingWithDefault(op enums.Op) {
	switch op { // want `switch over enums\.Op does not cover OpWrite, OpErase; add the cases or audit the default`
	case enums.OpRead:
	default:
	}
}

func auditedPartial(op enums.Op) {
	switch op {
	case enums.OpRead:
	//simlint:partial audited: every non-read op is billed as background work
	default:
	}
}

func aliasCountsAsValue(op enums.Op) {
	switch op { // OpDefault == OpRead, so all three values are covered
	case enums.OpDefault, enums.OpWrite, enums.OpErase:
	}
}

func stringMethod(s enums.State) string {
	switch s { // want `switch over enums\.State does not cover StateDead`
	case enums.StateFree:
		return "free"
	case enums.StateBusy:
		return "busy"
	}
	return "unknown"
}

func comparisonNotEnumeration(op, other enums.Op) {
	switch op { // a non-constant case is a comparison; not policed
	case other:
	case enums.OpRead:
	}
}

// local is declared outside an internal/ package path scope? No — this
// package is plain "ex", so local enums here are out of scope.
type local int

const (
	localA local = iota
	localB
)

func localEnum(l local) {
	switch l { // not an internal/ package: not policed
	case localA:
	}
}

func notAnEnum(n enums.Lone) {
	switch n { // single constant: not an enum
	case enums.OnlyLone:
	}
}

func tagless(op enums.Op) {
	switch { // tagless switches are not enumerations
	case op == enums.OpRead:
	}
}
