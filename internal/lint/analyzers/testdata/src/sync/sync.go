// Package sync is a miniature stand-in for the standard library's
// sync, just enough surface for the nospawn fixtures to type-check.
package sync

type Mutex struct{ locked bool }

func (m *Mutex) Lock()   { m.locked = true }
func (m *Mutex) Unlock() { m.locked = false }

type WaitGroup struct{ n int }

func (wg *WaitGroup) Add(delta int) { wg.n += delta }
func (wg *WaitGroup) Done()         { wg.n-- }
func (wg *WaitGroup) Wait()         {}
