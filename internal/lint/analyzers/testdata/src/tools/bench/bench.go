// Package bench is outside the simulation package set, so wall-clock
// use is allowed.
package bench

import "time"

func Measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
