// Package sort is a hermetic stand-in for the standard library's sort.
package sort

func Ints(x []int)                          {}
func Strings(x []string)                    {}
func Slice(x any, less func(i, j int) bool) {}
