// Package fmt is a hermetic stand-in for the standard library's fmt.
// Signatures are simplified: the analyzers match by package path and
// function name only.
package fmt

func Print(a ...any) (int, error)                         { return 0, nil }
func Println(a ...any) (int, error)                       { return 0, nil }
func Printf(format string, a ...any) (int, error)         { return 0, nil }
func Sprintf(format string, a ...any) string              { return "" }
func Fprint(w any, a ...any) (int, error)                 { return 0, nil }
func Fprintln(w any, a ...any) (int, error)               { return 0, nil }
func Fprintf(w any, format string, a ...any) (int, error) { return 0, nil }
