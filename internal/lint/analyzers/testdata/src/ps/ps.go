// Package ps exercises the poolsafe analyzer: every value from a
// registered pool acquire must be released or handed off on every path
// (rule a), never touched after release (rule b), never released twice
// (rule c), and never parked in state outside the continuation
// allowlist (rule d).
package ps

import "triplea/internal/pcie"

// stash is NOT on the continuation allowlist: parking a pooled pointer
// in it is rule (d)'s target.
type stash struct {
	pkt *pcie.Packet
}

// ---- rule (a): leak on path ----

func leakOnPath(p *pcie.Pool, c bool) {
	pkt := p.Get() // want `pooled pcie\.Packet may leak: a path to return reaches neither a release nor a sanctioned handoff`
	if c {
		p.Put(pkt)
	}
}

func leakZeroIterationRange(p *pcie.Pool, xs []int, l *pcie.Link) {
	pkt := p.Get() // want `pooled pcie\.Packet may leak`
	for range xs {
		l.Send(pkt, nil)
	}
}

func reacquireLeaksFirst(p *pcie.Pool) {
	pkt := p.Get()
	pkt = p.Get() // want `pooled pcie\.Packet reacquired before the previous object was released or handed off`
	p.Put(pkt)
}

func overwriteLeaks(p *pcie.Pool) {
	pkt := p.Get()
	pkt = nil // want `pooled pcie\.Packet overwritten before release or handoff`
	_ = pkt
}

func discardedAcquire(p *pcie.Pool) {
	p.Get() // want `result of pcie\.Packet acquire is discarded`
}

// ---- rule (b): use after release ----

func useAfterRelease(p *pcie.Pool) int {
	pkt := p.Get()
	p.Put(pkt)
	return pkt.Kind // want `use of pooled pcie\.Packet after release at line \d+`
}

func handoffAfterRelease(p *pcie.Pool, l *pcie.Link) {
	pkt := p.Get()
	p.Put(pkt)
	l.Send(pkt, nil) // want `use of pooled pcie\.Packet after release at line \d+`
}

func useAfterReleaseOnOnePath(p *pcie.Pool, l *pcie.Link, c bool) {
	pkt := p.Get()
	if c {
		p.Put(pkt)
	} else {
		l.Send(pkt, nil)
	}
	pkt.Kind = 1 // want `use of pooled pcie\.Packet after release at line \d+`
}

// ---- rule (c): double release ----

func doubleRelease(p *pcie.Pool) {
	pkt := p.Get()
	p.Put(pkt)
	p.Put(pkt) // want `double release of pooled pcie\.Packet \(already released at line \d+\)`
}

func doubleReleaseOnOnePath(p *pcie.Pool, c bool) {
	pkt := p.Get()
	if c {
		p.Put(pkt)
	}
	p.Put(pkt) // want `double release of pooled pcie\.Packet \(already released at line \d+\)`
}

// ---- rule (d): illegal stores ----

func illegalFieldStore(p *pcie.Pool, s *stash) {
	pkt := p.Get()
	s.pkt = pkt // want `pooled pcie\.Packet stored into stash\.pkt, outside the continuation allowlist`
}

func illegalMapStore(p *pcie.Pool, m map[int]*pcie.Packet) {
	pkt := p.Get()
	m[0] = pkt // want `pooled pcie\.Packet stored into a map`
}

// ---- sanctioned flows: no diagnostics ----

// releasedEverywhere discharges on every path.
func releasedEverywhere(p *pcie.Pool, c bool) {
	pkt := p.Get()
	if c {
		pkt.Kind = 1
	}
	p.Put(pkt)
}

// sinkHandoff transfers ownership to the transport.
func sinkHandoff(p *pcie.Pool, l *pcie.Link) {
	pkt := p.Get()
	pkt.Addr = 7
	l.Send(pkt, nil)
}

// nestedAcquireIntoSink consumes the acquire result directly.
func nestedAcquireIntoSink(p *pcie.Pool, l *pcie.Link) {
	l.Send(p.Get(), nil)
}

// metaStore parks one pooled object in another's allowlisted
// continuation field, then hands the carrier to the transport.
func metaStore(p *pcie.Pool, l *pcie.Link) {
	pkt := p.Get()
	carrier := p.Get()
	carrier.Meta = pkt
	l.Send(carrier, nil)
}

// returnTransfers hands ownership to the caller.
func returnTransfers(p *pcie.Pool) *pcie.Packet {
	pkt := p.Get()
	pkt.Kind = 2
	return pkt
}

// closureCapture makes the closure the owner; its body is analyzed as
// its own function and releases there.
func closureCapture(p *pcie.Pool, run func(func())) {
	pkt := p.Get()
	run(func() { p.Put(pkt) })
}

// auditedHandoff: park takes ownership in a way the analyzer cannot
// see; the escape hatch silences the leak report on the acquire line.
func auditedHandoff(p *pcie.Pool, park func(*pcie.Packet)) {
	pkt := p.Get() //simlint:handoff park's registry owns the packet from here
	park(pkt)
}

// loopReuse acquires and releases once per iteration.
func loopReuse(p *pcie.Pool, n int) {
	for i := 0; i < n; i++ {
		pkt := p.Get()
		pkt.Kind = i
		p.Put(pkt)
	}
}

// borrowedParam releases a value owned by the caller: releasing or
// using an unowned value is fine, and the post-release discipline
// still applies (covered above).
func borrowedParam(p *pcie.Pool, pkt *pcie.Packet) {
	pkt.Kind = 3
	p.Put(pkt)
}

// switchPaths discharges in every case, including default.
func switchPaths(p *pcie.Pool, l *pcie.Link, mode int) {
	pkt := p.Get()
	switch mode {
	case 0:
		p.Put(pkt)
	case 1:
		l.Send(pkt, nil)
	default:
		p.Put(pkt)
	}
}
