package analyzers

// hotzero certifies the simulation hot path allocation-free.
//
// The paper's evaluation turns on sustained event throughput: one
// simulated second of array traffic is tens of millions of simulator
// events, and PR 3 moved every per-event object into intrusive pools
// precisely so the steady-state loop performs zero heap allocations.
// That property is load-bearing (BENCH_*.json records allocs/op = 0
// for the event loop) but was, until this analyzer, enforced only by
// benchmark inspection. hotzero makes it a build-time contract.
//
// Mechanics: for each hot package, build the static call graph
// (internal/lint/callgraph), seed a worklist with the hot roots, walk
// every statically reachable function, and report each construct the
// Go compiler may lower to a heap allocation:
//
//   - escaping composite literals (&T{...}) and new(T)
//   - slice/map literals, make of slices/maps/chans
//   - append (growth can reallocate the backing array)
//   - interface boxing — explicit conversions, call arguments,
//     assignments, and returns whose target is an interface and whose
//     operand is a non-pointer-shaped concrete value (pointer, chan,
//     map, func, and interface operands fit the data word and do not
//     allocate, which is what lets pre-bound pointer-receiver handlers
//     pass)
//   - closures that capture locals, and bound-method values
//   - string concatenation and string<->[]byte/[]rune conversions
//   - variadic calls (the argument slice)
//   - calls that leave the certified world: uncertified functions,
//     unregistered interface dispatch, dynamic calls through function
//     values
//
// Because the analysis framework is strictly per-package (no facts),
// certification is modular: the registration tables below name every
// function the hot path may call across package boundaries. An entry
// plays two roles — in its defining package's run it is a ROOT (its
// body is walked and certified), and at a call site in any other
// package it is a CERTIFIED EDGE (trusted, because the defining
// package's run proves it). Event/grant/completion handlers are rooted
// structurally: any method in a hot package whose name is a registered
// dispatch method (OnEvent, OnGrant, ...) is walked without an
// explicit table entry, mirroring how the engine invokes them.
//
// Two audited escape hatches, both logged in docs/static-analysis.md:
//
//	//simlint:coldalloc  on the line (or the line above) suppresses one
//	                     finding — for pool-miss Fresh paths, amortized
//	                     growth, and terminal error paths.
//	//simlint:cold       on a func declaration (or the line above)
//	                     prunes the function and everything only it
//	                     reaches — for setup/teardown helpers reachable
//	                     from hot code but executed off the hot loop.
//
// panic(...) argument subtrees are exempt by construction: a panicking
// simulator is not on the hot path, and the repo's panics format their
// messages.

import (
	"go/ast"
	"go/token"
	"go/types"

	"triplea/internal/lint/analysis"
	"triplea/internal/lint/callgraph"
)

var Hotzero = &analysis.Analyzer{
	Name: "hotzero",
	Doc:  "certify the event-loop hot path allocation-free: walk the static call graph from every handler/grantee/pool root and report heap-allocating constructs and uncertified calls",
	Run:  runHotzero,
}

// hotzeroPackageSuffixes is the analyzer's scope: the simulation core
// plus the support packages hot code calls into. A package must be in
// scope for its certified-table entries to actually be verified.
var hotzeroPackageSuffixes = append([]string{
	"internal/units",
}, isoStatePackageSuffixes...)

// hotDispatchMethods are the registered dispatch points: the engine and
// device layers invoke these through interfaces on every event, so
// every in-scope method with one of these names is structurally a hot
// root, and interface dispatch through one of these names is a
// certified edge (each implementer is rooted in its own package's run).
var hotDispatchMethods = map[string]bool{
	"OnEvent":          true, // simx.Handler — the event loop itself
	"OnGrant":          true, // simx.Grantee — resource-grant continuations
	"OnNandDone":       true, // nand.Done — die operation completions
	"OnFIMMDone":       true, // fimm.Done — flash-module completions
	"OnCommandFlushed": true, // cluster.FlushedH — write-cache flushes
	"Receive":          true, // pcie.Receiver — packet delivery
	"OnLinkAccepted":   true, // pcie.Accepted — link-credit continuations
	"OnPageComplete":   true, // array.Hooks — page completion callback
	"WriteTarget":      true, // array.Hooks — target-selection callback
	"launch":           true, // array.launcher — program-launch indirection
}

// hotCertified registers the cross-package API surface of the hot
// path beyond the pool/handoff tables (those are folded in by
// hotRegistered below). Keep this table tight: every entry is walked
// as a root in its defining package, so a bogus entry is noisy, not
// unsound — but an entry here asserts "hot by design", so additions
// belong in code review.
var hotCertified = []funcRef{
	// simx engine surface invoked per event
	// Engine.Schedule/At is deliberately NOT here: the closure-event
	// API allocates an Event per call and is the cold scheduling path
	// (hot code pre-binds Grantees and pooled events instead).
	{"internal/simx", "Engine", "Now"},
	{"internal/simx", "Engine", "Step"},
	{"internal/simx", "Engine", "pop"},
	{"internal/simx", "eventHeap", "Len"},
	{"internal/simx", "eventHeap", "Less"},
	{"internal/simx", "eventHeap", "Swap"},
	{"internal/simx", "eventHeap", "Push"},
	{"internal/simx", "eventHeap", "Pop"},
	{"internal/simx", "Resource", "Release"},
	{"internal/simx", "Resource", "TryAcquire"},
	{"internal/simx", "Resource", "InUse"},
	{"internal/simx", "Resource", "QueueLen"},
	{"internal/simx", "Resource", "BusyNS"},
	{"internal/simx", "Resource", "UtilizationSince"},
	// simcheck hooks: no-ops in default builds, diagnostic-only
	// allocations under the simcheck tag (not a measured build)
	{"internal/simx", "PoolCheck", "Checkout"},
	{"internal/simx", "PoolCheck", "Fresh"},
	{"internal/simx", "PoolCheck", "Release"},
	{"internal/simx", "PoolCheck", "InUse"},
	// topology address arithmetic: pure field extraction per op
	{"internal/topo", "PPN", "NandAddr"},
	{"internal/topo", "PPN", "Pkg"},
	{"internal/topo", "PPN", "FIMMSlot"},
	{"internal/topo", "PPN", "FIMMID"},
	{"internal/topo", "PPN", "ClusterID"},
	{"internal/topo", "PPN", "Cluster"},
	{"internal/topo", "PPN", "Switch"},
	{"internal/topo", "PPN", "BlockKey"},
	{"internal/topo", "PPN", "Block"},
	{"internal/topo", "PPN", "Die"},
	{"internal/topo", "PPN", "Page"},
	{"internal/topo", "", "PackPPN"},
	{"internal/topo", "", "FIMMFromFlat"},
	{"internal/topo", "Geometry", "ParallelUnitsPerFIMM"},
	{"internal/topo", "Geometry", "TotalFIMMs"},
	{"internal/topo", "Geometry", "TotalClusters"},
	{"internal/topo", "Geometry", "TotalPages"},
	{"internal/topo", "Geometry", "PagesPerFIMM"},
	{"internal/topo", "FIMMID", "Flat"},
	{"internal/topo", "ClusterID", "Flat"},
	{"internal/topo", "Health", "Placeable"},
	{"internal/topo", "Health", "ClusterPlaceable"},
	{"internal/topo", "Health", "FIMM"},
	{"internal/topo", "Health", "Cluster"},
	// unit conversions: pure arithmetic per op
	{"internal/units", "", "ScaleByPages"},
	{"internal/units", "", "BlocksToPages"},
	{"internal/units", "", "TransferTime"},
	{"internal/units", "", "PagesToBytes"},
	{"internal/units", "", "BusBandwidth"},
	{"internal/units", "Blocks", "Int"},
	{"internal/units", "Pages", "Int"},
	{"internal/units", "Pages", "Int64"},
	// FTL mapping bookkeeping invoked per IO. The GC planning surface
	// (PlanGC, AllocateGCMove, CompleteGCErase, Prepopulate, Wear) is
	// deliberately absent: garbage collection runs per reclaimed block,
	// not per event, and its callers are audited //simlint:cold.
	{"internal/ftl", "FTL", "Lookup"},
	{"internal/ftl", "FTL", "LPNOf"},
	{"internal/ftl", "FTL", "ResidentFIMM"},
	{"internal/ftl", "FTL", "FallbackFIMM"},
	{"internal/ftl", "FTL", "AllocateWriteAt"},
	{"internal/ftl", "FTL", "DropMapping"},
	{"internal/ftl", "FTL", "AbortBlock"},
	{"internal/ftl", "FTL", "GCPressure"},
	{"internal/ftl", "FTL", "MinFreeBlocks"},
	{"internal/ftl", "FTL", "Wear"},
	// cluster/array/device accessors used by handlers per event
	{"internal/cluster", "Command", "SetPageAddr"},
	{"internal/cluster", "Endpoint", "ID"},
	{"internal/cluster", "Endpoint", "FIMM"},
	{"internal/cluster", "Endpoint", "QueueFull"},
	{"internal/cluster", "Endpoint", "StalledPerFIMM"},
	{"internal/cluster", "Endpoint", "BusBusyNS"},
	{"internal/cluster", "Endpoint", "BusUtilizationSince"},
	{"internal/cluster", "OpResult", "DeviceLatency"},
	{"internal/array", "Array", "Engine"},
	{"internal/array", "Array", "Endpoint"},
	{"internal/array", "Array", "Config"},
	{"internal/array", "Array", "Health"},
	{"internal/array", "Array", "FTL"},
	{"internal/nand", "Package", "MarkStale"},
	{"internal/nand", "Params", "PagesPerPackage"},
	{"internal/fimm", "FIMM", "Package"},
	{"internal/pcie", "Link", "ReturnCredit"},
	// per-event metric recording (fixed-slot counters)
	{"internal/metrics", "Recorder", "Record"},
	{"internal/metrics", "Recorder", "RecordFailure"},
	{"internal/metrics", "Breakdown", "Add"},
	// registry counter increment: one add to a pre-registered slot
	// (the array's fault counters fire on hot-reachable fault paths)
	{"internal/metrics", "Counter", "Inc"},
	// streaming histogram observation: one bucket increment into a
	// preallocated counts slice (the decision recorder's regret
	// histograms observe on Commit)
	{"internal/metrics", "Histogram", "Observe"},
	// decision flight recorder hooks: nil-receiver-safe, allocation-free
	// by construction (fixed ring + insertion sorts into fixed arrays);
	// the off backend is the nil check these methods open with
	{"internal/decision", "Recorder", "Begin"},
	{"internal/decision", "Recorder", "Candidate"},
	{"internal/decision", "Recorder", "Commit"},
	{"internal/decision", "Recorder", "Cancel"},
	{"internal/trace", "Request", "Validate"},
	// errors.Is walks the wrapped chain without allocating
	{"errors", "", "Is"},
	// container/list: pointer surgery only (PushFront allocates an
	// Element and is deliberately NOT certified)
	{"container/list", "List", "MoveToFront"},
	{"container/list", "List", "Remove"},
	{"container/list", "List", "Len"},
	{"container/list", "List", "Back"},
	// container/heap is the one stdlib dependency of the event loop;
	// Fix/Pop/Push call back into the certified eventHeap methods and
	// perform no allocation themselves (Push's amortized growth lives
	// in eventHeap.Push, audited there).
	{"container/heap", "", "Init"},
	{"container/heap", "", "Push"},
	{"container/heap", "", "Pop"},
	{"container/heap", "", "Fix"},
}

// hotPureStdlib lists stdlib packages whose exported functions neither
// allocate nor call out: pure arithmetic.
var hotPureStdlib = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// hotRegistered composes the full certification table: the explicit
// entries above, every pool acquire/release (the free-list machinery
// runs per event), and every ownership-handoff sink (handlers hand
// pooled objects to these on the hot path).
func hotRegistered() []funcRef {
	out := make([]funcRef, 0, len(hotCertified)+len(handoffSinks)+4*len(poolTable))
	out = append(out, hotCertified...)
	out = append(out, handoffSinks...)
	for _, p := range poolTable {
		out = append(out, p.acquires...)
		out = append(out, p.releases...)
	}
	return out
}

type hotzeroPass struct {
	pass  *analysis.Pass
	graph *callgraph.Graph
	reg   []funcRef
	seen  map[*callgraph.Node]bool
	queue []*callgraph.Node
}

func runHotzero(pass *analysis.Pass) (any, error) {
	if !inPackageSet(pass.Pkg.Path(), hotzeroPackageSuffixes) {
		return nil, nil
	}
	g := callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files, func(f *ast.File) bool {
		return isTestFile(pass, f.Pos())
	})
	hz := &hotzeroPass{
		pass:  pass,
		graph: g,
		reg:   hotRegistered(),
		seen:  make(map[*callgraph.Node]bool),
	}
	for _, n := range g.Ordered {
		if n.Fn != nil && hz.isRoot(n.Fn) {
			hz.enqueue(n)
		}
	}
	for len(hz.queue) > 0 {
		n := hz.queue[0]
		hz.queue = hz.queue[1:]
		hz.visit(n)
	}
	return nil, nil
}

// isRoot reports whether a declared function starts a hot walk: a
// dispatch-method implementation or a registered certified function.
func (hz *hotzeroPass) isRoot(fn *types.Func) bool {
	if hotDispatchMethods[fn.Name()] {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
	}
	return matchAnyFunc(fn, hz.reg)
}

// enqueue schedules a node for one visit, unless it is pruned by an
// audited //simlint:cold marker.
func (hz *hotzeroPass) enqueue(n *callgraph.Node) {
	if hz.seen[n] {
		return
	}
	hz.seen[n] = true
	if suppressed(hz.pass, n.Pos(), "cold") {
		return
	}
	hz.queue = append(hz.queue, n)
}

// report files one finding unless the site carries an audited
// //simlint:coldalloc marker.
func (hz *hotzeroPass) report(pos token.Pos, format string, args ...any) {
	if suppressed(hz.pass, pos, "coldalloc") {
		return
	}
	hz.pass.Reportf(pos, format, args...)
}

// visit certifies one reachable function body: follow its edges and
// scan it for allocating constructs.
func (hz *hotzeroPass) visit(n *callgraph.Node) {
	exempt := panicRanges(hz.pass.TypesInfo, n.Body())
	hz.scanEdges(n, exempt)
	hz.scanAllocs(n, exempt)
}

// scanEdges follows a node's out-edges: in-package targets join the
// walk; external targets must be certified; dispatch must be through a
// registered method; dynamic calls cannot be certified at all.
func (hz *hotzeroPass) scanEdges(n *callgraph.Node, exempt []posRange) {
	for _, e := range n.Out {
		if inRanges(exempt, e.Site.Pos()) {
			continue
		}
		switch e.Kind {
		case callgraph.Static, callgraph.Ref:
			// A method value binds its receiver into a heap closure
			// (a bare function value or literal reference does not).
			if e.Kind == callgraph.Ref && e.Callee != nil {
				if _, isSel := e.Site.(*ast.SelectorExpr); isSel {
					hz.report(e.Site.Pos(), "hot path: method value %s allocates its bound-receiver closure", e.Callee.Name())
				}
			}
			if e.Node != nil {
				hz.enqueue(e.Node)
				continue
			}
			if e.Callee == nil || hz.certified(e.Callee) {
				continue
			}
			hz.report(e.Site.Pos(), "hot path: call to uncertified function %s (register it in the hotzero tables or audit with //simlint:coldalloc)", qualified(e.Callee))
		case callgraph.Dispatch:
			if _, isSel := e.Site.(*ast.SelectorExpr); isSel {
				hz.report(e.Site.Pos(), "hot path: method value %s allocates its bound-receiver closure", e.Callee.Name())
			}
			if hotDispatchMethods[e.Callee.Name()] || matchAnyFunc(e.Callee, hz.reg) {
				continue
			}
			// Conservative fallback: the concrete callee is unknown, so
			// walk every in-package implementer — and still flag the
			// site, because out-of-package implementers stay unseen.
			for _, impl := range hz.graph.Implementers(e.Callee) {
				hz.enqueue(impl)
			}
			hz.report(e.Site.Pos(), "hot path: interface dispatch through unregistered method %s (register it in hotDispatchMethods or audit with //simlint:coldalloc)", e.Callee.Name())
		case callgraph.Dynamic:
			hz.report(e.Site.Pos(), "hot path: dynamic call through a function value cannot be certified (resolve it statically or audit with //simlint:coldalloc)")
		}
	}
}

// certified reports whether an out-of-graph callee is trusted: a pure
// stdlib function, a registered table entry, or a dispatch-method
// implementation (rooted and certified in its own package's run).
func (hz *hotzeroPass) certified(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if hotPureStdlib[pkg.Path()] {
		return true
	}
	if matchAnyFunc(fn, hz.reg) {
		return true
	}
	if hotDispatchMethods[fn.Name()] && inPackageSet(pkg.Path(), hotzeroPackageSuffixes) {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
	}
	return false
}

// qualified renders a callee for diagnostics: "pkg.Fn" or "pkg.T.Fn".
func qualified(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n, ok := namedType(sig.Recv().Type()); ok {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// ---- allocation scan ----

// scanAllocs walks one function body (not descending into nested
// function literals — those are separate nodes) and reports every
// construct that may heap-allocate.
func (hz *hotzeroPass) scanAllocs(n *callgraph.Node, exempt []posRange) {
	info := hz.pass.TypesInfo
	sig := nodeSignature(n, info)
	var walk func(ast.Node) bool
	walk = func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit:
			// Creating the closure is this node's allocation; the
			// literal's body belongs to the literal's own node.
			if v := capturedLocal(info, hz.pass.Pkg, x); v != nil {
				hz.report(x.Pos(), "hot path: closure captures %s and allocates", v.Name())
			}
			return false

		case *ast.CallExpr:
			if isPanicCall(info, x) {
				// Terminal path: the panic's argument subtree is exempt.
				return false
			}
			hz.callAllocs(x)
			return true

		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := unparen(x.X).(*ast.CompositeLit); ok {
					hz.report(x.Pos(), "hot path: &composite literal escapes to the heap")
				}
			}
			return true

		case *ast.CompositeLit:
			if t := info.TypeOf(x); t != nil {
				switch types.Unalias(t).Underlying().(type) {
				case *types.Slice:
					hz.report(x.Pos(), "hot path: slice literal allocates its backing array")
				case *types.Map:
					hz.report(x.Pos(), "hot path: map literal allocates")
				}
			}
			return true

		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := info.Types[x]; ok && tv.Value == nil && isStringType(tv.Type) {
					hz.report(x.Pos(), "hot path: string concatenation allocates")
				}
			}
			return true

		case *ast.AssignStmt:
			// := infers the variable's type from the operand, so only
			// plain assignment can box into a pre-declared interface.
			if x.Tok == token.ASSIGN && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					hz.boxingAt(info.TypeOf(x.Lhs[i]), x.Rhs[i], "assignment")
				}
			}
			return true

		case *ast.ValueSpec:
			if x.Type != nil {
				dst := info.TypeOf(x.Type)
				for _, v := range x.Values {
					hz.boxingAt(dst, v, "assignment")
				}
			}
			return true

		case *ast.ReturnStmt:
			if sig != nil && len(x.Results) == sig.Results().Len() {
				for i, r := range x.Results {
					hz.boxingAt(sig.Results().At(i).Type(), r, "return")
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(n.Body(), func(nd ast.Node) bool {
		if nd == nil {
			return false
		}
		if inRanges(exempt, nd.Pos()) {
			return false
		}
		return walk(nd)
	})
}

// callAllocs reports the allocations a single call expression implies:
// builtins (new/make/append), conversions (boxing, string<->bytes),
// argument boxing against the callee's signature, and variadic slices.
func (hz *hotzeroPass) callAllocs(call *ast.CallExpr) {
	info := hz.pass.TypesInfo
	fun := unparen(call.Fun)

	// Conversions: T(x).
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst := tv.Type
		hz.boxingAt(dst, call.Args[0], "conversion")
		src := info.TypeOf(call.Args[0])
		if stringBytesConversion(dst, src) {
			hz.report(call.Pos(), "hot path: string/[]byte conversion copies and allocates")
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "new":
				hz.report(call.Pos(), "hot path: new allocates")
			case "make":
				hz.report(call.Pos(), "hot path: make allocates")
			case "append":
				if len(call.Args) >= 2 {
					hz.report(call.Pos(), "hot path: append may grow its backing array")
				}
			}
			return
		}
	}

	// Ordinary calls: box-check each argument against the parameter
	// type, and flag the implicit variadic slice.
	sig, ok := types.Unalias(info.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				pt = sig.Params().At(np - 1).Type()
			} else if st, ok := types.Unalias(sig.Params().At(np - 1).Type()).Underlying().(*types.Slice); ok {
				pt = st.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		hz.boxingAt(pt, arg, "argument")
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) > np-1 {
		hz.report(call.Pos(), "hot path: variadic call allocates its argument slice")
	}
}

// boxingAt reports interface boxing: dst is an interface and the
// operand is a concrete value whose representation does not fit the
// interface data word. Pointer-shaped operands (pointers, chans, maps,
// funcs) and other interfaces convert without allocating; compile-time
// constants are boxed into static storage by the compiler.
func (hz *hotzeroPass) boxingAt(dst types.Type, src ast.Expr, what string) {
	if dst == nil {
		return
	}
	if _, ok := types.Unalias(dst).Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := hz.pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return
	}
	st := types.Unalias(tv.Type)
	switch st.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return
	}
	hz.report(src.Pos(), "hot path: %s boxes %s into an interface", what, types.TypeString(tv.Type, types.RelativeTo(hz.pass.Pkg)))
}

// ---- small helpers ----

type posRange struct{ from, to token.Pos }

func inRanges(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if pos >= r.from && pos < r.to {
			return true
		}
	}
	return false
}

// panicRanges collects the source ranges of panic(...) calls: code in
// them runs only on terminal paths and is exempt from hot-path rules.
func panicRanges(info *types.Info, body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPanicCall(info, call) {
			out = append(out, posRange{call.Pos(), call.End()})
			return false
		}
		return true
	})
	return out
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// nodeSignature returns the signature of the node's function, for
// return-statement boxing checks.
func nodeSignature(n *callgraph.Node, info *types.Info) *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	if tv, ok := info.Types[n.Lit]; ok {
		sig, _ := types.Unalias(tv.Type).(*types.Signature)
		return sig
	}
	return nil
}

// capturedLocal returns a function-local variable (or parameter) of an
// enclosing function that lit's body references, if any: capturing one
// forces the closure (and possibly the variable) onto the heap. A
// literal that touches only its own locals and package-level state is
// a static function value.
func capturedLocal(info *types.Info, pkg *types.Package, lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == pkg.Scope() || v.Pkg() == nil {
			return true // package-level state is shared, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v
			return false
		}
		return true
	})
	return captured
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func stringBytesConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}
