package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"triplea/internal/lint/analysis"
)

// Floateq flags == and != between floating-point operands in the
// packages whose numbers end up in reported tables (internal/metrics,
// internal/cost, internal/experiments).
//
// Exact float equality is almost never the intended predicate there:
// a ratio that is "the same" across two runs can still differ in the
// last ulp once an optimisation reassociates an accumulation, turning
// a stable report into a flapping one. Compare against a tolerance,
// or restructure sentinel checks as <= / >= range tests. Comparisons
// where both operands are compile-time constants are exact by
// definition and stay legal. Test files are exempt: asserting exact
// expected values against exactly-representable arithmetic is a
// legitimate testing idiom, and a tolerance there would weaken the
// test.
var Floateq = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between floating-point operands in metrics, cost, and experiments packages",
	Run:  runFloateq,
}

func runFloateq(pass *analysis.Pass) (any, error) {
	if pass.Pkg == nil || !inPackageSet(pass.Pkg.Path(), floatPackageSuffixes) {
		return nil, nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(info, bin.X) && !isFloatOperand(info, bin.Y) {
				return true
			}
			if isConst(info, bin.X) && isConst(info, bin.Y) {
				return true
			}
			pass.Reportf(bin.Pos(),
				"floating-point %s comparison in a reporting package; compare with a tolerance or use <=/>= range tests",
				bin.Op)
			return true
		})
	}
	return nil, nil
}

func isFloatOperand(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
