package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Globalrand,
		"gr",                    // global draws flagged, constructors allowed
		"triplea/internal/simx", // rng.go is the audited seed boundary: exempt
	)
}
