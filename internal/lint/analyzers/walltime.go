package analyzers

import (
	"go/ast"

	"triplea/internal/lint/analysis"
)

// wallClockFuncs are the package time functions that read or depend on
// the host's wall clock. Pure conversions and constants (time.Duration,
// time.Millisecond, ...) stay legal: they are deterministic values.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Walltime bans wall-clock access inside the simulation core.
//
// The engine's clock (simx.Engine.Now) is the only notion of time a
// simulation package may consult: one time.Now() in a latency model
// couples results to host scheduling and destroys the bit-identical
// rerun property every experiment depends on. Test files are exempt —
// measuring real elapsed time around a simulation is legitimate.
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock time (time.Now, time.Sleep, ...) in simulation packages",
	Run:  runWalltime,
}

func runWalltime(pass *analysis.Pass) (any, error) {
	if !isSimPackage(pass.Pkg) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := importedPackage(pass.TypesInfo, sel.X)
			if !ok || pkg.Path() != "time" || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"wall-clock time.%s in simulation package %s breaks reproducibility; use the simx.Engine clock",
				sel.Sel.Name, pass.Pkg.Name())
			return true
		})
	}
	return nil, nil
}
