package analyzers

import (
	"go/ast"
	"go/types"
	"maps"

	"triplea/internal/lint/analysis"
	"triplea/internal/lint/callgraph"
)

// Partsafe certifies the component-communication graph of the
// simulation core: every way one component package can reach another's
// mutable state must be a declared, audited edge.
//
// The ROADMAP's partitioned-simulation direction — one huge array run
// split per PCI-E switch subtree with conservative time-window
// synchronization — is only sound if no state is shared between
// subtrees except through the pcie links the time windows synchronize
// and the explicitly declared coordination services (simx engine,
// metrics registry, topo health, trace types). Triple-A's own
// architecture argument rests on the same property: autonomy per
// switch subtree, cross-subtree traffic only via the root complex.
// Until this analyzer that property was folklore; partsafe makes it a
// machine-checked invariant, the way poolsafe did for pooled-object
// ownership and hotzero did for hot-path allocation-freedom.
//
// Mechanics: callgraph.CollectRefs extracts every HOLD of a foreign
// component reference (struct field, package-level var, closure
// capture) and every WIRING or DISPATCH site (composite literal of a
// foreign component, store through a foreign component's field, call
// through a foreign interface method). Each reference P -> Q.T must
// match a row of componentEdges — the one-line-per-edge architecture
// manifest below — or the build fails at the offending wiring site.
// Pure value types (units quantities, topo addresses, timing structs)
// are exempt: copying them cannot couple two components (see
// callgraph.Stateful).
//
// On top of the manifest, a zone discipline orders the graph for
// partition-readiness. Every component package has a zone:
//
//	subtree — state that lives inside one switch subtree and would be
//	          owned by one partition (nand, fimm, cluster);
//	fabric  — the pcie links and switches cross-subtree traffic is
//	          serialized through: the partition cut points;
//	global  — array-wide coordination that exists once (array, core,
//	          ftl, fault);
//	service — passive leaf services every partition may use (simx,
//	          topo, metrics, trace): they reference no component.
//
// References may point down or sideways (global -> anything, subtree
// -> subtree/fabric/service, fabric -> service, service -> service)
// but never up: a subtree component holding a reference to the global
// coordination layer, or the fabric reaching into components, would
// let partition-local code touch cross-partition state behind the
// synchronization protocol's back. Upward references are rejected with
// a distinct diagnostic and cannot be registered — only restructured,
// or carried as an audited //simlint:edge escape while they are.
//
// The audited escape for a reference the manifest should not bless
// permanently is //simlint:edge on the site (or the line above). The
// verified graph is rendered by `make graph` (cmd/simgraph) as
// deterministic DOT + JSON artifacts in docs/graph/, with the partition
// cut set marked — see docs/architecture.md.
var Partsafe = &analysis.Analyzer{
	Name: "partsafe",
	Doc:  "certify the component-communication graph: every cross-package component reference must be a declared manifest edge, and references never point up the zone order (subtree -> global is forbidden)",
	Run:  runPartsafe,
}

// partsafePackageSuffixes is the component scope: the simulation core
// and the service packages it communicates through. internal/units is
// deliberately absent — it defines only pure value types, which are
// exempt from edge accounting anyway.
var partsafePackageSuffixes = []string{
	"internal/simx",
	"internal/nand",
	"internal/fimm",
	"internal/cluster",
	"internal/pcie",
	"internal/topo",
	"internal/ftl",
	"internal/core",
	"internal/array",
	"internal/fault",
	"internal/metrics",
	"internal/trace",
	"internal/decision",
}

// componentZones assigns each component package its partition zone.
var componentZones = map[string]string{
	"internal/nand":     "subtree",
	"internal/fimm":     "subtree",
	"internal/cluster":  "subtree",
	"internal/pcie":     "fabric",
	"internal/array":    "global",
	"internal/core":     "global",
	"internal/ftl":      "global",
	"internal/fault":    "global",
	"internal/simx":     "service",
	"internal/topo":     "service",
	"internal/metrics":  "service",
	"internal/trace":    "service",
	"internal/decision": "service",
}

// componentVias classifies what kind of channel a declared edge rides:
//
//	engine      — simx event scheduling and resource grants (each
//	              partition runs its own engine; never a cut)
//	fabric      — pcie packets/links/switches (THE cut: cross-subtree
//	              traffic serializes here)
//	containment — ownership of subordinate hardware within one subtree
//	              (cluster -> fimm -> nand); never crosses a subtree
//	construction— array-wide wiring done once at build/config time
//	control     — the global coordination layer steering subtree or
//	              fabric state at runtime (cut when partitioned)
//	registry    — the metrics registry/recorder sync service
//	health      — the topo availability registry sync service
//	trace       — workload records flowing through the host interface
//	result      — completion/timing values carried back by value
//	              (stateful only through their error field)
var componentVias = map[string]bool{
	"engine":       true,
	"fabric":       true,
	"containment":  true,
	"construction": true,
	"control":      true,
	"registry":     true,
	"health":       true,
	"trace":        true,
	"result":       true,
}

// ComponentEdge is one declared edge of the architecture manifest: the
// holding package From may reference the stateful type To.Type, over
// the Via channel class.
type ComponentEdge struct {
	From, To string // package-path suffixes
	Type     string // the referenced type's name
	Via      string // channel class (componentVias)
	Note     string // why the edge exists
}

// componentEdges is the architecture manifest: the full declared
// component-communication graph of the simulation core, one line per
// (holder, type) edge, grouped by holding package. Every cross-package
// component reference in the sim core must match a row here (or carry
// an audited //simlint:edge); cmd/simgraph fails if a row has no
// witnessing reference left, so the table cannot rot in either
// direction. Sourced from the array/topo construction code and audited
// for PR 9 — see docs/architecture.md for the rendered graph.
var componentEdges = []ComponentEdge{
	// internal/array (global): owns the wiring of the whole machine.
	{From: "internal/array", To: "internal/simx", Type: "Engine", Via: "engine", Note: "every array event schedules on the engine"},
	{From: "internal/array", To: "internal/simx", Type: "Resource", Via: "engine", Note: "root-complex DMA slots are an engine resource"},
	{From: "internal/array", To: "internal/pcie", Type: "RootComplex", Via: "fabric", Note: "host-side injection point for downstream packets"},
	{From: "internal/array", To: "internal/pcie", Type: "Switch", Via: "fabric", Note: "per-subtree switches wired at construction"},
	{From: "internal/array", To: "internal/pcie", Type: "Link", Via: "fabric", Note: "up/down links per switch and endpoint"},
	{From: "internal/array", To: "internal/pcie", Type: "Packet", Via: "fabric", Note: "packets filled for downstream submission"},
	{From: "internal/array", To: "internal/pcie", Type: "Pool", Via: "fabric", Note: "packet free-list shared with the fabric"},
	{From: "internal/array", To: "internal/cluster", Type: "Endpoint", Via: "control", Note: "SSD-cluster endpoints the array steers"},
	{From: "internal/array", To: "internal/cluster", Type: "Command", Via: "control", Note: "flash commands the array fills and retires"},
	{From: "internal/array", To: "internal/cluster", Type: "CommandPool", Via: "control", Note: "command free-list shared with endpoints"},
	{From: "internal/array", To: "internal/cluster", Type: "OpResult", Via: "result", Note: "completion results carried back by value"},
	{From: "internal/array", To: "internal/cluster", Type: "Params", Via: "construction", Note: "endpoint build parameters"},
	{From: "internal/array", To: "internal/ftl", Type: "FTL", Via: "control", Note: "mapping/GC brain consulted on every host op"},
	{From: "internal/array", To: "internal/ftl", Type: "GCPlan", Via: "control", Note: "GC plans executed step by step"},
	{From: "internal/array", To: "internal/metrics", Type: "Recorder", Via: "registry", Note: "per-run metrics sink"},
	{From: "internal/array", To: "internal/topo", Type: "Health", Via: "health", Note: "availability registry consulted and updated"},
	{From: "internal/array", To: "internal/decision", Type: "Recorder", Via: "trace", Note: "decision flight recorder (nil when off)"},

	// internal/core (global): the autonomic manager above the array.
	{From: "internal/core", To: "internal/array", Type: "Array", Via: "control", Note: "the manager drives the array it monitors"},
	{From: "internal/core", To: "internal/array", Type: "Hooks", Via: "control", Note: "implements the array's observation hooks"},
	{From: "internal/core", To: "internal/decision", Type: "Recorder", Via: "trace", Note: "records migration/reshape/redirect decisions"},

	// internal/fault (global): scripted failure injection.
	{From: "internal/fault", To: "internal/array", Type: "Array", Via: "control", Note: "fault scripts flip array state"},
	{From: "internal/fault", To: "internal/decision", Type: "Recorder", Via: "trace", Note: "records evacuation destination choices"},

	// internal/ftl (global): address translation and GC planning.
	{From: "internal/ftl", To: "internal/topo", Type: "Health", Via: "health", Note: "plans around failed planes"},
	{From: "internal/ftl", To: "internal/decision", Type: "Recorder", Via: "trace", Note: "records GC victim selections"},

	// internal/decision (service): the flight recorder itself.
	{From: "internal/decision", To: "internal/metrics", Type: "Histogram", Via: "registry", Note: "streaming regret histograms per family"},

	// internal/cluster (subtree): one SSD-cluster endpoint.
	{From: "internal/cluster", To: "internal/simx", Type: "Engine", Via: "engine", Note: "endpoint pipeline stages schedule on the engine"},
	{From: "internal/cluster", To: "internal/simx", Type: "Resource", Via: "engine", Note: "bus/staging/HAL/write-buffer stage resources"},
	{From: "internal/cluster", To: "internal/simx", Type: "Grantee", Via: "engine", Note: "implements the resource-grant callback"},
	{From: "internal/cluster", To: "internal/simx", Type: "Handler", Via: "engine", Note: "implements the event callback"},
	{From: "internal/cluster", To: "internal/fimm", Type: "FIMM", Via: "containment", Note: "flash interface modules inside the endpoint"},
	{From: "internal/cluster", To: "internal/fimm", Type: "Done", Via: "containment", Note: "implements fimm's completion callback"},
	{From: "internal/cluster", To: "internal/pcie", Type: "Link", Via: "fabric", Note: "upstream link completions return on"},
	{From: "internal/cluster", To: "internal/pcie", Type: "Packet", Via: "fabric", Note: "completion packets built for the upstream link"},
	{From: "internal/cluster", To: "internal/pcie", Type: "Pool", Via: "fabric", Note: "packet free-list shared with the fabric"},
	{From: "internal/cluster", To: "internal/pcie", Type: "Receiver", Via: "fabric", Note: "implements packet delivery from the fabric"},
	{From: "internal/cluster", To: "internal/pcie", Type: "Accepted", Via: "fabric", Note: "implements the flow-control accept callback"},

	// internal/fimm (subtree): flash interface module.
	{From: "internal/fimm", To: "internal/nand", Type: "Package", Via: "containment", Note: "NAND packages behind the channel"},
	{From: "internal/fimm", To: "internal/simx", Type: "Engine", Via: "engine", Note: "channel arbitration schedules on the engine"},
	{From: "internal/fimm", To: "internal/simx", Type: "Resource", Via: "engine", Note: "the shared channel is an engine resource"},

	// internal/nand (subtree): package/die/plane timing model.
	{From: "internal/nand", To: "internal/simx", Type: "Engine", Via: "engine", Note: "die operations schedule on the engine"},
	{From: "internal/nand", To: "internal/simx", Type: "Resource", Via: "engine", Note: "per-die occupancy is an engine resource"},

	// internal/pcie (fabric): links, switches, root complex.
	{From: "internal/pcie", To: "internal/simx", Type: "Engine", Via: "engine", Note: "wire transfers schedule on the engine"},
	{From: "internal/pcie", To: "internal/simx", Type: "Resource", Via: "engine", Note: "link occupancy is an engine resource"},
}

// ---- the analyzer ----

func runPartsafe(pass *analysis.Pass) (any, error) {
	if pass.Pkg == nil || !inPackageSet(pass.Pkg.Path(), partsafePackageSuffixes) {
		return nil, nil
	}
	refs := callgraph.CollectRefs(pass.Pkg, pass.TypesInfo, pass.Files,
		func(f *ast.File) bool { return isTestFile(pass, f.Pos()) },
		IsComponentType)
	from := pass.Pkg.Path()
	for _, r := range refs {
		if suppressed(pass, r.Pos, "edge") {
			continue
		}
		to := r.To.Pkg().Path()
		if EdgeRegistered(from, to, r.To.Name()) {
			continue
		}
		fz, tz := zoneOf(from), zoneOf(to)
		if !ZoneAllowed(fz, tz) {
			pass.Reportf(r.Pos,
				"partsafe: %s (%s %s zone) reaches up to %s.%s (%s zone): partition-local code must not hold coordination-layer state — invert the dependency (callback interface declared on the low side) or audit with //simlint:edge",
				r.Site, pass.Pkg.Name(), fz, r.To.Pkg().Name(), r.To.Name(), tz)
			continue
		}
		pass.Reportf(r.Pos,
			"partsafe: undeclared component edge %s -> %s.%s (%s): register it in the componentEdges manifest or audit with //simlint:edge",
			pass.Pkg.Name(), r.To.Pkg().Name(), r.To.Name(), r.Site)
	}
	return nil, nil
}

// ---- shared policy surface (cmd/simgraph builds the artifacts from
// the same tables and predicates the analyzer enforces) ----

// IsComponentType reports whether tn is a component type for partsafe:
// a named type declared in one of the component-scope packages.
func IsComponentType(tn *types.TypeName) bool {
	return tn != nil && tn.Pkg() != nil &&
		inPackageSet(tn.Pkg().Path(), partsafePackageSuffixes)
}

// EdgeRegistered reports whether the manifest declares the edge from
// the holding package to the named type. Suffix matching lets analyzer
// testdata fakes register alongside the real packages.
func EdgeRegistered(fromPath, toPath, typeName string) bool {
	for _, e := range componentEdges {
		if e.Type == typeName && hasPathSuffix(fromPath, e.From) && hasPathSuffix(toPath, e.To) {
			return true
		}
	}
	return false
}

// zoneOf resolves a package path to its component zone ("" if the
// package is outside the component scope).
func zoneOf(path string) string {
	for suffix, z := range componentZones {
		if hasPathSuffix(path, suffix) {
			return z
		}
	}
	return ""
}

// ZoneAllowed reports whether a reference from zone fz to zone tz
// points down or sideways in the partition order. Everything may use
// the service leaves; only the global coordination layer may reach
// into subtree and fabric state; nothing reaches up.
func ZoneAllowed(fz, tz string) bool {
	switch fz {
	case "global":
		return true
	case "fabric":
		return tz == "fabric" || tz == "service"
	case "subtree":
		return tz == "subtree" || tz == "fabric" || tz == "service"
	case "service":
		return tz == "service"
	}
	return true // outside the zone map: the manifest check already ran
}

// ComponentScope returns the component-package suffixes (copy).
func ComponentScope() []string {
	return append([]string(nil), partsafePackageSuffixes...)
}

// ComponentZones returns the package-zone table (copy).
func ComponentZones() map[string]string {
	return maps.Clone(componentZones)
}

// ComponentEdges returns the declared architecture manifest (copy).
func ComponentEdges() []ComponentEdge {
	return append([]ComponentEdge(nil), componentEdges...)
}

// ComponentVia reports whether via is a known channel class.
func ComponentVia(via string) bool { return componentVias[via] }
