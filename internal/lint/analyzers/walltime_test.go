package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Walltime,
		"triplea/internal/nand", // sim package: violations reported, _test.go exempt
		"tools/bench",           // non-sim package: wall clock allowed
	)
}
