package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Exhaustive, "ex")
}

func TestExhaustiveEnumDefiningPackageClean(t *testing.T) {
	// The fixture enum package's own String() switches cover every
	// constant, so the defining package itself is clean.
	analysistest.Run(t, "testdata", analyzers.Exhaustive, "triplea/internal/enums")
}
