package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"triplea/internal/lint/analysis"
)

// Exhaustive requires every switch over a simulator enum to cover all
// of the enum's declared constants, or to carry a default clause
// audited with //simlint:partial.
//
// The simulator's behavior forks on small closed enums everywhere —
// trace.Op, cluster.Op, nand.Op, nand.PageState, pcie.Kind,
// metrics.RequestKind, ftl.Layout, ftl.WriteKind, core.LaggardStrategy,
// nand.TimingMode. Adding a constant to one of them (a new op kind, a
// new write source) must break `go vet`, not fall silently into a
// default arm that counts it as something else.
//
// An enum, for this rule, is any named integer type defined in one of
// the repository's internal packages with at least two package-level
// constants of that type. The unit-quantity types (internal/units,
// simx.Time, topo.PPN) are excluded — their constants are units, not
// alternatives. A switch with a non-constant case expression is left
// alone (it is a comparison, not an enumeration), as are tagless
// switches. Test files are exempt.
var Exhaustive = &analysis.Analyzer{
	Name: "exhaustive",
	Doc:  "require switches over simulator enums to cover every declared constant or carry an audited //simlint:partial default",
	Run:  runExhaustive,
}

func runExhaustive(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkExhaustiveSwitch(pass, info, sw)
			return true
		})
	}
	return nil, nil
}

func checkExhaustiveSwitch(pass *analysis.Pass, info *types.Info, sw *ast.SwitchStmt) {
	named, ok := namedType(info.TypeOf(sw.Tag))
	if !ok {
		return
	}
	if !isRepoEnumType(named) {
		return
	}
	declared := enumConstants(named)
	if len(declared) < 2 {
		return
	}

	covered := map[int64]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, expr := range cc.List {
			tv, ok := info.Types[expr]
			if !ok || tv.Value == nil {
				return // non-constant case: a comparison, not an enumeration
			}
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				covered[v] = true
			}
		}
	}

	var missing []string
	for _, c := range declared {
		if !covered[c.value] {
			missing = append(missing, c.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	if defaultClause != nil &&
		(suppressed(pass, defaultClause.Pos(), "partial") || suppressed(pass, sw.Pos(), "partial")) {
		return
	}
	typeName := named.Obj().Name()
	if pkg := named.Obj().Pkg(); pkg != nil && pkg != pass.Pkg {
		typeName = pkg.Name() + "." + typeName
	}
	if defaultClause != nil {
		pass.Reportf(sw.Pos(),
			"switch over %s does not cover %s; add the cases or audit the default with //simlint:partial",
			typeName, strings.Join(missing, ", "))
		return
	}
	pass.Reportf(sw.Pos(),
		"switch over %s does not cover %s and has no default; add the cases or an audited //simlint:partial default",
		typeName, strings.Join(missing, ", "))
}

// isRepoEnumType reports whether named is an enum candidate: an
// integer-kinded named type defined in a repository internal package,
// excluding the unit-quantity types.
func isRepoEnumType(named *types.Named) bool {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if !strings.Contains(path, "internal/") && !strings.HasPrefix(path, "internal") {
		return false
	}
	if _, isUnit := unitTypeName(named); isUnit {
		return false
	}
	if inPackageSet(path, unitDefiningPackages) {
		return false
	}
	b, ok := named.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

type enumConst struct {
	name  string
	value int64
}

// enumConstants lists the package-level constants of type named
// declared in its defining package, deduplicated by value (aliases
// like an explicit OpDefault = OpRead count once), in declaration
// position order.
func enumConstants(named *types.Named) []enumConst {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	seen := map[int64]bool{}
	var out []enumConst
	var poses []token.Pos
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if !types.Identical(c.Type(), named) {
			continue
		}
		v, exact := constant.Int64Val(constant.ToInt(c.Val()))
		if !exact || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, enumConst{name: name, value: v})
		poses = append(poses, c.Pos())
	}
	sort.Sort(&byPos{out, poses})
	return out
}

type byPos struct {
	consts []enumConst
	poses  []token.Pos
}

func (b *byPos) Len() int           { return len(b.consts) }
func (b *byPos) Less(i, j int) bool { return b.poses[i] < b.poses[j] }
func (b *byPos) Swap(i, j int) {
	b.consts[i], b.consts[j] = b.consts[j], b.consts[i]
	b.poses[i], b.poses[j] = b.poses[j], b.poses[i]
}
