package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"triplea/internal/lint/analysis"
)

// Nospawn keeps the simulation core single-threaded. The engine is a
// deterministic discrete-event simulator: one goroutine pops one event
// at a time off one heap, and every result table is reproducible
// because of it. A `go` statement, a channel operation, or a
// sync/sync.atomic primitive inside a simulation package introduces
// scheduling nondeterminism the rest of the suite cannot see — the
// race detector proves absence of data races, not absence of
// order-dependent results.
//
// Banned repo-wide: go statements, channel sends, receives, selects,
// ranging over a channel, make(chan) and close, and importing sync or
// sync/atomic. The one carve-out is the audited orchestration scope
// (internal/sweep), which nospawn delegates to isosafe's stricter
// capture- and handoff-aware rules rather than exempting blindly —
// concurrency is not merely absent from the sim core, it is confined
// to a package whose every goroutine, capture, and channel element is
// certified. Test files are exempt (driving a simulation from a
// test's timeout goroutine is fine). An audited escape is silenced
// with //simlint:nospawn.
var Nospawn = &analysis.Analyzer{
	Name: "nospawn",
	Doc:  "confine goroutines, channels, and sync primitives to the isosafe-certified orchestration scope",
	Run:  runNospawn,
}

func runNospawn(pass *analysis.Pass) (any, error) {
	if pass.Pkg == nil || inPackageSet(pass.Pkg.Path(), orchestrationPackageSuffixes) {
		return nil, nil // isosafe's jurisdiction
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				if !suppressed(pass, imp.Pos(), "nospawn") {
					pass.Reportf(imp.Pos(),
						"import of %s in package %s: concurrency is confined to the audited orchestration scope (internal/sweep)",
						path, pass.Pkg.Name())
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				reportNospawn(pass, n.Pos(), "go statement")
			case *ast.SelectStmt:
				reportNospawn(pass, n.Pos(), "select statement")
			case *ast.SendStmt:
				reportNospawn(pass, n.Pos(), "channel send")
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					reportNospawn(pass, n.Pos(), "channel receive")
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						reportNospawn(pass, n.Pos(), "range over a channel")
					}
				}
			case *ast.CallExpr:
				checkNospawnCall(pass, info, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkNospawnCall flags make(chan ...) and close(ch).
func checkNospawnCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	switch id.Name {
	case "make":
		if len(call.Args) >= 1 {
			if t := info.TypeOf(call.Args[0]); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					reportNospawn(pass, call.Pos(), "make of a channel")
				}
			}
		}
	case "close":
		if len(call.Args) == 1 {
			if t := info.TypeOf(call.Args[0]); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					reportNospawn(pass, call.Pos(), "close of a channel")
				}
			}
		}
	}
}

func reportNospawn(pass *analysis.Pass, pos token.Pos, what string) {
	if suppressed(pass, pos, "nospawn") {
		return
	}
	pass.Reportf(pos,
		"%s outside the orchestration scope (internal/sweep) breaks the single-threaded deterministic contract; fan out through the isosafe-certified sweep pool instead",
		what)
}
