package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

// TestPartsafe pins the analyzer against a self-contained fixture
// module (testdata/src/pt): registered edges pass silently, undeclared
// edges are diagnosed at the holding site (fields, embedded fields,
// captures, stores, composite literals, interface dispatch), stateless
// value types are exempt, //simlint:edge audits a site, and an upward
// zone reference gets its distinct diagnostic.
func TestPartsafe(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Partsafe,
		"pt/internal/simx",
		"pt/internal/pcie",
		"pt/internal/array",
		"pt/internal/cluster",
	)
}

// TestComponentManifestConsistent keeps the architecture manifest
// well-formed independently of any source it is checked against: no
// duplicate rows, no self-edges, every endpoint in the component
// scope, every via a known channel class, and no row that would bless
// an upward zone reference (those must be restructured, not declared).
func TestComponentManifestConsistent(t *testing.T) {
	scope := make(map[string]bool)
	for _, s := range analyzers.ComponentScope() {
		scope[s] = true
	}
	zones := analyzers.ComponentZones()
	type key struct{ from, to, typ string }
	seen := make(map[key]bool)
	for _, e := range analyzers.ComponentEdges() {
		k := key{e.From, e.To, e.Type}
		if seen[k] {
			t.Errorf("duplicate manifest row %s -> %s.%s", e.From, e.To, e.Type)
		}
		seen[k] = true
		if e.From == e.To {
			t.Errorf("self-edge %s -> %s.%s: in-package references are not edges", e.From, e.To, e.Type)
		}
		if !scope[e.From] {
			t.Errorf("manifest row %s -> %s.%s: From outside the component scope", e.From, e.To, e.Type)
		}
		if !scope[e.To] {
			t.Errorf("manifest row %s -> %s.%s: To outside the component scope", e.From, e.To, e.Type)
		}
		if !analyzers.ComponentVia(e.Via) {
			t.Errorf("manifest row %s -> %s.%s: unknown via %q", e.From, e.To, e.Type, e.Via)
		}
		if e.Note == "" {
			t.Errorf("manifest row %s -> %s.%s: missing note", e.From, e.To, e.Type)
		}
		if !analyzers.ZoneAllowed(zones[e.From], zones[e.To]) {
			t.Errorf("manifest row %s -> %s.%s points up the zone order (%s -> %s): restructure instead of declaring",
				e.From, e.To, e.Type, zones[e.From], zones[e.To])
		}
	}
}

// TestComponentZonesCoverScope: every scope package has a zone and
// every zoned package is in scope.
func TestComponentZonesCoverScope(t *testing.T) {
	zones := analyzers.ComponentZones()
	for _, s := range analyzers.ComponentScope() {
		if zones[s] == "" {
			t.Errorf("scope package %s has no zone", s)
		}
	}
	if got, want := len(zones), len(analyzers.ComponentScope()); got != want {
		t.Errorf("zone table has %d entries, scope has %d", got, want)
	}
}
