package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

func TestNospawn(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Nospawn, "triplea/internal/fimm")
}

func TestNospawnExemptOutsideSimPackages(t *testing.T) {
	// The reporting/CLI layer is free to use concurrency; a package
	// off the simulation-core path produces no findings.
	analysistest.Run(t, "testdata", analyzers.Nospawn, "other")
}
