package analyzers_test

import (
	"testing"

	"triplea/internal/lint/analysistest"
	"triplea/internal/lint/analyzers"
)

func TestNospawn(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Nospawn, "triplea/internal/fimm")
}

func TestNospawnDelegatesOrchestrationScope(t *testing.T) {
	// internal/sweep is isosafe's jurisdiction: nospawn reports nothing
	// there even though the package is built out of goroutines and
	// channels. Packages with no concurrency at all (other) are clean
	// under the repo-wide ban.
	analysistest.Run(t, "testdata", analyzers.Nospawn,
		"sweepok/internal/sweep", "other")
}
