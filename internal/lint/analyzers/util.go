// Package analyzers implements simlint's simulator-specific rules.
// Every rule serves one requirement from the paper's evaluation: a
// simulation run must be fully reproducible for a given input, so the
// figures and tables in EXPERIMENTS.md can be regenerated bit-for-bit.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"triplea/internal/lint/analysis"
)

// simPackageSuffixes lists the packages forming the deterministic
// simulation core. Wall-clock time is banned inside them (walltime)
// and event-order hazards are policed there (maporder).
var simPackageSuffixes = []string{
	"internal/simx",
	"internal/nand",
	"internal/fimm",
	"internal/cluster",
	"internal/pcie",
	"internal/ftl",
	"internal/array",
	"internal/core",
	"internal/fault",
}

// isoStatePackageSuffixes extends the simulation core with its pure
// data/support packages; isosafe's mutable-global rule covers all of
// them, because a run is only repeatable if nothing it reads can be
// written by a concurrent sibling run.
var isoStatePackageSuffixes = append([]string{
	"internal/topo",
	"internal/workload",
	"internal/metrics",
	"internal/trace",
}, simPackageSuffixes...)

// orchestrationPackageSuffixes is the one scope where concurrency is
// legal: nospawn skips it and isosafe certifies it under stricter,
// capture- and handoff-aware rules.
var orchestrationPackageSuffixes = []string{
	"internal/sweep",
}

// floatPackageSuffixes lists the packages whose floating-point
// arithmetic feeds reported numbers (floateq's scope).
var floatPackageSuffixes = []string{
	"internal/metrics",
	"internal/cost",
	"internal/experiments",
}

// hasPathSuffix reports whether the import path is exactly suffix or
// ends in "/"+suffix (so "triplea/internal/simx" matches
// "internal/simx" but "internal/simxtra" does not).
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func inPackageSet(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

// isSimPackage reports whether pkg belongs to the simulation core.
func isSimPackage(pkg *types.Package) bool {
	return pkg != nil && inPackageSet(pkg.Path(), simPackageSuffixes)
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Filename(pos), "_test.go")
}

// importedPackage resolves a selector base expression to the package
// it names, if the expression is a package qualifier (e.g. the `time`
// in `time.Now`).
func importedPackage(info *types.Info, expr ast.Expr) (*types.Package, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return nil, false
	}
	return pn.Imported(), true
}

// namedType unwraps t (through pointers and aliases) to a named type,
// if it is one.
func namedType(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// isNamed reports whether t is the named type pkgSuffix.name, where
// pkgSuffix is matched against the end of the defining package's path
// (so fake packages in analyzer testdata qualify alongside the real
// ones).
func isNamed(t types.Type, pkgSuffix, name string) bool {
	n, ok := namedType(t)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return hasPathSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isSimxTime reports whether t is simx.Time.
func isSimxTime(t types.Type) bool {
	return isNamed(t, "internal/simx", "Time") || isNamed(t, "simx", "Time")
}

// isDuration reports whether t is time.Duration.
func isDuration(t types.Type) bool { return isNamed(t, "time", "Duration") }

// suppressed reports whether the line holding pos, or the line just
// above it, carries a "//simlint:<marker>" comment — the audited-site
// escape hatch (see docs/static-analysis.md).
func suppressed(pass *analysis.Pass, pos token.Pos, marker string) bool {
	file := pass.FileAt(pos)
	if file == nil {
		return false
	}
	line := pass.Fset.Position(pos).Line
	want := "simlint:" + marker
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			cl := pass.Fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			if strings.Contains(text, want) {
				return true
			}
		}
	}
	return false
}

// baseFilename reports the basename of the file holding pos.
func baseFilename(pass *analysis.Pass, pos token.Pos) string {
	return filepath.Base(pass.Filename(pos))
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// All returns the full simlint analyzer suite in a stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Walltime,
		Globalrand,
		Maporder,
		Floateq,
		Simtime,
		Units,
		Exhaustive,
		Nospawn,
		Poolsafe,
		Isosafe,
	}
}
