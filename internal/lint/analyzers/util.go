// Package analyzers implements simlint's simulator-specific rules.
// Every rule serves one requirement from the paper's evaluation: a
// simulation run must be fully reproducible for a given input, so the
// figures and tables in EXPERIMENTS.md can be regenerated bit-for-bit.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"triplea/internal/lint/analysis"
)

// simPackageSuffixes lists the packages forming the deterministic
// simulation core. Wall-clock time is banned inside them (walltime)
// and event-order hazards are policed there (maporder).
var simPackageSuffixes = []string{
	"internal/simx",
	"internal/nand",
	"internal/fimm",
	"internal/cluster",
	"internal/pcie",
	"internal/ftl",
	"internal/array",
	"internal/core",
	"internal/fault",
}

// isoStatePackageSuffixes extends the simulation core with its pure
// data/support packages; isosafe's mutable-global rule covers all of
// them, because a run is only repeatable if nothing it reads can be
// written by a concurrent sibling run.
var isoStatePackageSuffixes = append([]string{
	"internal/topo",
	"internal/workload",
	"internal/metrics",
	"internal/trace",
	"internal/decision",
}, simPackageSuffixes...)

// orchestrationPackageSuffixes is the one scope where concurrency is
// legal: nospawn skips it and isosafe certifies it under stricter,
// capture- and handoff-aware rules.
var orchestrationPackageSuffixes = []string{
	"internal/sweep",
}

// floatPackageSuffixes lists the packages whose floating-point
// arithmetic feeds reported numbers (floateq's scope).
var floatPackageSuffixes = []string{
	"internal/metrics",
	"internal/cost",
	"internal/experiments",
}

// hasPathSuffix reports whether the import path is exactly suffix or
// ends in "/"+suffix (so "triplea/internal/simx" matches
// "internal/simx" but "internal/simxtra" does not).
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func inPackageSet(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

// isSimPackage reports whether pkg belongs to the simulation core.
func isSimPackage(pkg *types.Package) bool {
	return pkg != nil && inPackageSet(pkg.Path(), simPackageSuffixes)
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Filename(pos), "_test.go")
}

// importedPackage resolves a selector base expression to the package
// it names, if the expression is a package qualifier (e.g. the `time`
// in `time.Now`).
func importedPackage(info *types.Info, expr ast.Expr) (*types.Package, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return nil, false
	}
	return pn.Imported(), true
}

// namedType unwraps t (through pointers and aliases) to a named type,
// if it is one.
func namedType(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// isNamed reports whether t is the named type pkgSuffix.name, where
// pkgSuffix is matched against the end of the defining package's path
// (so fake packages in analyzer testdata qualify alongside the real
// ones).
func isNamed(t types.Type, pkgSuffix, name string) bool {
	n, ok := namedType(t)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return hasPathSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isSimxTime reports whether t is simx.Time.
func isSimxTime(t types.Type) bool {
	return isNamed(t, "internal/simx", "Time") || isNamed(t, "simx", "Time")
}

// isDuration reports whether t is time.Duration.
func isDuration(t types.Type) bool { return isNamed(t, "time", "Duration") }

// ---- registration-table plumbing ----
//
// The table-driven analyzers (poolsafe, isosafe, hotzero) each declare
// their policy as one or more tables of qualified names; the matching
// machinery below is shared so a registration means the same thing in
// every table.

// funcRef names a function or method: the defining package's path
// suffix, the receiver type name ("" for package-level functions), and
// the function name. Suffix matching lets analyzer testdata fakes
// ("triplea/internal/pcie") register alongside the real packages.
type funcRef struct {
	pkg  string
	recv string
	name string
}

// matchFunc reports whether fn is the function funcRef names.
func matchFunc(fn *types.Func, ref funcRef) bool {
	if fn == nil || fn.Name() != ref.name {
		return false
	}
	if fn.Pkg() == nil || !hasPathSuffix(fn.Pkg().Path(), ref.pkg) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	recv := sig.Recv()
	if ref.recv == "" {
		return recv == nil
	}
	if recv == nil {
		return false
	}
	n, ok := namedType(recv.Type())
	if !ok {
		// Methods on unnamed receivers (embedded interface literals)
		// have nothing to match a registration against.
		return false
	}
	return n.Obj().Name() == ref.recv
}

// matchAnyFunc reports whether fn matches any entry of a table.
func matchAnyFunc(fn *types.Func, table []funcRef) bool {
	for _, r := range table {
		if matchFunc(fn, r) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function or method of a call, if it
// is statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// receiverExpr returns the receiver/package part of a call's selector,
// if any, so its uses are recorded.
func receiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// isBuiltinAppend reports whether a call is the append builtin with at
// least one appended element.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return false
	}
	if obj := info.Uses[id]; obj != nil {
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	return true
}

// namedStrict is like isNamed but does NOT unwrap pointers:
// *array.Config is a shared reference, not a registered value type.
func namedStrict(t types.Type, pkgSuffix, name string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Name() == name &&
		hasPathSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isRegisteredNamed reports whether t (without pointer unwrapping)
// matches any {package-suffix, type-name} pair of a registry table.
func isRegisteredNamed(t types.Type, table [][2]string) bool {
	for _, r := range table {
		if namedStrict(t, r[0], r[1]) {
			return true
		}
	}
	return false
}

// pkgLevelVar resolves the base of an lvalue chain (selectors, indexes,
// derefs) to a package-level var, if that is what it roots in.
func pkgLevelVar(info *types.Info, e ast.Expr) *types.Var {
	for e != nil {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if _, ok := importedPackage(info, x.X); ok {
				e = x.Sel
			} else {
				e = x.X
			}
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

// suppressed reports whether the line holding pos, or the line just
// above it, carries a "//simlint:<marker>" comment — the audited-site
// escape hatch (see docs/static-analysis.md). The marker must end at a
// token boundary, so "simlint:cold" does not match "simlint:coldalloc".
func suppressed(pass *analysis.Pass, pos token.Pos, marker string) bool {
	return MarkerNear(pass.Fset, pass.FileAt(pos), pos, marker)
}

// MarkerNear reports whether the line holding pos, or the line just
// above it, carries a "//simlint:<marker>" comment in file. Exported
// so whole-repo tools outside a vet run (cmd/simgraph) apply the same
// audited-site convention the analyzers do.
func MarkerNear(fset *token.FileSet, file *ast.File, pos token.Pos, marker string) bool {
	if file == nil {
		return false
	}
	line := fset.Position(pos).Line
	want := "simlint:" + marker
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			cl := fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			if markerAt(text, want) {
				return true
			}
		}
	}
	return false
}

// markerAt reports whether text contains want followed by a token
// boundary (end of text or a non-identifier character).
func markerAt(text, want string) bool {
	for at := 0; ; {
		i := strings.Index(text[at:], want)
		if i < 0 {
			return false
		}
		end := at + i + len(want)
		if end == len(text) || !isIdentChar(text[end]) {
			return true
		}
		at = end
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// baseFilename reports the basename of the file holding pos.
func baseFilename(pass *analysis.Pass, pos token.Pos) string {
	return filepath.Base(pass.Filename(pos))
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// All returns the full simlint analyzer suite in a stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Walltime,
		Globalrand,
		Maporder,
		Floateq,
		Simtime,
		Units,
		Exhaustive,
		Nospawn,
		Poolsafe,
		Isosafe,
		Hotzero,
		Partsafe,
	}
}
