package srcload

import (
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the package directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestModulePath(t *testing.T) {
	got, err := ModulePath(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if got != "triplea" {
		t.Fatalf("module path = %q, want triplea", got)
	}
}

func TestLoadTypeChecksWithDependencies(t *testing.T) {
	l := New(moduleRoot(t), "triplea")
	// internal/cluster pulls in fimm, nand, pcie, simx, topo, units —
	// a representative slice of the module-internal import DAG plus
	// stdlib imports through the source importer.
	p, err := l.Load("triplea/internal/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if p.Pkg.Name() != "cluster" {
		t.Fatalf("package name = %q, want cluster", p.Pkg.Name())
	}
	if len(p.Files) == 0 {
		t.Fatal("no files loaded")
	}
	for _, f := range p.Files {
		name := l.Fset().Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s loaded into the build", name)
		}
	}
	// Loading again returns the cached package, same pointer.
	again, err := l.Load("triplea/internal/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if again != p {
		t.Error("second Load did not return the cached package")
	}
}

// TestBuildTagSelection: the simcheck on/off file pair in
// internal/simx must resolve the same way a `go build` with the same
// tags resolves it — exactly one of the two variants per load.
func TestBuildTagSelection(t *testing.T) {
	has := func(l *Loader, pkgPath, base string) bool {
		p, err := l.Load(pkgPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range p.Files {
			if filepath.Base(l.Fset().Position(f.Pos()).Filename) == base {
				return true
			}
		}
		return false
	}
	root := moduleRoot(t)

	off := New(root, "triplea")
	if has(off, "triplea/internal/simx", "simcheck_on.go") {
		t.Error("default build included simcheck_on.go")
	}
	if !has(off, "triplea/internal/simx", "simcheck_off.go") {
		t.Error("default build missed simcheck_off.go")
	}

	on := New(root, "triplea", "simcheck")
	if !has(on, "triplea/internal/simx", "simcheck_on.go") {
		t.Error("simcheck build missed simcheck_on.go")
	}
	if has(on, "triplea/internal/simx", "simcheck_off.go") {
		t.Error("simcheck build included simcheck_off.go")
	}
}

func TestLoadRejectsForeignPath(t *testing.T) {
	l := New(moduleRoot(t), "triplea")
	if _, err := l.Load("example.com/not/ours"); err == nil {
		t.Fatal("loading a non-module path should fail")
	}
}
