// Package srcload parses and type-checks this repository's own
// packages from source, using only the standard library. It exists for
// whole-repo tools that need type information outside a `go vet` run —
// cmd/simgraph renders the certified component-communication graph
// from it — where the per-package analysis framework
// (internal/lint/analysis) cannot help because no driver is feeding it
// packages.
//
// Resolution is deliberately minimal, matching what the repository
// actually is: module-internal import paths load from the module tree,
// everything else is delegated to the standard library's source
// importer (the toolchain ships no pre-compiled export data, so the
// gc importer would come up empty). Test files are always excluded;
// build-constrained files (//go:build) are evaluated against the
// current GOOS/GOARCH plus any extra tags supplied by the caller, so
// e.g. the simcheck on/off file pairs resolve the same way a default
// `go build` resolves them.
package srcload

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("triplea/internal/array")
	Dir   string // absolute source directory
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File // non-test, build-included files, name-sorted
}

// Loader loads packages of one module from source.
type Loader struct {
	moduleRoot string
	modulePath string
	tags       map[string]bool
	fset       *token.FileSet
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
}

// New returns a loader for the module rooted at moduleRoot with import
// path modulePath. tags lists extra build tags to enable (the current
// GOOS and GOARCH are always on).
func New(moduleRoot, modulePath string, tags ...string) *Loader {
	tagSet := map[string]bool{runtime.GOOS: true, runtime.GOARCH: true}
	for _, t := range tags {
		tagSet[t] = true
	}
	fset := token.NewFileSet()
	return &Loader{
		moduleRoot: moduleRoot,
		modulePath: modulePath,
		tags:       tagSet,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModuleRoot returns the absolute module root directory.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// ModulePath reads the module path from the go.mod at root.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("srcload: no module line in %s/go.mod", root)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Load parses and type-checks the package at the given module-internal
// import path (and, recursively, its module-internal dependencies).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("srcload: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel, ok := strings.CutPrefix(path, l.modulePath+"/")
	if !ok {
		return nil, fmt.Errorf("srcload: %q is not under module %q", path, l.modulePath)
	}
	dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("srcload: %s: %w", path, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("srcload: %s: no buildable Go files in %s", path, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if strings.HasPrefix(p, l.modulePath+"/") || p == l.modulePath {
				loaded, err := l.Load(p)
				if err != nil {
					return nil, err
				}
				return loaded.Pkg, nil
			}
			return l.std.Import(p)
		}),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("srcload: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Pkg: pkg, Info: info, Files: files}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the buildable non-test Go files of one directory in
// deterministic (name-sorted) order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !l.buildIncluded(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// buildIncluded evaluates a file's //go:build constraint (if any)
// against the loader's tag set. Only the constraint lines above the
// package clause count, per the build-system rules.
func (l *Loader) buildIncluded(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return true // malformed constraint: let the type-checker complain
		}
		return expr.Eval(func(tag string) bool { return l.tags[tag] })
	}
	return true
}
