// Package analysistest runs simlint analyzers over golden testdata
// packages, mirroring golang.org/x/tools/go/analysis/analysistest with
// only the standard library.
//
// A testdata tree is laid out GOPATH-style under <dir>/src/<importpath>.
// Imports are resolved inside the tree first — the tree carries small
// fake stand-ins for the standard-library packages the fixtures touch
// ("time", "math/rand", "fmt", ...), keeping tests hermetic and fast —
// so fixture import paths mirror the real repository
// ("triplea/internal/simx", ...) and the analyzers' package matching
// logic is exercised unchanged.
//
// Expected findings are declared in the fixture source with the
// x/tools comment convention:
//
//	rand.Intn(6) // want `global rand\.Intn`
//
// Each quoted string is a regexp that must match one diagnostic
// reported on that line; diagnostics with no matching want, and wants
// with no matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"triplea/internal/lint/analysis"
)

// Run loads each named package from dir/src and applies the analyzer,
// comparing reported diagnostics against the package's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(dir, "src"))
	for _, path := range pkgpaths {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			t.Helper()
			pd, err := l.load(path)
			if err != nil {
				t.Fatalf("loading %s: %v", path, err)
			}
			runOne(t, l, a, pd)
		})
	}
}

func runOne(t *testing.T, l *loader, a *analysis.Analyzer, pd *pkgData) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.fset,
		Files:     pd.files,
		Pkg:       pd.pkg,
		TypesInfo: pd.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := collectWants(t, l.fset, pd.files)
	for _, d := range diags {
		p := l.fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
		if !wants.match(key, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	wants.reportUnmatched(t)
}

// wantSet tracks expectations by file:line.
type wantSet struct {
	byKey map[string][]*wantExpr
}

type wantExpr struct {
	rx      *regexp.Regexp
	matched bool
}

func (w *wantSet) match(key, message string) bool {
	for _, we := range w.byKey[key] {
		if !we.matched && we.rx.MatchString(message) {
			we.matched = true
			return true
		}
	}
	return false
}

func (w *wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	keys := make([]string, 0, len(w.byKey))
	for k := range w.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, we := range w.byKey[k] {
			if !we.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, we.rx)
			}
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) *wantSet {
	t.Helper()
	ws := &wantSet{byKey: make(map[string][]*wantExpr)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				rest := strings.TrimSpace(text[idx+len("want "):])
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment %q: %v", key, text, err)
					}
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want string %q: %v", key, q, err)
					}
					rx, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, s, err)
					}
					ws.byKey[key] = append(ws.byKey[key], &wantExpr{rx: rx})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return ws
}

// loader resolves and type-checks packages from the testdata tree.
type loader struct {
	src  string
	fset *token.FileSet
	pkgs map[string]*pkgData
}

type pkgData struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(src string) *loader {
	return &loader{src: src, fset: token.NewFileSet(), pkgs: make(map[string]*pkgData)}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func (l *loader) load(path string) (*pkgData, error) {
	if pd, ok := l.pkgs[path]; ok {
		if pd == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return pd, nil
	}
	l.pkgs[path] = nil // cycle marker

	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("package %q not found in testdata: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("package %q has no Go files", path)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			pd, err := l.load(p)
			if err != nil {
				return nil, err
			}
			return pd.pkg, nil
		}),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %q: %w", path, err)
	}
	pd := &pkgData{pkg: pkg, files: files, info: info}
	l.pkgs[path] = pd
	return pd, nil
}
