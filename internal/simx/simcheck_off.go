//go:build !simcheck

package simx

// simcheckEnabled is false in the default build; every
// `if simcheckEnabled { ... }` call site below compiles away.
const simcheckEnabled = false

// ckState is empty without the tag, so the Engine pays no space.
type ckState struct{}

func (e *Engine) ckSchedule(ev *Event) {}
func (e *Engine) ckStep(ev *Event)     {}
func (e *Engine) ckCancel(ev *Event)   {}

// PoolCheck is the pooled-object lifecycle guard. Pooled types (Event
// nodes here, pcie.Packet, cluster.Command, ...) embed one and their
// pools call Checkout/Release around free-list traffic; hot entry
// points call InUse. Without the simcheck tag it is an empty struct
// with no-op methods, so the guard compiles away entirely.
type PoolCheck struct{}

// Fresh records a newly allocated pooled object in the leak ledger
// (no-op without the tag).
func (*PoolCheck) Fresh(what string) {}

// Checkout marks the object as taken from its pool's free-list.
func (*PoolCheck) Checkout(what string) {}

// Release marks the object as returned to its pool; a second Release
// without an intervening Checkout is a double-free (panics under
// -tags simcheck).
func (*PoolCheck) Release(what string) {}

// InUse asserts the object has not been released (panics on
// use-after-release under -tags simcheck).
func (*PoolCheck) InUse(what string) {}

// ckLife is the engine-internal alias for the guard.
type ckLife = PoolCheck

// CheckActive reports whether the simcheck invariant checks (and their
// process-global leak ledger) are compiled in; false here, so
// orchestration layers are free to run sweep points concurrently.
func CheckActive() bool { return false }

// SnapshotLedger copies the per-pool outstanding counts of the leak
// ledger; without the tag there is no ledger and it returns nil.
func SnapshotLedger() map[string]int { return nil }

// PoolOutstanding reports how many objects of the named pool are
// outside their free-list (always 0 without the tag).
func PoolOutstanding(name string) int { return 0 }

// AssertDrained compares the leak ledger against a snapshot and
// reports leaks; without the tag it always passes.
func AssertDrained(snap map[string]int) error { return nil }
