//go:build !simcheck

package simx

// simcheckEnabled is false in the default build; every
// `if simcheckEnabled { ... }` call site below compiles away.
const simcheckEnabled = false

// ckState is empty without the tag, so the Engine pays no space.
type ckState struct{}

func (e *Engine) ckSchedule(ev *Event) {}
func (e *Engine) ckStep(ev *Event)     {}
func (e *Engine) ckCancel(ev *Event)   {}
