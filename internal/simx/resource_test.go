package simx

import (
	"testing"
	"testing/quick"
)

func TestResourceImmediateGrant(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "bus", 1)
	granted := false
	r.Acquire(func(w Time) {
		granted = true
		if w != 0 {
			t.Errorf("waited %v on an idle resource", w)
		}
	})
	if !granted {
		t.Fatal("idle resource did not grant synchronously")
	}
	if r.InUse() != 1 {
		t.Errorf("InUse() = %d, want 1", r.InUse())
	}
}

func TestResourceFIFOWait(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "bus", 1)
	var order []int

	r.Acquire(func(Time) {}) // hold the slot
	for i := 0; i < 3; i++ {
		i := i
		r.Acquire(func(w Time) { order = append(order, i) })
	}
	if r.QueueLen() != 3 {
		t.Fatalf("QueueLen() = %d, want 3", r.QueueLen())
	}

	// Release at t=10, 20, 30; each release admits the next waiter.
	for k := 0; k < 3; k++ {
		eng.Schedule(Time(10*(k+1)), func() { r.Release() })
	}
	eng.Run()

	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("waiters granted in order %v, want [0 1 2]", order)
	}
	if r.InUse() != 1 { // last waiter still holds it
		t.Errorf("InUse() = %d, want 1", r.InUse())
	}
	if r.MaxQueue() != 3 {
		t.Errorf("MaxQueue() = %d, want 3", r.MaxQueue())
	}
}

func TestResourceWaitTimes(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "bus", 1)
	r.Acquire(func(Time) {})
	var waited Time = -1
	r.Acquire(func(w Time) { waited = w })
	eng.Schedule(42, func() { r.Release() })
	eng.Run()
	if waited != 42 {
		t.Errorf("waiter saw wait %v, want 42", waited)
	}
	if r.TotalWait() != 42 {
		t.Errorf("TotalWait() = %v, want 42", r.TotalWait())
	}
}

func TestResourceCapacityN(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "dies", 3)
	grants := 0
	for i := 0; i < 5; i++ {
		r.Acquire(func(w Time) {
			if w == 0 {
				grants++
			}
		})
	}
	if grants != 3 {
		t.Errorf("%d immediate grants, want 3", grants)
	}
	if r.QueueLen() != 2 {
		t.Errorf("QueueLen() = %d, want 2", r.QueueLen())
	}
}

func TestTryAcquire(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "slot", 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on idle resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on full resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Release of idle resource did not panic")
		}
	}()
	eng := NewEngine()
	NewResource(eng, "x", 1).Release()
}

func TestBusyIntegral(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "bus", 1)
	// busy [10, 30), idle [30, 50), busy [50, 60)
	eng.Schedule(10, func() { r.Acquire(func(Time) {}) })
	eng.Schedule(30, func() { r.Release() })
	eng.Schedule(50, func() { r.Acquire(func(Time) {}) })
	eng.Schedule(60, func() { r.Release() })
	eng.Run()
	if got := r.BusyNS(); got != 30 {
		t.Errorf("BusyNS() = %v, want 30", got)
	}
}

func TestUtilizationSince(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "bus", 1)
	eng.Schedule(0, func() { r.Acquire(func(Time) {}) })
	eng.Schedule(50, func() { r.Release() })
	eng.RunUntil(100)
	// busy 50 of 100 ns
	if u := r.UtilizationSince(0, 0); u != 0.5 {
		t.Errorf("UtilizationSince = %v, want 0.5", u)
	}
	// window [50,100) entirely idle
	snap := r.BusyNS()
	eng.RunUntil(200)
	if u := r.UtilizationSince(100, snap); u != 0 {
		t.Errorf("idle-window utilization = %v, want 0", u)
	}
}

func TestWeightedBusy(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "dies", 2)
	eng.Schedule(0, func() { r.Acquire(func(Time) {}); r.Acquire(func(Time) {}) })
	eng.Schedule(10, func() { r.Release() })
	eng.Schedule(20, func() { r.Release() })
	eng.Run()
	// 2 slots for 10ns + 1 slot for 10ns = 30 slot-ns
	if got := r.WeightedBusyNS(); got != 30 {
		t.Errorf("WeightedBusyNS() = %v, want 30", got)
	}
}

// Property: with capacity 1 and k sequential hold/release cycles of
// duration d each, busy time is k*d and every waiter is granted.
func TestPropertyResourceConservation(t *testing.T) {
	f := func(durations []uint8) bool {
		eng := NewEngine()
		r := NewResource(eng, "bus", 1)
		var total Time
		granted := 0
		for _, d8 := range durations {
			d := Time(d8) + 1 // at least 1ns
			total += d
			r.Acquire(func(w Time) {
				granted++
				eng.Schedule(d, func() { r.Release() })
			})
		}
		eng.Run()
		return granted == len(durations) && r.BusyNS() == total && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of range", f)
		}
		if v := r.Int63n(1000); v < 0 || v >= 1000 {
			t.Fatalf("Int63n(1000) = %d out of range", v)
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(99)
	n := 20000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("Bool(0.25) hit rate %v, want ~0.25", frac)
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(1)
	for _, fn := range []func(){
		func() { r.Intn(0) },
		func() { r.Int63n(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for n<=0")
				}
			}()
			fn()
		}()
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(5)
	child := r.Fork()
	if child.Uint64() == r.Uint64() {
		t.Error("forked stream mirrors parent")
	}
}

func TestResourceIntrospection(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, "intro", 2)
	if r.Name() != "intro" || r.Capacity() != 2 {
		t.Errorf("accessors: %q/%d", r.Name(), r.Capacity())
	}
	r.Acquire(func(Time) {})
	if r.Grants() != 1 {
		t.Errorf("Grants = %d", r.Grants())
	}
}
