package simx

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{Microsecond, "1.00us"},
		{3300, "3.30us"},
		{Millisecond, "1.000ms"},
		{2 * Second, "2.000s"},
		{-Microsecond, "-1.00us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeMicros(t *testing.T) {
	if got := (3300 * Nanosecond).Micros(); got != 3.3 {
		t.Errorf("Micros() = %v, want 3.3", got)
	}
}

func TestScheduleOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(30, func() { order = append(order, 3) })
	eng.Schedule(10, func() { order = append(order, 1) })
	eng.Schedule(20, func() { order = append(order, 2) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v, want [1 2 3]", order)
	}
	if eng.Now() != 30 {
		t.Errorf("Now() = %v, want 30", eng.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(5, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var hits []Time
	eng.Schedule(10, func() {
		hits = append(hits, eng.Now())
		eng.Schedule(5, func() { hits = append(hits, eng.Now()) })
	})
	eng.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v, want [10 15]", hits)
	}
}

func TestCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	ev := eng.Schedule(10, func() { fired = true })
	eng.Cancel(ev)
	eng.Cancel(ev) // double-cancel is a no-op
	eng.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if eng.Fired() != 0 {
		t.Errorf("Fired() = %d, want 0", eng.Fired())
	}
}

func TestCancelOneOfMany(t *testing.T) {
	eng := NewEngine()
	var got []int
	evs := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs[i] = eng.Schedule(Time(i+1), func() { got = append(got, i) })
	}
	eng.Cancel(evs[2])
	eng.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	eng := NewEngine()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		eng.Schedule(d, func() { fired = append(fired, d) })
	}
	eng.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %v, want two events", fired)
	}
	if eng.Now() != 25 {
		t.Errorf("Now() = %v after RunUntil(25)", eng.Now())
	}
	eng.Run()
	if len(fired) != 4 {
		t.Fatalf("Run() after RunUntil left events: fired %v", fired)
	}
}

func TestRunForAdvancesClock(t *testing.T) {
	eng := NewEngine()
	eng.RunFor(100)
	if eng.Now() != 100 {
		t.Errorf("Now() = %v after empty RunFor(100)", eng.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule(-1) did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestAtBeforeNowPanics(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(10, func() {})
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Error("At(past) did not panic")
		}
	}()
	eng.At(5, func() {})
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	eng := NewEngine()
	if eng.Step() {
		t.Error("Step() on empty engine returned true")
	}
}

// Property: for any batch of non-negative delays, events fire in
// non-decreasing time order and the clock ends at the max delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		eng := NewEngine()
		var fired []Time
		var max Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			eng.Schedule(d, func() { fired = append(fired, eng.Now()) })
		}
		eng.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || eng.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEngineIntrospection(t *testing.T) {
	eng := NewEngine()
	ev := eng.Schedule(25, func() {})
	if ev.When() != 25 {
		t.Errorf("When = %v", ev.When())
	}
	if eng.Pending() != 1 {
		t.Errorf("Pending = %d", eng.Pending())
	}
	eng.Run()
	if eng.Pending() != 0 {
		t.Errorf("Pending after run = %d", eng.Pending())
	}
}
