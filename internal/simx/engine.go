// Package simx provides a deterministic discrete-event simulation engine
// used by every timing model in the repository: the NAND packages, the
// FIMM channels, the PCI Express fabric, and the autonomic management
// module all schedule work on a single shared Engine.
//
// Time is an integer number of simulated nanoseconds. Events scheduled
// for the same instant fire in scheduling order (a monotonically
// increasing sequence number breaks ties), so a simulation run is fully
// reproducible for a given input.
package simx

import (
	"container/heap"
	"fmt"
)

// Time is a simulated instant or duration in nanoseconds.
type Time int64

// Common durations, mirroring time.Duration conventions.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time using the most natural unit, e.g. "3.30us".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Handler is a typed event receiver — the zero-allocation alternative
// to a closure. The engine pre-binds a Handler plus one integer
// argument into a pooled Event node; when the event fires, OnEvent runs
// with that argument. Hot-path models store their per-operation state
// in pooled structs that implement Handler (the interface holds only a
// pointer, so the conversion never allocates) and use arg as a phase
// discriminator.
type Handler interface {
	OnEvent(arg uint64)
}

// Event is a scheduled callback. Closure events (Schedule/At) are
// returned to the caller so they can be cancelled before firing; typed
// events (ScheduleEvent/AtEvent) are engine-owned pooled nodes that are
// recycled onto an intrusive free-list the moment they fire, so the
// steady-state hot path schedules without allocating.
type Event struct {
	when   Time
	seq    uint64
	fn     func()  // closure path; nil for typed events
	h      Handler // typed path; nil for closure events
	arg    uint64
	index  int // heap index; -1 once popped or cancelled
	cancel bool
	pooled bool   // recycled after firing; never handed to callers
	next   *Event // free-list link while recycled
	ck     ckLife // pooled-lifecycle guard; empty unless -tags simcheck
}

// When reports the instant the event will fire.
func (e *Event) When() Time { return e.when }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev) //simlint:coldalloc amortized: event-heap growth
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	running bool
	fired   uint64
	free    *Event // recycled typed-event nodes (intrusive free-list)
	freeLen int
	ck      ckState // empty unless built with -tags simcheck
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule arranges for fn to run delay nanoseconds from now.
// A negative delay panics: the simulation cannot travel backwards.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("simx: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("simx: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("simx: nil event func")
	}
	e.seq++
	ev := &Event{when: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	if simcheckEnabled {
		e.ckSchedule(ev)
	}
	return ev
}

// ScheduleEvent arranges for h.OnEvent(arg) to run delay nanoseconds
// from now on a pooled event node. Typed events cannot be cancelled:
// the node is engine-owned and recycled the instant it fires.
func (e *Engine) ScheduleEvent(delay Time, h Handler, arg uint64) {
	if delay < 0 {
		panic(fmt.Sprintf("simx: negative delay %v", delay))
	}
	e.AtEvent(e.now+delay, h, arg)
}

// AtEvent is ScheduleEvent at an absolute time t (>= Now).
func (e *Engine) AtEvent(t Time, h Handler, arg uint64) {
	if t < e.now {
		panic(fmt.Sprintf("simx: scheduling at %v before now %v", t, e.now))
	}
	if h == nil {
		panic("simx: nil event handler")
	}
	ev := e.newEvent()
	e.seq++
	ev.when, ev.seq, ev.h, ev.arg = t, e.seq, h, arg
	heap.Push(&e.events, ev)
	if simcheckEnabled {
		e.ckSchedule(ev)
	}
}

// newEvent pops a recycled typed-event node or allocates a fresh one —
// the registered acquire point of the simx.Event pool (its release is
// recycle).
func (e *Engine) newEvent() *Event {
	ev := e.free
	if ev != nil {
		e.free = ev.next
		e.freeLen--
		if simcheckEnabled {
			ev.ck.Checkout("simx.Event")
		}
		ev.next = nil
		ev.cancel = false
	} else {
		ev = &Event{pooled: true} //simlint:coldalloc pool miss: event free-list refill
		if simcheckEnabled {
			ev.ck.Fresh("simx.Event")
		}
	}
	return ev
}

// recycle pushes a fired typed-event node back onto the free-list.
func (e *Engine) recycle(ev *Event) {
	if simcheckEnabled {
		ev.ck.Release("simx.Event")
	}
	ev.h = nil
	ev.next = e.free
	e.free = ev
	e.freeLen++
}

// EventPoolFree reports how many recycled event nodes are idle — the
// steady-state footprint of the typed-event path (tests and diagnostics).
func (e *Engine) EventPoolFree() int { return e.freeLen }

// Cancel prevents a scheduled event from firing. Cancelling an event
// that already fired or was already cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	if simcheckEnabled {
		e.ckCancel(ev)
	}
	heap.Remove(&e.events, ev.index)
}

// Step fires the next event, if any, advancing the clock to its time.
// It reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancel {
			continue
		}
		if simcheckEnabled {
			e.ckStep(ev)
		}
		e.now = ev.when
		e.fired++
		if ev.pooled {
			// Recycle before invoking: the handler usually schedules its
			// next hop immediately, reusing this hot node.
			h, arg := ev.h, ev.arg
			e.recycle(ev)
			h.OnEvent(arg)
			return true
		}
		ev.fn() //simlint:coldalloc closure events are the audited cold scheduling API
		return true
	}
	return false
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time <= t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.cancel {
			heap.Pop(&e.events)
			continue
		}
		if next.when > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor fires events within the next d nanoseconds.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
