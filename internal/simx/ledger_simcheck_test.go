//go:build simcheck

package simx

import (
	"strings"
	"testing"
)

// TestLedgerCountsLifecycle drives a synthetic pool through the three
// ledger hooks and checks the outstanding count at each step.
func TestLedgerCountsLifecycle(t *testing.T) {
	const pool = "test.widget"
	base := PoolOutstanding(pool)
	var ck PoolCheck
	ck.Fresh(pool)
	if got := PoolOutstanding(pool); got != base+1 {
		t.Fatalf("after Fresh: %d outstanding, want %d", got, base+1)
	}
	ck.Release(pool)
	if got := PoolOutstanding(pool); got != base {
		t.Fatalf("after Release: %d outstanding, want %d", got, base)
	}
	ck.Checkout(pool)
	if got := PoolOutstanding(pool); got != base+1 {
		t.Fatalf("after Checkout: %d outstanding, want %d", got, base+1)
	}
	ck.Release(pool)
}

// TestAssertDrainedNamesLeakedPool deliberately leaks one object and
// checks the failure is attributable: the error must carry the pool's
// name and the outstanding count.
func TestAssertDrainedNamesLeakedPool(t *testing.T) {
	const pool = "test.leaky"
	snap := SnapshotLedger()
	if err := AssertDrained(snap); err != nil {
		t.Fatalf("clean ledger reported a leak: %v", err)
	}
	var ck PoolCheck
	ck.Fresh(pool) // never released
	err := AssertDrained(snap)
	if err == nil {
		t.Fatal("leaked object not reported")
	}
	if !strings.Contains(err.Error(), pool) {
		t.Fatalf("leak report %q does not name the pool %q", err, pool)
	}
	ck.Release(pool) // repair the ledger for later tests in this process
}

// TestEngineEventsDrain runs a small event cascade to completion and
// checks the event pool's ledger entry returns to its starting point.
func TestEngineEventsDrain(t *testing.T) {
	snap := SnapshotLedger()
	eng := NewEngine()
	h := &countHandler{}
	for i := 0; i < 8; i++ {
		eng.ScheduleEvent(Time(i)*Microsecond, h, uint64(i))
	}
	eng.Run()
	if h.n != 8 {
		t.Fatalf("fired %d events, want 8", h.n)
	}
	if err := AssertDrained(snap); err != nil {
		t.Fatalf("drained engine still holds pooled objects: %v", err)
	}
}

type countHandler struct{ n int }

func (h *countHandler) OnEvent(arg uint64) { h.n++ }
