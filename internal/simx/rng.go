package simx

// RNG is a small deterministic pseudo-random generator (splitmix64).
// The simulator cannot use math/rand's global state: experiment
// reproducibility requires every stochastic choice to flow from an
// explicit per-run seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simx: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("simx: Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent generator; streams from parent and child
// do not overlap in practice because the child is reseeded through the
// mixer.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
