package simx

// Resource models a server with a fixed number of slots and a FIFO wait
// queue: a shared bus (capacity 1), a flash die (capacity 1), or a
// multi-entry buffer drain. Acquire either grants a slot immediately or
// enqueues the caller; the grant callback receives the time spent
// waiting, which the storage models attribute to link- or
// storage-contention.
//
// Resource also integrates busy time so utilisation can be sampled over
// an interval — the quantity uBus in Equation 2 of the paper.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int

	waitHead *waiter
	waitTail *waiter
	waitLen  int
	freeW    *waiter // recycled waiter nodes

	// busy-time integral bookkeeping
	busyNS     Time // accumulated (inUse>0) busy nanoseconds for capacity-1 semantics
	weightedNS Time // accumulated inUse-weighted nanoseconds (for capacity>1)
	lastChange Time

	// statistics
	grants    uint64
	totalWait Time
	maxQueue  int
}

// Grantee is the typed counterpart of Acquire's callback — pooled
// per-operation states implement it so queueing for a slot allocates
// nothing. arg is echoed back as a phase discriminator.
type Grantee interface {
	OnGrant(arg uint64, waited Time)
}

type waiter struct {
	fn      func(waited Time) // closure path; nil for typed waiters
	g       Grantee           // typed path
	arg     uint64
	arrived Time
	next    *waiter
	ck      ckLife
}

// NewResource returns a resource with the given slot count (>=1).
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("simx: resource capacity must be >= 1")
	}
	return &Resource{eng: eng, name: name, capacity: capacity, lastChange: eng.Now()}
}

// Name reports the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity reports the number of slots.
func (r *Resource) Capacity() int { return r.capacity }

// InUse reports how many slots are currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports how many acquirers are waiting.
func (r *Resource) QueueLen() int { return r.waitLen }

func (r *Resource) integrate() {
	now := r.eng.Now()
	if now > r.lastChange {
		dt := now - r.lastChange
		if r.inUse > 0 {
			r.busyNS += dt
		}
		r.weightedNS += dt * Time(r.inUse)
		r.lastChange = now
	}
}

// Acquire requests a slot. fn runs (synchronously if a slot is free,
// otherwise when one frees up) with the time the caller waited.
func (r *Resource) Acquire(fn func(waited Time)) {
	if fn == nil {
		panic("simx: nil acquire func")
	}
	if r.grantNow() {
		fn(0)
		return
	}
	w := r.newWaiter()
	w.fn = fn
	r.enqueue(w)
}

// AcquireG is the typed, allocation-free Acquire: g.OnGrant(arg, waited)
// runs synchronously if a slot is free, otherwise when one frees up.
// Queued waiters live on pooled nodes recycled at grant time.
func (r *Resource) AcquireG(g Grantee, arg uint64) {
	if g == nil {
		panic("simx: nil acquire grantee")
	}
	if r.grantNow() {
		g.OnGrant(arg, 0)
		return
	}
	w := r.newWaiter()
	w.g, w.arg = g, arg
	r.enqueue(w)
}

// grantNow takes a free slot if available, reporting success.
func (r *Resource) grantNow() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.integrate()
	r.inUse++
	r.grants++
	return true
}

// newWaiter pops a recycled waiter node or allocates a fresh one.
func (r *Resource) newWaiter() *waiter {
	w := r.freeW
	if w != nil {
		r.freeW = w.next
		if simcheckEnabled {
			w.ck.Checkout("simx.waiter")
		}
		w.next = nil
	} else {
		w = &waiter{} //simlint:coldalloc pool miss: waiter free-list refill
		if simcheckEnabled {
			w.ck.Fresh("simx.waiter")
		}
	}
	w.arrived = r.eng.Now()
	return w
}

// recycleWaiter pushes a granted waiter node back onto the free-list —
// the registered release point of the simx.waiter pool.
func (r *Resource) recycleWaiter(w *waiter) {
	w.fn, w.g = nil, nil
	if simcheckEnabled {
		w.ck.Release("simx.waiter")
	}
	w.next = r.freeW
	r.freeW = w
}

func (r *Resource) enqueue(w *waiter) {
	if r.waitTail == nil {
		r.waitHead = w
	} else {
		r.waitTail.next = w
	}
	r.waitTail = w
	r.waitLen++
	if r.waitLen > r.maxQueue {
		r.maxQueue = r.waitLen
	}
}

// TryAcquire takes a slot if one is free, reporting success. It never queues.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.integrate()
	r.inUse++
	r.grants++
	return true
}

// Release frees one slot, handing it to the oldest waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("simx: release of idle resource " + r.name)
	}
	r.integrate()
	r.inUse--
	if r.waitHead == nil {
		return
	}
	w := r.waitHead
	r.waitHead = w.next
	if r.waitHead == nil {
		r.waitTail = nil
	}
	r.waitLen--
	r.inUse++
	r.grants++
	waited := r.eng.Now() - w.arrived
	r.totalWait += waited
	// Recycle the node before invoking: the grantee often re-queues
	// immediately and reuses it.
	fn, g, arg := w.fn, w.g, w.arg
	r.recycleWaiter(w)
	if g != nil {
		g.OnGrant(arg, waited)
		return
	}
	fn(waited) //simlint:coldalloc closure grants are the audited cold acquire API
}

// BusyNS reports the accumulated time during which at least one slot was
// held, up to the current instant.
func (r *Resource) BusyNS() Time {
	r.integrate()
	return r.busyNS
}

// WeightedBusyNS reports the slot-weighted busy integral (slot-ns).
func (r *Resource) WeightedBusyNS() Time {
	r.integrate()
	return r.weightedNS
}

// Grants reports how many acquisitions have been granted.
func (r *Resource) Grants() uint64 { return r.grants }

// TotalWait reports the summed queueing delay over all grants.
func (r *Resource) TotalWait() Time { return r.totalWait }

// MaxQueue reports the deepest wait queue observed.
func (r *Resource) MaxQueue() int { return r.maxQueue }

// UtilizationSince reports the fraction of the interval [since, now]
// during which the resource was busy, in [0,1]. A zero-length interval
// yields 0. The caller supplies the busy integral it snapshotted at
// `since` (from BusyNS), enabling sliding-window sampling.
func (r *Resource) UtilizationSince(since Time, busyAtSince Time) float64 {
	now := r.eng.Now()
	if now <= since {
		return 0
	}
	return float64(r.BusyNS()-busyAtSince) / float64(now-since)
}
