package simx

import "time"

// FromDuration is the audited bridge from wall-clock durations into
// simulated time. Both sides count nanoseconds today, but the simtime
// lint rule forbids raw simx.Time(d) conversions elsewhere so that any
// future change to either unit has exactly one place to touch.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration is the audited bridge back out of simulated time, for
// callers (reports, host-side tooling) that want to print or compare
// simulated spans with time.Duration formatting.
func (t Time) Duration() time.Duration { return time.Duration(t) }
