//go:build simcheck

package simx

import (
	"fmt"
	"sort"
	"strings"
)

// simcheckEnabled gates the runtime invariant checks. Call sites are
// written `if simcheckEnabled { ... }` so the default build compiles
// the checks away entirely; `go test -tags simcheck` turns them on.
const simcheckEnabled = true

// ckVerifyEvery amortizes the O(n) full-heap verification: one scan
// per this many schedule/step operations.
const ckVerifyEvery = 1024

// ckState carries the checker's bookkeeping inside Engine. In the
// default build it is an empty struct, so enabling the tag is the only
// thing that changes the Engine's size.
type ckState struct {
	ops uint64
}

// PoolCheck is the pooled-object lifecycle guard (see simcheck_off.go
// for the no-op build). It tracks whether the embedding object is
// currently on its pool's free-list and panics on double-release and
// use-after-release — the two bugs an intrusive free-list can smuggle
// past the type system. Panic messages carry the owning pool's name
// and the guard's address (which pins the embedding object's identity)
// so a failure is attributable without a debugger.
//
// Fresh/Checkout/Release also feed the package leak ledger: a per-pool
// count of objects currently outside their free-list. SnapshotLedger
// and AssertDrained turn that into an end-of-run drain check.
type PoolCheck struct {
	freed bool
}

// Fresh records a newly allocated pooled object (the pool's miss
// branch, where no free-list node was available). The zero PoolCheck is
// already in the checked-out state, so only the ledger moves.
func (c *PoolCheck) Fresh(what string) {
	ckLedger[what]++
}

// Checkout marks the object as taken from its pool's free-list.
func (c *PoolCheck) Checkout(what string) {
	if !c.freed {
		panic(fmt.Sprintf("simcheck: %s %p: free-list holds an object that was never released", what, c))
	}
	c.freed = false
	ckLedger[what]++
}

// Release marks the object as returned to its pool.
func (c *PoolCheck) Release(what string) {
	if c.freed {
		panic(fmt.Sprintf("simcheck: %s %p: double release of pooled object", what, c))
	}
	c.freed = true
	ckLedger[what]--
}

// InUse asserts the object has not been released.
func (c *PoolCheck) InUse(what string) {
	if c.freed {
		panic(fmt.Sprintf("simcheck: %s %p: use of object after release to its pool", what, c))
	}
}

// ckLedger counts, per pool name, the objects currently checked out of
// (or never yet returned to) their free-list. The simulator is
// single-threaded by construction, so a plain map suffices — and
// because this is process-global, the sweep runner clamps its worker
// pool to one whenever CheckActive reports the tag is on.
//
//simlint:shared process-wide leak ledger; parallel sweeps serialize under -tags simcheck (see CheckActive)
var ckLedger = map[string]int{}

// CheckActive reports whether the simcheck invariant checks (and their
// process-global leak ledger) are compiled in. Orchestration layers
// use it to fall back to serial execution: the ledger is shared state
// that concurrent runs would race on.
func CheckActive() bool { return true }

// SnapshotLedger copies the current per-pool outstanding counts.
// Pools with a zero count are omitted.
func SnapshotLedger() map[string]int {
	snap := make(map[string]int, len(ckLedger))
	for name, n := range ckLedger { //simlint:ordered copy into a map keyed by the same name; order-independent
		if n != 0 {
			snap[name] = n
		}
	}
	return snap
}

// PoolOutstanding reports how many objects of the named pool are
// currently outside their free-list.
func PoolOutstanding(name string) int { return ckLedger[name] }

// AssertDrained compares the ledger against a snapshot taken before a
// run and returns an error naming every pool whose outstanding count
// grew — a leaked pooled object. Comparing against a snapshot (rather
// than zero) tolerates objects legitimately held by other engines in
// the same test process.
func AssertDrained(snap map[string]int) error {
	var leaks []string
	for name, n := range ckLedger { //simlint:ordered leak lines are sorted before reporting
		if n > snap[name] {
			leaks = append(leaks, fmt.Sprintf("%s: %d outstanding (was %d)", name, n, snap[name]))
		}
	}
	if len(leaks) == 0 {
		return nil
	}
	sort.Strings(leaks)
	return fmt.Errorf("simcheck: pooled objects leaked: %s", strings.Join(leaks, "; "))
}

// ckLife is the engine-internal alias for the guard.
type ckLife = PoolCheck

// ckSchedule validates a newly pushed event and periodically sweeps
// the whole heap.
func (e *Engine) ckSchedule(ev *Event) {
	if ev.when < e.now {
		panic(fmt.Sprintf("simcheck: scheduled event at %v is in the past (now %v)", ev.when, e.now))
	}
	if ev.index < 0 || ev.index >= len(e.events) || e.events[ev.index] != ev {
		panic(fmt.Sprintf("simcheck: pushed event has stale heap index %d", ev.index))
	}
	e.ckMaybeVerifyHeap()
}

// ckStep enforces event-time monotonicity: the clock never moves
// backwards, because the heap always yields the earliest pending event.
func (e *Engine) ckStep(ev *Event) {
	if ev.when < e.now {
		panic(fmt.Sprintf("simcheck: next event at %v precedes now %v; event order violated", ev.when, e.now))
	}
	e.ckMaybeVerifyHeap()
}

// ckCancel checks that the event's recorded heap index still points at
// the event before Cancel uses it for heap.Remove.
func (e *Engine) ckCancel(ev *Event) {
	if ev.index < 0 || ev.index >= len(e.events) || e.events[ev.index] != ev {
		panic(fmt.Sprintf("simcheck: cancelling event whose heap index %d is stale", ev.index))
	}
}

func (e *Engine) ckMaybeVerifyHeap() {
	e.ck.ops++
	if e.ck.ops%ckVerifyEvery == 0 {
		e.ckVerifyHeap()
	}
}

// ckVerifyHeap proves three properties of the pending-event heap: every
// event's index field matches its slot, the heap ordering holds between
// every parent and child, and no pending event is in the past.
func (e *Engine) ckVerifyHeap() {
	for i, ev := range e.events {
		if ev.index != i {
			panic(fmt.Sprintf("simcheck: heap slot %d holds event recording index %d", i, ev.index))
		}
		if ev.when < e.now {
			panic(fmt.Sprintf("simcheck: pending event at %v is before now %v", ev.when, e.now))
		}
		for _, c := range []int{2*i + 1, 2*i + 2} { //simlint:coldalloc simcheck diagnostics: not a measured build
			if c < len(e.events) && e.events.Less(c, i) {
				panic(fmt.Sprintf("simcheck: heap property violated between slot %d and child %d", i, c))
			}
		}
	}
}
