//go:build simcheck

package simx

import "testing"

// TestSimcheckSweepsCleanRun schedules enough events to force several
// full-heap verifications; a correct engine must survive them.
func TestSimcheckSweepsCleanRun(t *testing.T) {
	eng := NewEngine()
	rng := NewRNG(7)
	var fired int
	for i := 0; i < 4*ckVerifyEvery; i++ {
		eng.Schedule(Time(rng.Intn(1000))*Microsecond, func() { fired++ })
	}
	eng.Run()
	if fired != 4*ckVerifyEvery {
		t.Fatalf("fired %d of %d events", fired, 4*ckVerifyEvery)
	}
}

// TestSimcheckCancelUsesVerifiedIndex cancels from a deep heap; the
// index-consistency check must accept every live event.
func TestSimcheckCancelUsesVerifiedIndex(t *testing.T) {
	eng := NewEngine()
	var evs []*Event
	for i := 0; i < 100; i++ {
		evs = append(evs, eng.Schedule(Time(i)*Microsecond, func() {}))
	}
	for _, ev := range evs {
		eng.Cancel(ev)
	}
	if eng.Step() {
		t.Fatal("no events should remain after cancelling all")
	}
}

// TestSimcheckDetectsCorruptHeap corrupts an event's recorded index and
// expects the sweep to panic: this proves the checker actually checks.
func TestSimcheckDetectsCorruptHeap(t *testing.T) {
	eng := NewEngine()
	ev := eng.Schedule(Microsecond, func() {})
	eng.Schedule(2*Microsecond, func() {})
	ev.index = 1 // lie about the heap slot
	defer func() {
		if recover() == nil {
			t.Fatal("ckVerifyHeap accepted a corrupted event index")
		}
	}()
	eng.ckVerifyHeap()
}

// TestSimcheckDetectsPastEvent plants an event behind the clock and
// expects the monotonicity check to panic.
func TestSimcheckDetectsPastEvent(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(Millisecond, func() {})
	ev := eng.events[0]
	eng.now = 2 * Millisecond // move the clock past the pending event
	defer func() {
		if recover() == nil {
			t.Fatal("ckStep accepted an event before the clock")
		}
	}()
	eng.ckStep(ev)
}
