package experiments

import (
	"encoding/json"
	"fmt"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/fault"
	"triplea/internal/metrics"
	"triplea/internal/report"
	"triplea/internal/simx"
	"triplea/internal/sweep"
	"triplea/internal/workload"
)

// This file is the bridge between the suite and the isosafe-certified
// sweep pool (internal/sweep). The rules the analyzer enforces shape
// the code: every closure handed to sweep.Map captures only registered
// deep-copy-safe values (array.Config, core.Options, ints, seeds, and
// effectively-const package vars like NetworkSizes — never the *Suite
// itself), each point function builds its whole arena (workload,
// array, manager, recorder) inside the call, and results come back as
// JSON-encoded metric snapshots — exported registry values, never live
// recorders — so the assembly side renders every row and the table is
// byte-identical for any worker count (encoding/json round-trips
// float64 exactly, so rendering from a decoded snapshot equals
// rendering from the live recorder).

// workers reports how many pool workers the suite's sweeps may use.
// Under -tags simcheck the leak ledger (simx.CheckActive) is
// process-global mutable state, so sweeps serialize regardless of
// Parallel.
func (s *Suite) workers() int {
	if s.Parallel <= 1 || simx.CheckActive() {
		return 1
	}
	return s.Parallel
}

// pairPoint is the value one pair-run sweep worker hands back: the
// baseline and Triple-A recorders frozen into snapshots, with sustained
// throughput pre-computed over the standard window.
type pairPoint struct {
	Base metrics.Snapshot `json:"base"`
	Auto metrics.Snapshot `json:"auto"`
}

func encodePairPoint(r *RunResult) ([]byte, error) {
	return json.Marshal(pairPoint{
		Base: r.Base.Snapshot(SustainedWindow),
		Auto: r.Auto.Snapshot(SustainedWindow),
	})
}

func decodePairPoint(b []byte) (pairPoint, error) {
	var pp pairPoint
	err := json.Unmarshal(b, &pp)
	return pp, err
}

// NormLatency mirrors RunResult.NormLatency on snapshot values.
func (pp pairPoint) NormLatency() float64 {
	if pp.Base.AvgLatency == 0 {
		return 1
	}
	return float64(pp.Auto.AvgLatency) / float64(pp.Base.AvgLatency)
}

// NormIOPS mirrors RunResult.NormIOPS on snapshot values.
func (pp pairPoint) NormIOPS() float64 {
	if pp.Base.SustainedIOPS <= 0 {
		return 1
	}
	return pp.Auto.SustainedIOPS / pp.Base.SustainedIOPS
}

// runOnePoint executes a profile on one array. It is the
// self-contained form of (*Suite).runOne: everything a sweep worker
// needs arrives as a value parameter.
func runOnePoint(cfg array.Config, seed uint64, p workload.Profile, opts *core.Options) (*metrics.Recorder, *array.Array, *core.Manager, error) {
	reqs, _, err := workload.Generate(cfg.Geometry, p, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	a, err := array.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	var m *core.Manager
	if opts != nil {
		m = core.Attach(a, *opts)
	}
	rec, err := a.Run(reqs)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: %s: %w", p.Name, err)
	}
	return rec, a, m, nil
}

// runPair executes a profile on the baseline and on Triple-A — the
// self-contained form of (*Suite).RunProfile, shared by the serial and
// parallel paths so they cannot diverge.
func runPair(cfg array.Config, opts core.Options, seed uint64, p workload.Profile) (*RunResult, error) {
	_, gen, err := workload.Generate(cfg.Geometry, p, seed)
	if err != nil {
		return nil, err
	}
	base, baseArr, _, err := runOnePoint(cfg, seed, p, nil)
	if err != nil {
		return nil, err
	}
	auto, autoArr, mgr, err := runOnePoint(cfg, seed, p, &opts)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Profile:        p,
		Gen:            gen,
		Base:           base,
		Auto:           auto,
		BaseFTL:        baseArr.FTL().Stats(),
		AutoFTL:        autoArr.FTL().Stats(),
		Manager:        mgr.Stats(),
		BaseGC:         baseArr.GCRounds(),
		AutoGC:         autoArr.GCRounds(),
		BaseMigrations: baseArr.Migrations(),
		AutoMoved:      autoArr.Migrations(),
		BaseErases:     baseArr.FTL().TotalErases(),
		AutoErases:     autoArr.FTL().TotalErases(),
	}, nil
}

// fig12Row renders one hot-cluster sweep point exactly as the serial
// Figure 12 loop always has, now from snapshot values.
func fig12Row(h int, pp pairPoint) []string {
	return []string{
		fmt.Sprintf("%d", h),
		report.FormatUS(int64(pp.Base.AvgLatency)),
		report.FormatCount(pp.Base.SustainedIOPS),
		report.FormatUS(int64(pp.Auto.AvgLatency)),
		report.FormatCount(pp.Auto.SustainedIOPS),
	}
}

func fig13Row(size int, pp pairPoint) []string {
	nl := pp.NormLatency()
	return []string{
		fmt.Sprintf("%d", size),
		fmt.Sprintf("%.3f", nl),
		fmt.Sprintf("%.1fx", 1/nl),
		fmt.Sprintf("%.2f", pp.NormIOPS()),
	}
}

func fig14Row(size int, pp pairPoint) []string {
	b, a := pp.Base.MeanBreakdown(), pp.Auto.MeanBreakdown()
	return []string{
		fmt.Sprintf("%d", size),
		norm(a.LinkContention(), b.LinkContention()),
		norm(a.StorageContention(), b.StorageContention()),
	}
}

func fig15Row(label string, mb metrics.Breakdown) []string {
	return []string{label,
		report.FormatUS(int64(mb.RCStall)),
		report.FormatUS(int64(mb.SwitchStall)),
		report.FormatUS(int64(mb.EPWait)),
		report.FormatUS(int64(mb.LinkWait)),
		report.FormatUS(int64(mb.StorageWait)),
		report.FormatUS(int64(mb.Texe)),
		report.FormatUS(int64(mb.LinkXfer)),
		report.FormatUS(int64(mb.FabricXfer)),
	}
}

// networkPoint carries the rendered rows one network-size run
// contributes to Figures 13, 14 and 15 (rendered on the assembly side
// from the worker's snapshot pair).
type networkPoint struct {
	fig13, fig14         []string
	fig15Base, fig15Auto []string
}

// networkPoints runs the micro-benchmark across network sizes through
// the sweep pool, caching the rendered rows (Figures 13-15 share the
// sweep, so the pair runs happen once regardless of which figure asks
// first). Workers return snapshot pairs; all rendering happens here.
func (s *Suite) networkPoints() ([]networkPoint, error) {
	if s.netPoints != nil {
		return s.netPoints, nil
	}
	requests := 40_000
	if s.Requests > 0 {
		requests = s.Requests
	}
	cfg, opts := s.Config, s.Options
	outs, err := sweep.Map(s.workers(), sweep.Indexed(len(NetworkSizes), s.Seed), func(sp sweep.Spec) ([]byte, error) {
		c := cfg
		c.Geometry.ClustersPerSwitch = NetworkSizes[sp.Index]
		r, err := runPair(c, opts, sp.Seed, microProfile(4, requests, 1.5))
		if err != nil {
			return nil, err
		}
		return encodePairPoint(r)
	})
	if err != nil {
		return nil, err
	}
	pts := make([]networkPoint, len(outs))
	for i, b := range outs {
		pp, err := decodePairPoint(b)
		if err != nil {
			return nil, err
		}
		size := NetworkSizes[i]
		pts[i] = networkPoint{
			fig13:     fig13Row(size, pp),
			fig14:     fig14Row(size, pp),
			fig15Base: fig15Row(fmt.Sprintf("base-4x%d", size), pp.Base.MeanBreakdown()),
			fig15Auto: fig15Row(fmt.Sprintf("3A-4x%d", size), pp.Auto.MeanBreakdown()),
		}
	}
	s.netPoints = pts
	return pts, nil
}

// faultPoint runs one row of the degraded-array study: the full
// arena — workload, fault plan, array, injector — is built inside the
// call, so two rows can run on different workers without sharing
// anything. The row crosses the worker boundary as a JSON value;
// rendering happens on the assembly side.
func faultPoint(cfg array.Config, opts core.Options, seed uint64, requests int, autonomic bool) ([]byte, error) {
	p := microProfile(2, 20_000, 1.0)
	p.Name = "fault-mixed"
	p.ReadRatio = 0.6
	p.WriteRandomness = 1
	if requests > 0 {
		p.Requests = requests
	}
	reqs, _, err := workload.Generate(cfg.Geometry, p, seed)
	if err != nil {
		return nil, err
	}
	span := reqs[len(reqs)-1].Arrival
	plan := fault.ReferencePlan(cfg.Geometry, span)
	// Phase boundaries come from the plan itself: healthy until the FIMM
	// death, degraded until the replug, recovered after.
	tDeath := plan.Events[0].At
	tReplug := plan.Events[2].At

	name := "autonomic-off"
	if autonomic {
		name = "autonomic-on"
	}
	a, err := array.New(cfg)
	if err != nil {
		return nil, err
	}
	if autonomic {
		core.Attach(a, opts)
	}
	inj := fault.Attach(a, plan, fault.Options{Recover: autonomic})
	rec, err := a.Run(reqs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fault study %s: %w", name, err)
	}
	fs := a.FaultStats()
	is := inj.Stats()
	row := FaultRow{
		Name:          name,
		AvailHealthy:  rec.Availability(0, tDeath),
		AvailDegraded: rec.Availability(tDeath, tReplug),
		AvailPost:     rec.Availability(tReplug, endOfRun),
		Failed:        fs.RequestsFailed,
		Remapped:      fs.ReadsRemapped,
		Redirected:    fs.WritesRedirected,
		Evacuated:     is.Evacuated,
		AvgLat:        rec.AvgLatency(),
	}
	for _, r := range is.Recoveries {
		row.TTR += r.TTR()
	}
	return json.Marshal(row)
}

func decodeFaultRow(b []byte) (FaultRow, error) {
	var row FaultRow
	err := json.Unmarshal(b, &row)
	return row, err
}
