package experiments

import (
	"fmt"
	"strings"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/fault"
	"triplea/internal/metrics"
	"triplea/internal/report"
	"triplea/internal/simx"
	"triplea/internal/sweep"
	"triplea/internal/workload"
)

// This file is the bridge between the suite and the isosafe-certified
// sweep pool (internal/sweep). The rules the analyzer enforces shape
// the code: every closure handed to sweep.Map captures only registered
// deep-copy-safe values (array.Config, core.Options, ints, seeds, and
// effectively-const package vars like NetworkSizes — never the *Suite
// itself), each point function builds its whole arena (workload,
// array, manager, recorder) inside the call, and results come back as
// rendered row cells, so the assembled table is byte-identical for any
// worker count.

// workers reports how many pool workers the suite's sweeps may use.
// Under -tags simcheck the leak ledger (simx.CheckActive) is
// process-global mutable state, so sweeps serialize regardless of
// Parallel.
func (s *Suite) workers() int {
	if s.Parallel <= 1 || simx.CheckActive() {
		return 1
	}
	return s.Parallel
}

// Row cells cross the worker boundary as bytes: cells joined by the
// ASCII unit separator, rows by the record separator. No rendered cell
// contains either byte.
const (
	cellSep = "\x1f"
	rowSep  = "\x1e"
)

func encodeRows(rows [][]string) []byte {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = strings.Join(r, cellSep)
	}
	return []byte(strings.Join(parts, rowSep))
}

func decodeRows(b []byte) [][]string {
	if len(b) == 0 {
		return nil
	}
	var rows [][]string
	for _, part := range strings.Split(string(b), rowSep) {
		rows = append(rows, strings.Split(part, cellSep))
	}
	return rows
}

// runOnePoint executes a profile on one array. It is the
// self-contained form of (*Suite).runOne: everything a sweep worker
// needs arrives as a value parameter.
func runOnePoint(cfg array.Config, seed uint64, p workload.Profile, opts *core.Options) (*metrics.Recorder, *array.Array, *core.Manager, error) {
	reqs, _, err := workload.Generate(cfg.Geometry, p, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	a, err := array.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	var m *core.Manager
	if opts != nil {
		m = core.Attach(a, *opts)
	}
	rec, err := a.Run(reqs)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: %s: %w", p.Name, err)
	}
	return rec, a, m, nil
}

// runPair executes a profile on the baseline and on Triple-A — the
// self-contained form of (*Suite).RunProfile, shared by the serial and
// parallel paths so they cannot diverge.
func runPair(cfg array.Config, opts core.Options, seed uint64, p workload.Profile) (*RunResult, error) {
	_, gen, err := workload.Generate(cfg.Geometry, p, seed)
	if err != nil {
		return nil, err
	}
	base, baseArr, _, err := runOnePoint(cfg, seed, p, nil)
	if err != nil {
		return nil, err
	}
	auto, autoArr, mgr, err := runOnePoint(cfg, seed, p, &opts)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Profile:        p,
		Gen:            gen,
		Base:           base,
		Auto:           auto,
		BaseFTL:        baseArr.FTL().Stats(),
		AutoFTL:        autoArr.FTL().Stats(),
		Manager:        mgr.Stats(),
		BaseGC:         baseArr.GCRounds(),
		AutoGC:         autoArr.GCRounds(),
		BaseMigrations: baseArr.Migrations(),
		AutoMoved:      autoArr.Migrations(),
		BaseErases:     baseArr.FTL().TotalErases(),
		AutoErases:     autoArr.FTL().TotalErases(),
	}, nil
}

// fig12Row renders one hot-cluster sweep point exactly as the serial
// Figure 12 loop always has.
func fig12Row(h int, r *RunResult) []string {
	return []string{
		fmt.Sprintf("%d", h),
		report.FormatUS(int64(r.Base.AvgLatency())),
		report.FormatCount(r.Base.SustainedIOPS(SustainedWindow)),
		report.FormatUS(int64(r.Auto.AvgLatency())),
		report.FormatCount(r.Auto.SustainedIOPS(SustainedWindow)),
	}
}

func fig13Row(size int, r *RunResult) []string {
	nl := r.NormLatency()
	return []string{
		fmt.Sprintf("%d", size),
		fmt.Sprintf("%.3f", nl),
		fmt.Sprintf("%.1fx", 1/nl),
		fmt.Sprintf("%.2f", r.NormIOPS()),
	}
}

func fig14Row(size int, r *RunResult) []string {
	b, a := r.Base.MeanBreakdown(), r.Auto.MeanBreakdown()
	return []string{
		fmt.Sprintf("%d", size),
		norm(a.LinkContention(), b.LinkContention()),
		norm(a.StorageContention(), b.StorageContention()),
	}
}

func fig15Row(label string, mb metrics.Breakdown) []string {
	return []string{label,
		report.FormatUS(int64(mb.RCStall)),
		report.FormatUS(int64(mb.SwitchStall)),
		report.FormatUS(int64(mb.EPWait)),
		report.FormatUS(int64(mb.LinkWait)),
		report.FormatUS(int64(mb.StorageWait)),
		report.FormatUS(int64(mb.Texe)),
		report.FormatUS(int64(mb.LinkXfer)),
		report.FormatUS(int64(mb.FabricXfer)),
	}
}

// networkPoint carries the rendered rows one network-size run
// contributes to Figures 13, 14 and 15.
type networkPoint struct {
	fig13, fig14         []string
	fig15Base, fig15Auto []string
}

// networkPoints runs the micro-benchmark across network sizes through
// the sweep pool, caching the rendered rows (Figures 13-15 share the
// sweep, so the pair runs happen once regardless of which figure asks
// first).
func (s *Suite) networkPoints() ([]networkPoint, error) {
	if s.netPoints != nil {
		return s.netPoints, nil
	}
	requests := 40_000
	if s.Requests > 0 {
		requests = s.Requests
	}
	cfg, opts := s.Config, s.Options
	outs, err := sweep.Map(s.workers(), sweep.Indexed(len(NetworkSizes), s.Seed), func(sp sweep.Spec) ([]byte, error) {
		size := NetworkSizes[sp.Index]
		c := cfg
		c.Geometry.ClustersPerSwitch = size
		r, err := runPair(c, opts, sp.Seed, microProfile(4, requests, 1.5))
		if err != nil {
			return nil, err
		}
		return encodeRows([][]string{
			fig13Row(size, r),
			fig14Row(size, r),
			fig15Row(fmt.Sprintf("base-4x%d", size), r.Base.MeanBreakdown()),
			fig15Row(fmt.Sprintf("3A-4x%d", size), r.Auto.MeanBreakdown()),
		}), nil
	})
	if err != nil {
		return nil, err
	}
	pts := make([]networkPoint, len(outs))
	for i, b := range outs {
		rows := decodeRows(b)
		pts[i] = networkPoint{fig13: rows[0], fig14: rows[1], fig15Base: rows[2], fig15Auto: rows[3]}
	}
	s.netPoints = pts
	return pts, nil
}

// faultPoint runs one row of the degraded-array study: the full
// arena — workload, fault plan, array, injector — is built inside the
// call, so two rows can run on different workers without sharing
// anything.
func faultPoint(cfg array.Config, opts core.Options, seed uint64, requests int, autonomic bool) ([]byte, error) {
	p := microProfile(2, 20_000, 1.0)
	p.Name = "fault-mixed"
	p.ReadRatio = 0.6
	p.WriteRandomness = 1
	if requests > 0 {
		p.Requests = requests
	}
	reqs, _, err := workload.Generate(cfg.Geometry, p, seed)
	if err != nil {
		return nil, err
	}
	span := reqs[len(reqs)-1].Arrival
	plan := fault.ReferencePlan(cfg.Geometry, span)
	// Phase boundaries come from the plan itself: healthy until the FIMM
	// death, degraded until the replug, recovered after.
	tDeath := plan.Events[0].At
	tReplug := plan.Events[2].At

	name := "autonomic-off"
	if autonomic {
		name = "autonomic-on"
	}
	a, err := array.New(cfg)
	if err != nil {
		return nil, err
	}
	if autonomic {
		core.Attach(a, opts)
	}
	inj := fault.Attach(a, plan, fault.Options{Recover: autonomic})
	rec, err := a.Run(reqs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fault study %s: %w", name, err)
	}
	fs := a.FaultStats()
	is := inj.Stats()
	row := FaultRow{
		Name:          name,
		AvailHealthy:  rec.Availability(0, tDeath),
		AvailDegraded: rec.Availability(tDeath, tReplug),
		AvailPost:     rec.Availability(tReplug, endOfRun),
		Failed:        fs.RequestsFailed,
		Remapped:      fs.ReadsRemapped,
		Redirected:    fs.WritesRedirected,
		Evacuated:     is.Evacuated,
		AvgLat:        rec.AvgLatency(),
	}
	for _, r := range is.Recoveries {
		row.TTR += r.TTR()
	}
	return encodeRows([][]string{faultRowCells(row)}), nil
}
