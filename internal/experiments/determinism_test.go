package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/fault"
	"triplea/internal/simx"
	"triplea/internal/workload"
)

// serializeRun executes one read and one write micro-workload end to
// end (baseline and Triple-A, so FTL, GC, migration, and reshaping
// paths all run) and renders every per-request record plus the summary
// counters to text. Any nondeterminism anywhere in the stack — map
// iteration reaching the event queue, an unseeded random draw, wall
// clock leaking into a latency — shows up as a byte difference.
func serializeRun(t *testing.T, seed uint64) string {
	t.Helper()
	var b strings.Builder
	for _, p := range []workload.Profile{
		workload.MicroRead(2, 2000, 240_000),
		workload.MicroWrite(2, 2000, 120_000),
	} {
		s := NewSuite()
		s.Seed = seed
		r, err := s.RunProfile(p)
		if err != nil {
			t.Fatalf("seed %d, %s: %v", seed, p.Name, err)
		}
		for _, rec := range r.Base.Records() {
			fmt.Fprintf(&b, "base %+v\n", rec)
		}
		for _, rec := range r.Auto.Records() {
			fmt.Fprintf(&b, "auto %+v\n", rec)
		}
		fmt.Fprintf(&b, "summary gc=%d/%d moved=%d erases=%d/%d mgr=%+v ftl=%+v/%+v\n",
			r.BaseGC, r.AutoGC, r.AutoMoved, r.BaseErases, r.AutoErases,
			r.Manager, r.BaseFTL, r.AutoFTL)
	}
	return b.String()
}

// TestDeterministicReplay is the repository's reproducibility contract
// (the property the simlint rules police statically): the same seed
// must yield a byte-identical run, and a different seed must not.
func TestDeterministicReplay(t *testing.T) {
	first := serializeRun(t, 42)
	second := serializeRun(t, 42)
	if first != second {
		a, b := strings.Split(first, "\n"), strings.Split(second, "\n")
		for i := range a {
			if i >= len(b) {
				t.Fatalf("same seed diverged: second run ended at line %d", i+1)
			}
			if a[i] != b[i] {
				t.Fatalf("same seed diverged at line %d:\n  run1: %s\n  run2: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("same seed produced different output lengths: %d vs %d bytes", len(first), len(second))
	}
	other := serializeRun(t, 43)
	if first == other {
		t.Fatal("different seeds produced byte-identical runs; the seed is not reaching the workload")
	}
}

// serializeFaultedRun executes a mixed workload under the reference
// fault plan (one FIMM death, one cluster hot-unplug/replug) with
// degraded-mode recovery on, and renders every completion, every
// failure, and all fault/recovery counters to text. The determinism
// contract extends to faulted runs: fault delivery, mapping drops,
// write redirection and the evacuation pump must all replay
// byte-identically from the same seed.
func serializeFaultedRun(t *testing.T, seed uint64) string {
	t.Helper()
	s := NewSuite()
	s.Seed = seed
	p := workload.MicroRead(2, 2000, 240_000)
	p.ReadRatio = 0.6
	p.WriteRandomness = 1
	reqs, _, err := workload.Generate(s.Config.Geometry, p, s.Seed)
	if err != nil {
		t.Fatal(err)
	}
	span := reqs[len(reqs)-1].Arrival
	plan := fault.ReferencePlan(s.Config.Geometry, span)
	plan.Seed = seed

	var b strings.Builder
	for _, autonomic := range []bool{false, true} {
		a, err := array.New(s.Config)
		if err != nil {
			t.Fatal(err)
		}
		if autonomic {
			core.Attach(a, s.Options)
		}
		inj := fault.Attach(a, plan, fault.Options{Recover: autonomic})
		rec, err := a.Run(reqs)
		if err != nil {
			t.Fatalf("seed %d, autonomic=%v: %v", seed, autonomic, err)
		}
		if a.InFlight() != 0 {
			t.Fatalf("seed %d, autonomic=%v: %d requests stuck", seed, autonomic, a.InFlight())
		}
		for _, r := range rec.Records() {
			fmt.Fprintf(&b, "done %+v\n", r)
		}
		for _, f := range rec.Failures() {
			fmt.Fprintf(&b, "fail %+v\n", f)
		}
		fmt.Fprintf(&b, "faults auto=%v arr=%+v inj=%+v ftl=%+v lost=%d\n",
			autonomic, a.FaultStats(), inj.Stats(), a.FTL().Stats(), a.FTL().LostPages())
	}
	return b.String()
}

// Golden digest of serializeRun(seed=42), captured on the closure-based
// event path immediately before the typed-pooled-event refactor. The
// refactor's contract is stronger than "same seed ⇒ same bytes within a
// build": recycling event nodes, packets, and commands must not perturb
// event ordering at all, so the refactored simulator must still emit
// these exact bytes.
const (
	goldenSeed      = 42
	goldenSHA256    = "d74880c7048edabdff9768b4d4be0a14c877490dd2aa533740a05457e492726d"
	goldenOutputLen = 1811629
)

// TestGoldenReplay diffs a run against the pre-refactor golden digest.
// If a change legitimately alters simulated timing (a new model, a
// parameter change), re-capture the constants above in the same commit
// and say so in the commit message; if this fails on a "pure
// refactor", the refactor reordered events and must be fixed instead.
func TestGoldenReplay(t *testing.T) {
	// Under -tags simcheck, every Array.Run inside serializeRun asserts
	// the per-pool leak ledger drained; this snapshot extends the same
	// check across the whole replay, so a pooled object leaked anywhere
	// in the seed-42 run fails here with its pool's name.
	drainSnap := simx.SnapshotLedger()
	out := serializeRun(t, goldenSeed)
	sum := sha256.Sum256([]byte(out))
	got := hex.EncodeToString(sum[:])
	if len(out) != goldenOutputLen || got != goldenSHA256 {
		t.Fatalf("run diverged from pre-refactor golden bytes:\n  got  sha256=%s len=%d\n  want sha256=%s len=%d",
			got, len(out), goldenSHA256, goldenOutputLen)
	}
	if err := simx.AssertDrained(drainSnap); err != nil {
		t.Fatalf("seed-%d golden run leaked pooled objects: %v", goldenSeed, err)
	}
}

// Golden digest of serializeFaultedRun(seed=42): the degraded-array
// acceptance scenario, pinned the same way as the unfaulted golden
// replay. Re-capture in the same commit if a change legitimately moves
// simulated timing; a divergence on a pure refactor is a reordering
// bug on the fault paths.
const (
	faultedGoldenSHA256    = "322915e117385606141ef7a0efb910082c3f5f7971b92abfafabe4ed5e813b59"
	faultedGoldenOutputLen = 910294
)

// TestFaultedGoldenReplay is the faulted half of the reproducibility
// contract: seed 42 plus the reference fault plan must yield these
// exact bytes, twice, with every pool drained.
func TestFaultedGoldenReplay(t *testing.T) {
	drainSnap := simx.SnapshotLedger()
	first := serializeFaultedRun(t, goldenSeed)
	second := serializeFaultedRun(t, goldenSeed)
	if first != second {
		t.Fatal("same seed produced different faulted runs")
	}
	if err := simx.AssertDrained(drainSnap); err != nil {
		t.Fatalf("faulted golden run leaked pooled objects: %v", err)
	}
	sum := sha256.Sum256([]byte(first))
	got := hex.EncodeToString(sum[:])
	if len(first) != faultedGoldenOutputLen || got != faultedGoldenSHA256 {
		t.Fatalf("faulted run diverged from golden bytes:\n  got  sha256=%s len=%d\n  want sha256=%s len=%d",
			got, len(first), faultedGoldenSHA256, faultedGoldenOutputLen)
	}
}
