package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"triplea/internal/decision"
	"triplea/internal/workload"
)

// Golden digest of the seed-42 decision TraceSet (DecisionTraces,
// encoded with decision.EncodeJSON). The trace builder runs its three
// scenarios serially, so these bytes are independent of any sweep
// width by construction; the pin catches both nondeterminism in the
// recorder and accidental drift in the decision sites' candidate
// enumeration order. Re-capture in the same commit if a change
// legitimately alters autonomic decisions, and say so in the message.
const (
	decisionGoldenSHA256 = "2e8c98d9c5fc7451b15b013b56551a0d9de4f12d10d247b4062fca29e28b9469"
	decisionGoldenLen    = 3425065
)

// TestDecisionTraceGolden pins the recorded decision traces of the
// reference scenarios byte-for-byte and proves every decision family
// is witnessed by at least one scenario.
func TestDecisionTraceGolden(t *testing.T) {
	encode := func() []byte {
		t.Helper()
		ts, err := DecisionTraces(42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := decision.EncodeJSON(*ts)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := encode()
	sum := sha256.Sum256(first)
	got := hex.EncodeToString(sum[:])
	if len(first) != decisionGoldenLen || got != decisionGoldenSHA256 {
		t.Fatalf("decision traces diverged from golden bytes:\n  got  sha256=%s len=%d\n  want sha256=%s len=%d",
			got, len(first), decisionGoldenSHA256, decisionGoldenLen)
	}
	if second := encode(); string(first) != string(second) {
		t.Fatal("same seed produced different decision traces")
	}

	ts, err := decision.DecodeTraceSet(first)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Scenarios) != 3 {
		t.Fatalf("%d scenarios, want 3", len(ts.Scenarios))
	}
	var seen [decision.NumFamilies]bool
	for _, sc := range ts.Scenarios {
		if sc.Trace.Summary.Decisions == 0 {
			t.Errorf("scenario %s recorded no decisions", sc.Name)
		}
		for _, f := range sc.Trace.Summary.Families {
			if f.Count > 0 {
				seen[int(f.Family)] = true
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("family %s witnessed by no scenario", decision.Family(i))
		}
	}
}

// serializePair mirrors serializeRun with a selectable decision
// backend: the micro-benchmark pair rendered record by record.
func serializePair(t *testing.T, backend decision.Backend) string {
	t.Helper()
	var b strings.Builder
	for _, p := range []workload.Profile{
		workload.MicroRead(2, 2000, 240_000),
		workload.MicroWrite(2, 2000, 120_000),
	} {
		s := NewSuite()
		s.Seed = 42
		s.Config.Decisions = backend
		r, err := s.RunProfile(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, rec := range r.Base.Records() {
			fmt.Fprintf(&b, "base %+v\n", rec)
		}
		for _, rec := range r.Auto.Records() {
			fmt.Fprintf(&b, "auto %+v\n", rec)
		}
		fmt.Fprintf(&b, "summary gc=%d/%d moved=%d erases=%d/%d mgr=%+v ftl=%+v/%+v\n",
			r.BaseGC, r.AutoGC, r.AutoMoved, r.BaseErases, r.AutoErases,
			r.Manager, r.BaseFTL, r.AutoFTL)
	}
	return b.String()
}

// TestRecordingIsPureObservation proves turning the flight recorder on
// does not perturb the simulation: the recorded run must emit the
// exact golden bytes the recording-off run is pinned to. Any decision
// site that computes its candidates differently when a recorder is
// attached (instead of only observing) fails here.
func TestRecordingIsPureObservation(t *testing.T) {
	out := serializePair(t, decision.Ring)
	sum := sha256.Sum256([]byte(out))
	got := hex.EncodeToString(sum[:])
	if len(out) != goldenOutputLen || got != goldenSHA256 {
		t.Fatalf("recording on perturbed the simulation:\n  got  sha256=%s len=%d\n  want sha256=%s len=%d",
			got, len(out), goldenSHA256, goldenOutputLen)
	}
}

// TestRegretStudySmoke checks the regret study renders one row per
// Table 1 workload on a reduced suite (the byte-equivalence across
// sweep widths is pinned by TestParallelEquivalence).
func TestRegretStudySmoke(t *testing.T) {
	s := testSuite()
	s.Requests = 800
	tbl, err := s.RegretStudy()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, name := range WorkloadNames() {
		if !strings.Contains(out, name) {
			t.Errorf("regret table missing workload %s:\n%s", name, out)
		}
	}
}
