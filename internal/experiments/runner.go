package experiments

import (
	"fmt"
	"io"

	"triplea/internal/report"
)

// Experiment names accepted by Run and the bench command.
var Names = []string{
	"table1", "table2", "fig1", "fig9", "fig10", "fig11",
	"fig12", "fig13", "fig14", "fig15", "fig16", "wear", "dram", "cost",
	"fault",
}

// Run executes one named experiment and renders it to w.
func (s *Suite) Run(name string, w io.Writer) error {
	render := func(t *report.Table, err error) error {
		if err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
		_, err = fmt.Fprintln(w)
		return err
	}
	switch name {
	case "table1":
		t, err := s.Table1()
		return render(t, err)
	case "table2":
		t, err := s.Table2()
		return render(t, err)
	case "fig1":
		_, t, err := s.Fig1()
		return render(t, err)
	case "fig9":
		t, err := s.Fig9()
		return render(t, err)
	case "fig10":
		t, err := s.Fig10()
		return render(t, err)
	case "fig11":
		tables, err := s.Fig11()
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := render(t, nil); err != nil {
				return err
			}
		}
		return nil
	case "fig12":
		t, err := s.Fig12()
		return render(t, err)
	case "fig13":
		t, err := s.Fig13()
		return render(t, err)
	case "fig14":
		t, err := s.Fig14()
		return render(t, err)
	case "fig15":
		t, err := s.Fig15()
		return render(t, err)
	case "fig16":
		_, t, err := s.Fig16()
		return render(t, err)
	case "wear":
		_, t, err := s.Wear()
		return render(t, err)
	case "dram":
		t, err := s.DRAMStudy()
		return render(t, err)
	case "cost":
		t, err := s.CostStudy()
		return render(t, err)
	case "fault":
		t, err := s.FaultStudy()
		return render(t, err)
	default:
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names)
	}
}

// RunAll executes every experiment in order.
func (s *Suite) RunAll(w io.Writer) error {
	for _, name := range Names {
		if _, err := fmt.Fprintf(w, "== %s ==\n", name); err != nil {
			return err
		}
		if err := s.Run(name, w); err != nil {
			return err
		}
	}
	return nil
}
