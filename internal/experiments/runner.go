package experiments

import (
	"fmt"
	"io"

	"triplea/internal/report"
)

// experimentSpec ties one experiment name to its runner. Names, Run
// and RunAll all derive from the registry slice below — the single
// source of truth, so registration cannot drift from the name list
// (the old switch duplicated it).
type experimentSpec struct {
	name string
	run  func(*Suite, io.Writer) error
}

// renderOne renders a finished table followed by a blank separator
// line, the contract every registry entry shares.
func renderOne(w io.Writer, t *report.Table, err error) error {
	if err != nil {
		return err
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}

// registry lists every experiment in paper order.
var registry = []experimentSpec{
	{"table1", func(s *Suite, w io.Writer) error { t, err := s.Table1(); return renderOne(w, t, err) }},
	{"table2", func(s *Suite, w io.Writer) error { t, err := s.Table2(); return renderOne(w, t, err) }},
	{"fig1", func(s *Suite, w io.Writer) error { _, t, err := s.Fig1(); return renderOne(w, t, err) }},
	{"fig9", func(s *Suite, w io.Writer) error { t, err := s.Fig9(); return renderOne(w, t, err) }},
	{"fig10", func(s *Suite, w io.Writer) error { t, err := s.Fig10(); return renderOne(w, t, err) }},
	{"fig11", func(s *Suite, w io.Writer) error {
		tables, err := s.Fig11()
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := renderOne(w, t, nil); err != nil {
				return err
			}
		}
		return nil
	}},
	{"fig12", func(s *Suite, w io.Writer) error { t, err := s.Fig12(); return renderOne(w, t, err) }},
	{"fig13", func(s *Suite, w io.Writer) error { t, err := s.Fig13(); return renderOne(w, t, err) }},
	{"fig14", func(s *Suite, w io.Writer) error { t, err := s.Fig14(); return renderOne(w, t, err) }},
	{"fig15", func(s *Suite, w io.Writer) error { t, err := s.Fig15(); return renderOne(w, t, err) }},
	{"fig16", func(s *Suite, w io.Writer) error { _, t, err := s.Fig16(); return renderOne(w, t, err) }},
	{"wear", func(s *Suite, w io.Writer) error { _, t, err := s.Wear(); return renderOne(w, t, err) }},
	{"dram", func(s *Suite, w io.Writer) error { t, err := s.DRAMStudy(); return renderOne(w, t, err) }},
	{"cost", func(s *Suite, w io.Writer) error { t, err := s.CostStudy(); return renderOne(w, t, err) }},
	{"fault", func(s *Suite, w io.Writer) error { t, err := s.FaultStudy(); return renderOne(w, t, err) }},
	{"regret", func(s *Suite, w io.Writer) error { t, err := s.RegretStudy(); return renderOne(w, t, err) }},
}

// Names lists the experiment names accepted by Run and the bench
// command, derived from the registry at init.
var Names = func() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.name
	}
	return names
}()

// Run executes one named experiment and renders it to w.
func (s *Suite) Run(name string, w io.Writer) error {
	for _, e := range registry {
		if e.name == name {
			return e.run(s, w)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names)
}

// RunAll executes every experiment in order.
func (s *Suite) RunAll(w io.Writer) error {
	for _, e := range registry {
		if _, err := fmt.Fprintf(w, "== %s ==\n", e.name); err != nil {
			return err
		}
		if err := e.run(s, w); err != nil {
			return err
		}
	}
	return nil
}
