package experiments

import (
	"fmt"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/cost"
	"triplea/internal/report"
	"triplea/internal/sweep"
	"triplea/internal/units"
	"triplea/internal/workload"
)

// DRAMStudy reproduces Section 6.6's argument about DRAM relocation:
// the large DRAM moved from the SSDs' on-board buffers to the
// management module still caches (hits bypass the fabric entirely),
// but caching alone cannot resolve link/storage contention — misses
// keep sharing the same buses and FIMMs — while Triple-A's reshaping
// does. Four configurations run the websql workload: the baseline with
// and without the relocated DRAM, and Triple-A with and without it.
func (s *Suite) DRAMStudy() (*report.Table, error) {
	return s.memoTable("dram", s.dramStudy)
}

func (s *Suite) dramStudy() (*report.Table, error) {
	p, _ := workload.ProfileByName("websql")
	p = s.prepare(p)
	reqs, _, err := workload.Generate(s.Config.Geometry, p, s.Seed)
	if err != nil {
		return nil, err
	}

	// Size the DRAM at a quarter of the touched footprint: a realistic
	// cache that helps but cannot absorb the hot region.
	footprint := p.Footprint * units.Pages(s.Config.Geometry.TotalClusters())
	footprintBytes := units.PagesToBytes(footprint, s.Config.Geometry.Nand.PageSizeBytes)
	dramBytes := footprintBytes / 4

	t := report.NewTable(
		fmt.Sprintf("Section 6.6: DRAM relocation study (websql, %d MiB host DRAM)", dramBytes>>20),
		"config", "avgLat(us)", "P99(us)", "dramHit%", "linkCont(us)", "storCont(us)")
	for _, v := range []struct {
		name      string
		dram      bool
		autonomic bool
	}{
		{"baseline", false, false},
		{"baseline+dram", true, false},
		{"triple-a", false, true},
		{"triple-a+dram", true, true},
	} {
		cfg := s.Config
		if v.dram {
			cfg.HostDRAMBytes = dramBytes
		}
		a, err := array.New(cfg)
		if err != nil {
			return nil, err
		}
		if v.autonomic {
			core.Attach(a, s.Options)
		}
		rec, err := a.Run(reqs)
		if err != nil {
			return nil, err
		}
		mb := rec.MeanBreakdown()
		t.AddRow(v.name,
			report.FormatUS(int64(rec.AvgLatency())),
			report.FormatUS(int64(rec.Percentile(99))),
			fmt.Sprintf("%.1f", a.CacheStats().HitRate()*100),
			report.FormatUS(int64(mb.LinkContention())),
			report.FormatUS(int64(mb.StorageContention())),
		)
	}
	return t, nil
}

// FaultStudy runs the degraded-array study: the reference fault plan
// (one FIMM death, one cluster hot-unplug/replug cycle) injected into a
// mixed read/write workload, on the array with autonomics off (faults
// simply break what they hit) and on Triple-A with degraded-mode
// recovery (lost pages remap out-of-place, the pulled cluster's live
// data evacuates over the fabric before release). The table reports
// per-phase availability, failure/redirect counters, evacuation volume
// and time-to-recover for both rows.
func (s *Suite) FaultStudy() (*report.Table, error) {
	return s.memoTable("fault", s.faultStudy)
}

func (s *Suite) faultStudy() (*report.Table, error) {
	cfg, opts := s.Config, s.Options
	requests := s.Requests
	outs, err := sweep.Map(s.workers(), sweep.Indexed(2, s.Seed), func(sp sweep.Spec) ([]byte, error) {
		// Each row rebuilds its whole arena (workload, plan, array,
		// injector) inside faultPoint, so off/on can run on different
		// workers without sharing anything.
		return faultPoint(cfg, opts, sp.Seed, requests, sp.Index == 1)
	})
	if err != nil {
		return nil, err
	}
	t := newFaultTable()
	for _, b := range outs {
		row, err := decodeFaultRow(b)
		if err != nil {
			return nil, err
		}
		t.AddRow(faultRowCells(row)...)
	}
	return t, nil
}

// CostStudy reproduces the paper's cost argument (Sections 3.1, 6.5):
// unboxing saves 35-50 % per storage unit, and even with the measured
// migration-induced lifetime loss the unboxed array's replacement
// spending stays below the SSD array's.
func (s *Suite) CostStudy() (*report.Table, error) {
	return s.memoTable("cost", s.costStudy)
}

func (s *Suite) costStudy() (*report.Table, error) {
	w, _, err := s.Wear() // measured lifetime loss feeds the economics
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Sections 3.1/6.5: unboxing cost economics",
		"model", "unit saving", "lifetime loss", "replacement cost vs SSD array")
	for _, v := range []struct {
		name string
		m    cost.Model
		loss float64
	}{
		{"paper low (NAND=65% of SSD)", cost.Model{NANDFractionOfSSD: 0.65, FIMMOverhead: 0.05}, 0.23},
		{"paper high (NAND=50% of SSD)", cost.Model{NANDFractionOfSSD: 0.50, FIMMOverhead: 0.05}, 0.23},
		{"measured wear, mid model", cost.DefaultModel(), w.LifetimeLoss},
	} {
		t.AddRow(v.name,
			fmt.Sprintf("%.1f%%", v.m.UnitSavings()*100),
			fmt.Sprintf("%.1f%%", v.loss*100),
			fmt.Sprintf("%.2fx", v.m.ReplacementCostFactor(v.loss)),
		)
	}
	return t, nil
}
