package experiments

import (
	"io"
	"strings"
	"testing"

	"triplea/internal/workload"
)

// testSuite shrinks the array and the request counts so the whole
// experiment set runs in seconds.
func testSuite() *Suite {
	s := NewSuite()
	s.Config.Geometry.Switches = 2
	s.Config.Geometry.ClustersPerSwitch = 8
	s.Config.Geometry.PackagesPerFIMM = 4
	s.Config.Geometry.Nand.BlocksPerPlane = 128
	s.Requests = 4000
	return s
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 13 {
		t.Fatalf("%d workloads, want 13", len(names))
	}
	if names[0] != "cfs" || names[12] != "l-eigen" {
		t.Errorf("order: %v", names)
	}
}

func TestWorkloadCaching(t *testing.T) {
	s := testSuite()
	a, err := s.Workload("prn")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Workload("prn")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("workload run not cached")
	}
	if _, err := s.Workload("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunResultNormalization(t *testing.T) {
	s := testSuite()
	r, err := s.Workload("prn")
	if err != nil {
		t.Fatal(err)
	}
	if r.Base.Count() != 4000 || r.Auto.Count() != 4000 {
		t.Fatalf("request counts: %d / %d", r.Base.Count(), r.Auto.Count())
	}
	if nl := r.NormLatency(); nl <= 0 || nl > 1.5 {
		t.Errorf("NormLatency = %v", nl)
	}
	if ni := r.NormIOPS(); ni < 0.5 {
		t.Errorf("NormIOPS = %v", ni)
	}
}

func TestTable1MatchesPublished(t *testing.T) {
	s := testSuite()
	tbl, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, name := range WorkloadNames() {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	s := testSuite()
	tbl, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 13 {
		t.Errorf("Table 2 has %d rows", len(tbl.Rows))
	}
}

func TestFig1Degradation(t *testing.T) {
	s := testSuite()
	res, tbl, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CDFs) != 5 {
		t.Fatalf("%d CDFs", len(res.CDFs))
	}
	// More hot regions must degrade the distribution body (paper
	// Figure 1); the extreme tail and the exact link/storage split are
	// validated at full scale by the benchmarks.
	med1 := res.CDFs[0][4].LatencyUS
	med5 := res.CDFs[4][4].LatencyUS
	if med5 <= med1 {
		t.Errorf("hot=5 median %.0fus not above hot=1 median %.0fus", med5, med1)
	}
	if res.StoreFactor <= 0 || res.LinkFactor <= 0 {
		t.Errorf("degradation factors not computed: link=%v storage=%v",
			res.LinkFactor, res.StoreFactor)
	}
	if len(tbl.Rows) != 10 {
		t.Errorf("Fig1 table rows = %d", len(tbl.Rows))
	}
}

func TestFig9Improvements(t *testing.T) {
	s := testSuite()
	tbl, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 13 {
		t.Fatalf("Fig9 rows = %d", len(tbl.Rows))
	}
	// Hot workloads must improve; cfs/web must not change materially.
	for _, name := range []string{"fin", "mds", "proj"} {
		r, _ := s.Workload(name)
		if r.NormLatency() >= 0.9 {
			t.Errorf("%s normalized latency %v, want < 0.9", name, r.NormLatency())
		}
	}
	// cfs/web neutrality (normalized latency ~1) holds at full scale;
	// the shrunken test array overloads them, so it is asserted by the
	// full-scale benchmarks instead.
}

func TestFig10ContentionDrops(t *testing.T) {
	s := testSuite()
	if _, err := s.Fig10(); err != nil {
		t.Fatal(err)
	}
	r, _ := s.Workload("fin")
	b, a := r.Base.MeanBreakdown(), r.Auto.MeanBreakdown()
	if a.QueueStall() >= b.QueueStall() {
		t.Errorf("fin queue stall did not drop: %v -> %v", b.QueueStall(), a.QueueStall())
	}
	if a.LinkContention() >= b.LinkContention() {
		t.Errorf("fin link contention did not drop: %v -> %v",
			b.LinkContention(), a.LinkContention())
	}
}

func TestFig11TailImproves(t *testing.T) {
	s := testSuite()
	tables, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("%d Fig11 tables", len(tables))
	}
	r, _ := s.Workload("mds")
	if r.Auto.Percentile(99) >= r.Base.Percentile(99) {
		t.Errorf("mds P99 did not improve: %v -> %v",
			r.Base.Percentile(99), r.Auto.Percentile(99))
	}
}

func TestFig12StableLatency(t *testing.T) {
	s := testSuite()
	tbl, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("Fig12 rows = %d", len(tbl.Rows))
	}
}

func TestNetworkSweepShared(t *testing.T) {
	s := testSuite()
	if _, err := s.Fig13(); err != nil {
		t.Fatal(err)
	}
	// Fig14/15 reuse the sweep cache: they must not error and must be fast.
	if _, err := s.Fig14(); err != nil {
		t.Fatal(err)
	}
	tbl, err := s.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2*len(NetworkSizes) {
		t.Errorf("Fig15 rows = %d", len(tbl.Rows))
	}
}

func TestFig16ShadowBeatsNaive(t *testing.T) {
	s := testSuite()
	res, _, err := s.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AvgUS) != 4 {
		t.Fatalf("AvgUS = %v", res.AvgUS)
	}
	base, naive, shadow, full := res.AvgUS[0], res.AvgUS[1], res.AvgUS[2], res.AvgUS[3]
	if shadow > naive {
		t.Errorf("shadow cloning (%.0fus) slower than naive migration (%.0fus)", shadow, naive)
	}
	if full >= base {
		t.Errorf("triple-a (%.0fus) not better than baseline (%.0fus)", full, base)
	}
}

func TestWearBounded(t *testing.T) {
	s := testSuite()
	w, tbl, err := s.Wear()
	if err != nil {
		t.Fatal(err)
	}
	if w.HostWrites == 0 {
		t.Fatal("no host writes in wear study")
	}
	// Paper's worst case: 34% extra writes. Ours must be in a sane band.
	if w.ExtraWriteFrac < 0 || w.ExtraWriteFrac > 1 {
		t.Errorf("ExtraWriteFrac = %v", w.ExtraWriteFrac)
	}
	if w.LifetimeLoss < 0 || w.LifetimeLoss > 0.6 {
		t.Errorf("LifetimeLoss = %v", w.LifetimeLoss)
	}
	if !strings.Contains(tbl.String(), "extra writes") {
		t.Error("wear table incomplete")
	}
}

func TestRunAllAndNames(t *testing.T) {
	s := testSuite()
	s.Requests = 1500 // keep the full pass quick
	var sb strings.Builder
	if err := s.RunAll(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range Names {
		if !strings.Contains(out, "== "+name+" ==") {
			t.Errorf("RunAll missing %s", name)
		}
	}
	if err := s.Run("bogus", &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestMicroProfileScaling(t *testing.T) {
	p := microProfile(4, 1000, 1.5)
	wantRate := 1.5 * 40_000 * 4 / p.HotIORatio
	if p.RateIOPS != wantRate {
		t.Errorf("rate = %v, want %v", p.RateIOPS, wantRate)
	}
	p0 := microProfile(0, 1000, 1.5)
	if p0.RateIOPS != 150_000 {
		t.Errorf("hot=0 rate = %v", p0.RateIOPS)
	}
	var _ workload.Profile = p
}

func TestDRAMStudy(t *testing.T) {
	s := testSuite()
	tbl, err := s.DRAMStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("DRAM study rows = %d", len(tbl.Rows))
	}
	// Cached: second call returns the same table.
	tbl2, err := s.DRAMStudy()
	if err != nil || tbl2 != tbl {
		t.Error("DRAM study not memoized")
	}
	// RunAll covers "dram" too.
	if err := s.Run("dram", io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentTablesMemoized(t *testing.T) {
	s := testSuite()
	a, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Fig9()
	if err != nil || a != b {
		t.Error("Fig9 not memoized")
	}
	r1, t1, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	r2, t2, err := s.Fig1()
	if err != nil || r1 != r2 || t1 != t2 {
		t.Error("Fig1 not memoized")
	}
}

// Determinism: two identically seeded full runs produce identical
// metrics — the reproducibility guarantee every experiment rests on.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() (float64, float64, uint64) {
		s := testSuite()
		r, err := s.Workload("websql")
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.Auto.AvgLatency()), r.Auto.SustainedIOPS(SustainedWindow),
			r.Manager.Migrations
	}
	l1, i1, m1 := run()
	l2, i2, m2 := run()
	if l1 != l2 || i1 != i2 || m1 != m2 {
		t.Errorf("runs diverged: (%v,%v,%d) vs (%v,%v,%d)", l1, i1, m1, l2, i2, m2)
	}
}
