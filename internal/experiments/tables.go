package experiments

import (
	"fmt"

	"triplea/internal/report"
	"triplea/internal/simx"
	"triplea/internal/units"
	"triplea/internal/workload"
)

// Table1 re-derives the workload characteristics from the synthetic
// traces and reports them against the published values, validating that
// the generator reproduces Table 1.
func (s *Suite) Table1() (*report.Table, error) {
	return s.memoTable("table1", s.table1)
}

func (s *Suite) table1() (*report.Table, error) {
	t := report.NewTable("Table 1: workload characteristics (published / generated)",
		"workload", "read%", "readRand%", "writeRand%", "#hot", "hotIO%")
	for _, p := range workload.Table1Profiles() {
		p = s.prepare(p)
		_, gen, err := workload.Generate(s.Config.Geometry, p, s.Seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			p.Name,
			fmt.Sprintf("%.1f / %.1f", p.ReadRatio*100, gen.ReadRatio()*100),
			fmt.Sprintf("%.1f / %.1f", p.ReadRandomness*100, gen.ReadRandomness()*100),
			fmt.Sprintf("%.1f / %.1f", p.WriteRandomness*100, gen.WriteRandomness()*100),
			fmt.Sprintf("%d", len(gen.HotClusters)),
			fmt.Sprintf("%.1f / %.1f", p.HotIORatio*100, gen.HotIORatio()*100),
		)
	}
	return t, nil
}

// Table2 reports the absolute performance metrics of the non-autonomic
// array for every workload: average latency, sustained IOPS, and the
// average link-contention, storage-contention and queue-stall times —
// the paper's Table 2 columns.
func (s *Suite) Table2() (*report.Table, error) {
	return s.memoTable("table2", s.table2)
}

func (s *Suite) table2() (*report.Table, error) {
	t := report.NewTable("Table 2: non-autonomic all-flash array absolute metrics",
		"workload", "avgLat(us)", "IOPS", "linkCont(us)", "storCont(us)", "qStall(us)")
	for _, name := range WorkloadNames() {
		r, err := s.Workload(name)
		if err != nil {
			return nil, err
		}
		mb := r.Base.MeanBreakdown()
		t.AddRow(
			name,
			report.FormatUS(int64(r.Base.AvgLatency())),
			report.FormatCount(r.Base.SustainedIOPS(SustainedWindow)),
			report.FormatUS(int64(mb.LinkContention())),
			report.FormatUS(int64(mb.StorageContention())),
			report.FormatUS(int64(mb.QueueStall())),
		)
	}
	return t, nil
}

// endOfRun is the open upper bound of the last availability phase
// (far beyond any simulated run).
const endOfRun = (1 << 32) * simx.Second

// FaultRow is one configuration's line of the degraded-array table.
type FaultRow struct {
	Name          string
	AvailHealthy  float64 // before the first fault
	AvailDegraded float64 // FIMM dead / cluster pulled
	AvailPost     float64 // after the replug
	Failed        uint64  // requests terminated by faults
	Remapped      uint64  // lost reads restored from shadow clones
	Redirected    uint64  // writes steered off faulted hardware
	Evacuated     int     // pages moved off the pulled cluster
	TTR           simx.Time
	AvgLat        simx.Time
}

// newFaultTable builds the degraded-array study's header; rows arrive
// from faultRowCells (serially or through the sweep pool).
func newFaultTable() *report.Table {
	return report.NewTable(
		"Degraded-array study: reference fault plan (FIMM death + cluster hot-swap)",
		"config", "avail pre%", "avail degr%", "avail post%",
		"failed", "remapped", "redirected", "evac pages", "TTR(us)", "avgLat(us)")
}

// faultRowCells renders one configuration's line of the degraded-array
// table.
func faultRowCells(r FaultRow) []string {
	pct := func(f float64) string { return fmt.Sprintf("%.2f", f*100) }
	ttr := "-"
	if r.TTR > 0 {
		ttr = report.FormatUS(int64(r.TTR))
	}
	return []string{r.Name,
		pct(r.AvailHealthy), pct(r.AvailDegraded), pct(r.AvailPost),
		fmt.Sprintf("%d", r.Failed),
		fmt.Sprintf("%d", r.Remapped),
		fmt.Sprintf("%d", r.Redirected),
		fmt.Sprintf("%d", r.Evacuated),
		ttr,
		report.FormatUS(int64(r.AvgLat)),
	}
}

// faultTable renders the degraded-array study.
func faultTable(rows []FaultRow) *report.Table {
	t := newFaultTable()
	for _, r := range rows {
		t.AddRow(faultRowCells(r)...)
	}
	return t
}

// WearResult quantifies Section 6.5's wear analysis on a write-heavy
// workload: migration-induced extra writes and the implied lifetime
// reduction (paper worst case: 34% extra writes, 23% lifetime loss).
type WearResult struct {
	HostWrites      uint64
	MigrationWrites uint64
	GCWritesBase    uint64
	GCWritesAuto    uint64
	ExtraWriteFrac  float64 // migration writes / host writes
	LifetimeLoss    float64 // 1 - base_total/auto_total physical writes
}

// Wear runs the wear study (cached after the first call). The paper's
// worst case arises under migration-heavy operation, so the workload
// mixes reads (which trigger autonomic data migration of hot pages)
// with writes (the lifetime denominator) on a congested hot region.
func (s *Suite) Wear() (WearResult, *report.Table, error) {
	if s.wear != nil {
		return *s.wear, s.tables["wear"], nil
	}
	p := microProfile(3, 40_000, 1.5)
	p.Name = "mixed"
	p.ReadRatio = 0.5
	p.WriteRandomness = 1
	p.Footprint = 512 * units.Page // heavy overwrites keep pages hot
	r, err := s.RunProfile(p)
	if err != nil {
		return WearResult{}, nil, err
	}
	w := WearResult{
		HostWrites:      r.AutoFTL.HostWrites,
		MigrationWrites: r.AutoFTL.MigrationWrites,
		GCWritesBase:    r.BaseFTL.GCWrites,
		GCWritesAuto:    r.AutoFTL.GCWrites,
	}
	if w.HostWrites > 0 {
		w.ExtraWriteFrac = float64(w.MigrationWrites+w.GCWritesAuto-w.GCWritesBase) / float64(w.HostWrites)
		if w.ExtraWriteFrac < 0 {
			w.ExtraWriteFrac = float64(w.MigrationWrites) / float64(w.HostWrites)
		}
	}
	baseTotal := float64(r.BaseFTL.TotalWrites())
	autoTotal := float64(r.AutoFTL.TotalWrites())
	if autoTotal > 0 {
		w.LifetimeLoss = 1 - baseTotal/autoTotal
		if w.LifetimeLoss < 0 {
			w.LifetimeLoss = 0
		}
	}
	t := report.NewTable("Section 6.5: data migration wear overhead (write micro-benchmark)",
		"metric", "value", "paper")
	t.AddRow("host writes", fmt.Sprintf("%d", w.HostWrites), "")
	t.AddRow("migration writes", fmt.Sprintf("%d", w.MigrationWrites), "")
	t.AddRow("GC writes (base -> triple-a)", fmt.Sprintf("%d -> %d", w.GCWritesBase, w.GCWritesAuto), "")
	t.AddRow("extra writes", fmt.Sprintf("%.1f%%", w.ExtraWriteFrac*100), "<= 34% (worst case)")
	t.AddRow("lifetime decrease", fmt.Sprintf("%.1f%%", w.LifetimeLoss*100), "<= 23% (worst case)")
	s.wear, s.tables["wear"] = &w, t
	return w, t, nil
}
