// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6): each experiment builds the workloads,
// runs them on the non-autonomic baseline and on Triple-A, and reports
// the same rows and series the paper plots. EXPERIMENTS.md records
// paper-vs-measured for each one.
package experiments

import (
	"fmt"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/ftl"
	"triplea/internal/metrics"
	"triplea/internal/report"
	"triplea/internal/trace"
	"triplea/internal/workload"
)

// SustainedWindow is the completion-rate window used for sustained
// throughput (matches the workload burst ON phase). It aliases the
// metrics default so the streaming backend's incremental tracker is
// built for exactly this window.
const SustainedWindow = metrics.DefaultSustainedWindow

// RunResult holds one workload executed on both arrays.
type RunResult struct {
	Profile workload.Profile
	Gen     workload.GenStats

	Base *metrics.Recorder // non-autonomic
	Auto *metrics.Recorder // Triple-A

	BaseFTL ftl.Stats
	AutoFTL ftl.Stats
	Manager core.Stats

	BaseGC, AutoGC            uint64
	BaseMigrations, AutoMoved uint64
	BaseErases, AutoErases    uint64
}

// NormLatency reports Triple-A latency normalized to the baseline
// (lower is better; the paper's Figure 9a).
func (r *RunResult) NormLatency() float64 {
	if r.Base.AvgLatency() == 0 {
		return 1
	}
	return float64(r.Auto.AvgLatency()) / float64(r.Base.AvgLatency())
}

// NormIOPS reports Triple-A sustained throughput normalized to the
// baseline (higher is better; the paper's Figure 9b).
func (r *RunResult) NormIOPS() float64 {
	b := r.Base.SustainedIOPS(SustainedWindow)
	if b <= 0 {
		return 1
	}
	return r.Auto.SustainedIOPS(SustainedWindow) / b
}

// Suite runs and caches experiment workloads for one configuration.
type Suite struct {
	Config   array.Config
	Options  core.Options
	Seed     uint64
	Requests int // if > 0, overrides every profile's request count

	// Parallel is the sweep-pool width for multi-point experiments
	// (Fig12, Fig13-15, the fault study). 0 or 1 runs serially; any
	// width produces byte-identical tables (internal/sweep reassembles
	// by spec index, and parallel_test.go pins the equivalence).
	Parallel int

	// Fig12Points overrides the hot-cluster sweep's point count
	// (default 6, the paper's range; the sweep benchmark uses 16).
	Fig12Points int

	cache     map[string]*RunResult
	tables    map[string]*report.Table
	fig1      *Fig1Result
	fig16     *Fig16Result
	wear      *WearResult
	netPoints []networkPoint
}

// NewSuite returns a suite on the paper's default configuration.
func NewSuite() *Suite {
	return &Suite{
		Config:  array.DefaultConfig(),
		Options: core.DefaultOptions(),
		Seed:    42,
		cache:   make(map[string]*RunResult),
		tables:  make(map[string]*report.Table),
	}
}

// memoTable caches rendered experiment tables: repeated calls (e.g.
// from escalating benchmark iterations) reuse the first run's result.
func (s *Suite) memoTable(key string, build func() (*report.Table, error)) (*report.Table, error) {
	if t, ok := s.tables[key]; ok {
		return t, nil
	}
	t, err := build()
	if err != nil {
		return nil, err
	}
	s.tables[key] = t
	return t, nil
}

// prepare applies suite-level overrides to a profile.
func (s *Suite) prepare(p workload.Profile) workload.Profile {
	if s.Requests > 0 {
		p.Requests = s.Requests
	}
	return p
}

// runOne executes a profile on one array (see runOnePoint for the
// self-contained form sweep workers use).
func (s *Suite) runOne(p workload.Profile, opts *core.Options) (*metrics.Recorder, *array.Array, *core.Manager, error) {
	return runOnePoint(s.Config, s.Seed, p, opts)
}

// RunProfile executes a profile on the baseline and on Triple-A,
// exactly as given (suite-level request overrides are applied by
// Workload, not here, so sweeps can scale counts themselves). It
// delegates to runPair, the same code path sweep workers run, so the
// serial and parallel routes cannot diverge.
func (s *Suite) RunProfile(p workload.Profile) (*RunResult, error) {
	return runPair(s.Config, s.Options, s.Seed, p)
}

// Workload returns the cached pair run for a Table 1 workload.
func (s *Suite) Workload(name string) (*RunResult, error) {
	if r, ok := s.cache[name]; ok {
		return r, nil
	}
	p, ok := workload.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	r, err := s.RunProfile(s.prepare(p))
	if err != nil {
		return nil, err
	}
	s.cache[name] = r
	return r, nil
}

// WorkloadNames lists the Table 1 suite in paper order.
func WorkloadNames() []string {
	names := make([]string, 0, 13)
	for _, p := range workload.Table1Profiles() {
		names = append(names, p.Name)
	}
	return names
}

// microProfile builds the `read` micro-benchmark with per-hot-cluster
// offered load at `overload` x the calibrated cluster capacity, so the
// hot-region pressure is comparable across hot-cluster counts. The
// request count scales with the rate so every sweep point simulates the
// same wall-clock duration (nominalRequests corresponds to 150K IOPS).
func microProfile(hot int, nominalRequests int, overload float64) workload.Profile {
	p := workload.MicroRead(hot, nominalRequests, 150_000)
	if hot > 0 {
		p.RateIOPS = overload * 40_000 * float64(hot) / p.HotIORatio
		p.Requests = int(float64(nominalRequests) * p.RateIOPS / 150_000)
	}
	return p
}

// replayOn runs an explicit request list on a fresh array (used by the
// migration-mode study, Figure 16).
func (s *Suite) replayOn(reqs []trace.Request, opts *core.Options) (*metrics.Recorder, error) {
	a, err := array.New(s.Config)
	if err != nil {
		return nil, err
	}
	if opts != nil {
		core.Attach(a, *opts)
	}
	return a.Run(reqs)
}
