package experiments

import (
	"bytes"
	"math"
	"testing"

	"triplea/internal/array"
	"triplea/internal/metrics"
	"triplea/internal/workload"
)

// runBackend executes one seeded micro-workload on a full array built
// with the given recorder backend and returns the recorder.
func runBackend(t *testing.T, backend metrics.Backend, seed uint64) *metrics.Recorder {
	t.Helper()
	s := NewSuite()
	s.Seed = seed
	s.Config.Metrics = backend
	reqs, _, err := workload.Generate(s.Config.Geometry, workload.MicroRead(2, 2000, 120_000), seed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := array.New(s.Config)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestStreamingRunDeterminism extends the reproducibility contract to
// the streaming backend's registry export: two same-seed runs of the
// full array must serialize byte-identical registry JSON (histogram
// buckets, windowed tracker, timelines, fault counters and all), and a
// different seed must not.
func TestStreamingRunDeterminism(t *testing.T) {
	first := runBackend(t, metrics.Streaming, 42).ExportJSON()
	second := runBackend(t, metrics.Streaming, 42).ExportJSON()
	if !bytes.Equal(first, second) {
		t.Fatalf("same-seed streaming registry exports differ:\n%s\n---\n%s", first, second)
	}
	other := runBackend(t, metrics.Streaming, 43).ExportJSON()
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced byte-identical registry exports")
	}
}

// TestStreamingBackendParity runs the same seeded workload through both
// backends on the real array and checks the streaming summary against
// the exact one: counts and averages identical, tail percentiles within
// the 1% histogram-accuracy contract (see docs/metrics.md).
func TestStreamingBackendParity(t *testing.T) {
	exact := runBackend(t, metrics.Exact, 42)
	stream := runBackend(t, metrics.Streaming, 42)

	if exact.Count() != stream.Count() || exact.Reads() != stream.Reads() || exact.Writes() != stream.Writes() {
		t.Errorf("counts diverged: exact %d/%d/%d, streaming %d/%d/%d",
			exact.Count(), exact.Reads(), exact.Writes(),
			stream.Count(), stream.Reads(), stream.Writes())
	}
	if exact.AvgLatency() != stream.AvgLatency() {
		t.Errorf("AvgLatency: exact=%v streaming=%v", exact.AvgLatency(), stream.AvgLatency())
	}
	if exact.IOPS() != stream.IOPS() {
		t.Errorf("IOPS: exact=%v streaming=%v", exact.IOPS(), stream.IOPS())
	}
	if got, want := stream.SustainedIOPS(SustainedWindow), exact.SustainedIOPS(SustainedWindow); got != want {
		t.Errorf("SustainedIOPS: exact=%v streaming=%v", want, got)
	}
	for _, p := range []float64{50, 95, 99} {
		want, got := exact.Percentile(p), stream.Percentile(p)
		relErr := math.Abs(float64(got)-float64(want)) / float64(want)
		if relErr > 0.01 {
			t.Errorf("P%v: exact=%v streaming=%v relative error %.4f > 1%%", p, want, got, relErr)
		}
	}
	if exact.MaxLatency() != stream.MaxLatency() {
		t.Errorf("MaxLatency: exact=%v streaming=%v", exact.MaxLatency(), stream.MaxLatency())
	}
}
