package experiments

import (
	"fmt"

	"triplea/internal/core"
	"triplea/internal/metrics"
	"triplea/internal/report"
	"triplea/internal/simx"
	"triplea/internal/sweep"
	"triplea/internal/workload"
)

// Fig1 reproduces the motivation study: latency CDFs of the `read`
// micro-benchmark on the NON-autonomic array as the number of hot
// regions grows, plus the resulting link/storage-contention
// degradation factors (paper: 2.4x link, 6.5x storage).
type Fig1Result struct {
	HotCounts   []int
	CDFs        [][]metrics.CDFPoint // per hot count
	LinkFactor  float64              // contention at max hot / at min hot
	StoreFactor float64
}

// Fig1 runs the motivation experiment (cached after the first call).
func (s *Suite) Fig1() (*Fig1Result, *report.Table, error) {
	if s.fig1 != nil {
		return s.fig1, s.tables["fig1"], nil
	}
	hotCounts := []int{1, 2, 3, 4, 5}
	res := &Fig1Result{HotCounts: hotCounts}
	var first, last metrics.Breakdown
	requests := 40_000
	if s.Requests > 0 {
		requests = s.Requests
	}
	for i, h := range hotCounts {
		p := microProfile(h, requests, 1.5)
		rec, _, _, err := s.runOne(p, nil)
		if err != nil {
			return nil, nil, err
		}
		res.CDFs = append(res.CDFs, rec.CDF(10))
		mb := rec.MeanBreakdown()
		if i == 0 {
			first = mb
		}
		if i == len(hotCounts)-1 {
			last = mb
		}
	}
	if first.LinkContention() > 0 {
		res.LinkFactor = float64(last.LinkContention()) / float64(first.LinkContention())
	}
	if first.StorageContention() > 0 {
		res.StoreFactor = float64(last.StorageContention()) / float64(first.StorageContention())
	}

	t := report.CDFTable(
		fmt.Sprintf("Figure 1: baseline latency CDF vs hot regions (link degr %.1fx, storage degr %.1fx)",
			res.LinkFactor, res.StoreFactor),
		[]string{"CDF", "hot=1(us)", "hot=2(us)", "hot=3(us)", "hot=4(us)", "hot=5(us)"},
		res.CDFs)
	s.fig1, s.tables["fig1"] = res, t
	return res, t, nil
}

// Fig9 reports Triple-A's latency and sustained IOPS normalized to the
// non-autonomic array for every workload (paper: ~5x lower latency,
// ~2x IOPS on average; no gain for cfs/web).
func (s *Suite) Fig9() (*report.Table, error) {
	return s.memoTable("fig9", s.fig9)
}

func (s *Suite) fig9() (*report.Table, error) {
	t := report.NewTable("Figure 9: Triple-A normalized to non-autonomic array",
		"workload", "normLat", "latGain", "normIOPS", "IOPSbar")
	for _, name := range WorkloadNames() {
		r, err := s.Workload(name)
		if err != nil {
			return nil, err
		}
		nl, ni := r.NormLatency(), r.NormIOPS()
		gain := "-"
		if nl > 0 {
			gain = fmt.Sprintf("%.1fx", 1/nl)
		}
		t.AddRow(name,
			fmt.Sprintf("%.3f", nl),
			gain,
			fmt.Sprintf("%.2f", ni),
			report.Bar(ni, 3, 24),
		)
	}
	return t, nil
}

// Fig10 reports the normalized link-contention, storage-contention and
// queue-stall times (paper: link contention mostly eliminated, storage
// contention -15%, queue stall -85%).
func (s *Suite) Fig10() (*report.Table, error) {
	return s.memoTable("fig10", s.fig10)
}

func (s *Suite) fig10() (*report.Table, error) {
	t := report.NewTable("Figure 10: normalized contention and queue stall (Triple-A / baseline)",
		"workload", "linkCont", "storCont", "queueStall")
	for _, name := range WorkloadNames() {
		r, err := s.Workload(name)
		if err != nil {
			return nil, err
		}
		b, a := r.Base.MeanBreakdown(), r.Auto.MeanBreakdown()
		t.AddRow(name,
			norm(a.LinkContention(), b.LinkContention()),
			norm(a.StorageContention(), b.StorageContention()),
			norm(a.QueueStall(), b.QueueStall()),
		)
	}
	return t, nil
}

func norm(a, b simx.Time) string {
	// Sub-microsecond baselines are uncontended; a ratio over noise
	// would mislead.
	if b < simx.Microsecond {
		return "~"
	}
	return fmt.Sprintf("%.3f", float64(a)/float64(b))
}

// Fig11Workloads lists the six workloads whose CDFs the paper plots.
var Fig11Workloads = []string{"mds", "msnfs", "proj", "prxy", "websql", "g-eigen"}

// Fig11 reports latency CDFs (baseline vs Triple-A) for the six
// workloads, exposing the long tail the paper highlights.
func (s *Suite) Fig11() ([]*report.Table, error) {
	var out []*report.Table
	for _, name := range Fig11Workloads {
		r, err := s.Workload(name)
		if err != nil {
			return nil, err
		}
		t := report.CDFTable(fmt.Sprintf("Figure 11 (%s): latency CDF", name),
			[]string{"CDF", "baseline(us)", "triple-a(us)"},
			[][]metrics.CDFPoint{r.Base.CDF(10), r.Auto.CDF(10)})
		out = append(out, t)
	}
	return out, nil
}

// Fig12 sweeps the hot-cluster count on the `read` micro-benchmark for
// both arrays (paper: baseline latency worsens with hot clusters;
// Triple-A holds latency stable with better IOPS).
func (s *Suite) Fig12() (*report.Table, error) {
	return s.memoTable("fig12", s.fig12)
}

func (s *Suite) fig12() (*report.Table, error) {
	points := 6
	if s.Fig12Points > 0 {
		points = s.Fig12Points
	}
	requests := 40_000
	if s.Requests > 0 {
		requests = s.Requests
	}
	cfg, opts := s.Config, s.Options
	outs, err := sweep.Map(s.workers(), sweep.Indexed(points, s.Seed), func(sp sweep.Spec) ([]byte, error) {
		r, err := runPair(cfg, opts, sp.Seed, microProfile(sp.Index+1, requests, 1.5))
		if err != nil {
			return nil, err
		}
		return encodePairPoint(r)
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 12: hot-cluster sensitivity (read micro-benchmark)",
		"hot", "base lat(us)", "base IOPS", "3A lat(us)", "3A IOPS")
	for i, b := range outs {
		pp, err := decodePairPoint(b)
		if err != nil {
			return nil, err
		}
		t.AddRow(fig12Row(i+1, pp)...)
	}
	return t, nil
}

// NetworkSizes are the clusters-per-switch sweep points (paper: 4x8 ..
// 4x20).
var NetworkSizes = []int{8, 12, 16, 20}

// Fig13 reports normalized IOPS and latency across network sizes
// (paper: Triple-A improves as the network grows — more neighbours to
// absorb hot-cluster load).
func (s *Suite) Fig13() (*report.Table, error) {
	return s.memoTable("fig13", s.fig13)
}

func (s *Suite) fig13() (*report.Table, error) {
	pts, err := s.networkPoints()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 13: network size sensitivity (normalized to baseline at each size)",
		"clusters/switch", "normLat", "latGain", "normIOPS")
	for _, pt := range pts {
		t.AddRow(pt.fig13...)
	}
	return t, nil
}

// Fig14 reports the two contention times across network sizes (paper:
// link contention nearly eliminated; storage contention steadily
// reduced as clusters are added).
func (s *Suite) Fig14() (*report.Table, error) {
	return s.memoTable("fig14", s.fig14)
}

func (s *Suite) fig14() (*report.Table, error) {
	pts, err := s.networkPoints()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 14: contention times normalized to baseline, by network size",
		"clusters/switch", "linkCont", "storCont")
	for _, pt := range pts {
		t.AddRow(pt.fig14...)
	}
	return t, nil
}

// Fig15 reports the execution-time breakdown (per-request means) on
// both arrays across network sizes — the paper's stacked bars: RC
// stall, switch stall, endpoint wait, link contention, storage
// contention, cell time, transfers.
func (s *Suite) Fig15() (*report.Table, error) {
	return s.memoTable("fig15", s.fig15)
}

func (s *Suite) fig15() (*report.Table, error) {
	pts, err := s.networkPoints()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 15: execution time breakdown (us per request)",
		"config", "RCstall", "swStall", "EPwait", "linkWait", "storWait", "texe", "xfer", "fabric")
	for _, pt := range pts {
		t.AddRow(pt.fig15Base...)
	}
	for _, pt := range pts {
		t.AddRow(pt.fig15Auto...)
	}
	return t, nil
}

// Fig16Result carries the latency time-series of the four migration
// modes as downsampled series points (backend-agnostic values).
type Fig16Result struct {
	Labels []string
	Series [][]metrics.SeriesPoint
	AvgUS  []float64
}

// Fig16 compares latency series under (a) the baseline, (b) naive data
// migration (no shadow cloning), (c) shadow cloning, and (d) full
// Triple-A — exposing the migration overhead shadow cloning hides.
func (s *Suite) Fig16() (*Fig16Result, *report.Table, error) {
	if s.fig16 != nil {
		return s.fig16, s.tables["fig16"], nil
	}
	requests := 30_000
	if s.Requests > 0 {
		requests = s.Requests
	}
	p := microProfile(3, requests, 1.5)
	reqs, _, err := workload.Generate(s.Config.Geometry, p, s.Seed)
	if err != nil {
		return nil, nil, err
	}

	naive := s.Options
	naive.ShadowCloning = false
	naive.StorageManagement = false
	shadow := s.Options
	shadow.ShadowCloning = true
	shadow.StorageManagement = false
	full := s.Options

	res := &Fig16Result{Labels: []string{"baseline", "naive-migration", "shadow-cloning", "triple-a"}}
	runs := []struct {
		name string
		opts *core.Options
	}{
		{"baseline", nil},
		{"naive-migration", &naive},
		{"shadow-cloning", &shadow},
		{"triple-a", &full},
	}
	const samples = 24
	var series [][]metrics.SeriesPoint
	for _, r := range runs {
		rec, err := s.replayOn(reqs, r.opts)
		if err != nil {
			return nil, nil, err
		}
		series = append(series, rec.Series(samples))
		res.AvgUS = append(res.AvgUS, rec.AvgLatency().Micros())
	}
	res.Series = series
	t := report.SeriesTable("Figure 16: latency series by migration mode (us, sampled over time)",
		[]string{"sample", "baseline", "naive", "shadow", "triple-a"}, series, samples)
	t.Title += fmt.Sprintf(" | avg us: base=%.0f naive=%.0f shadow=%.0f 3A=%.0f",
		res.AvgUS[0], res.AvgUS[1], res.AvgUS[2], res.AvgUS[3])
	s.fig16, s.tables["fig16"] = res, t
	return res, t, nil
}
