//go:build !simcheck

// Equivalence pins for the parallel sweep routing: the rendered
// tables of every sweep-backed experiment must be byte-identical for
// any worker count. Guarded by !simcheck because Suite.workers()
// deliberately clamps to serial under the leak ledger (the ledger is
// process-global), which would make the Parallel settings no-ops.

package experiments

import (
	"bytes"
	"testing"
)

// renderAt runs one named experiment at a given pool width on a fresh
// reduced-size suite and returns the rendered bytes.
func renderAt(t *testing.T, name string, parallel int) []byte {
	t.Helper()
	s := testSuite()
	s.Requests = 1500
	s.Parallel = parallel
	var buf bytes.Buffer
	if err := s.Run(name, &buf); err != nil {
		t.Fatalf("%s (parallel=%d): %v", name, parallel, err)
	}
	return buf.Bytes()
}

// TestParallelEquivalence proves the sweep-backed experiments render
// byte-identically whether the points run serially, on 2 workers, or
// on 8 workers (more workers than points, exercising idle-worker
// shutdown).
func TestParallelEquivalence(t *testing.T) {
	for _, name := range []string{"fig12", "fig13", "fault", "regret"} {
		serial := renderAt(t, name, 1)
		if len(serial) == 0 {
			t.Fatalf("%s: empty serial render", name)
		}
		for _, workers := range []int{2, 8} {
			got := renderAt(t, name, workers)
			if !bytes.Equal(serial, got) {
				t.Errorf("%s: parallel=%d output diverges from serial\nserial:\n%s\nparallel:\n%s",
					name, workers, serial, got)
			}
		}
	}
}

// TestParallelSharedCache proves Fig13/Fig14/Fig15 agree on the shared
// network-point cache regardless of which figure populates it first,
// and that a parallel-populated cache matches a serial one.
func TestParallelSharedCache(t *testing.T) {
	render := func(parallel int, order []string) []byte {
		s := testSuite()
		s.Requests = 1500
		s.Parallel = parallel
		var buf bytes.Buffer
		for _, name := range order {
			if err := s.Run(name, &buf); err != nil {
				t.Fatalf("%s (parallel=%d): %v", name, parallel, err)
			}
		}
		return buf.Bytes()
	}
	order := []string{"fig14", "fig15", "fig13"}
	serial := render(1, order)
	if got := render(4, order); !bytes.Equal(serial, got) {
		t.Errorf("network-point cache diverges between serial and parallel population\nserial:\n%s\nparallel:\n%s",
			serial, got)
	}
}
