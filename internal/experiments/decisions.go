package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"triplea/internal/array"
	"triplea/internal/core"
	"triplea/internal/decision"
	"triplea/internal/fault"
	"triplea/internal/report"
	"triplea/internal/simx"
	"triplea/internal/sweep"
	"triplea/internal/trace"
	"triplea/internal/units"
	"triplea/internal/workload"
)

// This file is the experiments-side surface of the decision flight
// recorder (internal/decision, docs/decision-traces.md): the reference
// trace scenarios the seed-42 golden pins, the tables triplea-bench
// renders for them, and the counterfactual-regret study ranking the
// Table 1 workloads by how far the autonomic migration policy's choices
// fall short of the best-scoring alternative it saw.

// DecisionTraces captures the two reference decision-trace scenarios
// with the flight recorder on: the unfaulted autonomic micro-run
// (migration, reshape, write-redirect and GC-victim decisions) and the
// reference fault plan with degraded-mode recovery (evacuation and
// restore decisions on top). Both runs execute serially on fresh
// arrays, so the resulting TraceSet is byte-identical regardless of
// any sweep width — the property the golden test pins.
func DecisionTraces(seed uint64) (*decision.TraceSet, error) {
	ts := &decision.TraceSet{Seed: seed}

	// Scenario 1: the unfaulted micro-benchmark pair's autonomic half —
	// the same run the determinism golden serializes.
	cfg := array.DefaultConfig()
	cfg.Decisions = decision.Ring
	opts := core.DefaultOptions()
	p := workload.MicroRead(2, 2000, 240_000)
	_, a, _, err := runOnePoint(cfg, seed, p, &opts)
	if err != nil {
		return nil, err
	}
	ts.Scenarios = append(ts.Scenarios, decision.NamedTrace{
		Name: "autonomic-micro-read", Trace: a.Decisions().Trace(),
	})

	// Scenario 2: the reference fault plan with recovery on — exercises
	// the evacuation and restore families the unfaulted run never hits.
	fp := workload.MicroRead(2, 2000, 240_000)
	fp.ReadRatio = 0.6
	fp.WriteRandomness = 1
	reqs, _, err := workload.Generate(cfg.Geometry, fp, seed)
	if err != nil {
		return nil, err
	}
	span := reqs[len(reqs)-1].Arrival
	plan := fault.ReferencePlan(cfg.Geometry, span)
	plan.Seed = seed
	fa, err := array.New(cfg)
	if err != nil {
		return nil, err
	}
	core.Attach(fa, opts)
	fault.Attach(fa, plan, fault.Options{Recover: true})
	if _, err := fa.Run(reqs); err != nil {
		return nil, err
	}
	ts.Scenarios = append(ts.Scenarios, decision.NamedTrace{
		Name: "faulted-recovery", Trace: fa.Decisions().Trace(),
	})

	// Scenario 3: GC pressure on a tiny-block array — repeated
	// overwrites of a few LPNs force victim selection, the one decision
	// family the full-geometry micro-runs never reach (their 2000
	// requests cannot exhaust a default-size plane's free blocks).
	gcfg := array.DefaultConfig()
	gcfg.Geometry.Switches = 2
	gcfg.Geometry.ClustersPerSwitch = 2
	gcfg.Geometry.FIMMsPerCluster = 2
	gcfg.Geometry.PackagesPerFIMM = 2
	gcfg.Geometry.Nand.DiesPerPackage = 1
	gcfg.Geometry.Nand.BlocksPerPlane = 8 * units.Block
	gcfg.Geometry.Nand.PagesPerBlock = 4 * units.Page
	gcfg.GCThreshold = 6 * units.Block
	gcfg.Decisions = decision.Ring
	ga, err := array.New(gcfg)
	if err != nil {
		return nil, err
	}
	var greqs []trace.Request
	gap := simx.Time(0)
	for round := 0; round < 20; round++ {
		for lpn := int64(0); lpn < 4; lpn++ {
			greqs = append(greqs, trace.Request{Arrival: gap, Op: trace.Write, LPN: lpn, Pages: 1 * units.Page})
			gap += simx.Millisecond
		}
	}
	if _, err := ga.Run(greqs); err != nil {
		return nil, err
	}
	ts.Scenarios = append(ts.Scenarios, decision.NamedTrace{
		Name: "gc-pressure", Trace: ga.Decisions().Trace(),
	})
	return ts, nil
}

// RenderDecisionTables renders one per-family summary table per
// scenario of a TraceSet — the text-table half of the -decisions
// export (the JSON half is decision.EncodeJSON).
func RenderDecisionTables(w io.Writer, ts *decision.TraceSet) error {
	for _, sc := range ts.Scenarios {
		t := report.NewTable(
			fmt.Sprintf("Decision summary: %s (seed %d, %d decisions)",
				sc.Name, ts.Seed, sc.Trace.Summary.Decisions),
			"family", "count", "meanRegret", "maxRegret", "p95Regret")
		for _, f := range sc.Trace.Summary.Families {
			t.AddRow(f.Family.String(),
				fmt.Sprintf("%d", f.Count),
				fmt.Sprintf("%.4f", f.RegretMean),
				fmt.Sprintf("%.4f", f.RegretMax),
				fmt.Sprintf("%.4f", f.RegretP95),
			)
		}
		if err := renderOne(w, t, nil); err != nil {
			return err
		}
	}
	return nil
}

// RegretRow is one workload's line of the counterfactual-regret study.
type RegretRow struct {
	Name       string
	Decisions  uint64 // all families
	Migrations uint64 // migration-family decisions
	MeanRegret float64
	MaxRegret  float64
	P95Regret  float64
}

// regretPoint runs one Table 1 workload on Triple-A with the flight
// recorder on and reduces the run to its migration-regret summary. The
// whole arena is built inside the call and the row crosses the worker
// boundary as a JSON value, like every other sweep point.
func regretPoint(cfg array.Config, opts core.Options, seed uint64, requests int, index int) ([]byte, error) {
	p := workload.Table1Profiles()[index]
	if requests > 0 {
		p.Requests = requests
	}
	cfg.Decisions = decision.Ring
	_, a, _, err := runOnePoint(cfg, seed, p, &opts)
	if err != nil {
		return nil, err
	}
	sum := a.Decisions().Summary()
	row := RegretRow{Name: p.Name, Decisions: sum.Decisions}
	for _, f := range sum.Families {
		if f.Family == decision.Migration {
			row.Migrations = f.Count
			row.MeanRegret = f.RegretMean
			row.MaxRegret = f.RegretMax
			row.P95Regret = f.RegretP95
		}
	}
	return json.Marshal(row)
}

// RegretStudy ranks the Table 1 workloads by mean migration regret:
// how much bus utilization the hot-cluster migration policy left on
// the table per decision, against the best alternative it scored
// (including candidates the degraded/warm exclusions vetoed). A high
// mean says the policy's Eq.1/Eq.3 inputs were stale or its exclusions
// too aggressive for that workload; zero says every choice was the
// argmax of what it saw.
func (s *Suite) RegretStudy() (*report.Table, error) {
	return s.memoTable("regret", s.regretStudy)
}

func (s *Suite) regretStudy() (*report.Table, error) {
	cfg, opts := s.Config, s.Options
	requests := s.Requests
	n := len(workload.Table1Profiles())
	outs, err := sweep.Map(s.workers(), sweep.Indexed(n, s.Seed), func(sp sweep.Spec) ([]byte, error) {
		return regretPoint(cfg, opts, sp.Seed, requests, sp.Index)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]RegretRow, 0, len(outs))
	for _, b := range outs {
		var row RegretRow
		if err := json.Unmarshal(b, &row); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].MeanRegret > rows[j].MeanRegret {
			return true
		}
		if rows[j].MeanRegret > rows[i].MeanRegret {
			return false
		}
		return rows[i].Name < rows[j].Name
	})
	t := report.NewTable(
		"Counterfactual-regret study: Table 1 workloads ranked by mean migration regret",
		"workload", "decisions", "migrations", "meanRegret", "maxRegret", "p95Regret")
	for _, r := range rows {
		t.AddRow(r.Name,
			fmt.Sprintf("%d", r.Decisions),
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%.4f", r.MeanRegret),
			fmt.Sprintf("%.4f", r.MaxRegret),
			fmt.Sprintf("%.4f", r.P95Regret),
		)
	}
	return t, nil
}
