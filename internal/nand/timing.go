package nand

import "fmt"

// TimingMode is an ONFI interface timing mode. The ONFI specification
// defines the legacy asynchronous SDR modes 0-5 and the NV-DDR/NV-DDR2
// source-synchronous families; the mode fixes the interface clock and
// data rate while cell timings stay a property of the memory array.
type TimingMode int

const (
	// SDR asynchronous modes (ONFI 1.x), ~10-50 MB/s per 8 pins.
	SDRMode0 TimingMode = iota
	SDRMode1
	SDRMode2
	SDRMode3
	SDRMode4
	SDRMode5
	// NVDDRMode5 is the fastest ONFI 2.x source-synchronous mode
	// (200 MT/s).
	NVDDRMode5
	// NVDDR2Mode7 is the ONFI 3.x mode the paper's FIMMs use over their
	// NV-DDR2 connector (400 MHz, DDR -> 800 MT/s).
	NVDDR2Mode7
)

func (m TimingMode) String() string {
	switch m {
	case SDRMode0, SDRMode1, SDRMode2, SDRMode3, SDRMode4, SDRMode5:
		return fmt.Sprintf("sdr-%d", int(m))
	case NVDDRMode5:
		return "nv-ddr-5"
	case NVDDR2Mode7:
		return "nv-ddr2-7"
	default:
		return "unknown"
	}
}

// interfaceClock reports (clock MHz, DDR) for the mode. SDR clocks
// follow the ONFI cycle times (100 ns down to 20 ns); the DDR families
// are source-synchronous.
func (m TimingMode) interfaceClock() (mhz int, ddr bool, err error) {
	switch m {
	case SDRMode0:
		return 10, false, nil
	case SDRMode1:
		return 20, false, nil
	case SDRMode2:
		return 28, false, nil
	case SDRMode3:
		return 33, false, nil
	case SDRMode4:
		return 40, false, nil
	case SDRMode5:
		return 50, false, nil
	case NVDDRMode5:
		return 100, true, nil
	case NVDDR2Mode7:
		return 400, true, nil
	default:
		return 0, false, fmt.Errorf("nand: unknown timing mode %d", int(m))
	}
}

// WithTimingMode returns a copy of the params with the I/O interface
// reclocked to the given ONFI mode. Cell timings are untouched.
func (p Params) WithTimingMode(m TimingMode) (Params, error) {
	mhz, ddr, err := m.interfaceClock()
	if err != nil {
		return p, err
	}
	p.BusMHz = mhz
	p.DDR = ddr
	return p, nil
}
