package nand

import (
	"testing"

	"triplea/internal/units"
)

func TestTimingModeStrings(t *testing.T) {
	cases := map[TimingMode]string{
		SDRMode0:    "sdr-0",
		SDRMode5:    "sdr-5",
		NVDDRMode5:  "nv-ddr-5",
		NVDDR2Mode7: "nv-ddr2-7",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
	if TimingMode(99).String() != "unknown" {
		t.Error("unknown mode string")
	}
}

func TestWithTimingMode(t *testing.T) {
	base := DefaultParams()
	// The default package runs NV-DDR2 mode 7 (x8): 800 MB/s.
	p7, err := base.WithTimingMode(NVDDR2Mode7)
	if err != nil {
		t.Fatal(err)
	}
	if p7.InterfaceBytesPerSec() != 800_000_000 {
		t.Errorf("nv-ddr2-7 bandwidth = %d", p7.InterfaceBytesPerSec())
	}
	// SDR mode 0: 10 MHz x 1 byte = 10 MB/s — the legacy floor.
	p0, err := base.WithTimingMode(SDRMode0)
	if err != nil {
		t.Fatal(err)
	}
	if p0.InterfaceBytesPerSec() != 10_000_000 {
		t.Errorf("sdr-0 bandwidth = %d", p0.InterfaceBytesPerSec())
	}
	// Faster modes strictly increase bandwidth.
	prev := units.BytesPerSec(0)
	for _, m := range []TimingMode{SDRMode0, SDRMode1, SDRMode2, SDRMode3,
		SDRMode4, SDRMode5, NVDDRMode5, NVDDR2Mode7} {
		p, err := base.WithTimingMode(m)
		if err != nil {
			t.Fatal(err)
		}
		if bw := p.InterfaceBytesPerSec(); bw <= prev {
			t.Errorf("%v bandwidth %d not above previous %d", m, bw, prev)
		} else {
			prev = bw
		}
	}
	// Cell timings are untouched.
	if p0.TRead != base.TRead || p0.TProg != base.TProg {
		t.Error("timing mode changed cell timings")
	}
	if _, err := base.WithTimingMode(TimingMode(42)); err == nil {
		t.Error("unknown mode accepted")
	}
}
