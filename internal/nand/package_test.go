package nand

import (
	"strings"
	"testing"
	"testing/quick"

	"triplea/internal/simx"
	"triplea/internal/units"
)

func testParams() Params {
	p := DefaultParams()
	p.BlocksPerPlane = 8
	p.PagesPerBlock = 4
	return p
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestParamsValidation(t *testing.T) {
	mods := []struct {
		name string
		mod  func(*Params)
	}{
		{"page size", func(p *Params) { p.PageSizeBytes = 0 }},
		{"pages per block", func(p *Params) { p.PagesPerBlock = -1 }},
		{"blocks", func(p *Params) { p.BlocksPerPlane = 0 }},
		{"planes", func(p *Params) { p.PlanesPerDie = 0 }},
		{"dies", func(p *Params) { p.DiesPerPackage = 0 }},
		{"tread", func(p *Params) { p.TRead = 0 }},
		{"pins", func(p *Params) { p.IOPins = 12 }},
		{"clock", func(p *Params) { p.BusMHz = 0 }},
	}
	for _, m := range mods {
		p := DefaultParams()
		m.mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted bad %s", m.name)
		}
	}
}

func TestCapacityMath(t *testing.T) {
	p := DefaultParams()
	// 4096 B * 256 pages * 2048 blocks * 2 planes * 2 dies = 8 GiB
	want := units.Bytes(4096) * 256 * 2048 * 2 * 2
	if got := p.BytesPerPackage(); got != want {
		t.Errorf("BytesPerPackage = %d, want %d", got, want)
	}
}

func TestInterfaceBandwidth(t *testing.T) {
	p := DefaultParams() // x8 at 400MHz DDR = 800 MB/s
	if got := p.InterfaceBytesPerSec(); got != 800_000_000 {
		t.Errorf("InterfaceBytesPerSec = %d, want 800e6", got)
	}
	// One 4KB page at 800 MB/s = 5120 ns.
	if got := p.PageTransferTime(); got != 5120 {
		t.Errorf("PageTransferTime = %v, want 5120ns", got)
	}
	p.IOPins = 16
	if got := p.InterfaceBytesPerSec(); got != 1_600_000_000 {
		t.Errorf("x16 InterfaceBytesPerSec = %d, want 1.6e9", got)
	}
	p.DDR = false
	if got := p.InterfaceBytesPerSec(); got != 800_000_000 {
		t.Errorf("SDR x16 InterfaceBytesPerSec = %d, want 800e6", got)
	}
}

func TestReadErasedPageFails(t *testing.T) {
	eng := simx.NewEngine()
	pk := NewPackage(eng, testParams())
	var gotErr error
	pk.Read([]Addr{{}}, func(_ simx.Time, err error) { gotErr = err })
	eng.Run()
	if gotErr == nil || !strings.Contains(gotErr.Error(), "erased") {
		t.Fatalf("read of erased page: err = %v, want erased-page error", gotErr)
	}
}

func TestProgramThenRead(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	pk := NewPackage(eng, p)
	a := Addr{Die: 0, Plane: 0, Block: 0, Page: 0}

	var progTime, readTime simx.Time
	pk.Program([]Addr{a}, func(texe simx.Time, err error) {
		if err != nil {
			t.Errorf("program: %v", err)
		}
		progTime = texe
		pk.Read([]Addr{a}, func(texe simx.Time, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			readTime = texe
		})
	})
	eng.Run()

	wantProg := p.TCmdOverhead + p.TProg + p.TECCPerPage
	if progTime != wantProg {
		t.Errorf("program texe = %v, want %v", progTime, wantProg)
	}
	// First read after program: cache register was invalidated by the
	// program, so full tR applies... but the program left the cacheTag
	// cleared, then the read sets it. The read itself pays tR.
	wantRead := p.TCmdOverhead + p.TRead + p.TECCPerPage
	if readTime != wantRead {
		t.Errorf("read texe = %v, want %v", wantRead, readTime)
	}
	if pk.PageStateAt(a) != PageValid {
		t.Errorf("page state = %v, want PageValid", pk.PageStateAt(a))
	}
}

func TestCacheModeRead(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	pk := NewPackage(eng, p)
	a := Addr{}
	var second simx.Time
	pk.Program([]Addr{a}, func(_ simx.Time, err error) {
		pk.Read([]Addr{a}, func(_ simx.Time, err error) {
			pk.Read([]Addr{a}, func(texe simx.Time, err error) { second = texe })
		})
	})
	eng.Run()
	if second != p.TCmdOverhead {
		t.Errorf("cached re-read texe = %v, want cmd overhead %v", second, p.TCmdOverhead)
	}
	if pk.Stats().CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", pk.Stats().CacheHits)
	}
}

func TestEraseBeforeWriteEnforced(t *testing.T) {
	eng := simx.NewEngine()
	pk := NewPackage(eng, testParams())
	a := Addr{}
	var rewriteErr error
	pk.Program([]Addr{a}, func(_ simx.Time, err error) {
		pk.Program([]Addr{a}, func(_ simx.Time, err error) { rewriteErr = err })
	})
	eng.Run()
	if rewriteErr == nil {
		t.Fatal("overwrite without erase succeeded")
	}
}

func TestSequentialProgramEnforced(t *testing.T) {
	eng := simx.NewEngine()
	pk := NewPackage(eng, testParams())
	var err2 error
	// Page 2 before pages 0,1 violates sequential programming.
	pk.Program([]Addr{{Page: 2}}, func(_ simx.Time, err error) { err2 = err })
	eng.Run()
	if err2 == nil || !strings.Contains(err2.Error(), "out-of-order") {
		t.Fatalf("out-of-order program err = %v", err2)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	eng := simx.NewEngine()
	pk := NewPackage(eng, testParams())
	a := Addr{}
	pk.Program([]Addr{a}, func(_ simx.Time, err error) {
		pk.Erase([]Addr{a}, func(_ simx.Time, err error) {
			if err != nil {
				t.Errorf("erase: %v", err)
			}
			// Reprogramming page 0 must now succeed.
			pk.Program([]Addr{a}, func(_ simx.Time, err error) {
				if err != nil {
					t.Errorf("program after erase: %v", err)
				}
			})
		})
	})
	eng.Run()
	if pk.EraseCount(a) != 1 {
		t.Errorf("EraseCount = %d, want 1", pk.EraseCount(a))
	}
	if pk.Stats().Erases != 1 || pk.Stats().Programs != 2 {
		t.Errorf("stats = %+v", pk.Stats())
	}
}

func TestDieInterleavingParallelism(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	pk := NewPackage(eng, p)
	var done0, done1 simx.Time
	pk.Program([]Addr{{Die: 0}}, func(_ simx.Time, err error) { done0 = eng.Now() })
	pk.Program([]Addr{{Die: 1}}, func(_ simx.Time, err error) { done1 = eng.Now() })
	eng.Run()
	if done0 != done1 {
		t.Errorf("independent dies finished at %v and %v, want concurrent", done0, done1)
	}
}

func TestSameDieSerializes(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	pk := NewPackage(eng, p)
	var done0, done1 simx.Time
	pk.Program([]Addr{{Page: 0}}, func(_ simx.Time, err error) { done0 = eng.Now() })
	pk.Program([]Addr{{Page: 1}}, func(_ simx.Time, err error) { done1 = eng.Now() })
	eng.Run()
	unit := p.TCmdOverhead + p.TProg + p.TECCPerPage
	if done0 != unit || done1 != 2*unit {
		t.Errorf("serialized programs finished at %v, %v; want %v, %v", done0, done1, unit, 2*unit)
	}
}

func TestMultiPlaneProgram(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	pk := NewPackage(eng, p)
	// Plane 0 must use even blocks, plane 1 odd blocks.
	addrs := []Addr{{Plane: 0, Block: 0}, {Plane: 1, Block: 1}}
	var end simx.Time
	pk.Program(addrs, func(_ simx.Time, err error) {
		if err != nil {
			t.Errorf("multi-plane program: %v", err)
		}
		end = eng.Now()
	})
	eng.Run()
	unit := p.TCmdOverhead + p.TProg + p.TECCPerPage
	if end != unit {
		t.Errorf("multi-plane took %v, want single op time %v", end, unit)
	}
	if pk.Stats().Programs != 2 || pk.Stats().MultiPlane != 1 {
		t.Errorf("stats = %+v", pk.Stats())
	}
}

func TestMultiPlaneValidation(t *testing.T) {
	eng := simx.NewEngine()
	pk := NewPackage(eng, testParams())
	cases := []struct {
		name  string
		addrs []Addr
	}{
		{"cross-die", []Addr{{Die: 0}, {Die: 1, Plane: 1, Block: 1}}},
		{"same plane twice", []Addr{{Plane: 0, Block: 0}, {Plane: 0, Block: 2}}},
		{"page offsets differ", []Addr{{Plane: 0, Block: 0, Page: 0}, {Plane: 1, Block: 1, Page: 1}}},
		{"parity violation", []Addr{{Plane: 0, Block: 1}, {Plane: 1, Block: 0}}},
	}
	for _, c := range cases {
		var got error
		pk.Program(c.addrs, func(_ simx.Time, err error) { got = err })
		eng.Run()
		if got == nil {
			t.Errorf("%s: multi-plane accepted", c.name)
		}
	}
}

func TestMarkStale(t *testing.T) {
	eng := simx.NewEngine()
	pk := NewPackage(eng, testParams())
	a := Addr{}
	pk.Program([]Addr{a}, func(_ simx.Time, err error) {})
	eng.Run()
	if err := pk.MarkStale(a); err != nil {
		t.Fatalf("MarkStale: %v", err)
	}
	if pk.PageStateAt(a) != PageStale {
		t.Errorf("state = %v, want PageStale", pk.PageStateAt(a))
	}
	if err := pk.MarkStale(a); err == nil {
		t.Error("MarkStale of stale page succeeded")
	}
}

func TestAddrValidation(t *testing.T) {
	eng := simx.NewEngine()
	pk := NewPackage(eng, testParams())
	bad := []Addr{
		{Die: 99}, {Plane: 99}, {Block: 99}, {Page: 99},
		{Die: -1}, {Plane: -1}, {Block: -1}, {Page: -1},
		{Plane: 0, Block: 1}, // odd block addresses plane 1, not 0
		{Plane: 1, Block: 2}, // even block addresses plane 0, not 1
	}
	for _, a := range bad {
		var got error
		pk.Read([]Addr{a}, func(_ simx.Time, err error) { got = err })
		eng.Run()
		if got == nil {
			t.Errorf("addr %v accepted", a)
		}
	}
}

func TestBusyReflectsDieOccupancy(t *testing.T) {
	eng := simx.NewEngine()
	pk := NewPackage(eng, testParams())
	pk.Program([]Addr{{}}, func(_ simx.Time, err error) {})
	if !pk.Busy() || !pk.DieBusy(0) || pk.DieBusy(1) {
		t.Error("busy flags wrong during program")
	}
	eng.Run()
	if pk.Busy() {
		t.Error("package busy after all ops completed")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpProgram.String() != "program" ||
		OpErase.String() != "erase" || Op(9).String() != "unknown" {
		t.Error("Op.String mismatch")
	}
	if got := (Addr{1, 1, 3, 2}).String(); got != "d1/p1/b3/pg2" {
		t.Errorf("Addr.String = %q", got)
	}
}

// Property: any sequence of (erase block, program next page) pairs keeps
// the invariant: valid+stale page count == programs since last erase,
// and nextPage never exceeds PagesPerBlock.
func TestPropertyProgramEraseCycles(t *testing.T) {
	f := func(ops []bool) bool {
		eng := simx.NewEngine()
		p := testParams()
		pk := NewPackage(eng, p)
		next := 0
		for _, doErase := range ops {
			if doErase || next >= p.PagesPerBlock.Int() {
				pk.Erase([]Addr{{}}, func(_ simx.Time, err error) {
					if err != nil {
						t.Fatalf("erase: %v", err)
					}
				})
				next = 0
			} else {
				a := Addr{Page: next}
				pk.Program([]Addr{a}, func(_ simx.Time, err error) {
					if err != nil {
						t.Fatalf("program: %v", err)
					}
				})
				next++
			}
			eng.Run()
			// Count programmed pages in block 0.
			got := 0
			for pg := 0; pg < p.PagesPerBlock.Int(); pg++ {
				if pk.PageStateAt(Addr{Page: pg}) != PageErased {
					got++
				}
			}
			if got != next {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestForcePopulateAndErase(t *testing.T) {
	eng := simx.NewEngine()
	pk := NewPackage(eng, testParams())
	a := Addr{Page: 2}
	if err := pk.ForcePopulate(a); err != nil {
		t.Fatal(err)
	}
	if pk.PageStateAt(a) != PageValid {
		t.Error("populated page not valid")
	}
	if err := pk.ForcePopulate(a); err == nil {
		t.Error("double populate accepted")
	}
	if err := pk.ForcePopulate(Addr{Die: 99}); err == nil {
		t.Error("bad addr accepted")
	}
	// Sequential pointer advanced past page 2: programming page 0 must fail.
	var progErr error
	pk.Program([]Addr{{Page: 0}}, func(_ simx.Time, err error) { progErr = err })
	eng.Run()
	if progErr == nil {
		t.Error("out-of-order program after ForcePopulate accepted")
	}
	// ForceErase resets and counts wear.
	if err := pk.ForceErase(a); err != nil {
		t.Fatal(err)
	}
	if pk.PageStateAt(a) != PageErased || pk.EraseCount(a) != 1 {
		t.Error("ForceErase did not reset the block")
	}
	if err := pk.ForceErase(Addr{Block: -1}); err == nil {
		t.Error("bad erase addr accepted")
	}
	if pk.Params().PageSizeBytes != testParams().PageSizeBytes {
		t.Error("Params accessor mismatch")
	}
}
