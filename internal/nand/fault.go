package nand

import (
	"errors"
	"fmt"
)

// Fault-injection hooks (see internal/fault and docs/fault-injection.md).
// A healthy package keeps every map nil and the scale zero, so the
// unfaulted hot path pays one nil comparison per state check.

// ErrBadBlock marks an operation that hit a block retired by fault
// injection (read-fail or wear-out). Callers detect it with errors.Is.
var ErrBadBlock = errors.New("nand: bad block")

// ErrDeadDie marks an operation that addressed a die killed by fault
// injection.
var ErrDeadDie = errors.New("nand: dead die")

// FailBlock makes every future operation on the addressed block fail
// with ErrBadBlock — the block-level read-fail fault. In-flight
// operations already granted their die are unaffected.
func (pk *Package) FailBlock(a Addr) {
	if err := pk.checkAddr(a); err != nil {
		panic(err)
	}
	if pk.badBlocks == nil {
		pk.badBlocks = make(map[int]bool)
	}
	pk.badBlocks[pk.flatBlock(a)] = true
}

// WearOutBlock makes future programs and erases of the addressed block
// fail with ErrBadBlock while reads of already-programmed pages keep
// succeeding — the end-of-life wear-out fault.
func (pk *Package) WearOutBlock(a Addr) {
	if err := pk.checkAddr(a); err != nil {
		panic(err)
	}
	if pk.wornBlocks == nil {
		pk.wornBlocks = make(map[int]bool)
	}
	pk.wornBlocks[pk.flatBlock(a)] = true
}

// FailDie makes every future operation on the die fail with ErrDeadDie.
func (pk *Package) FailDie(dieIdx int) {
	if dieIdx < 0 || dieIdx >= pk.params.DiesPerPackage {
		panic(fmt.Sprintf("nand: FailDie %d out of range [0,%d)", dieIdx, pk.params.DiesPerPackage))
	}
	if pk.deadDies == nil {
		pk.deadDies = make(map[int]bool)
	}
	pk.deadDies[dieIdx] = true
}

// SetTimingScale multiplies every cell operation's execution time by s
// (>1 models a stalled or throttled package). Zero restores nominal
// timing.
func (pk *Package) SetTimingScale(s float64) { pk.timeScale = s }

// checkFaults runs at die-grant time alongside the state machine, so
// queued operations observe faults injected while they waited.
func (pk *Package) checkFaults(op Op, addrs []Addr) error {
	for _, a := range addrs {
		if pk.deadDies[a.Die] {
			return fmt.Errorf("nand: %v %v: %w", op, a, ErrDeadDie) //simlint:coldalloc fault path: injected-failure error
		}
		flat := pk.flatBlock(a)
		if pk.badBlocks[flat] {
			return fmt.Errorf("nand: %v %v: %w", op, a, ErrBadBlock) //simlint:coldalloc fault path: injected-failure error
		}
		if op != OpRead && pk.wornBlocks[flat] {
			return fmt.Errorf("nand: %v %v: worn out: %w", op, a, ErrBadBlock) //simlint:coldalloc fault path: injected-failure error
		}
	}
	return nil
}
