// Package nand models a bare NAND flash package: the multi-die,
// multi-plane memory array, its cache/data registers, the embedded
// controller with its ECC engine, and the ONFI command set (read,
// program, erase, die-interleave, multi-plane, cache mode). This is the
// "passive memory device" Triple-A mounts on FIMMs after unboxing SSDs.
//
// The model enforces real NAND constraints — erase-before-write,
// sequential page programming inside a block, even/odd plane pairing for
// multi-plane commands — and accounts wear (per-block erase counts), so
// the FTL and the autonomic manager above it are exercised against
// genuine flash behaviour rather than a byte store.
package nand

import (
	"fmt"

	"triplea/internal/simx"
	"triplea/internal/units"
)

// Params describes the geometry and timing of one flash package.
type Params struct {
	// Geometry.
	PageSizeBytes  units.Bytes  // main-area bytes per page (typically 4 KiB)
	PagesPerBlock  units.Pages  // pages per erase block
	BlocksPerPlane units.Blocks // erase blocks per plane
	PlanesPerDie   int          // planes per die (even/odd block addressing)
	DiesPerPackage int          // independently operating dies

	// Cell timing.
	TRead  simx.Time // tR: array -> data register
	TProg  simx.Time // tPROG: data register -> array
	TErase simx.Time // tBERS: block erase

	// Embedded controller.
	TCmdOverhead simx.Time // command decode/protocol handling per op
	TECCPerPage  simx.Time // ECC encode/decode per page

	// I/O interface of this package (ONFI NV-DDR2).
	IOPins  units.Lanes // data pins (x8 or x16)
	BusMHz  int         // interface clock in MHz
	DDR     bool        // double data rate
	CacheOK bool        // cache-mode commands supported
}

// DefaultParams returns the 2013-era MLC package used throughout the
// paper-scale experiments: 4 KB pages (the PCI-E 3.0 maximum payload the
// workloads issue), 2 dies x 2 planes, ONFI 3.x NV-DDR2 at 400 MHz.
func DefaultParams() Params {
	return Params{
		PageSizeBytes:  4 * units.KiB,
		PagesPerBlock:  256 * units.Page,
		BlocksPerPlane: 2048 * units.Block,
		PlanesPerDie:   2,
		DiesPerPackage: 2,
		TRead:          50 * simx.Microsecond,
		TProg:          600 * simx.Microsecond,
		TErase:         3 * simx.Millisecond,
		TCmdOverhead:   300 * simx.Nanosecond,
		TECCPerPage:    2 * simx.Microsecond,
		IOPins:         8 * units.Lane,
		BusMHz:         400,
		DDR:            true,
		CacheOK:        true,
	}
}

// Validate reports whether the parameters describe a usable package.
func (p Params) Validate() error {
	switch {
	case p.PageSizeBytes <= 0:
		return fmt.Errorf("nand: PageSizeBytes %d must be positive", p.PageSizeBytes)
	case p.PagesPerBlock <= 0:
		return fmt.Errorf("nand: PagesPerBlock %d must be positive", p.PagesPerBlock)
	case p.BlocksPerPlane <= 0:
		return fmt.Errorf("nand: BlocksPerPlane %d must be positive", p.BlocksPerPlane)
	case p.PlanesPerDie <= 0:
		return fmt.Errorf("nand: PlanesPerDie %d must be positive", p.PlanesPerDie)
	case p.DiesPerPackage <= 0:
		return fmt.Errorf("nand: DiesPerPackage %d must be positive", p.DiesPerPackage)
	case p.TRead <= 0 || p.TProg <= 0 || p.TErase <= 0:
		return fmt.Errorf("nand: cell timings must be positive")
	case p.IOPins != 8*units.Lane && p.IOPins != 16*units.Lane:
		return fmt.Errorf("nand: IOPins %d must be 8 or 16 (ONFI)", p.IOPins)
	case p.BusMHz <= 0:
		return fmt.Errorf("nand: BusMHz %d must be positive", p.BusMHz)
	}
	return nil
}

// PagesPerPackage reports the total page count of one package.
func (p Params) PagesPerPackage() units.Pages {
	return units.BlocksToPages(p.BlocksPerPlane, p.PagesPerBlock) *
		units.Pages(p.PlanesPerDie) * units.Pages(p.DiesPerPackage)
}

// BytesPerPackage reports the package capacity in bytes.
func (p Params) BytesPerPackage() units.Bytes {
	return units.PagesToBytes(p.PagesPerPackage(), p.PageSizeBytes)
}

// InterfaceBytesPerSec reports the raw bandwidth of the package's I/O
// interface: pins/8 bytes per transfer at BusMHz (doubled under DDR).
func (p Params) InterfaceBytesPerSec() units.BytesPerSec {
	return units.BusBandwidth(p.IOPins, p.BusMHz, p.DDR)
}

// TransferTime reports the time to move n bytes across the package
// interface, rounded up to whole nanoseconds.
func (p Params) TransferTime(n units.Bytes) simx.Time {
	return units.TransferTime(n, p.InterfaceBytesPerSec())
}

// PageTransferTime is TransferTime for one full page — the per-page tDMA
// term of Equations 1–3 when evaluated at package granularity.
func (p Params) PageTransferTime() simx.Time {
	return p.TransferTime(p.PageSizeBytes)
}
