package nand

import (
	"fmt"

	"triplea/internal/simx"
)

// Addr identifies one page inside a package.
//
// Block is a die-level block address; per ONFI even/odd block
// addressing, the block address selects the plane, so Plane must equal
// Block % PlanesPerDie (checked on every operation).
type Addr struct {
	Die   int
	Plane int
	Block int // die-level block address (parity selects the plane)
	Page  int // page index within the block
}

func (a Addr) String() string {
	return fmt.Sprintf("d%d/p%d/b%d/pg%d", a.Die, a.Plane, a.Block, a.Page)
}

// PageState tracks the physical condition of a page.
type PageState uint8

const (
	PageErased PageState = iota // never programmed since last erase
	PageValid                   // programmed, holds live data
	PageStale                   // programmed, data superseded (GC fodder)
)

func (s PageState) String() string {
	switch s {
	case PageErased:
		return "erased"
	case PageValid:
		return "valid"
	case PageStale:
		return "stale"
	}
	return "unknown"
}

// blockState is allocated lazily: a 16 TB array has billions of pages
// and only the touched blocks may cost host memory.
type blockState struct {
	eraseCount int
	nextPage   int // sequential-program pointer
	state      []PageState
}

// Op identifies a NAND command class for statistics.
type Op uint8

const (
	OpRead Op = iota
	OpProgram
	OpErase
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	default:
		return "unknown"
	}
}

// Stats aggregates activity on one package.
type Stats struct {
	Reads        uint64
	Programs     uint64
	Erases       uint64
	MultiPlane   uint64 // ops that used the multi-plane command
	CacheHits    uint64 // reads served from the cache register
	BusyNS       simx.Time
	MaxEraseWear int
}

// Done is the typed completion receiver for array operations — the
// zero-allocation alternative to the func callbacks. texe is the
// device-observed execution time including die queueing.
type Done interface {
	OnNandDone(texe simx.Time, err error)
}

// doneFunc adapts the closure API onto the typed path (cold paths only:
// the conversion allocates).
type doneFunc func(texe simx.Time, err error)

func (f doneFunc) OnNandDone(texe simx.Time, err error) { f(texe, err) } //simlint:cold closure-completion adapter; hot completions pre-bind Done receivers

// Package is one bare NAND flash package. All methods must be called
// from simulation context (inside engine events or before Run).
type Package struct {
	eng    *simx.Engine
	params Params
	dies   []*die

	blocks map[int]*blockState // keyed by flat block id
	freeOp *opState            // recycled operation nodes
	stats  Stats

	// Fault-injection state (fault.go). Nil maps and a zero scale mean
	// a healthy package; the hot paths test exactly that.
	badBlocks  map[int]bool // flat block id: every op fails
	wornBlocks map[int]bool // flat block id: program/erase fail, reads OK
	deadDies   map[int]bool // die index: every op fails
	timeScale  float64      // >0 scales cell times (injected stall)
}

// opState is the pooled per-operation state: it queues for the target
// die (simx.Grantee), rides the cell-time event (simx.Handler), and is
// recycled before the completion callback runs. addrs is borrowed from
// the caller for the duration of the operation.
type opState struct {
	pk     *Package
	op     Op
	addrs  []Addr
	d      Done
	issued simx.Time
	die    *die
	texe   simx.Time
	next   *opState
	ck     simx.PoolCheck
}

// OnGrant implements simx.Grantee: the die is ours; run the state
// machine and start the cell operation.
func (st *opState) OnGrant(arg uint64, _ simx.Time) {
	pk := st.pk
	// State-machine checks run once the die is granted, so queued
	// sequential programs see the state their predecessors committed.
	if err := pk.checkState(st.op, st.addrs); err != nil {
		st.die.res.Release()
		d := st.d
		pk.recycleOp(st)
		d.OnNandDone(0, err)
		return
	}
	st.texe = pk.execTime(st.op, st.addrs, st.die)
	pk.eng.ScheduleEvent(st.texe, st, 0)
}

// OnEvent implements simx.Handler: the cell time elapsed; commit.
func (st *opState) OnEvent(arg uint64) {
	pk := st.pk
	pk.commit(st.op, st.addrs, st.die)
	pk.stats.BusyNS += st.texe
	st.die.res.Release()
	d, issued := st.d, st.issued
	pk.recycleOp(st)
	// Report device-observed execution time including any die
	// queueing: callers use it for laggard accounting.
	d.OnNandDone(pk.eng.Now()-issued, nil)
}

func (pk *Package) newOp(op Op, addrs []Addr, d Done) *opState {
	st := pk.freeOp
	if st != nil {
		pk.freeOp = st.next
		st.ck.Checkout("nand.opState")
		st.next = nil
	} else {
		st = &opState{pk: pk} //simlint:coldalloc pool miss: opState free-list refill
		st.ck.Fresh("nand.opState")
	}
	st.op, st.addrs, st.d, st.issued = op, addrs, d, pk.eng.Now()
	st.die = pk.dies[addrs[0].Die]
	return st
}

func (pk *Package) recycleOp(st *opState) {
	st.addrs, st.d, st.die = nil, nil, nil
	st.ck.Release("nand.opState")
	st.next = pk.freeOp
	pk.freeOp = st
}

type die struct {
	res *simx.Resource
	// cacheTag remembers the last page latched into the cache register so
	// repeated reads of the hot page skip tR (cache-mode commands).
	cacheTag int64
}

// NewPackage builds a package; invalid params panic (a construction-time
// programming error, not a runtime condition).
func NewPackage(eng *simx.Engine, params Params) *Package {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	pk := &Package{
		eng:    eng,
		params: params,
		dies:   make([]*die, params.DiesPerPackage),
		blocks: make(map[int]*blockState),
	}
	for i := range pk.dies {
		pk.dies[i] = &die{
			res:      simx.NewResource(eng, fmt.Sprintf("die%d", i), 1),
			cacheTag: -1,
		}
	}
	return pk
}

// Params returns the package geometry/timing.
func (pk *Package) Params() Params { return pk.params }

// Stats returns a snapshot of package activity.
func (pk *Package) Stats() Stats {
	s := pk.stats
	//simlint:ordered commutative max over blocks
	for _, bs := range pk.blocks {
		if bs.eraseCount > s.MaxEraseWear {
			s.MaxEraseWear = bs.eraseCount
		}
	}
	return s
}

// DieBusy reports whether the addressed die is currently executing.
func (pk *Package) DieBusy(dieIdx int) bool {
	return pk.dies[dieIdx].res.InUse() > 0
}

// Busy reports whether any die is executing — the package-level
// ready/busy pin (FIMMs wire all packages' R/B# onto one line).
func (pk *Package) Busy() bool {
	for _, d := range pk.dies {
		if d.res.InUse() > 0 {
			return true
		}
	}
	return false
}

func (pk *Package) checkAddr(a Addr) error {
	p := pk.params
	switch {
	case a.Die < 0 || a.Die >= p.DiesPerPackage:
		return fmt.Errorf("nand: die %d out of range [0,%d)", a.Die, p.DiesPerPackage) //simlint:coldalloc error path: invalid address aborts the op
	case a.Plane < 0 || a.Plane >= p.PlanesPerDie:
		return fmt.Errorf("nand: plane %d out of range [0,%d)", a.Plane, p.PlanesPerDie) //simlint:coldalloc error path: invalid address aborts the op
	case a.Block < 0 || a.Block >= p.BlocksPerPlane.Int()*p.PlanesPerDie:
		return fmt.Errorf("nand: block %d out of range [0,%d)", a.Block, p.BlocksPerPlane.Int()*p.PlanesPerDie) //simlint:coldalloc error path: invalid address aborts the op
	case a.Page < 0 || a.Page >= p.PagesPerBlock.Int():
		return fmt.Errorf("nand: page %d out of range [0,%d)", a.Page, p.PagesPerBlock) //simlint:coldalloc error path: invalid address aborts the op
	case a.Plane != a.Block%p.PlanesPerDie:
		return fmt.Errorf("nand: block %d addresses plane %d, not plane %d (even/odd rule)", //simlint:coldalloc error path: invalid address aborts the op
			a.Block, a.Block%p.PlanesPerDie, a.Plane)
	}
	return nil
}

func (pk *Package) flatBlock(a Addr) int {
	p := pk.params
	return a.Die*p.PlanesPerDie*p.BlocksPerPlane.Int() + a.Block
}

func (pk *Package) flatPage(a Addr) int64 {
	return int64(pk.flatBlock(a))*pk.params.PagesPerBlock.Int64() + int64(a.Page)
}

func (pk *Package) block(a Addr) *blockState {
	id := pk.flatBlock(a)
	bs := pk.blocks[id]
	if bs == nil {
		bs = &blockState{state: make([]PageState, pk.params.PagesPerBlock)} //simlint:coldalloc first touch: lazy per-block page-state
		pk.blocks[id] = bs
	}
	return bs
}

// PageStateAt reports the physical state of a page.
func (pk *Package) PageStateAt(a Addr) PageState {
	if err := pk.checkAddr(a); err != nil {
		panic(err)
	}
	bs := pk.blocks[pk.flatBlock(a)]
	if bs == nil {
		return PageErased
	}
	return bs.state[a.Page]
}

// EraseCount reports the wear of the addressed block.
func (pk *Package) EraseCount(a Addr) int {
	bs := pk.blocks[pk.flatBlock(a)]
	if bs == nil {
		return 0
	}
	return bs.eraseCount
}

// Read latches the addressed pages (all on one die) into the data
// register and calls done with the array-access time charged. Multiple
// addresses exercise the multi-plane command: they must lie on distinct
// planes of the same die and share the block/page offsets' parity rule
// (even/odd block addressing selects the plane).
//
// done(texe) fires when the data is in the register; moving it off-chip
// is the channel's job (the FIMM model charges tDMA separately).
func (pk *Package) Read(addrs []Addr, done func(texe simx.Time, err error)) {
	if done == nil {
		panic("nand: nil done callback")
	}
	pk.ReadOp(addrs, doneFunc(done))
}

// ReadOp is the typed, allocation-free Read: d.OnNandDone runs with the
// array-access time charged.
func (pk *Package) ReadOp(addrs []Addr, d Done) {
	pk.startArrayOp(OpRead, addrs, d)
}

// Program writes the addressed pages. NAND constraints are enforced:
// the target pages must be erased and must be the block's next
// sequential page.
func (pk *Package) Program(addrs []Addr, done func(texe simx.Time, err error)) {
	if done == nil {
		panic("nand: nil done callback")
	}
	pk.ProgramOp(addrs, doneFunc(done))
}

// ProgramOp is the typed, allocation-free Program.
func (pk *Package) ProgramOp(addrs []Addr, d Done) {
	pk.startArrayOp(OpProgram, addrs, d)
}

// Erase erases the addressed blocks (Page field ignored).
func (pk *Package) Erase(addrs []Addr, done func(texe simx.Time, err error)) {
	if done == nil {
		panic("nand: nil done callback")
	}
	pk.EraseOp(addrs, doneFunc(done))
}

// EraseOp is the typed, allocation-free Erase.
func (pk *Package) EraseOp(addrs []Addr, d Done) {
	pk.startArrayOp(OpErase, addrs, d)
}

// ForcePopulate marks a page as programmed without simulating the
// write. It exists so experiment setup can install a workload's
// pre-existing data footprint (terabytes of cold data the traces read)
// without replaying years of writes; it costs no simulated time.
// The sequential-program pointer advances past the page, so dynamic
// allocation never collides with populated pages.
func (pk *Package) ForcePopulate(a Addr) error {
	if err := pk.checkAddr(a); err != nil {
		return err
	}
	bs := pk.block(a)
	if bs.state[a.Page] != PageErased {
		return fmt.Errorf("nand: ForcePopulate of programmed page %v", a)
	}
	bs.state[a.Page] = PageValid
	if a.Page >= bs.nextPage {
		bs.nextPage = a.Page + 1
	}
	return nil
}

// ForceErase resets a block without simulating the erase. Like
// ForcePopulate it is a bootstrap/emergency fixture (the array uses it
// only on the out-of-space fallback path, never during measured runs);
// it still counts wear.
func (pk *Package) ForceErase(a Addr) error {
	if err := pk.checkAddr(a); err != nil {
		return err
	}
	bs := pk.block(a)
	bs.eraseCount++
	bs.nextPage = 0
	for i := range bs.state {
		bs.state[i] = PageErased
	}
	pk.stats.Erases++
	return nil
}

// MarkStale invalidates a programmed page (an FTL bookkeeping action —
// costs no time on the device).
func (pk *Package) MarkStale(a Addr) error {
	if err := pk.checkAddr(a); err != nil {
		return err
	}
	bs := pk.block(a)
	if bs.state[a.Page] != PageValid {
		return fmt.Errorf("nand: MarkStale on non-valid page %v", a) //simlint:coldalloc error path: malformed multi-plane op
	}
	bs.state[a.Page] = PageStale
	return nil
}

func (pk *Package) validateMultiPlane(op Op, addrs []Addr) error {
	if len(addrs) == 0 {
		return fmt.Errorf("nand: %v with no addresses", op) //simlint:coldalloc error path: malformed multi-plane op
	}
	for _, a := range addrs {
		if err := pk.checkAddr(a); err != nil {
			return err
		}
	}
	first := addrs[0]
	for i, a := range addrs {
		if a.Die != first.Die {
			return fmt.Errorf("nand: multi-plane %v spans dies %d and %d (use die interleaving instead)", //simlint:coldalloc error path: malformed multi-plane op
				op, first.Die, a.Die)
		}
		// A multi-plane op covers at most the planes of one die, so a
		// pairwise scan beats allocating a seen-set per validation.
		for _, b := range addrs[:i] {
			if b.Plane == a.Plane {
				return fmt.Errorf("nand: multi-plane %v addresses plane %d twice", op, a.Plane) //simlint:coldalloc error path: malformed multi-plane op
			}
		}
		if op != OpErase && a.Page != first.Page {
			return fmt.Errorf("nand: multi-plane %v page offsets differ (%d vs %d)", //simlint:coldalloc error path: malformed multi-plane op
				op, first.Page, a.Page)
		}
	}
	return nil
}

func (pk *Package) startArrayOp(op Op, addrs []Addr, d Done) {
	if d == nil {
		panic("nand: nil done receiver")
	}
	if len(addrs) == 0 {
		d.OnNandDone(0, fmt.Errorf("nand: %v with no addresses", op)) //simlint:coldalloc error path: malformed multi-plane op
		return
	}
	if len(addrs) > 1 {
		if err := pk.validateMultiPlane(op, addrs); err != nil {
			d.OnNandDone(0, err)
			return
		}
		pk.stats.MultiPlane++
	} else if err := pk.checkAddr(addrs[0]); err != nil {
		d.OnNandDone(0, err)
		return
	}

	st := pk.newOp(op, addrs, d)
	st.die.res.AcquireG(st, 0)
}

func (pk *Package) checkState(op Op, addrs []Addr) error {
	if pk.badBlocks != nil || pk.wornBlocks != nil || pk.deadDies != nil {
		if err := pk.checkFaults(op, addrs); err != nil {
			return err
		}
	}
	switch op {
	case OpProgram:
		for _, a := range addrs {
			bs := pk.block(a)
			if bs.state[a.Page] != PageErased {
				return fmt.Errorf("nand: program of non-erased page %v", a) //simlint:coldalloc error path: state-machine violation
			}
			if a.Page != bs.nextPage {
				return fmt.Errorf("nand: out-of-order program %v (next is page %d)", a, bs.nextPage) //simlint:coldalloc error path: state-machine violation
			}
		}
	case OpRead:
		for _, a := range addrs {
			bs := pk.blocks[pk.flatBlock(a)]
			if bs == nil || bs.state[a.Page] == PageErased {
				return fmt.Errorf("nand: read of erased page %v", a) //simlint:coldalloc error path: state-machine violation
			}
		}
	case OpErase:
		// No state precondition: erasing an erased or partly programmed
		// block is legal NAND behaviour.
	}
	return nil
}

func (pk *Package) execTime(op Op, addrs []Addr, d *die) simx.Time {
	t := pk.baseExecTime(op, addrs, d)
	if pk.timeScale > 0 {
		t = simx.Time(float64(t) * pk.timeScale)
	}
	return t
}

func (pk *Package) baseExecTime(op Op, addrs []Addr, d *die) simx.Time {
	p := pk.params
	base := p.TCmdOverhead
	switch op {
	case OpRead:
		if p.CacheOK && len(addrs) == 1 && d.cacheTag == pk.flatPage(addrs[0]) {
			pk.stats.CacheHits++
			return base // data already latched in the cache register
		}
		return base + p.TRead + p.TECCPerPage
	case OpProgram:
		return base + p.TProg + p.TECCPerPage
	case OpErase:
		return base + p.TErase
	}
	panic("nand: unknown op")
}

func (pk *Package) commit(op Op, addrs []Addr, d *die) {
	switch op {
	case OpRead:
		pk.stats.Reads += uint64(len(addrs))
		if len(addrs) == 1 {
			d.cacheTag = pk.flatPage(addrs[0])
		} else {
			d.cacheTag = -1
		}
	case OpProgram:
		pk.stats.Programs += uint64(len(addrs))
		for _, a := range addrs {
			bs := pk.block(a)
			bs.state[a.Page] = PageValid
			bs.nextPage = a.Page + 1
		}
		d.cacheTag = -1
	case OpErase:
		pk.stats.Erases += uint64(len(addrs))
		for _, a := range addrs {
			bs := pk.block(a)
			bs.eraseCount++
			bs.nextPage = 0
			for i := range bs.state {
				bs.state[i] = PageErased
			}
		}
		d.cacheTag = -1
	}
}
