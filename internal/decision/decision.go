// Package decision is the flight recorder for the autonomic policies:
// a deterministic, bounded-memory trace of every migration, reshaping,
// GC-victim, and fault-recovery decision together with the top-K scored
// alternatives that were considered and a counterfactual regret metric.
//
// Regret is defined against the FULL candidate set, not just the
// eligible one: regret = max(0, bestScoreOverAllCandidates - chosenScore).
// An excluded candidate (degraded hardware, laggard slot, GC veto) that
// would have scored better than the chosen one therefore shows up as
// positive regret — the cost of the exclusion is measurable instead of
// invisible. Regret is zero iff the chosen candidate ties the argmax of
// everything that was scored.
//
// The recorder follows the two-backend pattern of internal/metrics: the
// Off backend is a nil *Recorder, and every recording hook is
// nil-receiver-safe, so the off path costs exactly one nil check on the
// hot paths (certified by the hotzero analyzer). The Ring backend keeps
// a fixed ring of the most recent records plus streaming per-family
// aggregates (count, regret mean/max, regret histogram, per-cluster
// choice distribution, top-regret exemplars) so memory stays bounded at
// any run length. See docs/decision-traces.md.
package decision

import (
	"fmt"
	"strconv"
)

// Backend selects the decision-recording backend, mirroring
// metrics.Backend: the zero value is the default (off).
type Backend uint8

const (
	// Off records nothing. The recorder pointer stays nil and every
	// hook short-circuits on the nil check.
	Off Backend = iota
	// Ring records into a bounded ring of records plus streaming
	// aggregates.
	Ring
)

func (b Backend) String() string {
	switch b {
	case Off:
		return "off"
	case Ring:
		return "ring"
	default:
		return fmt.Sprintf("Backend(%d)", uint8(b))
	}
}

// ParseBackend maps a CLI/config string onto a Backend. The empty
// string selects the default (Off); "on" is accepted as an alias for
// the ring backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "off":
		return Off, nil
	case "ring", "on":
		return Ring, nil
	default:
		return Off, fmt.Errorf("decision: unknown backend %q (want off or ring)", s)
	}
}

// Family identifies which autonomic policy made a decision.
type Family uint8

const (
	// Migration: core.Manager chose a cold-cluster target for a hot
	// cluster's data (paper Eq.1).
	Migration Family = iota
	// Reshape: core.Manager chose a sibling FIMM slot for laggard
	// reshaping (paper Eq.3).
	Reshape
	// WriteRedirect: core.Manager redirected an incoming write away
	// from a contended or degraded home slot.
	WriteRedirect
	// GCVictim: ftl.PlanGC chose a victim block for garbage
	// collection.
	GCVictim
	// Evacuation: the fault injector chose an evacuation destination
	// for a cluster unplug.
	Evacuation
	// Restore: the array chose a fallback mapping while restoring a
	// lost page or redirecting a write off faulted hardware.
	Restore

	numFamilies
)

// NumFamilies is the number of decision families, for sizing
// per-family aggregate tables.
const NumFamilies = int(numFamilies)

func (f Family) String() string {
	switch f {
	case Migration:
		return "migration"
	case Reshape:
		return "reshape"
	case WriteRedirect:
		return "write-redirect"
	case GCVictim:
		return "gc-victim"
	case Evacuation:
		return "evacuation"
	case Restore:
		return "restore"
	//simlint:partial numFamilies is a count sentinel, never a value
	default:
		return fmt.Sprintf("Family(%d)", uint8(f))
	}
}

// ParseFamily is the inverse of Family.String.
func ParseFamily(s string) (Family, error) {
	switch s {
	case "migration":
		return Migration, nil
	case "reshape":
		return Reshape, nil
	case "write-redirect":
		return WriteRedirect, nil
	case "gc-victim":
		return GCVictim, nil
	case "evacuation":
		return Evacuation, nil
	case "restore":
		return Restore, nil
	default:
		return Migration, fmt.Errorf("decision: unknown family %q", s)
	}
}

// MarshalJSON renders the family as its string form so traces are
// self-describing.
func (f Family) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, f.String()), nil
}

func (f *Family) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("decision: family: %w", err)
	}
	v, err := ParseFamily(s)
	if err != nil {
		return err
	}
	*f = v
	return nil
}

// ExcludeReason says why a scored candidate was (or was not) in the
// eligible set. Eligible candidates compete for the choice; excluded
// ones still enter the regret baseline so exclusion cost is visible.
type ExcludeReason uint8

const (
	// Eligible: the candidate was in the choosable set.
	Eligible ExcludeReason = iota
	// ExcludedDegraded: hardware health made the candidate
	// unplaceable (Eq.1/Eq.3 degraded exclusion).
	ExcludedDegraded
	// ExcludedWarm: the candidate's utilization was above the
	// cold-cluster threshold (Eq.1).
	ExcludedWarm
	// ExcludedLaggard: the slot was itself flagged as a laggard
	// (Eq.3 reshaping never targets a laggard).
	ExcludedLaggard
	// ExcludedVetoed: the GC veto hook rejected the block.
	ExcludedVetoed
	// ExcludedRetired: the block or die was retired by a fault.
	ExcludedRetired
)

func (r ExcludeReason) String() string {
	switch r {
	case Eligible:
		return "eligible"
	case ExcludedDegraded:
		return "degraded"
	case ExcludedWarm:
		return "warm"
	case ExcludedLaggard:
		return "laggard"
	case ExcludedVetoed:
		return "vetoed"
	case ExcludedRetired:
		return "retired"
	default:
		return fmt.Sprintf("ExcludeReason(%d)", uint8(r))
	}
}

// ParseExcludeReason is the inverse of ExcludeReason.String.
func ParseExcludeReason(s string) (ExcludeReason, error) {
	switch s {
	case "eligible":
		return Eligible, nil
	case "degraded":
		return ExcludedDegraded, nil
	case "warm":
		return ExcludedWarm, nil
	case "laggard":
		return ExcludedLaggard, nil
	case "vetoed":
		return ExcludedVetoed, nil
	case "retired":
		return ExcludedRetired, nil
	default:
		return Eligible, fmt.Errorf("decision: unknown exclude reason %q", s)
	}
}

func (r ExcludeReason) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, r.String()), nil
}

func (r *ExcludeReason) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("decision: exclude reason: %w", err)
	}
	v, err := ParseExcludeReason(s)
	if err != nil {
		return err
	}
	*r = v
	return nil
}

const (
	// MaxAlternatives is the number of top-scored alternatives kept
	// per record. Candidates beyond the top-K still count toward NCand
	// and the regret baseline; only their details are dropped.
	MaxAlternatives = 8
	// TopExemplars is the number of highest-regret decisions retained
	// in the streaming summary.
	TopExemplars = 8
	// DefaultRingSize is the bounded ring capacity: the most recent
	// DefaultRingSize decisions keep their full records.
	DefaultRingSize = 4096
)

// Alternative is one scored candidate retained in a record's top-K.
type Alternative struct {
	ID     int64         `json:"id"`
	Score  float64       `json:"score"`
	Reason ExcludeReason `json:"reason"`
}
