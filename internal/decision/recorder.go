package decision

import (
	"triplea/internal/metrics"
	"triplea/internal/simx"
)

// Record is one fully-committed decision: when and where it happened,
// what was chosen, how the alternatives scored, and the counterfactual
// regret against the best candidate that was scored (eligible or not).
type Record struct {
	// Seq is the 0-based global decision sequence number.
	Seq uint64
	// At is the simulation time the decision was made.
	At simx.Time
	// Family is the policy that decided.
	Family Family
	// Cluster is the flat cluster index the decision originated at
	// (the hot cluster, the reshaping endpoint's cluster, the GC
	// cluster, the unplugged cluster); -1 when not applicable.
	Cluster int
	// Chosen identifies the committed candidate (a flat FIMM index, a
	// flat cluster index, or a packed PPN depending on Family); -1
	// when the policy chose nothing.
	Chosen int64
	// Score is the chosen candidate's score under the family's scoring
	// convention (higher is better).
	Score float64
	// Regret is max(0, bestCandidateScore-Score) over every candidate
	// scored for this decision, eligible or excluded.
	Regret float64
	// Dest is the flat cluster index the choice lands on; -1 when not
	// applicable.
	Dest int
	// NCand is the total number of candidates scored, including those
	// dropped from the top-K.
	NCand int
	// Alts holds the top NAlts candidates by score (descending, ID
	// ascending on ties).
	Alts  [MaxAlternatives]Alternative
	NAlts int
}

// familyAgg is the streaming per-family aggregate: O(1) state per
// family regardless of run length. Regret is quantized to micro-units
// (x1e6) for the fixed-bucket histogram.
type familyAgg struct {
	count     uint64
	regretSum float64
	regretMax float64
	hist      *metrics.Histogram
}

// Recorder is the Ring-backend decision recorder. A nil *Recorder is
// the Off backend: every method is nil-receiver-safe and short-circuits
// on one nil check, which is the entire cost of recording-off on the
// hot paths. Methods never allocate; the ring, histograms, and cluster
// table are sized once at construction.
//
// The protocol per decision is Begin, zero or more Candidate calls,
// then exactly one Commit or Cancel. Begin unconditionally resets the
// in-progress state, so a missed Cancel cannot corrupt the next
// decision.
type Recorder struct {
	ring []Record
	// seq counts committed decisions; the ring index of record s is
	// s % len(ring).
	seq uint64

	// In-progress decision state between Begin and Commit/Cancel.
	cur       Record
	bestScore float64
	bestID    int64
	haveBest  bool
	open      bool

	families      [numFamilies]familyAgg
	clusterChoice []uint64
	top           [TopExemplars]Exemplar
	nTop          int
}

// NewRecorder builds a Ring-backend recorder for an array with the
// given number of flat clusters.
func NewRecorder(clusters int) *Recorder {
	r := &Recorder{
		ring:          make([]Record, DefaultRingSize),
		clusterChoice: make([]uint64, clusters),
	}
	for i := range r.families {
		r.families[i].hist = metrics.NewHistogram()
	}
	return r
}

// Begin opens a decision record. now is passed by the caller (rather
// than read through a clock hook) so the hot instrumentation sites stay
// free of dynamic calls.
func (r *Recorder) Begin(f Family, cluster int, now simx.Time) {
	if r == nil {
		return
	}
	r.cur = Record{At: now, Family: f, Cluster: cluster, Chosen: -1, Dest: -1}
	r.bestScore = 0
	r.bestID = 0
	r.haveBest = false
	r.open = true
}

// Candidate scores one candidate for the open decision. Higher scores
// are better. Every candidate — eligible or excluded — enters the
// regret baseline; only the top MaxAlternatives by (score descending,
// ID ascending) keep their details in the record.
func (r *Recorder) Candidate(id int64, score float64, reason ExcludeReason) {
	if r == nil || !r.open {
		return
	}
	r.cur.NCand++
	if !r.haveBest || score > r.bestScore ||
		(score == r.bestScore && id < r.bestID) {
		r.bestScore = score
		r.bestID = id
		r.haveBest = true
	}
	n := r.cur.NAlts
	i := n
	for i > 0 {
		a := r.cur.Alts[i-1]
		if a.Score > score || (a.Score == score && a.ID <= id) {
			break
		}
		i--
	}
	if i >= MaxAlternatives {
		return
	}
	if n < MaxAlternatives {
		n++
	}
	for j := n - 1; j > i; j-- {
		r.cur.Alts[j] = r.cur.Alts[j-1]
	}
	r.cur.Alts[i] = Alternative{ID: id, Score: score, Reason: reason}
	r.cur.NAlts = n
}

// Commit closes the open decision with the chosen candidate, computes
// regret, and folds the record into the ring and the streaming
// aggregates. dest is the flat cluster the choice lands on (-1 if not
// applicable).
func (r *Recorder) Commit(chosen int64, score float64, dest int) {
	if r == nil || !r.open {
		return
	}
	r.open = false
	r.cur.Chosen = chosen
	r.cur.Score = score
	r.cur.Dest = dest
	regret := 0.0
	if r.haveBest && r.bestScore > score {
		regret = r.bestScore - score
	}
	r.cur.Regret = regret
	r.cur.Seq = r.seq
	r.seq++
	r.ring[r.cur.Seq%uint64(len(r.ring))] = r.cur

	f := r.cur.Family
	r.families[f].count++
	r.families[f].regretSum += regret
	if regret > r.families[f].regretMax {
		r.families[f].regretMax = regret
	}
	r.families[f].hist.Observe(simx.Time(regret * 1e6))

	if dest >= 0 && dest < len(r.clusterChoice) {
		r.clusterChoice[dest]++
	}

	n := r.nTop
	i := n
	for i > 0 {
		e := r.top[i-1]
		if e.Regret > regret || (e.Regret == regret && e.Seq <= r.cur.Seq) {
			break
		}
		i--
	}
	if i >= TopExemplars {
		return
	}
	if n < TopExemplars {
		n++
	}
	for j := n - 1; j > i; j-- {
		r.top[j] = r.top[j-1]
	}
	r.top[i] = Exemplar{
		Seq:     r.cur.Seq,
		At:      r.cur.At,
		Family:  r.cur.Family,
		Cluster: r.cur.Cluster,
		Chosen:  chosen,
		Regret:  regret,
	}
	r.nTop = n
}

// Cancel discards the open decision without counting it (used when a
// policy aborts, e.g. GC finds no reclaimable victim).
func (r *Recorder) Cancel() {
	if r == nil {
		return
	}
	r.open = false
}

// Len reports how many of the most recent decisions currently have
// full records in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.seq < uint64(len(r.ring)) {
		return int(r.seq)
	}
	return len(r.ring)
}

// Decisions reports the total number of committed decisions.
func (r *Recorder) Decisions() uint64 {
	if r == nil {
		return 0
	}
	return r.seq
}
