package decision

import (
	"math"
	"testing"

	"triplea/internal/simx"
)

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		err  bool
	}{
		{"", Off, false},
		{"off", Off, false},
		{"ring", Ring, false},
		{"on", Ring, false},
		{"bogus", Off, true},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v, err=%v",
				c.in, got, err, c.want, c.err)
		}
	}
}

func TestEnumRoundTrip(t *testing.T) {
	for f := Family(0); f < Family(NumFamilies); f++ {
		got, err := ParseFamily(f.String())
		if err != nil || got != f {
			t.Errorf("family %d round-trip: got %v, %v", f, got, err)
		}
	}
	reasons := []ExcludeReason{Eligible, ExcludedDegraded, ExcludedWarm,
		ExcludedLaggard, ExcludedVetoed, ExcludedRetired}
	for _, r := range reasons {
		got, err := ParseExcludeReason(r.String())
		if err != nil || got != r {
			t.Errorf("reason %d round-trip: got %v, %v", r, got, err)
		}
	}
}

// lastRecord reads the most recent committed record.
func lastRecord(t *testing.T, r *Recorder) TraceRecord {
	t.Helper()
	tr := r.Trace()
	if len(tr.Records) == 0 {
		t.Fatal("no records committed")
	}
	return tr.Records[len(tr.Records)-1]
}

func TestRegretZeroIffChosenIsArgmax(t *testing.T) {
	r := NewRecorder(4)

	// Chosen ties the argmax: regret must be exactly zero.
	r.Begin(Migration, 0, 10)
	r.Candidate(1, -0.5, Eligible)
	r.Candidate(2, -0.2, Eligible)
	r.Candidate(3, -0.9, ExcludedDegraded)
	r.Commit(2, -0.2, 2)
	if got := lastRecord(t, r).Regret; got != 0 {
		t.Errorf("argmax chosen: regret = %v, want 0", got)
	}

	// Chosen is strictly worse than the best candidate (an excluded
	// one): regret is the exact positive gap.
	r.Begin(Migration, 0, 20)
	r.Candidate(1, -0.5, Eligible)
	r.Candidate(2, -0.1, ExcludedDegraded)
	r.Commit(1, -0.5, 1)
	rec := lastRecord(t, r)
	if want := 0.4; math.Abs(rec.Regret-want) > 1e-12 {
		t.Errorf("excluded-better: regret = %v, want %v", rec.Regret, want)
	}
	if rec.Regret < 0 {
		t.Errorf("regret negative: %v", rec.Regret)
	}

	// Chosen better than every scored candidate (possible when the
	// chosen score is computed outside the candidate loop): clamps to 0.
	r.Begin(GCVictim, 1, 30)
	r.Candidate(7, -5, Eligible)
	r.Commit(9, -1, 1)
	if got := lastRecord(t, r).Regret; got != 0 {
		t.Errorf("chosen-above-best: regret = %v, want 0", got)
	}
}

func TestAlternativesSortedAndBounded(t *testing.T) {
	r := NewRecorder(4)
	r.Begin(Reshape, 2, 5)
	// 12 candidates, interleaved scores with ties; only the top 8 by
	// (score desc, ID asc) survive, but all 12 shape the baseline.
	scores := []float64{-3, -1, -4, -1, -5, -9, -2, -6, -8, -7, -0.5, -1}
	for i, s := range scores {
		r.Candidate(int64(i), s, Eligible)
	}
	r.Commit(10, -0.5, 2)
	rec := lastRecord(t, r)
	if rec.Candidates != len(scores) {
		t.Errorf("candidates = %d, want %d", rec.Candidates, len(scores))
	}
	if len(rec.Alternatives) != MaxAlternatives {
		t.Fatalf("alternatives = %d, want %d", len(rec.Alternatives), MaxAlternatives)
	}
	for i := 1; i < len(rec.Alternatives); i++ {
		a, b := rec.Alternatives[i-1], rec.Alternatives[i]
		if a.Score < b.Score || (a.Score == b.Score && a.ID >= b.ID) {
			t.Errorf("alternatives not sorted at %d: %+v then %+v", i, a, b)
		}
	}
	// Ties on score -1 (IDs 1, 3, 11) must appear in ascending ID order.
	var tieIDs []int64
	for _, a := range rec.Alternatives {
		if a.Score == -1 {
			tieIDs = append(tieIDs, a.ID)
		}
	}
	if len(tieIDs) != 3 || tieIDs[0] != 1 || tieIDs[1] != 3 || tieIDs[2] != 11 {
		t.Errorf("tie order = %v, want [1 3 11]", tieIDs)
	}
	if rec.Regret != 0 {
		t.Errorf("regret = %v, want 0 (chosen ties best)", rec.Regret)
	}
}

func TestCancelAndBeginReset(t *testing.T) {
	r := NewRecorder(4)
	r.Begin(Evacuation, 0, 1)
	r.Candidate(1, 1, Eligible)
	r.Cancel()
	if r.Decisions() != 0 || r.Len() != 0 {
		t.Errorf("cancelled decision was counted: %d/%d", r.Decisions(), r.Len())
	}
	// Candidate/Commit outside an open decision are no-ops.
	r.Candidate(2, 2, Eligible)
	r.Commit(2, 2, 0)
	if r.Decisions() != 0 {
		t.Errorf("commit without begin was counted")
	}
	// Begin resets state even after an unbalanced sequence.
	r.Begin(Restore, 1, 2)
	r.Commit(5, 0, 1)
	rec := lastRecord(t, r)
	if rec.Candidates != 0 || len(rec.Alternatives) != 0 || rec.Regret != 0 {
		t.Errorf("stale builder state leaked: %+v", rec)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Begin(Migration, 0, 0)
	r.Candidate(1, 1, Eligible)
	r.Commit(1, 1, 0)
	r.Cancel()
	if r.Decisions() != 0 || r.Len() != 0 {
		t.Error("nil recorder reported decisions")
	}
	s := r.Summary()
	if s.Decisions != 0 || s.Families != nil {
		t.Errorf("nil recorder summary not zero: %+v", s)
	}
	tr := r.Trace()
	if tr.Records != nil {
		t.Errorf("nil recorder trace has records")
	}
}

func TestRingWrapKeepsMostRecent(t *testing.T) {
	r := NewRecorder(2)
	total := DefaultRingSize + 10
	for i := 0; i < total; i++ {
		r.Begin(GCVictim, 0, simx.Time(i))
		r.Candidate(int64(i), 0, Eligible)
		r.Commit(int64(i), 0, 0)
	}
	if r.Decisions() != uint64(total) {
		t.Fatalf("decisions = %d, want %d", r.Decisions(), total)
	}
	if r.Len() != DefaultRingSize {
		t.Fatalf("ring len = %d, want %d", r.Len(), DefaultRingSize)
	}
	tr := r.Trace()
	if got := tr.Records[0].Seq; got != uint64(total-DefaultRingSize) {
		t.Errorf("oldest retained seq = %d, want %d", got, total-DefaultRingSize)
	}
	if got := tr.Records[len(tr.Records)-1].Seq; got != uint64(total-1) {
		t.Errorf("newest retained seq = %d, want %d", got, total-1)
	}
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].Seq != tr.Records[i-1].Seq+1 {
			t.Fatalf("records not in seq order at %d", i)
		}
	}
}

func TestSummaryAggregates(t *testing.T) {
	r := NewRecorder(3)
	r.Begin(Migration, 0, 1)
	r.Candidate(1, -0.2, Eligible)
	r.Candidate(2, -0.6, Eligible)
	r.Commit(1, -0.2, 1)
	r.Begin(Migration, 0, 2)
	r.Candidate(1, -0.1, ExcludedDegraded)
	r.Candidate(2, -0.3, Eligible)
	r.Commit(2, -0.3, 2)
	r.Begin(GCVictim, 1, 3)
	r.Candidate(10, -4, Eligible)
	r.Commit(10, -4, 1)

	s := r.Summary()
	if s.Decisions != 3 {
		t.Fatalf("decisions = %d, want 3", s.Decisions)
	}
	if len(s.Families) != 2 {
		t.Fatalf("families = %d, want 2 (zero-count families omitted)", len(s.Families))
	}
	mig := s.Families[0]
	if mig.Family != Migration || mig.Count != 2 {
		t.Fatalf("first family %+v, want migration count 2", mig)
	}
	if want := 0.1; math.Abs(mig.RegretMean-want) > 1e-9 {
		t.Errorf("migration regret mean = %v, want %v", mig.RegretMean, want)
	}
	if want := 0.2; math.Abs(mig.RegretMax-want) > 1e-9 {
		t.Errorf("migration regret max = %v, want %v", mig.RegretMax, want)
	}
	if len(s.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(s.Clusters))
	}
	if s.Clusters[0].Cluster != 1 || s.Clusters[0].Count != 2 {
		t.Errorf("cluster 1 distribution wrong: %+v", s.Clusters[0])
	}
	if len(s.TopRegret) != 3 {
		t.Fatalf("top regret = %d, want 3", len(s.TopRegret))
	}
	if s.TopRegret[0].Regret < s.TopRegret[1].Regret {
		t.Errorf("top regret not sorted: %+v", s.TopRegret)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRecorder(2)
	r.Begin(WriteRedirect, 1, 7)
	r.Candidate(3, -1, ExcludedLaggard)
	r.Candidate(4, 0, Eligible)
	r.Commit(4, 0, 1)
	ts := TraceSet{Seed: 42, Scenarios: []NamedTrace{{Name: "t", Trace: r.Trace()}}}
	b1, err := EncodeJSON(ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTraceSet(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeJSON(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("encode/decode/encode not byte-stable:\n%s\nvs\n%s", b1, b2)
	}
	rec := got.Scenarios[0].Trace.Records[0]
	if rec.Family != WriteRedirect || rec.Alternatives[1].Reason != ExcludedLaggard {
		t.Errorf("enums did not survive round-trip: %+v", rec)
	}
}

// TestRecordingHooksDoNotAllocate pins the Ring backend's hot-path
// contract: Begin/Candidate/Commit/Cancel never allocate once the
// recorder exists.
func TestRecordingHooksDoNotAllocate(t *testing.T) {
	r := NewRecorder(8)
	n := testing.AllocsPerRun(200, func() {
		r.Begin(Migration, 0, 1)
		for i := 0; i < 12; i++ {
			r.Candidate(int64(i), -float64(i), Eligible)
		}
		r.Commit(0, 0, 0)
		r.Begin(GCVictim, 1, 2)
		r.Cancel()
	})
	if n != 0 {
		t.Errorf("recording hooks allocate %v per run, want 0", n)
	}
}
