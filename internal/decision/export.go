package decision

// export.go is the cold read-out side of the recorder: streaming
// summaries, full trace export, and deterministic JSON encoding.
// Nothing here runs on the simulation hot path.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"triplea/internal/simx"
)

// Exemplar is one of the highest-regret decisions of a run, retained
// in the streaming summary.
type Exemplar struct {
	Seq     uint64    `json:"seq"`
	At      simx.Time `json:"at"`
	Family  Family    `json:"family"`
	Cluster int       `json:"cluster"`
	Chosen  int64     `json:"chosen"`
	Regret  float64   `json:"regret"`
}

// FamilySummary is the streaming aggregate for one decision family.
// Regret quantiles come from the micro-unit histogram, so they carry
// its bucket resolution; mean and max are exact.
type FamilySummary struct {
	Family     Family  `json:"family"`
	Count      uint64  `json:"count"`
	RegretMean float64 `json:"regret_mean"`
	RegretMax  float64 `json:"regret_max"`
	RegretP50  float64 `json:"regret_p50"`
	RegretP95  float64 `json:"regret_p95"`
	RegretP99  float64 `json:"regret_p99"`
}

// ClusterCount is one entry of the per-cluster choice distribution:
// how many committed decisions landed on this flat cluster.
type ClusterCount struct {
	Cluster int    `json:"cluster"`
	Count   uint64 `json:"count"`
}

// Summary is the bounded-size aggregate view of a run's decisions. It
// is a plain value (fresh slices, no recorder pointers), so like
// metrics.Snapshot it can cross the sweep worker boundary.
type Summary struct {
	Decisions uint64          `json:"decisions"`
	Families  []FamilySummary `json:"families,omitempty"`
	TopRegret []Exemplar      `json:"top_regret,omitempty"`
	Clusters  []ClusterCount  `json:"clusters,omitempty"`
}

// Summary materializes the streaming aggregates. Families and clusters
// with zero decisions are omitted; the rest appear in index order, so
// the output is deterministic. Safe on a nil (Off) recorder, which
// yields the zero Summary.
func (r *Recorder) Summary() Summary {
	var s Summary
	if r == nil {
		return s
	}
	s.Decisions = r.seq
	for f := 0; f < NumFamilies; f++ {
		agg := &r.families[f]
		if agg.count == 0 {
			continue
		}
		s.Families = append(s.Families, FamilySummary{
			Family:     Family(f),
			Count:      agg.count,
			RegretMean: agg.regretSum / float64(agg.count),
			RegretMax:  agg.regretMax,
			RegretP50:  float64(agg.hist.Quantile(50)) / 1e6,
			RegretP95:  float64(agg.hist.Quantile(95)) / 1e6,
			RegretP99:  float64(agg.hist.Quantile(99)) / 1e6,
		})
	}
	if r.nTop > 0 {
		s.TopRegret = append([]Exemplar(nil), r.top[:r.nTop]...)
	}
	for c, n := range r.clusterChoice {
		if n > 0 {
			s.Clusters = append(s.Clusters, ClusterCount{Cluster: c, Count: n})
		}
	}
	return s
}

// TraceRecord is the export form of one Record, with the top-K
// alternatives as a slice sized to what was actually kept.
type TraceRecord struct {
	Seq          uint64        `json:"seq"`
	At           simx.Time     `json:"at"`
	Family       Family        `json:"family"`
	Cluster      int           `json:"cluster"`
	Chosen       int64         `json:"chosen"`
	Score        float64       `json:"score"`
	Regret       float64       `json:"regret"`
	Dest         int           `json:"dest"`
	Candidates   int           `json:"candidates"`
	Alternatives []Alternative `json:"alternatives,omitempty"`
}

// Trace is the full read-out of one run: the streaming summary plus
// the ring's retained records, oldest first.
type Trace struct {
	Summary Summary       `json:"summary"`
	Records []TraceRecord `json:"records,omitempty"`
}

// Trace exports the summary and the retained records (oldest first,
// handling ring wrap). Safe on a nil recorder.
func (r *Recorder) Trace() Trace {
	var t Trace
	if r == nil {
		return t
	}
	t.Summary = r.Summary()
	size := uint64(len(r.ring))
	count := r.seq
	start := uint64(0)
	if count > size {
		start = count - size
		count = size
	}
	for i := uint64(0); i < count; i++ {
		rec := &r.ring[(start+i)%size]
		tr := TraceRecord{
			Seq:        rec.Seq,
			At:         rec.At,
			Family:     rec.Family,
			Cluster:    rec.Cluster,
			Chosen:     rec.Chosen,
			Score:      rec.Score,
			Regret:     rec.Regret,
			Dest:       rec.Dest,
			Candidates: rec.NCand,
		}
		if rec.NAlts > 0 {
			tr.Alternatives = append([]Alternative(nil), rec.Alts[:rec.NAlts]...)
		}
		t.Records = append(t.Records, tr)
	}
	return t
}

// NamedTrace pairs a scenario name with its trace inside a TraceSet.
type NamedTrace struct {
	Name  string `json:"name"`
	Trace Trace  `json:"trace"`
}

// TraceSet is the on-disk decision-trace artifact: the seed that
// produced it plus one trace per recorded scenario.
type TraceSet struct {
	Seed      uint64       `json:"seed"`
	Scenarios []NamedTrace `json:"scenarios"`
}

// EncodeJSON renders a TraceSet as indented JSON with a trailing
// newline. Struct-driven encoding (no maps) keeps the bytes
// deterministic for the same input, which the seed-42 golden pins.
func EncodeJSON(ts TraceSet) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ts); err != nil {
		return nil, fmt.Errorf("decision: encode trace set: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeTraceSet parses bytes produced by EncodeJSON.
func DecodeTraceSet(b []byte) (TraceSet, error) {
	var ts TraceSet
	if err := json.Unmarshal(b, &ts); err != nil {
		return TraceSet{}, fmt.Errorf("decision: decode trace set: %w", err)
	}
	return ts, nil
}
