package fimm

import (
	"errors"

	"triplea/internal/simx"
	"triplea/internal/units"
)

// Fault-injection hooks (see internal/fault and docs/fault-injection.md).

// ErrDead marks an operation submitted to a FIMM that died. Detected
// with errors.Is by the endpoint/array error paths.
var ErrDead = errors.New("fimm: module dead")

// Kill makes the module stop responding: every future Read/Program/
// Erase completes immediately with ErrDead (before any pooled state is
// minted, so fault paths cannot leak fimm.fop nodes). Operations
// already in flight run to completion — the module's last committed
// work drains, matching a module that loses its link rather than its
// in-progress silicon state.
func (f *FIMM) Kill() { f.dead = true }

// Alive reports whether the module still accepts operations.
func (f *FIMM) Alive() bool { return !f.dead }

// SetChannelScale stretches every channel transfer by s (>1 models
// degraded ONFI lanes — e.g. a 16-pin channel trained down to 8 pins
// at s=2). Zero restores the nominal rate.
func (f *FIMM) SetChannelScale(s float64) { f.channelScale = s }

// SetCellTimeScale stretches every package's cell operation time by s
// (>1 models a stalled module). Zero restores nominal timing.
func (f *FIMM) SetCellTimeScale(s float64) {
	for _, pk := range f.packages {
		pk.SetTimingScale(s)
	}
}

// xferTime reports the channel time for n pages under any injected
// lane degradation.
func (f *FIMM) xferTime(n int) simx.Time {
	t := units.ScaleByPages(f.params.PageTransferTime(), units.Pages(n))
	if f.channelScale > 0 {
		t = simx.Time(float64(t) * f.channelScale)
	}
	return t
}
