package fimm

import (
	"testing"
	"testing/quick"

	"triplea/internal/nand"
	"triplea/internal/simx"
	"triplea/internal/units"
)

func testParams() Params {
	p := DefaultParams()
	p.NumPackages = 2
	p.Nand.BlocksPerPlane = 8
	p.Nand.PagesPerBlock = 4
	return p
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	// 8 packages x 8 GiB = 64 GiB, the paper's FIMM capacity.
	want := 64 * units.GiB
	if got := p.CapacityBytes(); got != want {
		t.Errorf("CapacityBytes = %d, want %d (64 GiB)", got, want)
	}
	// 16 pins at 400 MHz DDR = 1.6 GB/s; 4 KiB page = 2560 ns.
	if got := p.PageTransferTime(); got != 2560 {
		t.Errorf("PageTransferTime = %v, want 2560ns", got)
	}
	if got := p.PageCount(); got != units.BytesToPages(want, 4*units.KiB) {
		t.Errorf("PageCount = %d, want %d", got, units.BytesToPages(want, 4*units.KiB))
	}
}

func TestParamsValidation(t *testing.T) {
	for _, mod := range []func(*Params){
		func(p *Params) { p.NumPackages = 0 },
		func(p *Params) { p.ChannelPins = 7 },
		func(p *Params) { p.ChannelMHz = 0 },
		func(p *Params) { p.Nand.PageSizeBytes = 0 },
	} {
		p := DefaultParams()
		mod(&p)
		if p.Validate() == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
}

func programOne(t *testing.T, eng *simx.Engine, f *FIMM, pkg int, a nand.Addr) {
	t.Helper()
	f.Program(pkg, []nand.Addr{a}, func(r Result) {
		if r.Err != nil {
			t.Fatalf("program %v: %v", a, r.Err)
		}
	})
	eng.Run()
}

func TestReadTimingDecomposition(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	f := New(eng, p)
	a := nand.Addr{}
	programOne(t, eng, f, 0, a)

	var r Result
	start := eng.Now()
	f.Read(0, []nand.Addr{a}, func(res Result) { r = res })
	eng.Run()

	n := p.Nand
	wantCell := n.TCmdOverhead + n.TRead + n.TECCPerPage
	if r.Err != nil {
		t.Fatalf("read: %v", r.Err)
	}
	if r.Texe != wantCell {
		t.Errorf("Texe = %v, want %v", r.Texe, wantCell)
	}
	if r.StorageWait != 0 || r.ChannelWait != 0 {
		t.Errorf("unexpected waits on idle module: %+v", r)
	}
	if r.ChannelXfer != p.PageTransferTime() {
		t.Errorf("ChannelXfer = %v, want %v", r.ChannelXfer, p.PageTransferTime())
	}
	if got := eng.Now() - start; got != r.Total() {
		t.Errorf("elapsed %v != Result.Total %v", got, r.Total())
	}
}

func TestChannelSerializesAcrossPackages(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	f := New(eng, p)
	a := nand.Addr{}
	programOne(t, eng, f, 0, a)
	programOne(t, eng, f, 1, a)

	// Two reads on different packages: cell reads overlap (independent
	// dies), channel transfers serialize.
	var r0, r1 Result
	f.Read(0, []nand.Addr{a}, func(r Result) { r0 = r })
	f.Read(1, []nand.Addr{a}, func(r Result) { r1 = r })
	eng.Run()

	if r0.Err != nil || r1.Err != nil {
		t.Fatalf("reads failed: %v %v", r0.Err, r1.Err)
	}
	if r0.ChannelWait+r1.ChannelWait != p.PageTransferTime() {
		t.Errorf("one transfer should wait a full page slot: %v + %v, want total %v",
			r0.ChannelWait, r1.ChannelWait, p.PageTransferTime())
	}
	// Two setup programs + two reads = four page transfers total.
	if got := f.Stats().ChannelBusy; got != 4*p.PageTransferTime() {
		t.Errorf("channel busy %v, want %v", got, 4*p.PageTransferTime())
	}
}

func TestStorageContentionVisible(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	p.Nand.CacheOK = false
	f := New(eng, p)
	// Two pages in the same block (same die): reads serialize on the die.
	a0 := nand.Addr{Page: 0}
	a1 := nand.Addr{Page: 1}
	programOne(t, eng, f, 0, a0)
	programOne(t, eng, f, 0, a1)

	var r0, r1 Result
	f.Read(0, []nand.Addr{a0}, func(r Result) { r0 = r })
	f.Read(0, []nand.Addr{a1}, func(r Result) { r1 = r })
	eng.Run()

	if r0.StorageWait != 0 {
		t.Errorf("first read StorageWait = %v, want 0", r0.StorageWait)
	}
	if r1.StorageWait != r1.Texe {
		t.Errorf("second read should wait one full cell read: wait %v, texe %v",
			r1.StorageWait, r1.Texe)
	}
}

func TestProgramChannelFirst(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	f := New(eng, p)
	var r Result
	start := eng.Now()
	f.Program(0, []nand.Addr{{}}, func(res Result) { r = res })
	eng.Run()
	if r.Err != nil {
		t.Fatalf("program: %v", r.Err)
	}
	n := p.Nand
	want := p.PageTransferTime() + n.TCmdOverhead + n.TProg + n.TECCPerPage
	if got := eng.Now() - start; got != want {
		t.Errorf("program elapsed %v, want %v", got, want)
	}
}

func TestEraseNoChannel(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	f := New(eng, p)
	var r Result
	f.Erase(0, []nand.Addr{{}}, func(res Result) { r = res })
	eng.Run()
	if r.Err != nil {
		t.Fatalf("erase: %v", r.Err)
	}
	if r.ChannelXfer != 0 || r.ChannelWait != 0 {
		t.Errorf("erase moved data: %+v", r)
	}
	if f.Stats().Erases != 1 || f.Stats().TotalErases != 1 {
		t.Errorf("stats = %+v", f.Stats())
	}
}

func TestErrorsPropagate(t *testing.T) {
	eng := simx.NewEngine()
	f := New(eng, testParams())
	var r Result
	f.Read(0, []nand.Addr{{}}, func(res Result) { r = res }) // erased page
	eng.Run()
	if r.Err == nil {
		t.Error("read of erased page did not error")
	}
	f.Read(99, []nand.Addr{{}}, func(res Result) { r = res })
	eng.Run()
	if r.Err == nil {
		t.Error("out-of-range package did not error")
	}
	f.Program(-1, []nand.Addr{{}}, func(res Result) { r = res })
	eng.Run()
	if r.Err == nil {
		t.Error("negative package did not error")
	}
	f.Erase(2, []nand.Addr{{}}, func(res Result) { r = res })
	eng.Run()
	if r.Err == nil {
		t.Error("erase out-of-range package did not error")
	}
}

func TestBusyLine(t *testing.T) {
	eng := simx.NewEngine()
	f := New(eng, testParams())
	if f.Busy() {
		t.Error("fresh FIMM busy")
	}
	f.Program(0, []nand.Addr{{}}, func(Result) {})
	if !f.Busy() {
		t.Error("FIMM idle during program")
	}
	eng.Run()
	if f.Busy() {
		t.Error("FIMM busy after completion")
	}
}

func TestChannelUtilization(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	f := New(eng, p)
	programOne(t, eng, f, 0, nand.Addr{})
	base := eng.Now()
	busy0 := f.ChannelBusyNS()
	f.Read(0, []nand.Addr{{}}, func(Result) {})
	eng.Run()
	u := f.ChannelUtilizationSince(base, busy0)
	elapsed := eng.Now() - base
	want := float64(p.PageTransferTime()) / float64(elapsed)
	if u != want {
		t.Errorf("utilization = %v, want %v", u, want)
	}
}

func TestBytesMovedAccounting(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	f := New(eng, p)
	a := nand.Addr{}
	programOne(t, eng, f, 0, a)
	f.Read(0, []nand.Addr{a}, func(Result) {})
	eng.Run()
	want := 2 * p.Nand.PageSizeBytes // one program + one read
	if got := f.Stats().BytesMoved; got != want {
		t.Errorf("BytesMoved = %d, want %d", got, want)
	}
}

func TestSplitDeviceTime(t *testing.T) {
	if w, c := splitDeviceTime(100, 60); w != 40 || c != 60 {
		t.Errorf("splitDeviceTime(100,60) = %v,%v", w, c)
	}
	if w, c := splitDeviceTime(30, 60); w != 0 || c != 30 {
		t.Errorf("splitDeviceTime(30,60) = %v,%v", w, c)
	}
}

// Property: total elapsed for k sequential reads of the same programmed
// page equals the sum of the per-read Totals (no hidden time).
func TestPropertyResultTotalsAccountElapsed(t *testing.T) {
	f := func(k uint8) bool {
		n := int(k%8) + 1
		eng := simx.NewEngine()
		p := testParams()
		fm := New(eng, p)
		fm.Program(0, []nand.Addr{{}}, func(Result) {})
		eng.Run()
		start := eng.Now()
		var sum simx.Time
		var run func(i int)
		run = func(i int) {
			if i == n {
				return
			}
			fm.Read(0, []nand.Addr{{}}, func(r Result) {
				if r.Err != nil {
					t.Fatal(r.Err)
				}
				sum += r.Total()
				run(i + 1)
			})
		}
		run(0)
		eng.Run()
		return eng.Now()-start == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFIMMAccessors(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	f := New(eng, p)
	if f.Params().NumPackages != p.NumPackages || f.NumPackages() != p.NumPackages {
		t.Error("params accessors disagree")
	}
	if f.Package(0) == nil {
		t.Error("nil package")
	}
	if f.ChannelQueueLen() != 0 {
		t.Errorf("fresh channel queue = %d", f.ChannelQueueLen())
	}
}
