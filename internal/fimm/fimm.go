// Package fimm models the Flash Inline Memory Module: eight bare NAND
// packages soldered to a DIMM-like printed circuit board, sharing a
// 16-data-pin channel behind the ONFI 78-pin NV-DDR2 connector (the
// paper's Figure 6). A FIMM carries no microprocessor, no DRAM buffer
// and no firmware — it is a passive memory device whose packages are
// selected by chip-enable and whose ready/busy pins share one wire.
//
// Timing model per operation:
//
//	read:    cell access (nand texe, per-die parallel) → channel transfer
//	program: channel transfer (data in)               → cell program
//	erase:   cell erase only (no data movement)
//
// The channel is a capacity-1 resource; transfers across a FIMM's
// packages serialize on it, exactly like the electrical bus.
package fimm

import (
	"fmt"

	"triplea/internal/nand"
	"triplea/internal/simx"
	"triplea/internal/units"
)

// Params describes one FIMM.
type Params struct {
	NumPackages int         // NAND packages on the module (paper: 8)
	ChannelPins units.Lanes // data pins of the shared channel (paper: 16)
	ChannelMHz  int         // NV-DDR2 clock (paper: 400)
	ChannelDDR  bool        // double data rate

	Nand nand.Params
}

// DefaultParams returns the paper's FIMM: 8 default packages on a
// 16-pin 400 MHz NV-DDR2 channel — 64 GiB per module.
func DefaultParams() Params {
	return Params{
		NumPackages: 8,
		ChannelPins: 16 * units.Lane,
		ChannelMHz:  400,
		ChannelDDR:  true,
		Nand:        nand.DefaultParams(),
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.NumPackages <= 0:
		return fmt.Errorf("fimm: NumPackages %d must be positive", p.NumPackages)
	case p.ChannelPins != 8*units.Lane && p.ChannelPins != 16*units.Lane:
		return fmt.Errorf("fimm: ChannelPins %d must be 8 or 16", p.ChannelPins)
	case p.ChannelMHz <= 0:
		return fmt.Errorf("fimm: ChannelMHz %d must be positive", p.ChannelMHz)
	}
	return p.Nand.Validate()
}

// CapacityBytes reports the module capacity.
func (p Params) CapacityBytes() units.Bytes {
	return units.Bytes(p.NumPackages) * p.Nand.BytesPerPackage()
}

// PageCount reports the number of pages on the module.
func (p Params) PageCount() units.Pages {
	return units.Pages(p.NumPackages) * p.Nand.PagesPerPackage()
}

// ChannelBytesPerSec reports the shared channel's raw bandwidth.
func (p Params) ChannelBytesPerSec() units.BytesPerSec {
	return units.BusBandwidth(p.ChannelPins, p.ChannelMHz, p.ChannelDDR)
}

// PageTransferTime reports the channel time for one page — the tDMA of
// Equations 1–3 evaluated at the FIMM channel.
func (p Params) PageTransferTime() simx.Time {
	return units.TransferTime(p.Nand.PageSizeBytes, p.ChannelBytesPerSec())
}

// Result reports the timing decomposition of one FIMM operation.
type Result struct {
	StorageWait simx.Time // queueing for the target die (storage contention inside the FIMM)
	Texe        simx.Time // cell time (tR / tPROG / tBERS + controller overhead)
	ChannelWait simx.Time // queueing for the shared FIMM channel
	ChannelXfer simx.Time // data movement across the channel
	Err         error
}

// Total reports the operation's total device time.
func (r Result) Total() simx.Time {
	return r.StorageWait + r.Texe + r.ChannelWait + r.ChannelXfer
}

// Stats aggregates FIMM activity.
type Stats struct {
	Reads        uint64
	Programs     uint64
	Erases       uint64
	BytesMoved   units.Bytes
	ChannelBusy  simx.Time
	TotalErases  uint64
	MaxBlockWear int
}

// Done is the typed completion receiver for FIMM operations — the
// zero-allocation alternative to the func callbacks.
type Done interface {
	OnFIMMDone(r Result)
}

// DoneFunc adapts a plain function to Done for cold paths and tests
// (the conversion allocates).
type DoneFunc func(r Result)

// OnFIMMDone implements Done.
func (fn DoneFunc) OnFIMMDone(r Result) { fn(r) } //simlint:cold closure-completion adapter; hot completions pre-bind Done receivers

// FIMM is one flash inline memory module.
type FIMM struct {
	eng      *simx.Engine
	params   Params
	packages []*nand.Package
	channel  *simx.Resource
	freeOp   *fop // recycled operation nodes

	// Fault-injection state (fault.go): dead rejects new operations;
	// channelScale > 0 stretches channel transfers (degraded lanes).
	dead         bool
	channelScale float64

	stats Stats
}

// fop is the pooled per-operation state for the typed read/program
// paths: it receives the cell completion (nand.Done), queues for the
// shared channel (simx.Grantee), and rides the transfer event
// (simx.Handler). The op field selects the branch: reads run
// cell → channel, programs run channel → cell.
type fop struct {
	f     *FIMM
	op    nand.Op
	pkg   int
	addrs []nand.Addr
	d     Done
	wait  simx.Time // storage (die-queue) wait
	cell  simx.Time // nominal cell time
	chW   simx.Time // channel-queue wait
	xfer  simx.Time // channel transfer time
	next  *fop
	ck    simx.PoolCheck
}

// finish recycles the node, then delivers the result.
func (st *fop) finish(r Result) {
	f, d := st.f, st.d
	f.recycleOp(st)
	d.OnFIMMDone(r)
}

// OnNandDone implements nand.Done.
func (st *fop) OnNandDone(texe simx.Time, err error) {
	f := st.f
	switch st.op {
	case nand.OpRead:
		if err != nil {
			st.finish(Result{Err: err})
			return
		}
		// texe from nand includes die queueing; split out the nominal
		// cell time so storage contention is visible separately.
		st.wait, st.cell = splitDeviceTime(texe, f.cellTime(nand.OpRead, len(st.addrs)))
		f.channel.AcquireG(st, 0)
	case nand.OpProgram:
		if err != nil {
			st.finish(Result{ChannelWait: st.chW, ChannelXfer: st.xfer, Err: err})
			return
		}
		st.wait, st.cell = splitDeviceTime(texe, f.cellTime(nand.OpProgram, len(st.addrs)))
		f.stats.Programs += uint64(len(st.addrs))
		f.stats.BytesMoved += units.PagesToBytes(units.Pages(len(st.addrs)), f.params.Nand.PageSizeBytes)
		st.finish(Result{
			StorageWait: st.wait,
			Texe:        st.cell,
			ChannelWait: st.chW,
			ChannelXfer: st.xfer,
		})
	case nand.OpErase:
		panic("fimm: erase on pooled op path")
	}
}

// OnGrant implements simx.Grantee: the shared channel is ours.
func (st *fop) OnGrant(arg uint64, waited simx.Time) {
	st.chW = waited
	st.f.eng.ScheduleEvent(st.xfer, st, 0)
}

// OnEvent implements simx.Handler: the channel transfer finished.
func (st *fop) OnEvent(arg uint64) {
	f := st.f
	f.channel.Release()
	switch st.op {
	case nand.OpRead:
		f.stats.Reads += uint64(len(st.addrs))
		f.stats.BytesMoved += units.PagesToBytes(units.Pages(len(st.addrs)), f.params.Nand.PageSizeBytes)
		st.finish(Result{
			StorageWait: st.wait,
			Texe:        st.cell,
			ChannelWait: st.chW,
			ChannelXfer: st.xfer,
		})
	case nand.OpProgram:
		// Data is in the package's register; program the cells.
		f.packages[st.pkg].ProgramOp(st.addrs, st)
	case nand.OpErase:
		panic("fimm: erase on pooled op path")
	}
}

func (f *FIMM) newOp(op nand.Op, pkg int, addrs []nand.Addr, d Done) *fop {
	st := f.freeOp
	if st != nil {
		f.freeOp = st.next
		st.ck.Checkout("fimm.fop")
		st.next = nil
	} else {
		st = &fop{f: f} //simlint:coldalloc pool miss: fop free-list refill
		st.ck.Fresh("fimm.fop")
	}
	st.op, st.pkg, st.addrs, st.d = op, pkg, addrs, d
	st.wait, st.cell, st.chW, st.xfer = 0, 0, 0, 0
	return st
}

func (f *FIMM) recycleOp(st *fop) {
	st.addrs, st.d = nil, nil
	st.ck.Release("fimm.fop")
	st.next = f.freeOp
	f.freeOp = st
}

// New builds a FIMM; invalid params panic (construction-time error).
func New(eng *simx.Engine, params Params) *FIMM {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	f := &FIMM{
		eng:     eng,
		params:  params,
		channel: simx.NewResource(eng, "fimm-channel", 1),
	}
	for i := 0; i < params.NumPackages; i++ {
		f.packages = append(f.packages, nand.NewPackage(eng, params.Nand))
	}
	return f
}

// Params returns the module parameters.
func (f *FIMM) Params() Params { return f.params }

// NumPackages reports the package count.
func (f *FIMM) NumPackages() int { return len(f.packages) }

// Package exposes one NAND package (for the FTL and tests).
func (f *FIMM) Package(i int) *nand.Package { return f.packages[i] }

// Busy reports the module's single ready/busy wire: asserted while any
// package executes or the channel is moving data.
func (f *FIMM) Busy() bool {
	if f.channel.InUse() > 0 {
		return true
	}
	for _, pk := range f.packages {
		if pk.Busy() {
			return true
		}
	}
	return false
}

// ChannelQueueLen reports how many transfers wait for the channel.
func (f *FIMM) ChannelQueueLen() int { return f.channel.QueueLen() }

// ChannelBusyNS reports the channel's accumulated busy time, for
// utilisation sampling.
func (f *FIMM) ChannelBusyNS() simx.Time { return f.channel.BusyNS() }

// ChannelUtilizationSince reports channel utilisation over a window.
func (f *FIMM) ChannelUtilizationSince(since simx.Time, busyAtSince simx.Time) float64 {
	return f.channel.UtilizationSince(since, busyAtSince)
}

// Stats returns a snapshot of module activity, aggregating wear across
// packages.
func (f *FIMM) Stats() Stats {
	s := f.stats
	s.ChannelBusy = f.channel.BusyNS()
	for _, pk := range f.packages {
		ps := pk.Stats()
		s.TotalErases += ps.Erases
		if ps.MaxEraseWear > s.MaxBlockWear {
			s.MaxBlockWear = ps.MaxEraseWear
		}
	}
	return s
}

func (f *FIMM) checkPkg(pkg int) error {
	if pkg < 0 || pkg >= len(f.packages) {
		return fmt.Errorf("fimm: package %d out of range [0,%d)", pkg, len(f.packages)) //simlint:coldalloc error path: package index out of range
	}
	return nil
}

// Read performs a cell read on the addressed package then moves the
// pages across the shared channel. done receives the timing split.
func (f *FIMM) Read(pkg int, addrs []nand.Addr, done func(Result)) {
	if done == nil {
		panic("fimm: nil done callback")
	}
	f.ReadOp(pkg, addrs, DoneFunc(done))
}

// ReadOp is the typed, allocation-free Read.
func (f *FIMM) ReadOp(pkg int, addrs []nand.Addr, d Done) {
	if d == nil {
		panic("fimm: nil done receiver")
	}
	if err := f.checkPkg(pkg); err != nil {
		d.OnFIMMDone(Result{Err: err})
		return
	}
	if f.dead {
		d.OnFIMMDone(Result{Err: fmt.Errorf("fimm: read: %w", ErrDead)}) //simlint:coldalloc fault path: dead-module error
		return
	}
	st := f.newOp(nand.OpRead, pkg, addrs, d)
	st.xfer = f.xferTime(len(addrs))
	f.packages[pkg].ReadOp(addrs, st)
}

// Program moves the pages across the channel into the package's data
// register, then programs the cells.
func (f *FIMM) Program(pkg int, addrs []nand.Addr, done func(Result)) {
	if done == nil {
		panic("fimm: nil done callback")
	}
	f.ProgramOp(pkg, addrs, DoneFunc(done))
}

// ProgramOp is the typed, allocation-free Program.
func (f *FIMM) ProgramOp(pkg int, addrs []nand.Addr, d Done) {
	if d == nil {
		panic("fimm: nil done receiver")
	}
	if err := f.checkPkg(pkg); err != nil {
		d.OnFIMMDone(Result{Err: err})
		return
	}
	if f.dead {
		d.OnFIMMDone(Result{Err: fmt.Errorf("fimm: program: %w", ErrDead)}) //simlint:coldalloc fault path: dead-module error
		return
	}
	st := f.newOp(nand.OpProgram, pkg, addrs, d)
	st.xfer = f.xferTime(len(addrs))
	f.channel.AcquireG(st, 0)
}

// splitDeviceTime decomposes a device-observed time into (queueing,
// nominal cell time). Cache-mode hits finish faster than nominal; then
// the whole observed time is cell time and queueing is zero.
func splitDeviceTime(observed, nominal simx.Time) (wait, cell simx.Time) {
	if observed <= nominal {
		return 0, observed
	}
	return observed - nominal, nominal
}

// Erase erases blocks on the addressed package.
func (f *FIMM) Erase(pkg int, addrs []nand.Addr, done func(Result)) {
	if done == nil {
		panic("fimm: nil done callback")
	}
	if err := f.checkPkg(pkg); err != nil {
		done(Result{Err: err})
		return
	}
	if f.dead {
		done(Result{Err: fmt.Errorf("fimm: erase: %w", ErrDead)})
		return
	}
	f.packages[pkg].Erase(addrs, func(texe simx.Time, err error) {
		if err != nil {
			done(Result{Err: err})
			return
		}
		wait, cell := splitDeviceTime(texe, f.cellTime(nand.OpErase, len(addrs)))
		f.stats.Erases += uint64(len(addrs))
		done(Result{StorageWait: wait, Texe: cell})
	})
}

// cellTime reports the nominal (queue-free) cell time of an op.
func (f *FIMM) cellTime(op nand.Op, n int) simx.Time {
	p := f.params.Nand
	switch op {
	case nand.OpRead:
		return p.TCmdOverhead + p.TRead + p.TECCPerPage
	case nand.OpProgram:
		return p.TCmdOverhead + p.TProg + p.TECCPerPage
	case nand.OpErase:
		return p.TCmdOverhead + p.TErase
	}
	panic("fimm: unknown op")
}
