// Package topo defines the array's address geometry: how the flash
// array network is laid out (switches → clusters → FIMMs → packages →
// dies → blocks → pages) and how physical page numbers are packed into
// 64-bit values shared by the FTL, the array and the autonomic manager.
package topo

import (
	"fmt"

	"triplea/internal/nand"
	"triplea/internal/units"
)

// Geometry describes the array topology and the flash geometry beneath
// it. It is the single source of truth for address arithmetic.
type Geometry struct {
	Switches          int // PCI-E switches under the root complex
	ClustersPerSwitch int
	FIMMsPerCluster   int
	PackagesPerFIMM   int
	Nand              nand.Params
}

// Validate reports whether the geometry is usable and fits the PPN
// bit-packing limits.
func (g Geometry) Validate() error {
	switch {
	case g.Switches <= 0 || g.Switches > maxSwitch:
		return fmt.Errorf("topo: Switches %d out of range [1,%d]", g.Switches, maxSwitch)
	case g.ClustersPerSwitch <= 0 || g.ClustersPerSwitch > maxCluster:
		return fmt.Errorf("topo: ClustersPerSwitch %d out of range [1,%d]", g.ClustersPerSwitch, maxCluster)
	case g.FIMMsPerCluster <= 0 || g.FIMMsPerCluster > maxFIMM:
		return fmt.Errorf("topo: FIMMsPerCluster %d out of range [1,%d]", g.FIMMsPerCluster, maxFIMM)
	case g.PackagesPerFIMM <= 0 || g.PackagesPerFIMM > maxPkg:
		return fmt.Errorf("topo: PackagesPerFIMM %d out of range [1,%d]", g.PackagesPerFIMM, maxPkg)
	}
	if err := g.Nand.Validate(); err != nil {
		return err
	}
	if g.Nand.DiesPerPackage > maxDie {
		return fmt.Errorf("topo: DiesPerPackage %d exceeds %d", g.Nand.DiesPerPackage, maxDie)
	}
	if blocks := g.Nand.BlocksPerPlane.Int() * g.Nand.PlanesPerDie; blocks > maxBlock {
		return fmt.Errorf("topo: %d blocks per die exceeds %d", blocks, maxBlock)
	}
	if g.Nand.PagesPerBlock > maxPage {
		return fmt.Errorf("topo: PagesPerBlock %d exceeds %d", g.Nand.PagesPerBlock, maxPage)
	}
	return nil
}

// TotalClusters reports the cluster count across all switches.
func (g Geometry) TotalClusters() int { return g.Switches * g.ClustersPerSwitch }

// TotalFIMMs reports the FIMM count across the array.
func (g Geometry) TotalFIMMs() int { return g.TotalClusters() * g.FIMMsPerCluster }

// PagesPerFIMM reports the page count of one FIMM.
func (g Geometry) PagesPerFIMM() units.Pages {
	return units.Pages(g.PackagesPerFIMM) * g.Nand.PagesPerPackage()
}

// TotalPages reports the array's page count.
func (g Geometry) TotalPages() units.Pages {
	return units.Pages(g.TotalFIMMs()) * g.PagesPerFIMM()
}

// TotalBytes reports the array capacity in bytes.
func (g Geometry) TotalBytes() units.Bytes {
	return units.PagesToBytes(g.TotalPages(), g.Nand.PageSizeBytes)
}

// ParallelUnitsPerFIMM reports the independently programmable units of
// one FIMM: packages × dies × planes.
func (g Geometry) ParallelUnitsPerFIMM() int {
	return g.PackagesPerFIMM * g.Nand.DiesPerPackage * g.Nand.PlanesPerDie
}

// ClusterID names one cluster (endpoint + FIMMs) in the array.
type ClusterID struct {
	Switch  int
	Cluster int // index under its switch
}

func (c ClusterID) String() string { return fmt.Sprintf("sw%d/cl%d", c.Switch, c.Cluster) }

// Flat reports the cluster's array-wide index.
func (c ClusterID) Flat(g Geometry) int { return c.Switch*g.ClustersPerSwitch + c.Cluster }

// ClusterFromFlat is the inverse of ClusterID.Flat.
func ClusterFromFlat(g Geometry, flat int) ClusterID {
	return ClusterID{Switch: flat / g.ClustersPerSwitch, Cluster: flat % g.ClustersPerSwitch}
}

// FIMMID names one FIMM in the array.
type FIMMID struct {
	ClusterID
	FIMM int // slot within the cluster
}

func (f FIMMID) String() string { return fmt.Sprintf("%v/f%d", f.ClusterID, f.FIMM) }

// Flat reports the FIMM's array-wide index.
func (f FIMMID) Flat(g Geometry) int {
	return f.ClusterID.Flat(g)*g.FIMMsPerCluster + f.FIMM
}

// FIMMFromFlat is the inverse of FIMMID.Flat.
func FIMMFromFlat(g Geometry, flat int) FIMMID {
	return FIMMID{
		ClusterID: ClusterFromFlat(g, flat/g.FIMMsPerCluster),
		FIMM:      flat % g.FIMMsPerCluster,
	}
}

// PPN is a physical page number: the full path to one flash page,
// bit-packed so sparse maps of touched pages stay small.
//
// Layout (LSB first): page:12 | block:20 | die:3 | pkg:5 | fimm:4 |
// cluster:8 | switch:4. Block is the die-level block address (its
// parity selects the plane).
type PPN uint64

const (
	pageBits, blockBits, dieBits, pkgBits, fimmBits, clusterBits, switchBits = 12, 20, 3, 5, 4, 8, 4

	pageShift    = 0
	blockShift   = pageShift + pageBits
	dieShift     = blockShift + blockBits
	pkgShift     = dieShift + dieBits
	fimmShift    = pkgShift + pkgBits
	clusterShift = fimmShift + fimmBits
	switchShift  = clusterShift + clusterBits

	maxPage    = 1<<pageBits - 1
	maxBlock   = 1<<blockBits - 1
	maxDie     = 1<<dieBits - 1
	maxPkg     = 1<<pkgBits - 1
	maxFIMM    = 1<<fimmBits - 1
	maxCluster = 1<<clusterBits - 1
	maxSwitch  = 1<<switchBits - 1
)

// PackPPN assembles a PPN; out-of-range components panic (they indicate
// address-arithmetic bugs, not runtime conditions).
func PackPPN(sw, cluster, fimmSlot, pkg, die, block, page int) PPN {
	check := func(v, max int, what string) {
		if v < 0 || v > max {
			panic(fmt.Sprintf("topo: %s %d out of packable range [0,%d]", what, v, max))
		}
	}
	check(sw, maxSwitch, "switch")
	check(cluster, maxCluster, "cluster")
	check(fimmSlot, maxFIMM, "fimm")
	check(pkg, maxPkg, "package")
	check(die, maxDie, "die")
	check(block, maxBlock, "block")
	check(page, maxPage, "page")
	return PPN(uint64(page)<<pageShift |
		uint64(block)<<blockShift |
		uint64(die)<<dieShift |
		uint64(pkg)<<pkgShift |
		uint64(fimmSlot)<<fimmShift |
		uint64(cluster)<<clusterShift |
		uint64(sw)<<switchShift)
}

// Switch extracts the switch index.
func (p PPN) Switch() int { return int(p>>switchShift) & maxSwitch }

// Cluster extracts the cluster index under its switch.
func (p PPN) Cluster() int { return int(p>>clusterShift) & maxCluster }

// FIMMSlot extracts the FIMM slot within its cluster.
func (p PPN) FIMMSlot() int { return int(p>>fimmShift) & maxFIMM }

// Pkg extracts the package index within the FIMM.
func (p PPN) Pkg() int { return int(p>>pkgShift) & maxPkg }

// Die extracts the die index within the package.
func (p PPN) Die() int { return int(p>>dieShift) & maxDie }

// Block extracts the die-level block address.
func (p PPN) Block() int { return int(p>>blockShift) & maxBlock }

// Page extracts the page index within the block.
func (p PPN) Page() int { return int(p>>pageShift) & maxPage }

// ClusterID reports the cluster the page lives in.
func (p PPN) ClusterID() ClusterID { return ClusterID{Switch: p.Switch(), Cluster: p.Cluster()} }

// FIMMID reports the FIMM the page lives in.
func (p PPN) FIMMID() FIMMID { return FIMMID{ClusterID: p.ClusterID(), FIMM: p.FIMMSlot()} }

// BlockKey reports the PPN with its page bits cleared — a stable
// identifier for the erase block the page lives in.
func (p PPN) BlockKey() PPN { return p &^ PPN(maxPage) }

// NandAddr reports the page's address within its package. The plane is
// derived from the block's parity per the even/odd addressing rule.
func (p PPN) NandAddr(g Geometry) nand.Addr {
	return nand.Addr{
		Die:   p.Die(),
		Plane: p.Block() % g.Nand.PlanesPerDie,
		Block: p.Block(),
		Page:  p.Page(),
	}
}

func (p PPN) String() string {
	return fmt.Sprintf("sw%d/cl%d/f%d/pk%d/d%d/b%d/pg%d",
		p.Switch(), p.Cluster(), p.FIMMSlot(), p.Pkg(), p.Die(), p.Block(), p.Page())
}
