package topo

// Health is the array-wide availability registry backing fault
// injection and hot-swap modeling: which clusters are online, degraded
// (serving reads while their data evacuates) or physically unplugged,
// and which FIMMs are dead. It is pure bookkeeping — the array and the
// autonomic manager consult it on placement and admission decisions;
// the fault injector mutates it.
//
// All methods tolerate a nil receiver (everything reports online), so
// components can hold an optional *Health without guarding every call.

// ClusterState is a cluster's availability for I/O and data placement.
type ClusterState uint8

const (
	// ClusterOnline serves I/O and accepts new data placement.
	ClusterOnline ClusterState = iota
	// ClusterDegraded still serves reads and in-flight writes but is
	// excluded from new placement while its live data evacuates.
	ClusterDegraded
	// ClusterOffline is hot-unplugged: nothing behind it is reachable.
	ClusterOffline
)

func (s ClusterState) String() string {
	switch s {
	case ClusterOnline:
		return "online"
	case ClusterDegraded:
		return "degraded"
	case ClusterOffline:
		return "offline"
	}
	return "unknown"
}

// FIMMState is one FIMM module's availability.
type FIMMState uint8

const (
	// FIMMOnline is a healthy module.
	FIMMOnline FIMMState = iota
	// FIMMDead is a module that stopped responding; its resident pages
	// are lost (or remapped elsewhere, when recovery is enabled).
	FIMMDead
)

func (s FIMMState) String() string {
	switch s {
	case FIMMOnline:
		return "online"
	case FIMMDead:
		return "dead"
	}
	return "unknown"
}

// Health tracks per-cluster and per-FIMM availability.
type Health struct {
	g        Geometry
	clusters []ClusterState
	fimms    []FIMMState

	// notOnline counts entries away from their healthy state, so the
	// unfaulted fast path is a single comparison.
	notOnline int
}

// NewHealth returns an all-online registry for the geometry.
func NewHealth(g Geometry) *Health {
	return &Health{
		g:        g,
		clusters: make([]ClusterState, g.TotalClusters()),
		fimms:    make([]FIMMState, g.TotalFIMMs()),
	}
}

// AllOnline reports whether every cluster and FIMM is healthy — the
// fast path every per-page availability check takes on an unfaulted
// array.
func (h *Health) AllOnline() bool { return h == nil || h.notOnline == 0 }

// Cluster reports a cluster's state.
func (h *Health) Cluster(id ClusterID) ClusterState {
	if h == nil {
		return ClusterOnline
	}
	return h.clusters[id.Flat(h.g)]
}

// SetCluster records a cluster state transition.
func (h *Health) SetCluster(id ClusterID, s ClusterState) {
	flat := id.Flat(h.g)
	if h.clusters[flat] == ClusterOnline && s != ClusterOnline {
		h.notOnline++
	} else if h.clusters[flat] != ClusterOnline && s == ClusterOnline {
		h.notOnline--
	}
	h.clusters[flat] = s
}

// FIMM reports a module's state.
func (h *Health) FIMM(id FIMMID) FIMMState {
	if h == nil {
		return FIMMOnline
	}
	return h.fimms[id.Flat(h.g)]
}

// SetFIMM records a module state transition.
func (h *Health) SetFIMM(id FIMMID, s FIMMState) {
	flat := id.Flat(h.g)
	if h.fimms[flat] == FIMMOnline && s != FIMMOnline {
		h.notOnline++
	} else if h.fimms[flat] != FIMMOnline && s == FIMMOnline {
		h.notOnline--
	}
	h.fimms[flat] = s
}

// Readable reports whether data resident on the FIMM can be read: the
// module is alive and its cluster is reachable (online or degraded —
// a degraded cluster keeps serving while it evacuates).
func (h *Health) Readable(id FIMMID) bool {
	if h == nil {
		return true
	}
	return h.FIMM(id) == FIMMOnline && h.Cluster(id.ClusterID) != ClusterOffline
}

// Placeable reports whether new data may be placed on the FIMM: the
// module is alive and its cluster fully online.
func (h *Health) Placeable(id FIMMID) bool {
	if h == nil {
		return true
	}
	return h.FIMM(id) == FIMMOnline && h.Cluster(id.ClusterID) == ClusterOnline
}

// ClusterPlaceable reports whether a cluster accepts new data.
func (h *Health) ClusterPlaceable(id ClusterID) bool {
	return h == nil || h.Cluster(id) == ClusterOnline
}

// ClusterReadable reports whether a cluster still serves I/O.
func (h *Health) ClusterReadable(id ClusterID) bool {
	return h == nil || h.Cluster(id) != ClusterOffline
}
