package topo

import (
	"testing"
	"testing/quick"

	"triplea/internal/nand"
	"triplea/internal/units"
)

func testGeometry() Geometry {
	return Geometry{
		Switches:          4,
		ClustersPerSwitch: 16,
		FIMMsPerCluster:   4,
		PackagesPerFIMM:   8,
		Nand:              nand.DefaultParams(),
	}
}

func TestGeometryValidate(t *testing.T) {
	g := testGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("paper geometry invalid: %v", err)
	}
	for _, mod := range []func(*Geometry){
		func(g *Geometry) { g.Switches = 0 },
		func(g *Geometry) { g.Switches = 999 },
		func(g *Geometry) { g.ClustersPerSwitch = 0 },
		func(g *Geometry) { g.FIMMsPerCluster = 0 },
		func(g *Geometry) { g.FIMMsPerCluster = 99 },
		func(g *Geometry) { g.PackagesPerFIMM = 0 },
		func(g *Geometry) { g.Nand.PageSizeBytes = 0 },
		func(g *Geometry) { g.Nand.PagesPerBlock = 5000 },
	} {
		bad := testGeometry()
		mod(&bad)
		if bad.Validate() == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := testGeometry()
	// Paper baseline: 4x16 clusters of 4 x 64 GiB FIMMs = 16 TiB.
	if got, want := g.TotalBytes(), 16*1024*units.GiB; got != want {
		t.Errorf("TotalBytes = %d, want %d (16 TiB)", got, want)
	}
	if g.TotalClusters() != 64 || g.TotalFIMMs() != 256 {
		t.Errorf("clusters=%d fimms=%d, want 64/256", g.TotalClusters(), g.TotalFIMMs())
	}
	if g.ParallelUnitsPerFIMM() != 8*2*2 {
		t.Errorf("ParallelUnitsPerFIMM = %d, want 32", g.ParallelUnitsPerFIMM())
	}
}

func TestClusterFIMMFlatRoundTrip(t *testing.T) {
	g := testGeometry()
	for flat := 0; flat < g.TotalClusters(); flat++ {
		c := ClusterFromFlat(g, flat)
		if c.Flat(g) != flat {
			t.Fatalf("cluster flat %d -> %v -> %d", flat, c, c.Flat(g))
		}
	}
	for flat := 0; flat < g.TotalFIMMs(); flat++ {
		f := FIMMFromFlat(g, flat)
		if f.Flat(g) != flat {
			t.Fatalf("fimm flat %d -> %v -> %d", flat, f, f.Flat(g))
		}
	}
}

func TestPPNPackUnpack(t *testing.T) {
	p := PackPPN(3, 15, 3, 7, 1, 4095, 255)
	if p.Switch() != 3 || p.Cluster() != 15 || p.FIMMSlot() != 3 ||
		p.Pkg() != 7 || p.Die() != 1 || p.Block() != 4095 || p.Page() != 255 {
		t.Fatalf("round trip failed: %v", p)
	}
	if p.FIMMID() != (FIMMID{ClusterID{3, 15}, 3}) {
		t.Errorf("FIMMID = %v", p.FIMMID())
	}
}

func TestPPNPackPanics(t *testing.T) {
	cases := []func(){
		func() { PackPPN(-1, 0, 0, 0, 0, 0, 0) },
		func() { PackPPN(16, 0, 0, 0, 0, 0, 0) },
		func() { PackPPN(0, 256, 0, 0, 0, 0, 0) },
		func() { PackPPN(0, 0, 16, 0, 0, 0, 0) },
		func() { PackPPN(0, 0, 0, 32, 0, 0, 0) },
		func() { PackPPN(0, 0, 0, 0, 8, 0, 0) },
		func() { PackPPN(0, 0, 0, 0, 0, 1<<20, 0) },
		func() { PackPPN(0, 0, 0, 0, 0, 0, 4096) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: out-of-range pack did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNandAddrPlaneDerivation(t *testing.T) {
	g := testGeometry()
	p := PackPPN(0, 0, 0, 0, 0, 5, 7)
	a := p.NandAddr(g)
	if a.Plane != 1 { // block 5 is odd -> plane 1
		t.Errorf("plane = %d, want 1", a.Plane)
	}
	if a.Block != 5 || a.Page != 7 || a.Die != 0 {
		t.Errorf("addr = %+v", a)
	}
}

func TestBlockKey(t *testing.T) {
	a := PackPPN(1, 2, 3, 4, 1, 9, 10)
	b := PackPPN(1, 2, 3, 4, 1, 9, 200)
	c := PackPPN(1, 2, 3, 4, 1, 11, 10)
	if a.BlockKey() != b.BlockKey() {
		t.Error("same block, different keys")
	}
	if a.BlockKey() == c.BlockKey() {
		t.Error("different blocks share a key")
	}
	if a.BlockKey().Page() != 0 {
		t.Error("BlockKey retains page bits")
	}
}

func TestStrings(t *testing.T) {
	c := ClusterID{Switch: 2, Cluster: 7}
	if c.String() != "sw2/cl7" {
		t.Errorf("ClusterID.String = %q", c.String())
	}
	f := FIMMID{c, 3}
	if f.String() != "sw2/cl7/f3" {
		t.Errorf("FIMMID.String = %q", f.String())
	}
	p := PackPPN(1, 2, 3, 4, 1, 9, 10)
	if p.String() != "sw1/cl2/f3/pk4/d1/b9/pg10" {
		t.Errorf("PPN.String = %q", p.String())
	}
}

// Property: packing and unpacking is lossless for all in-range tuples.
func TestPropertyPPNRoundTrip(t *testing.T) {
	f := func(sw, cl, fm, pk, die uint8, block uint32, page uint16) bool {
		s, c, fmm := int(sw)&maxSwitch, int(cl)&maxCluster, int(fm)&maxFIMM
		p, d := int(pk)&maxPkg, int(die)&maxDie
		b, pg := int(block)&maxBlock, int(page)&maxPage
		ppn := PackPPN(s, c, fmm, p, d, b, pg)
		return ppn.Switch() == s && ppn.Cluster() == c && ppn.FIMMSlot() == fmm &&
			ppn.Pkg() == p && ppn.Die() == d && ppn.Block() == b && ppn.Page() == pg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
