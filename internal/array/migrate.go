package array

import (
	"errors"
	"fmt"

	"triplea/internal/cluster"
	"triplea/internal/ftl"
	"triplea/internal/pcie"
	"triplea/internal/topo"
)

// ErrUnmapped reports a migration request for an LPN with no data.
var ErrUnmapped = errors.New("array: migrate of unmapped LPN")

// MigratePage moves one logical page's data to dst — the mechanism
// behind both autonomic data migration (hot-cluster relief) and
// data-layout reshaping (laggard relief).
//
// With shadow=false the move is a naive migration: the source page is
// read from flash first, contending for the source FIMM, its channel
// and the cluster bus — the overhead Figure 16b shows. With shadow=true
// (shadow cloning) the data was just staged in the source endpoint to
// serve a host read, so the device read is skipped and only the
// endpoint-to-endpoint fabric transfer and the destination write remain
// (Figure 16c).
//
// Cross-cluster moves travel the PCI-E fabric as peer-to-peer writes
// through the shared switch, contending with host traffic; intra-cluster
// moves (reshaping) stay on the cluster's local resources.
func (a *Array) MigratePage(lpn int64, dst topo.FIMMID, shadow bool, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	src, ok := a.ftl.Lookup(lpn)
	if !ok {
		done(ErrUnmapped)
		return
	}
	if src.FIMMID() == dst {
		done(nil) // already there
		return
	}
	if a.faultsArmed && !a.health.Placeable(dst) {
		// Refuse before Relocate: allocating on faulted hardware would
		// lose the page when its flush fails.
		done(fmt.Errorf("array: migrate of %d to unplaceable %v", lpn, dst))
		return
	}

	transfer := func() { a.transferPage(lpn, src, dst, done) }
	if shadow || a.pendingFlush[src] {
		// Shadow cloning, or the page's data is still buffered in the
		// source endpoint: either way no device read is needed.
		transfer()
		return
	}
	// Naive migration: read the source page from flash first.
	ep := a.Endpoint(src.ClusterID())
	readCmd := a.cmdPool.Get()
	readCmd.Op = cluster.OpRead
	readCmd.FIMM, readCmd.Pkg = src.FIMMSlot(), src.Pkg()
	readCmd.SetPageAddr(src.NandAddr(a.cfg.Geometry))
	readCmd.Background = true
	readCmd.OnComplete = func(c *cluster.Command) {
		err := c.Result.Err
		a.cmdPool.Put(c) // background reads retire at completion
		if err != nil {
			done(fmt.Errorf("array: migration read: %w", err))
			return
		}
		transfer()
	}
	ep.Submit(readCmd)
}

// transferPage relocates the mapping and moves the staged data to dst.
func (a *Array) transferPage(lpn int64, src topo.PPN, dst topo.FIMMID, done func(error)) {
	wa, err := a.ftl.Relocate(lpn, dst)
	if errors.Is(err, ftl.ErrNoSpace) {
		a.runGCNow(dst)
		wa, err = a.ftl.Relocate(lpn, dst)
	}
	if err != nil {
		done(fmt.Errorf("array: migration allocation: %w", err))
		return
	}
	a.markStaleDevice(wa.Old)

	finish := func(c *cluster.Command) {
		if c.Result.Err != nil {
			done(fmt.Errorf("array: migration write: %w", c.Result.Err))
			return
		}
		a.migrations++
		done(nil)
	}
	writeCmd := a.cmdPool.Get()
	writeCmd.Op = cluster.OpWrite
	writeCmd.FIMM, writeCmd.Pkg = wa.New.FIMMSlot(), wa.New.Pkg()
	writeCmd.SetPageAddr(wa.New.NandAddr(a.cfg.Geometry))
	writeCmd.Background = true
	// OnCommandFlushed recycles the command; OnComplete only reports.
	writeCmd.OnComplete = finish
	a.trackFlush(wa.New, writeCmd)

	if src.ClusterID() == wa.New.ClusterID() {
		// Reshaping within the cluster: the data never leaves the
		// endpoint; the write path (bus + program) is the whole cost.
		a.launchProgram(wa.New, funcLauncher(func() {
			a.Endpoint(wa.New.ClusterID()).Submit(writeCmd)
		}))
		return
	}
	// Peer-to-peer clone across the fabric: the cloned page rides a
	// posted write from the source endpoint to the destination cluster,
	// sharing links and switch buffers with host traffic. The clone
	// packet recycles on arrival at the destination endpoint.
	a.launchProgram(wa.New, funcLauncher(func() {
		pkt := a.pktPool.Get()
		pkt.Kind = pcie.MemWrite
		pkt.Addr = routeAddr(wa.New.ClusterID())
		pkt.Payload = a.cfg.Geometry.Nand.PageSizeBytes
		pkt.Meta = writeCmd
		a.Endpoint(src.ClusterID()).Forward(pkt)
	}))
}
