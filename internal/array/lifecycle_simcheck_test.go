//go:build simcheck

package array

import (
	"testing"

	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/trace"
)

// These tests pin the two trickiest hand-placed release points of the
// pooled hot path, with the lifecycle guard and leak ledger armed:
//
//   - the GC-race retry: array.deliver must recycle the raced read's
//     down/up packets and command, keep the pageRef across retryRead,
//     and release everything exactly once when the retry lands;
//   - the host-write RetireMark handshake: the completion ack (at the
//     host) and the flush (at the endpoint) are concurrent events with
//     no fixed order, and whichever runs second must be the command's
//     single release point.
//
// A double release panics via PoolCheck; a missed release fails the
// ledger drain check with the pool's name.

// TestGCRaceRetryRecyclesPools forces a read to lose the race with GC
// (remap + erase while the packet is in flight) and then checks every
// pool drained: the abandoned attempt's packets and command must be
// recycled before retryRead re-resolves, and the retained pageRef must
// be released exactly once at final delivery.
func TestGCRaceRetryRecyclesPools(t *testing.T) {
	cfg := testConfig()
	a, _ := New(cfg)
	if err := a.ensureMapped(0); err != nil {
		t.Fatal(err)
	}
	old, _ := a.FTL().Lookup(0)
	drainSnap := simx.SnapshotLedger()
	a.Submit(trace.Request{Op: trace.Read, LPN: 0, Pages: 1})
	wa, err := a.FTL().Relocate(0, topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 1}})
	if err != nil {
		t.Fatal(err)
	}
	a.markStaleDevice(wa.Old)
	if err := a.pkgAt(wa.New).ForcePopulate(wa.New.NandAddr(cfg.Geometry)); err != nil {
		t.Fatal(err)
	}
	if err := a.pkgAt(old).ForceErase(old.NandAddr(cfg.Geometry)); err != nil {
		t.Fatal(err)
	}
	a.Engine().Run()
	if a.ReadRetries() == 0 {
		t.Fatal("retry path not taken; the test forced nothing")
	}
	if a.InFlight() != 0 {
		t.Fatalf("request stuck after GC race")
	}
	if err := simx.AssertDrained(drainSnap); err != nil {
		t.Fatalf("GC-race retry leaked pooled objects: %v", err)
	}
}

// TestRetireMarkHandshakeRecyclesCommands runs a burst of host writes
// end to end. Each write's ack delivery and flush retirement race; the
// RetireMark protocol must release each command exactly once whichever
// event runs second. Array.Run's built-in drain assert plus the
// explicit one here fail with the pool's name if a command (or its
// packets) is leaked, and PoolCheck panics if one is released twice.
func TestRetireMarkHandshakeRecyclesCommands(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	drainSnap := simx.SnapshotLedger()
	var reqs []trace.Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, trace.Request{
			Arrival: simx.Time(i) * 2 * simx.Microsecond,
			Op:      trace.Write, LPN: int64(i), Pages: 1,
		})
	}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 16 {
		t.Fatalf("recorded %d completions, want 16", rec.Count())
	}
	if got := simx.PoolOutstanding("cluster.Command"); got != drainSnap["cluster.Command"] {
		t.Fatalf("cluster.Command outstanding = %d after run, want %d", got, drainSnap["cluster.Command"])
	}
	if err := simx.AssertDrained(drainSnap); err != nil {
		t.Fatalf("RetireMark handshake leaked pooled objects: %v", err)
	}
}
