package array

import (
	"testing"

	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/trace"
)

func TestDRAMCacheLRU(t *testing.T) {
	c := newDRAMCache(2)
	if c.lookup(1) {
		t.Error("hit on empty cache")
	}
	c.install(1)
	c.install(2)
	if !c.lookup(1) || !c.lookup(2) {
		t.Error("installed pages missing")
	}
	// Touch 1, install 3: 2 is the LRU victim.
	c.lookup(1)
	c.install(3)
	if c.lookup(2) {
		t.Error("LRU victim still cached")
	}
	if !c.lookup(1) || !c.lookup(3) {
		t.Error("retained pages evicted")
	}
	s := c.stats()
	if s.ResidentPages != 2 || s.CapacityPages != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.HitRate() <= 0 || s.HitRate() >= 1 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
}

func TestDRAMCacheDisabled(t *testing.T) {
	c := newDRAMCache(0)
	c.install(1)
	if c.lookup(1) {
		t.Error("disabled cache produced a hit")
	}
	if c.stats().HitRate() != 0 {
		t.Error("disabled cache counted hits")
	}
}

func TestDRAMCacheReinstallRefreshes(t *testing.T) {
	c := newDRAMCache(2)
	c.install(1)
	c.install(2)
	c.install(1) // refresh, not duplicate
	c.install(3) // evicts 2
	if c.lookup(2) {
		t.Error("refreshed page was evicted instead of LRU")
	}
	if !c.lookup(1) {
		t.Error("refreshed page missing")
	}
}

func TestHostDRAMServesRepeatedReads(t *testing.T) {
	cfg := testConfig()
	cfg.HostDRAMBytes = 64 << 20 // plenty for the working set
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []trace.Request
	for i := 0; i < 10; i++ {
		// The same page read ten times: one miss, nine hits.
		reqs = append(reqs, trace.Request{
			Arrival: simx.Time(i) * simx.Millisecond, Op: trace.Read, LPN: 7, Pages: 1,
		})
	}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	cs := a.CacheStats()
	if cs.Hits != 9 || cs.Misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 9/1", cs.Hits, cs.Misses)
	}
	// Hits complete at DRAM speed.
	fast := 0
	for _, r := range rec.Records() {
		if r.Latency() <= hostDRAMHitLatency {
			fast++
		}
	}
	if fast != 9 {
		t.Errorf("%d fast completions, want 9", fast)
	}
}

func TestHostDRAMCachesWrites(t *testing.T) {
	cfg := testConfig()
	cfg.HostDRAMBytes = 64 << 20
	a, _ := New(cfg)
	reqs := []trace.Request{
		{Arrival: 0, Op: trace.Write, LPN: 3, Pages: 1},
		{Arrival: simx.Millisecond, Op: trace.Read, LPN: 3, Pages: 1},
	}
	if _, err := a.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if cs := a.CacheStats(); cs.Hits != 1 {
		t.Errorf("read after write missed the cache: %+v", cs)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	a, _ := New(testConfig())
	reqs := []trace.Request{
		{Arrival: 0, Op: trace.Read, LPN: 0, Pages: 1},
		{Arrival: simx.Millisecond, Op: trace.Read, LPN: 0, Pages: 1},
	}
	if _, err := a.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if cs := a.CacheStats(); cs.Hits != 0 || cs.CapacityPages != 0 {
		t.Errorf("default config cached: %+v", cs)
	}
}

func TestDegradedFIMMSlowsReads(t *testing.T) {
	slow := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 0}, FIMM: 0}

	run := func(degrade bool) simx.Time {
		cfg := testConfig()
		if degrade {
			cfg.DegradedFIMMs = map[topo.FIMMID]float64{slow: 8}
		}
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// LPN 0 lives on FIMM 0 of cluster sw0/cl0 under the clustered
		// layout.
		rec, err := a.Run([]trace.Request{{Arrival: 0, Op: trace.Read, LPN: 0, Pages: 1}})
		if err != nil {
			t.Fatal(err)
		}
		return rec.AvgLatency()
	}
	healthy, degraded := run(false), run(true)
	if degraded <= healthy {
		t.Fatalf("degraded FIMM not slower: %v vs %v", degraded, healthy)
	}
	// An 8x tR on a ~52us read should add several hundred us.
	if degraded-healthy < 7*DefaultConfig().Geometry.Nand.TRead/2 {
		t.Errorf("degradation too small: %v -> %v", healthy, degraded)
	}
}

func TestDegradationOnlyAffectsTargetSlot(t *testing.T) {
	slow := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 0}, FIMM: 0}
	cfg := testConfig()
	cfg.DegradedFIMMs = map[topo.FIMMID]float64{slow: 8}
	a, _ := New(cfg)
	// FIMM 1 of the same cluster stays healthy: its LPNs start at
	// PagesPerFIMM.
	other := cfg.Geometry.PagesPerFIMM().Int64()
	rec, err := a.Run([]trace.Request{{Arrival: 0, Op: trace.Read, LPN: other, Pages: 1}})
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Geometry.Nand
	limit := 2 * (n.TRead + n.TProg) // generous healthy bound
	if rec.AvgLatency() > limit {
		t.Errorf("healthy sibling latency %v suggests degradation leaked", rec.AvgLatency())
	}
}
