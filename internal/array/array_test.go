package array

import (
	"errors"
	"testing"

	"triplea/internal/ftl"
	"triplea/internal/nand"
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/trace"
	"triplea/internal/units"
	"triplea/internal/workload"
)

// testConfig returns a small 2x2 array with tiny blocks so GC paths are
// reachable quickly.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Geometry.Switches = 2
	cfg.Geometry.ClustersPerSwitch = 2
	cfg.Geometry.FIMMsPerCluster = 2
	cfg.Geometry.PackagesPerFIMM = 2
	cfg.Geometry.Nand.DiesPerPackage = 1
	cfg.Geometry.Nand.BlocksPerPlane = 16
	cfg.Geometry.Nand.PagesPerBlock = 4
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	// Paper baseline: 16 TB across 64 clusters.
	if got := cfg.Geometry.TotalBytes(); got != 16*1024*units.GiB {
		t.Errorf("capacity = %d, want 16 TiB", got)
	}
	if cfg.SLA != 3300*simx.Nanosecond {
		t.Errorf("SLA = %v, want 3.3us", cfg.SLA)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, mod := range []func(*Config){
		func(c *Config) { c.Geometry.Switches = 0 },
		func(c *Config) { c.EPLinkBytesPerSec = 0 },
		func(c *Config) { c.SwitchLinkBytesPerSec = -1 },
		func(c *Config) { c.EPLinkCredits = 0 },
		func(c *Config) { c.SwitchLinkCredits = 0 },
		func(c *Config) { c.RCQueueEntries = 0 },
		func(c *Config) { c.SLA = 0 },
		func(c *Config) { c.QueueEntries = 0 },
	} {
		cfg := DefaultConfig()
		mod(&cfg)
		if cfg.Validate() == nil {
			t.Error("Validate accepted bad config")
		}
		if _, err := New(cfg); err == nil {
			t.Error("New accepted bad config")
		}
	}
}

func TestRouteAddrRoundTrip(t *testing.T) {
	id := topo.ClusterID{Switch: 3, Cluster: 15}
	a := routeAddr(id)
	if addrSwitch(a) != 3 || addrCluster(a) != 15 {
		t.Errorf("routeAddr round trip failed: %x", a)
	}
}

func TestSingleReadEndToEnd(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	reqs := []trace.Request{{Arrival: 0, Op: trace.Read, LPN: 0, Pages: 1}}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 1 || rec.Reads() != 1 {
		t.Fatalf("recorded %d requests", rec.Count())
	}
	r := rec.Records()[0]
	if r.Latency() <= 0 {
		t.Error("non-positive latency")
	}
	b := r.Breakdown
	if b.Texe == 0 {
		t.Error("no cell time recorded")
	}
	if b.LinkXfer == 0 {
		t.Error("no link transfer recorded")
	}
	if b.FabricXfer == 0 {
		t.Error("no fabric transfer recorded")
	}
	// Uncontended single request: no queueing anywhere.
	if b.RCStall != 0 || b.EPWait != 0 || b.StorageWait != 0 || b.LinkWait != 0 {
		t.Errorf("unexpected stalls on idle array: %+v", b)
	}
}

func TestWriteEndToEnd(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	reqs := []trace.Request{{Arrival: 0, Op: trace.Write, LPN: 5, Pages: 1}}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Writes() != 1 {
		t.Fatalf("recorded %d writes", rec.Writes())
	}
	// Write latency excludes the flash program (early ack): it must be
	// well under tPROG.
	lat := rec.Records()[0].Latency()
	if lat >= a.Config().Geometry.Nand.TProg {
		t.Errorf("write latency %v not hidden by buffering (tPROG %v)",
			lat, a.Config().Geometry.Nand.TProg)
	}
	// The flush programmed the page: mapping exists and device agrees.
	ppn, ok := a.FTL().Lookup(5)
	if !ok {
		t.Fatal("write not mapped")
	}
	g := a.Config().Geometry
	if got := a.pkgAt(ppn).PageStateAt(ppn.NandAddr(g)); got != nand.PageValid {
		t.Errorf("device page state = %v, want PageValid", got)
	}
	if a.FTL().Stats().HostWrites != 1 {
		t.Errorf("HostWrites = %d", a.FTL().Stats().HostWrites)
	}
}

func TestOverwriteMarksStale(t *testing.T) {
	a, _ := New(testConfig())
	reqs := []trace.Request{
		{Arrival: 0, Op: trace.Write, LPN: 9, Pages: 1},
		{Arrival: simx.Millisecond, Op: trace.Write, LPN: 9, Pages: 1},
		{Arrival: 2 * simx.Millisecond, Op: trace.Read, LPN: 9, Pages: 1},
	}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 3 {
		t.Fatalf("recorded %d", rec.Count())
	}
}

func TestMultiPageRequest(t *testing.T) {
	a, _ := New(testConfig())
	reqs := []trace.Request{{Arrival: 0, Op: trace.Read, LPN: 0, Pages: 4}}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 1 {
		t.Fatalf("recorded %d requests", rec.Count())
	}
	if rec.Records()[0].Pages != 4 {
		t.Errorf("pages = %d", rec.Records()[0].Pages)
	}
}

func TestPrepareMapsReadFootprint(t *testing.T) {
	a, _ := New(testConfig())
	reqs := []trace.Request{
		{Arrival: 0, Op: trace.Read, LPN: 10, Pages: 2},
		{Arrival: 0, Op: trace.Write, LPN: 50, Pages: 1},
	}
	if err := a.Prepare(reqs); err != nil {
		t.Fatal(err)
	}
	for _, lpn := range []int64{10, 11} {
		if _, ok := a.FTL().Lookup(lpn); !ok {
			t.Errorf("LPN %d not prepopulated", lpn)
		}
	}
	if _, ok := a.FTL().Lookup(50); ok {
		t.Error("write-only LPN was prepopulated")
	}
}

func TestContentionAppearsUnderConcentratedLoad(t *testing.T) {
	a, _ := New(testConfig())
	// Fire many simultaneous reads at one cluster: queueing must show up.
	var reqs []trace.Request
	for i := 0; i < 64; i++ {
		reqs = append(reqs, trace.Request{Arrival: 0, Op: trace.Read, LPN: int64(i), Pages: 1})
	}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	sum := rec.SumBreakdown()
	if sum.LinkWait == 0 {
		t.Error("no link contention under concentrated load")
	}
	if sum.StorageWait+sum.EPWait == 0 {
		t.Error("no storage contention under concentrated load")
	}
	// Latency must exceed the uncontended single-read latency.
	single, _ := New(testConfig())
	recS, _ := single.Run(reqs[:1])
	if rec.MaxLatency() <= recS.AvgLatency() {
		t.Error("contended max latency not above uncontended latency")
	}
}

func TestRCQueueAdmissionStall(t *testing.T) {
	cfg := testConfig()
	cfg.RCQueueEntries = 1
	a, _ := New(cfg)
	var reqs []trace.Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, trace.Request{Arrival: 0, Op: trace.Read, LPN: int64(i), Pages: 1})
	}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SumBreakdown().RCStall == 0 {
		t.Error("no RC stall with a single-entry RC queue")
	}
}

func TestMigratePageMovesData(t *testing.T) {
	a, _ := New(testConfig())
	if err := a.ensureMapped(3); err != nil {
		t.Fatal(err)
	}
	src, _ := a.FTL().Lookup(3)
	dst := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 1}, FIMM: 0}
	if src.FIMMID() == dst {
		t.Fatal("test picked the source FIMM")
	}
	var migErr error
	doneAt := simx.Time(-1)
	a.MigratePage(3, dst, false, func(err error) { migErr = err; doneAt = a.Engine().Now() })
	a.Engine().Run()
	if migErr != nil {
		t.Fatalf("migration: %v", migErr)
	}
	if doneAt <= 0 {
		t.Error("migration completed instantly")
	}
	if got := a.FTL().ResidentFIMM(3); got != dst {
		t.Errorf("resident = %v, want %v", got, dst)
	}
	if a.Migrations() != 1 {
		t.Errorf("Migrations = %d", a.Migrations())
	}
	if a.FTL().Stats().MigrationWrites != 1 {
		t.Errorf("MigrationWrites = %d", a.FTL().Stats().MigrationWrites)
	}
	// The destination page is readable end to end.
	rec, err := a.Run([]trace.Request{{Arrival: 0, Op: trace.Read, LPN: 3, Pages: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 1 {
		t.Error("post-migration read failed")
	}
}

func TestShadowCloningFasterThanNaive(t *testing.T) {
	measure := func(shadow bool) simx.Time {
		a, _ := New(testConfig())
		if err := a.ensureMapped(3); err != nil {
			t.Fatal(err)
		}
		dst := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 1}, FIMM: 0}
		start := a.Engine().Now()
		var end simx.Time
		a.MigratePage(3, dst, shadow, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			end = a.Engine().Now()
		})
		a.Engine().Run()
		return end - start
	}
	naive, shadow := measure(false), measure(true)
	if shadow >= naive {
		t.Errorf("shadow cloning (%v) not faster than naive migration (%v)", shadow, naive)
	}
	// The saving is the device read: at least tR.
	if naive-shadow < DefaultConfig().Geometry.Nand.TRead {
		t.Errorf("shadow saving %v below tR", naive-shadow)
	}
}

func TestMigrateSameFIMMNoOp(t *testing.T) {
	a, _ := New(testConfig())
	if err := a.ensureMapped(0); err != nil {
		t.Fatal(err)
	}
	src, _ := a.FTL().Lookup(0)
	called := false
	a.MigratePage(0, src.FIMMID(), true, func(err error) {
		called = true
		if err != nil {
			t.Errorf("no-op migration errored: %v", err)
		}
	})
	if !called {
		t.Error("no-op migration did not complete synchronously")
	}
	if a.Migrations() != 0 {
		t.Error("no-op migration counted")
	}
}

func TestMigrateUnmapped(t *testing.T) {
	a, _ := New(testConfig())
	var got error
	a.MigratePage(7, topo.FIMMID{}, true, func(err error) { got = err })
	if !errors.Is(got, ErrUnmapped) {
		t.Errorf("err = %v, want ErrUnmapped", got)
	}
}

func TestCrossSwitchMigrationViaRC(t *testing.T) {
	a, _ := New(testConfig())
	if err := a.ensureMapped(0); err != nil { // home: sw0/cl0
		t.Fatal(err)
	}
	dst := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 1, Cluster: 0}, FIMM: 0}
	var migErr error
	a.MigratePage(0, dst, true, func(err error) { migErr = err })
	a.Engine().Run()
	if migErr != nil {
		t.Fatalf("cross-switch migration: %v", migErr)
	}
	if got := a.FTL().ResidentFIMM(0); got != dst {
		t.Errorf("resident = %v", got)
	}
}

func TestGCTriggersUnderOverwrites(t *testing.T) {
	cfg := testConfig()
	cfg.Geometry.Nand.BlocksPerPlane = 8
	cfg.GCThreshold = 6 // pressure well before exhaustion
	a, _ := New(cfg)
	// Overwrite a handful of LPNs on one FIMM at a rate GC can follow
	// (erases take 3 ms in this geometry).
	var reqs []trace.Request
	gap := simx.Time(0)
	for round := 0; round < 20; round++ {
		for lpn := int64(0); lpn < 4; lpn++ {
			reqs = append(reqs, trace.Request{Arrival: gap, Op: trace.Write, LPN: lpn, Pages: 1})
			gap += simx.Millisecond
		}
	}
	if _, err := a.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if a.GCRounds() == 0 {
		t.Error("GC never ran under heavy overwrites")
	}
	if a.FTL().Stats().GCErases == 0 {
		t.Error("no GC erases recorded")
	}
	if a.FTL().TotalErases() == 0 {
		t.Error("no wear recorded")
	}
}

func TestRunRejectsLeftoverInFlight(t *testing.T) {
	// Sanity: Run drains fully on a mixed trace.
	a, _ := New(testConfig())
	var reqs []trace.Request
	for i := 0; i < 50; i++ {
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		reqs = append(reqs, trace.Request{Arrival: simx.Time(i) * 10 * simx.Microsecond,
			Op: op, LPN: int64(i % 20), Pages: 1})
	}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 50 {
		t.Errorf("completed %d of 50", rec.Count())
	}
	if a.InFlight() != 0 {
		t.Errorf("InFlight = %d", a.InFlight())
	}
}

func TestArrayAccessors(t *testing.T) {
	cfg := testConfig()
	a, _ := New(cfg)
	if a.Recorder() == nil || a.Switch(0) == nil || a.RootComplex() == nil {
		t.Error("nil accessors")
	}
	if a.ReadRetries() != 0 {
		t.Errorf("fresh ReadRetries = %d", a.ReadRetries())
	}
	if got := cfg.BusPageTime(); got <= 0 {
		t.Errorf("BusPageTime = %v", got)
	}
	// SetHooks is exercised via core.Attach; here just verify wiring.
	a.SetHooks(nil)
}

func TestGCRaceRetry(t *testing.T) {
	// Force the retry path directly: map an LPN, submit its read, then
	// remap + erase the old block before the packet reaches the device.
	cfg := testConfig()
	a, _ := New(cfg)
	if err := a.ensureMapped(0); err != nil {
		t.Fatal(err)
	}
	old, _ := a.FTL().Lookup(0)
	a.Submit(trace.Request{Op: trace.Read, LPN: 0, Pages: 1})
	// While the packet is in flight, move the page and erase its block
	// (zero-time, as the emergency GC path would).
	wa, err := a.FTL().Relocate(0, topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 1}})
	if err != nil {
		t.Fatal(err)
	}
	a.markStaleDevice(wa.Old)
	if err := a.pkgAt(wa.New).ForcePopulate(wa.New.NandAddr(cfg.Geometry)); err != nil {
		t.Fatal(err)
	}
	if err := a.pkgAt(old).ForceErase(old.NandAddr(cfg.Geometry)); err != nil {
		t.Fatal(err)
	}
	a.Engine().Run()
	if a.InFlight() != 0 {
		t.Fatalf("request stuck after GC race")
	}
	if a.ReadRetries() == 0 {
		t.Error("retry path not taken")
	}
	if a.Recorder().Count() != 1 {
		t.Error("request not recorded")
	}
}

func TestStripedLayoutEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.Layout = ftl.LayoutStriped
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []trace.Request
	for i := 0; i < 32; i++ {
		op := trace.Read
		if i%4 == 0 {
			op = trace.Write
		}
		reqs = append(reqs, trace.Request{
			Arrival: simx.Time(i) * 50 * simx.Microsecond, Op: op, LPN: int64(i), Pages: 1,
		})
	}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 32 {
		t.Fatalf("completed %d", rec.Count())
	}
	// Consecutive LPNs land on different FIMMs under striping.
	f0 := a.FTL().ResidentFIMM(1)
	f1 := a.FTL().ResidentFIMM(2)
	if f0 == f1 {
		t.Errorf("striped layout put consecutive LPNs on one FIMM: %v", f0)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPageGeneratedWorkload(t *testing.T) {
	cfg := testConfig()
	a, _ := New(cfg)
	p := workload.MicroRead(1, 400, 50_000)
	p.PagesPer = 4
	p.Footprint = 64
	reqs, _, err := workload.Generate(cfg.Geometry, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 400 {
		t.Fatalf("completed %d", rec.Count())
	}
	for _, r := range rec.Records() {
		if r.Pages != 4 {
			t.Fatalf("request with %d pages", r.Pages)
		}
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
