package array

import (
	"testing"

	"triplea/internal/trace"
)

// TestSteadyStateAllocs is the allocation-regression gate for the
// pooled hot path: once the event, packet, command, request, and
// page-ref pools are warm, serving a read request must cost (close to)
// zero heap allocations. The cap is deliberately loose — it exists to
// catch a reintroduced per-event closure or per-packet allocation
// (hundreds of allocs per request), not to fight the allocator over
// amortised slice growth in the metrics recorder.
func TestSteadyStateAllocs(t *testing.T) {
	cfg := testConfig()
	cfg.HostDRAMBytes = 0 // no DRAM hits: every read crosses the fabric
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const batch = 64
	makeBatch := func() []trace.Request {
		reqs := make([]trace.Request, batch)
		for i := range reqs {
			reqs[i] = trace.Request{Arrival: 0, Op: trace.Read, LPN: int64(i * 4), Pages: 1}
		}
		return reqs
	}

	// Warm the pools (and map the LPNs) before measuring.
	for i := 0; i < 3; i++ {
		if _, err := a.Run(makeBatch()); err != nil {
			t.Fatal(err)
		}
	}

	reqs := makeBatch()
	avg := testing.AllocsPerRun(10, func() {
		if _, err := a.Run(reqs); err != nil {
			panic(err)
		}
	})
	perRequest := avg / batch
	t.Logf("steady state: %.1f allocs per %d-request batch (%.2f/request)", avg, batch, perRequest)
	if perRequest > 2.0 {
		t.Errorf("steady-state allocations = %.2f per request, want <= 2.0 — "+
			"a hot-path object stopped being pooled", perRequest)
	}
}
