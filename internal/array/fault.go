package array

import (
	"errors"
	"fmt"

	"triplea/internal/cluster"
	"triplea/internal/decision"
	"triplea/internal/fimm"
	"triplea/internal/metrics"
	"triplea/internal/nand"
	"triplea/internal/pcie"
	"triplea/internal/topo"
)

// Degraded-mode glue for fault injection (see internal/fault and
// docs/fault-injection.md). None of this runs on an unfaulted array:
// every hook below is gated on faultsArmed (set by the injector), so
// the golden-replay byte stream is untouched when no plan is attached.

// FaultStats counts degraded-mode activity at the array layer. It is a
// plain value snapshot: the live counts are registry-backed
// (metrics.Counter entries under "fault." in the recorder's registry)
// and reassembled here on query, so the golden replay's %+v rendering
// is stable.
type FaultStats struct {
	RequestsFailed   uint64 // host requests terminated by a fault
	PagesFailed      uint64 // page commands terminated by a fault
	ReadsRemapped    uint64 // lost pages restored out-of-place on read
	WritesRedirected uint64 // host writes steered off faulted hardware
	FlushesDropped   uint64 // buffered writes lost when their flush failed
}

// faultCounters are the live registry-backed fault counters; they sit
// in the same registry as the request metrics, so a registry export
// carries degraded-mode activity alongside latency and throughput.
type faultCounters struct {
	requestsFailed   *metrics.Counter
	pagesFailed      *metrics.Counter
	readsRemapped    *metrics.Counter
	writesRedirected *metrics.Counter
	flushesDropped   *metrics.Counter
}

func newFaultCounters(reg *metrics.Registry) faultCounters {
	return faultCounters{
		requestsFailed:   reg.NewCounter("fault.requests_failed"),
		pagesFailed:      reg.NewCounter("fault.pages_failed"),
		readsRemapped:    reg.NewCounter("fault.reads_remapped"),
		writesRedirected: reg.NewCounter("fault.writes_redirected"),
		flushesDropped:   reg.NewCounter("fault.flushes_dropped"),
	}
}

// Health exposes the array's availability registry. It exists (all
// online) even on unfaulted arrays so callers need no nil checks.
func (a *Array) Health() *topo.Health { return a.health }

// FaultStats reports degraded-mode counters as a value snapshot.
func (a *Array) FaultStats() FaultStats {
	return FaultStats{
		RequestsFailed:   a.faultCtrs.requestsFailed.Value(),
		PagesFailed:      a.faultCtrs.pagesFailed.Value(),
		ReadsRemapped:    a.faultCtrs.readsRemapped.Value(),
		WritesRedirected: a.faultCtrs.writesRedirected.Value(),
		FlushesDropped:   a.faultCtrs.flushesDropped.Value(),
	}
}

// ArmFaults marks the array as running under a fault plan: device
// errors on fault paths terminate requests (recorded as failures)
// instead of panicking. Called by the injector on attach.
func (a *Array) ArmFaults() { a.faultsArmed = true }

// SetFaultRecovery enables autonomic degraded-mode recovery: the FTL
// consults the health registry on placement, host writes are steered
// off faulted hardware, and reads of fault-lost pages are restored
// out-of-place from the host's shadow clones. Off (the default), a
// faulted array keeps its nominal placement and simply fails the
// affected requests — the autonomic-off baseline of the degraded-array
// study.
func (a *Array) SetFaultRecovery(on bool) {
	a.recoverFaults = on
	if on {
		a.ftl.SetHealth(a.health)
	} else {
		a.ftl.SetHealth(nil)
	}
}

// FaultRecovery reports whether degraded-mode recovery is enabled.
func (a *Array) FaultRecovery() bool { return a.recoverFaults }

// EPLinks returns a cluster's fabric links (down toward the endpoint,
// up toward the switch) — the injector's target for link degradation.
func (a *Array) EPLinks(id topo.ClusterID) (down, up *pcie.Link) {
	return a.epDown[id.Switch][id.Cluster], a.epUp[id.Switch][id.Cluster]
}

// SwitchLinks returns the RC<->switch links for one switch.
func (a *Array) SwitchLinks(sw int) (down, up *pcie.Link) {
	return a.swDown[sw], a.swUp[sw]
}

// isFaultError reports whether a device error was caused by injected
// hardware faults (as opposed to a simulator bug, which must keep
// panicking loudly).
func isFaultError(err error) bool {
	return errors.Is(err, fimm.ErrDead) ||
		errors.Is(err, cluster.ErrUnplugged) ||
		errors.Is(err, nand.ErrBadBlock) ||
		errors.Is(err, nand.ErrDeadDie)
}

// failPage terminates one page command on a fault: the request is
// marked failed, every pooled object the page held is released, and
// the page retires through the normal finishPage accounting (so the
// request still drains and the run never sticks).
func (a *Array) failPage(ref *pageRef, up *pcie.Packet, cmd *cluster.Command) {
	req := ref.req
	req.failed = true
	a.faultCtrs.pagesFailed.Inc()
	a.rcSlots.Release()
	a.pktPool.Put(ref.down)
	a.pktPool.Put(up)
	if cmd.Op == cluster.OpRead || cmd.RetireMark {
		a.cmdPool.Put(cmd)
	} else {
		cmd.RetireMark = true
	}
	a.recycleRef(ref)
	a.finishPage(req, metrics.Breakdown{})
}

// failFlushedWrite records the data loss of a buffered write whose
// flush failed: the acknowledged data never reached flash, so its
// mapping (if still current) is severed and the LPN joins the FTL's
// lost set.
func (a *Array) failFlushedWrite(ppn topo.PPN) {
	a.faultCtrs.flushesDropped.Inc()
	// The device never programmed this page, so its block's program
	// cursor is behind the FTL's: close the block before anything
	// appends to it (GC's erase resynchronises the cursors).
	a.ftl.AbortBlock(ppn)
	lpn, ok := a.ftl.LPNOf(ppn)
	if !ok {
		return // mapping already dropped or superseded
	}
	if cur, mapped := a.ftl.Lookup(lpn); !mapped || cur != ppn {
		return
	}
	a.ftl.DropMapping(lpn)
}

// restoreLostRead re-resolves a read whose mapping a fault destroyed:
// the page's pre-existing data is restored out-of-place from the
// host's shadow clone (zero simulated cost, like Prepare) and the read
// retries against the new location.
func (a *Array) restoreLostRead(ref *pageRef) bool {
	if err := a.ensureMapped(ref.lpn); err != nil {
		return false
	}
	a.faultCtrs.readsRemapped.Inc()
	if rec := a.decisions; rec != nil {
		// The restoration had exactly one viable placement (the shadow
		// clone's new home); record it so remapping activity shows up in
		// the Restore family's choice distribution.
		if ppn, ok := a.ftl.Lookup(ref.lpn); ok {
			g := a.cfg.Geometry
			c := ppn.ClusterID().Flat(g)
			f := int64(ppn.FIMMID().Flat(g))
			rec.Begin(decision.Restore, c, a.eng.Now())
			rec.Candidate(f, 0, decision.Eligible)
			rec.Commit(f, 0, c)
		}
	}
	return true
}

// redirectWrite steers a host write off faulted hardware when recovery
// is enabled, keeping the manager's choice otherwise.
func (a *Array) redirectWrite(lpn int64, target topo.FIMMID) topo.FIMMID {
	if !a.recoverFaults || a.health.Placeable(target) {
		return target
	}
	fb, ok := a.ftl.FallbackFIMM(lpn)
	if rec := a.decisions; rec != nil {
		g := a.cfg.Geometry
		rec.Begin(decision.Restore, target.ClusterID.Flat(g), a.eng.Now())
		rec.Candidate(int64(target.Flat(g)), 0, decision.ExcludedDegraded)
		if ok {
			rec.Candidate(int64(fb.Flat(g)), 1, decision.Eligible)
			rec.Commit(int64(fb.Flat(g)), 1, fb.ClusterID.Flat(g))
		} else {
			// No placeable fallback: the write stays on the faulted
			// target and will fail downstream.
			rec.Commit(int64(target.Flat(g)), 0, target.ClusterID.Flat(g))
		}
	}
	if ok {
		a.faultCtrs.writesRedirected.Inc()
		return fb
	}
	return target // nothing placeable; let the write fail downstream
}

// gcHalted reports whether background GC must stop touching the FIMM:
// its module died or its cluster left the online state.
func (a *Array) gcHalted(id topo.FIMMID) bool {
	if !a.faultsArmed {
		return false
	}
	return a.health.FIMM(id) != topo.FIMMOnline ||
		a.health.Cluster(id.ClusterID) != topo.ClusterOnline
}

// gcFaultErr tolerates fault-caused errors on GC device operations
// (the round is abandoned; retired blocks are never reused) and keeps
// panicking on everything else.
func (a *Array) gcFaultErr(what string, err error) {
	if a.faultsArmed && isFaultError(err) {
		return
	}
	panic(fmt.Sprintf("array: %s: %v", what, err))
}
