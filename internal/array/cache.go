package array

import (
	"container/list"

	"triplea/internal/simx"
	"triplea/internal/units"
)

// dramCache is the large DRAM the paper relocates from the SSDs'
// on-board buffers to the autonomic management module (Section 6.6).
// It is a host-side LRU page cache: read hits are served from DRAM
// without touching the flash array network, and writes install their
// data on the way down.
//
// Section 6.6's point — which the DRAM study reproduces — is that this
// cache does NOT resolve link or storage contention: misses and
// buffer-bypassing traffic still share the same buses and FIMMs.
type dramCache struct {
	capacity units.Pages // <= 0 disables the cache
	lru      *list.List
	index    map[int64]*list.Element

	hits   uint64
	misses uint64
}

// CacheStats reports host DRAM cache activity.
type CacheStats struct {
	CapacityPages units.Pages
	ResidentPages units.Pages
	Hits          uint64
	Misses        uint64
}

// HitRate reports the read hit fraction.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func newDRAMCache(capacityPages units.Pages) *dramCache {
	if capacityPages <= 0 {
		return &dramCache{}
	}
	return &dramCache{
		capacity: capacityPages,
		lru:      list.New(),
		index:    make(map[int64]*list.Element, capacityPages),
	}
}

func (c *dramCache) enabled() bool { return c.capacity > 0 }

// lookup reports whether the page is cached, refreshing its recency.
func (c *dramCache) lookup(lpn int64) bool {
	if !c.enabled() {
		return false
	}
	el, ok := c.index[lpn]
	if !ok {
		c.misses++
		return false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return true
}

// install caches a page (after a read miss completes or on a write).
func (c *dramCache) install(lpn int64) {
	if !c.enabled() {
		return
	}
	if el, ok := c.index[lpn]; ok {
		c.lru.MoveToFront(el)
		return
	}
	if units.Pages(c.lru.Len()) >= c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.index, oldest.Value.(int64))
	}
	c.index[lpn] = c.lru.PushFront(lpn) //simlint:coldalloc LRU insert: one element per cached page, recycled on eviction
}

func (c *dramCache) stats() CacheStats {
	s := CacheStats{CapacityPages: c.capacity, Hits: c.hits, Misses: c.misses}
	if c.lru != nil {
		s.ResidentPages = units.Pages(c.lru.Len())
	}
	return s
}

// hostDRAMHitLatency is the host-side service time of a cache hit:
// a DRAM copy plus management-module software, no fabric involvement.
const hostDRAMHitLatency = 2 * simx.Microsecond
