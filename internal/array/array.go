package array

import (
	"fmt"

	"triplea/internal/cluster"
	"triplea/internal/decision"
	"triplea/internal/ftl"
	"triplea/internal/metrics"
	"triplea/internal/nand"
	"triplea/internal/pcie"
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/trace"
	"triplea/internal/units"
)

// PageComplete describes one finished page command, delivered to the
// manager hook so it can run the paper's detection equations.
type PageComplete struct {
	LPN     int64
	Op      trace.Op
	Pages   units.Pages
	Cluster topo.ClusterID
	FIMM    int
	Result  cluster.OpResult // device-level timing (Equation 1's tLatency)
}

// Hooks is the attachment point for the autonomic manager. A nil hook
// set yields the non-autonomic baseline.
type Hooks interface {
	// OnPageComplete fires after every page command finishes at the
	// host. The manager runs hot-cluster and laggard detection here.
	OnPageComplete(pc PageComplete)
	// WriteTarget lets the manager redirect a host write (data-layout
	// reshaping for stalled writes); return resident to keep placement.
	WriteTarget(lpn int64, resident topo.FIMMID) topo.FIMMID
}

// Array is one simulated all-flash array instance.
type Array struct {
	eng *simx.Engine
	cfg Config
	ftl *ftl.FTL

	rc       *pcie.RootComplex
	switches []*pcie.Switch
	eps      [][]*cluster.Endpoint // [switch][cluster]

	// Fabric link registries (fault injection targets them directly).
	epDown [][]*pcie.Link // switch -> endpoint, [switch][cluster]
	epUp   [][]*pcie.Link // endpoint -> switch
	swDown []*pcie.Link   // rc -> switch
	swUp   []*pcie.Link   // switch -> rc

	// Degraded-mode state (fault.go). health always exists; the fault
	// branches below are gated on faultsArmed, which only the injector
	// sets.
	health        *topo.Health
	faultsArmed   bool
	recoverFaults bool
	faultCtrs     faultCounters // registry-backed (fault.go)

	rcSlots  *simx.Resource // RC queue entries (admission control)
	recorder *metrics.Recorder
	// decisions is the autonomic decision flight recorder; nil unless
	// Config.Decisions selects the ring backend (decision hooks are
	// nil-receiver-safe, so the off path is one nil check).
	decisions *decision.Recorder
	hooks     Hooks
	cache     *dramCache // relocated host DRAM (Section 6.6)

	nextReqID   uint64
	inFlight    int
	gcActive    map[int]bool // per flat FIMM id
	gcRounds    uint64
	gcDeferrals uint64
	migrations  uint64
	readRetries uint64

	// Write-buffer coherence: pages whose program is still in flight.
	// Reads of these are served from the endpoint buffer, their blocks
	// are vetoed as GC victims, and stale-marks are deferred.
	pendingFlush   map[topo.PPN]bool
	pendingByBlock map[topo.PPN]int
	staleOnFlush   map[topo.PPN]bool

	// Per-block program sequencing: NAND requires pages to program in
	// order inside a block, but writes to one block can be allocated by
	// different actors (host flush, GC, migration) whose transports
	// reorder them. The gate launches each block's programs in
	// allocation order.
	gates map[topo.PPN]*blockGate

	// Per-cluster shared-bus utilisation samplers for contention-cause
	// attribution (rolled every utilWindow).
	busUtilAt   []simx.Time
	busUtilSnap []simx.Time
	busUtilLast []float64

	// drained fires when in-flight work reaches zero (Run uses it).
	onIdle func()

	// Steady-state object pools (single-threaded free-lists). Packets
	// and commands are shared with the endpoints so completions recycle
	// what the host retires.
	pktPool pcie.Pool
	cmdPool cluster.CommandPool
	freeReq *request
	freeRef *pageRef
}

// New builds an array on a fresh engine.
func New(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := simx.NewEngine()
	recorder := metrics.NewRecorderWith(cfg.Metrics, metrics.DefaultSustainedWindow)
	var dec *decision.Recorder
	if cfg.Decisions == decision.Ring {
		dec = decision.NewRecorder(cfg.Geometry.TotalClusters())
	}
	a := &Array{
		eng:            eng,
		cfg:            cfg,
		decisions:      dec,
		ftl:            ftl.New(cfg.Geometry, ftl.WithLayout(cfg.Layout), ftl.WithGCThreshold(cfg.GCThreshold)),
		recorder:       recorder,
		faultCtrs:      newFaultCounters(recorder.Registry()),
		rcSlots:        simx.NewResource(eng, "rc-queue", cfg.RCQueueEntries),
		gcActive:       make(map[int]bool),
		pendingFlush:   make(map[topo.PPN]bool),
		pendingByBlock: make(map[topo.PPN]int),
		staleOnFlush:   make(map[topo.PPN]bool),
		gates:          make(map[topo.PPN]*blockGate),
		busUtilAt:      make([]simx.Time, cfg.Geometry.TotalClusters()),
		busUtilSnap:    make([]simx.Time, cfg.Geometry.TotalClusters()),
		busUtilLast:    make([]float64, cfg.Geometry.TotalClusters()),
		cache:          newDRAMCache(units.BytesToPages(cfg.HostDRAMBytes, cfg.Geometry.Nand.PageSizeBytes)),
		health:         topo.NewHealth(cfg.Geometry),
	}
	a.ftl.SetDecisions(dec, eng.Now)
	a.build()
	return a, nil
}

// CacheStats reports host DRAM cache activity (Section 6.6).
func (a *Array) CacheStats() CacheStats { return a.cache.stats() }

// utilWindow is the sampling window for contention-cause attribution.
const utilWindow = 200 * simx.Microsecond

// clusterBusUtil samples a cluster's shared-bus utilisation over a
// rolling window.
func (a *Array) clusterBusUtil(id topo.ClusterID) float64 {
	flat := id.Flat(a.cfg.Geometry)
	now := a.eng.Now()
	if now-a.busUtilAt[flat] < utilWindow {
		return a.busUtilLast[flat]
	}
	ep := a.Endpoint(id)
	u := ep.BusUtilizationSince(a.busUtilAt[flat], a.busUtilSnap[flat])
	a.busUtilAt[flat] = now
	a.busUtilSnap[flat] = ep.BusBusyNS()
	a.busUtilLast[flat] = u
	return u
}

// build wires the fabric: RC -> switches -> endpoints, both directions.
func (a *Array) build() {
	cfg := a.cfg
	g := cfg.Geometry

	a.rc = pcie.NewRootComplex(a.eng, cfg.RCRouteLatency,
		func(pkt *pcie.Packet) int { return addrSwitch(pkt.Addr) },
		a.deliver)

	for s := 0; s < g.Switches; s++ {
		s := s
		sw := pcie.NewSwitch(a.eng, fmt.Sprintf("sw%d", s), cfg.SwitchRouteLatency,
			func(pkt *pcie.Packet) int {
				if pkt.Kind == pcie.Completion || addrSwitch(pkt.Addr) != s {
					return pcie.Upstream
				}
				return addrCluster(pkt.Addr)
			})
		a.switches = append(a.switches, sw)

		// RC <-> switch links.
		down := pcie.NewLink(a.eng, fmt.Sprintf("rc->sw%d", s),
			cfg.SwitchLinkBytesPerSec, cfg.LinkPropagation, cfg.SwitchLinkCredits, sw)
		a.rc.AddPort(down)
		a.swDown = append(a.swDown, down)
		up := pcie.NewLink(a.eng, fmt.Sprintf("sw%d->rc", s),
			cfg.SwitchLinkBytesPerSec, cfg.LinkPropagation, cfg.SwitchLinkCredits, a.rc)
		sw.SetUpstream(up)
		a.swUp = append(a.swUp, up)

		// Switch <-> endpoint links.
		var row []*cluster.Endpoint
		var downRow, upRow []*pcie.Link
		for c := 0; c < g.ClustersPerSwitch; c++ {
			id := topo.ClusterID{Switch: s, Cluster: c}
			ep := cluster.New(a.eng, id, cfg.clusterParamsFor(id))
			swDown := pcie.NewLink(a.eng, fmt.Sprintf("%v.down", id),
				cfg.EPLinkBytesPerSec, cfg.LinkPropagation, cfg.EPLinkCredits, ep)
			sw.AddDownstream(swDown)
			epUp := pcie.NewLink(a.eng, fmt.Sprintf("%v.up", id),
				cfg.EPLinkBytesPerSec, cfg.LinkPropagation, cfg.EPLinkCredits, sw)
			ep.SetUpstream(epUp)
			ep.SetPacketPool(&a.pktPool)
			row = append(row, ep)
			downRow, upRow = append(downRow, swDown), append(upRow, epUp)
		}
		a.eps = append(a.eps, row)
		a.epDown, a.epUp = append(a.epDown, downRow), append(a.epUp, upRow)
	}
}

// Engine exposes the simulation engine (experiments advance it).
func (a *Array) Engine() *simx.Engine { return a.eng }

// Config returns the build configuration.
func (a *Array) Config() Config { return a.cfg }

// FTL exposes the global translation layer.
func (a *Array) FTL() *ftl.FTL { return a.ftl }

// Recorder exposes the metrics recorder.
func (a *Array) Recorder() *metrics.Recorder { return a.recorder }

// Decisions exposes the decision flight recorder; nil when recording
// is off (Config.Decisions == decision.Off). The manager and the fault
// injector pick it up on attach.
func (a *Array) Decisions() *decision.Recorder { return a.decisions }

// Endpoint returns one cluster endpoint.
func (a *Array) Endpoint(id topo.ClusterID) *cluster.Endpoint {
	return a.eps[id.Switch][id.Cluster]
}

// Switch returns one switch (for fabric statistics).
func (a *Array) Switch(i int) *pcie.Switch { return a.switches[i] }

// RootComplex returns the RC (for fabric statistics).
func (a *Array) RootComplex() *pcie.RootComplex { return a.rc }

// SetHooks attaches the autonomic manager. Must be called before Run.
func (a *Array) SetHooks(h Hooks) { a.hooks = h }

// InFlight reports outstanding host requests.
func (a *Array) InFlight() int { return a.inFlight }

// GCRounds reports completed garbage-collection rounds.
func (a *Array) GCRounds() uint64 { return a.gcRounds }

// GCDeferrals reports how often opportunistic scheduling postponed a
// collection round to an idle window.
func (a *Array) GCDeferrals() uint64 { return a.gcDeferrals }

// Migrations reports completed page migrations (autonomic data
// migration + data-layout reshaping moves).
func (a *Array) Migrations() uint64 { return a.migrations }

// pkgAt resolves a PPN to its NAND package.
func (a *Array) pkgAt(ppn topo.PPN) *nand.Package {
	return a.eps[ppn.Switch()][ppn.Cluster()].FIMM(ppn.FIMMSlot()).Package(ppn.Pkg())
}

// Prepare installs the pre-existing data footprint for a trace: every
// page that is read is prepopulated in the FTL and force-populated on
// its device, so reads find real flash pages (costing no simulated
// time — the data predates the experiment).
func (a *Array) Prepare(reqs []trace.Request) error {
	for _, r := range reqs {
		if r.Op != trace.Read {
			continue
		}
		for p := int64(0); p < r.Pages.Int64(); p++ {
			if err := a.ensureMapped(r.LPN + p); err != nil {
				return err
			}
		}
	}
	return nil
}

// ensureMapped prepopulates one LPN if needed. When the FTL fell back
// to dynamic allocation (the dense home block was consumed), the
// device populate must respect the block's program order — it goes
// through the same per-block gate in-flight writes use, completing
// instantly when its turn comes.
func (a *Array) ensureMapped(lpn int64) error { //simlint:cold first-touch prepopulation goes through the setup path
	ppn, need, err := a.ftl.Prepopulate(lpn)
	if err != nil {
		return err
	}
	if !need {
		return nil
	}
	bk := ppn.BlockKey()
	a.pendingFlush[ppn] = true
	a.pendingByBlock[bk]++
	a.launchProgram(ppn, funcLauncher(func() {
		if err := a.pkgAt(ppn).ForcePopulate(ppn.NandAddr(a.cfg.Geometry)); err != nil {
			panic(fmt.Sprintf("array: prepopulate: %v", err))
		}
		delete(a.pendingFlush, ppn)
		if a.pendingByBlock[bk]--; a.pendingByBlock[bk] == 0 {
			delete(a.pendingByBlock, bk)
		}
		if a.staleOnFlush[ppn] {
			delete(a.staleOnFlush, ppn)
			a.staleDeviceNow(ppn)
		}
		a.releaseGate(bk)
	}))
	return nil
}

// Run replays a trace to completion and returns the recorder. The
// trace must be sorted by arrival time.
func (a *Array) Run(reqs []trace.Request) (*metrics.Recorder, error) {
	// Snapshot the simcheck leak ledger so the end-of-run drain check
	// below compares against whatever other engines in this process
	// already hold. Without -tags simcheck both calls are no-ops.
	drainSnap := simx.SnapshotLedger()
	if err := a.Prepare(reqs); err != nil {
		return nil, err
	}
	// Schedule arrivals lazily: each arrival schedules the next, so the
	// event heap stays small for million-request traces. The feeder is a
	// single reusable Handler — one pooled event per arrival, zero
	// closures.
	f := &arrivalFeeder{arr: a, reqs: reqs}
	f.scheduleNext(0)
	a.eng.Run()
	if a.inFlight != 0 {
		return nil, fmt.Errorf("array: %d requests still in flight after drain", a.inFlight)
	}
	// Every pooled object minted during the run (events, waiters,
	// packets, commands, request/pageRef nodes, device op states) must
	// be back on its free-list now; a leak fails the run with the
	// pool's name and outstanding count.
	if err := simx.AssertDrained(drainSnap); err != nil {
		return nil, err
	}
	return a.recorder, nil
}

// arrivalFeeder injects trace requests one at a time: each arrival
// event submits request arg and schedules the next. A single feeder
// instance serves the whole run.
type arrivalFeeder struct {
	arr  *Array
	reqs []trace.Request
}

// scheduleNext books the arrival event for request i (clamped to now
// for out-of-order or past timestamps).
func (f *arrivalFeeder) scheduleNext(i int) {
	if i >= len(f.reqs) {
		return
	}
	at := f.reqs[i].Arrival
	if at < f.arr.eng.Now() {
		at = f.arr.eng.Now()
	}
	f.arr.eng.AtEvent(at, f, uint64(i))
}

// OnEvent implements simx.Handler: request arg arrives.
func (f *arrivalFeeder) OnEvent(arg uint64) {
	f.arr.Submit(f.reqs[arg])
	f.scheduleNext(int(arg) + 1)
}

// request tracks one host request across its page commands. Requests
// are pooled; the node recycles when its last page completes. The
// simx.Handler implementation serves the host-DRAM-hit path: each hit
// page schedules one event that retires it after the hit latency.
type request struct {
	arr      *Array
	id       uint64
	op       trace.Op
	lpn      int64
	pages    units.Pages
	submit   simx.Time
	remain   units.Pages
	agg      metrics.Breakdown
	maxAdmit simx.Time // latest page admission (RC stall reference)
	failed   bool      // a page command was terminated by a fault
	next     *request  // free-list link
	ck       simx.PoolCheck
}

// OnEvent implements simx.Handler: a host-DRAM cache hit completes.
func (req *request) OnEvent(arg uint64) {
	req.arr.finishPage(req, metrics.Breakdown{})
}

// pageRef links a page command back to its request and downstream
// packet. Refs are pooled per-page continuations: they queue for an RC
// slot (simx.Grantee), launch through the per-block program gate
// (launcher), and observe their packet's RC acceptance (pcie.Accepted).
type pageRef struct {
	arr          *Array
	req          *request
	lpn          int64
	down         *pcie.Packet
	rcInjectWait simx.Time
	admitWait    simx.Time
	retries      int
	next         *pageRef // free-list link
	ck           simx.PoolCheck
}

// OnGrant implements simx.Grantee: an RC queue entry is ours; waiting
// for it is the RC stall of Figure 15.
func (ref *pageRef) OnGrant(arg uint64, waited simx.Time) {
	ref.admitWait = waited
	ref.arr.admitPage(ref)
}

// launch implements launcher: inject the page's packet at the RC.
func (ref *pageRef) launch() {
	ref.arr.rc.Inject(ref.down, ref)
}

// OnLinkAccepted implements pcie.Accepted: the packet left the RC's
// internal queue; snapshot the RC-side queueing it accumulated.
func (ref *pageRef) OnLinkAccepted(pkt *pcie.Packet) {
	ref.rcInjectWait = pkt.QueueWait
}

func (a *Array) newReq() *request {
	r := a.freeReq
	if r != nil {
		a.freeReq = r.next
		r.ck.Checkout("array.request")
		*r = request{arr: a}
	} else {
		r = &request{arr: a} //simlint:coldalloc pool miss: request free-list refill
		r.ck.Fresh("array.request")
	}
	return r
}

func (a *Array) recycleReq(r *request) {
	r.ck.Release("array.request")
	r.next = a.freeReq
	a.freeReq = r
}

func (a *Array) newRef(req *request, lpn int64) *pageRef {
	ref := a.freeRef
	if ref != nil {
		a.freeRef = ref.next
		ref.ck.Checkout("array.pageRef")
		*ref = pageRef{arr: a}
	} else {
		ref = &pageRef{arr: a} //simlint:coldalloc pool miss: pageRef free-list refill
		ref.ck.Fresh("array.pageRef")
	}
	ref.req, ref.lpn = req, lpn
	return ref
}

func (a *Array) recycleRef(ref *pageRef) {
	ref.req, ref.down = nil, nil
	ref.ck.Release("array.pageRef")
	ref.next = a.freeRef
	a.freeRef = ref
}

// maxReadRetries bounds GC-race re-resolution; more than a couple in a
// row indicates a bookkeeping bug, not bad luck.
const maxReadRetries = 4

// retryRead re-resolves a raced read against the current mapping and
// re-injects it, keeping its RC queue slot.
func (a *Array) retryRead(ref *pageRef) {
	ppn, ok := a.ftl.Lookup(ref.lpn)
	if !ok {
		// Under a fault plan a mapping can legitimately vanish mid-read
		// (its page was destroyed); restore it from the shadow clone and
		// retry against the new location.
		if !a.faultsArmed || !a.restoreLostRead(ref) {
			panic(fmt.Sprintf("array: raced read of LPN %d lost its mapping", ref.lpn))
		}
		ppn, _ = a.ftl.Lookup(ref.lpn)
	}
	a.readRetries++
	cmd := a.cmdPool.Get()
	cmd.Op = cluster.OpRead
	cmd.FIMM, cmd.Pkg = ppn.FIMMSlot(), ppn.Pkg()
	cmd.SetPageAddr(ppn.NandAddr(a.cfg.Geometry))
	cmd.BufferHit = a.pendingFlush[ppn]
	cmd.Meta = ref
	pkt := a.pktPool.Get()
	pkt.ID, pkt.Kind, pkt.Addr = ref.req.id, pcie.MemRead, routeAddr(ppn.ClusterID())
	pkt.Meta = cmd
	ref.down = pkt
	a.rc.Inject(pkt, nil)
}

// Submit enters one host request at the current simulated time.
func (a *Array) Submit(r trace.Request) {
	if err := r.Validate(); err != nil {
		panic(err)
	}
	a.nextReqID++
	// Ownership passes to the per-page continuations minted below; the
	// page loop runs at least once (Validate rejects Pages < 1), so the
	// zero-iteration leak path poolsafe sees cannot execute.
	req := a.newReq() //simlint:handoff every request has >= 1 page; each page's ref/event owns req

	req.id = a.nextReqID
	req.op, req.lpn, req.pages = r.Op, r.LPN, r.Pages
	req.submit = a.eng.Now()
	req.remain = r.Pages
	a.inFlight++
	for p := int64(0); p < r.Pages.Int64(); p++ {
		lpn := r.LPN + p
		if r.Op == trace.Read && a.cache.lookup(lpn) {
			// Relocated host DRAM hit (Section 6.6): served at the
			// management module, never entering the flash array network.
			a.eng.ScheduleEvent(hostDRAMHitLatency, req, 0)
			continue
		}
		if r.Op == trace.Write {
			a.cache.install(lpn)
		}
		// One RC queue entry per page command; waiting for an entry is
		// the RC stall of Figure 15.
		a.rcSlots.AcquireG(a.newRef(req, lpn), 0)
	}
}

// admitPage resolves the page's physical location and injects its
// packet at the root complex. The ref's admitWait is already set.
func (a *Array) admitPage(ref *pageRef) {
	req, lpn := ref.req, ref.lpn
	var ppn topo.PPN
	var kind pcie.Kind
	var payload units.Bytes
	var op cluster.Op
	bufferHit := false

	switch req.op {
	case trace.Read:
		if err := a.ensureMapped(lpn); err != nil {
			panic(fmt.Sprintf("array: read mapping: %v", err))
		}
		ppn, _ = a.ftl.Lookup(lpn)
		kind, op = pcie.MemRead, cluster.OpRead
		bufferHit = a.pendingFlush[ppn]
	case trace.Write:
		target := a.ftl.ResidentFIMM(lpn)
		if a.hooks != nil {
			target = a.hooks.WriteTarget(lpn, target)
		}
		if a.faultsArmed {
			target = a.redirectWrite(lpn, target)
		}
		wa, err := a.ftl.AllocateWriteAt(lpn, target)
		if err != nil {
			// Target FIMM out of space: force a synchronous GC plan on
			// it, then retry once; persistent failure is a sizing bug.
			a.runGCNow(target)
			wa, err = a.ftl.AllocateWriteAt(lpn, target)
			if err != nil {
				panic(fmt.Sprintf("array: write allocation: %v", err))
			}
		}
		if wa.HasOld {
			a.markStaleDevice(wa.Old)
		}
		ppn = wa.New
		kind, op = pcie.MemWrite, cluster.OpWrite
		payload = a.cfg.Geometry.Nand.PageSizeBytes
	}

	cmd := a.cmdPool.Get()
	cmd.Op = op
	cmd.FIMM, cmd.Pkg = ppn.FIMMSlot(), ppn.Pkg()
	cmd.SetPageAddr(ppn.NandAddr(a.cfg.Geometry))
	cmd.BufferHit = bufferHit
	cmd.Meta = ref
	if op == cluster.OpWrite {
		a.trackFlush(ppn, cmd)
	}
	pkt := a.pktPool.Get()
	pkt.ID, pkt.Kind, pkt.Addr, pkt.Payload = req.id, kind, routeAddr(ppn.ClusterID()), payload
	pkt.Meta = cmd
	ref.down = pkt
	if op == cluster.OpWrite {
		a.launchProgram(ppn, ref)
	} else {
		ref.launch()
	}

	// Kick background GC if this write pressured its FIMM.
	if req.op == trace.Write && a.ftl.GCPressure(ppn.FIMMID()) {
		a.startGC(ppn.FIMMID())
	}
}

// launcher starts a gated page program (hands the command to its
// transport). The hot host-write path implements it on the pooled
// pageRef; cold paths adapt closures with funcLauncher.
type launcher interface {
	launch()
}

// funcLauncher adapts a closure to launcher for cold paths (setup,
// GC, migration). The conversion allocates.
type funcLauncher func()

func (f funcLauncher) launch() { f() } //simlint:cold closure adapter for setup/GC/migration launches

// blockGate serialises program launches into one erase block.
type blockGate struct {
	busy    bool
	waiting []launcher
}

// launchProgram starts a page program respecting per-block allocation
// order: the next program for a block leaves the host only after the
// previous one flushed.
func (a *Array) launchProgram(ppn topo.PPN, l launcher) {
	bk := ppn.BlockKey()
	g := a.gates[bk]
	if g == nil {
		g = &blockGate{} //simlint:coldalloc first touch: lazy per-block gate
		a.gates[bk] = g
	}
	if g.busy {
		g.waiting = append(g.waiting, l) //simlint:coldalloc amortized: gate queue growth bounded by in-flight programs
		return
	}
	g.busy = true
	l.launch()
}

// releaseGate lets the block's next queued program launch.
func (a *Array) releaseGate(bk topo.PPN) {
	g := a.gates[bk]
	if g == nil {
		return
	}
	if len(g.waiting) > 0 {
		next := g.waiting[0]
		g.waiting[0] = nil
		g.waiting = g.waiting[:copy(g.waiting, g.waiting[1:])]
		next.launch()
		return
	}
	delete(a.gates, bk)
}

// trackFlush registers an in-flight page program and arranges its
// retirement when the endpoint flush completes (OnCommandFlushed).
func (a *Array) trackFlush(ppn topo.PPN, cmd *cluster.Command) {
	a.pendingFlush[ppn] = true
	a.pendingByBlock[ppn.BlockKey()]++
	cmd.FlushPPN = ppn
	cmd.Flushed = a
}

// OnCommandFlushed implements cluster.FlushedH: a tracked page program
// reached flash (the write-buffer eviction point). This is also the
// write command's release point — for host writes the command recycles
// once both retirement events (ack delivery, flush) have happened; for
// background writes OnComplete has already run, so it recycles here.
func (a *Array) OnCommandFlushed(c *cluster.Command) {
	ppn := c.FlushPPN
	failed := c.Result.Err != nil
	if failed && !(a.faultsArmed && isFaultError(c.Result.Err)) {
		panic(fmt.Sprintf("array: flush of %v failed: %v", ppn, c.Result.Err))
	}
	delete(a.pendingFlush, ppn)
	bk := ppn.BlockKey()
	if a.pendingByBlock[bk]--; a.pendingByBlock[bk] == 0 {
		delete(a.pendingByBlock, bk)
	}
	if a.staleOnFlush[ppn] {
		delete(a.staleOnFlush, ppn)
		// A failed flush never programmed the page, so there is no
		// device page to stale-mark; the deferred mark just evaporates.
		if !failed {
			a.staleDeviceNow(ppn)
		}
	}
	if failed {
		a.failFlushedWrite(ppn)
	}
	if c.Background || c.RetireMark {
		a.cmdPool.Put(c)
	} else {
		c.RetireMark = true
	}
	a.releaseGate(bk)
}

// markStaleDevice mirrors an FTL stale-mark onto the device page,
// deferring it when the page's program is still buffered.
func (a *Array) markStaleDevice(ppn topo.PPN) {
	if a.pendingFlush[ppn] {
		a.staleOnFlush[ppn] = true
		return
	}
	a.staleDeviceNow(ppn)
}

func (a *Array) staleDeviceNow(ppn topo.PPN) {
	if err := a.pkgAt(ppn).MarkStale(ppn.NandAddr(a.cfg.Geometry)); err != nil {
		panic(fmt.Sprintf("array: device stale-mark: %v", err))
	}
}

// deliver receives completion packets at the root complex and finalises
// their page commands.
func (a *Array) deliver(pkt *pcie.Packet) {
	if pkt.Kind != pcie.Completion {
		// Cross-switch background transfer: send back downstream.
		a.rc.Inject(pkt, nil)
		return
	}
	cmd, ok := pkt.Meta.(*cluster.Command)
	if !ok {
		panic("array: completion without command")
	}
	ref, ok := cmd.Meta.(*pageRef)
	if !ok {
		panic("array: command without page reference")
	}
	req := ref.req
	res := cmd.Result
	if cmd.Op == cluster.OpWrite {
		res = cmd.AckResult
	}
	if res.Err != nil {
		// A read can lose the race against garbage collection: its
		// physical address was erased while the command was in flight.
		// Re-resolve against the current mapping and retry. The stale
		// packets and command recycle first so the retry reuses them.
		// Under a fault plan the same retry path re-resolves reads whose
		// hardware died mid-flight (recovery remaps them elsewhere).
		if cmd.Op == cluster.OpRead && ref.retries < maxReadRetries {
			ref.retries++
			a.pktPool.Put(ref.down)
			a.pktPool.Put(pkt)
			a.cmdPool.Put(cmd)
			a.retryRead(ref)
			return
		}
		if a.faultsArmed && isFaultError(res.Err) {
			a.failPage(ref, pkt, cmd)
			return
		}
		panic(fmt.Sprintf("array: device error on req %d: %v", req.id, res.Err))
	}
	a.rcSlots.Release()

	down, up := ref.down, pkt
	var b metrics.Breakdown
	b.RCStall = ref.admitWait + ref.rcInjectWait
	b.SwitchStall = (down.QueueWait - ref.rcInjectWait) + down.CreditWait + down.WireWait +
		up.QueueWait + up.CreditWait + up.WireWait
	b.EPWait = res.EPWait
	b.StorageWait = res.StorageWait
	b.LinkWait = res.LinkWait
	b.Texe = res.Texe
	b.LinkXfer = res.LinkXfer
	b.FabricXfer = down.WireTime + down.RouteTime + up.WireTime + up.RouteTime

	// Attribute the upstream backlog to its root cause: a saturated
	// shared bus at the target cluster is link contention (the paper's
	// classification); otherwise split by the device-side waits.
	clusterID := topo.ClusterID{Switch: addrSwitch(up.Addr), Cluster: addrCluster(up.Addr)}
	device := b.LinkWait + b.EPWait + b.StorageWait
	share := 0.0
	if device > 0 {
		share = float64(b.LinkWait) / float64(device)
	}
	if sat := (a.clusterBusUtil(clusterID) - 0.6) / 0.3; sat > share {
		share = sat
	}
	b.AttributeShare(share)

	if req.op == trace.Read {
		a.cache.install(ref.lpn)
	}
	if a.hooks != nil {
		a.hooks.OnPageComplete(PageComplete{
			LPN:     ref.lpn,
			Op:      req.op,
			Pages:   units.Page,
			Cluster: clusterID,
			FIMM:    cmd.FIMM,
			Result:  res,
		})
	}
	// Release points: both fabric packets are fully read (the breakdown
	// above holds copies), as is the page ref. Read commands are done;
	// a write command recycles here only if its flush already retired
	// (RetireMark coordination with OnCommandFlushed).
	a.pktPool.Put(down)
	a.pktPool.Put(up)
	if cmd.Op == cluster.OpRead || cmd.RetireMark {
		a.cmdPool.Put(cmd)
	} else {
		cmd.RetireMark = true
	}
	a.recycleRef(ref)
	a.finishPage(req, b)
}

// finishPage retires one page of a request, recording the request when
// its last page completes.
func (a *Array) finishPage(req *request, b metrics.Breakdown) {
	req.agg.Add(b)
	req.remain--
	if req.remain > 0 {
		return
	}
	kind := metrics.Read
	if req.op == trace.Write {
		kind = metrics.Write
	}
	if req.failed {
		a.faultCtrs.requestsFailed.Inc()
		a.recorder.RecordFailure(metrics.Failure{
			ID:     req.id,
			Kind:   kind,
			Pages:  req.pages,
			Submit: req.submit,
			At:     a.eng.Now(),
		})
	} else {
		a.recorder.Record(metrics.Record{
			ID:        req.id,
			Kind:      kind,
			Pages:     req.pages,
			Submit:    req.submit,
			Complete:  a.eng.Now(),
			Breakdown: req.agg,
		})
	}
	a.inFlight--
	a.recycleReq(req)
	if a.inFlight == 0 && a.onIdle != nil {
		a.onIdle() //simlint:coldalloc run-drain callback: fires once when the array idles
	}
}

// ReadRetries reports reads re-resolved after losing a race with
// garbage collection.
func (a *Array) ReadRetries() uint64 { return a.readRetries }

// CheckConsistency audits the array after (or during) a run: every
// mapped logical page must resolve to a physical page the device agrees
// is live (programmed, or still buffered in an endpoint), and the FTL's
// reverse lookup must agree with the forward map. It returns the first
// violation found — a debugging net for layout-reshaping code and a
// post-run assertion for tests.
func (a *Array) CheckConsistency() error {
	g := a.cfg.Geometry
	var err error
	a.ftl.ForEachMapping(func(lpn int64, ppn topo.PPN) bool {
		if back, ok := a.ftl.LPNOf(ppn); !ok || back != lpn {
			err = fmt.Errorf("array: reverse map of %v = (%d,%v), want LPN %d", ppn, back, ok, lpn)
			return false
		}
		if a.pendingFlush[ppn] {
			return true // program still buffered; device state lags by design
		}
		if st := a.pkgAt(ppn).PageStateAt(ppn.NandAddr(g)); st != nand.PageValid {
			err = fmt.Errorf("array: LPN %d maps to %v in device state %v, want valid", lpn, ppn, st)
			return false
		}
		return true
	})
	return err
}
