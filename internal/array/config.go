// Package array assembles the complete all-flash array: root complex,
// PCI-E switches, cluster endpoints, FIMMs and the global FTL, and
// drives I/O requests end to end. Without a manager attached this is
// the paper's *non-autonomic* baseline; package core adds the autonomic
// contention management on top through the hook points exposed here.
package array

import (
	"fmt"

	"triplea/internal/cluster"
	"triplea/internal/decision"
	"triplea/internal/fimm"
	"triplea/internal/ftl"
	"triplea/internal/metrics"
	"triplea/internal/nand"
	"triplea/internal/pcie"
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/units"
)

// Config describes a full array build.
type Config struct {
	Geometry topo.Geometry

	// Metrics selects the recorder backend: metrics.Exact (the zero
	// value — every sample retained, byte-identical historical output)
	// or metrics.Streaming (O(1) metric state for production-scale
	// runs). See docs/metrics.md.
	Metrics metrics.Backend

	// Decisions selects the autonomic decision flight-recorder backend:
	// decision.Off (the zero value — no recorder is built and every
	// recording hook is one nil check) or decision.Ring (a bounded ring
	// of decision records plus streaming regret aggregates). See
	// docs/decision-traces.md.
	Decisions decision.Backend

	// Endpoint parameters not implied by the geometry.
	BusPins         units.Lanes
	BusMHz          int
	BusDDR          bool
	QueueEntries    int
	FIMMQueueDepth  int
	WriteBufEntries int
	StagingEntries  int
	HALLatency      simx.Time
	// HostPriority queues host reads ahead of background (GC/migration)
	// reads at the endpoints.
	HostPriority bool

	// FIMM channel parameters.
	ChannelPins units.Lanes
	ChannelMHz  int
	ChannelDDR  bool

	// Fabric parameters.
	EPLinkBytesPerSec     units.BytesPerSec // switch <-> endpoint links
	SwitchLinkBytesPerSec units.BytesPerSec // RC <-> switch links
	LinkPropagation       simx.Time         // per hop
	SwitchRouteLatency    simx.Time
	RCRouteLatency        simx.Time
	EPLinkCredits         int
	SwitchLinkCredits     int

	RCQueueEntries int       // outstanding page commands (paper: 650-1000)
	SLA            simx.Time // latency target for laggard detection (paper: 3.3us)

	// HostDRAMBytes sizes the relocated DRAM at the management module
	// (Section 6.6); zero disables host caching. Triple-A moves the
	// SSDs' on-board DRAM here — caching still works, but, as the paper
	// argues, it cannot resolve the array's link/storage contentions.
	HostDRAMBytes units.Bytes

	Layout      ftl.Layout
	GCThreshold units.Blocks
	// OpportunisticGC defers background garbage collection while the
	// target cluster's shared bus is busy, running it in idle windows
	// instead (the paper's Section 8 "array-level garbage collection
	// scheduler"). Urgent pressure (a unit nearly out of free blocks)
	// collects regardless.
	OpportunisticGC bool

	// DegradedFIMMs slows individual modules' cell timings by the given
	// factor (wear-degraded hardware — intrinsic laggards). Healthy
	// modules are simply absent from the map.
	DegradedFIMMs map[topo.FIMMID]float64
}

// DefaultConfig returns the paper's baseline: a 4x16 network (four PLX
// switches, sixteen clusters each) of 4 x 64 GiB-FIMM clusters — a
// 16 TB array — with PCI-E 3.0-era link rates (x4 endpoint links, x16
// switch uplinks) and the published RC queue size and SLA.
//
// The cluster's shared local bus runs ONFI SDR x8 (400 MB/s, ~10.2 us
// per 4 KiB page): slower than the per-FIMM NV-DDR2 channels behind it,
// making the bus the cluster's shared bottleneck — the link-contention
// point Equation 1 reasons about.
func DefaultConfig() Config {
	return Config{
		Geometry: topo.Geometry{
			Switches:          4,
			ClustersPerSwitch: 16,
			FIMMsPerCluster:   4,
			PackagesPerFIMM:   8,
			Nand:              nand.DefaultParams(),
		},
		BusPins:         8 * units.Lane,
		BusMHz:          400,
		BusDDR:          false,
		QueueEntries:    64,
		FIMMQueueDepth:  4,
		WriteBufEntries: 64,
		StagingEntries:  32,
		HALLatency:      200 * simx.Nanosecond,

		ChannelPins: 16 * units.Lane,
		ChannelMHz:  400,
		ChannelDDR:  true,

		EPLinkBytesPerSec:     pcie.Gen3Bandwidth(4 * units.Lane),  // PCI-E 3.0 x4
		SwitchLinkBytesPerSec: pcie.Gen3Bandwidth(16 * units.Lane), // PCI-E 3.0 x16
		LinkPropagation:       100 * simx.Nanosecond,
		SwitchRouteLatency:    150 * simx.Nanosecond,
		RCRouteLatency:        200 * simx.Nanosecond,
		EPLinkCredits:         32,
		SwitchLinkCredits:     64,

		RCQueueEntries: 768,
		SLA:            3300 * simx.Nanosecond,

		Layout:      ftl.LayoutClustered,
		GCThreshold: 2 * units.Block,
	}
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	switch {
	case c.EPLinkBytesPerSec <= 0 || c.SwitchLinkBytesPerSec <= 0:
		return fmt.Errorf("array: link bandwidths must be positive")
	case c.EPLinkCredits < 1 || c.SwitchLinkCredits < 1:
		return fmt.Errorf("array: link credits must be >= 1")
	case c.RCQueueEntries < 1:
		return fmt.Errorf("array: RCQueueEntries %d must be >= 1", c.RCQueueEntries)
	case c.SLA <= 0:
		return fmt.Errorf("array: SLA %v must be positive", c.SLA)
	}
	return c.clusterParams().Validate()
}

// clusterParamsFor derives one cluster's parameters, applying any
// per-slot degradation.
func (c Config) clusterParamsFor(id topo.ClusterID) cluster.Params {
	p := c.clusterParams()
	for slot := 0; slot < c.Geometry.FIMMsPerCluster; slot++ {
		f, ok := c.DegradedFIMMs[topo.FIMMID{ClusterID: id, FIMM: slot}]
		if !ok {
			continue
		}
		if p.SlotLatencyScale == nil {
			p.SlotLatencyScale = make([]float64, c.Geometry.FIMMsPerCluster)
			for i := range p.SlotLatencyScale {
				p.SlotLatencyScale[i] = 1
			}
		}
		p.SlotLatencyScale[slot] = f
	}
	return p
}

// clusterParams derives the per-cluster parameters from the config.
func (c Config) clusterParams() cluster.Params {
	return cluster.Params{
		NumFIMMs: c.Geometry.FIMMsPerCluster,
		FIMM: fimm.Params{
			NumPackages: c.Geometry.PackagesPerFIMM,
			ChannelPins: c.ChannelPins,
			ChannelMHz:  c.ChannelMHz,
			ChannelDDR:  c.ChannelDDR,
			Nand:        c.Geometry.Nand,
		},
		BusPins:         c.BusPins,
		BusMHz:          c.BusMHz,
		BusDDR:          c.BusDDR,
		QueueEntries:    c.QueueEntries,
		FIMMQueueDepth:  c.FIMMQueueDepth,
		WriteBufEntries: c.WriteBufEntries,
		StagingEntries:  c.StagingEntries,
		HALLatency:      c.HALLatency,
		HostPriority:    c.HostPriority,
	}
}

// BusPageTime reports the cluster shared-bus time for one page — the
// tDMA term of the paper's Equations 1-3, which the autonomic manager
// needs for its detection thresholds.
func (c Config) BusPageTime() simx.Time { return c.clusterParams().BusPageTime() }

// routeAddr encodes a cluster's position into a fabric address.
func routeAddr(id topo.ClusterID) uint64 {
	return uint64(id.Switch)<<32 | uint64(id.Cluster)
}

// addrSwitch and addrCluster decode a fabric address.
func addrSwitch(a uint64) int  { return int(a >> 32) }
func addrCluster(a uint64) int { return int(a & 0xffffffff) }
