package array

import (
	"errors"
	"fmt"

	"triplea/internal/cluster"
	"triplea/internal/ftl"
	"triplea/internal/nand"
	"triplea/internal/topo"
)

// startGC launches a background garbage-collection worker for a FIMM if
// one is not already running. The worker relocates the victim's valid
// pages (device reads and programs that contend with host traffic, as
// real GC does), erases the victim, and repeats while pressure remains.
func (a *Array) startGC(id topo.FIMMID) { //simlint:cold garbage collection runs per reclaimed block, not per event
	flat := id.Flat(a.cfg.Geometry)
	if a.gcActive[flat] {
		return
	}
	a.gcActive[flat] = true
	a.gcStep(id)
}

func (a *Array) gcStep(id topo.FIMMID) {
	flat := id.Flat(a.cfg.Geometry)
	if a.gcHalted(id) {
		a.gcActive[flat] = false
		return
	}
	if !a.ftl.GCPressure(id) {
		a.gcActive[flat] = false
		return
	}
	// Opportunistic scheduling: while the cluster is serving host
	// traffic, postpone collection to an idle window — unless a unit is
	// about to run dry, in which case reclaim immediately.
	if a.cfg.OpportunisticGC && a.ftl.MinFreeBlocks(id) > 1 &&
		a.clusterBusUtil(id.ClusterID) > 0.5 {
		a.gcDeferrals++
		a.eng.Schedule(utilWindow, func() { a.gcStep(id) })
		return
	}
	plan, ok := a.ftl.PlanGC(id, a.gcVeto)
	if !ok {
		a.gcActive[flat] = false
		return
	}
	a.execGCMoves(plan, 0, func() {
		a.eraseVictim(plan, func() {
			a.gcRounds++
			a.gcStep(id) // keep collecting while pressured
		})
	})
}

// execGCMoves relocates plan.Moves[i:] one at a time, then calls done.
func (a *Array) execGCMoves(plan *ftl.GCPlan, i int, done func()) {
	if i >= len(plan.Moves) {
		done()
		return
	}
	move := plan.Moves[i]
	next := func() { a.execGCMoves(plan, i+1, done) }

	ep := a.Endpoint(move.Src.ClusterID())
	readCmd := a.cmdPool.Get()
	readCmd.Op = cluster.OpRead
	readCmd.FIMM, readCmd.Pkg = move.Src.FIMMSlot(), move.Src.Pkg()
	readCmd.SetPageAddr(move.Src.NandAddr(a.cfg.Geometry))
	readCmd.Background = true
	readCmd.OnComplete = func(c *cluster.Command) {
		if c.Result.Err != nil {
			a.gcFaultErr("GC read", c.Result.Err)
			// The victim page is unreadable; abandon this move.
			a.cmdPool.Put(c)
			next()
			return
		}
		a.cmdPool.Put(c) // background reads retire at completion
		wa, err := a.ftl.AllocateGCMove(move)
		if err != nil {
			// A host write moved the page since planning; skip it.
			next()
			return
		}
		a.markStaleDevice(wa.Old)
		a.backgroundProgram(wa.New, next)
	}
	ep.Submit(readCmd)
}

// gcVeto excludes blocks with buffered (unflushed) programs from
// victim selection.
func (a *Array) gcVeto(victim topo.PPN) bool {
	return a.pendingByBlock[victim.BlockKey()] > 0
}

// backgroundProgram writes one page at ppn via the endpoint write path.
func (a *Array) backgroundProgram(ppn topo.PPN, done func()) {
	ep := a.Endpoint(ppn.ClusterID())
	cmd := a.cmdPool.Get()
	cmd.Op = cluster.OpWrite
	cmd.FIMM, cmd.Pkg = ppn.FIMMSlot(), ppn.Pkg()
	cmd.SetPageAddr(ppn.NandAddr(a.cfg.Geometry))
	cmd.Background = true
	// The flush retirement (OnCommandFlushed) recycles the command;
	// OnComplete only chains the GC state machine.
	cmd.OnComplete = func(c *cluster.Command) {
		if c.Result.Err != nil {
			// Fault-caused program failures are tolerated: the flush
			// retirement drops the mapping, and the chain continues.
			a.gcFaultErr("background program", c.Result.Err)
		}
		done()
	}
	a.trackFlush(ppn, cmd)
	a.launchProgram(ppn, funcLauncher(func() { ep.Submit(cmd) }))
}

// eraseVictim erases the plan's victim block and completes the plan.
func (a *Array) eraseVictim(plan *ftl.GCPlan, done func()) {
	ep := a.Endpoint(plan.Victim.ClusterID())
	ep.Erase(plan.Victim.FIMMSlot(), plan.Victim.Pkg(),
		[]nand.Addr{plan.Victim.NandAddr(a.cfg.Geometry)},
		func(err error) {
			if err != nil {
				// A fault-caused erase failure abandons the round; the
				// victim block stays reclaimable for a later pass.
				a.gcFaultErr("GC erase", err)
				done()
				return
			}
			if err := a.ftl.CompleteGCErase(plan); err != nil {
				panic(fmt.Sprintf("array: GC bookkeeping: %v", err))
			}
			done()
		})
}

// runGCNow is the emergency out-of-space path: it reclaims one block
// with zero-time device fixups so an in-admission write can proceed.
// Measured experiments are sized so this never fires; it exists to keep
// pathological configurations (tiny FIMMs, reshaping pile-ups) live.
func (a *Array) runGCNow(id topo.FIMMID) { //simlint:cold emergency out-of-space reclamation
	plan, ok := a.ftl.PlanGC(id, a.gcVeto)
	if !ok {
		return
	}
	g := a.cfg.Geometry
	for _, move := range plan.Moves {
		wa, err := a.ftl.AllocateGCMove(move)
		if errors.Is(err, ftl.ErrNoSpace) {
			// Not even relocation space: the victim cannot be emptied.
			return
		}
		if err != nil {
			continue // host write superseded the page since planning
		}
		a.markStaleDevice(wa.Old)
		if err := a.pkgAt(wa.New).ForcePopulate(wa.New.NandAddr(g)); err != nil {
			panic(fmt.Sprintf("array: emergency GC populate: %v", err))
		}
	}
	if err := a.pkgAt(plan.Victim).ForceErase(plan.Victim.NandAddr(g)); err != nil {
		panic(fmt.Sprintf("array: emergency GC erase: %v", err))
	}
	if err := a.ftl.CompleteGCErase(plan); err != nil {
		panic(fmt.Sprintf("array: emergency GC bookkeeping: %v", err))
	}
	a.gcRounds++
}
