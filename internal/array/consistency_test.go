package array

import (
	"testing"
	"testing/quick"

	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/trace"
)

func TestConsistencyAfterMixedRun(t *testing.T) {
	a, _ := New(testConfig())
	var reqs []trace.Request
	rng := simx.NewRNG(11)
	var now simx.Time
	for i := 0; i < 300; i++ {
		now += simx.Time(20+rng.Intn(50)) * simx.Microsecond
		op := trace.Read
		if rng.Bool(0.4) {
			op = trace.Write
		}
		reqs = append(reqs, trace.Request{Arrival: now, Op: op, LPN: rng.Int63n(64), Pages: 1})
	}
	if _, err := a.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestConsistencyAfterGC(t *testing.T) {
	cfg := gcConfig()
	a, _ := New(cfg)
	reqs := overwriteTrace(20, 4, simx.Millisecond)
	if _, err := a.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if a.GCRounds() == 0 {
		t.Log("note: GC did not trigger in this run")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestConsistencyAfterMigrations(t *testing.T) {
	a, _ := New(testConfig())
	for lpn := int64(0); lpn < 16; lpn++ {
		if err := a.ensureMapped(lpn); err != nil {
			t.Fatal(err)
		}
	}
	for lpn := int64(0); lpn < 16; lpn++ {
		dst := topo.FIMMID{
			ClusterID: topo.ClusterID{Switch: int(lpn) % 2, Cluster: int(lpn) % 2},
			FIMM:      int(lpn) % 2,
		}
		a.MigratePage(lpn, dst, lpn%2 == 0, func(err error) {
			if err != nil {
				t.Errorf("migrate %d: %v", lpn, err)
			}
		})
	}
	a.Engine().Run()
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Property: any random interleaving of reads, writes and migrations
// leaves the array consistent and fully drained.
func TestPropertyConsistencyUnderChaos(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		cfg := testConfig()
		a, err := New(cfg)
		if err != nil {
			return false
		}
		rng := simx.NewRNG(seed)
		const span = 48 // LPNs spanning several FIMMs
		for _, op := range ops {
			lpn := int64(op % span)
			switch (op / span) % 4 {
			case 0:
				a.Submit(trace.Request{Op: trace.Read, LPN: lpn, Pages: 1})
			case 1:
				a.Submit(trace.Request{Op: trace.Write, LPN: lpn, Pages: 1})
			case 2:
				dst := topo.FIMMFromFlat(cfg.Geometry, rng.Intn(cfg.Geometry.TotalFIMMs()))
				a.MigratePage(lpn, dst, rng.Bool(0.5), func(error) {})
			case 3:
				a.Engine().RunFor(simx.Time(rng.Intn(200)) * simx.Microsecond)
			}
		}
		a.Engine().Run()
		return a.InFlight() == 0 && a.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
