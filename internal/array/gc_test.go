package array

import (
	"testing"

	"triplea/internal/simx"
	"triplea/internal/trace"
)

// overwriteTrace hammers a few LPNs so blocks recycle.
func overwriteTrace(rounds int, lpns int64, gap simx.Time) []trace.Request {
	var reqs []trace.Request
	var now simx.Time
	for r := 0; r < rounds; r++ {
		for lpn := int64(0); lpn < lpns; lpn++ {
			reqs = append(reqs, trace.Request{Arrival: now, Op: trace.Write, LPN: lpn, Pages: 1})
			now += gap
		}
	}
	return reqs
}

func gcConfig() Config {
	cfg := testConfig()
	cfg.Geometry.Nand.BlocksPerPlane = 8
	cfg.GCThreshold = 6
	return cfg
}

func TestOpportunisticGCDefersUnderLoad(t *testing.T) {
	// Interleave overwrites with a heavy read stream on the same
	// cluster so its bus stays busy; the opportunistic scheduler must
	// defer at least some rounds, and still reclaim eventually.
	build := func(opportunistic bool) *Array {
		cfg := gcConfig()
		// Pressure must first appear mid-run (while the bus is busy),
		// not at prepare time when the array is still idle.
		cfg.GCThreshold = 4
		cfg.OpportunisticGC = opportunistic
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	reqs := overwriteTrace(20, 4, simx.Millisecond/2)
	// Dense read traffic across two FIMMs of the same cluster keeps the
	// shared bus saturated (die time overlaps, transfers serialise).
	perFIMM := gcConfig().Geometry.PagesPerFIMM().Int64()
	var mixed []trace.Request
	for i, w := range reqs {
		mixed = append(mixed, w)
		for j := 0; j < 48; j++ {
			base := int64(10)
			if j%2 == 1 {
				base = perFIMM + 10
			}
			mixed = append(mixed, trace.Request{
				Arrival: w.Arrival + simx.Time(j+1)*10*simx.Microsecond,
				Op:      trace.Read,
				LPN:     base + int64((i+j)%20),
				Pages:   1,
			})
		}
	}

	eager := build(false)
	if _, err := eager.Run(mixed); err != nil {
		t.Fatal(err)
	}
	oppo := build(true)
	if _, err := oppo.Run(mixed); err != nil {
		t.Fatal(err)
	}

	if eager.GCDeferrals() != 0 {
		t.Errorf("eager GC deferred %d times", eager.GCDeferrals())
	}
	if oppo.GCDeferrals() == 0 {
		t.Error("opportunistic GC never deferred under load")
	}
	if oppo.FTL().Stats().GCErases == 0 {
		t.Error("opportunistic GC never reclaimed")
	}
}

func TestOpportunisticGCUrgencyOverride(t *testing.T) {
	// With almost no free blocks left, collection must run even while
	// the cluster is busy: fill a FIMM nearly to capacity.
	cfg := gcConfig()
	cfg.OpportunisticGC = true
	cfg.Geometry.Nand.BlocksPerPlane = 4
	cfg.GCThreshold = 3
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Slow, sustained overwrites: pressure becomes urgent eventually.
	reqs := overwriteTrace(30, 4, 2*simx.Millisecond)
	if _, err := a.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if a.FTL().Stats().GCErases == 0 {
		t.Error("urgent pressure did not force collection")
	}
}

func TestGCVetoProtectsPendingBlocks(t *testing.T) {
	// gcVeto must report blocks with pending flushes.
	a, _ := New(testConfig())
	wa, err := a.FTL().AllocateWrite(0)
	if err != nil {
		t.Fatal(err)
	}
	bk := wa.New.BlockKey()
	a.pendingByBlock[bk] = 1
	if !a.gcVeto(wa.New) {
		t.Error("pending block not vetoed")
	}
	delete(a.pendingByBlock, bk)
	if a.gcVeto(wa.New) {
		t.Error("clean block vetoed")
	}
}
