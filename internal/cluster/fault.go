package cluster

import "errors"

// Fault-injection hooks (see internal/fault and docs/fault-injection.md).

// ErrUnplugged marks a command submitted to a hot-unplugged cluster.
// Detected with errors.Is by the array's degraded-mode error paths.
var ErrUnplugged = errors.New("cluster: hot-unplugged")

// SetUnplugged pulls the cluster (true) or replugs it (false). While
// unplugged, every newly arriving command fails with ErrUnplugged —
// the error completion models the fabric's device-removal response —
// and in-flight commands drain normally, so no pooled object strands.
// A replugged cluster rejoins with its endpoint buffers empty and its
// flash contents intact.
func (ep *Endpoint) SetUnplugged(u bool) { ep.unplugged = u }

// Unplugged reports whether the cluster is currently pulled.
func (ep *Endpoint) Unplugged() bool { return ep.unplugged }
