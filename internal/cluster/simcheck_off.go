//go:build !simcheck

package cluster

const simcheckEnabled = false

type ckState struct{}

func (ep *Endpoint) ckSubmitted()     {}
func (ep *Endpoint) ckIssued(f int)   {}
func (ep *Endpoint) ckQueued()        {}
func (ep *Endpoint) ckReleased(f int) {}
