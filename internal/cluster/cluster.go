// Package cluster models one hot-swappable cluster of the flash array:
// a PCI Express endpoint (device layers, downstream command queue,
// upstream data staging, write buffer) whose HAL control logic drives a
// set of FIMMs over a shared local bus (the paper's Figure 4).
//
// The two resource contentions Triple-A manages are both observable
// here:
//
//   - link contention: transfers between the FIMMs and the endpoint
//     serialise on the cluster's shared local bus; time spent waiting
//     for that bus (or the FIMM's own channel) is LinkWait.
//   - storage contention: commands wait in the endpoint queue for a
//     busy FIMM (per-FIMM outstanding limit) and then for a busy die;
//     that time is EPWait + StorageWait.
package cluster

import (
	"fmt"

	"triplea/internal/fimm"
	"triplea/internal/nand"
	"triplea/internal/pcie"
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/units"
)

// Params describes one cluster.
type Params struct {
	NumFIMMs int
	FIMM     fimm.Params

	// Shared local bus between the FIMM slots and the endpoint logic.
	BusPins units.Lanes
	BusMHz  int
	BusDDR  bool

	QueueEntries    int       // downstream command queue capacity
	FIMMQueueDepth  int       // outstanding commands per FIMM
	WriteBufEntries int       // endpoint write-staging entries
	StagingEntries  int       // upstream read-staging entries
	HALLatency      simx.Time // command construction overhead

	// SlotLatencyScale optionally degrades individual FIMM slots: cell
	// timings (tR/tPROG/tBERS) are multiplied by the slot's factor.
	// Worn or marginal modules run slower — the intrinsic laggards of
	// Section 4.2. Nil or a 1.0 entry means a healthy module; the
	// slice may be shorter than NumFIMMs.
	SlotLatencyScale []float64

	// HostPriority queues host reads ahead of background (GC and
	// migration) reads waiting for the same FIMM, so repair traffic
	// yields to foreground I/O — one of the paper's Section 8 "queueing
	// mechanisms". Relative order within each class is preserved.
	HostPriority bool
}

// DefaultParams returns the paper's cluster: four 64 GiB FIMMs behind
// one endpoint, a 16-pin 400 MHz DDR shared bus, and endpoint buffers
// sized like a contemporary PLX part.
func DefaultParams() Params {
	return Params{
		NumFIMMs:        4,
		FIMM:            fimm.DefaultParams(),
		BusPins:         16 * units.Lane,
		BusMHz:          400,
		BusDDR:          true,
		QueueEntries:    64,
		FIMMQueueDepth:  8,
		WriteBufEntries: 64,
		StagingEntries:  32,
		HALLatency:      200 * simx.Nanosecond,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.NumFIMMs <= 0:
		return fmt.Errorf("cluster: NumFIMMs %d must be positive", p.NumFIMMs)
	case p.BusPins != 8*units.Lane && p.BusPins != 16*units.Lane:
		return fmt.Errorf("cluster: BusPins %d must be 8 or 16", p.BusPins)
	case p.BusMHz <= 0:
		return fmt.Errorf("cluster: BusMHz %d must be positive", p.BusMHz)
	case p.QueueEntries <= 0:
		return fmt.Errorf("cluster: QueueEntries %d must be positive", p.QueueEntries)
	case p.FIMMQueueDepth <= 0:
		return fmt.Errorf("cluster: FIMMQueueDepth %d must be positive", p.FIMMQueueDepth)
	case p.WriteBufEntries <= 0:
		return fmt.Errorf("cluster: WriteBufEntries %d must be positive", p.WriteBufEntries)
	case p.StagingEntries <= 0:
		return fmt.Errorf("cluster: StagingEntries %d must be positive", p.StagingEntries)
	}
	return p.FIMM.Validate()
}

// BusBytesPerSec reports the shared local bus bandwidth.
func (p Params) BusBytesPerSec() units.BytesPerSec {
	return units.BusBandwidth(p.BusPins, p.BusMHz, p.BusDDR)
}

// BusPageTime reports the shared-bus time for one page — the tDMA of
// Equations 1 and 3.
func (p Params) BusPageTime() simx.Time {
	return units.TransferTime(p.FIMM.Nand.PageSizeBytes, p.BusBytesPerSec())
}

// Op identifies a cluster command type.
type Op uint8

const (
	OpRead  Op = iota // read pages, return data upstream
	OpWrite           // write pages (buffered, early ack)
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	}
	return "unknown"
}

// OpResult decomposes one command's time inside the cluster.
type OpResult struct {
	EPWait      simx.Time // endpoint queue / write-buffer admission wait
	StorageWait simx.Time // die queueing inside the FIMM
	Texe        simx.Time // cell time
	LinkWait    simx.Time // waiting for FIMM channel or shared bus
	LinkXfer    simx.Time // data movement on FIMM channel + shared bus
	Err         error
}

// DeviceLatency reports the device-level latency the autonomic module
// monitors (Equation 1's tLatency): everything from command arrival at
// the endpoint until the data sits in the endpoint.
func (r OpResult) DeviceLatency() simx.Time {
	return r.EPWait + r.StorageWait + r.Texe + r.LinkWait + r.LinkXfer
}

// Command is one device command carried to the endpoint inside a PCI-E
// packet's Meta (host I/O) or issued directly (background work).
type Command struct {
	Op         Op
	FIMM       int // slot within this cluster
	Pkg        int
	Addrs      []nand.Addr
	Background bool // migration / GC traffic: no host completion packet
	// BufferHit marks a read whose data still sits in the endpoint
	// write buffer (a read racing its own write's flush): it is served
	// from endpoint DRAM without touching the FIMM.
	BufferHit bool

	Result OpResult
	// AckResult snapshots Result at write-ack time: host write latency
	// ends at buffering, while Result keeps accumulating flush costs.
	AckResult OpResult
	Meta      any // the array's request object, echoed in completions

	// OnComplete fires when the endpoint finishes the command (data
	// staged for reads, buffer accepted for writes, program completed
	// for background writes). Completion packets to the host are
	// separate and flow through the fabric. Cold paths only: the hot
	// host path communicates through completion packets and Flushed.
	OnComplete func(*Command)
	// Flushed fires for host writes when the background flush has
	// programmed the page (or failed); the array uses it to retire
	// write-buffer bookkeeping. FlushPPN is opaque cargo echoed back so
	// the receiver needs no per-command closure state.
	Flushed  FlushedH
	FlushPPN topo.PPN
	// RetireMark coordinates the two retirement events of a pooled host
	// write command — completion-ack delivery at the host and flush
	// completion at the endpoint — which are not strictly ordered.
	// Whichever event observes the mark set releases the command;
	// the first one to run only sets it.
	RetireMark bool

	arrived simx.Time
	from    *pcie.Link // ingress link to credit back, if packet-borne
	ep      *Endpoint  // owning endpoint while in flight

	// Per-operation scratch for the typed event path.
	stageWait simx.Time // staging wait (read upstream path)
	busWait   simx.Time // shared-bus wait
	xferT     simx.Time // shared-bus transfer time

	addrBuf [1]nand.Addr // inline storage for the single-page Addrs case
	next    *Command     // free-list link while parked in a CommandPool
	ck      simx.PoolCheck
}

// FlushedH receives write-flush retirements (the typed counterpart of a
// per-command closure).
type FlushedH interface {
	OnCommandFlushed(c *Command)
}

// Pages reports the page count of the command.
func (c *Command) Pages() units.Pages { return units.Pages(len(c.Addrs)) }

// SetPageAddr points Addrs at the command's inline single-page buffer —
// the overwhelmingly common case — without allocating a slice.
func (c *Command) SetPageAddr(a nand.Addr) {
	c.addrBuf[0] = a
	c.Addrs = c.addrBuf[:1]
}

// Grant-phase discriminators (simx.Grantee arg).
const (
	gHAL       uint64 = iota // HAL logic granted (read and buffer-hit paths)
	gStageHit                // staging granted for a buffer-hit read
	gStageRead               // staging granted on the read upstream path
	gBusRead                 // shared bus granted on the read upstream path
	gWBuf                    // write-buffer entry granted
	gBusFlush                // shared bus granted for a write flush
)

// Event-phase discriminators (simx.Handler arg).
const (
	hHALDone   uint64 = iota // HAL construction latency elapsed
	hReadXfer                // read data crossed the shared bus
	hFlushXfer               // write data crossed the shared bus
)

// OnGrant implements simx.Grantee: one of the endpoint's resources is ours.
func (cmd *Command) OnGrant(arg uint64, waited simx.Time) {
	ep := cmd.ep
	switch arg {
	case gHAL:
		ep.eng.ScheduleEvent(ep.params.HALLatency, cmd, hHALDone)
	case gStageHit:
		cmd.Result.LinkWait += waited
		ep.finishRead(cmd)
	case gStageRead:
		cmd.stageWait = waited
		ep.bus.AcquireG(cmd, gBusRead)
	case gBusRead:
		cmd.busWait = waited
		cmd.xferT = units.ScaleByPages(ep.params.BusPageTime(), cmd.Pages())
		ep.eng.ScheduleEvent(cmd.xferT, cmd, hReadXfer)
	case gWBuf:
		ep.admitBufferedWrite(cmd, waited)
	case gBusFlush:
		cmd.busWait = waited
		cmd.xferT = units.ScaleByPages(ep.params.BusPageTime(), cmd.Pages())
		ep.eng.ScheduleEvent(cmd.xferT, cmd, hFlushXfer)
	default:
		panic("cluster: unknown grant phase")
	}
}

// OnEvent implements simx.Handler for the command's timed phases.
func (cmd *Command) OnEvent(arg uint64) {
	ep := cmd.ep
	switch arg {
	case hHALDone:
		ep.hal.Release()
		if cmd.BufferHit {
			ep.stats.BufferHits++
			ep.staging.AcquireG(cmd, gStageHit)
			return
		}
		ep.fimms[cmd.FIMM].ReadOp(cmd.Pkg, cmd.Addrs, cmd)
	case hReadXfer:
		ep.bus.Release()
		cmd.Result.LinkWait += cmd.stageWait + cmd.busWait
		cmd.Result.LinkXfer += cmd.xferT
		ep.accountRead(cmd)
		ep.finishRead(cmd)
	case hFlushXfer:
		ep.bus.Release()
		cmd.Result.LinkWait += cmd.busWait
		cmd.Result.LinkXfer += cmd.xferT
		ep.fimms[cmd.FIMM].ProgramOp(cmd.Pkg, cmd.Addrs, cmd)
	default:
		panic("cluster: unknown event phase")
	}
}

// OnFIMMDone implements fimm.Done: the module finished the cell
// operation (and, for reads, the channel transfer).
func (cmd *Command) OnFIMMDone(r fimm.Result) {
	ep := cmd.ep
	switch cmd.Op {
	case OpRead:
		if r.Err != nil {
			ep.releaseFIMMSlot(cmd.FIMM)
			ep.fail(cmd, r.Err)
			return
		}
		cmd.Result.StorageWait = r.StorageWait
		cmd.Result.Texe = r.Texe
		cmd.Result.LinkWait = r.ChannelWait
		cmd.Result.LinkXfer = r.ChannelXfer
		ep.moveUpstream(cmd)
	case OpWrite:
		ep.finishFlush(cmd, r)
	}
}

// Stats aggregates endpoint activity.
type Stats struct {
	Reads         uint64
	Writes        uint64
	BgReads       uint64
	BgWrites      uint64
	Erases        uint64
	BufferHits    uint64 // reads served from the write buffer
	QueueFullHits uint64 // enqueue attempts that found the queue full
	EPWaitNS      simx.Time
	StorageWaitNS simx.Time
	LinkWaitNS    simx.Time
	LinkXferNS    simx.Time
	WriteBufStall simx.Time
}

// Endpoint is the cluster's PCI-E endpoint plus its FIMMs.
type Endpoint struct {
	eng    *simx.Engine
	id     topo.ClusterID
	params Params

	fimms   []*fimm.FIMM
	bus     *simx.Resource // shared local bus
	staging *simx.Resource // upstream read staging
	hal     *simx.Resource // command construction logic

	writeBuf *simx.Resource

	pending     []([]*Command) // per-FIMM FIFO of queued commands
	pendingLen  int
	outstanding []int // per-FIMM issued-but-unfinished counts

	// stalledScratch backs StalledPerFIMM so the per-event laggard
	// detectors never allocate; see that method's aliasing contract.
	stalledScratch []int

	up      *pcie.Link // toward the switch
	pktPool *pcie.Pool // optional shared packet free-list for completions

	// unplugged models a hot-unplugged cluster (fault.go): every newly
	// submitted command fails with ErrUnplugged; in-flight work drains.
	unplugged bool

	stats Stats
	ck    ckState // empty unless built with -tags simcheck
}

// New builds a cluster endpoint; invalid params panic.
func New(eng *simx.Engine, id topo.ClusterID, params Params) *Endpoint {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	ep := &Endpoint{
		eng:            eng,
		id:             id,
		params:         params,
		bus:            simx.NewResource(eng, id.String()+".bus", 1),
		staging:        simx.NewResource(eng, id.String()+".staging", params.StagingEntries),
		hal:            simx.NewResource(eng, id.String()+".hal", 1),
		writeBuf:       simx.NewResource(eng, id.String()+".wbuf", params.WriteBufEntries),
		pending:        make([][]*Command, params.NumFIMMs),
		outstanding:    make([]int, params.NumFIMMs),
		stalledScratch: make([]int, params.NumFIMMs),
	}
	for i := 0; i < params.NumFIMMs; i++ {
		fp := params.FIMM
		if i < len(params.SlotLatencyScale) {
			fp = scaleFIMMLatency(fp, params.SlotLatencyScale[i])
		}
		ep.fimms = append(ep.fimms, fimm.New(eng, fp))
	}
	return ep
}

// scaleFIMMLatency slows a module's cell timings by factor (>= 1).
func scaleFIMMLatency(p fimm.Params, factor float64) fimm.Params {
	if factor <= 1 {
		return p
	}
	p.Nand.TRead = simx.Time(float64(p.Nand.TRead) * factor)
	p.Nand.TProg = simx.Time(float64(p.Nand.TProg) * factor)
	p.Nand.TErase = simx.Time(float64(p.Nand.TErase) * factor)
	return p
}

// ID reports the cluster's position in the array.
func (ep *Endpoint) ID() topo.ClusterID { return ep.id }

// Params returns the cluster parameters.
func (ep *Endpoint) Params() Params { return ep.params }

// FIMM exposes one module (for the array's device bookkeeping).
func (ep *Endpoint) FIMM(i int) *fimm.FIMM { return ep.fimms[i] }

// SetUpstream attaches the egress link toward the switch.
func (ep *Endpoint) SetUpstream(l *pcie.Link) { ep.up = l }

// SetPacketPool shares a packet free-list with the endpoint, so the
// completions it mints upstream recycle the packets the host retires.
// Without a pool the endpoint allocates (standalone tests).
func (ep *Endpoint) SetPacketPool(p *pcie.Pool) { ep.pktPool = p }

// newPacket draws a zeroed completion packet from the shared pool, or
// allocates one when no pool is attached.
func (ep *Endpoint) newPacket() *pcie.Packet {
	if ep.pktPool != nil {
		return ep.pktPool.Get()
	}
	return &pcie.Packet{} //simlint:coldalloc pool miss: completion-packet fallback
}

// Stats returns a snapshot of endpoint activity.
func (ep *Endpoint) Stats() Stats { return ep.stats }

// QueueLen reports commands waiting in the endpoint queue.
func (ep *Endpoint) QueueLen() int { return ep.pendingLen }

// QueueFull reports whether the endpoint queue is at capacity — the
// trigger for the paper's queue-examination laggard strategy.
func (ep *Endpoint) QueueFull() bool { return ep.pendingLen >= ep.params.QueueEntries }

// StalledPerFIMM reports, per FIMM slot, the number of commands queued
// and not yet issued — the per-FIMM stalled counts Figure 8 examines.
// The returned slice is a scratch buffer owned by the endpoint, valid
// only until the next StalledPerFIMM call; the laggard detectors run
// on every page completion, so this path must not allocate.
func (ep *Endpoint) StalledPerFIMM() []int {
	out := ep.stalledScratch
	for i, q := range ep.pending {
		out[i] = len(q)
	}
	return out
}

// BusBusyNS reports the shared bus busy integral, for Equation 2's
// utilisation sampling.
func (ep *Endpoint) BusBusyNS() simx.Time { return ep.bus.BusyNS() }

// BusUtilizationSince reports shared-bus utilisation over a window.
func (ep *Endpoint) BusUtilizationSince(since simx.Time, busyAtSince simx.Time) float64 {
	return ep.bus.UtilizationSince(since, busyAtSince)
}

// Forward sends a fabric packet upstream toward the switch — the
// peer-to-peer path autonomic data migration uses to push cloned data
// to a sibling cluster.
func (ep *Endpoint) Forward(pkt *pcie.Packet) {
	if ep.up == nil {
		panic(fmt.Sprintf("cluster %v: Forward without upstream link", ep.id))
	}
	ep.up.Send(pkt, nil)
}

// Receive implements pcie.Receiver: the device layers disassemble the
// packet and enqueue its command for the HAL.
func (ep *Endpoint) Receive(pkt *pcie.Packet, from *pcie.Link) {
	cmd, ok := pkt.Meta.(*Command)
	if !ok {
		panic(fmt.Sprintf("cluster %v: packet %v carries no command", ep.id, pkt))
	}
	cmd.from = from
	// Background packets (cross-switch migration writes) end here: the
	// command carries everything onward, and no breakdown is read back
	// from the packet. Host packets stay alive until the array's
	// deliver reads their stall accumulators.
	if cmd.Background && ep.pktPool != nil {
		ep.pktPool.Put(pkt)
	}
	ep.Submit(cmd)
}

// OnLinkAccepted implements pcie.Accepted: an upstream completion left
// the endpoint's buffer, so its staging entry frees up.
func (ep *Endpoint) OnLinkAccepted(*pcie.Packet) { ep.staging.Release() }

// Submit accepts a command directly (background work enters here;
// packet-borne commands arrive via Receive).
func (ep *Endpoint) Submit(cmd *Command) {
	cmd.ck.InUse("cluster.Command")
	cmd.ep = ep
	if cmd.FIMM < 0 || cmd.FIMM >= len(ep.fimms) {
		ep.fail(cmd, fmt.Errorf("cluster %v: FIMM slot %d out of range", ep.id, cmd.FIMM)) //simlint:coldalloc error path: rejected submission
		return
	}
	if len(cmd.Addrs) == 0 {
		ep.fail(cmd, fmt.Errorf("cluster %v: command with no addresses", ep.id)) //simlint:coldalloc error path: rejected submission
		return
	}
	if ep.unplugged {
		ep.fail(cmd, fmt.Errorf("cluster %v: %w", ep.id, ErrUnplugged)) //simlint:coldalloc error path: rejected submission
		return
	}
	cmd.arrived = ep.eng.Now()
	if ep.QueueFull() {
		ep.stats.QueueFullHits++
	}
	switch {
	case cmd.Op == OpWrite:
		ep.admitWrite(cmd)
	case cmd.BufferHit:
		ep.serveBufferHit(cmd)
	default:
		ep.enqueueRead(cmd)
	}
}

// serveBufferHit answers a read from the endpoint write buffer: no
// FIMM, no shared bus — just HAL handling and the upstream path.
func (ep *Endpoint) serveBufferHit(cmd *Command) {
	cmd.Result.EPWait = 0
	ep.creditBack(cmd)
	ep.hal.AcquireG(cmd, gHAL)
}

func (ep *Endpoint) fail(cmd *Command, err error) {
	cmd.Result.Err = err
	// Writes are judged by their ack snapshot upstream (the flush result
	// is normally invisible to the host); a command that failed before
	// buffering must carry the error there too.
	cmd.AckResult.Err = err
	ep.creditBack(cmd)
	// Host commands report failure through the fabric (a dataless error
	// completion) so the array can re-resolve stale addresses — e.g. a
	// read whose target block was garbage-collected in flight.
	if !cmd.Background && ep.up != nil && cmd.Meta != nil {
		pkt := ep.newPacket()
		pkt.Kind, pkt.Addr, pkt.Meta = pcie.Completion, ep.routeAddr(), cmd
		ep.up.Send(pkt, nil)
	}
	if cmd.OnComplete != nil {
		cmd.OnComplete(cmd) //simlint:coldalloc audited continuation dispatch; the indirect call itself does not allocate
	}
	// A write rejected before buffering never reaches finishFlush; fire
	// the flush retirement here so the submitter's per-block bookkeeping
	// (and the pooled command's RetireMark handshake) still resolves.
	if cmd.Flushed != nil {
		cmd.Flushed.OnCommandFlushed(cmd)
	}
}

func (ep *Endpoint) creditBack(cmd *Command) {
	if cmd.from != nil {
		cmd.from.ReturnCredit()
		cmd.from = nil
	}
}

// enqueueRead places a read in the endpoint queue, issuing immediately
// when its FIMM has a free outstanding slot and no older queued work.
// Under host-priority scheduling, host reads jump ahead of queued
// background work (but never ahead of other host reads).
func (ep *Endpoint) enqueueRead(cmd *Command) {
	f := cmd.FIMM
	if simcheckEnabled {
		ep.ckSubmitted()
	}
	if len(ep.pending[f]) == 0 && ep.outstanding[f] < ep.params.FIMMQueueDepth {
		ep.issueRead(cmd)
		return
	}
	q := ep.pending[f]
	if ep.params.HostPriority && !cmd.Background {
		at := len(q)
		for i, queued := range q {
			if queued.Background {
				at = i
				break
			}
		}
		q = append(q, nil) //simlint:coldalloc amortized: pending-queue growth bounded by queue depth
		copy(q[at+1:], q[at:])
		q[at] = cmd
		ep.pending[f] = q
	} else {
		ep.pending[f] = append(q, cmd) //simlint:coldalloc amortized: pending-queue growth bounded by queue depth
	}
	ep.pendingLen++
	if simcheckEnabled {
		ep.ckQueued()
	}
}

// releaseFIMMSlot frees an outstanding slot and issues the oldest
// queued command for that FIMM.
func (ep *Endpoint) releaseFIMMSlot(f int) {
	ep.outstanding[f]--
	if simcheckEnabled {
		ep.ckReleased(f)
	}
	if len(ep.pending[f]) == 0 {
		return
	}
	if ep.outstanding[f] >= ep.params.FIMMQueueDepth {
		return
	}
	cmd := ep.pending[f][0]
	copy(ep.pending[f], ep.pending[f][1:])
	ep.pending[f] = ep.pending[f][:len(ep.pending[f])-1]
	ep.pendingLen--
	ep.issueRead(cmd)
}

func (ep *Endpoint) issueRead(cmd *Command) {
	f := cmd.FIMM
	ep.outstanding[f]++
	if simcheckEnabled {
		ep.ckIssued(f)
	}
	cmd.Result.EPWait = ep.eng.Now() - cmd.arrived
	ep.stats.EPWaitNS += cmd.Result.EPWait
	// The command occupies a queue entry until the HAL hands it to the
	// FIMM; the ingress credit returns here.
	ep.creditBack(cmd)
	ep.hal.AcquireG(cmd, gHAL)
}

// moveUpstream stages read data in the endpoint and transfers it across
// the shared local bus, then completes the command. The FIMM slot is
// released as soon as the data has left the module: from here on the
// command contends only for the shared bus, so time spent below is the
// cluster's link contention, not storage contention.
func (ep *Endpoint) moveUpstream(cmd *Command) {
	ep.releaseFIMMSlot(cmd.FIMM)
	ep.staging.AcquireG(cmd, gStageRead)
}

func (ep *Endpoint) accountRead(cmd *Command) {
	if cmd.Background {
		ep.stats.BgReads++
	} else {
		ep.stats.Reads++
	}
	ep.stats.StorageWaitNS += cmd.Result.StorageWait
	ep.stats.LinkWaitNS += cmd.Result.LinkWait
	ep.stats.LinkXferNS += cmd.Result.LinkXfer
}

// finishRead releases staging and emits the completion: a data-bearing
// completion packet for host reads, or the callback for background
// reads (whose data stays in the endpoint for cloning).
func (ep *Endpoint) finishRead(cmd *Command) {
	if cmd.Background || ep.up == nil {
		ep.staging.Release()
		if cmd.OnComplete != nil {
			cmd.OnComplete(cmd) //simlint:coldalloc audited continuation dispatch; the indirect call itself does not allocate
		}
		return
	}
	pkt := ep.newPacket()
	pkt.Kind = pcie.Completion
	pkt.Addr = ep.routeAddr()
	pkt.Payload = units.PagesToBytes(cmd.Pages(), ep.params.FIMM.Nand.PageSizeBytes)
	pkt.Meta = cmd
	ep.up.Send(pkt, ep)
	if cmd.OnComplete != nil {
		cmd.OnComplete(cmd) //simlint:coldalloc audited continuation dispatch; the indirect call itself does not allocate
	}
}

// admitWrite takes a write into the endpoint write buffer, acks it
// upstream immediately (writes return early), and flushes the data to
// flash in the background.
func (ep *Endpoint) admitWrite(cmd *Command) {
	ep.writeBuf.AcquireG(cmd, gWBuf)
}

// admitBufferedWrite runs once the write-buffer entry is granted: ack
// the host early, then flush in the background.
func (ep *Endpoint) admitBufferedWrite(cmd *Command, bufWait simx.Time) {
	cmd.Result.EPWait = ep.eng.Now() - cmd.arrived
	ep.stats.EPWaitNS += cmd.Result.EPWait
	ep.stats.WriteBufStall += bufWait
	ep.creditBack(cmd)
	cmd.AckResult = cmd.Result
	if !cmd.Background && ep.up != nil {
		ack := ep.newPacket()
		ack.Kind, ack.Addr, ack.Meta = pcie.Completion, ep.routeAddr(), cmd
		ep.up.Send(ack, nil)
	}
	if !cmd.Background && cmd.OnComplete != nil {
		// Host writes complete at buffering time; the flush result
		// no longer affects the request.
		cmd.OnComplete(cmd) //simlint:coldalloc audited continuation dispatch; the indirect call itself does not allocate
	}
	ep.flushWrite(cmd)
}

// flushWrite moves buffered write data over the shared bus and programs
// the FIMM, then frees the buffer entry.
func (ep *Endpoint) flushWrite(cmd *Command) {
	ep.bus.AcquireG(cmd, gBusFlush)
}

// finishFlush retires a write flush: the FIMM has programmed the page
// (or failed) and the buffer entry frees up.
func (ep *Endpoint) finishFlush(cmd *Command, r fimm.Result) {
	ep.writeBuf.Release()
	if r.Err != nil {
		cmd.Result.Err = r.Err
		if cmd.Background && cmd.OnComplete != nil {
			cmd.OnComplete(cmd) //simlint:coldalloc audited continuation dispatch; the indirect call itself does not allocate
		}
		if cmd.Flushed != nil {
			cmd.Flushed.OnCommandFlushed(cmd)
		}
		return
	}
	cmd.Result.StorageWait += r.StorageWait
	cmd.Result.Texe += r.Texe
	cmd.Result.LinkWait += r.ChannelWait
	cmd.Result.LinkXfer += r.ChannelXfer
	if cmd.Background {
		ep.stats.BgWrites++
	} else {
		ep.stats.Writes++
	}
	ep.stats.StorageWaitNS += cmd.Result.StorageWait
	ep.stats.LinkWaitNS += cmd.Result.LinkWait
	ep.stats.LinkXferNS += cmd.Result.LinkXfer
	if cmd.Background && cmd.OnComplete != nil {
		cmd.OnComplete(cmd) //simlint:coldalloc audited continuation dispatch; the indirect call itself does not allocate
	}
	if cmd.Flushed != nil {
		cmd.Flushed.OnCommandFlushed(cmd)
	}
}

// Erase runs a block erase (GC traffic) on a FIMM.
func (ep *Endpoint) Erase(fimmSlot, pkg int, addrs []nand.Addr, done func(error)) {
	if fimmSlot < 0 || fimmSlot >= len(ep.fimms) {
		done(fmt.Errorf("cluster %v: FIMM slot %d out of range", ep.id, fimmSlot))
		return
	}
	if ep.unplugged {
		done(fmt.Errorf("cluster %v: %w", ep.id, ErrUnplugged))
		return
	}
	ep.fimms[fimmSlot].Erase(pkg, addrs, func(r fimm.Result) {
		if r.Err == nil {
			ep.stats.Erases++
		}
		done(r.Err)
	})
}

// routeAddr reports the fabric address identifying this cluster, used
// on upstream packets so switches can route completions.
func (ep *Endpoint) routeAddr() uint64 {
	return uint64(ep.id.Switch)<<32 | uint64(ep.id.Cluster)
}

var (
	_ pcie.Receiver = (*Endpoint)(nil)
	_ pcie.Accepted = (*Endpoint)(nil)
	_ fimm.Done     = (*Command)(nil)
	_ simx.Grantee  = (*Command)(nil)
	_ simx.Handler  = (*Command)(nil)
)

// DebugOccupancy reports internal resource occupancy (diagnostics).
func (ep *Endpoint) DebugOccupancy() (busInUse, busQ, stagingInUse, stagingQ, wbufInUse, wbufQ, halQ int) {
	return ep.bus.InUse(), ep.bus.QueueLen(),
		ep.staging.InUse(), ep.staging.QueueLen(),
		ep.writeBuf.InUse(), ep.writeBuf.QueueLen(), ep.hal.QueueLen()
}
