package cluster

import (
	"strings"
	"testing"

	"triplea/internal/nand"
	"triplea/internal/pcie"
	"triplea/internal/simx"
	"triplea/internal/topo"
)

func testParams() Params {
	p := DefaultParams()
	p.NumFIMMs = 2
	p.FIMM.NumPackages = 2
	p.FIMM.Nand.BlocksPerPlane = 8
	p.FIMM.Nand.PagesPerBlock = 4
	return p
}

func id0() topo.ClusterID { return topo.ClusterID{Switch: 0, Cluster: 0} }

// populate force-programs a page so reads succeed.
func populate(t *testing.T, ep *Endpoint, f, pkg int, a nand.Addr) {
	t.Helper()
	if err := ep.FIMM(f).Package(pkg).ForcePopulate(a); err != nil {
		t.Fatalf("ForcePopulate: %v", err)
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	// 16-pin 400 MHz DDR bus = 1.6 GB/s; 4 KiB page = 2560 ns.
	if got := DefaultParams().BusPageTime(); got != 2560 {
		t.Errorf("BusPageTime = %v, want 2560ns", got)
	}
}

func TestParamsValidation(t *testing.T) {
	for _, mod := range []func(*Params){
		func(p *Params) { p.NumFIMMs = 0 },
		func(p *Params) { p.BusPins = 5 },
		func(p *Params) { p.BusMHz = 0 },
		func(p *Params) { p.QueueEntries = 0 },
		func(p *Params) { p.FIMMQueueDepth = 0 },
		func(p *Params) { p.WriteBufEntries = 0 },
		func(p *Params) { p.StagingEntries = 0 },
		func(p *Params) { p.FIMM.NumPackages = 0 },
	} {
		p := DefaultParams()
		mod(&p)
		if p.Validate() == nil {
			t.Errorf("Validate accepted bad params")
		}
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Error("Op.String mismatch")
	}
}

func TestReadCompletesWithTiming(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	ep := New(eng, id0(), p)
	a := nand.Addr{}
	populate(t, ep, 0, 0, a)

	var done *Command
	start := eng.Now()
	ep.Submit(&Command{Op: OpRead, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{a},
		OnComplete: func(c *Command) { done = c }})
	eng.Run()

	if done == nil {
		t.Fatal("read never completed")
	}
	if done.Result.Err != nil {
		t.Fatalf("read error: %v", done.Result.Err)
	}
	r := done.Result
	n := p.FIMM.Nand
	if r.Texe != n.TCmdOverhead+n.TRead+n.TECCPerPage {
		t.Errorf("Texe = %v", r.Texe)
	}
	wantXfer := p.FIMM.PageTransferTime() + p.BusPageTime()
	if r.LinkXfer != wantXfer {
		t.Errorf("LinkXfer = %v, want %v (channel + bus)", r.LinkXfer, wantXfer)
	}
	elapsed := eng.Now() - start
	if elapsed != r.DeviceLatency()+p.HALLatency {
		t.Errorf("elapsed %v != DeviceLatency %v + HAL %v", elapsed, r.DeviceLatency(), p.HALLatency)
	}
	if ep.Stats().Reads != 1 {
		t.Errorf("stats.Reads = %d", ep.Stats().Reads)
	}
}

func TestFIMMQueueDepthCausesEPWait(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	p.FIMMQueueDepth = 1
	p.FIMM.Nand.CacheOK = false
	ep := New(eng, id0(), p)
	a0, a1 := nand.Addr{Page: 0}, nand.Addr{Page: 1}
	populate(t, ep, 0, 0, a0)
	populate(t, ep, 0, 0, a1)

	var first, second *Command
	ep.Submit(&Command{Op: OpRead, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{a0},
		OnComplete: func(c *Command) { first = c }})
	ep.Submit(&Command{Op: OpRead, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{a1},
		OnComplete: func(c *Command) { second = c }})
	if got := ep.StalledPerFIMM(); got[0] != 1 || got[1] != 0 {
		t.Errorf("StalledPerFIMM = %v, want [1 0]", got)
	}
	if ep.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1", ep.QueueLen())
	}
	eng.Run()

	if first == nil || second == nil {
		t.Fatal("reads incomplete")
	}
	if first.Result.EPWait != 0 {
		t.Errorf("first EPWait = %v, want 0", first.Result.EPWait)
	}
	if second.Result.EPWait == 0 {
		t.Error("second read did not wait for the FIMM slot")
	}
	if ep.QueueLen() != 0 {
		t.Errorf("QueueLen = %d after drain", ep.QueueLen())
	}
}

func TestIndependentFIMMsDontQueue(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	p.FIMMQueueDepth = 1
	ep := New(eng, id0(), p)
	a := nand.Addr{}
	populate(t, ep, 0, 0, a)
	populate(t, ep, 1, 0, a)

	var r0, r1 *Command
	ep.Submit(&Command{Op: OpRead, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{a},
		OnComplete: func(c *Command) { r0 = c }})
	ep.Submit(&Command{Op: OpRead, FIMM: 1, Pkg: 0, Addrs: []nand.Addr{a},
		OnComplete: func(c *Command) { r1 = c }})
	eng.Run()
	if r0.Result.EPWait != 0 || r1.Result.EPWait != 0 {
		t.Errorf("EPWaits = %v, %v; different FIMMs should not queue on each other",
			r0.Result.EPWait, r1.Result.EPWait)
	}
	// But the shared bus serialises their transfers: one sees LinkWait.
	if r0.Result.LinkWait+r1.Result.LinkWait == 0 {
		t.Error("no link contention on the shared bus")
	}
}

func TestWriteEarlyAck(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	ep := New(eng, id0(), p)
	var ackAt simx.Time = -1
	ep.Submit(&Command{Op: OpWrite, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{{}},
		OnComplete: func(c *Command) { ackAt = eng.Now() }})
	eng.Run()
	if ackAt != 0 {
		t.Errorf("write acked at %v, want immediate (buffered)", ackAt)
	}
	// The flush still happened: the page is programmed and stats count it.
	if ep.FIMM(0).Package(0).PageStateAt(nand.Addr{}) != nand.PageValid {
		t.Error("flush did not program the page")
	}
	if ep.Stats().Writes != 1 {
		t.Errorf("stats.Writes = %d", ep.Stats().Writes)
	}
}

func TestWriteBufferStall(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	p.WriteBufEntries = 1
	ep := New(eng, id0(), p)
	var acks []simx.Time
	for i := 0; i < 3; i++ {
		a := nand.Addr{Page: i}
		ep.Submit(&Command{Op: OpWrite, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{a},
			OnComplete: func(c *Command) { acks = append(acks, eng.Now()) }})
	}
	eng.Run()
	if len(acks) != 3 {
		t.Fatalf("%d acks", len(acks))
	}
	if acks[0] != 0 {
		t.Errorf("first ack at %v", acks[0])
	}
	if acks[1] == 0 || acks[2] <= acks[1] {
		t.Errorf("later writes should stall for buffer evictions: %v", acks)
	}
	if ep.Stats().WriteBufStall == 0 {
		t.Error("WriteBufStall not accounted")
	}
}

func TestBackgroundWriteCompletesAfterProgram(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	ep := New(eng, id0(), p)
	var doneAt simx.Time = -1
	ep.Submit(&Command{Op: OpWrite, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{{}}, Background: true,
		OnComplete: func(c *Command) { doneAt = eng.Now() }})
	eng.Run()
	if doneAt <= 0 {
		t.Errorf("background write completed at %v, want after program", doneAt)
	}
	if ep.Stats().BgWrites != 1 || ep.Stats().Writes != 0 {
		t.Errorf("stats = %+v", ep.Stats())
	}
}

func TestQueueFullDetection(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	p.QueueEntries = 2
	p.FIMMQueueDepth = 1
	p.FIMM.Nand.CacheOK = false
	ep := New(eng, id0(), p)
	for i := 0; i < 4; i++ {
		populate(t, ep, 0, 0, nand.Addr{Page: i})
	}
	for i := 0; i < 4; i++ {
		ep.Submit(&Command{Op: OpRead, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{{Page: i}}})
	}
	// 1 issued + 3 queued: queue (cap 2) is over capacity.
	if !ep.QueueFull() {
		t.Error("QueueFull = false with 3 queued, capacity 2")
	}
	if ep.Stats().QueueFullHits == 0 {
		t.Error("QueueFullHits not counted")
	}
	eng.Run()
}

func TestErase(t *testing.T) {
	eng := simx.NewEngine()
	ep := New(eng, id0(), testParams())
	var gotErr error
	called := false
	ep.Erase(0, 0, []nand.Addr{{}}, func(err error) { called = true; gotErr = err })
	eng.Run()
	if !called || gotErr != nil {
		t.Fatalf("erase: called=%v err=%v", called, gotErr)
	}
	if ep.Stats().Erases != 1 {
		t.Errorf("stats.Erases = %d", ep.Stats().Erases)
	}
	ep.Erase(9, 0, []nand.Addr{{}}, func(err error) { gotErr = err })
	if gotErr == nil {
		t.Error("out-of-range erase accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	eng := simx.NewEngine()
	ep := New(eng, id0(), testParams())
	var errs []error
	collect := func(c *Command) { errs = append(errs, c.Result.Err) }
	ep.Submit(&Command{Op: OpRead, FIMM: 9, Addrs: []nand.Addr{{}}, OnComplete: collect})
	ep.Submit(&Command{Op: OpRead, FIMM: 0, OnComplete: collect})
	eng.Run()
	if len(errs) != 2 || errs[0] == nil || errs[1] == nil {
		t.Fatalf("validation errors = %v", errs)
	}
	if !strings.Contains(errs[0].Error(), "out of range") {
		t.Errorf("err = %v", errs[0])
	}
}

func TestReadErrorReleasesSlot(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	p.FIMMQueueDepth = 1
	ep := New(eng, id0(), p)
	populate(t, ep, 0, 0, nand.Addr{})
	var bad, good *Command
	// First read hits an erased page (error), second is fine; the error
	// must release the FIMM slot so the second can issue.
	ep.Submit(&Command{Op: OpRead, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{{Page: 3}},
		OnComplete: func(c *Command) { bad = c }})
	ep.Submit(&Command{Op: OpRead, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{{}},
		OnComplete: func(c *Command) { good = c }})
	eng.Run()
	if bad == nil || bad.Result.Err == nil {
		t.Fatal("expected first read to fail")
	}
	if good == nil || good.Result.Err != nil {
		t.Fatalf("second read: %+v", good)
	}
}

func TestUpstreamCompletionPacket(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	ep := New(eng, id0(), p)
	populate(t, ep, 0, 0, nand.Addr{})

	var got []*pcie.Packet
	sink := recvFunc(func(pkt *pcie.Packet, from *pcie.Link) {
		got = append(got, pkt)
		from.ReturnCredit()
	})
	ep.SetUpstream(pcie.NewLink(eng, "up", 4_000_000_000, 100, 8, sink))

	cmd := &Command{Op: OpRead, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{{}}, Meta: "req-7"}
	ep.Submit(cmd)
	eng.Run()

	if len(got) != 1 {
		t.Fatalf("%d upstream packets, want 1", len(got))
	}
	pkt := got[0]
	if pkt.Kind != pcie.Completion || pkt.Payload != p.FIMM.Nand.PageSizeBytes {
		t.Errorf("completion = %v", pkt)
	}
	if pkt.Meta.(*Command) != cmd {
		t.Error("completion does not carry the command")
	}
}

// recvFunc adapts a function to pcie.Receiver.
type recvFunc func(*pcie.Packet, *pcie.Link)

func (f recvFunc) Receive(p *pcie.Packet, l *pcie.Link) { f(p, l) }

func TestReceiveFromLink(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	ep := New(eng, id0(), p)
	populate(t, ep, 0, 0, nand.Addr{})

	ingress := pcie.NewLink(eng, "in", 4_000_000_000, 100, 2, ep)
	var done *Command
	cmd := &Command{Op: OpRead, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{{}},
		OnComplete: func(c *Command) { done = c }}
	ingress.Send(&pcie.Packet{Kind: pcie.MemRead, Meta: cmd}, nil)
	eng.Run()
	if done == nil || done.Result.Err != nil {
		t.Fatalf("packet-borne read: %+v", done)
	}
	// Credit must have been returned: both credits free again.
	if ingress.CreditsAvailable() != 2 {
		t.Errorf("credits = %d, want 2", ingress.CreditsAvailable())
	}
}

func TestBusUtilizationSampling(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	ep := New(eng, id0(), p)
	populate(t, ep, 0, 0, nand.Addr{})
	base, busy0 := eng.Now(), ep.BusBusyNS()
	ep.Submit(&Command{Op: OpRead, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{{}}})
	eng.Run()
	u := ep.BusUtilizationSince(base, busy0)
	if u <= 0 || u >= 1 {
		t.Errorf("bus utilization = %v, want in (0,1)", u)
	}
}

func TestHostPriorityScheduling(t *testing.T) {
	run := func(hostPriority bool) []string {
		eng := simx.NewEngine()
		p := testParams()
		p.FIMMQueueDepth = 1
		p.FIMM.Nand.CacheOK = false
		p.HostPriority = hostPriority
		ep := New(eng, id0(), p)
		for i := 0; i < 4; i++ {
			populate(t, ep, 0, 0, nand.Addr{Page: i})
		}
		var order []string
		submit := func(label string, page int, bg bool) {
			ep.Submit(&Command{
				Op: OpRead, FIMM: 0, Pkg: 0, Background: bg,
				Addrs:      []nand.Addr{{Page: page}},
				OnComplete: func(*Command) { order = append(order, label) },
			})
		}
		// First read occupies the FIMM; then two background reads queue,
		// then a host read arrives.
		submit("first", 0, true)
		submit("bg1", 1, true)
		submit("bg2", 2, true)
		submit("host", 3, false)
		eng.Run()
		return order
	}

	fifo := run(false)
	if fifo[3] != "host" {
		t.Errorf("FIFO order = %v, want host last", fifo)
	}
	prio := run(true)
	if prio[1] != "host" {
		t.Errorf("host-priority order = %v, want host second", prio)
	}
	// Background order is preserved in both cases.
	for _, order := range [][]string{fifo, prio} {
		bgSeen := []string{}
		for _, l := range order {
			if l == "bg1" || l == "bg2" {
				bgSeen = append(bgSeen, l)
			}
		}
		if bgSeen[0] != "bg1" || bgSeen[1] != "bg2" {
			t.Errorf("background order not preserved: %v", order)
		}
	}
}

func TestSlotLatencyScale(t *testing.T) {
	p := testParams()
	p.SlotLatencyScale = []float64{4} // slot 0 degraded; slot 1 unlisted
	ep := New(simx.NewEngine(), id0(), p)
	n := p.FIMM.Nand
	if got := ep.FIMM(0).Params().Nand.TRead; got != 4*n.TRead {
		t.Errorf("degraded slot TRead = %v, want %v", got, 4*n.TRead)
	}
	if got := ep.FIMM(1).Params().Nand.TRead; got != n.TRead {
		t.Errorf("healthy slot TRead = %v, want %v", got, n.TRead)
	}
	// Factors <= 1 are no-ops.
	if got := scaleFIMMLatency(p.FIMM, 0.5).Nand.TProg; got != n.TProg {
		t.Errorf("sub-unity scale changed TProg: %v", got)
	}
}

func TestAccessors(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	ep := New(eng, id0(), p)
	if ep.ID() != id0() {
		t.Errorf("ID = %v", ep.ID())
	}
	if ep.Params().NumFIMMs != p.NumFIMMs {
		t.Errorf("Params = %+v", ep.Params())
	}
	b1, b2, s1, s2, w1, w2, hq := ep.DebugOccupancy()
	if b1+b2+s1+s2+w1+w2+hq != 0 {
		t.Error("fresh endpoint has occupancy")
	}
}

func TestForwardRequiresUpstream(t *testing.T) {
	eng := simx.NewEngine()
	ep := New(eng, id0(), testParams())
	defer func() {
		if recover() == nil {
			t.Error("Forward without upstream did not panic")
		}
	}()
	ep.Forward(&pcie.Packet{})
}

func TestServeBufferHit(t *testing.T) {
	eng := simx.NewEngine()
	p := testParams()
	ep := New(eng, id0(), p)
	var done *Command
	// A buffer-hit read completes without any device page existing.
	ep.Submit(&Command{Op: OpRead, FIMM: 0, Pkg: 0, Addrs: []nand.Addr{{}},
		BufferHit: true, Background: true,
		OnComplete: func(c *Command) { done = c }})
	eng.Run()
	if done == nil || done.Result.Err != nil {
		t.Fatalf("buffer hit: %+v", done)
	}
	if done.Result.Texe != 0 {
		t.Errorf("buffer hit touched the flash: %+v", done.Result)
	}
	if ep.Stats().BufferHits != 1 {
		t.Errorf("BufferHits = %d", ep.Stats().BufferHits)
	}
	// Completion was fast: HAL latency only.
	if eng.Now() != p.HALLatency {
		t.Errorf("buffer hit took %v, want %v", eng.Now(), p.HALLatency)
	}
}
