//go:build simcheck

package cluster

import (
	"testing"

	"triplea/internal/simx"
)

// TestSimcheckDetectsLostCommand desynchronizes pendingLen from the
// queues and expects the conservation check to panic.
func TestSimcheckDetectsLostCommand(t *testing.T) {
	ep := New(simx.NewEngine(), id0(), testParams())
	ep.pendingLen++ // claim a command the queues don't hold
	defer func() {
		if recover() == nil {
			t.Fatal("ckConserve accepted pendingLen out of sync with queues")
		}
	}()
	ep.ckConserve()
}
