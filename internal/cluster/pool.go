package cluster

// CommandPool is a single-threaded intrusive free-list of Command
// objects, mirroring pcie.Pool for packets. The array layer draws one
// command per page operation and returns it at the operation's single
// release point (delivery for reads, flush retirement for writes).
// Plain single-threaded state — not sync.Pool — per the nospawn rule.
type CommandPool struct {
	free    *Command
	freeLen int
}

// Get pops a recycled command (zeroed) or allocates a fresh one.
func (p *CommandPool) Get() *Command {
	c := p.free
	if c == nil {
		c = &Command{} //simlint:coldalloc pool miss: command free-list refill
		c.ck.Fresh("cluster.Command")
		return c
	}
	p.free = c.next
	p.freeLen--
	c.ck.Checkout("cluster.Command")
	*c = Command{}
	return c
}

// Put returns a command to the free-list. The caller must not touch
// the command afterwards; under `-tags simcheck` the embedded guard
// panics on double-Put and use-after-Put.
func (p *CommandPool) Put(c *Command) {
	if c == nil {
		panic("cluster: Put of nil command")
	}
	c.ck.Release("cluster.Command")
	c.Meta, c.OnComplete, c.Flushed = nil, nil, nil
	c.Addrs = nil
	c.ep, c.from = nil, nil
	c.next = p.free
	p.free = c
	p.freeLen++
}

// Free reports how many recycled commands are idle in the pool.
func (p *CommandPool) Free() int { return p.freeLen }
