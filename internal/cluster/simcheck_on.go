//go:build simcheck

package cluster

import "fmt"

// simcheckEnabled gates the runtime invariant checks; see the simx
// package for the convention.
const simcheckEnabled = true

type ckState struct {
	submitted uint64 // reads accepted by enqueueRead
	issued    uint64 // reads handed to a FIMM slot
}

// ckSubmitted counts a read entering the endpoint queue machinery.
func (ep *Endpoint) ckSubmitted() { ep.ck.submitted++ }

// ckIssued runs after issueRead takes a FIMM slot: the slot count must
// respect the configured depth, and conservation must hold — every
// submitted read is either issued or still pending, with none duplicated
// or dropped by the queue shuffling in enqueueRead/releaseFIMMSlot.
func (ep *Endpoint) ckIssued(f int) {
	ep.ck.issued++
	if ep.outstanding[f] > ep.params.FIMMQueueDepth {
		panic(fmt.Sprintf("simcheck: FIMM %d has %d outstanding reads, depth limit %d",
			f, ep.outstanding[f], ep.params.FIMMQueueDepth))
	}
	ep.ckConserve()
}

// ckQueued runs after enqueueRead parks a read in the pending queue.
func (ep *Endpoint) ckQueued() { ep.ckConserve() }

// ckReleased runs after releaseFIMMSlot returns a slot.
func (ep *Endpoint) ckReleased(f int) {
	if ep.outstanding[f] < 0 {
		panic(fmt.Sprintf("simcheck: FIMM %d outstanding count went negative", f))
	}
	ep.ckConserve()
}

func (ep *Endpoint) ckConserve() {
	total := 0
	for _, q := range ep.pending {
		total += len(q)
	}
	if total != ep.pendingLen {
		panic(fmt.Sprintf("simcheck: pendingLen %d but queues hold %d commands", ep.pendingLen, total))
	}
	if ep.ck.issued+uint64(ep.pendingLen) != ep.ck.submitted {
		panic(fmt.Sprintf("simcheck: queue conservation violated: submitted %d != issued %d + pending %d",
			ep.ck.submitted, ep.ck.issued, ep.pendingLen))
	}
}
