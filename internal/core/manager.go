// Package core implements the paper's primary contribution: the
// autonomic flash array management module (Section 4). Attached to an
// array's hook points it turns the non-autonomic baseline into
// Triple-A:
//
//   - Link contention management (Section 4.1): straggler I/O requests
//     are detected with Equation 1, a cold cluster under the same
//     switch is selected with Equation 2, and the straggler's data is
//     migrated there — overlapped with the in-flight host transfer via
//     shadow cloning.
//   - Storage contention management (Section 4.2): laggard FIMMs are
//     detected by latency monitoring (Equation 3) or queue examination,
//     and the physical data layout is reshaped: hot read data drains to
//     sibling FIMMs, stalled writes are redirected, and when every FIMM
//     in a cluster is a laggard the data leaves the cluster entirely.
package core

import (
	"triplea/internal/array"
	"triplea/internal/cluster"
	"triplea/internal/decision"
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/trace"
	"triplea/internal/units"
)

// LaggardStrategy selects how laggards are detected (Section 4.2).
type LaggardStrategy int

const (
	// LatencyMonitoring detects a laggard when the expected service
	// time of its stalled requests violates the SLA (Equation 3).
	LatencyMonitoring LaggardStrategy = iota
	// QueueExamination detects laggards only when the endpoint queue is
	// full, blaming the FIMM holding the most stalled entries.
	QueueExamination
)

func (s LaggardStrategy) String() string {
	switch s {
	case LatencyMonitoring:
		return "latency-monitoring"
	case QueueExamination:
		return "queue-examination"
	}
	return "unknown"
}

// Options configures the manager. The zero value disables everything;
// DefaultOptions enables the full Triple-A feature set.
type Options struct {
	LinkManagement    bool // hot-cluster detection + autonomic data migration
	StorageManagement bool // laggard detection + data-layout reshaping
	ShadowCloning     bool // overlap migration reads with host transfers
	Strategy          LaggardStrategy

	// UtilWindow is the sliding window for Equation 2's bus-utilisation
	// sampling.
	UtilWindow simx.Time
	// MaxInflightMigrations bounds concurrent background moves so the
	// repair traffic cannot swamp the fabric.
	MaxInflightMigrations int
	// WearAware breaks placement ties toward less-worn FIMMs — the
	// central module knows every module's erase counts (Section 6.7),
	// so reshaping doubles as global wear leveling.
	WearAware bool
	// ReshapeBatch is how many recently served pages of a laggard are
	// reshaped per detection. The paper moves the data of all the
	// stalled requests at once (Figure 8); the manager approximates
	// their identity with the laggard's most recent working set.
	ReshapeBatch int
}

// DefaultOptions returns the full Triple-A configuration.
func DefaultOptions() Options {
	return Options{
		LinkManagement:        true,
		StorageManagement:     true,
		ShadowCloning:         true,
		Strategy:              LatencyMonitoring,
		UtilWindow:            200 * simx.Microsecond,
		MaxInflightMigrations: 256,
		WearAware:             true,
		ReshapeBatch:          8,
	}
}

// Stats counts the manager's decisions.
type Stats struct {
	HotDetections    uint64 // Equation 1 firings
	ColdMisses       uint64 // hot detections with no cold cluster available
	Migrations       uint64 // cross-cluster page migrations started
	ShadowClones     uint64 // migrations that skipped the device read
	LaggardsDetected uint64
	Reshapes         uint64 // intra-cluster page moves started
	WriteRedirects   uint64 // writes steered away from laggards
	MigrationErrors  uint64
}

// Manager is the autonomic flash array management module.
type Manager struct {
	arr *array.Array
	opt Options

	busTime  simx.Time // tDMA: shared-bus time per page
	texeRead simx.Time // nominal read cell time
	nFIMM    int
	sla      simx.Time

	// Equation 2 sampling state, per flat cluster index.
	utilAt   []simx.Time
	utilBusy []simx.Time
	utilLast []float64

	inflight  int
	migrating map[int64]bool // LPNs currently moving

	// recent tracks each FIMM's most recently served LPNs (a proxy for
	// the data its stalled requests want), fueling batch reshaping.
	recent map[int]*lpnRing

	// laggardScratch backs detectLaggards, which runs on every page
	// completion and every write-target decision; reusing one buffer
	// keeps both hot paths allocation-free. Valid until the next call.
	laggardScratch []bool

	// dec is the array's decision flight recorder; nil when recording
	// is off, making every recording hook a single nil check.
	dec *decision.Recorder

	stats Stats
}

// lpnRing is a fixed-size ring of recently served logical pages.
type lpnRing struct {
	buf  []int64
	next int
	full bool
}

func newLPNRing(n int) *lpnRing { return &lpnRing{buf: make([]int64, n)} } //simlint:coldalloc first touch: per-FIMM recency ring

func (r *lpnRing) add(lpn int64) {
	r.buf[r.next] = lpn
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

// snapshot lists the ring's contents, most recent first, deduplicated.
func (r *lpnRing) snapshot() []int64 {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	seen := make(map[int64]bool, n)
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		lpn := r.buf[idx]
		if !seen[lpn] {
			seen[lpn] = true
			out = append(out, lpn)
		}
	}
	return out
}

// Attach builds a manager and registers it on the array. The array
// becomes a Triple-A; call before Run.
func Attach(a *array.Array, opt Options) *Manager {
	cfg := a.Config()
	if opt.UtilWindow <= 0 {
		opt.UtilWindow = DefaultOptions().UtilWindow
	}
	if opt.MaxInflightMigrations <= 0 {
		opt.MaxInflightMigrations = DefaultOptions().MaxInflightMigrations
	}
	n := cfg.Geometry.Nand
	m := &Manager{
		arr:       a,
		opt:       opt,
		busTime:   cfg.BusPageTime(),
		texeRead:  n.TCmdOverhead + n.TRead + n.TECCPerPage,
		nFIMM:     cfg.Geometry.FIMMsPerCluster,
		sla:       cfg.SLA,
		utilAt:    make([]simx.Time, cfg.Geometry.TotalClusters()),
		utilBusy:  make([]simx.Time, cfg.Geometry.TotalClusters()),
		utilLast:  make([]float64, cfg.Geometry.TotalClusters()),
		migrating: make(map[int64]bool),
		recent:    make(map[int]*lpnRing),

		laggardScratch: make([]bool, cfg.Geometry.FIMMsPerCluster),
	}
	if opt.ReshapeBatch <= 0 {
		m.opt.ReshapeBatch = DefaultOptions().ReshapeBatch
	}
	m.dec = a.Decisions()
	a.SetHooks(m)
	return m
}

// Stats returns a snapshot of manager activity.
func (m *Manager) Stats() Stats { return m.stats }

// Options returns the active configuration.
func (m *Manager) Options() Options { return m.opt }

// OnPageComplete implements array.Hooks: every finished page command
// runs the two detectors.
func (m *Manager) OnPageComplete(pc array.PageComplete) {
	if m.opt.StorageManagement {
		m.rememberServed(pc)
	}
	if m.opt.LinkManagement && pc.Op == trace.Read {
		m.manageLinkContention(pc)
	}
	if m.opt.StorageManagement {
		m.manageStorageContention(pc)
	}
}

// rememberServed records the page in its FIMM's recent-working-set ring.
func (m *Manager) rememberServed(pc array.PageComplete) {
	g := m.arr.Config().Geometry
	flat := topo.FIMMID{ClusterID: pc.Cluster, FIMM: pc.FIMM}.Flat(g)
	r := m.recent[flat]
	if r == nil {
		r = newLPNRing(4 * m.opt.ReshapeBatch)
		m.recent[flat] = r
	}
	r.add(pc.LPN)
}

// hotThreshold is the right-hand side of Equation 1:
// tDMA*(npage + nFIMM - 1) + texe*npage.
func (m *Manager) hotThreshold(npage units.Pages) simx.Time {
	waves := npage + units.Pages(m.nFIMM) - 1
	return units.ScaleByPages(m.busTime, waves) + units.ScaleByPages(m.texeRead, npage)
}

// manageLinkContention applies Equation 1 to the completed request and,
// on detection, migrates the straggler's page to a cold cluster under
// the same switch. Equation 1 captures the regime where the shared bus
// is busy most of the time, so detection additionally requires the
// cluster's bus utilisation to exceed the two-FIMM level — a transient
// die collision on an otherwise idle cluster is not a hot cluster.
func (m *Manager) manageLinkContention(pc array.PageComplete) {
	if pc.Result.DeviceLatency() < m.hotThreshold(pc.Pages) {
		return
	}
	if m.utilization(pc.Cluster) < 2/float64(m.nFIMM) {
		return
	}
	m.stats.HotDetections++
	cold, ok := m.coldClusterNear(pc.Cluster, decision.Migration)
	if !ok {
		m.stats.ColdMisses++
		return
	}
	dst := topo.FIMMID{ClusterID: cold, FIMM: m.leastStalledFIMM(cold)}
	m.startMove(pc.LPN, dst, true /* data just staged in the source EP */)
}

// manageStorageContention runs laggard detection on the completed
// command's cluster and reshapes the just-served page off a laggard.
func (m *Manager) manageStorageContention(pc array.PageComplete) {
	ep := m.arr.Endpoint(pc.Cluster)
	laggards := m.detectLaggards(ep)
	if len(laggards) == 0 {
		return
	}
	if !laggards[pc.FIMM] {
		return // the served page does not live on a laggard
	}
	m.stats.LaggardsDetected++

	if m.allLaggards(laggards) {
		// Every FIMM is a laggard: reshaping inside the cluster cannot
		// help; migrate across clusters like hot-cluster management.
		if cold, ok := m.coldClusterNear(pc.Cluster, decision.Migration); ok {
			dst := topo.FIMMID{ClusterID: cold, FIMM: m.leastStalledFIMM(cold)}
			m.startMove(pc.LPN, dst, pc.Op == trace.Read)
		} else {
			m.stats.ColdMisses++
		}
		return
	}
	// Reshape: move the laggard's hot working set — the just-served
	// page plus its most recently served pages (a proxy for the stalled
	// requests' data, Figure 8) — to the least-stalled sibling FIMMs.
	// The just-served page can shadow-copy; the rest need device reads
	// unless still buffered.
	dst := topo.FIMMID{ClusterID: pc.Cluster, FIMM: m.siblingFIMM(ep, laggards, decision.Reshape)}
	m.stats.Reshapes++
	m.startMove(pc.LPN, dst, true)
	m.reshapeBatch(pc, laggards)
}

// reshapeBatch drains up to ReshapeBatch recent pages off the laggard.
// It only runs while the cluster's shared bus has headroom: batch moves
// need device reads, and burning a saturated bus on repair traffic
// would convert storage contention into link contention.
func (m *Manager) reshapeBatch(pc array.PageComplete, laggards []bool) { //simlint:cold detection-gated batch reshape, not per-event work
	if m.utilization(pc.Cluster) > 0.5 {
		return
	}
	g := m.arr.Config().Geometry
	laggard := topo.FIMMID{ClusterID: pc.Cluster, FIMM: pc.FIMM}
	ring := m.recent[laggard.Flat(g)]
	if ring == nil {
		return
	}
	ep := m.arr.Endpoint(pc.Cluster)
	moved := 0
	for _, lpn := range ring.snapshot() {
		if moved >= m.opt.ReshapeBatch {
			break
		}
		if lpn == pc.LPN || m.migrating[lpn] {
			continue
		}
		// Only pages still resident on the laggard are worth moving.
		if m.arr.FTL().ResidentFIMM(lpn) != laggard {
			continue
		}
		dst := topo.FIMMID{ClusterID: pc.Cluster, FIMM: m.siblingFIMM(ep, laggards, decision.Reshape)}
		m.stats.Reshapes++
		m.startMove(lpn, dst, false /* not in the EP: device read needed */)
		moved++
	}
}

// WriteTarget implements array.Hooks: writes headed to a laggard are
// redirected to an adjacent FIMM within the same cluster (Section 4.2's
// write handling), or to a cold cluster when the whole cluster lags.
func (m *Manager) WriteTarget(lpn int64, resident topo.FIMMID) topo.FIMMID {
	if !m.opt.StorageManagement {
		return resident
	}
	ep := m.arr.Endpoint(resident.ClusterID)
	laggards := m.detectLaggards(ep)
	if len(laggards) == 0 || !laggards[resident.FIMM] {
		return resident
	}
	if m.allLaggards(laggards) {
		if cold, ok := m.coldClusterNear(resident.ClusterID, decision.WriteRedirect); ok {
			m.stats.WriteRedirects++
			return topo.FIMMID{ClusterID: cold, FIMM: m.leastStalledFIMM(cold)}
		}
		return resident
	}
	m.stats.WriteRedirects++
	return topo.FIMMID{ClusterID: resident.ClusterID, FIMM: m.siblingFIMM(ep, laggards, decision.WriteRedirect)}
}

// detectLaggards reports, per FIMM slot, whether the slot is a laggard
// under the configured strategy. A nil result means none. A non-nil
// result aliases the manager's scratch buffer and is valid only until
// the next detectLaggards call — both detectors run per event, so this
// path must not allocate.
func (m *Manager) detectLaggards(ep *cluster.Endpoint) []bool {
	stalled := ep.StalledPerFIMM()
	out := m.laggardScratch[:len(stalled)]
	for i := range out {
		out[i] = false
	}
	switch m.opt.Strategy {
	case QueueExamination:
		if !ep.QueueFull() {
			return nil
		}
		// Blame the slot(s) holding the most stalled entries.
		max := 0
		for _, n := range stalled {
			if n > max {
				max = n
			}
		}
		if max == 0 {
			return nil
		}
		any := false
		for i, n := range stalled {
			if n == max {
				out[i] = true
				any = true
			}
		}
		if !any {
			return nil
		}
		return out
	case LatencyMonitoring: // Equation 3
		perReq := m.busTime + m.texeRead
		any := false
		for i, n := range stalled {
			if simx.Time(n)*perReq > m.sla {
				out[i] = true
				any = true
			}
		}
		if !any {
			return nil
		}
		return out
	}
	return nil
}

// allLaggards reports whether every slot is marked.
func (m *Manager) allLaggards(laggards []bool) bool {
	for _, l := range laggards {
		if !l {
			return false
		}
	}
	return len(laggards) > 0
}

// siblingFIMM picks the least-stalled non-laggard FIMM of the cluster,
// breaking ties toward the least-worn module when wear awareness is on.
//
// When called with a laggard set (a reshape or write-redirect choice)
// the decision is recorded with every slot scored at -stalled: laggard
// and unplaceable slots enter the regret baseline as exclusions. The
// wear tiebreak only reorders equal scores, so it never adds regret.
// The laggards == nil form (leastStalledFIMM) is a sub-step of a
// migration decision already being recorded by coldClusterNear and is
// deliberately not re-recorded.
func (m *Manager) siblingFIMM(ep *cluster.Endpoint, laggards []bool, fam decision.Family) int {
	stalled := ep.StalledPerFIMM()
	health := m.arr.Health()
	rec := m.dec
	if laggards == nil {
		rec = nil
	}
	if rec != nil {
		g := m.arr.Config().Geometry
		rec.Begin(fam, ep.ID().Flat(g), m.arr.Engine().Now())
	}
	best, bestN := -1, int(^uint(0)>>1)
	var bestWear uint64
	for i, n := range stalled {
		if laggards != nil && laggards[i] {
			if rec != nil {
				rec.Candidate(int64(i), -float64(n), decision.ExcludedLaggard)
			}
			continue
		}
		if !health.Placeable(topo.FIMMID{ClusterID: ep.ID(), FIMM: i}) {
			// Dead or evacuating modules take no new data.
			if rec != nil {
				rec.Candidate(int64(i), -float64(n), decision.ExcludedDegraded)
			}
			continue
		}
		if rec != nil {
			rec.Candidate(int64(i), -float64(n), decision.Eligible)
		}
		if n > bestN {
			continue
		}
		wear := uint64(0)
		if m.opt.WearAware {
			wear = m.arr.FTL().Wear(topo.FIMMID{ClusterID: ep.ID(), FIMM: i}).Erases
		}
		if n < bestN || wear < bestWear {
			best, bestN, bestWear = i, n, wear
		}
	}
	if rec != nil {
		g := m.arr.Config().Geometry
		if best >= 0 {
			rec.Commit(int64(best), -float64(bestN), ep.ID().Flat(g))
		} else {
			rec.Commit(0, -float64(stalled[0]), ep.ID().Flat(g))
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// leastStalledFIMM picks the emptiest FIMM of a cluster.
func (m *Manager) leastStalledFIMM(id topo.ClusterID) int {
	return m.siblingFIMM(m.arr.Endpoint(id), nil, decision.Migration)
}

// coldClusterNear applies Equation 2 under the hot cluster's switch:
// the least-utilised cluster whose shared-bus utilisation over the
// sampling window is below 1/nFIMM (on average at most one FIMM using
// the bus). Triple-A never migrates across switches (Section 6.1).
//
// Every sibling cluster is recorded as a decision candidate at score
// -utilisation: degraded siblings (excluded from the Eq.1/Eq.2
// candidate set) are scored through utilizationPeek so recording never
// perturbs the sampling cache the off path maintains.
func (m *Manager) coldClusterNear(hot topo.ClusterID, fam decision.Family) (topo.ClusterID, bool) {
	g := m.arr.Config().Geometry
	threshold := 1 / float64(m.nFIMM)
	best := topo.ClusterID{}
	bestU := threshold
	found := false
	rec := m.dec
	if rec != nil {
		rec.Begin(fam, hot.Flat(g), m.arr.Engine().Now())
	}
	for c := 0; c < g.ClustersPerSwitch; c++ {
		id := topo.ClusterID{Switch: hot.Switch, Cluster: c}
		if id == hot {
			continue
		}
		if !m.arr.Health().ClusterPlaceable(id) {
			// Degraded or unplugged clusters leave the candidate set.
			if rec != nil {
				rec.Candidate(int64(id.Flat(g)), -m.utilizationPeek(id), decision.ExcludedDegraded)
			}
			continue
		}
		u := m.utilization(id)
		if rec != nil {
			reason := decision.Eligible
			if u >= threshold {
				reason = decision.ExcludedWarm
			}
			rec.Candidate(int64(id.Flat(g)), -u, reason)
		}
		if u < bestU {
			best, bestU, found = id, u, true
		}
	}
	if rec != nil {
		if found {
			rec.Commit(int64(best.Flat(g)), -bestU, best.Flat(g))
		} else {
			rec.Commit(-1, -1, -1)
		}
	}
	return best, found
}

// utilizationPeek scores a cluster's bus utilisation WITHOUT updating
// the Equation 2 sampling cache. The flight recorder scores candidates
// the policy itself never samples (degraded clusters); going through
// utilization() for those would roll their windows and diverge the
// cached values from a recording-off run.
func (m *Manager) utilizationPeek(id topo.ClusterID) float64 {
	g := m.arr.Config().Geometry
	flat := id.Flat(g)
	now := m.arr.Engine().Now()
	if now-m.utilAt[flat] < m.opt.UtilWindow {
		return m.utilLast[flat]
	}
	return m.arr.Endpoint(id).BusUtilizationSince(m.utilAt[flat], m.utilBusy[flat])
}

// utilization samples a cluster's shared-bus utilisation over the
// sliding window, caching between window rolls.
func (m *Manager) utilization(id topo.ClusterID) float64 {
	g := m.arr.Config().Geometry
	flat := id.Flat(g)
	now := m.arr.Engine().Now()
	elapsed := now - m.utilAt[flat]
	if elapsed < m.opt.UtilWindow {
		return m.utilLast[flat]
	}
	ep := m.arr.Endpoint(id)
	u := ep.BusUtilizationSince(m.utilAt[flat], m.utilBusy[flat])
	m.utilAt[flat] = now
	m.utilBusy[flat] = ep.BusBusyNS()
	m.utilLast[flat] = u
	return u
}

// startMove launches one page move, deduplicating in-flight LPNs and
// bounding concurrency.
func (m *Manager) startMove(lpn int64, dst topo.FIMMID, canShadow bool) { //simlint:cold migration launches are detection-gated autonomic actions
	if m.migrating[lpn] || m.inflight >= m.opt.MaxInflightMigrations {
		return
	}
	shadow := canShadow && m.opt.ShadowCloning
	m.migrating[lpn] = true
	m.inflight++
	m.stats.Migrations++
	if shadow {
		m.stats.ShadowClones++
	}
	m.arr.MigratePage(lpn, dst, shadow, func(err error) {
		delete(m.migrating, lpn)
		m.inflight--
		if err != nil {
			m.stats.MigrationErrors++
		}
	})
}

var _ array.Hooks = (*Manager)(nil)
