package core

import (
	"testing"

	"triplea/internal/array"
	"triplea/internal/cluster"
	"triplea/internal/decision"
	"triplea/internal/metrics"
	"triplea/internal/nand"
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/workload"
)

// smallConfig returns a 2x8 array small enough for fast end-to-end runs.
func smallConfig() array.Config {
	cfg := array.DefaultConfig()
	cfg.Geometry.Switches = 2
	cfg.Geometry.ClustersPerSwitch = 8
	cfg.Geometry.PackagesPerFIMM = 4
	cfg.Geometry.Nand.BlocksPerPlane = 64
	return cfg
}

func TestStrategyString(t *testing.T) {
	if LatencyMonitoring.String() != "latency-monitoring" ||
		QueueExamination.String() != "queue-examination" {
		t.Error("LaggardStrategy.String mismatch")
	}
}

func TestDefaultOptions(t *testing.T) {
	opt := DefaultOptions()
	if !opt.LinkManagement || !opt.StorageManagement || !opt.ShadowCloning {
		t.Error("DefaultOptions does not enable the full feature set")
	}
}

func TestHotThresholdEquation1(t *testing.T) {
	a, err := array.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := Attach(a, DefaultOptions())
	// Equation 1 RHS: tDMA*(npage + nFIMM - 1) + texe*npage.
	n := a.Config().Geometry.Nand
	texe := n.TCmdOverhead + n.TRead + n.TECCPerPage
	tdma := a.Config().BusPageTime()
	want := tdma*simx.Time(1+4-1) + texe
	if got := m.hotThreshold(1); got != want {
		t.Errorf("hotThreshold(1) = %v, want %v", got, want)
	}
	want2 := tdma*simx.Time(2+4-1) + 2*texe
	if got := m.hotThreshold(2); got != want2 {
		t.Errorf("hotThreshold(2) = %v, want %v", got, want2)
	}
}

func TestAttachDefaultsZeroOptions(t *testing.T) {
	a, _ := array.New(smallConfig())
	m := Attach(a, Options{})
	if m.opt.UtilWindow <= 0 || m.opt.MaxInflightMigrations <= 0 {
		t.Error("Attach left zero limits in place")
	}
}

// runWorkload builds an array (optionally managed), runs the profile,
// and returns recorder + manager.
func runWorkload(t *testing.T, p workload.Profile, managed bool) (*metrics.Recorder, *Manager) {
	t.Helper()
	cfg := smallConfig()
	a, err := array.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var m *Manager
	if managed {
		m = Attach(a, DefaultOptions())
	}
	reqs, _, err := workload.Generate(cfg.Geometry, p, 12345)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return rec, m
}

func hotProfile() workload.Profile {
	// Two hot clusters at ~1.5x their effective service capacity: the
	// hot region congests while the rest of the array stays cool.
	p := workload.MicroRead(2, 8000, 240_000)
	p.Footprint = 256
	return p
}

func TestTripleAImprovesHotWorkload(t *testing.T) {
	base, _ := runWorkload(t, hotProfile(), false)
	auto, m := runWorkload(t, hotProfile(), true)

	if m.Stats().HotDetections == 0 {
		t.Fatal("no hot-cluster detections on a saturated hot region")
	}
	if m.Stats().Migrations == 0 {
		t.Fatal("no migrations despite hot detections")
	}
	bl, al := base.AvgLatency(), auto.AvgLatency()
	if al >= bl {
		t.Errorf("Triple-A latency %v not below baseline %v", al, bl)
	}
	bi, ai := base.IOPS(), auto.IOPS()
	if ai <= bi {
		t.Errorf("Triple-A IOPS %v not above baseline %v", ai, bi)
	}
	t.Logf("baseline: %v avg, %.0f IOPS; triple-a: %v avg, %.0f IOPS (%.1fx latency, %.2fx IOPS)",
		bl, bi, al, ai, float64(bl)/float64(al), ai/bi)

	// Contention times must drop (the Figure 10 claim).
	bc, ac := base.SumBreakdown(), auto.SumBreakdown()
	if ac.LinkContention() >= bc.LinkContention() {
		t.Errorf("link contention did not drop: %v -> %v", bc.LinkContention(), ac.LinkContention())
	}
	if ac.QueueStall() >= bc.QueueStall() {
		t.Errorf("queue stall did not drop: %v -> %v", bc.QueueStall(), ac.QueueStall())
	}
}

func TestNoGainWithoutHotClusters(t *testing.T) {
	// Per-cluster load matching the full-scale cfs/web regime (150K
	// IOPS over 64 clusters) on this 16-cluster test array.
	p := workload.MicroRead(0, 3000, 40_000)
	base, _ := runWorkload(t, p, false)
	auto, m := runWorkload(t, p, true)
	// cfs/web situation: no hot region, essentially no migrations, and
	// latencies within noise of each other.
	if m.Stats().Migrations > uint64(p.Requests/100) {
		t.Errorf("%d migrations on an uncontended workload", m.Stats().Migrations)
	}
	bl, al := base.AvgLatency(), auto.AvgLatency()
	ratio := float64(bl) / float64(al)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("uncontended latencies diverged: baseline %v vs triple-a %v", bl, al)
	}
}

func TestShadowCloningCounted(t *testing.T) {
	_, m := runWorkload(t, hotProfile(), true)
	if m.Stats().ShadowClones == 0 {
		t.Error("no shadow clones despite ShadowCloning enabled")
	}
	if m.Stats().ShadowClones > m.Stats().Migrations+m.Stats().Reshapes {
		t.Error("more shadow clones than moves")
	}
}

func TestDisabledManagerDoesNothing(t *testing.T) {
	cfg := smallConfig()
	a, _ := array.New(cfg)
	m := Attach(a, Options{}) // everything off
	reqs, _, err := workload.Generate(cfg.Geometry, hotProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(reqs); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Migrations != 0 || s.Reshapes != 0 || s.WriteRedirects != 0 {
		t.Errorf("disabled manager acted: %+v", s)
	}
}

func TestColdClusterSelectionStaysOnSwitch(t *testing.T) {
	a, _ := array.New(smallConfig())
	m := Attach(a, DefaultOptions())
	hot := topo.ClusterID{Switch: 1, Cluster: 3}
	cold, ok := m.coldClusterNear(hot, decision.Migration)
	if !ok {
		t.Fatal("no cold cluster on an idle array")
	}
	if cold.Switch != hot.Switch {
		t.Errorf("cold cluster %v crossed switches (hot %v)", cold, hot)
	}
	if cold == hot {
		t.Error("picked the hot cluster itself")
	}
}

func TestUtilizationSampling(t *testing.T) {
	a, _ := array.New(smallConfig())
	opt := DefaultOptions()
	opt.UtilWindow = 100 * simx.Microsecond
	m := Attach(a, opt)
	id := topo.ClusterID{Switch: 0, Cluster: 0}
	// Idle cluster: utilization 0 once a window has elapsed.
	a.Engine().RunUntil(200 * simx.Microsecond)
	if u := m.utilization(id); u != 0 {
		t.Errorf("idle utilization = %v", u)
	}
	// Within the window the cached value is returned.
	if u := m.utilization(id); u != 0 {
		t.Errorf("cached utilization = %v", u)
	}
}

func TestWriteTargetRedirectsFromLaggard(t *testing.T) {
	cfg := smallConfig()
	cfg.FIMMQueueDepth = 1
	a, _ := array.New(cfg)
	m := Attach(a, DefaultOptions())
	id := topo.ClusterID{Switch: 0, Cluster: 0}
	ep := a.Endpoint(id)

	// Saturate FIMM 0 with reads so commands stall in the EP queue.
	g := cfg.Geometry
	for i := 0; i < 40; i++ {
		lpn := int64(i) // cluster 0, FIMM 0 under clustered layout
		if _, _, err := a.FTL().Prepopulate(lpn); err != nil {
			t.Fatal(err)
		}
		ppn, _ := a.FTL().Lookup(lpn)
		if err := a.Endpoint(id).FIMM(ppn.FIMMSlot()).Package(ppn.Pkg()).ForcePopulate(ppn.NandAddr(g)); err != nil {
			t.Fatal(err)
		}
		ep.Submit(&cluster.Command{
			Op: cluster.OpRead, FIMM: ppn.FIMMSlot(), Pkg: ppn.Pkg(),
			Addrs: []nand.Addr{ppn.NandAddr(g)}, Background: true,
		})
	}
	resident := topo.FIMMID{ClusterID: id, FIMM: 0}
	got := m.WriteTarget(0, resident)
	if got == resident {
		t.Error("write not redirected away from saturated FIMM 0")
	}
	if got.ClusterID != id {
		t.Errorf("redirect left the cluster: %v", got)
	}
	if m.Stats().WriteRedirects == 0 {
		t.Error("redirect not counted")
	}
	a.Engine().Run()
}

func TestQueueExaminationStrategy(t *testing.T) {
	cfg := smallConfig()
	cfg.FIMMQueueDepth = 1
	cfg.QueueEntries = 4
	a, _ := array.New(cfg)
	opt := DefaultOptions()
	opt.Strategy = QueueExamination
	m := Attach(a, opt)
	id := topo.ClusterID{Switch: 0, Cluster: 0}
	ep := a.Endpoint(id)

	// Below a full queue, queue examination reports nothing.
	if lag := m.detectLaggards(ep); lag != nil {
		t.Errorf("laggards on idle EP: %v", lag)
	}
	g := cfg.Geometry
	for i := 0; i < 8; i++ {
		lpn := int64(i)
		if _, _, err := a.FTL().Prepopulate(lpn); err != nil {
			t.Fatal(err)
		}
		ppn, _ := a.FTL().Lookup(lpn)
		if err := ep.FIMM(ppn.FIMMSlot()).Package(ppn.Pkg()).ForcePopulate(ppn.NandAddr(g)); err != nil {
			t.Fatal(err)
		}
		ep.Submit(&cluster.Command{
			Op: cluster.OpRead, FIMM: ppn.FIMMSlot(), Pkg: ppn.Pkg(),
			Addrs: []nand.Addr{ppn.NandAddr(g)}, Background: true,
		})
	}
	lag := m.detectLaggards(ep)
	if lag == nil || !lag[0] {
		t.Errorf("full queue did not blame FIMM 0: %v", lag)
	}
	a.Engine().Run()
}

func TestMigrationDeduplication(t *testing.T) {
	a, _ := array.New(smallConfig())
	m := Attach(a, DefaultOptions())
	if err := prepLPN(a, 0); err != nil {
		t.Fatal(err)
	}
	dst := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 1}, FIMM: 0}
	m.startMove(0, dst, false)
	m.startMove(0, dst, false) // duplicate while in flight
	if m.Stats().Migrations != 1 {
		t.Errorf("Migrations = %d, want 1 (dedup)", m.Stats().Migrations)
	}
	a.Engine().Run()
	if m.inflight != 0 {
		t.Errorf("inflight = %d after drain", m.inflight)
	}
}

func prepLPN(a *array.Array, lpn int64) error {
	ppn, need, err := a.FTL().Prepopulate(lpn)
	if err != nil {
		return err
	}
	if need {
		g := a.Config().Geometry
		return a.Endpoint(ppn.ClusterID()).FIMM(ppn.FIMMSlot()).Package(ppn.Pkg()).
			ForcePopulate(ppn.NandAddr(g))
	}
	return nil
}

func TestMigrationThrottle(t *testing.T) {
	a, _ := array.New(smallConfig())
	opt := DefaultOptions()
	opt.MaxInflightMigrations = 2
	m := Attach(a, opt)
	for lpn := int64(0); lpn < 5; lpn++ {
		if err := prepLPN(a, lpn); err != nil {
			t.Fatal(err)
		}
		dst := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 1}, FIMM: 0}
		m.startMove(lpn, dst, false)
	}
	if m.Stats().Migrations != 2 {
		t.Errorf("Migrations = %d, want cap 2", m.Stats().Migrations)
	}
	a.Engine().Run()
}

func TestWriteHeavyWorkloadWithReshaping(t *testing.T) {
	p := workload.MicroWrite(2, 5000, 400_000)
	p.Footprint = 256
	base, _ := runWorkload(t, p, false)
	auto, m := runWorkload(t, p, true)
	if base.Count() != 5000 || auto.Count() != 5000 {
		t.Fatal("writes lost")
	}
	// With storage management on, redirects should occur under write
	// pressure, and latency must not regress.
	if m.Stats().WriteRedirects == 0 && m.Stats().Reshapes == 0 {
		t.Log("no reshaping triggered (write buffering may absorb the load)")
	}
	if auto.AvgLatency() > 2*base.AvgLatency() {
		t.Errorf("Triple-A write latency regressed: %v vs %v", auto.AvgLatency(), base.AvgLatency())
	}
}

func TestWearAwarePlacement(t *testing.T) {
	cfg := smallConfig()
	cfg.Geometry.Nand.PagesPerBlock = 4
	cfg.Geometry.Nand.BlocksPerPlane = 8
	a, _ := array.New(cfg)
	opt := DefaultOptions()
	m := Attach(a, opt)
	id := topo.ClusterID{Switch: 0, Cluster: 0}

	// Artificially wear FIMM 0 of the cluster: overwrite a small set
	// until blocks fill and fully-stale victims appear, then erase them.
	f := a.FTL()
	worn := topo.FIMMID{ClusterID: id, FIMM: 0}
	for round := 0; round < 7; round++ {
		for lpn := int64(0); lpn < 64; lpn++ {
			if _, err := f.AllocateWriteAt(lpn, worn); err != nil {
				t.Fatal(err)
			}
		}
	}
	for {
		plan, ok := f.PlanGC(worn, nil)
		if !ok || len(plan.Moves) > 0 {
			break
		}
		if err := f.CompleteGCErase(plan); err != nil {
			t.Fatal(err)
		}
	}
	if f.Wear(worn).Erases == 0 {
		t.Fatal("could not manufacture wear in this geometry")
	}

	// With equal stall counts everywhere, placement must avoid the
	// worn module.
	if got := m.leastStalledFIMM(id); got == worn.FIMM {
		t.Errorf("wear-aware placement picked the worn FIMM %d", got)
	}

	// With wear awareness off, slot 0 (first minimum) wins the tie.
	opt2 := DefaultOptions()
	opt2.WearAware = false
	a2, _ := array.New(smallConfig())
	m2 := Attach(a2, opt2)
	if got := m2.leastStalledFIMM(id); got != 0 {
		t.Errorf("wear-oblivious tie-break = %d, want 0", got)
	}
}

func TestDegradedFIMMReshapedAway(t *testing.T) {
	// An 8x-slow FIMM receives most of the cluster's data; Triple-A
	// must drain it via laggard reshaping.
	slow := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 0}, FIMM: 0}
	p := workload.MicroRead(1, 6000, 20_000)
	p.HotIORatio = 0.8
	p.Footprint = 128

	run := func(autonomic bool) (simx.Time, *Manager) {
		cfg := smallConfig()
		cfg.DegradedFIMMs = map[topo.FIMMID]float64{slow: 8}
		a, _ := array.New(cfg)
		var m *Manager
		if autonomic {
			m = Attach(a, DefaultOptions())
		}
		reqs, _, err := workload.Generate(cfg.Geometry, p, 5)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := a.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rec.AvgLatency(), m
	}
	base, _ := run(false)
	auto, m := run(true)
	if auto >= base {
		t.Errorf("Triple-A (%v) did not beat baseline (%v) with a degraded FIMM", auto, base)
	}
	if m.Stats().LaggardsDetected == 0 || m.Stats().Reshapes == 0 {
		t.Errorf("no laggard handling on a degraded FIMM: %+v", m.Stats())
	}
}

func TestLPNRing(t *testing.T) {
	r := newLPNRing(4)
	if got := r.snapshot(); len(got) != 0 {
		t.Errorf("empty ring snapshot = %v", got)
	}
	r.add(1)
	r.add(2)
	r.add(3)
	got := r.snapshot()
	if len(got) != 3 || got[0] != 3 || got[2] != 1 {
		t.Errorf("snapshot = %v, want [3 2 1]", got)
	}
	// Wrap and dedup.
	r.add(2)
	r.add(4)
	r.add(4)
	got = r.snapshot()
	if got[0] != 4 {
		t.Errorf("most recent = %v", got)
	}
	seen := map[int64]bool{}
	for _, v := range got {
		if seen[v] {
			t.Errorf("duplicate %d in %v", v, got)
		}
		seen[v] = true
	}
}

func TestBatchReshapingDrainsLaggard(t *testing.T) {
	// Degraded FIMM + batch reshaping: after the run, a good share of
	// the working set must have left the laggard.
	slow := topo.FIMMID{ClusterID: topo.ClusterID{Switch: 0, Cluster: 0}, FIMM: 0}
	cfg := smallConfig()
	cfg.DegradedFIMMs = map[topo.FIMMID]float64{slow: 8}
	a, _ := array.New(cfg)
	Attach(a, DefaultOptions())
	p := workload.MicroRead(1, 5000, 20_000)
	p.HotIORatio = 0.8
	p.Footprint = 128
	reqs, _, err := workload.Generate(cfg.Geometry, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(reqs); err != nil {
		t.Fatal(err)
	}
	onLaggard := 0
	perFIMM := cfg.Geometry.PagesPerFIMM().Int64()
	for lpn := int64(0); lpn < perFIMM && lpn < 128; lpn++ {
		if a.FTL().ResidentFIMM(lpn) == slow {
			onLaggard++
		}
	}
	if onLaggard > 64 {
		t.Errorf("%d of 128 hot pages still on the degraded FIMM", onLaggard)
	}
	if err := a.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
