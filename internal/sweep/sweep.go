// Package sweep is the audited orchestration layer above the
// deterministic simulator: it fans independent (seed, config) run
// specs across a fixed-size worker pool and reassembles the results in
// spec order, so a parameter sweep uses every core without spending
// any of the determinism budget the engine's single-threaded contract
// buys.
//
// The package is the one place in the repository where concurrency is
// legal, and it is certified rather than trusted: the `isosafe`
// analyzer (see docs/static-analysis.md) statically proves that
//
//   - every worker closure captures only registered deep-copy-safe
//     values (seeds, value-semantics config structs, the package's own
//     channels) — never a live engine, an array, or a pool;
//   - the only values crossing the channel boundary are the immutable
//     Spec and result types;
//   - each run stays single-threaded: a RunFunc builds every engine,
//     array, and recorder it needs inside the call, in its own arena.
//
// Because each run is a pure function of its spec, the assembled
// output is byte-identical for any worker count — Map(1, ...) and
// Map(8, ...) return the same bytes, which
// internal/experiments/parallel_test.go pins.
package sweep

import "fmt"

// Spec identifies one independent run of a sweep: a dense index used
// for deterministic result reassembly, and the seed the run derives
// every random draw from. Spec is a pure value and is registered with
// isosafe as deep-copy-safe.
type Spec struct {
	Index int
	Seed  uint64
}

// RunFunc executes one spec and returns the run's rendered bytes
// (a report.Table rendering, encoded row cells, a metric snapshot).
// Implementations must be self-contained: build the array, engine, and
// recorders inside the call, return only bytes, and capture nothing
// mutable — isosafe checks every function literal flowing into Map, so
// a closure that captures a pointer, map, slice, or live engine is a
// vet error, not a latent race.
type RunFunc func(Spec) ([]byte, error)

// result is the only type worker goroutines send back across the
// channel boundary (isosafe's handoff-by-value rule): the spec's
// index, the rendered bytes, and the run's error. Ownership of the
// byte slice transfers with the send; the worker never touches it
// again.
type result struct {
	index int
	bytes []byte
	err   error
}

// Indexed builds the dense spec list [0, n): spec i carries index i
// and the shared seed (runs that need distinct seeds derive them from
// Seed and Index inside the RunFunc, keeping the derivation explicit
// and reproducible).
func Indexed(n int, seed uint64) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{Index: i, Seed: seed}
	}
	return specs
}

// Map runs fn over every spec on a fixed pool of `workers` goroutines
// and returns the results in spec order: out[i] is fn(specs[i]),
// regardless of worker count or completion order. Errors are
// deterministic too: the error of the lowest-index failing spec is
// returned, whichever worker hit it first.
//
// workers <= 1 runs serially on the calling goroutine with no
// concurrency at all — the default path for tests and for builds where
// parallelism is disabled — and is byte-equivalent to every parallel
// schedule by construction.
func Map(workers int, specs []Spec, fn RunFunc) ([][]byte, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	for i, sp := range specs {
		if sp.Index != i {
			return nil, fmt.Errorf("sweep: spec %d carries index %d; indices must be dense and in order", i, sp.Index)
		}
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		out := make([][]byte, len(specs))
		for i, sp := range specs {
			b, err := fn(sp)
			if err != nil {
				return nil, fmt.Errorf("sweep: spec %d: %w", sp.Index, err)
			}
			out[i] = b
		}
		return out, nil
	}

	feed := make(chan Spec, len(specs))
	results := make(chan result, len(specs))
	for w := 0; w < workers; w++ {
		go func() {
			for sp := range feed {
				b, err := fn(sp)
				results <- result{index: sp.Index, bytes: b, err: err}
			}
		}()
	}
	for _, sp := range specs {
		feed <- sp
	}
	close(feed)

	out := make([][]byte, len(specs))
	errIndex := -1
	var firstErr error
	for range specs {
		r := <-results
		if r.err != nil {
			if errIndex < 0 || r.index < errIndex {
				errIndex, firstErr = r.index, r.err
			}
			continue
		}
		out[r.index] = r.bytes
	}
	if firstErr != nil {
		return nil, fmt.Errorf("sweep: spec %d: %w", errIndex, firstErr)
	}
	return out, nil
}
