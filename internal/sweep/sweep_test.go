package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// run renders a deterministic payload for one spec: enough mixing that
// a mis-assembled index or a dropped spec changes the bytes.
func run(sp Spec) ([]byte, error) {
	return []byte(fmt.Sprintf("spec=%d seed=%d sum=%d", sp.Index, sp.Seed, sp.Seed*uint64(sp.Index+1))), nil
}

func TestIndexed(t *testing.T) {
	specs := Indexed(4, 42)
	if len(specs) != 4 {
		t.Fatalf("len = %d", len(specs))
	}
	for i, sp := range specs {
		if sp.Index != i || sp.Seed != 42 {
			t.Errorf("spec %d = %+v", i, sp)
		}
	}
	if len(Indexed(0, 1)) != 0 {
		t.Error("Indexed(0) not empty")
	}
}

// TestWorkerCountIndependence is the package's contract: the assembled
// output is byte-identical for every worker count, including the
// goroutine-free serial path.
func TestWorkerCountIndependence(t *testing.T) {
	specs := Indexed(23, 7)
	serial, err := Map(1, specs, run)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(specs) {
		t.Fatalf("serial produced %d results", len(serial))
	}
	for _, workers := range []int{2, 3, 8, 64} {
		got, err := Map(workers, specs, run)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial {
			if !bytes.Equal(got[i], serial[i]) {
				t.Fatalf("workers=%d: result %d diverged:\n  serial: %s\n  pooled: %s",
					workers, i, serial[i], got[i])
			}
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if out, err := Map(8, nil, run); err != nil || out != nil {
		t.Errorf("empty sweep: %v, %v", out, err)
	}
	out, err := Map(8, Indexed(1, 3), run)
	if err != nil || len(out) != 1 {
		t.Fatalf("single spec: %v, %v", out, err)
	}
}

// TestDeterministicError pins the error contract: the lowest-index
// failure wins regardless of which worker reports first.
func TestDeterministicError(t *testing.T) {
	sentinel := errors.New("boom")
	fail := func(sp Spec) ([]byte, error) {
		if sp.Index%3 == 2 { // specs 2, 5, 8, ... fail
			return nil, fmt.Errorf("point %d: %w", sp.Index, sentinel)
		}
		return run(sp)
	}
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(workers, Indexed(12, 1), fail)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: error chain lost: %v", workers, err)
		}
		if !strings.Contains(err.Error(), "spec 2") {
			t.Errorf("workers=%d: want lowest-index failure (spec 2), got %v", workers, err)
		}
	}
}

func TestRejectsSparseSpecs(t *testing.T) {
	specs := []Spec{{Index: 0}, {Index: 2}}
	if _, err := Map(2, specs, run); err == nil {
		t.Error("sparse spec indices accepted")
	}
}
