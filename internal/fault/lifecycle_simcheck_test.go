//go:build simcheck

package fault

import (
	"testing"

	"triplea/internal/array"
	"triplea/internal/simx"
	"triplea/internal/topo"
)

// The fault paths retire pooled objects on routes the healthy hot path
// never takes: array.failPage recycles a failed page's packets, command
// and pageRef by hand, the RetireMark handshake must still resolve when
// the flush side arrives with an error, and the evacuation pump chains
// background migrations whose commands recycle at flush. With the leak
// ledger armed, killing hardware mid-flight proves every one of those
// release points: a missed release fails AssertDrained with the pool's
// name, a double release panics in PoolCheck.

// TestFaultLifecyclePoolsDrain kills a FIMM and hot-unplugs a cluster
// in the middle of a mixed burst, with recovery on and off, and checks
// every pool drained after each run.
func TestFaultLifecyclePoolsDrain(t *testing.T) {
	for _, recover := range []bool{false, true} {
		cfg := testConfig()
		a, err := array.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reqs := testTraffic(cfg.Geometry, 3000)
		span := reqs[len(reqs)-1].Arrival
		// Mid-flight: both events land while the burst is in full swing,
		// so in-flight commands on the victims fail at every stage of
		// their life (queued, on the bus, at the die, awaiting flush).
		plan := Plan{Events: []Event{
			{At: span / 3, Kind: KindFIMMDeath,
				Cluster: topo.ClusterID{Switch: 0, Cluster: 0}, FIMM: 1},
			{At: span / 2, Kind: KindClusterUnplug,
				Cluster: topo.ClusterID{Switch: 1, Cluster: 1}},
		}}
		drainSnap := simx.SnapshotLedger()
		inj := Attach(a, plan, Options{Recover: recover})
		rec, err := a.Run(reqs)
		if err != nil {
			t.Fatalf("recover=%v: %v", recover, err)
		}
		if a.InFlight() != 0 {
			t.Fatalf("recover=%v: %d requests stuck", recover, a.InFlight())
		}
		if rec.Count()+rec.FailedCount() != 3000 {
			t.Errorf("recover=%v: completed %d + failed %d != submitted 3000",
				recover, rec.Count(), rec.FailedCount())
		}
		if got := inj.Stats().Injected; got != 2 {
			t.Errorf("recover=%v: injected %d events, want 2", recover, got)
		}
		if err := simx.AssertDrained(drainSnap); err != nil {
			t.Fatalf("recover=%v: fault paths leaked pooled objects: %v", recover, err)
		}
	}
}
