// Package fault implements deterministic fault injection and hot-swap
// for the simulated array: a Plan of scripted and seeded-randomly drawn
// hardware fault events (NAND block/die failures and wear-out, FIMM
// stalls and deaths, channel and PCI-E link degradation, link retrains,
// cluster hot-unplug and replug) delivered as first-class simulation
// events through the injection hooks in nand, fimm, cluster, pcie and
// the array.
//
// Everything is inside the determinism contract: random events are
// drawn up front from the plan's own seeded PRNG, scheduled times are
// fixed before the run starts, and recovery work (mapping drops,
// evacuation migrations) flows through the same deterministic machinery
// host traffic uses. The same seed and plan produce byte-identical
// runs — see docs/fault-injection.md.
package fault

import (
	"cmp"
	"slices"

	"triplea/internal/simx"
	"triplea/internal/topo"
)

// Kind identifies one injectable hardware fault.
type Kind uint8

const (
	// KindFIMMStall multiplies a FIMM's flash cell times by Factor — a
	// module whose dies degraded into slow retry-heavy reads.
	KindFIMMStall Kind = iota
	// KindFIMMDeath kills a FIMM module: every new operation fails,
	// in-flight ones drain. Its resident pages are lost (recovery
	// remaps them out-of-place from host shadow clones).
	KindFIMMDeath
	// KindBlockReadFail makes one erase block unreadable (grown defect).
	KindBlockReadFail
	// KindBlockWearOut wears one erase block out: reads still succeed,
	// programs and erases fail.
	KindBlockWearOut
	// KindDieReadFail kills one NAND die.
	KindDieReadFail
	// KindChannelDegrade multiplies a FIMM's ONFI channel transfer time
	// by Factor (a lane dropped to a slower timing mode).
	KindChannelDegrade
	// KindLinkDegrade multiplies a cluster's PCI-E link serialisation
	// time by Factor (link trained down after errors).
	KindLinkDegrade
	// KindLinkRetrain blocks a cluster's PCI-E link for Duration (an
	// LTSSM Recovery excursion); traffic queues, nothing is dropped.
	KindLinkRetrain
	// KindClusterUnplug hot-removes a cluster. Without recovery it goes
	// offline at once and its I/O fails; with recovery it degrades,
	// its live data evacuates, and only then is it released.
	KindClusterUnplug
	// KindClusterReplug re-inserts a previously unplugged cluster; it
	// rejoins cold (no data) unless it was never evacuated.
	KindClusterReplug
)

func (k Kind) String() string {
	switch k {
	case KindFIMMStall:
		return "fimm-stall"
	case KindFIMMDeath:
		return "fimm-death"
	case KindBlockReadFail:
		return "block-read-fail"
	case KindBlockWearOut:
		return "block-wear-out"
	case KindDieReadFail:
		return "die-read-fail"
	case KindChannelDegrade:
		return "channel-degrade"
	case KindLinkDegrade:
		return "link-degrade"
	case KindLinkRetrain:
		return "link-retrain"
	case KindClusterUnplug:
		return "cluster-unplug"
	case KindClusterReplug:
		return "cluster-replug"
	}
	return "unknown"
}

// Event is one scheduled fault. Cluster (and FIMM, for module-scoped
// kinds) selects the target; block- and die-scoped kinds carry their
// full coordinates in Block, a page-0 PPN.
type Event struct {
	At       simx.Time
	Kind     Kind
	Cluster  topo.ClusterID
	FIMM     int       // module slot within Cluster
	Block    topo.PPN  // page-0 PPN: package/die/block coordinates
	Factor   float64   // time scale for stall/degrade kinds (0 = nominal)
	Duration simx.Time // retrain window length
}

// RandomSpec asks Materialize to draw Count additional events from the
// plan's PRNG, uniformly timed in [Start, End) with kinds from Kinds.
type RandomSpec struct {
	Count int
	Start simx.Time
	End   simx.Time
	Kinds []Kind // defaults to the transient kinds when empty
}

// defaultRandomKinds are the kinds safe to draw blindly: they degrade
// service without permanently removing capacity.
var defaultRandomKinds = []Kind{
	KindFIMMStall, KindChannelDegrade, KindLinkDegrade,
	KindLinkRetrain, KindBlockReadFail,
}

// Plan is a reproducible fault schedule: scripted events plus an
// optional randomly drawn tail, both fixed before the run starts.
type Plan struct {
	Seed   uint64
	Events []Event
	Random RandomSpec
}

// Materialize resolves the plan against a geometry: scripted events are
// copied, random ones drawn from the plan's seeded PRNG, and the result
// is sorted into a total deterministic order.
func (p Plan) Materialize(g topo.Geometry) []Event {
	out := make([]Event, len(p.Events))
	copy(out, p.Events)

	if n := p.Random.Count; n > 0 {
		rng := simx.NewRNG(p.Seed)
		kinds := p.Random.Kinds
		if len(kinds) == 0 {
			kinds = defaultRandomKinds
		}
		span := p.Random.End - p.Random.Start
		if span < simx.Nanosecond {
			span = simx.Nanosecond
		}
		for i := 0; i < n; i++ {
			cl := topo.ClusterFromFlat(g, rng.Intn(g.TotalClusters()))
			slot := rng.Intn(g.FIMMsPerCluster)
			pkg := rng.Intn(g.PackagesPerFIMM)
			die := rng.Intn(g.Nand.DiesPerPackage)
			block := rng.Intn(g.Nand.BlocksPerPlane.Int() * g.Nand.PlanesPerDie)
			ev := Event{
				At:      p.Random.Start + simx.Time(rng.Int63n(int64(span))),
				Kind:    kinds[rng.Intn(len(kinds))],
				Cluster: cl,
				FIMM:    slot,
				Block:   topo.PackPPN(cl.Switch, cl.Cluster, slot, pkg, die, block, 0),
			}
			switch ev.Kind {
			case KindFIMMStall:
				ev.Factor = 2 + 2*rng.Float64()
			case KindChannelDegrade, KindLinkDegrade:
				ev.Factor = 1.5 + rng.Float64()
			case KindLinkRetrain:
				ev.Duration = simx.Time(20+rng.Intn(80)) * simx.Microsecond
			case KindFIMMDeath, KindBlockReadFail, KindBlockWearOut,
				KindDieReadFail, KindClusterUnplug, KindClusterReplug:
				// Coordinates alone describe these.
			}
			out = append(out, ev)
		}
	}

	// Total order: time, then kind, then target — map-free and stable,
	// so two materializations of the same plan are identical.
	slices.SortStableFunc(out, func(a, b Event) int {
		if c := cmp.Compare(a.At, b.At); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Kind, b.Kind); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Cluster.Flat(g), b.Cluster.Flat(g)); c != 0 {
			return c
		}
		if c := cmp.Compare(a.FIMM, b.FIMM); c != 0 {
			return c
		}
		return cmp.Compare(a.Block, b.Block)
	})
	return out
}

// ReferencePlan is the acceptance scenario used by the degraded-array
// study and the faulted golden-replay test: one FIMM death early in the
// run, and one cluster hot-unplugged mid-run and replugged late, on the
// last switch so death and unplug hit disjoint hardware.
func ReferencePlan(g topo.Geometry, span simx.Time) Plan {
	dead := topo.ClusterID{Switch: 0, Cluster: 0}
	pulled := topo.ClusterID{Switch: g.Switches - 1, Cluster: g.ClustersPerSwitch - 1}
	return Plan{Events: []Event{
		{At: span / 5, Kind: KindFIMMDeath, Cluster: dead, FIMM: 1 % g.FIMMsPerCluster},
		{At: 2 * span / 5, Kind: KindClusterUnplug, Cluster: pulled},
		{At: 7 * span / 10, Kind: KindClusterReplug, Cluster: pulled},
	}}
}
