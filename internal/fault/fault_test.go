package fault

import (
	"testing"

	"triplea/internal/array"
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/trace"
)

// testConfig mirrors the array package's small 2x2 test geometry.
func testConfig() array.Config {
	cfg := array.DefaultConfig()
	cfg.Geometry.Switches = 2
	cfg.Geometry.ClustersPerSwitch = 2
	cfg.Geometry.FIMMsPerCluster = 2
	cfg.Geometry.PackagesPerFIMM = 2
	cfg.Geometry.Nand.DiesPerPackage = 1
	// Enough blocks that the survivors can absorb a dead FIMM plus an
	// evacuated cluster (3 of 8 modules) without running out of space.
	cfg.Geometry.Nand.BlocksPerPlane = 32
	cfg.Geometry.Nand.PagesPerBlock = 4
	return cfg
}

// testTraffic is a mixed read/write load over 512 LPNs strided across
// the whole (range-partitioned) LPN space so every FIMM holds data,
// long enough to straddle every ReferencePlan event.
func testTraffic(g topo.Geometry, n int) []trace.Request {
	stride := g.TotalPages().Int64() / 512
	reqs := make([]trace.Request, 0, n)
	for i := 0; i < n; i++ {
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		reqs = append(reqs, trace.Request{
			Arrival: simx.Time(i) * 2 * simx.Microsecond,
			Op:      op, LPN: int64(i%512) * stride, Pages: 1,
		})
	}
	return reqs
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{
		KindFIMMStall, KindFIMMDeath, KindBlockReadFail, KindBlockWearOut,
		KindDieReadFail, KindChannelDegrade, KindLinkDegrade,
		KindLinkRetrain, KindClusterUnplug, KindClusterReplug,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d stringifies to %q", k, s)
		}
		seen[s] = true
	}
	if Kind(250).String() != "unknown" {
		t.Error("out-of-range kind must stringify to unknown")
	}
}

// TestMaterializeDeterministic pins the plan-resolution contract: the
// same seed yields the identical schedule, a different seed does not,
// and the result is totally ordered by time.
func TestMaterializeDeterministic(t *testing.T) {
	g := testConfig().Geometry
	p := Plan{
		Seed:   7,
		Events: ReferencePlan(g, 10*simx.Millisecond).Events,
		Random: RandomSpec{Count: 25, Start: 0, End: 10 * simx.Millisecond},
	}
	a, b := p.Materialize(g), p.Materialize(g)
	if len(a) != len(b) || len(a) != 3+25 {
		t.Fatalf("materialized %d and %d events, want %d", len(a), len(b), 28)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same plan diverged at event %d: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatalf("events out of order at %d: %v after %v", i, a[i].At, a[i-1].At)
		}
	}
	p.Seed = 8
	c := p.Materialize(g)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestReferencePlanRecovery runs the acceptance scenario end to end
// with recovery on: zero failed requests, the dead FIMM's and pulled
// cluster's pages leave the faulted hardware, and the recovery record
// closes with a positive time-to-recover.
func TestReferencePlanRecovery(t *testing.T) {
	cfg := testConfig()
	a, err := array.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := testTraffic(cfg.Geometry, 4000)
	span := reqs[len(reqs)-1].Arrival
	plan := ReferencePlan(cfg.Geometry, span)
	inj := Attach(a, plan, Options{Recover: true})
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a.InFlight() != 0 {
		t.Fatalf("%d requests stuck after faulted run", a.InFlight())
	}
	if got := a.FaultStats().RequestsFailed; got != 0 {
		t.Errorf("recovery left %d failed requests, want 0", got)
	}
	if rec.FailedCount() != 0 {
		t.Errorf("recorder logged %d failures, want 0", rec.FailedCount())
	}
	st := inj.Stats()
	if st.Injected != len(plan.Events) {
		t.Errorf("injected %d events, want %d", st.Injected, len(plan.Events))
	}
	if len(st.Recoveries) != 1 {
		t.Fatalf("recorded %d recoveries, want 1", len(st.Recoveries))
	}
	r := st.Recoveries[0]
	if r.TTR() <= 0 {
		t.Errorf("time-to-recover %v, want > 0", r.TTR())
	}
	if st.Evacuated == 0 {
		t.Error("no pages evacuated off the pulled cluster")
	}
	if r.Evacuated == 0 {
		t.Error("recovery record shows no evacuated pages")
	}
	pulled := plan.Events[1].Cluster
	if a.Health().Cluster(pulled) != topo.ClusterOnline {
		t.Errorf("replugged cluster is %v, want online", a.Health().Cluster(pulled))
	}
	if a.Endpoint(pulled).Unplugged() {
		t.Error("replugged cluster still unplugged")
	}
	// The dead FIMM stays dead and empty.
	dead := topo.FIMMID{ClusterID: plan.Events[0].Cluster, FIMM: plan.Events[0].FIMM}
	if n := len(a.FTL().MappedOnFIMM(dead)); n != 0 {
		t.Errorf("%d pages still mapped on the dead FIMM", n)
	}
	if a.Health().FIMM(dead) != topo.FIMMDead {
		t.Error("dead FIMM not marked in the health registry")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Errorf("post-recovery consistency: %v", err)
	}
}

// TestEvacuationCompletes unplugs a cluster with no replug scripted:
// the drain must run to completion, emptying the cluster and releasing
// the hardware, and the recovery record must close.
func TestEvacuationCompletes(t *testing.T) {
	cfg := testConfig()
	a, err := array.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := testTraffic(cfg.Geometry, 4000)
	span := reqs[len(reqs)-1].Arrival
	pulled := topo.ClusterID{Switch: 1, Cluster: 1}
	plan := Plan{Events: []Event{
		{At: span / 4, Kind: KindClusterUnplug, Cluster: pulled},
	}}
	inj := Attach(a, plan, Options{Recover: true})
	if _, err := a.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if a.InFlight() != 0 {
		t.Fatalf("%d requests stuck", a.InFlight())
	}
	st := inj.Stats()
	if len(st.Recoveries) != 1 {
		t.Fatalf("recorded %d recoveries, want 1", len(st.Recoveries))
	}
	r := st.Recoveries[0]
	if r.Done <= r.Start || r.Evacuated == 0 {
		t.Errorf("recovery did not complete: %+v", r)
	}
	if n := len(a.FTL().MappedOnCluster(pulled)); n != 0 {
		t.Errorf("%d pages left on the evacuated cluster", n)
	}
	if a.Health().Cluster(pulled) != topo.ClusterOffline {
		t.Errorf("evacuated cluster is %v, want offline", a.Health().Cluster(pulled))
	}
	if !a.Endpoint(pulled).Unplugged() {
		t.Error("evacuated cluster not released")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Errorf("post-evacuation consistency: %v", err)
	}
}

// TestReferencePlanNoRecovery runs the same scenario with autonomics
// off: affected requests fail (and are accounted), but the run still
// drains completely.
func TestReferencePlanNoRecovery(t *testing.T) {
	cfg := testConfig()
	a, err := array.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := testTraffic(cfg.Geometry, 4000)
	span := reqs[len(reqs)-1].Arrival
	inj := Attach(a, ReferencePlan(cfg.Geometry, span), Options{Recover: false})
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a.InFlight() != 0 {
		t.Fatalf("%d requests stuck after faulted run", a.InFlight())
	}
	fs := a.FaultStats()
	if fs.RequestsFailed == 0 {
		t.Error("no requests failed with recovery off; the faults did nothing")
	}
	if uint64(rec.FailedCount()) != fs.RequestsFailed {
		t.Errorf("recorder failures %d != array counter %d", rec.FailedCount(), fs.RequestsFailed)
	}
	if rec.Count() == 0 {
		t.Error("no requests completed")
	}
	if st := inj.Stats(); len(st.Recoveries) != 0 {
		t.Errorf("recovery ran with Recover off: %+v", st.Recoveries)
	}
	if fs.WritesRedirected != 0 {
		t.Error("writes redirected with recovery off")
	}
}

// TestTransientFaults drives the degradation kinds (stall, channel,
// link, retrain, block faults) from a seeded random plan: the run must
// complete with every surviving request accounted.
func TestTransientFaults(t *testing.T) {
	cfg := testConfig()
	a, err := array.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := testTraffic(cfg.Geometry, 2000)
	span := reqs[len(reqs)-1].Arrival
	plan := Plan{Seed: 11, Random: RandomSpec{Count: 12, Start: 0, End: span}}
	inj := Attach(a, plan, Options{Recover: true})
	rec, err := a.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a.InFlight() != 0 {
		t.Fatalf("%d requests stuck", a.InFlight())
	}
	if got := inj.Stats().Injected; got != 12 {
		t.Errorf("injected %d events, want 12", got)
	}
	if rec.Count()+rec.FailedCount() != 2000 {
		t.Errorf("completed %d + failed %d != submitted 2000", rec.Count(), rec.FailedCount())
	}
	if err := a.CheckConsistency(); err != nil {
		t.Errorf("post-fault consistency: %v", err)
	}
}

// TestReplugMidEvacuation replugs the cluster before its drain can
// finish: the hardware must not be released, and the array stays
// consistent.
func TestReplugMidEvacuation(t *testing.T) {
	cfg := testConfig()
	a, err := array.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := testTraffic(cfg.Geometry, 4000)
	span := reqs[len(reqs)-1].Arrival
	pulled := topo.ClusterID{Switch: 1, Cluster: 1}
	plan := Plan{Events: []Event{
		{At: span / 4, Kind: KindClusterUnplug, Cluster: pulled},
		// One event-step later: in-flight evacuation, nothing drained.
		{At: span/4 + simx.Nanosecond, Kind: KindClusterReplug, Cluster: pulled},
	}}
	Attach(a, plan, Options{Recover: true, EvacConcurrency: 1})
	if _, err := a.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if a.InFlight() != 0 {
		t.Fatalf("%d requests stuck", a.InFlight())
	}
	if got := a.Health().Cluster(pulled); got != topo.ClusterOnline {
		t.Errorf("replugged cluster is %v, want online", got)
	}
	if a.Endpoint(pulled).Unplugged() {
		t.Error("replugged cluster still unplugged")
	}
	if err := a.CheckConsistency(); err != nil {
		t.Errorf("post-replug consistency: %v", err)
	}
}
