package fault

import (
	"errors"
	"fmt"

	"triplea/internal/array"
	"triplea/internal/decision"
	"triplea/internal/simx"
	"triplea/internal/topo"
)

// Options controls how the injector reacts to the faults it delivers.
type Options struct {
	// Recover enables autonomic degraded-mode recovery: lost pages are
	// dropped from the FTL for out-of-place restoration, unplugged
	// clusters evacuate their live data before release, and the FTL
	// allocates around faulted hardware. Off, faults simply break what
	// they hit — the autonomic-off baseline.
	Recover bool
	// EvacConcurrency bounds in-flight evacuation migrations per
	// cluster (default 4) — the repair-bandwidth knob.
	EvacConcurrency int
}

// Recovery records one cluster evacuation: Done-Start is the
// time-to-recover the degraded-array study reports.
type Recovery struct {
	Cluster   topo.ClusterID
	Start     simx.Time
	Done      simx.Time
	Evacuated int // pages moved off the cluster
}

// TTR reports the recovery's duration.
func (r Recovery) TTR() simx.Time { return r.Done - r.Start }

// Stats counts what the injector did.
type Stats struct {
	Injected        int // fault events delivered
	MappingsDropped int // LPNs whose physical page a fault destroyed
	Evacuated       int // pages migrated off degraded clusters
	EvacErrors      int // evacuation migrations that failed
	Recoveries      []Recovery
}

// Injector owns a materialized plan's delivery and recovery for one
// array. Create with Attach before the run starts.
type Injector struct {
	arr    *array.Array
	opt    Options
	events []Event
	stats  Stats
	evacs  map[int]*evac // flat cluster -> in-progress evacuation
	// dec is the array's decision flight recorder (nil when off);
	// evacuation destination choices are recorded through it.
	dec *decision.Recorder
}

// Attach arms the array's fault paths, materializes the plan and
// schedules every event on the array's engine. Call before Run, at
// simulated time zero.
func Attach(a *array.Array, p Plan, opt Options) *Injector {
	if opt.EvacConcurrency <= 0 {
		opt.EvacConcurrency = 4
	}
	inj := &Injector{
		arr:    a,
		opt:    opt,
		events: p.Materialize(a.Config().Geometry),
		evacs:  make(map[int]*evac),
		dec:    a.Decisions(),
	}
	a.ArmFaults()
	a.SetFaultRecovery(opt.Recover)
	eng := a.Engine()
	for _, ev := range inj.events {
		ev := ev
		eng.At(ev.At, func() { inj.apply(ev) })
	}
	return inj
}

// Stats reports what has been injected and recovered so far.
func (inj *Injector) Stats() Stats { return inj.stats }

// Events exposes the materialized schedule (callers must not mutate).
func (inj *Injector) Events() []Event { return inj.events }

// apply delivers one fault event to the hardware and, when recovery is
// on, drives the FTL- and migration-side consequences.
func (inj *Injector) apply(ev Event) {
	inj.stats.Injected++
	a := inj.arr
	g := a.Config().Geometry
	ep := a.Endpoint(ev.Cluster)

	switch ev.Kind {
	case KindFIMMStall:
		ep.FIMM(ev.FIMM).SetCellTimeScale(ev.Factor)

	case KindChannelDegrade:
		ep.FIMM(ev.FIMM).SetChannelScale(ev.Factor)

	case KindLinkDegrade:
		down, up := a.EPLinks(ev.Cluster)
		down.SetRateScale(ev.Factor)
		up.SetRateScale(ev.Factor)

	case KindLinkRetrain:
		down, up := a.EPLinks(ev.Cluster)
		down.Retrain(ev.Duration)
		up.Retrain(ev.Duration)

	case KindBlockReadFail:
		addr := ev.Block.NandAddr(g)
		ep.FIMM(ev.Block.FIMMSlot()).Package(ev.Block.Pkg()).FailBlock(addr)
		if inj.opt.Recover {
			// List before dropping: DropMapping clears the valid bits
			// BlockLPNs reads.
			a.FTL().RetireBlock(ev.Block.BlockKey())
			inj.dropAll(a.FTL().BlockLPNs(ev.Block.BlockKey()))
		}

	case KindBlockWearOut:
		addr := ev.Block.NandAddr(g)
		ep.FIMM(ev.Block.FIMMSlot()).Package(ev.Block.Pkg()).WearOutBlock(addr)
		if inj.opt.Recover {
			// Data stays readable; just never program or erase it again.
			a.FTL().RetireBlock(ev.Block.BlockKey())
		}

	case KindDieReadFail:
		addr := ev.Block.NandAddr(g)
		ep.FIMM(ev.Block.FIMMSlot()).Package(ev.Block.Pkg()).FailDie(addr.Die)
		if inj.opt.Recover {
			fid := ev.Block.FIMMID()
			a.FTL().RetireDie(fid, ev.Block.Pkg(), ev.Block.Die())
			inj.dropAll(a.FTL().MappedMatching(func(p topo.PPN) bool {
				return p.FIMMID() == fid && p.Pkg() == ev.Block.Pkg() &&
					p.Die() == ev.Block.Die()
			}))
		}

	case KindFIMMDeath:
		ep.FIMM(ev.FIMM).Kill()
		id := topo.FIMMID{ClusterID: ev.Cluster, FIMM: ev.FIMM}
		a.Health().SetFIMM(id, topo.FIMMDead)
		if inj.opt.Recover {
			a.FTL().SetFIMMDead(id)
			inj.dropAll(a.FTL().MappedOnFIMM(id))
		}

	case KindClusterUnplug:
		if !inj.opt.Recover {
			// No autonomics: the cluster vanishes, its I/O fails.
			a.Health().SetCluster(ev.Cluster, topo.ClusterOffline)
			ep.SetUnplugged(true)
			return
		}
		// Autonomic hot-swap: degrade (no new placements, reads still
		// served), evacuate live data, then release the hardware.
		a.Health().SetCluster(ev.Cluster, topo.ClusterDegraded)
		inj.evacuate(ev.Cluster)

	case KindClusterReplug:
		if e := inj.evacs[ev.Cluster.Flat(g)]; e != nil {
			// Replugged mid-evacuation: the data is reachable again, so
			// abandon the remaining drain (in-flight moves finish) and
			// don't release the hardware.
			e.canceled = true
			e.queue = nil
			if e.outstanding == 0 {
				e.finish()
			}
		}
		ep.SetUnplugged(false)
		a.Health().SetCluster(ev.Cluster, topo.ClusterOnline)
	}
}

// dropAll removes fault-destroyed mappings; each dropped LPN restores
// out-of-place from its host shadow clone on the next access.
func (inj *Injector) dropAll(lpns []int64) {
	for _, lpn := range lpns {
		if _, ok := inj.arr.FTL().DropMapping(lpn); ok {
			inj.stats.MappingsDropped++
		}
	}
}

// evacuate starts draining a degraded cluster's live data onto the
// remaining placeable FIMMs through the autonomic-migration path.
func (inj *Injector) evacuate(id topo.ClusterID) {
	a := inj.arr
	g := a.Config().Geometry

	// Deterministic destination rotation: placeable FIMMs in flat
	// order, same-switch ones first so evacuation traffic prefers local
	// fabric hops.
	var near, far []topo.FIMMID
	for flat := 0; flat < g.TotalFIMMs(); flat++ {
		fid := topo.FIMMFromFlat(g, flat)
		if fid.ClusterID == id || !a.Health().Placeable(fid) {
			continue
		}
		if fid.Switch == id.Switch {
			near = append(near, fid)
		} else {
			far = append(far, fid)
		}
	}
	targets := append(near, far...)
	if len(targets) == 0 {
		// Nowhere to put the data: behaves like a no-recovery unplug.
		a.Health().SetCluster(id, topo.ClusterOffline)
		a.Endpoint(id).SetUnplugged(true)
		return
	}
	if rec := inj.dec; rec != nil {
		// Record the rotation head's choice with every placeable FIMM as
		// a candidate: same-switch destinations score 1 (preferred local
		// fabric hops), cross-switch ones 0. The rotation then cycles
		// through all of them, so only the first pick is the "decision".
		rec.Begin(decision.Evacuation, id.Flat(g), a.Engine().Now())
		for _, fid := range targets {
			score := 0.0
			if fid.Switch == id.Switch {
				score = 1.0
			}
			rec.Candidate(int64(fid.Flat(g)), score, decision.Eligible)
		}
		first := targets[0]
		score := 0.0
		if first.Switch == id.Switch {
			score = 1.0
		}
		rec.Commit(int64(first.Flat(g)), score, first.ClusterID.Flat(g))
	}

	inj.stats.Recoveries = append(inj.stats.Recoveries,
		Recovery{Cluster: id, Start: a.Engine().Now()})
	e := &evac{
		inj:     inj,
		id:      id,
		flat:    id.Flat(g),
		recIdx:  len(inj.stats.Recoveries) - 1,
		targets: targets,
		queue:   a.FTL().MappedOnCluster(id),
	}
	inj.evacs[e.flat] = e
	e.pump()
}

// evac drives one cluster's evacuation: a bounded-concurrency pump over
// the cluster's mapped LPNs, re-scanned until empty because in-flight
// writes and GC can land new pages while the drain runs.
type evac struct {
	inj     *Injector
	id      topo.ClusterID
	flat    int
	recIdx  int
	targets []topo.FIMMID
	next    int // rotation cursor into targets

	queue       []int64
	outstanding int
	evacuated   int
	pumping     bool // guards against re-entrant pumps from sync dones
	canceled    bool // replugged mid-drain: don't release the hardware
}

func (e *evac) pump() {
	if e.pumping {
		return
	}
	e.pumping = true
	for e.outstanding < e.inj.opt.EvacConcurrency && len(e.queue) > 0 {
		lpn := e.queue[0]
		e.queue = e.queue[1:]
		e.startOne(lpn)
	}
	e.pumping = false
	if e.outstanding == 0 && len(e.queue) == 0 {
		e.finish()
	}
}

func (e *evac) startOne(lpn int64) {
	a := e.inj.arr
	ppn, ok := a.FTL().Lookup(lpn)
	if !ok || ppn.ClusterID() != e.id {
		return // dropped or already moved since the scan
	}
	dst := e.targets[e.next%len(e.targets)]
	e.next++
	e.outstanding++
	a.MigratePage(lpn, dst, false, func(err error) {
		e.outstanding--
		switch {
		case err == nil:
			e.inj.stats.Evacuated++
			e.evacuated++
		case errors.Is(err, array.ErrUnmapped):
			// Dropped or overwritten mid-move — nothing left to save.
		default:
			e.inj.stats.EvacErrors++
		}
		e.pump()
	})
}

// finish re-scans for stragglers and, once the cluster is truly empty,
// releases the hardware and closes the recovery record.
func (e *evac) finish() {
	a := e.inj.arr
	if !e.canceled {
		if more := a.FTL().MappedOnCluster(e.id); len(more) > 0 {
			e.queue = more
			e.pump()
			return
		}
	}
	rec := &e.inj.stats.Recoveries[e.recIdx]
	rec.Done = a.Engine().Now()
	rec.Evacuated = e.evacuated
	delete(e.inj.evacs, e.flat)
	if e.canceled {
		return
	}
	a.Endpoint(e.id).SetUnplugged(true)
	a.Health().SetCluster(e.id, topo.ClusterOffline)
}

// String renders an event for logs and plan dumps.
func (ev Event) String() string {
	return fmt.Sprintf("%v %s %v/f%d", ev.At, ev.Kind, ev.Cluster, ev.FIMM)
}
