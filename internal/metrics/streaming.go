package metrics

import (
	"sort"

	"triplea/internal/simx"
)

// Streaming-backend state: everything here is sized at construction and
// mutated in place, so the per-request record path performs zero
// allocations (certified by the hotzero analyzer) and total memory is
// independent of run length.

const (
	// timeBucketCount is the fixed resolution of the completion /
	// failure timelines. When an observation lands past the covered
	// range the bucket width doubles and adjacent pairs merge, so the
	// array never grows.
	timeBucketCount = 256

	// timeBucketInitWidth starts the timelines at 16µs resolution
	// (4ms covered); realistic runs double a handful of times.
	timeBucketInitWidth = 16 * simx.Microsecond

	// seriesReservoirCap bounds the Figure-16 time-series reservoir.
	seriesReservoirCap = 2048

	// failureExemplarCap bounds the retained failure exemplars; the
	// full failure population lives in the requests.failed counter
	// and the failures.timeline buckets.
	failureExemplarCap = 128
)

// TimeBuckets is a fixed-size histogram over simulated time with
// range-doubling: counts of events per aligned bucket, merging pairs
// whenever an event lands beyond the covered range. Interval queries
// treat each bucket's mass as uniform, so CompletedBetween /
// FailedBetween become approximations under streaming (exact when the
// query bounds are bucket-aligned).
type TimeBuckets struct {
	width  simx.Time
	counts []uint64 // len timeBucketCount, allocated once
	used   int      // buckets [0, used) may be nonzero
	total  uint64
}

// NewTimeBuckets returns an empty timeline starting at the given bucket
// width.
func NewTimeBuckets(width simx.Time) *TimeBuckets {
	if width <= 0 {
		width = timeBucketInitWidth
	}
	return &TimeBuckets{width: width, counts: make([]uint64, timeBucketCount)}
}

// Observe counts one event at the given time.
func (tb *TimeBuckets) Observe(at simx.Time) {
	if at < 0 {
		at = 0
	}
	idx := int(at / tb.width)
	for idx >= timeBucketCount {
		tb.halve()
		idx = int(at / tb.width)
	}
	tb.counts[idx]++
	if idx+1 > tb.used {
		tb.used = idx + 1
	}
	tb.total++
}

// halve doubles the bucket width in place by merging adjacent pairs.
func (tb *TimeBuckets) halve() {
	for i := 0; i < timeBucketCount/2; i++ {
		tb.counts[i] = tb.counts[2*i] + tb.counts[2*i+1]
	}
	for i := timeBucketCount / 2; i < timeBucketCount; i++ {
		tb.counts[i] = 0
	}
	tb.width += tb.width // double: a dimensionless scale, not a new literal duration
	tb.used = (tb.used + 1) / 2
}

// Width reports the current bucket width.
func (tb *TimeBuckets) Width() simx.Time { return tb.width }

// Total reports all observations.
func (tb *TimeBuckets) Total() uint64 { return tb.total }

// CountBetween estimates how many events fell in [lo, hi), allocating
// each bucket's mass uniformly across its span.
func (tb *TimeBuckets) CountBetween(lo, hi simx.Time) float64 {
	if hi <= lo || tb.total == 0 {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	var mass float64
	for i := 0; i < tb.used; i++ {
		if tb.counts[i] == 0 {
			continue
		}
		bLo := simx.Time(i) * tb.width
		bHi := bLo + tb.width
		oLo, oHi := bLo, bHi
		if lo > oLo {
			oLo = lo
		}
		if hi < oHi {
			oHi = hi
		}
		if oHi <= oLo {
			continue
		}
		mass += float64(tb.counts[i]) * float64(oHi-oLo) / float64(tb.width)
	}
	return mass
}

// Kind implements Metric.
func (tb *TimeBuckets) Kind() string { return "timebuckets" }

func (tb *TimeBuckets) exportJSON() []byte {
	return mustJSON(struct {
		Kind  string    `json:"kind"`
		Width simx.Time `json:"width"`
		Total uint64    `json:"total"`
	}{tb.Kind(), tb.width, tb.total})
}

// strideReservoir keeps every stride-th observation in a fixed buffer;
// when the buffer fills it compacts in place (keeping every other
// entry) and doubles the stride, so the retained points always form an
// evenly spaced sample of the whole run. Deterministic — no randomness
// — and allocation-free after construction.
type strideReservoir struct {
	buf    []SeriesPoint // len seriesReservoirCap, allocated once
	n      int
	stride uint64
	seen   uint64
}

func newStrideReservoir() *strideReservoir {
	return &strideReservoir{buf: make([]SeriesPoint, seriesReservoirCap), stride: 1}
}

func (sr *strideReservoir) observe(p SeriesPoint) {
	onStride := sr.seen%sr.stride == 0
	sr.seen++
	if !onStride {
		return
	}
	if sr.n == len(sr.buf) {
		// buf[i] holds observation i*stride; keeping even i leaves
		// exactly the multiples of the doubled stride.
		for i := 0; i < sr.n/2; i++ {
			sr.buf[i] = sr.buf[2*i]
		}
		sr.n /= 2
		sr.stride *= 2
		if (sr.seen-1)%sr.stride != 0 {
			return
		}
	}
	sr.buf[sr.n] = p
	sr.n++
}

// sample reports at most n retained points in (Submit, ID) order.
func (sr *strideReservoir) sample(n int) []SeriesPoint {
	if n <= 0 || sr.n == 0 {
		return nil
	}
	out := make([]SeriesPoint, sr.n)
	copy(out, sr.buf[:sr.n])
	sort.Slice(out, func(i, j int) bool {
		if out[i].Submit != out[j].Submit {
			return out[i].Submit < out[j].Submit
		}
		return out[i].ID < out[j].ID
	})
	return downsampleSeries(out, n)
}

// failureRing retains the most recent failureExemplarCap failures in a
// fixed ring.
type failureRing struct {
	buf  []Failure // len failureExemplarCap, allocated once
	next int
	full bool
}

func newFailureRing() *failureRing {
	return &failureRing{buf: make([]Failure, failureExemplarCap)}
}

func (fr *failureRing) add(f Failure) {
	fr.buf[fr.next] = f
	fr.next++
	if fr.next == len(fr.buf) {
		fr.next = 0
		fr.full = true
	}
}

// ordered reports the retained exemplars oldest-first.
func (fr *failureRing) ordered() []Failure {
	if !fr.full {
		out := make([]Failure, fr.next)
		copy(out, fr.buf[:fr.next])
		return out
	}
	out := make([]Failure, len(fr.buf))
	n := copy(out, fr.buf[fr.next:])
	copy(out[n:], fr.buf[:fr.next])
	return out
}

func (fr *failureRing) len() int {
	if fr.full {
		return len(fr.buf)
	}
	return fr.next
}

// streamState is the Recorder's streaming backend: fixed-footprint
// registry metrics replacing the exact sample buffers.
type streamState struct {
	lat       *Histogram
	sustained *Windowed
	completed *TimeBuckets
	failedAt  *TimeBuckets
	series    *strideReservoir
	exemplars *failureRing
}

func newStreamState(reg *Registry, window simx.Time) *streamState {
	st := &streamState{
		lat:       NewHistogram(),
		sustained: NewWindowed(window),
		completed: NewTimeBuckets(timeBucketInitWidth),
		failedAt:  NewTimeBuckets(timeBucketInitWidth),
		series:    newStrideReservoir(),
		exemplars: newFailureRing(),
	}
	reg.Register("latency", st.lat)
	reg.Register("iops.sustained", st.sustained)
	reg.Register("completions.timeline", st.completed)
	reg.Register("failures.timeline", st.failedAt)
	return st
}

// observe folds one completed request into the streaming state.
func (st *streamState) observe(r Record, lat simx.Time) {
	st.lat.Observe(lat)
	st.sustained.Observe(r.Complete)
	st.completed.Observe(r.Complete)
	st.series.observe(SeriesPoint{ID: r.ID, Submit: r.Submit, Latency: lat})
}

// sustainedIOPS answers the sustained-throughput query. The incremental
// tracker is exact for the window fixed at construction; for any other
// width the best-known rate is returned as the estimate (every caller
// in this repository uses the configured window).
func (st *streamState) sustainedIOPS(_ simx.Time) float64 {
	return st.sustained.BestRate()
}
