package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"triplea/internal/simx"
)

// Metric is one named statistic held by a Registry. Implementations are
// threadsafe by isolation: each lives inside exactly one single-threaded
// simulation (the isosafe/nospawn contract), so they carry no locks.
// Every metric exports itself as one deterministic JSON value; the
// unexported method keeps the implementation set closed to this
// package, which is what lets the registry promise a stable export
// schema.
type Metric interface {
	// Kind names the metric's type ("counter", "windowed",
	// "histogram", "distribution", "timebuckets").
	Kind() string
	exportJSON() []byte
}

// mustJSON marshals v, which by construction is a plain exported struct
// of numbers, and so cannot fail.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("metrics: export marshal: %v", err))
	}
	return b
}

// Registry maps names to metrics and exports them uniformly. Names are
// dotted paths ("fault.pages_failed"); registration order is irrelevant
// because every read path sorts.
type Registry struct {
	names []string
	items map[string]Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: make(map[string]Metric)}
}

// Register adds m under name. Duplicate or empty names are programming
// errors and panic.
func (g *Registry) Register(name string, m Metric) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	if _, ok := g.items[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	g.items[name] = m
	g.names = append(g.names, name)
}

// NewCounter registers and returns a fresh counter under name.
func (g *Registry) NewCounter(name string) *Counter {
	c := &Counter{}
	g.Register(name, c)
	return c
}

// Lookup reports the metric registered under name.
func (g *Registry) Lookup(name string) (Metric, bool) {
	m, ok := g.items[name]
	return m, ok
}

// Names reports all registered names, sorted.
func (g *Registry) Names() []string {
	out := make([]string, len(g.names))
	copy(out, g.names)
	sort.Strings(out)
	return out
}

// ExportJSON serialises every metric as one JSON object keyed by name.
// Output is byte-deterministic: names are sorted and each metric's
// value is a fixed-field struct, so two runs that observed the same
// sequence export identical bytes.
func (g *Registry) ExportJSON() []byte {
	names := g.Names()
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(mustJSON(n))
		buf.WriteByte(':')
		buf.Write(g.items[n].exportJSON())
	}
	buf.WriteByte('}')
	return buf.Bytes()
}

// Counter is a monotonically increasing event count.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v }

// Kind implements Metric.
func (c *Counter) Kind() string { return "counter" }

func (c *Counter) exportJSON() []byte {
	return mustJSON(struct {
		Kind  string `json:"kind"`
		Value uint64 `json:"value"`
	}{c.Kind(), c.v})
}

// Windowed tracks the best completion count over any aligned window of
// a fixed width, incrementally: observations arrive in nondecreasing
// time order (simulation completions are monotone), so one open bucket
// and a running best replace the per-query map scan. O(1) state, O(1)
// per observation.
type Windowed struct {
	window simx.Time
	cur    int64 // index of the open aligned window
	n      uint64
	best   uint64
	total  uint64
}

// NewWindowed returns a tracker for aligned windows of the given width.
func NewWindowed(window simx.Time) *Windowed {
	if window <= 0 {
		panic(fmt.Sprintf("metrics: windowed width %v", window))
	}
	return &Windowed{window: window, cur: -1}
}

// Observe counts one completion at the given time.
func (w *Windowed) Observe(at simx.Time) {
	if at < 0 {
		at = 0
	}
	b := int64(at / w.window)
	if b != w.cur {
		if b < w.cur {
			// Out-of-order straggler: fold into the open window
			// rather than reopening a closed one.
			b = w.cur
		} else {
			if w.n > w.best {
				w.best = w.n
			}
			w.cur, w.n = b, 0
		}
	}
	w.n++
	w.total++
}

// Window reports the configured window width.
func (w *Windowed) Window() simx.Time { return w.window }

// Total reports all observations.
func (w *Windowed) Total() uint64 { return w.total }

// BestCount reports the highest count in any single window, including
// the still-open one.
func (w *Windowed) BestCount() uint64 {
	best := w.best
	if w.n > best {
		best = w.n
	}
	return best
}

// BestRate reports the best window's count as a per-second rate.
func (w *Windowed) BestRate() float64 {
	if w.total == 0 {
		return 0
	}
	return float64(w.BestCount()) / (float64(w.window) / float64(simx.Second))
}

// Kind implements Metric.
func (w *Windowed) Kind() string { return "windowed" }

func (w *Windowed) exportJSON() []byte {
	return mustJSON(struct {
		Kind   string    `json:"kind"`
		Window simx.Time `json:"window"`
		Best   uint64    `json:"best"`
		Total  uint64    `json:"total"`
	}{w.Kind(), w.window, w.BestCount(), w.total})
}

// Histogram buckets of the latency histogram: log-spaced with
// histSubBits mantissa bits, i.e. every power-of-two octave above
// 2^histSubBits splits into histSubCount equal sub-buckets, and values
// below histSubCount are exact. A bucket's relative width is at most
// 2^-histSubBits (0.78%), so reporting the bucket midpoint bounds the
// relative error of any quantile at 2^-(histSubBits+1) ≈ 0.39% — well
// inside the 1% streaming-accuracy contract (docs/metrics.md). The
// layout is fixed at compile time: indexing is pure bit arithmetic,
// independent of the data, which is what makes streaming runs
// byte-deterministic.
const (
	histSubBits  = 7
	histSubCount = 1 << histSubBits // values below this are exact
	histBuckets  = (64-histSubBits)*histSubCount + histSubCount
)

// bucketIndex maps a nonnegative value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= histSubBits
	sub := int((v >> (uint(exp) - histSubBits)) & (histSubCount - 1))
	return (exp-histSubBits+1)*histSubCount + sub
}

// bucketMid reports the bucket's representative value: its midpoint,
// which is the value itself for the exact low range.
func bucketMid(idx int) uint64 {
	if idx < histSubCount {
		return uint64(idx)
	}
	exp := uint(idx/histSubCount - 1 + histSubBits)
	sub := uint64(idx % histSubCount)
	lo := uint64(1)<<exp | sub<<(exp-histSubBits)
	width := uint64(1) << (exp - histSubBits)
	return lo + width/2
}

// Histogram is a fixed-layout log-bucketed latency distribution:
// constant memory (histBuckets counters), allocation-free observation,
// quantiles by bucket walk. Exact min, max, and sum ride along so the
// distribution's edges and mean stay precise.
type Histogram struct {
	counts []uint64 // len histBuckets, allocated once at construction
	count  uint64
	min    simx.Time
	max    simx.Time
	sum    simx.Time
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets)}
}

// Observe adds one value. Negative values clamp to zero.
func (h *Histogram) Observe(v simx.Time) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(uint64(v))]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.sum += v
	h.count++
}

// Count reports observations.
func (h *Histogram) Count() uint64 { return h.count }

// Min and Max report the exact extremes.
func (h *Histogram) Min() simx.Time { return h.min }
func (h *Histogram) Max() simx.Time { return h.max }

// Sum reports the exact total.
func (h *Histogram) Sum() simx.Time { return h.sum }

// ValueAtRank reports the value at the given 1-based rank in the sorted
// observation sequence: the representative of the bucket holding that
// rank, clamped to the exact extremes (so rank 1 and rank count are
// exact).
func (h *Histogram) ValueAtRank(rank uint64) simx.Time {
	if h.count == 0 {
		return 0
	}
	if rank <= 1 {
		return h.min
	}
	if rank >= h.count {
		return h.max
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := simx.Time(bucketMid(i))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Quantile reports the p-th percentile, p in [0,100], by nearest rank —
// the same rank rule the exact backend uses, so the two backends differ
// only by bucket width.
func (h *Histogram) Quantile(p float64) simx.Time {
	if h.count == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of [0,100]", p))
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	return h.ValueAtRank(rank)
}

// Kind implements Metric.
func (h *Histogram) Kind() string { return "histogram" }

func (h *Histogram) exportJSON() []byte {
	var p50, p95, p99 simx.Time
	if h.count > 0 {
		p50, p95, p99 = h.Quantile(50), h.Quantile(95), h.Quantile(99)
	}
	return mustJSON(struct {
		Kind  string    `json:"kind"`
		Count uint64    `json:"count"`
		Min   simx.Time `json:"min"`
		Max   simx.Time `json:"max"`
		Sum   simx.Time `json:"sum"`
		P50   simx.Time `json:"p50"`
		P95   simx.Time `json:"p95"`
		P99   simx.Time `json:"p99"`
	}{h.Kind(), h.count, h.min, h.max, h.sum, p50, p95, p99})
}

// Distribution accumulates per-request execution-time breakdowns — the
// component decomposition the paper's Figures 9/10/15 report — as a
// running sum plus count. O(1) state for what used to be derivable only
// from the full sample.
type Distribution struct {
	count uint64
	sum   Breakdown
}

// Observe folds one request's breakdown into the running sum.
func (d *Distribution) Observe(b Breakdown) {
	d.sum.Add(b)
	d.count++
}

// Count reports observations.
func (d *Distribution) Count() uint64 { return d.count }

// Sum reports the summed components.
func (d *Distribution) Sum() Breakdown { return d.sum }

// Mean reports the per-request mean of each component.
func (d *Distribution) Mean() Breakdown { return d.sum.Scale(int(d.count)) }

// Kind implements Metric.
func (d *Distribution) Kind() string { return "distribution" }

func (d *Distribution) exportJSON() []byte {
	return mustJSON(struct {
		Kind  string    `json:"kind"`
		Count uint64    `json:"count"`
		Sum   Breakdown `json:"sum"`
	}{d.Kind(), d.count, d.sum})
}
