package metrics

import (
	"triplea/internal/simx"
	"triplea/internal/units"
)

// Failure is one host request terminated by an injected fault rather
// than completed. Failures are kept apart from the completed records so
// every latency statistic keeps its meaning; availability accounting
// (internal/experiments' degraded-array study) reads both populations.
type Failure struct {
	ID     uint64
	Kind   RequestKind
	Pages  units.Pages
	Submit simx.Time
	At     simx.Time // when the array gave up on the request
}

// RecordFailure adds one fault-terminated request. The exact backend
// keeps the full log; the streaming backend keeps the count, the
// failure timeline, and a capped ring of exemplars, so fault-heavy
// million-request runs stay bounded.
func (rc *Recorder) RecordFailure(f Failure) {
	rc.failedCtr.Inc()
	if rc.backend == Streaming {
		rc.stream.failedAt.Observe(f.At)
		rc.stream.exemplars.add(f)
		return
	}
	rc.failures = append(rc.failures, f) //simlint:coldalloc fault path: exact-backend failure log
}

// Failures exposes the fault-terminated requests (callers must not
// mutate). Under streaming this is the retained exemplar window
// (oldest-first, at most failureExemplarCap entries), not the full
// population — FailedCount has the true total.
func (rc *Recorder) Failures() []Failure {
	if rc.backend == Streaming {
		return rc.stream.exemplars.ordered()
	}
	return rc.failures
}

// FailedCount reports how many requests a fault terminated.
func (rc *Recorder) FailedCount() int { return int(rc.failedCtr.Value()) }

// CompletedBetween counts requests that completed in [lo, hi) — the
// per-phase availability numerator. Exact backend: precise scan.
// Streaming backend: estimated from the completion timeline's
// range-doubling buckets (exact when [lo,hi) is bucket-aligned).
func (rc *Recorder) CompletedBetween(lo, hi simx.Time) int {
	if rc.backend == Streaming {
		return int(rc.stream.completed.CountBetween(lo, hi) + 0.5)
	}
	n := 0
	for _, r := range rc.records {
		if r.Complete >= lo && r.Complete < hi {
			n++
		}
	}
	return n
}

// FailedBetween counts requests that failed in [lo, hi), with the same
// backend split as CompletedBetween.
func (rc *Recorder) FailedBetween(lo, hi simx.Time) int {
	if rc.backend == Streaming {
		return int(rc.stream.failedAt.CountBetween(lo, hi) + 0.5)
	}
	n := 0
	for _, f := range rc.failures {
		if f.At >= lo && f.At < hi {
			n++
		}
	}
	return n
}

// Availability reports the completed fraction of all requests settled
// in [lo, hi), or 1 when none settled there.
func (rc *Recorder) Availability(lo, hi simx.Time) float64 {
	done := rc.CompletedBetween(lo, hi)
	failed := rc.FailedBetween(lo, hi)
	if done+failed == 0 {
		return 1
	}
	return float64(done) / float64(done+failed)
}
