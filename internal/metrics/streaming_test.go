package metrics

import (
	"bytes"
	"math"
	"testing"

	"triplea/internal/simx"
)

// --- nearest-rank percentile semantics (both backends) ---

// TestPercentileNearestRank pins the nearest-rank definition
// rank = ceil(p/100 * n), clamped to [1, n] — the fix for the old
// truncating int(p/100*(n-1)) indexing, which returned the wrong
// order statistic for most (p, n) pairs (e.g. P50 of [1..4] gave 2
// via index 1 instead of the rank-2 value by accident, but P75 gave
// 3 via index 2 where nearest-rank demands rank ceil(3)=3 too; the
// cases below include pairs where the two rules disagree).
func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		name string
		n    int       // latencies are 1..n (in simx.Time units)
		p    float64   // percentile
		want simx.Time // nearest-rank answer
	}{
		{"P0 clamps to min", 4, 0, 1},
		{"P100 is max", 4, 100, 4},
		{"P50 even n", 4, 50, 2},         // ceil(0.5*4)=2
		{"P75 even n", 4, 75, 3},         // ceil(3)=3; old floor rule gave index 2 -> 3 too, but
		{"P25 even n", 4, 25, 1},         // ceil(1)=1; old rule: int(0.25*3)=0 -> 1
		{"P51 just past half", 4, 51, 3}, /* ceil(2.04)=3; old rule: int(0.51*3)=1 -> 2 */
		{"P50 odd n", 5, 50, 3},          // ceil(2.5)=3 (the median)
		{"P90 ten", 10, 90, 9},           // ceil(9)=9; old rule: int(0.9*9)=8 -> 9
		{"P95 ten", 10, 95, 10},          // ceil(9.5)=10; old rule: int(.95*9)=8 -> 9 (wrong)
		{"P99 hundred", 100, 99, 99},
		{"P99 101 samples", 101, 99, 100}, // ceil(99.99)=100
		{"P1 hundred", 100, 1, 1},
		{"single sample", 1, 50, 1},
	}
	for _, backend := range []Backend{Exact, Streaming} {
		for _, tc := range cases {
			rc := NewRecorderWith(backend, DefaultSustainedWindow)
			for i := 1; i <= tc.n; i++ {
				rc.Record(rec(uint64(i), 0, simx.Time(i)))
			}
			// Latencies 1..n are all below histSubCount, so the
			// streaming histogram resolves them exactly and both
			// backends must agree to the nanosecond.
			if got := rc.Percentile(tc.p); got != tc.want {
				t.Errorf("%s/%s: Percentile(%v) with n=%d = %v, want %v",
					backend, tc.name, tc.p, tc.n, got, tc.want)
			}
		}
	}
}

// --- streaming-vs-exact accuracy property ---

// synthStream drives identical seeded workloads into both recorders:
// bursty mixed read/write traffic whose latencies span ~1us..16ms
// (four orders of magnitude, exercising many histogram octaves).
func synthStream(seed uint64, n int, rcs ...*Recorder) {
	rng := simx.NewRNG(seed)
	clock := simx.Time(0)
	for i := 0; i < n; i++ {
		clock += simx.Time(rng.Intn(3000)) * simx.Nanosecond
		lat := simx.Time(1000+rng.Intn(1<<uint(10+rng.Intn(14)))) * simx.Nanosecond
		r := Record{ID: uint64(i), Kind: Read, Pages: 1, Submit: clock, Complete: clock + lat}
		if rng.Float64() < 0.3 {
			r.Kind = Write
		}
		r.Breakdown = Breakdown{Texe: lat / 2, LinkWait: lat / 4}
		for _, rc := range rcs {
			rc.Record(r)
		}
	}
}

// TestPropertyStreamingAccuracy pins the streaming backend's headline
// accuracy contract: P50/P95/P99 within 1% relative error of the
// exact backend across seeded workloads (the histogram's 128
// sub-buckets per octave bound the bucket-midpoint error at ~0.39%,
// so 1% holds with margin).
func TestPropertyStreamingAccuracy(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1000, 123456789} {
		exact := NewRecorderWith(Exact, DefaultSustainedWindow)
		stream := NewRecorderWith(Streaming, DefaultSustainedWindow)
		synthStream(seed, 20000, exact, stream)
		for _, p := range []float64{50, 95, 99} {
			want := exact.Percentile(p)
			got := stream.Percentile(p)
			relErr := math.Abs(float64(got)-float64(want)) / float64(want)
			if relErr > 0.01 {
				t.Errorf("seed %d: P%v exact=%v streaming=%v relative error %.4f > 1%%",
					seed, p, want, got, relErr)
			}
		}
		// Aggregate stats are computed identically in both backends.
		if exact.AvgLatency() != stream.AvgLatency() {
			t.Errorf("seed %d: AvgLatency exact=%v streaming=%v", seed, exact.AvgLatency(), stream.AvgLatency())
		}
		if exact.IOPS() != stream.IOPS() {
			t.Errorf("seed %d: IOPS diverged", seed)
		}
	}
}

// TestSustainedIOPSBackendsAgree pins the windowed tracker against the
// exact map scan at the recorder level. The simulator records requests
// at completion time, so completions are fed in nondecreasing order —
// the regime where the incremental tracker is exact, not approximate.
func TestSustainedIOPSBackendsAgree(t *testing.T) {
	exact := NewRecorderWith(Exact, DefaultSustainedWindow)
	stream := NewRecorderWith(Streaming, DefaultSustainedWindow)
	rng := simx.NewRNG(11)
	clock := simx.Time(0)
	for i := 0; i < 10000; i++ {
		// Bursty completion stream: quiet gaps then dense windows.
		if rng.Intn(50) == 0 {
			clock += simx.Time(rng.Intn(int(DefaultSustainedWindow)))
		}
		clock += simx.Time(rng.Intn(2000)) * simx.Nanosecond
		r := rec(uint64(i), clock-simx.Microsecond, clock)
		exact.Record(r)
		stream.Record(r)
	}
	w, s := exact.SustainedIOPS(DefaultSustainedWindow), stream.SustainedIOPS(DefaultSustainedWindow)
	if w != s {
		t.Errorf("SustainedIOPS exact=%v streaming=%v", w, s)
	}
	if w <= 0 {
		t.Errorf("degenerate sustained rate %v", w)
	}
}

// TestStreamingMinMaxExact pins that min and max latency are tracked
// exactly (not bucket-approximated) under streaming: P0 and P100 must
// equal the true extremes.
func TestStreamingMinMaxExact(t *testing.T) {
	exact := NewRecorderWith(Exact, DefaultSustainedWindow)
	stream := NewRecorderWith(Streaming, DefaultSustainedWindow)
	synthStream(99, 5000, exact, stream)
	if exact.Percentile(0) != stream.Percentile(0) {
		t.Errorf("P0: exact=%v streaming=%v", exact.Percentile(0), stream.Percentile(0))
	}
	if exact.MaxLatency() != stream.MaxLatency() {
		t.Errorf("P100: exact=%v streaming=%v", exact.MaxLatency(), stream.MaxLatency())
	}
}

// --- determinism: same seed, byte-identical registry export ---

func TestStreamingExportDeterminism(t *testing.T) {
	run := func() []byte {
		rc := NewRecorderWith(Streaming, DefaultSustainedWindow)
		synthStream(42, 10000, rc)
		rc.RecordFailure(Failure{ID: 3, Kind: Write, At: 5 * simx.Microsecond})
		return rc.ExportJSON()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed streaming exports differ:\n%s\n---\n%s", a, b)
	}
	if len(a) == 0 || a[0] != '{' {
		t.Fatalf("export is not a JSON object: %q", a)
	}
}

// --- bounded failure log under streaming ---

func TestStreamingFailureLogBounded(t *testing.T) {
	rc := NewRecorderWith(Streaming, DefaultSustainedWindow)
	const total = 3 * failureExemplarCap
	for i := 0; i < total; i++ {
		rc.RecordFailure(Failure{ID: uint64(i), Kind: Read, At: simx.Time(i) * simx.Microsecond})
	}
	if got := rc.FailedCount(); got != total {
		t.Errorf("FailedCount = %d, want %d", got, total)
	}
	fs := rc.Failures()
	if len(fs) != failureExemplarCap {
		t.Fatalf("Failures len = %d, want cap %d", len(fs), failureExemplarCap)
	}
	// The ring keeps the most recent exemplars, oldest first.
	wantFirst := uint64(total - failureExemplarCap)
	if fs[0].ID != wantFirst || fs[len(fs)-1].ID != total-1 {
		t.Errorf("ring window [%d..%d], want [%d..%d]",
			fs[0].ID, fs[len(fs)-1].ID, wantFirst, total-1)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].ID != fs[i-1].ID+1 {
			t.Fatalf("ring order broken at %d: %d after %d", i, fs[i].ID, fs[i-1].ID)
		}
	}
	// Under exact, the full log is retained.
	ex := NewRecorderWith(Exact, DefaultSustainedWindow)
	for i := 0; i < total; i++ {
		ex.RecordFailure(Failure{ID: uint64(i), Kind: Read, At: simx.Time(i) * simx.Microsecond})
	}
	if len(ex.Failures()) != total {
		t.Errorf("exact backend truncated failures: %d", len(ex.Failures()))
	}
}

// --- histogram internals ---

// TestBucketIndexMid pins the HDR bucket layout: every value maps to a
// bucket whose representative midpoint is within the sub-bucket width
// (relative error <= 2^-histSubBits, ~0.78% worst case bound; in
// practice <= 0.39% at the midpoint).
func TestBucketIndexMid(t *testing.T) {
	rng := simx.NewRNG(7)
	check := func(v uint64) {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		mid := bucketMid(idx)
		if v < histSubCount {
			if mid != v {
				t.Fatalf("exact region: mid(%d) = %d", v, mid)
			}
			return
		}
		relErr := math.Abs(float64(mid)-float64(v)) / float64(v)
		if relErr > 1.0/histSubCount {
			t.Fatalf("bucketMid(%d) = %d, relative error %.5f", v, mid, relErr)
		}
	}
	for v := uint64(0); v < 4096; v++ {
		check(v)
	}
	for i := 0; i < 10000; i++ {
		check(uint64(rng.Intn(1 << 40)))
	}
	check(math.MaxUint64)
	// Bucket indexes are monotone in the value.
	prev := -1
	for v := uint64(0); v < 100000; v += 37 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = idx
	}
}

func TestWindowedMatchesMapScan(t *testing.T) {
	const window = simx.Millisecond
	rng := simx.NewRNG(3)
	w := NewWindowed(window)
	buckets := make(map[int64]int)
	clock := simx.Time(0)
	for i := 0; i < 5000; i++ {
		clock += simx.Time(rng.Intn(2000)) * simx.Nanosecond
		w.Observe(clock)
		buckets[int64(clock/window)]++
	}
	best := 0
	//simlint:ordered commutative max over buckets
	for _, n := range buckets {
		if n > best {
			best = n
		}
	}
	if got := w.BestCount(); got != uint64(best) {
		t.Errorf("BestCount = %d, map scan = %d", got, best)
	}
}

// --- registry surface ---

func TestRegistryExportSortedAndDupPanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("zeta")
	reg.NewCounter("alpha").Add(3)
	out := reg.ExportJSON()
	want := `{"alpha":{"kind":"counter","value":3},"zeta":{"kind":"counter","value":0}}`
	if !bytes.Equal(out, []byte(want)) {
		t.Errorf("export = %s", out)
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "alpha" {
		t.Errorf("Names = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	reg.NewCounter("alpha")
}
