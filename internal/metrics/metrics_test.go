package metrics

import (
	"testing"
	"testing/quick"

	"triplea/internal/simx"
)

func rec(id uint64, submit, complete simx.Time) Record {
	return Record{ID: id, Kind: Read, Pages: 1, Submit: submit, Complete: complete}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("RequestKind.String mismatch")
	}
}

func TestBreakdownAddTotal(t *testing.T) {
	var b Breakdown
	b.Add(Breakdown{RCStall: 1, SwitchStall: 2, EPWait: 3, StorageWait: 4,
		LinkWait: 5, Texe: 6, LinkXfer: 7, FabricXfer: 8})
	b.Add(Breakdown{RCStall: 1})
	if b.RCStall != 2 || b.Total() != 37 {
		t.Errorf("b = %+v, Total = %v", b, b.Total())
	}
	if b.QueueStall() != 2+2+3+4+5 {
		t.Errorf("QueueStall = %v", b.QueueStall())
	}
	if b.LinkContention() != 5 || b.StorageContention() != 7 {
		t.Errorf("contentions = %v, %v", b.LinkContention(), b.StorageContention())
	}
}

func TestBreakdownScale(t *testing.T) {
	b := Breakdown{RCStall: 10, Texe: 20}
	m := b.Scale(2)
	if m.RCStall != 5 || m.Texe != 10 {
		t.Errorf("Scale = %+v", m)
	}
	if z := b.Scale(0); z.Total() != 0 {
		t.Errorf("Scale(0) = %+v", z)
	}
}

func TestRecorderBasics(t *testing.T) {
	rc := NewRecorder()
	if rc.Count() != 0 || rc.IOPS() != 0 || rc.AvgLatency() != 0 {
		t.Error("empty recorder not zero")
	}
	rc.Record(rec(1, 0, 100))
	rc.Record(rec(2, 50, 250))
	w := rec(3, 100, 200)
	w.Kind = Write
	rc.Record(w)

	if rc.Count() != 3 || rc.Reads() != 2 || rc.Writes() != 1 {
		t.Errorf("counts: %d/%d/%d", rc.Count(), rc.Reads(), rc.Writes())
	}
	if got := rc.AvgLatency(); got != (100+200+100)/3 {
		t.Errorf("AvgLatency = %v", got)
	}
	// 3 requests over [0, 250] ns => 3 / 250e-9 s = 12e6 IOPS.
	if got := rc.IOPS(); got != 12_000_000 {
		t.Errorf("IOPS = %v, want 12e6", got)
	}
}

func TestRecorderRejectsTimeTravel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("complete<submit not rejected")
		}
	}()
	NewRecorder().Record(rec(1, 100, 50))
}

func TestPercentiles(t *testing.T) {
	rc := NewRecorder()
	for i := 1; i <= 100; i++ {
		rc.Record(rec(uint64(i), 0, simx.Time(i)))
	}
	if got := rc.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := rc.Percentile(100); got != 100 {
		t.Errorf("P100 = %v", got)
	}
	if got := rc.Percentile(50); got < 49 || got > 51 {
		t.Errorf("P50 = %v", got)
	}
	if rc.MaxLatency() != 100 {
		t.Errorf("MaxLatency = %v", rc.MaxLatency())
	}
	defer func() {
		if recover() == nil {
			t.Error("Percentile(101) did not panic")
		}
	}()
	rc.Percentile(101)
}

func TestCDF(t *testing.T) {
	rc := NewRecorder()
	for i := 1; i <= 1000; i++ {
		rc.Record(rec(uint64(i), 0, simx.Time(i)*simx.Microsecond))
	}
	pts := rc.CDF(10)
	if len(pts) != 10 {
		t.Fatalf("CDF returned %d points", len(pts))
	}
	for i, p := range pts {
		wantFrac := float64(i+1) / 10
		if p.Fraction != wantFrac {
			t.Errorf("point %d fraction %v, want %v", i, p.Fraction, wantFrac)
		}
		if i > 0 && p.LatencyUS < pts[i-1].LatencyUS {
			t.Error("CDF latencies not monotonic")
		}
	}
	if pts[9].LatencyUS != 1000 {
		t.Errorf("last point %v us, want 1000", pts[9].LatencyUS)
	}
	if NewRecorder().CDF(5) != nil {
		t.Error("CDF of empty recorder not nil")
	}
}

func TestBreakdownAggregation(t *testing.T) {
	rc := NewRecorder()
	r1 := rec(1, 0, 10)
	r1.Breakdown = Breakdown{LinkWait: 4, Texe: 6}
	r2 := rec(2, 0, 20)
	r2.Breakdown = Breakdown{LinkWait: 10, StorageWait: 10}
	rc.Record(r1)
	rc.Record(r2)
	if got := rc.SumBreakdown().LinkWait; got != 14 {
		t.Errorf("sum LinkWait = %v", got)
	}
	if got := rc.MeanBreakdown().LinkWait; got != 7 {
		t.Errorf("mean LinkWait = %v", got)
	}
}

func TestSeries(t *testing.T) {
	rc := NewRecorder()
	// Insert out of submission order; Series must sort by submit.
	rc.Record(rec(2, 200, 300))
	rc.Record(rec(1, 100, 150))
	rc.Record(rec(3, 300, 500))
	s := rc.Series(10)
	if len(s) != 3 {
		t.Fatalf("Series len = %d", len(s))
	}
	if s[0].ID != 1 || s[2].ID != 3 {
		t.Errorf("series order: %v %v %v", s[0].ID, s[1].ID, s[2].ID)
	}
	// Downsampling caps the length.
	for i := 0; i < 100; i++ {
		rc.Record(rec(uint64(10+i), simx.Time(1000+i), simx.Time(2000+i)))
	}
	if got := len(rc.Series(10)); got != 10 {
		t.Errorf("downsampled series len = %d", got)
	}
	if rc.Series(0) != nil {
		t.Error("Series(0) not nil")
	}
}

// Property: for any set of latencies, percentiles are monotone and the
// average lies between P0 and P100.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(lats []uint32) bool {
		if len(lats) == 0 {
			return true
		}
		rc := NewRecorder()
		for i, l := range lats {
			rc.Record(rec(uint64(i), 0, simx.Time(l)))
		}
		prev := simx.Time(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := rc.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		avg := rc.AvgLatency()
		return avg >= rc.Percentile(0) && avg <= rc.Percentile(100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAttributeShare(t *testing.T) {
	b := Breakdown{RCStall: 60, SwitchStall: 40, LinkWait: 10, EPWait: 5, StorageWait: 5}
	b.AttributeShare(0.7)
	if b.LinkCause != 70 || b.StorageCause != 30 {
		t.Errorf("70/30 split: link=%v storage=%v", b.LinkCause, b.StorageCause)
	}
	// Clamping.
	b.AttributeShare(1.5)
	if b.LinkCause != 100 || b.StorageCause != 0 {
		t.Errorf("clamped high: %v/%v", b.LinkCause, b.StorageCause)
	}
	b.AttributeShare(-1)
	if b.LinkCause != 0 || b.StorageCause != 100 {
		t.Errorf("clamped low: %v/%v", b.LinkCause, b.StorageCause)
	}
	// No upstream stall: nothing attributed.
	z := Breakdown{LinkWait: 5}
	z.AttributeShare(1)
	if z.LinkCause != 0 || z.StorageCause != 0 {
		t.Errorf("no-upstream attribution: %+v", z)
	}
	// No device-side waits: nothing attributed either.
	u := Breakdown{RCStall: 100}
	u.AttributeShare(1)
	if u.LinkCause != 0 {
		t.Errorf("device-free attribution: %+v", u)
	}
}

func TestAttributeProportional(t *testing.T) {
	b := Breakdown{RCStall: 100, LinkWait: 30, EPWait: 10, StorageWait: 10}
	b.Attribute()
	if b.LinkCause != 60 || b.StorageCause != 40 {
		t.Errorf("proportional split: %v/%v", b.LinkCause, b.StorageCause)
	}
	// LinkContention/StorageContention include the causes.
	if b.LinkContention() != 90 || b.StorageContention() != 60 {
		t.Errorf("contentions: %v/%v", b.LinkContention(), b.StorageContention())
	}
	z := Breakdown{RCStall: 100}
	z.Attribute()
	if z.LinkCause != 0 || z.StorageCause != 0 {
		t.Errorf("zero-device Attribute: %+v", z)
	}
}

func TestRecordsExposed(t *testing.T) {
	rc := NewRecorder()
	rc.Record(rec(1, 0, 5))
	if got := rc.Records(); len(got) != 1 || got[0].ID != 1 {
		t.Errorf("Records = %v", got)
	}
}

func TestSustainedIOPS(t *testing.T) {
	rc := NewRecorder()
	if rc.SustainedIOPS(simx.Millisecond) != 0 {
		t.Error("empty sustained not 0")
	}
	// 10 completions in window [0,1ms), 2 in [1ms,2ms).
	for i := 0; i < 10; i++ {
		rc.Record(rec(uint64(i), 0, simx.Time(i)*50*simx.Microsecond))
	}
	rc.Record(rec(100, 0, 1500*simx.Microsecond))
	rc.Record(rec(101, 0, 1600*simx.Microsecond))
	// Peak window holds 10 completions over 1ms: 10K IOPS.
	if got := rc.SustainedIOPS(simx.Millisecond); got != 10_000 {
		t.Errorf("SustainedIOPS = %v, want 10000", got)
	}
	if rc.SustainedIOPS(0) != 0 {
		t.Error("zero window not 0")
	}
}
