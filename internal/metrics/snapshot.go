package metrics

import (
	"triplea/internal/simx"
)

// Snapshot is a recorder's summary statistics frozen into a plain
// value: what figure/table rendering needs, with no reference to the
// recorder or its samples. Snapshots are what parallel sweep workers
// hand back across the worker boundary (JSON-encoded), which keeps the
// isosafe handoff-by-value contract trivially true — and because
// encoding/json round-trips float64 exactly (shortest-representation
// encoding), a table rendered from a decoded snapshot is byte-identical
// to one rendered from the live recorder.
type Snapshot struct {
	Backend string `json:"backend"`

	Count  uint64 `json:"count"`
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	Failed uint64 `json:"failed"`

	AvgLatency simx.Time `json:"avg_latency"`
	MaxLatency simx.Time `json:"max_latency"`
	P50        simx.Time `json:"p50"`
	P95        simx.Time `json:"p95"`
	P99        simx.Time `json:"p99"`

	IOPS            float64   `json:"iops"`
	SustainedIOPS   float64   `json:"sustained_iops"`
	SustainedWindow simx.Time `json:"sustained_window"`

	Sum Breakdown `json:"sum_breakdown"`
}

// Snapshot freezes the recorder's summary statistics, computing
// sustained throughput over the given window.
func (rc *Recorder) Snapshot(window simx.Time) Snapshot {
	return Snapshot{
		Backend:         rc.backend.String(),
		Count:           rc.count,
		Reads:           rc.Reads(),
		Writes:          rc.Writes(),
		Failed:          uint64(rc.FailedCount()),
		AvgLatency:      rc.AvgLatency(),
		MaxLatency:      rc.MaxLatency(),
		P50:             rc.Percentile(50),
		P95:             rc.Percentile(95),
		P99:             rc.Percentile(99),
		IOPS:            rc.IOPS(),
		SustainedIOPS:   rc.SustainedIOPS(window),
		SustainedWindow: window,
		Sum:             rc.SumBreakdown(),
	}
}

// MeanBreakdown reports the per-request mean of each component.
func (s Snapshot) MeanBreakdown() Breakdown { return s.Sum.Scale(int(s.Count)) }
