// Package metrics collects and summarises per-request measurements:
// latency distributions (CDFs, percentiles, long tails), IOPS, and the
// execution-time breakdown the paper reports in Figure 15 (RC stall,
// switch stall, endpoint stall, link-contention time, storage-contention
// time, cell time, transfer times).
package metrics

import (
	"fmt"
	"sort"

	"triplea/internal/simx"
	"triplea/internal/units"
)

// Breakdown decomposes one request's life, or sums many requests'.
//
// LinkCause and StorageCause re-attribute the upstream queueing
// (RCStall + SwitchStall) to its root cause, the way the paper
// classifies stalled requests: a request backed up behind a saturated
// shared bus counts toward link contention, one backed up behind a busy
// FIMM toward storage contention. They are views onto RCStall +
// SwitchStall, so Total excludes them.
type Breakdown struct {
	RCStall     simx.Time // waiting for root-complex queue admission / port
	SwitchStall simx.Time // held in switch ingress for a busy egress
	EPWait      simx.Time // endpoint queue / write-buffer admission
	StorageWait simx.Time // die queueing inside the FIMM (storage contention)
	LinkWait    simx.Time // FIMM channel + cluster shared bus queueing (link contention)
	Texe        simx.Time // flash cell time
	LinkXfer    simx.Time // FIMM channel + shared bus data movement
	FabricXfer  simx.Time // PCI-E wire serialisation, propagation, routing

	LinkCause    simx.Time // upstream stall attributed to link contention
	StorageCause simx.Time // upstream stall attributed to storage contention
}

// Add accumulates b into the receiver.
func (b *Breakdown) Add(o Breakdown) {
	b.RCStall += o.RCStall
	b.SwitchStall += o.SwitchStall
	b.EPWait += o.EPWait
	b.StorageWait += o.StorageWait
	b.LinkWait += o.LinkWait
	b.Texe += o.Texe
	b.LinkXfer += o.LinkXfer
	b.FabricXfer += o.FabricXfer
	b.LinkCause += o.LinkCause
	b.StorageCause += o.StorageCause
}

// AttributeShare splits the upstream queueing (RCStall + SwitchStall)
// into LinkCause and StorageCause with an externally supplied link
// share in [0,1] — the array derives it from the target cluster's
// shared-bus saturation and the request's own device-side waits.
func (b *Breakdown) AttributeShare(linkShare float64) {
	upstream := b.RCStall + b.SwitchStall
	if upstream <= 0 || b.LinkWait+b.EPWait+b.StorageWait <= 0 {
		b.LinkCause, b.StorageCause = 0, 0
		return
	}
	if linkShare < 0 {
		linkShare = 0
	}
	if linkShare > 1 {
		linkShare = 1
	}
	b.LinkCause = simx.Time(float64(upstream) * linkShare)
	b.StorageCause = upstream - b.LinkCause
}

// Attribute splits the upstream queueing proportionally to the
// device-side waits that caused the backlog.
func (b *Breakdown) Attribute() {
	device := b.LinkWait + b.EPWait + b.StorageWait
	if device <= 0 {
		b.LinkCause, b.StorageCause = 0, 0
		return
	}
	b.AttributeShare(float64(b.LinkWait) / float64(device))
}

// Total reports the sum of all components.
func (b Breakdown) Total() simx.Time {
	return b.RCStall + b.SwitchStall + b.EPWait + b.StorageWait +
		b.LinkWait + b.Texe + b.LinkXfer + b.FabricXfer
}

// QueueStall reports the time spent stalled in queues (the paper's
// queue stall metric): everything except execution and data movement.
func (b Breakdown) QueueStall() simx.Time {
	return b.RCStall + b.SwitchStall + b.EPWait + b.StorageWait + b.LinkWait
}

// LinkContention reports the link-contention component: direct bus
// queueing plus the upstream backlog it caused.
func (b Breakdown) LinkContention() simx.Time { return b.LinkWait + b.LinkCause }

// StorageContention reports the storage-contention component: queueing
// for the device itself, at the endpoint and on the dies, plus the
// upstream backlog it caused.
func (b Breakdown) StorageContention() simx.Time {
	return b.EPWait + b.StorageWait + b.StorageCause
}

// Scale divides every component by n (for means).
func (b Breakdown) Scale(n int) Breakdown {
	if n <= 0 {
		return Breakdown{}
	}
	d := simx.Time(n)
	return Breakdown{
		RCStall: b.RCStall / d, SwitchStall: b.SwitchStall / d,
		EPWait: b.EPWait / d, StorageWait: b.StorageWait / d,
		LinkWait: b.LinkWait / d, Texe: b.Texe / d,
		LinkXfer: b.LinkXfer / d, FabricXfer: b.FabricXfer / d,
		LinkCause: b.LinkCause / d, StorageCause: b.StorageCause / d,
	}
}

// RequestKind distinguishes reads from writes in the records.
type RequestKind uint8

const (
	Read RequestKind = iota
	Write
)

func (k RequestKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	}
	return "unknown"
}

// Record is one completed request's measurement.
type Record struct {
	ID       uint64
	Kind     RequestKind
	Pages    units.Pages
	Submit   simx.Time
	Complete simx.Time
	Breakdown
}

// Latency reports the request's end-to-end latency.
func (r Record) Latency() simx.Time { return r.Complete - r.Submit }

// CDFPoint is one point of a cumulative distribution function.
type CDFPoint struct {
	LatencyUS float64 // latency in microseconds
	Fraction  float64 // fraction of requests at or below it
}

// Recorder accumulates request records for one run.
type Recorder struct {
	records  []Record
	failures []Failure // fault-terminated requests (failures.go)
	sums     Breakdown

	reads, writes uint64
	firstSubmit   simx.Time
	lastComplete  simx.Time
	latSum        simx.Time

	sorted []simx.Time // cached sorted latencies
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{firstSubmit: -1}
}

// Record adds one completed request.
func (rc *Recorder) Record(r Record) {
	if r.Complete < r.Submit {
		panic(fmt.Sprintf("metrics: completion %v before submit %v", r.Complete, r.Submit))
	}
	rc.records = append(rc.records, r) //simlint:coldalloc amortized: sample buffer growth
	rc.sums.Add(r.Breakdown)
	rc.latSum += r.Latency()
	if r.Kind == Read {
		rc.reads++
	} else {
		rc.writes++
	}
	if rc.firstSubmit < 0 || r.Submit < rc.firstSubmit {
		rc.firstSubmit = r.Submit
	}
	if r.Complete > rc.lastComplete {
		rc.lastComplete = r.Complete
	}
	rc.sorted = nil
}

// Count reports completed requests.
func (rc *Recorder) Count() int { return len(rc.records) }

// Reads and Writes report per-kind counts.
func (rc *Recorder) Reads() uint64  { return rc.reads }
func (rc *Recorder) Writes() uint64 { return rc.writes }

// Records exposes the raw records (callers must not mutate).
func (rc *Recorder) Records() []Record { return rc.records }

// AvgLatency reports the mean end-to-end latency.
func (rc *Recorder) AvgLatency() simx.Time {
	if len(rc.records) == 0 {
		return 0
	}
	return rc.latSum / simx.Time(len(rc.records))
}

// IOPS reports completed requests per second of simulated wall time
// between the first submission and the last completion.
func (rc *Recorder) IOPS() float64 {
	if len(rc.records) == 0 {
		return 0
	}
	span := rc.lastComplete - rc.firstSubmit
	if span <= 0 {
		return 0
	}
	return float64(len(rc.records)) / (float64(span) / float64(simx.Second))
}

// SustainedIOPS reports the array's sustained throughput: the highest
// completion rate over any aligned window of the given width. Under a
// bursty offered load a congested array's sustained rate pins at its
// bottleneck capacity while an uncongested one tracks the burst rate —
// the "sustained throughput" the paper's abstract compares.
func (rc *Recorder) SustainedIOPS(window simx.Time) float64 {
	if len(rc.records) == 0 || window <= 0 {
		return 0
	}
	buckets := make(map[int64]int)
	best := 0
	for _, r := range rc.records {
		b := int64(r.Complete / window)
		buckets[b]++
		if buckets[b] > best {
			best = buckets[b]
		}
	}
	return float64(best) / (float64(window) / float64(simx.Second))
}

// SumBreakdown reports the summed component times.
func (rc *Recorder) SumBreakdown() Breakdown { return rc.sums }

// MeanBreakdown reports the per-request mean of each component.
func (rc *Recorder) MeanBreakdown() Breakdown { return rc.sums.Scale(len(rc.records)) }

func (rc *Recorder) ensureSorted() {
	if rc.sorted != nil {
		return
	}
	rc.sorted = make([]simx.Time, len(rc.records))
	for i, r := range rc.records {
		rc.sorted[i] = r.Latency()
	}
	sort.Slice(rc.sorted, func(i, j int) bool { return rc.sorted[i] < rc.sorted[j] })
}

// Percentile reports the p-th latency percentile, p in [0,100].
func (rc *Recorder) Percentile(p float64) simx.Time {
	if len(rc.records) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of [0,100]", p))
	}
	rc.ensureSorted()
	idx := int(p / 100 * float64(len(rc.sorted)-1))
	return rc.sorted[idx]
}

// MaxLatency reports the slowest request.
func (rc *Recorder) MaxLatency() simx.Time { return rc.Percentile(100) }

// CDF samples the latency CDF at n evenly spaced fractions, suitable
// for plotting against the paper's Figures 1 and 11.
func (rc *Recorder) CDF(n int) []CDFPoint {
	if len(rc.records) == 0 || n <= 0 {
		return nil
	}
	rc.ensureSorted()
	pts := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		frac := float64(i) / float64(n)
		idx := int(frac*float64(len(rc.sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		pts = append(pts, CDFPoint{
			LatencyUS: rc.sorted[idx].Micros(),
			Fraction:  frac,
		})
	}
	return pts
}

// Series reports (submit-time, latency) pairs downsampled to at most n
// points, in submission order — the paper's Figure 16 time-series view.
func (rc *Recorder) Series(n int) []Record {
	if n <= 0 || len(rc.records) == 0 {
		return nil
	}
	ordered := make([]Record, len(rc.records))
	copy(ordered, rc.records)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Submit < ordered[j].Submit })
	if len(ordered) <= n {
		return ordered
	}
	out := make([]Record, 0, n)
	step := float64(len(ordered)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, ordered[int(float64(i)*step)])
	}
	return out
}
