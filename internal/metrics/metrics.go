// Package metrics collects and summarises per-request measurements:
// latency distributions (CDFs, percentiles, long tails), IOPS, and the
// execution-time breakdown the paper reports in Figure 15 (RC stall,
// switch stall, endpoint stall, link-contention time, storage-contention
// time, cell time, transfer times).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"unsafe"

	"triplea/internal/simx"
	"triplea/internal/units"
)

// Breakdown decomposes one request's life, or sums many requests'.
//
// LinkCause and StorageCause re-attribute the upstream queueing
// (RCStall + SwitchStall) to its root cause, the way the paper
// classifies stalled requests: a request backed up behind a saturated
// shared bus counts toward link contention, one backed up behind a busy
// FIMM toward storage contention. They are views onto RCStall +
// SwitchStall, so Total excludes them.
type Breakdown struct {
	RCStall     simx.Time // waiting for root-complex queue admission / port
	SwitchStall simx.Time // held in switch ingress for a busy egress
	EPWait      simx.Time // endpoint queue / write-buffer admission
	StorageWait simx.Time // die queueing inside the FIMM (storage contention)
	LinkWait    simx.Time // FIMM channel + cluster shared bus queueing (link contention)
	Texe        simx.Time // flash cell time
	LinkXfer    simx.Time // FIMM channel + shared bus data movement
	FabricXfer  simx.Time // PCI-E wire serialisation, propagation, routing

	LinkCause    simx.Time // upstream stall attributed to link contention
	StorageCause simx.Time // upstream stall attributed to storage contention
}

// Add accumulates b into the receiver.
func (b *Breakdown) Add(o Breakdown) {
	b.RCStall += o.RCStall
	b.SwitchStall += o.SwitchStall
	b.EPWait += o.EPWait
	b.StorageWait += o.StorageWait
	b.LinkWait += o.LinkWait
	b.Texe += o.Texe
	b.LinkXfer += o.LinkXfer
	b.FabricXfer += o.FabricXfer
	b.LinkCause += o.LinkCause
	b.StorageCause += o.StorageCause
}

// AttributeShare splits the upstream queueing (RCStall + SwitchStall)
// into LinkCause and StorageCause with an externally supplied link
// share in [0,1] — the array derives it from the target cluster's
// shared-bus saturation and the request's own device-side waits.
func (b *Breakdown) AttributeShare(linkShare float64) {
	upstream := b.RCStall + b.SwitchStall
	if upstream <= 0 || b.LinkWait+b.EPWait+b.StorageWait <= 0 {
		b.LinkCause, b.StorageCause = 0, 0
		return
	}
	if linkShare < 0 {
		linkShare = 0
	}
	if linkShare > 1 {
		linkShare = 1
	}
	b.LinkCause = simx.Time(float64(upstream) * linkShare)
	b.StorageCause = upstream - b.LinkCause
}

// Attribute splits the upstream queueing proportionally to the
// device-side waits that caused the backlog.
func (b *Breakdown) Attribute() {
	device := b.LinkWait + b.EPWait + b.StorageWait
	if device <= 0 {
		b.LinkCause, b.StorageCause = 0, 0
		return
	}
	b.AttributeShare(float64(b.LinkWait) / float64(device))
}

// Total reports the sum of all components.
func (b Breakdown) Total() simx.Time {
	return b.RCStall + b.SwitchStall + b.EPWait + b.StorageWait +
		b.LinkWait + b.Texe + b.LinkXfer + b.FabricXfer
}

// QueueStall reports the time spent stalled in queues (the paper's
// queue stall metric): everything except execution and data movement.
func (b Breakdown) QueueStall() simx.Time {
	return b.RCStall + b.SwitchStall + b.EPWait + b.StorageWait + b.LinkWait
}

// LinkContention reports the link-contention component: direct bus
// queueing plus the upstream backlog it caused.
func (b Breakdown) LinkContention() simx.Time { return b.LinkWait + b.LinkCause }

// StorageContention reports the storage-contention component: queueing
// for the device itself, at the endpoint and on the dies, plus the
// upstream backlog it caused.
func (b Breakdown) StorageContention() simx.Time {
	return b.EPWait + b.StorageWait + b.StorageCause
}

// Scale divides every component by n (for means).
func (b Breakdown) Scale(n int) Breakdown {
	if n <= 0 {
		return Breakdown{}
	}
	d := simx.Time(n)
	return Breakdown{
		RCStall: b.RCStall / d, SwitchStall: b.SwitchStall / d,
		EPWait: b.EPWait / d, StorageWait: b.StorageWait / d,
		LinkWait: b.LinkWait / d, Texe: b.Texe / d,
		LinkXfer: b.LinkXfer / d, FabricXfer: b.FabricXfer / d,
		LinkCause: b.LinkCause / d, StorageCause: b.StorageCause / d,
	}
}

// RequestKind distinguishes reads from writes in the records.
type RequestKind uint8

const (
	Read RequestKind = iota
	Write
)

func (k RequestKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	}
	return "unknown"
}

// Record is one completed request's measurement.
type Record struct {
	ID       uint64
	Kind     RequestKind
	Pages    units.Pages
	Submit   simx.Time
	Complete simx.Time
	Breakdown
}

// Latency reports the request's end-to-end latency.
func (r Record) Latency() simx.Time { return r.Complete - r.Submit }

// CDFPoint is one point of a cumulative distribution function.
type CDFPoint struct {
	LatencyUS float64 // latency in microseconds
	Fraction  float64 // fraction of requests at or below it
}

// SeriesPoint is one downsampled (submit-time, latency) pair — the
// paper's Figure 16 time-series view. Both backends report series as
// values, so consumers never hold raw records.
type SeriesPoint struct {
	ID      uint64
	Submit  simx.Time
	Latency simx.Time
}

// Backend selects the Recorder's storage strategy.
type Backend uint8

const (
	// Exact keeps every sample: byte-identical to the historical
	// recorder (the seed-42 golden replays pin it) and the reference
	// the streaming accuracy tests compare against. Memory grows
	// linearly with run length. The zero value, so it is the default.
	Exact Backend = iota
	// Streaming keeps O(1) state per metric: log-bucketed latency
	// histogram, incremental windowed sustained-IOPS tracker,
	// range-doubling completion/failure timelines, stride-reservoir
	// series. Percentiles and CDFs carry ≤0.39% bucket error;
	// recorder memory is flat regardless of run length.
	Streaming
)

func (b Backend) String() string {
	switch b {
	case Exact:
		return "exact"
	case Streaming:
		return "streaming"
	}
	return "unknown"
}

// ParseBackend maps the -metrics flag spellings to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "exact", "":
		return Exact, nil
	case "streaming":
		return Streaming, nil
	}
	return Exact, fmt.Errorf("metrics: unknown backend %q (want exact or streaming)", s)
}

// DefaultSustainedWindow is the aligned-window width the streaming
// backend's sustained-IOPS tracker is built with — the same 5ms window
// the paper's sustained-throughput comparison uses
// (experiments.SustainedWindow aliases it).
const DefaultSustainedWindow = 5 * simx.Millisecond

// Recorder accumulates per-request measurements for one run. All
// statistics live in a Registry of named metrics (uniform JSON export);
// the backend decides whether the raw samples are also retained (Exact)
// or folded into fixed-footprint streaming state (Streaming).
type Recorder struct {
	backend Backend
	reg     *Registry

	// Registry-backed accumulators shared by both backends.
	reads, writes *Counter
	failedCtr     *Counter
	dist          *Distribution

	firstSubmit  simx.Time
	lastComplete simx.Time
	latSum       simx.Time
	count        uint64

	// Exact-backend sample buffers.
	records  []Record
	failures []Failure   // fault-terminated requests (failures.go)
	sorted   []simx.Time // cached sorted latencies

	// Streaming-backend fixed-footprint state (nil under Exact).
	stream *streamState
}

// NewRecorder returns an empty exact-backend recorder.
func NewRecorder() *Recorder {
	return NewRecorderWith(Exact, DefaultSustainedWindow)
}

// NewRecorderWith returns an empty recorder on the given backend. The
// window sizes the streaming sustained-IOPS tracker (ignored under
// Exact); zero or negative selects DefaultSustainedWindow.
func NewRecorderWith(b Backend, window simx.Time) *Recorder {
	if window <= 0 {
		window = DefaultSustainedWindow
	}
	reg := NewRegistry()
	rc := &Recorder{backend: b, reg: reg, firstSubmit: -1}
	rc.reads = reg.NewCounter("requests.reads")
	rc.writes = reg.NewCounter("requests.writes")
	rc.failedCtr = reg.NewCounter("requests.failed")
	rc.dist = &Distribution{}
	reg.Register("latency.breakdown", rc.dist)
	if b == Streaming {
		rc.stream = newStreamState(reg, window)
	}
	return rc
}

// Backend reports which backend the recorder runs on.
func (rc *Recorder) Backend() Backend { return rc.backend }

// Registry exposes the recorder's metric registry, e.g. for the array
// to register its fault counters next to the request metrics.
func (rc *Recorder) Registry() *Registry { return rc.reg }

// ExportJSON serialises the full registry deterministically.
func (rc *Recorder) ExportJSON() []byte { return rc.reg.ExportJSON() }

// Record adds one completed request.
func (rc *Recorder) Record(r Record) {
	if r.Complete < r.Submit {
		panic(fmt.Sprintf("metrics: completion %v before submit %v", r.Complete, r.Submit))
	}
	lat := r.Latency()
	rc.dist.Observe(r.Breakdown)
	rc.latSum += lat
	rc.count++
	if r.Kind == Read {
		rc.reads.Inc()
	} else {
		rc.writes.Inc()
	}
	if rc.firstSubmit < 0 || r.Submit < rc.firstSubmit {
		rc.firstSubmit = r.Submit
	}
	if r.Complete > rc.lastComplete {
		rc.lastComplete = r.Complete
	}
	if rc.backend == Streaming {
		rc.stream.observe(r, lat)
		return
	}
	rc.records = append(rc.records, r) //simlint:coldalloc amortized: exact-backend sample buffer growth
	rc.sorted = nil
}

// Count reports completed requests.
func (rc *Recorder) Count() int { return int(rc.count) }

// Reads and Writes report per-kind counts.
func (rc *Recorder) Reads() uint64  { return rc.reads.Value() }
func (rc *Recorder) Writes() uint64 { return rc.writes.Value() }

// Records exposes the raw records (callers must not mutate). The
// streaming backend retains no records and reports nil — consumers that
// need per-request samples must run Exact.
func (rc *Recorder) Records() []Record { return rc.records }

// AvgLatency reports the mean end-to-end latency.
func (rc *Recorder) AvgLatency() simx.Time {
	if rc.count == 0 {
		return 0
	}
	return rc.latSum / simx.Time(rc.count)
}

// IOPS reports completed requests per second of simulated wall time
// between the first submission and the last completion.
func (rc *Recorder) IOPS() float64 {
	if rc.count == 0 {
		return 0
	}
	span := rc.lastComplete - rc.firstSubmit
	if span <= 0 {
		return 0
	}
	return float64(rc.count) / (float64(span) / float64(simx.Second))
}

// SustainedIOPS reports the array's sustained throughput: the highest
// completion rate over any aligned window of the given width. Under a
// bursty offered load a congested array's sustained rate pins at its
// bottleneck capacity while an uncongested one tracks the burst rate —
// the "sustained throughput" the paper's abstract compares. The
// streaming backend answers from its incremental tracker, which is
// built for one window width (DefaultSustainedWindow unless configured
// otherwise) — the rate it reports is for that width.
func (rc *Recorder) SustainedIOPS(window simx.Time) float64 {
	if rc.count == 0 || window <= 0 {
		return 0
	}
	if rc.backend == Streaming {
		return rc.stream.sustainedIOPS(window)
	}
	buckets := make(map[int64]int)
	best := 0
	for _, r := range rc.records {
		b := int64(r.Complete / window)
		buckets[b]++
		if buckets[b] > best {
			best = buckets[b]
		}
	}
	return float64(best) / (float64(window) / float64(simx.Second))
}

// SumBreakdown reports the summed component times.
func (rc *Recorder) SumBreakdown() Breakdown { return rc.dist.Sum() }

// MeanBreakdown reports the per-request mean of each component.
func (rc *Recorder) MeanBreakdown() Breakdown { return rc.dist.Mean() }

func (rc *Recorder) ensureSorted() {
	if rc.sorted != nil {
		return
	}
	rc.sorted = make([]simx.Time, len(rc.records))
	for i, r := range rc.records {
		rc.sorted[i] = r.Latency()
	}
	sort.Slice(rc.sorted, func(i, j int) bool { return rc.sorted[i] < rc.sorted[j] })
}

// nearestRank maps percentile p in [0,100] over n samples to a 1-based
// rank by the nearest-rank rule: ceil(p/100 · n), clamped to [1, n].
// (The historical int(p/100·(n-1)) floored, so P50 of [1..100] landed
// on 50 only by luck of the truncation.)
func nearestRank(p float64, n int) int {
	r := int(math.Ceil(p / 100 * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r
}

// Percentile reports the p-th latency percentile, p in [0,100], by the
// nearest-rank rule. Exact backend: precise sample rank. Streaming
// backend: the histogram bucket holding that rank (≤0.39% relative
// error).
func (rc *Recorder) Percentile(p float64) simx.Time {
	if rc.count == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of [0,100]", p))
	}
	if rc.backend == Streaming {
		return rc.stream.lat.Quantile(p)
	}
	rc.ensureSorted()
	return rc.sorted[nearestRank(p, len(rc.sorted))-1]
}

// MaxLatency reports the slowest request (exact on both backends).
func (rc *Recorder) MaxLatency() simx.Time { return rc.Percentile(100) }

// CDF samples the latency CDF at n evenly spaced fractions, suitable
// for plotting against the paper's Figures 1 and 11.
func (rc *Recorder) CDF(n int) []CDFPoint {
	if rc.count == 0 || n <= 0 {
		return nil
	}
	if rc.backend == Streaming {
		pts := make([]CDFPoint, 0, n)
		for i := 1; i <= n; i++ {
			frac := float64(i) / float64(n)
			rank := uint64(frac * float64(rc.count))
			if rank < 1 {
				rank = 1
			}
			pts = append(pts, CDFPoint{
				LatencyUS: rc.stream.lat.ValueAtRank(rank).Micros(),
				Fraction:  frac,
			})
		}
		return pts
	}
	rc.ensureSorted()
	pts := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		frac := float64(i) / float64(n)
		idx := int(frac*float64(len(rc.sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		pts = append(pts, CDFPoint{
			LatencyUS: rc.sorted[idx].Micros(),
			Fraction:  frac,
		})
	}
	return pts
}

// downsampleSeries thins ordered to at most n points with the even
// stride both backends share.
func downsampleSeries(ordered []SeriesPoint, n int) []SeriesPoint {
	if len(ordered) <= n {
		return ordered
	}
	out := make([]SeriesPoint, 0, n)
	step := float64(len(ordered)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, ordered[int(float64(i)*step)])
	}
	return out
}

// Series reports (submit-time, latency) points downsampled to at most n,
// in (submit, ID) order — the paper's Figure 16 time-series view. The
// streaming backend samples from its stride reservoir, so long runs
// return an evenly spaced subset instead of every record.
func (rc *Recorder) Series(n int) []SeriesPoint {
	if n <= 0 || rc.count == 0 {
		return nil
	}
	if rc.backend == Streaming {
		return rc.stream.series.sample(n)
	}
	ordered := make([]SeriesPoint, len(rc.records))
	for i, r := range rc.records {
		ordered[i] = SeriesPoint{ID: r.ID, Submit: r.Submit, Latency: r.Latency()}
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Submit != ordered[j].Submit {
			return ordered[i].Submit < ordered[j].Submit
		}
		return ordered[i].ID < ordered[j].ID
	})
	return downsampleSeries(ordered, n)
}

// FootprintBytes estimates the recorder's live metric-state memory: the
// sample and index buffers under Exact, the fixed streaming structures
// under Streaming. It is the steady-state flatness gate's measurement
// (make metrics-smoke), not an exact heap accounting.
func (rc *Recorder) FootprintBytes() int {
	const (
		recordSize  = int(unsafe.Sizeof(Record{}))
		failureSize = int(unsafe.Sizeof(Failure{}))
		pointSize   = int(unsafe.Sizeof(SeriesPoint{}))
		timeSize    = int(unsafe.Sizeof(simx.Time(0)))
	)
	n := cap(rc.records)*recordSize + cap(rc.failures)*failureSize + cap(rc.sorted)*timeSize
	if rc.stream != nil {
		st := rc.stream
		n += len(st.lat.counts) * 8
		n += len(st.completed.counts) * 8
		n += len(st.failedAt.counts) * 8
		n += len(st.series.buf) * pointSize
		n += len(st.exemplars.buf) * failureSize
	}
	return n
}
