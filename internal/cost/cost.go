// Package cost models the economics behind the paper's "non-SSD"
// argument (Sections 3.1 and 6.5): bare NAND accounts for only 50-65 %
// of an SSD's price — the rest is host-interface controllers, flash
// controllers, microprocessors and on-board DRAM that are replaced
// with every worn-out drive. Unboxing the flash onto FIMMs moves that
// logic into the (never-replaced) management module, cutting both
// build and maintenance cost; the model also quantifies Section 6.5's
// trade: migration-induced lifetime loss against the cheaper
// replacement unit.
package cost

import "fmt"

// Model captures the cost structure of one storage unit (an SSD or a
// FIMM of equal capacity), in arbitrary currency units.
type Model struct {
	// NANDFractionOfSSD is bare flash's share of an SSD's cost
	// (paper: 0.50-0.65; DRAM DIMMs are 0.98 by comparison).
	NANDFractionOfSSD float64
	// FIMMOverhead is the FIMM's cost on top of its bare flash — PCB,
	// the 78-pin NV-DDR2 connector, minimal protocol logic — as a
	// fraction of the flash cost.
	FIMMOverhead float64
}

// DefaultModel uses the paper's mid-range numbers.
func DefaultModel() Model {
	return Model{NANDFractionOfSSD: 0.575, FIMMOverhead: 0.05}
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.NANDFractionOfSSD <= 0 || m.NANDFractionOfSSD > 1 {
		return fmt.Errorf("cost: NANDFractionOfSSD %v outside (0,1]", m.NANDFractionOfSSD)
	}
	if m.FIMMOverhead < 0 {
		return fmt.Errorf("cost: negative FIMMOverhead %v", m.FIMMOverhead)
	}
	return nil
}

// SSDUnitCost reports the cost of one SSD holding flash worth nand.
func (m Model) SSDUnitCost(nand float64) float64 {
	return nand / m.NANDFractionOfSSD
}

// FIMMUnitCost reports the cost of one FIMM holding flash worth nand.
func (m Model) FIMMUnitCost(nand float64) float64 {
	return nand * (1 + m.FIMMOverhead)
}

// UnitSavings reports the fractional saving of a FIMM over an SSD of
// equal flash capacity — the paper's 35-50 % build/maintenance cut.
func (m Model) UnitSavings() float64 {
	const nand = 1.0
	return 1 - m.FIMMUnitCost(nand)/m.SSDUnitCost(nand)
}

// ReplacementCostFactor compares steady-state replacement spending:
// FIMMs wear out faster by lifetimeLoss (Section 6.5's migration
// penalty, e.g. 0.23 worst case) but each replacement is cheaper by
// UnitSavings. A factor below 1 means the unboxed array is cheaper to
// maintain despite the extra wear — the paper's Section 6.5 claim.
func (m Model) ReplacementCostFactor(lifetimeLoss float64) float64 {
	if lifetimeLoss < 0 || lifetimeLoss >= 1 {
		return 0
	}
	replacementsRatio := 1 / (1 - lifetimeLoss) // more frequent swaps
	return replacementsRatio * (1 - m.UnitSavings())
}
