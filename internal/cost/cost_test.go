package cost

import (
	"math"
	"testing"
)

func TestDefaultModelSavings(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper: unboxing removes about 35-50 % of the cost.
	s := m.UnitSavings()
	if s < 0.35 || s > 0.50 {
		t.Errorf("UnitSavings = %.3f, want in the paper's 0.35-0.50 band", s)
	}
}

func TestSavingsBand(t *testing.T) {
	// The paper's extremes: NAND at 50 % and 65 % of SSD cost.
	lo := Model{NANDFractionOfSSD: 0.65, FIMMOverhead: 0.05}
	hi := Model{NANDFractionOfSSD: 0.50, FIMMOverhead: 0.05}
	if s := lo.UnitSavings(); math.Abs(s-0.3175) > 1e-9 {
		t.Errorf("low-end savings = %v", s)
	}
	if s := hi.UnitSavings(); math.Abs(s-0.475) > 1e-9 {
		t.Errorf("high-end savings = %v", s)
	}
}

func TestUnitCosts(t *testing.T) {
	m := Model{NANDFractionOfSSD: 0.5, FIMMOverhead: 0.1}
	if got := m.SSDUnitCost(100); got != 200 {
		t.Errorf("SSDUnitCost = %v", got)
	}
	if got := m.FIMMUnitCost(100); math.Abs(got-110) > 1e-9 {
		t.Errorf("FIMMUnitCost = %v", got)
	}
}

func TestReplacementCostFactor(t *testing.T) {
	m := Model{NANDFractionOfSSD: 0.5, FIMMOverhead: 0} // 50 % saving
	// Paper Section 6.5: 23 % lifetime loss against a 50 % cheaper unit.
	f := m.ReplacementCostFactor(0.23)
	want := (1 / 0.77) * 0.5
	if math.Abs(f-want) > 1e-9 {
		t.Errorf("factor = %v, want %v", f, want)
	}
	if f >= 1 {
		t.Errorf("replacement factor %v should show a net win", f)
	}
	// Degenerate inputs.
	if m.ReplacementCostFactor(-0.1) != 0 || m.ReplacementCostFactor(1) != 0 {
		t.Error("degenerate lifetime loss not rejected")
	}
}

func TestValidate(t *testing.T) {
	for _, m := range []Model{
		{NANDFractionOfSSD: 0, FIMMOverhead: 0},
		{NANDFractionOfSSD: 1.5, FIMMOverhead: 0},
		{NANDFractionOfSSD: 0.5, FIMMOverhead: -1},
	} {
		if m.Validate() == nil {
			t.Errorf("Validate accepted %+v", m)
		}
	}
}
