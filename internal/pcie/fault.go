package pcie

import "triplea/internal/simx"

// Fault-injection hooks (see internal/fault and docs/fault-injection.md).

// SetRateScale stretches every future serialisation on the link by s
// (>1 models a link trained down to fewer lanes or a lower generation
// after errors). Zero restores the nominal rate. In-flight
// transmissions keep the time they were scheduled with.
func (l *Link) SetRateScale(s float64) { l.rateScale = s }

// Retrain blocks the link's wire for d — a link-retraining window.
// Packets already granted the wire finish serialising first; everything
// behind them (and everything submitted during the window) queues at
// the sender exactly like a real LTSSM Recovery excursion. Flow-control
// credits are unaffected, so nothing is dropped.
func (l *Link) Retrain(d simx.Time) {
	l.wire.Acquire(func(waited simx.Time) {
		l.eng.Schedule(d, l.wire.Release)
	})
}
