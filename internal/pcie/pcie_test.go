package pcie

import (
	"testing"
	"testing/quick"

	"triplea/internal/simx"
	"triplea/internal/units"
)

// sink collects delivered packets and returns credits either
// immediately or on demand.
type sink struct {
	pkts    []*Packet
	froms   []*Link
	autoACK bool
}

func (s *sink) Receive(pkt *Packet, from *Link) {
	s.pkts = append(s.pkts, pkt)
	s.froms = append(s.froms, from)
	if s.autoACK {
		from.ReturnCredit()
	}
}

func (s *sink) ackAll() {
	for _, l := range s.froms {
		l.ReturnCredit()
	}
	s.froms = nil
}

func TestKindString(t *testing.T) {
	if MemRead.String() != "MemRd" || MemWrite.String() != "MemWr" ||
		Completion.String() != "Cpl" || Kind(9).String() != "?" {
		t.Error("Kind.String mismatch")
	}
}

func TestTransferTime(t *testing.T) {
	eng := simx.NewEngine()
	l := NewLink(eng, "l", 1_000_000_000, 0, 1, &sink{autoACK: true}) // 1 GB/s
	// 1000 payload + 24 overhead at 1 B/ns = 1024 ns.
	if got := l.TransferTime(1000); got != 1024 {
		t.Errorf("TransferTime(1000) = %v, want 1024", got)
	}
	// Rounding up: 1 byte at 3 B/ns.
	l2 := NewLink(eng, "l2", 3_000_000_000, 0, 1, &sink{autoACK: true})
	if got := l2.TransferTime(0); got != 8 {
		t.Errorf("TransferTime(0) at 3GB/s = %v, want ceil(24/3)=8", got)
	}
}

// TestGen3PagePayloadRegression pins the representative converted path
// of the typed-units refactor: a page-sized payload expressed in
// units.Bytes through the Gen3 lane-bandwidth helper to a wire time.
// Before the refactor the payload and bandwidth were bare ints and a
// pages-for-bytes mixup compiled silently; these exact figures are the
// regression net.
func TestGen3PagePayloadRegression(t *testing.T) {
	if got := Gen3Bandwidth(4 * units.Lane); got != 4_000_000_000 {
		t.Fatalf("Gen3Bandwidth(x4) = %d, want 4e9", got)
	}
	if got := Gen3Bandwidth(16 * units.Lane); got != 16_000_000_000 {
		t.Fatalf("Gen3Bandwidth(x16) = %d, want 16e9", got)
	}
	eng := simx.NewEngine()
	l := NewLink(eng, "ep", Gen3Bandwidth(4*units.Lane), 0, 1, &sink{autoACK: true})
	// One 4 KiB page + 24 B TLP overhead at 4 B/ns: ceil(4120/4) = 1030 ns.
	if got := l.TransferTime(4 * units.KiB); got != 1030*simx.Nanosecond {
		t.Errorf("x4 page transfer = %v, want 1030ns", got)
	}
	// The same page handed to the ONFI side (800 MB/s NV-DDR2) takes
	// 5120 ns — the value nand.Params.PageTransferTime produces; a
	// bytes/pages confusion on either leg breaks one of the two pins.
	if got := units.TransferTime(4*units.KiB, 800_000_000); got != 5120*simx.Nanosecond {
		t.Errorf("ONFI page transfer = %v, want 5120ns", got)
	}
}

func TestLinkDelivery(t *testing.T) {
	eng := simx.NewEngine()
	dst := &sink{autoACK: true}
	l := NewLink(eng, "l", 4_000_000_000, 100, 4, dst) // 4 GB/s, 100ns prop
	pkt := &Packet{ID: 1, Kind: Completion, Payload: 4096}
	accepted := false
	l.Send(pkt, AcceptedFunc(func(*Packet) { accepted = true }))
	eng.Run()

	if !accepted {
		t.Error("accepted callback did not fire")
	}
	if len(dst.pkts) != 1 || dst.pkts[0] != pkt {
		t.Fatalf("delivered %d packets", len(dst.pkts))
	}
	// (4096+24)/4 = 1030 ns wire + 100 ns propagation.
	if eng.Now() != 1130 {
		t.Errorf("delivery at %v, want 1130ns", eng.Now())
	}
	if pkt.WireTime != 1030 {
		t.Errorf("WireTime = %v, want 1030", pkt.WireTime)
	}
	if l.Packets() != 1 || l.Bytes() != 4120 {
		t.Errorf("link stats: %d pkts, %d bytes", l.Packets(), l.Bytes())
	}
}

func TestLinkCreditExhaustion(t *testing.T) {
	eng := simx.NewEngine()
	dst := &sink{} // holds credits
	l := NewLink(eng, "l", 1_000_000_000, 0, 2, dst)
	for i := 0; i < 4; i++ {
		l.Send(&Packet{ID: uint64(i), Payload: 0}, nil)
	}
	eng.Run()
	if len(dst.pkts) != 2 {
		t.Fatalf("delivered %d with 2 credits, want 2", len(dst.pkts))
	}
	if l.PendingSends() != 2 {
		t.Errorf("PendingSends = %d, want 2", l.PendingSends())
	}
	// Free one entry: exactly one more delivery.
	dst.froms[0].ReturnCredit()
	dst.froms = dst.froms[1:]
	eng.Run()
	if len(dst.pkts) != 3 {
		t.Fatalf("delivered %d after one credit, want 3", len(dst.pkts))
	}
	if l.CreditStallNS() == 0 {
		t.Error("credit stall not accounted")
	}
	if dst.pkts[2].CreditWait == 0 {
		t.Error("packet CreditWait not accounted")
	}
}

func TestCreditOverflowPanics(t *testing.T) {
	eng := simx.NewEngine()
	l := NewLink(eng, "l", 1_000_000_000, 0, 1, &sink{})
	defer func() {
		if recover() == nil {
			t.Error("extra ReturnCredit did not panic")
		}
	}()
	l.ReturnCredit()
}

func TestLinkFIFOUnderCreditPressure(t *testing.T) {
	eng := simx.NewEngine()
	dst := &sink{}
	l := NewLink(eng, "l", 1_000_000_000, 0, 1, dst)
	for i := 0; i < 5; i++ {
		l.Send(&Packet{ID: uint64(i)}, nil)
	}
	eng.Run()
	for len(dst.froms) > 0 {
		dst.ackAll()
		eng.Run()
	}
	if len(dst.pkts) != 5 {
		t.Fatalf("delivered %d, want 5", len(dst.pkts))
	}
	for i, p := range dst.pkts {
		if p.ID != uint64(i) {
			t.Fatalf("delivery order %v broken at %d", p.ID, i)
		}
	}
}

func TestLinkConstructorPanics(t *testing.T) {
	eng := simx.NewEngine()
	for _, fn := range []func(){
		func() { NewLink(eng, "x", 0, 0, 1, &sink{}) },
		func() { NewLink(eng, "x", 1, 0, 0, &sink{}) },
		func() { NewLink(eng, "x", 1, 0, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad link construction did not panic")
				}
			}()
			fn()
		}()
	}
}

// buildSwitchFixture wires host --uplinkToSwitch--> switch --down[i]--> sinks
// and switch --up--> rc sink.
func buildSwitchFixture(eng *simx.Engine, nPorts int, route RouteFunc) (*Switch, []*sink, *sink, *Link) {
	sw := NewSwitch(eng, "sw0", 150, route)
	downSinks := make([]*sink, nPorts)
	for i := 0; i < nPorts; i++ {
		downSinks[i] = &sink{autoACK: true}
		sw.AddDownstream(NewLink(eng, "down", 4_000_000_000, 100, 4, downSinks[i]))
	}
	upSink := &sink{autoACK: true}
	sw.SetUpstream(NewLink(eng, "up", 16_000_000_000, 100, 8, upSink))
	ingress := NewLink(eng, "ingress", 16_000_000_000, 100, 8, sw)
	return sw, downSinks, upSink, ingress
}

func TestSwitchRoutesByAddress(t *testing.T) {
	eng := simx.NewEngine()
	route := func(p *Packet) int {
		if p.Kind == Completion {
			return Upstream
		}
		return int(p.Addr % 4)
	}
	sw, downSinks, upSink, ingress := buildSwitchFixture(eng, 4, route)

	for addr := uint64(0); addr < 8; addr++ {
		ingress.Send(&Packet{ID: addr, Kind: MemRead, Addr: addr}, nil)
	}
	ingress.Send(&Packet{ID: 100, Kind: Completion, Payload: 4096}, nil)
	eng.Run()

	for i, ds := range downSinks {
		if len(ds.pkts) != 2 {
			t.Errorf("port %d got %d packets, want 2", i, len(ds.pkts))
		}
	}
	if len(upSink.pkts) != 1 {
		t.Errorf("upstream got %d packets, want 1", len(upSink.pkts))
	}
	if sw.Forwarded() != 9 {
		t.Errorf("Forwarded = %d, want 9", sw.Forwarded())
	}
}

func TestSwitchRoutingLatencyCharged(t *testing.T) {
	eng := simx.NewEngine()
	_, downSinks, _, ingress := buildSwitchFixture(eng, 1, func(*Packet) int { return 0 })
	pkt := &Packet{Kind: MemRead}
	ingress.Send(pkt, nil)
	eng.Run()
	if len(downSinks[0].pkts) != 1 {
		t.Fatal("packet not delivered")
	}
	if pkt.RouteTime != 150 {
		t.Errorf("RouteTime = %v, want 150", pkt.RouteTime)
	}
}

func TestSwitchStallWhenEgressBlocked(t *testing.T) {
	eng := simx.NewEngine()
	route := func(*Packet) int { return 0 }
	sw := NewSwitch(eng, "sw", 150, route)
	blocked := &sink{} // returns no credits
	sw.AddDownstream(NewLink(eng, "down", 4_000_000_000, 0, 1, blocked))
	ingress := NewLink(eng, "in", 16_000_000_000, 0, 8, sw)

	// First packet takes the only credit; the second stalls inside the
	// switch until we return it.
	p1 := &Packet{ID: 1}
	p2 := &Packet{ID: 2}
	ingress.Send(p1, nil)
	ingress.Send(p2, nil)
	eng.RunFor(10_000)
	if len(blocked.pkts) != 1 {
		t.Fatalf("delivered %d, want 1 while blocked", len(blocked.pkts))
	}
	blocked.froms[0].ReturnCredit()
	blocked.froms = nil
	eng.Run()
	if len(blocked.pkts) != 2 {
		t.Fatalf("second packet never delivered")
	}
	// The stall was credit-bound, so the link accounts it (the switch's
	// holding metric excludes credit waits to avoid double counting).
	if p2.CreditWait == 0 {
		t.Error("stalled packet has zero CreditWait")
	}
	if p2.StallTotal() == 0 {
		t.Error("stalled packet has zero total stall")
	}
	if sw.QueueStallNS() != 0 {
		t.Errorf("switch double-counted credit stall: %v", sw.QueueStallNS())
	}
}

func TestSwitchPanicsWithoutEgress(t *testing.T) {
	eng := simx.NewEngine()
	sw := NewSwitch(eng, "sw", 0, func(*Packet) int { return Upstream })
	defer func() {
		if recover() == nil {
			t.Error("missing upstream link did not panic")
		}
	}()
	sw.Receive(&Packet{}, nil)
	eng.Run()
}

func TestRootComplexInjectAndReceive(t *testing.T) {
	eng := simx.NewEngine()
	var delivered []*Packet
	rc := NewRootComplex(eng, 200, func(p *Packet) int { return int(p.Addr % 2) }, func(p *Packet) { delivered = append(delivered, p) })
	s0, s1 := &sink{autoACK: true}, &sink{autoACK: true}
	rc.AddPort(NewLink(eng, "p0", 16_000_000_000, 100, 8, s0))
	rc.AddPort(NewLink(eng, "p1", 16_000_000_000, 100, 8, s1))
	if rc.NumPorts() != 2 {
		t.Fatalf("NumPorts = %d", rc.NumPorts())
	}

	rc.Inject(&Packet{Addr: 0, Kind: MemRead}, nil)
	rc.Inject(&Packet{Addr: 1, Kind: MemRead}, nil)
	eng.Run()
	if len(s0.pkts) != 1 || len(s1.pkts) != 1 {
		t.Errorf("port deliveries: %d, %d; want 1,1", len(s0.pkts), len(s1.pkts))
	}
	if rc.Injected() != 2 {
		t.Errorf("Injected = %d, want 2", rc.Injected())
	}

	// Upstream: a completion arriving at the RC reaches the host sink.
	up := NewLink(eng, "up", 16_000_000_000, 100, 8, rc)
	cpl := &Packet{Kind: Completion, Payload: 4096}
	up.Send(cpl, nil)
	eng.Run()
	if len(delivered) != 1 || delivered[0] != cpl {
		t.Fatalf("host sink got %d packets", len(delivered))
	}
	if rc.Delivered() != 1 {
		t.Errorf("Delivered = %d, want 1", rc.Delivered())
	}
	if cpl.RouteTime != 200 {
		t.Errorf("upstream RouteTime = %v, want 200", cpl.RouteTime)
	}
}

func TestRootComplexBadPortPanics(t *testing.T) {
	eng := simx.NewEngine()
	rc := NewRootComplex(eng, 0, func(*Packet) int { return 7 }, func(*Packet) {})
	defer func() {
		if recover() == nil {
			t.Error("bad RC port did not panic")
		}
	}()
	rc.Inject(&Packet{}, nil)
	eng.Run()
}

// Property: over any sequence of sends on a single-credit link with a
// consumer that acks after a fixed service time, every packet is
// delivered exactly once and total WireTime equals the sum of per-packet
// transfer times.
func TestPropertyLinkConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := simx.NewEngine()
		dst := &sink{autoACK: true}
		l := NewLink(eng, "l", 1_000_000_000, 10, 1, dst)
		var wantWire simx.Time
		for i, sz := range sizes {
			p := &Packet{ID: uint64(i), Payload: units.Bytes(sz)}
			wantWire += l.TransferTime(units.Bytes(sz))
			l.Send(p, nil)
		}
		eng.Run()
		if len(dst.pkts) != len(sizes) {
			return false
		}
		var gotWire simx.Time
		seen := map[uint64]bool{}
		for _, p := range dst.pkts {
			if seen[p.ID] {
				return false
			}
			seen[p.ID] = true
			gotWire += p.WireTime
		}
		return gotWire == wantWire && l.BusyNS() == wantWire
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
