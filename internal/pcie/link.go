package pcie

import (
	"fmt"

	"triplea/internal/simx"
	"triplea/internal/units"
)

// TLPOverheadBytes is the per-packet framing cost: transaction-layer
// header (16), sequence number + LCRC (8) — the fields the endpoint's
// device layers strip and rebuild.
const TLPOverheadBytes = 24 * units.Byte

// Gen3LaneBandwidth is the effective data rate of one PCI Express 3.0
// lane: 8 GT/s with 128b/130b encoding, ~1 GB/s of TLP bytes.
const Gen3LaneBandwidth = 1 * units.GBps

// Gen3Bandwidth reports the raw bandwidth of a PCI-E 3.0 link n lanes
// wide (x4, x16, ...).
func Gen3Bandwidth(n units.Lanes) units.BytesPerSec {
	return units.LaneBandwidth(Gen3LaneBandwidth, n)
}

// Receiver consumes packets delivered by a Link. Implementations must
// eventually call from.ReturnCredit() once the packet's buffer entry is
// freed, or the link stalls — exactly like real VC flow control.
type Receiver interface {
	Receive(pkt *Packet, from *Link)
}

// Accepted is notified when a packet wins a credit and leaves the
// sender's buffer — the moment an upstream device can free its own
// ingress entry. It is an interface rather than a func so hot callers
// (switches, the RC, the endpoints) can hand in pooled per-packet state
// without allocating a closure per hop.
type Accepted interface {
	OnLinkAccepted(pkt *Packet)
}

// AcceptedFunc adapts a plain function to Accepted for cold paths and
// tests. The conversion allocates; do not use it on the per-request
// hot path.
type AcceptedFunc func(pkt *Packet)

// OnLinkAccepted implements Accepted.
func (f AcceptedFunc) OnLinkAccepted(pkt *Packet) { f(pkt) } //simlint:cold closure adapter; hot credit returns pre-bind Accepted receivers

// Link is one direction of a dual-simplex PCI-E connection. The sender
// serialises packets onto the wire; the receiver advertises a fixed
// number of virtual-channel buffer credits. With no credit available,
// packets wait at the sender — that waiting is the link-level stall the
// paper's flow-control discussion describes.
type Link struct {
	eng  *simx.Engine
	name string

	bytesPerSec units.BytesPerSec
	propagation simx.Time

	wire    *simx.Resource
	credits int
	maxCred int
	dst     Receiver

	sendQ  []*pendingSend
	freePS *pendingSend // recycled pendingSend nodes

	// rateScale > 0 stretches serialisation time — an injected link
	// degradation, e.g. lanes trained down after an error (fault.go).
	rateScale float64

	// Statistics.
	packets     uint64
	bytes       units.Bytes
	creditStall simx.Time
	maxSendQ    int
}

// pendingSend is the pooled per-packet transmission state: it queues
// for a credit, acquires the wire (simx.Grantee), and carries the
// packet through the serialisation and propagation events
// (simx.Handler) before returning to the link's free-list.
type pendingSend struct {
	l        *Link
	pkt      *Packet
	queued   simx.Time
	accepted Accepted
	xfer     simx.Time
	next     *pendingSend
	ck       simx.PoolCheck
}

// pendingSend event phases.
const (
	psXferDone uint64 = iota // wire serialisation finished
	psDeliver                // propagation finished; hand to receiver
)

// OnGrant implements simx.Grantee: the local wire is ours.
func (ps *pendingSend) OnGrant(arg uint64, waited simx.Time) {
	ps.pkt.WireWait += waited
	ps.xfer = ps.l.TransferTime(ps.pkt.Payload)
	ps.l.eng.ScheduleEvent(ps.xfer, ps, psXferDone)
}

// OnEvent implements simx.Handler for the transmission phases.
func (ps *pendingSend) OnEvent(arg uint64) {
	l := ps.l
	switch arg {
	case psXferDone:
		l.wire.Release()
		ps.pkt.WireTime += ps.xfer
		l.packets++
		l.bytes += ps.pkt.Payload + TLPOverheadBytes
		l.eng.ScheduleEvent(l.propagation, ps, psDeliver)
	case psDeliver:
		pkt := ps.pkt
		l.recyclePS(ps)
		l.dst.Receive(pkt, l)
	default:
		panic("pcie: unknown pendingSend phase")
	}
}

// newPS pops a recycled node or allocates a fresh one.
func (l *Link) newPS(pkt *Packet, accepted Accepted) *pendingSend {
	ps := l.freePS
	if ps != nil {
		l.freePS = ps.next
		ps.ck.Checkout("pcie.pendingSend")
		ps.next = nil
	} else {
		ps = &pendingSend{l: l} //simlint:coldalloc pool miss: pendingSend free-list refill
		ps.ck.Fresh("pcie.pendingSend")
	}
	ps.pkt, ps.queued, ps.accepted = pkt, l.eng.Now(), accepted
	return ps
}

func (l *Link) recyclePS(ps *pendingSend) {
	ps.pkt, ps.accepted = nil, nil
	ps.ck.Release("pcie.pendingSend")
	ps.next = l.freePS
	l.freePS = ps
}

// NewLink builds a link delivering to dst with the given raw bandwidth,
// propagation delay and receiver credit count.
func NewLink(eng *simx.Engine, name string, bytesPerSec units.BytesPerSec, propagation simx.Time, credits int, dst Receiver) *Link {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("pcie: link %s bandwidth must be positive", name))
	}
	if credits < 1 {
		panic(fmt.Sprintf("pcie: link %s needs at least one credit", name))
	}
	if dst == nil {
		panic(fmt.Sprintf("pcie: link %s has no receiver", name))
	}
	return &Link{
		eng:         eng,
		name:        name,
		bytesPerSec: bytesPerSec,
		propagation: propagation,
		wire:        simx.NewResource(eng, name+".wire", 1),
		credits:     credits,
		maxCred:     credits,
		dst:         dst,
	}
}

// Name reports the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// TransferTime reports serialisation time for a packet with n payload
// bytes (TLP overhead included), rounded up to whole nanoseconds.
func (l *Link) TransferTime(n units.Bytes) simx.Time {
	t := units.TransferTime(n+TLPOverheadBytes, l.bytesPerSec)
	if l.rateScale > 0 {
		t = simx.Time(float64(t) * l.rateScale)
	}
	return t
}

// Send transmits pkt toward the receiver. accepted (optional) fires when
// the packet wins a credit and leaves the sender's buffer — the moment a
// switch can free its own ingress entry. Delivery to the receiver
// happens after wire serialisation plus propagation.
func (l *Link) Send(pkt *Packet, accepted Accepted) {
	if pkt == nil {
		panic("pcie: Send of nil packet")
	}
	pkt.ck.InUse("pcie.Packet")
	ps := l.newPS(pkt, accepted)
	if l.credits > 0 {
		l.credits--
		l.transmit(ps)
		return
	}
	l.sendQ = append(l.sendQ, ps) //simlint:coldalloc amortized: send-queue growth bounded by outstanding packets
	if len(l.sendQ) > l.maxSendQ {
		l.maxSendQ = len(l.sendQ)
	}
}

// ReturnCredit hands one VC buffer entry back to the sender, releasing
// the oldest stalled packet if any.
func (l *Link) ReturnCredit() {
	if len(l.sendQ) > 0 {
		ps := l.sendQ[0]
		copy(l.sendQ, l.sendQ[1:])
		l.sendQ = l.sendQ[:len(l.sendQ)-1]
		stalled := l.eng.Now() - ps.queued
		ps.pkt.CreditWait += stalled
		l.creditStall += stalled
		l.transmit(ps)
		return
	}
	l.credits++
	if l.credits > l.maxCred {
		panic("pcie: credit overflow on " + l.name)
	}
}

func (l *Link) transmit(ps *pendingSend) {
	if ps.accepted != nil {
		a := ps.accepted
		ps.accepted = nil
		a.OnLinkAccepted(ps.pkt)
	}
	l.wire.AcquireG(ps, 0)
}

// CreditsAvailable reports the sender-visible free credit count.
func (l *Link) CreditsAvailable() int { return l.credits }

// PendingSends reports packets stalled for credits.
func (l *Link) PendingSends() int { return len(l.sendQ) }

// Packets reports how many packets completed wire serialisation.
func (l *Link) Packets() uint64 { return l.packets }

// Bytes reports total bytes serialised (overhead included).
func (l *Link) Bytes() units.Bytes { return l.bytes }

// CreditStallNS reports accumulated credit-stall time.
func (l *Link) CreditStallNS() simx.Time { return l.creditStall }

// BusyNS reports the wire's accumulated busy time.
func (l *Link) BusyNS() simx.Time { return l.wire.BusyNS() }

// UtilizationSince reports wire utilisation over a window (see
// simx.Resource.UtilizationSince).
func (l *Link) UtilizationSince(since simx.Time, busyAtSince simx.Time) float64 {
	return l.wire.UtilizationSince(since, busyAtSince)
}
