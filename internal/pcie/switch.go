package pcie

import (
	"fmt"

	"triplea/internal/simx"
)

// RouteFunc decides the egress for a packet: a non-negative downstream
// port index, or Upstream to head toward the root complex.
type RouteFunc func(pkt *Packet) int

// Upstream is the RouteFunc result that sends a packet toward the RC.
const Upstream = -1

// Switch is a PCI-E switch: one upstream virtual bridge and a set of
// downstream bridges, joined by an internal bus. Packets are held in the
// ingress VC buffer (the arriving link's credit) until the egress link
// accepts them; that holding time is the switch-level queue stall the
// paper measures.
type Switch struct {
	eng          *simx.Engine
	name         string
	routeLatency simx.Time
	route        RouteFunc

	up   *Link
	down []*Link

	freeF *fwd // recycled forwarding nodes

	// Statistics.
	forwarded  uint64
	queueStall simx.Time
}

// fwd is the pooled per-packet forwarding state: it rides the
// route-latency event (simx.Handler), then holds the ingress credit
// until the egress link accepts the packet (Accepted).
type fwd struct {
	s          *Switch
	pkt        *Packet
	from       *Link
	held       simx.Time
	credBefore simx.Time
	next       *fwd
	ck         simx.PoolCheck
}

// OnEvent implements simx.Handler: routing latency elapsed; forward.
func (f *fwd) OnEvent(arg uint64) {
	s := f.s
	pkt := f.pkt
	pkt.RouteTime += s.routeLatency
	port := s.route(pkt) //simlint:coldalloc static topology dispatch: route bound once at build time
	var egress *Link
	if port == Upstream {
		egress = s.up
	} else if port >= 0 && port < len(s.down) {
		egress = s.down[port]
	}
	if egress == nil {
		panic(fmt.Sprintf("pcie: %s has no egress for %v (port %d)", s.name, pkt, port))
	}
	f.held = s.eng.Now()
	f.credBefore = pkt.CreditWait
	egress.Send(pkt, f)
}

// OnLinkAccepted implements Accepted: the egress took the packet, so
// the ingress VC entry frees up.
func (f *fwd) OnLinkAccepted(pkt *Packet) {
	s := f.s
	// Holding time excluding the egress credit wait (the link already
	// accounts that in CreditWait).
	stall := (s.eng.Now() - f.held) - (pkt.CreditWait - f.credBefore)
	pkt.QueueWait += stall
	s.queueStall += stall
	s.forwarded++
	from := f.from
	s.recycleFwd(f)
	if from != nil {
		from.ReturnCredit()
	}
}

func (s *Switch) newFwd(pkt *Packet, from *Link) *fwd {
	f := s.freeF
	if f != nil {
		s.freeF = f.next
		f.ck.Checkout("pcie.fwd")
		f.next = nil
	} else {
		f = &fwd{s: s} //simlint:coldalloc pool miss: fwd free-list refill
		f.ck.Fresh("pcie.fwd")
	}
	f.pkt, f.from = pkt, from
	return f
}

func (s *Switch) recycleFwd(f *fwd) {
	f.pkt, f.from = nil, nil
	f.ck.Release("pcie.fwd")
	f.next = s.freeF
	s.freeF = f
}

// NewSwitch builds a switch. Links are attached afterwards with
// SetUpstream/AddDownstream (topology wiring happens in the array layer).
func NewSwitch(eng *simx.Engine, name string, routeLatency simx.Time, route RouteFunc) *Switch {
	if route == nil {
		panic("pcie: switch needs a route function")
	}
	return &Switch{eng: eng, name: name, routeLatency: routeLatency, route: route}
}

// Name reports the switch's diagnostic name.
func (s *Switch) Name() string { return s.name }

// SetUpstream attaches the egress link toward the root complex.
func (s *Switch) SetUpstream(l *Link) { s.up = l }

// AddDownstream attaches an egress link toward an endpoint, returning
// its port index.
func (s *Switch) AddDownstream(l *Link) int {
	s.down = append(s.down, l)
	return len(s.down) - 1
}

// NumDownstream reports the downstream port count.
func (s *Switch) NumDownstream() int { return len(s.down) }

// Forwarded reports how many packets the switch has routed.
func (s *Switch) Forwarded() uint64 { return s.forwarded }

// QueueStallNS reports total time packets spent held in this switch
// waiting for their egress link.
func (s *Switch) QueueStallNS() simx.Time { return s.queueStall }

// Receive implements Receiver: route after the switching latency, then
// forward; the ingress credit is returned when the egress accepts.
func (s *Switch) Receive(pkt *Packet, from *Link) {
	s.eng.ScheduleEvent(s.routeLatency, s.newFwd(pkt, from), 0)
}

var _ Receiver = (*Switch)(nil)
