// Package pcie models the PCI Express fabric that interconnects the
// flash clusters: dual-simplex point-to-point links with credit-based
// virtual-channel flow control, multi-port switches with address
// routing, and a multi-port root complex. The model captures what the
// paper's simulator captures (Section 5.1): data-movement delay on
// every hop, switching/routing latencies, and the contention cycles
// requests spend stalled in virtual-channel queues.
package pcie

import (
	"fmt"

	"triplea/internal/simx"
	"triplea/internal/units"
)

// Kind classifies a transaction-layer packet.
type Kind uint8

const (
	MemRead    Kind = iota // read request (no payload)
	MemWrite               // posted write (carries payload)
	Completion             // completion with or without data
)

func (k Kind) String() string {
	switch k {
	case MemRead:
		return "MemRd"
	case MemWrite:
		return "MemWr"
	case Completion:
		return "Cpl"
	default:
		return "?"
	}
}

// Packet is one transaction-layer packet moving through the fabric.
// Timing accumulators record where the packet spent its life; the array
// layer folds them into per-request breakdowns.
type Packet struct {
	ID      uint64
	Kind    Kind
	Addr    uint64      // routing address
	Payload units.Bytes // payload size (0 for requests / dataless completions)
	Meta    any         // opaque cargo for the endpoint/array layers

	// Accumulated timing across all hops.
	CreditWait simx.Time // stalled waiting for receiver VC credit
	WireWait   simx.Time // stalled waiting for the local wire
	WireTime   simx.Time // serialisation time on wires
	RouteTime  simx.Time // switch/RC routing latencies
	QueueWait  simx.Time // time parked in device buffers (switch ingress, EP downstream)

	next *Packet        // free-list link while parked in a Pool
	ck   simx.PoolCheck // pooled-lifecycle guard; empty unless -tags simcheck
}

// StallTotal reports all time the packet spent not moving.
func (p *Packet) StallTotal() simx.Time {
	return p.CreditWait + p.WireWait + p.QueueWait
}

func (p *Packet) String() string {
	return fmt.Sprintf("%v#%d addr=%#x payload=%dB", p.Kind, p.ID, p.Addr, p.Payload)
}
