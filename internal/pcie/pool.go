package pcie

// Pool is a single-threaded intrusive free-list of Packet objects. The
// steady-state hot path recycles a bounded working set of packets
// instead of minting one per request, which is most of what the fabric
// used to allocate. Like every pool in this repository it is plain
// single-threaded state — the simulation runs on one goroutine, so
// sync.Pool would only add cost (and is banned by the nospawn lint).
//
// Ownership rule: whoever created a packet via Get decides the single
// release point and calls Put exactly once after the last read of the
// packet's timing accumulators. Under `-tags simcheck` the embedded
// lifecycle guard panics on double-Put and use-after-Put.
type Pool struct {
	free    *Packet
	freeLen int
}

// Get pops a recycled packet (zeroed) or allocates a fresh one.
func (p *Pool) Get() *Packet {
	pkt := p.free
	if pkt == nil {
		pkt = &Packet{} //simlint:coldalloc pool miss: packet free-list refill
		pkt.ck.Fresh("pcie.Packet")
		return pkt
	}
	p.free = pkt.next
	p.freeLen--
	pkt.ck.Checkout("pcie.Packet")
	*pkt = Packet{}
	return pkt
}

// Put returns a packet to the free-list. The caller must not touch the
// packet afterwards.
func (p *Pool) Put(pkt *Packet) {
	if pkt == nil {
		panic("pcie: Put of nil packet")
	}
	pkt.ck.Release("pcie.Packet")
	pkt.Meta = nil
	pkt.next = p.free
	p.free = pkt
	p.freeLen++
}

// Free reports how many recycled packets are idle in the pool.
func (p *Pool) Free() int { return p.freeLen }
