package pcie

import (
	"fmt"

	"triplea/internal/simx"
)

// RootComplex generates transactions on behalf of the host and routes
// packets between its ports. Downstream it forwards host requests to
// the switch selected by a route function; upstream it hands arriving
// completions to the host sink after its internal routing latency.
type RootComplex struct {
	eng          *simx.Engine
	routeLatency simx.Time
	route        RouteFunc // selects the switch port for a downstream packet
	ports        []*Link   // downstream links to switches
	deliver      func(pkt *Packet)

	injected   uint64
	delivered  uint64
	queueStall simx.Time
}

// NewRootComplex builds a root complex. route selects the downstream
// port for injected packets; deliver receives upstream packets (host
// side) after routing latency.
func NewRootComplex(eng *simx.Engine, routeLatency simx.Time, route RouteFunc, deliver func(pkt *Packet)) *RootComplex {
	if route == nil || deliver == nil {
		panic("pcie: root complex needs route and deliver functions")
	}
	return &RootComplex{eng: eng, routeLatency: routeLatency, route: route, deliver: deliver}
}

// AddPort attaches a downstream link to a switch, returning its index.
func (rc *RootComplex) AddPort(l *Link) int {
	rc.ports = append(rc.ports, l)
	return len(rc.ports) - 1
}

// NumPorts reports the downstream port count.
func (rc *RootComplex) NumPorts() int { return len(rc.ports) }

// Inject sends a host-originated packet downstream. done (optional)
// fires when the packet is accepted onto the selected port — until then
// it occupies the RC's internal queue, and the caller charges RC stall.
func (rc *RootComplex) Inject(pkt *Packet, done func()) {
	rc.eng.Schedule(rc.routeLatency, func() {
		pkt.RouteTime += rc.routeLatency
		port := rc.route(pkt)
		if port < 0 || port >= len(rc.ports) {
			panic(fmt.Sprintf("pcie: RC route for %v returned bad port %d", pkt, port))
		}
		held := rc.eng.Now()
		credBefore := pkt.CreditWait
		rc.ports[port].Send(pkt, func() {
			// Holding time excluding the port's credit wait, which the
			// link accounts separately.
			stall := (rc.eng.Now() - held) - (pkt.CreditWait - credBefore)
			pkt.QueueWait += stall
			rc.queueStall += stall
			rc.injected++
			if done != nil {
				done()
			}
		})
	})
}

// Receive implements Receiver for upstream packets arriving from
// switches: the packet is consumed into host memory after the routing
// latency and its VC credit returns immediately thereafter.
func (rc *RootComplex) Receive(pkt *Packet, from *Link) {
	rc.eng.Schedule(rc.routeLatency, func() {
		pkt.RouteTime += rc.routeLatency
		if from != nil {
			from.ReturnCredit()
		}
		rc.delivered++
		rc.deliver(pkt)
	})
}

// Injected reports packets sent downstream.
func (rc *RootComplex) Injected() uint64 { return rc.injected }

// Delivered reports packets handed to the host sink.
func (rc *RootComplex) Delivered() uint64 { return rc.delivered }

// QueueStallNS reports time injected packets waited for port acceptance.
func (rc *RootComplex) QueueStallNS() simx.Time { return rc.queueStall }

var _ Receiver = (*RootComplex)(nil)
