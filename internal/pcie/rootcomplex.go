package pcie

import (
	"fmt"

	"triplea/internal/simx"
)

// RootComplex generates transactions on behalf of the host and routes
// packets between its ports. Downstream it forwards host requests to
// the switch selected by a route function; upstream it hands arriving
// completions to the host sink after its internal routing latency.
type RootComplex struct {
	eng          *simx.Engine
	routeLatency simx.Time
	route        RouteFunc // selects the switch port for a downstream packet
	ports        []*Link   // downstream links to switches
	deliver      func(pkt *Packet)

	freeOp *rcOp // recycled routing nodes

	injected   uint64
	delivered  uint64
	queueStall simx.Time
}

// rcOp is the pooled per-packet routing state for both directions: an
// injected packet rides the route-latency event (simx.Handler), then
// waits for its port to accept it (Accepted); an upstream packet rides
// the same event type with a different phase argument.
type rcOp struct {
	rc         *RootComplex
	pkt        *Packet
	from       *Link
	done       Accepted
	held       simx.Time
	credBefore simx.Time
	next       *rcOp
	ck         simx.PoolCheck
}

// rcOp event phases.
const (
	rcInjectRoute  uint64 = iota // downstream: route then Send
	rcReceiveRoute               // upstream: route then deliver to host
)

// OnEvent implements simx.Handler for the two routing directions.
func (n *rcOp) OnEvent(arg uint64) {
	rc := n.rc
	switch arg {
	case rcInjectRoute:
		pkt := n.pkt
		pkt.RouteTime += rc.routeLatency
		port := rc.route(pkt) //simlint:coldalloc static topology dispatch: route bound once at build time
		if port < 0 || port >= len(rc.ports) {
			panic(fmt.Sprintf("pcie: RC route for %v returned bad port %d", pkt, port))
		}
		n.held = rc.eng.Now()
		n.credBefore = pkt.CreditWait
		rc.ports[port].Send(pkt, n)
	case rcReceiveRoute:
		pkt, from := n.pkt, n.from
		rc.recycleOp(n)
		pkt.RouteTime += rc.routeLatency
		if from != nil {
			from.ReturnCredit()
		}
		rc.delivered++
		rc.deliver(pkt) //simlint:coldalloc static topology dispatch: route bound once at build time
	default:
		panic("pcie: unknown rcOp phase")
	}
}

// OnLinkAccepted implements Accepted: the selected port took the
// injected packet; charge the RC queue stall and chain to the caller.
func (n *rcOp) OnLinkAccepted(pkt *Packet) {
	rc := n.rc
	// Holding time excluding the port's credit wait, which the link
	// accounts separately.
	stall := (rc.eng.Now() - n.held) - (pkt.CreditWait - n.credBefore)
	pkt.QueueWait += stall
	rc.queueStall += stall
	rc.injected++
	done := n.done
	rc.recycleOp(n)
	if done != nil {
		done.OnLinkAccepted(pkt)
	}
}

func (rc *RootComplex) newOp(pkt *Packet) *rcOp {
	n := rc.freeOp
	if n != nil {
		rc.freeOp = n.next
		n.ck.Checkout("pcie.rcOp")
		n.next = nil
	} else {
		n = &rcOp{rc: rc} //simlint:coldalloc pool miss: rcOp free-list refill
		n.ck.Fresh("pcie.rcOp")
	}
	n.pkt = pkt
	return n
}

func (rc *RootComplex) recycleOp(n *rcOp) {
	n.pkt, n.from, n.done = nil, nil, nil
	n.ck.Release("pcie.rcOp")
	n.next = rc.freeOp
	rc.freeOp = n
}

// NewRootComplex builds a root complex. route selects the downstream
// port for injected packets; deliver receives upstream packets (host
// side) after routing latency.
func NewRootComplex(eng *simx.Engine, routeLatency simx.Time, route RouteFunc, deliver func(pkt *Packet)) *RootComplex {
	if route == nil || deliver == nil {
		panic("pcie: root complex needs route and deliver functions")
	}
	return &RootComplex{eng: eng, routeLatency: routeLatency, route: route, deliver: deliver}
}

// AddPort attaches a downstream link to a switch, returning its index.
func (rc *RootComplex) AddPort(l *Link) int {
	rc.ports = append(rc.ports, l)
	return len(rc.ports) - 1
}

// NumPorts reports the downstream port count.
func (rc *RootComplex) NumPorts() int { return len(rc.ports) }

// Inject sends a host-originated packet downstream. done (optional)
// fires when the packet is accepted onto the selected port — until then
// it occupies the RC's internal queue, and the caller charges RC stall.
func (rc *RootComplex) Inject(pkt *Packet, done Accepted) {
	pkt.ck.InUse("pcie.Packet")
	n := rc.newOp(pkt)
	n.done = done
	rc.eng.ScheduleEvent(rc.routeLatency, n, rcInjectRoute)
}

// Receive implements Receiver for upstream packets arriving from
// switches: the packet is consumed into host memory after the routing
// latency and its VC credit returns immediately thereafter.
func (rc *RootComplex) Receive(pkt *Packet, from *Link) {
	n := rc.newOp(pkt)
	n.from = from
	rc.eng.ScheduleEvent(rc.routeLatency, n, rcReceiveRoute)
}

// Injected reports packets sent downstream.
func (rc *RootComplex) Injected() uint64 { return rc.injected }

// Delivered reports packets handed to the host sink.
func (rc *RootComplex) Delivered() uint64 { return rc.delivered }

// QueueStallNS reports time injected packets waited for port acceptance.
func (rc *RootComplex) QueueStallNS() simx.Time { return rc.queueStall }

var _ Receiver = (*RootComplex)(nil)
