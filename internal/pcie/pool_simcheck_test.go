//go:build simcheck

package pcie

import (
	"strings"
	"testing"

	"triplea/internal/simx"
)

// TestLeakedPacketIsAttributable deliberately drops a packet acquired
// from a Pool and checks the leak ledger names the pcie.Packet pool —
// the runtime counterpart of poolsafe's static leak-on-path rule.
func TestLeakedPacketIsAttributable(t *testing.T) {
	snap := simx.SnapshotLedger()
	var p Pool
	pkt := p.Get() // leaked: never Put
	err := simx.AssertDrained(snap)
	if err == nil {
		t.Fatal("leaked packet not reported by the ledger")
	}
	if !strings.Contains(err.Error(), "pcie.Packet") {
		t.Fatalf("leak report %q does not name pcie.Packet", err)
	}
	p.Put(pkt) // repair the ledger for later tests in this process
	if err := simx.AssertDrained(snap); err != nil {
		t.Fatalf("ledger did not return to baseline after Put: %v", err)
	}
}
