package report

import (
	"fmt"

	"triplea/internal/metrics"
)

// Renderers for metric values exported by internal/metrics: tables are
// built from CDF points and series samples — plain values — rather than
// raw records, so they work identically over both recorder backends and
// over snapshots that crossed a sweep-worker boundary.

// CDFTable renders one latency-CDF table: one row per fraction, the
// fraction in the first column and each distribution's latency (µs,
// rounded) in the following columns. All CDFs must be sampled at the
// same fractions (the paper's figures use 10).
func CDFTable(title string, columns []string, cdfs [][]metrics.CDFPoint) *Table {
	t := NewTable(title, columns...)
	if len(cdfs) == 0 {
		return t
	}
	for row := range cdfs[0] {
		cells := make([]string, 0, 1+len(cdfs))
		cells = append(cells, fmt.Sprintf("%.0f%%", cdfs[0][row].Fraction*100))
		for _, cdf := range cdfs {
			cells = append(cells, fmt.Sprintf("%.0f", cdf[row].LatencyUS))
		}
		t.AddRow(cells...)
	}
	return t
}

// SeriesTable renders aligned latency time-series: one row per sample
// index up to samples, each series' latency (µs, rounded) per column,
// "-" where a series ran out of points.
func SeriesTable(title string, columns []string, series [][]metrics.SeriesPoint, samples int) *Table {
	t := NewTable(title, columns...)
	for i := 0; i < samples; i++ {
		cells := make([]string, 0, 1+len(series))
		cells = append(cells, fmt.Sprintf("%d", i))
		for _, ser := range series {
			if i < len(ser) {
				cells = append(cells, fmt.Sprintf("%.0f", ser[i].Latency.Micros()))
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	return t
}
