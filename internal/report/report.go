// Package report renders experiment results as fixed-width text tables
// and series — the same rows and columns the paper's tables report and
// the same data series its figures plot, in a form that diffs cleanly
// across runs.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends one row of formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders v against max as a text bar of the given width — the
// closest a terminal gets to the paper's bar charts.
func Bar(v, max float64, width int) string {
	if max <= 0 || v < 0 || width <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// FormatUS renders a nanosecond count as microseconds.
func FormatUS(ns int64) string {
	return fmt.Sprintf("%.1f", float64(ns)/1000)
}

// FormatCount renders large counts compactly (53.2K, 1.20M).
func FormatCount(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
