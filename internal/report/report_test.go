package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-long-name", "22")
	tbl.AddRow("short") // padded
	out := tbl.String()

	if !strings.HasPrefix(out, "demo\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	// All body rows align to the same width.
	if len(lines[3]) < len("beta-long-name") {
		t.Error("column not widened to longest cell")
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header wrong: %q", lines[1])
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22") {
		t.Error("cells missing")
	}
}

func TestAddRowf(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRowf("%d|%s|%.1f", 1, "x", 2.5)
	if len(tbl.Rows) != 1 || tbl.Rows[0][1] != "x" || tbl.Rows[0][2] != "2.5" {
		t.Errorf("rows = %v", tbl.Rows)
	}
}

func TestUntitledTable(t *testing.T) {
	tbl := NewTable("", "x")
	tbl.AddRow("1")
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Error("untitled table starts with a blank line")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar(5,10,10) = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("overflow bar = %q", got)
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" || Bar(1, 10, 0) != "" {
		t.Error("degenerate bars not empty")
	}
	if Bar(0, 10, 10) != "" {
		t.Error("zero bar not empty")
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatUS(12345); got != "12.3" {
		t.Errorf("FormatUS = %q", got)
	}
	if got := FormatCount(999); got != "999" {
		t.Errorf("FormatCount(999) = %q", got)
	}
	if got := FormatCount(53_200); got != "53.2K" {
		t.Errorf("FormatCount(53200) = %q", got)
	}
	if got := FormatCount(1_200_000); got != "1.20M" {
		t.Errorf("FormatCount(1.2M) = %q", got)
	}
}
