// Package units defines distinct named scalar types for the physical
// quantities the simulator mixes constantly — bytes, flash pages, flash
// blocks, interface lanes, and bandwidth — alongside simx.Time
// (nanoseconds) and topo.PPN (physical page addresses) defined in their
// own packages.
//
// The point of the types is that Go refuses to mix them implicitly: a
// page count cannot be added to a byte count, and a bandwidth cannot be
// passed where a size is expected, without an explicit conversion. The
// simlint `units` analyzer then polices the remaining escape hatches:
// conversions between two unit types must go through the named helpers
// below (PagesToBytes, TransferTime, ...), conversions that erase a
// unit must go through the Int/Int64 accessors, and bare numeric
// literals may not pose as unit-typed values outside audited sites —
// write 4*units.KiB, not units.Bytes(4096).
//
// The zero value of every type is zero of its quantity, and 0 / -1 stay
// legal as literal sentinels everywhere, mirroring the simx.Time
// convention.
package units

import (
	"math"
	"math/bits"

	"triplea/internal/simx"
)

// Bytes is a size or capacity in bytes.
type Bytes int64

// Pages is a count of flash pages.
type Pages int64

// Blocks is a count of flash erase blocks.
type Blocks int

// Lanes counts parallel data lines of an interface: PCI Express lanes,
// or the data pins of an ONFI channel / cluster bus (x8, x16).
type Lanes int

// BytesPerSec is a data rate in bytes per second.
type BytesPerSec int64

// Unit constants, so quantities are written with their unit attached:
// 4*units.KiB, 256*units.Page, 2*units.Block, 8*units.Lane, 400*units.MBps.
const (
	Byte Bytes = 1
	KiB        = 1024 * Byte
	MiB        = 1024 * KiB
	GiB        = 1024 * MiB

	Page Pages = 1

	Block Blocks = 1

	Lane Lanes = 1

	// Bandwidth units are decimal, matching datasheet convention
	// (an x8 ONFI channel at 400 MT/s moves 400 MB/s, not 400 MiB/s).
	BytePerSec BytesPerSec = 1
	KBps                   = 1000 * BytePerSec
	MBps                   = 1000 * KBps
	GBps                   = 1000 * MBps
)

// Int64 erases the unit. Prefer keeping the typed value; this is the
// audited escape hatch for fmt verbs, stdlib calls, and index math.
func (b Bytes) Int64() int64 { return int64(b) }

// Int erases the unit to int.
func (b Bytes) Int() int { return int(b) }

// Int64 erases the unit.
func (n Pages) Int64() int64 { return int64(n) }

// Int erases the unit to int.
func (n Pages) Int() int { return int(n) }

// Int erases the unit.
func (n Blocks) Int() int { return int(n) }

// Int erases the unit.
func (n Lanes) Int() int { return int(n) }

// Int64 erases the unit.
func (r BytesPerSec) Int64() int64 { return int64(r) }

// PagesToBytes reports the size of n pages of pageSize bytes each.
func PagesToBytes(n Pages, pageSize Bytes) Bytes {
	return Bytes(int64(n) * int64(pageSize))
}

// BytesToPages reports how many whole pages of pageSize bytes fit in b
// (floor). pageSize must be positive.
func BytesToPages(b Bytes, pageSize Bytes) Pages {
	return Pages(int64(b) / int64(pageSize))
}

// BytesToPagesCeil reports how many pages of pageSize bytes are needed
// to hold b bytes (ceiling). pageSize must be positive.
func BytesToPagesCeil(b Bytes, pageSize Bytes) Pages {
	ps := int64(pageSize)
	return Pages((int64(b) + ps - 1) / ps)
}

// BlocksToPages reports the page count of n blocks of pagesPerBlock
// pages each.
func BlocksToPages(n Blocks, pagesPerBlock Pages) Pages {
	return Pages(int64(n) * int64(pagesPerBlock))
}

// LaneBandwidth reports the aggregate rate of n lanes running at
// perLane each.
func LaneBandwidth(perLane BytesPerSec, n Lanes) BytesPerSec {
	return BytesPerSec(int64(perLane) * int64(n))
}

// BusBandwidth reports the data rate of a parallel bus: pins data
// lines clocked at mhz, double-pumped when ddr. An x8 bus moves one
// byte per transfer, an x16 bus two.
func BusBandwidth(pins Lanes, mhz int, ddr bool) BytesPerSec {
	mt := int64(mhz) * 1_000_000 // transfers per second
	if ddr {
		mt *= 2
	}
	return BytesPerSec(mt * int64(pins) / 8)
}

// TransferTime reports how long moving n bytes takes at rate bw,
// rounded up to whole simulated nanoseconds. It is the Eq. 1-3 transfer
// term shared by the ONFI channel, the cluster bus, and the PCI-E link
// models. A non-positive n costs nothing; bw must be positive. The
// intermediate n*1e9 is carried at 128 bits, so the result is exact for
// every size, saturating at the maximum representable instant.
func TransferTime(n Bytes, bw BytesPerSec) simx.Time {
	if n <= 0 {
		return 0
	}
	bps := uint64(bw)
	hi, lo := bits.Mul64(uint64(n), 1_000_000_000)
	var carry uint64
	lo, carry = bits.Add64(lo, bps-1, 0) // round up
	hi += carry
	if hi >= bps {
		return simx.Time(math.MaxInt64) // quotient exceeds 64 bits
	}
	q, _ := bits.Div64(hi, lo, bps)
	if q > math.MaxInt64 {
		return simx.Time(math.MaxInt64)
	}
	return simx.Time(q)
}

// ScaleByPages reports per×n: a per-page duration scaled by a page
// count. It exists so page counts do not get converted to simx.Time to
// make the multiplication compile.
func ScaleByPages(per simx.Time, n Pages) simx.Time {
	return per * simx.Time(n)
}
