package units_test

import (
	"math"
	"testing"

	"triplea/internal/simx"
	"triplea/internal/units"
)

func TestUnitConstants(t *testing.T) {
	if units.KiB != 1024 || units.MiB != 1024*1024 || units.GiB != 1024*1024*1024 {
		t.Fatalf("binary byte units wrong: KiB=%d MiB=%d GiB=%d", units.KiB, units.MiB, units.GiB)
	}
	if units.KBps != 1_000 || units.MBps != 1_000_000 || units.GBps != 1_000_000_000 {
		t.Fatalf("decimal rate units wrong: KBps=%d MBps=%d GBps=%d", units.KBps, units.MBps, units.GBps)
	}
}

func TestPagesBytesRoundTrip(t *testing.T) {
	const pageSize = 4 * units.KiB
	for _, n := range []units.Pages{0, 1, 3, 256, 1 << 20} {
		b := units.PagesToBytes(n, pageSize)
		if got := units.BytesToPages(b, pageSize); got != n {
			t.Errorf("BytesToPages(PagesToBytes(%d)) = %d", n, got)
		}
		if got := units.BytesToPagesCeil(b, pageSize); got != n {
			t.Errorf("BytesToPagesCeil(PagesToBytes(%d)) = %d", n, got)
		}
	}
	// A partial page floors down but ceils up.
	b := units.PagesToBytes(3, pageSize) + 1*units.Byte
	if got := units.BytesToPages(b, pageSize); got != 3 {
		t.Errorf("BytesToPages(3 pages + 1 byte) = %d, want 3", got)
	}
	if got := units.BytesToPagesCeil(b, pageSize); got != 4 {
		t.Errorf("BytesToPagesCeil(3 pages + 1 byte) = %d, want 4", got)
	}
}

func TestBlocksToPages(t *testing.T) {
	if got := units.BlocksToPages(2048*units.Block, 256*units.Page); got != 524288 {
		t.Fatalf("BlocksToPages(2048, 256) = %d, want 524288", got)
	}
}

func TestLaneBandwidth(t *testing.T) {
	// PCI-E 3.0: ~1 GB/s per lane after 128b/130b encoding.
	perLane := 1 * units.GBps
	if got := units.LaneBandwidth(perLane, 4*units.Lane); got != 4*units.GBps {
		t.Fatalf("x4 link = %d B/s, want 4e9", got)
	}
	if got := units.LaneBandwidth(perLane, 16*units.Lane); got != 16*units.GBps {
		t.Fatalf("x16 link = %d B/s, want 16e9", got)
	}
}

func TestBusBandwidth(t *testing.T) {
	// ONFI NV-DDR2 x8 at 400 MHz DDR: 800 MT/s x 1 byte = 800 MB/s.
	if got := units.BusBandwidth(8*units.Lane, 400, true); got != 800*units.MBps {
		t.Fatalf("x8 DDR 400MHz = %d, want 800 MB/s", got)
	}
	// SDR x8 at 400 MHz: 400 MB/s.
	if got := units.BusBandwidth(8*units.Lane, 400, false); got != 400*units.MBps {
		t.Fatalf("x8 SDR 400MHz = %d, want 400 MB/s", got)
	}
	// x16 doubles the byte rate.
	if got := units.BusBandwidth(16*units.Lane, 400, true); got != 1600*units.MBps {
		t.Fatalf("x16 DDR 400MHz = %d, want 1600 MB/s", got)
	}
}

func TestTransferTime(t *testing.T) {
	// 4 KiB over an 800 MB/s ONFI channel: 4096e9/800e6 = 5120 ns exactly.
	if got := units.TransferTime(4*units.KiB, 800*units.MBps); got != 5120*simx.Nanosecond {
		t.Fatalf("4KiB @ 800MB/s = %v, want 5.12us", got)
	}
	// Non-divisible sizes round up, never down: 1 byte at 3 B/s is
	// ceil(1e9/3) = 333333334 ns.
	if got := units.TransferTime(1*units.Byte, 3*units.BytePerSec); got != 333333334 {
		t.Fatalf("1B @ 3B/s = %d, want 333333334", got)
	}
	if got := units.TransferTime(0, 800*units.MBps); got != 0 {
		t.Fatalf("0 bytes should take 0 time, got %v", got)
	}
	if got := units.TransferTime(-5*units.Byte, 800*units.MBps); got != 0 {
		t.Fatalf("negative size should take 0 time, got %v", got)
	}
}

func TestTransferTimeOverflowEdge(t *testing.T) {
	// The naive int64 ceil formula (n*1e9+bps-1)/bps overflows past
	// ~9.2 GB; the 128-bit path stays exact. 16 GiB at 1 GB/s is
	// 17179869184 ns with exact rounding.
	got := units.TransferTime(16*units.GiB, 1*units.GBps)
	if want := simx.Time(17_179_869_184); got != want {
		t.Fatalf("TransferTime(16GiB @ 1GB/s) = %d, want %d", got, want)
	}
	// An array-lifetime-scale transfer saturates instead of wrapping
	// negative: MaxInt64 bytes at 1 B/s needs MaxInt64*1e9 ns.
	if got := units.TransferTime(units.Bytes(math.MaxInt64), 1*units.BytePerSec); got != math.MaxInt64 {
		t.Fatalf("huge transfer should saturate at MaxInt64, got %d", got)
	}
	// Rate faster than a byte per ns still rounds up to 1 ns minimum.
	if got := units.TransferTime(1*units.Byte, 16*units.GBps); got != 1 {
		t.Fatalf("sub-ns transfer should round up to 1ns, got %d", got)
	}
}

func TestScaleByPages(t *testing.T) {
	per := 10240 * simx.Nanosecond
	if got := units.ScaleByPages(per, 3*units.Page); got != 30720*simx.Nanosecond {
		t.Fatalf("3 pages at 10.24us = %v, want 30.72us", got)
	}
	if got := units.ScaleByPages(per, 0); got != 0 {
		t.Fatalf("0 pages = %v, want 0", got)
	}
}

func TestAccessors(t *testing.T) {
	if (4*units.KiB).Int64() != 4096 || (4*units.KiB).Int() != 4096 {
		t.Fatal("Bytes accessors")
	}
	if (256*units.Page).Int64() != 256 || (256*units.Page).Int() != 256 {
		t.Fatal("Pages accessors")
	}
	if (7 * units.Block).Int() != 7 {
		t.Fatal("Blocks accessor")
	}
	if (8 * units.Lane).Int() != 8 {
		t.Fatal("Lanes accessor")
	}
	if (800 * units.MBps).Int64() != 800_000_000 {
		t.Fatal("BytesPerSec accessor")
	}
}
