package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"triplea/internal/simx"
	"triplea/internal/units"
)

// DecodeMSR parses a trace in the MSR Cambridge / SNIA IOTTA block
// I/O format — the repository family the paper's enterprise workloads
// come from:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is in Windows filetime units (100 ns ticks); Offset and
// Size are bytes. Byte offsets are converted to page-granular requests
// (pageSize bytes per page, typically 4096): the LPN is the offset's
// page number and the page count covers [Offset, Offset+Size). The
// first record's timestamp becomes time zero.
func DecodeMSR(r io.Reader, pageSize units.Bytes) ([]Request, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("trace: page size %d must be positive", pageSize)
	}
	var out []Request
	var t0 int64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 6 {
			return nil, fmt.Errorf("trace: msr line %d: want >= 6 fields, got %d", lineNo, len(f))
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d: timestamp: %v", lineNo, err)
		}
		op, err := ParseOp(f[3])
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d: %v", lineNo, err)
		}
		offset, err := strconv.ParseInt(strings.TrimSpace(f[4]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d: offset: %v", lineNo, err)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(f[5]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d: size: %v", lineNo, err)
		}
		if offset < 0 || size <= 0 {
			return nil, fmt.Errorf("trace: msr line %d: bad extent [%d,+%d)", lineNo, offset, size)
		}
		if len(out) == 0 {
			t0 = ts
		}
		firstPage := offset / pageSize.Int64()
		lastPage := (offset + size - 1) / pageSize.Int64()
		out = append(out, Request{
			Arrival: simx.Time((ts - t0) * 100), // filetime ticks -> ns
			Op:      op,
			LPN:     firstPage,
			Pages:   units.Pages(lastPage - firstPage + 1),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
