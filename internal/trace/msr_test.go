package trace

import (
	"strings"
	"testing"
)

func TestDecodeMSR(t *testing.T) {
	src := strings.Join([]string{
		"# MSR Cambridge style",
		"128166372003061629,usr,0,Read,8192,4096,1231",
		"128166372003062629,usr,0,Write,4096,8192,900",
		"128166372003064629,usr,0,Read,4100,100,50", // sub-page extent
	}, "\n")
	reqs, err := DecodeMSR(strings.NewReader(src), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("%d requests", len(reqs))
	}
	// First record anchors time zero.
	if reqs[0].Arrival != 0 {
		t.Errorf("first arrival = %v", reqs[0].Arrival)
	}
	// 1000 filetime ticks later = 100us.
	if reqs[1].Arrival != 100_000 {
		t.Errorf("second arrival = %v, want 100us", reqs[1].Arrival)
	}
	if reqs[0].Op != Read || reqs[0].LPN != 2 || reqs[0].Pages != 1 {
		t.Errorf("req0 = %+v", reqs[0])
	}
	// 8 KiB at offset 4 KiB spans pages 1-2.
	if reqs[1].Op != Write || reqs[1].LPN != 1 || reqs[1].Pages != 2 {
		t.Errorf("req1 = %+v", reqs[1])
	}
	// A 100-byte extent crossing nothing: one page.
	if reqs[2].LPN != 1 || reqs[2].Pages != 1 {
		t.Errorf("req2 = %+v", reqs[2])
	}
}

func TestDecodeMSRCrossPageExtent(t *testing.T) {
	// 100 bytes starting 50 bytes before a page boundary: two pages.
	src := "1,usr,0,Read,4046,100,1"
	reqs, err := DecodeMSR(strings.NewReader(src), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].LPN != 0 || reqs[0].Pages != 2 {
		t.Errorf("req = %+v", reqs[0])
	}
}

func TestDecodeMSRErrors(t *testing.T) {
	for _, src := range []string{
		"1,usr,0,Read,8192",        // too few fields
		"x,usr,0,Read,8192,4096,1", // bad timestamp
		"1,usr,0,Zap,8192,4096,1",  // bad op
		"1,usr,0,Read,x,4096,1",    // bad offset
		"1,usr,0,Read,8192,x,1",    // bad size
		"1,usr,0,Read,-1,4096,1",   // negative offset
		"1,usr,0,Read,8192,0,1",    // zero size
	} {
		if _, err := DecodeMSR(strings.NewReader(src), 4096); err == nil {
			t.Errorf("DecodeMSR accepted %q", src)
		}
	}
	if _, err := DecodeMSR(strings.NewReader(""), 0); err == nil {
		t.Error("zero page size accepted")
	}
}

func TestDecodeMSREmpty(t *testing.T) {
	reqs, err := DecodeMSR(strings.NewReader("# only comments\n"), 4096)
	if err != nil || len(reqs) != 0 {
		t.Errorf("reqs=%v err=%v", reqs, err)
	}
}
