// Package trace defines the I/O trace record the simulator replays and
// a text interchange format compatible with block-trace tooling: one
// request per line, "arrival_ns,op,lpn,pages". The paper replays SNIA,
// UMass and NERSC traces; this package lets externally converted traces
// drive the same simulator the synthetic workloads drive.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"triplea/internal/simx"
	"triplea/internal/units"
)

// Op is the request direction.
type Op uint8

const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	switch o {
	case Read:
		return "R"
	case Write:
		return "W"
	}
	return "?"
}

// ParseOp converts "R"/"W" (case-insensitive) to an Op.
func ParseOp(s string) (Op, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "R", "READ", "0":
		return Read, nil
	case "W", "WRITE", "1":
		return Write, nil
	}
	return Read, fmt.Errorf("trace: unknown op %q", s)
}

// Request is one trace record.
type Request struct {
	Arrival simx.Time // submission time
	Op      Op
	LPN     int64       // first logical page
	Pages   units.Pages // page count (>= 1)
}

// Validate reports whether the request is well-formed.
func (r Request) Validate() error {
	switch {
	case r.Arrival < 0:
		return fmt.Errorf("trace: negative arrival %v", r.Arrival) //simlint:coldalloc error path: malformed trace record
	case r.LPN < 0:
		return fmt.Errorf("trace: negative LPN %d", r.LPN) //simlint:coldalloc error path: malformed trace record
	case r.Pages < 1:
		return fmt.Errorf("trace: pages %d < 1", r.Pages) //simlint:coldalloc error path: malformed trace record
	}
	return nil
}

// Encode serialises requests, one per line.
func Encode(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d\n", int64(r.Arrival), r.Op, r.LPN, r.Pages); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses a trace written by Encode (or hand-converted from another
// format). Blank lines and lines starting with '#' are skipped.
func Decode(r io.Reader) ([]Request, error) {
	var out []Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		arrival, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: arrival: %v", lineNo, err)
		}
		op, err := ParseOp(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		lpn, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: lpn: %v", lineNo, err)
		}
		pages, err := strconv.Atoi(strings.TrimSpace(fields[3]))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: pages: %v", lineNo, err)
		}
		req := Request{Arrival: simx.Time(arrival), Op: op, LPN: lpn, Pages: units.Pages(pages)}
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		out = append(out, req)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats summarises a trace.
type Stats struct {
	Requests   int
	Reads      int
	Writes     int
	Pages      units.Pages
	DurationNS simx.Time
}

// ReadRatio reports the fraction of read requests.
func (s Stats) ReadRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Requests)
}

// OfferedIOPS reports the trace's offered request rate.
func (s Stats) OfferedIOPS() float64 {
	if s.DurationNS <= 0 {
		return 0
	}
	return float64(s.Requests) / (float64(s.DurationNS) / float64(simx.Second))
}

// Summarize computes trace statistics.
func Summarize(reqs []Request) Stats {
	var s Stats
	s.Requests = len(reqs)
	for _, r := range reqs {
		if r.Op == Read {
			s.Reads++
		} else {
			s.Writes++
		}
		s.Pages += r.Pages
		if r.Arrival > s.DurationNS {
			s.DurationNS = r.Arrival
		}
	}
	return s
}
