package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"triplea/internal/simx"
	"triplea/internal/units"
)

func TestOpStringParse(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Error("Op.String mismatch")
	}
	for in, want := range map[string]Op{
		"R": Read, "r": Read, "READ": Read, "0": Read,
		"W": Write, "write": Write, "1": Write, " W ": Write,
	} {
		got, err := ParseOp(in)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseOp("x"); err == nil {
		t.Error("ParseOp accepted garbage")
	}
}

func TestRequestValidate(t *testing.T) {
	good := Request{Arrival: 10, Op: Read, LPN: 5, Pages: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	for _, bad := range []Request{
		{Arrival: -1, Pages: 1},
		{LPN: -1, Pages: 1},
		{Pages: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("invalid request %+v accepted", bad)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := []Request{
		{Arrival: 0, Op: Read, LPN: 42, Pages: 1},
		{Arrival: 1500, Op: Write, LPN: 7, Pages: 8},
		{Arrival: 2_000_000, Op: Read, LPN: 1 << 40, Pages: 2},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d -> %d records", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("record %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	src := "# a comment\n\n100,R,5,1\n  \n200,W,6,2\n"
	out, err := Decode(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d records", len(out))
	}
}

func TestReadErrors(t *testing.T) {
	for _, src := range []string{
		"100,R,5",        // too few fields
		"x,R,5,1",        // bad arrival
		"100,Q,5,1",      // bad op
		"100,R,x,1",      // bad lpn
		"100,R,5,x",      // bad pages
		"100,R,5,0",      // invalid pages
		"-5,R,5,1",       // negative arrival
		"100,R,-1,1",     // negative lpn
		"1,R,1,1,extras", // too many fields
	} {
		if _, err := Decode(strings.NewReader(src)); err == nil {
			t.Errorf("Decode accepted %q", src)
		}
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, []Request{{Pages: 0}}); err == nil {
		t.Error("Encode accepted invalid request")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]Request{
		{Arrival: 0, Op: Read, LPN: 1, Pages: 1},
		{Arrival: simx.Second / 2, Op: Write, LPN: 2, Pages: 3},
		{Arrival: simx.Second, Op: Read, LPN: 3, Pages: 1},
	})
	if s.Requests != 3 || s.Reads != 2 || s.Writes != 1 || s.Pages != 5 {
		t.Errorf("stats = %+v", s)
	}
	if s.ReadRatio() < 0.66 || s.ReadRatio() > 0.67 {
		t.Errorf("ReadRatio = %v", s.ReadRatio())
	}
	if s.OfferedIOPS() != 3 {
		t.Errorf("OfferedIOPS = %v, want 3", s.OfferedIOPS())
	}
	var empty Stats
	if empty.ReadRatio() != 0 || empty.OfferedIOPS() != 0 {
		t.Error("empty stats not zero")
	}
}

// Property: Write then Read is the identity on any valid request list.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(raw []struct {
		Arrival uint32
		IsWrite bool
		LPN     uint32
		Pages   uint8
	}) bool {
		in := make([]Request, 0, len(raw))
		for _, r := range raw {
			op := Read
			if r.IsWrite {
				op = Write
			}
			in = append(in, Request{
				Arrival: simx.Time(r.Arrival),
				Op:      op,
				LPN:     int64(r.LPN),
				Pages:   units.Pages(r.Pages%16) + 1,
			})
		}
		var buf bytes.Buffer
		if err := Encode(&buf, in); err != nil {
			return false
		}
		out, err := Decode(&buf)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
